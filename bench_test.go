// Package repro's root benchmark harness: one benchmark per paper
// artifact (Figure 10, Figure 11, the Theorem 4.1 lower-bound instance,
// the Theorem 3.19 ratio sweep, the Theorem 3.18 NN approximation) plus
// micro-benchmarks of the hot protocol paths and ablation benches for the
// design choices listed in DESIGN.md. Reported custom metrics carry the
// paper's units (hops/op, ratio, makespan).
package repro

import (
	"fmt"
	"math/rand"
	gort "runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/opt"
	"repro/internal/queuing"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/tsp"
	"repro/internal/workload"
)

// BenchmarkFig10Arrow measures the closed-loop arrow makespan per node
// count — the arrow curve of Figure 10. The reported "makespan" metric is
// the figure's y-axis (simulated time units).
func BenchmarkFig10Arrow(b *testing.B) {
	for _, n := range []int{2, 8, 16, 32, 64, 76} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := tree.BalancedBinary(n)
			var makespan sim.Time
			for i := 0; i < b.N; i++ {
				res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: 500}, Root: 0})
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(float64(makespan), "makespan")
		})
	}
}

// BenchmarkFig10Centralized measures the centralized curve of Figure 10;
// its makespan grows linearly with n, unlike arrow's.
func BenchmarkFig10Centralized(b *testing.B) {
	for _, n := range []int{2, 8, 16, 32, 64, 76} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Complete(n)
			var makespan sim.Time
			for i := 0; i < b.N; i++ {
				res, err := centralized.RunClosedLoop(g, centralized.LoopConfig{Spec: loop.Spec{PerNode: 500}, Center: 0})
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(float64(makespan), "makespan")
		})
	}
}

// BenchmarkFig11Hops reports arrow's average interprocessor messages per
// queuing operation — Figure 11's metric.
func BenchmarkFig11Hops(b *testing.B) {
	for _, n := range []int{2, 8, 16, 32, 64, 76} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := tree.BalancedBinary(n)
			var hops float64
			for i := 0; i < b.N; i++ {
				res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: 500}, Root: 0})
				if err != nil {
					b.Fatal(err)
				}
				hops = res.AvgQueueHops()
			}
			b.ReportMetric(hops, "hops/op")
		})
	}
}

// BenchmarkLowerBound runs the Theorem 4.1 instance per diameter and
// reports the measured arrow/opt ratio.
func BenchmarkLowerBound(b *testing.B) {
	for _, logD := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("D=%d", 1<<logD), func(b *testing.B) {
			inst := workload.LowerBound(logD, workload.DefaultK(1<<logD))
			t := tree.PathTree(inst.D + 1)
			g := graph.Path(inst.D + 1)
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := arrow.Run(t, inst.Set, arrow.Options{Root: inst.Root})
				if err != nil {
					b.Fatal(err)
				}
				bounds := opt.Compute(g, inst.Root, inst.Set, opt.DistOfGraph(g))
				ratio = opt.Ratio(res.TotalLatency, bounds.Upper)
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkRatioSweep measures the Theorem 3.19 competitive ratio on the
// standard configuration set (exact optimal denominators).
func BenchmarkRatioSweep(b *testing.B) {
	cfgs := analysis.DefaultRatioConfigs(1)
	for _, cfg := range cfgs {
		b.Run(cfg.Name+"/"+cfg.WorkName, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				row, err := analysis.MeasureRatio(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ratio = row.Ratio
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkNNHeuristic measures the Theorem 3.18 machinery: NN path
// construction cost over cT instances.
func BenchmarkNNHeuristic(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := tree.BalancedBinary(n)
			set := workload.Poisson(n, 0.5, sim.Time(4*n), 1)
			ct := opt.CostAdapter(set, 0, queuing.CT(opt.DistOfTree(tr)))
			pts := len(set) + 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tsp.NearestNeighborPath(pts, ct)
			}
		})
	}
}

// BenchmarkHeldKarp measures the exact optimal solver used as ground
// truth (exponential; sizes kept small).
func BenchmarkHeldKarp(b *testing.B) {
	for _, n := range []int{8, 12, 15} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tr := tree.BalancedBinary(31)
			set := workload.OneShot(31, n, 3)
			co := opt.CostAdapter(set, 0, queuing.CO(opt.DistOfTree(tr)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tsp.OptimalPath(n+1, co); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArrowProtocolStep measures raw protocol throughput: simulated
// queue operations per second on a saturated tree.
func BenchmarkArrowProtocolStep(b *testing.B) {
	for _, n := range []int{15, 63, 255, 1023} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := tree.BalancedBinary(n)
			perNode := 16
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: perNode}, Root: 0}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n*perNode)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkTreeChoice is the DESIGN.md ablation: same workload, different
// spanning trees.
func BenchmarkTreeChoice(b *testing.B) {
	g := graph.Complete(64)
	set := workload.Poisson(64, 0.5, 200, 9)
	for _, kind := range []analysis.TreeKind{
		analysis.TreeBalancedBinary, analysis.TreeMST, analysis.TreeStar, analysis.TreePath,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			t, err := analysis.BuildTree(kind, g)
			if err != nil {
				b.Fatal(err)
			}
			var cost int64
			for i := 0; i < b.N; i++ {
				res, err := arrow.Run(t, set, arrow.Options{Root: t.Root()})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.TotalLatency
			}
			b.ReportMetric(float64(cost), "latency")
		})
	}
}

// BenchmarkArbitration is the DESIGN.md ablation over simultaneous-
// message processing order.
func BenchmarkArbitration(b *testing.B) {
	t := tree.BalancedBinary(127)
	set := workload.OneShot(127, 64, 5)
	for _, arb := range []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom} {
		b.Run(arb.String(), func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				res, err := arrow.Run(t, set, arrow.Options{Root: 0, Arbitration: arb, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.TotalLatency
			}
			b.ReportMetric(float64(cost), "latency")
		})
	}
}

// BenchmarkAsyncModels compares delay models (Section 3.8 ablation).
func BenchmarkAsyncModels(b *testing.B) {
	t := tree.BalancedBinary(63)
	set := workload.Bursty(63, 16, 3, 64, 3)
	models := []sim.LatencyModel{
		sim.SynchronousScaled(8),
		sim.AsyncUniform(8),
		sim.AsyncBimodal(8, 0.1),
	}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			var cost int64
			for i := 0; i < b.N; i++ {
				res, err := arrow.Run(t, set, arrow.Options{Root: 0, Latency: m, Seed: 11})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.TotalLatency
			}
			b.ReportMetric(float64(cost)/8, "norm-latency")
		})
	}
}

// BenchmarkBaselines compares the engine's four queuing protocols end to
// end on an identical workload, each through its engine adapter.
func BenchmarkBaselines(b *testing.B) {
	const n = 48
	inst := engine.Instance{
		Graph:    graph.Complete(n),
		Tree:     tree.BalancedBinary(n),
		Root:     0,
		Workload: engine.NewStatic(workload.Poisson(n, 1.0, 200, 1)).MustBuild(),
	}
	for _, p := range []engine.Protocol{
		engine.Arrow{}, engine.NTA{}, engine.Centralized{}, engine.Ivy{},
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselinesClosedLoop compares the four protocols under the
// paper's closed-loop regime (the workload the headline figures plot) —
// now that every adapter supports it. Reported hops/op is Figure 11's
// metric per protocol.
func BenchmarkBaselinesClosedLoop(b *testing.B) {
	const n, perNode = 48, 200
	inst := engine.Instance{
		Graph:    graph.Complete(n),
		Tree:     tree.BalancedBinary(n),
		Root:     0,
		Workload: engine.NewClosedLoop(perNode).MustBuild(),
	}
	for _, p := range []engine.Protocol{
		engine.Arrow{}, engine.NTA{}, engine.Centralized{}, engine.Ivy{},
	} {
		b.Run(p.Name(), func(b *testing.B) {
			var hops float64
			for i := 0; i < b.N; i++ {
				cost, err := p.Run(inst)
				if err != nil {
					b.Fatal(err)
				}
				hops = cost.AvgQueueHops()
			}
			b.ReportMetric(hops, "hops/op")
		})
	}
}

// BenchmarkSweepSP2 measures the parallel experiment runner on the
// Figure 10/11 grid: the same cells at workers=1 (sequential) and
// workers=GOMAXPROCS. The speedup is the engine.Sweep acceptance metric;
// results are identical at every worker count (see engine's tests).
func BenchmarkSweepSP2(b *testing.B) {
	ns := []int{2, 4, 8, 16, 24, 32, 48, 64}
	const perNode = 400
	workerCounts := []int{1}
	if p := gort.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs := engine.Sweep(analysis.SP2Grid(ns, perNode, 1), w)
				if err := engine.FirstError(outs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimSendDispatch measures the simulator's send/dispatch hot
// path — run with -benchmem: the value-typed event heap and dense
// per-link FIFO state make a steady-state message send allocation-free.
// The star case pins the O(1) tree-edge lookup: half the sends originate
// at the degree-n center, where a neighbor-list scan would cost O(n) per
// message.
func BenchmarkSimSendDispatch(b *testing.B) {
	leafRange := func(lo, hi int) []graph.NodeID {
		leaves := make([]graph.NodeID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			leaves = append(leaves, graph.NodeID(v))
		}
		return leaves
	}
	cases := []struct {
		name   string
		t      *tree.Tree
		leaves []graph.NodeID
	}{
		{"binary", tree.BalancedBinary(1023), leafRange(511, 1023)},
		{"star", tree.StarTree(1024), leafRange(512, 1024)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			s := sim.New(sim.Config{Topology: sim.TreeTopology{T: c.t}})
			remaining := b.N
			s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
				if remaining > 0 {
					remaining--
					ctx.Send(at, from, msg) // ping-pong across the leaf-parent link
				}
			})
			tr := c.t
			leaves := c.leaves
			s.ScheduleAt(0, func(ctx *sim.Context) {
				for _, v := range leaves {
					ctx.Send(v, tr.Parent(v), sim.Message(nil))
				}
			})
			b.ResetTimer()
			s.Run()
		})
	}
}

// BenchmarkHistogramRecord measures the streaming histogram's record
// hot path — run with -benchmem: after the one-time bucket allocation,
// records are allocation-free, which is what lets every closed-loop
// completion feed it.
func BenchmarkHistogramRecord(b *testing.B) {
	var h stats.Histogram
	h.Record(0) // allocate the fixed bucket array up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) & 0xFFFFF)
	}
}

// BenchmarkClosedLoopObserved measures the per-request observability
// overhead on the arrow closed loop: no recorder (the allocation-free
// baseline) vs a DistRecorder capturing full latency/hop distributions.
func BenchmarkClosedLoopObserved(b *testing.B) {
	t := tree.BalancedBinary(63)
	const perNode = 16
	cases := []struct {
		name string
		rec  stats.Recorder
	}{
		{"none", nil},
		{"dist", stats.NewDistRecorder()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: perNode, Recorder: c.rec}, Root: 0}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(63*perNode)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkClosedLoopScale10k is the 10k-node scale cell the ladder
// scheduler targets: a closed-loop arrow run on a 10001-node balanced
// binary tree, roughly 10k events pending at every instant — two orders
// of magnitude beyond the paper's 76 processors. Reported events/s is
// raw simulator throughput at that pending-set size (where the old
// heap's O(log pending) per operation was most expensive); run with
// -benchmem to confirm the per-run allocation count stays flat (setup
// only) at this scale.
func BenchmarkClosedLoopScale10k(b *testing.B) {
	const n, perNode = 10001, 4
	t := tree.BalancedBinary(n)
	b.ReportAllocs()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: perNode}, Root: 0})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// benchClosedLoopScale is the scale-tier cell: a closed-loop arrow run
// on an implicit binary tree (tree.BinaryWalker — no LCA tables, no
// per-node closures), serial and under the lookahead-windowed parallel
// drain. The two sub-benchmarks produce identical simulated results
// (res.Events backs the reported events/s for both), so their ratio is
// a pure drain-overhead/speedup reading.
func benchClosedLoopScale(b *testing.B, n, perNode int) {
	t := tree.BinaryWalker(n)
	counts := []int{1, gort.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1] // single-CPU runner: the two cells are the same
	}
	for _, workers := range counts {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: perNode, Workers: workers}, Root: 0})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkClosedLoopScale100k is the 100k-node scale cell, an order of
// magnitude past BenchmarkClosedLoopScale10k.
func BenchmarkClosedLoopScale100k(b *testing.B) {
	benchClosedLoopScale(b, 100_001, 2)
}

// BenchmarkClosedLoopScale1M is the million-node tier — the scale
// DESIGN.md targets. Skipped under -short: CI's quick bench smoke
// passes -short, the dedicated bench job runs it for real.
func BenchmarkClosedLoopScale1M(b *testing.B) {
	if testing.Short() {
		b.Skip("million-node cell: skipped under -short")
	}
	benchClosedLoopScale(b, 1_000_001, 2)
}

// BenchmarkParallelCommit measures the sharded deterministic commit
// itself: a 100k-node closed-loop arrow run with per-link capacity
// (LinkTxTime 1, dense tier) so every committed send resolves link
// ownership, reserves capacity and clamps FIFO order — the full commit
// path, not just the no-link-state fast case. serial vs workers=N on
// identical simulated results makes the ratio a pure commit
// speedup/overhead reading; benchcheck's hotpath manifest pins the
// //arrow:hotpath annotations under it.
func BenchmarkParallelCommit(b *testing.B) {
	const n, perNode = 100_001, 2
	t := tree.BinaryWalker(n)
	counts := []int{1, gort.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1]
	}
	for _, workers := range counts {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{
					Spec: loop.Spec{PerNode: perNode, Workers: workers, LinkTxTime: 1},
					Root: 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkDrainWindowed measures the lookahead-windowed drain: the
// same 100k-node closed-loop arrow run under SynchronousScaled(8),
// whose MinDelay widens the parallel window to 8 ticks — each barrier
// fuses up to 8 ladder buckets, and the per-window key walk and merge
// amortize across them. serial vs workers=N on identical simulated
// results; the reported windows/Mev metric is barriers per million
// events (the quantity the fused window is built to shrink — compare
// the parallel sub-benchmark against the one-tick-window
// BenchmarkParallelCommit). benchcheck's hotpath manifest pins the
// window-drain //arrow:hotpath annotations under it.
func BenchmarkDrainWindowed(b *testing.B) {
	const n, perNode = 100_001, 2
	t := tree.BinaryWalker(n)
	counts := []int{1, gort.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1]
	}
	for _, workers := range counts {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			var ds sim.DrainStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{
					Spec: loop.Spec{
						PerNode:    perNode,
						Workers:    workers,
						Latency:    sim.SynchronousScaled(8),
						DrainStats: &ds,
					},
					Root: 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			if events > 0 {
				b.ReportMetric(float64(ds.Windows)/(float64(events)/1e6), "windows/Mev")
			}
		})
	}
}

// BenchmarkTreeDistance measures the LCA-based dT query, the analysis
// hot path.
func BenchmarkTreeDistance(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := tree.BalancedBinary(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := graph.NodeID(i % n)
				v := graph.NodeID((i * 7) % n)
				t.Dist(u, v)
			}
		})
	}
}

// BenchmarkSimulatorEventLoop measures raw simulator throughput
// (events/second) with a two-node message ping-pong.
func BenchmarkSimulatorEventLoop(b *testing.B) {
	t := tree.PathTree(2)
	s := sim.New(sim.Config{Topology: sim.TreeTopology{T: t}})
	hops := 0
	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		hops++
		if hops < b.N {
			ctx.Send(at, from, msg)
		}
	})
	s.ScheduleAt(0, func(ctx *sim.Context) { ctx.Send(0, 1, struct{}{}) })
	b.ResetTimer()
	s.Run()
}

// BenchmarkDirectories compares the arrow directory against the
// home-based directory on grids (the E11 experiment).
func BenchmarkDirectories(b *testing.B) {
	for _, side := range []int{3, 5, 8} {
		n := side * side
		g := graph.Grid(side, side)
		center, _ := g.Center()
		t, err := tree.BFS(g, center)
		if err != nil {
			b.Fatal(err)
		}
		cfg := directory.Config{PerNode: 50}
		b.Run(fmt.Sprintf("arrow/n=%d", n), func(b *testing.B) {
			var mk sim.Time
			for i := 0; i < b.N; i++ {
				res, err := directory.RunArrow(t, center, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mk = res.Makespan
			}
			b.ReportMetric(float64(mk), "makespan")
		})
		b.Run(fmt.Sprintf("home/n=%d", n), func(b *testing.B) {
			var mk sim.Time
			for i := 0; i < b.N; i++ {
				res, err := directory.RunHome(g, center, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mk = res.Makespan
			}
			b.ReportMetric(float64(mk), "makespan")
		})
	}
}

// BenchmarkStabilize measures repair cost from heavy random corruption.
func BenchmarkStabilize(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t := tree.BalancedBinary(n)
			rng := rand.New(rand.NewSource(1))
			corrupt := make([][]graph.NodeID, b.N)
			for i := range corrupt {
				links := make([]graph.NodeID, n)
				for v := range links {
					links[v] = graph.NodeID(rng.Intn(n))
				}
				corrupt[i] = links
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stabilize.Repair(t, corrupt[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIvyAmortized measures the Ivy find chain cost (Ginat et al.'s
// amortized Θ(log n)).
func BenchmarkIvyAmortized(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := ivy.NewDirectory(n, 0)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Find(graph.NodeID(rng.Intn(n)))
			}
			b.ReportMetric(d.AmortizedChain(), "chain/op")
		})
	}
}

// BenchmarkRuntimeVsSim is the DESIGN.md ablation: the same total-order
// workload executed on the deterministic simulator and on the goroutine
// runtime (wall-clock execution engines compared, not protocol cost).
func BenchmarkRuntimeVsSim(b *testing.B) {
	const n, requests = 31, 128
	t := tree.BalancedBinary(n)
	b.Run("sim", func(b *testing.B) {
		set := workload.OneShot(n, n/2, 3)
		for i := 0; i < b.N; i++ {
			if _, err := arrow.Run(t, set, arrow.Options{Root: 0}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := runtime.New(t, 0, runtime.Options{})
			net.Start()
			done := make(chan struct{})
			go func() {
				for range net.Completions() {
				}
				close(done)
			}()
			for r := 0; r < requests; r++ {
				net.Request(graph.NodeID(r % n))
			}
			net.Stop()
			<-done
		}
	})
}

// BenchmarkOneShot measures the one-shot regime end to end, including
// the exact optimal computation.
func BenchmarkOneShot(b *testing.B) {
	for _, r := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rows, err := analysis.OneShotExperiment(32, []int{r}, 1)
				if err != nil {
					b.Fatal(err)
				}
				ratio = rows[0].Ratio
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkChurnRecovery measures the full degraded-mode cycle on the
// arrow closed loop: link churn drops queue messages, the embedded
// message-driven repair restores the pointer state, and lost requests
// re-issue. Reported metrics are the recovery costs (repair messages
// and simulated repair time per run) — deterministic for the fixed
// plan, so the smoke run doubles as a regression canary for the fault
// layer.
func BenchmarkChurnRecovery(b *testing.B) {
	t := tree.BalancedBinary(63)
	plan := &sim.FaultPlan{Events: sim.LinkChurn(sim.TreeLinks(t), 2, 40, 30, 1500, 7)}
	var res *arrow.LoopResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: 30, Faults: plan}, Root: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Dropped == 0 {
		b.Fatal("churn plan dropped nothing; benchmark is vacuous")
	}
	b.ReportMetric(float64(res.RepairMessages), "repair-msgs")
	b.ReportMetric(float64(res.RepairTime), "repair-time")
	b.ReportMetric(float64(res.Reissued), "reissued")
}

// BenchmarkShardClosedLoop measures the multi-object shard driver — the
// hot issue/forward path shared by all four protocol steppers — with k
// arrow instances contending on one capacity-1 complete network. The
// reported ops/s is completed requests over wall clock; run with
// -benchmem to watch the driver's flat per-run allocation profile.
func BenchmarkShardClosedLoop(b *testing.B) {
	const n, perNode = 32, 16
	for _, k := range []int{16, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			topo := sim.NewCompleteTopology(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step, err := arrow.NewShardForest(n, k)
				if err != nil {
					b.Fatal(err)
				}
				res, err := shard.Run(topo, step, "arrow", shard.Spec{
					Spec:    loop.Spec{PerNode: perNode, Seed: 1, LinkTxTime: 1},
					Objects: k,
					Skew:    1.1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Agg.Requests != n*perNode {
					b.Fatalf("completed %d requests, want %d", res.Agg.Requests, n*perNode)
				}
			}
			b.ReportMetric(float64(n*perNode)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}
