// Command arrowbench regenerates the paper's tables and figures plus the
// theory-validation experiments described in DESIGN.md.
//
// Usage:
//
//	arrowbench -exp fig10        # Figure 10: arrow vs centralized makespan
//	arrowbench -exp fig11        # Figure 11: avg hops per queuing op
//	arrowbench -exp lowerbound   # Theorem 4.1 instance sweep
//	arrowbench -exp adversarial  # randomized worst-ratio search
//	arrowbench -exp ratio        # Theorem 3.19 ratio sweep (exact opt)
//	arrowbench -exp sequential   # Demmer–Herlihy sequential regime
//	arrowbench -exp trees        # spanning-tree ablation
//	arrowbench -exp arbitration  # simultaneous-message arbitration ablation
//	arrowbench -exp async        # Section 3.8 asynchronous models
//	arrowbench -exp stretch      # Theorem 4.2 shortcut gadget
//	arrowbench -exp nnapprox     # Theorem 3.18 NN-vs-optimal sweep
//	arrowbench -exp baselines    # arrow vs NTA vs centralized vs Ivy, closed loop + static
//	arrowbench -exp perf         # per-request latency/hop distributions (p50..p999), all protocols
//	arrowbench -exp oneshot      # PODC'01 one-shot regime: ratio vs s log |R|
//	arrowbench -exp directory    # arrow directory vs home-based (Herlihy–Warres)
//	arrowbench -exp commtree     # Peleg–Reshef demand-aware tree selection
//	arrowbench -exp stabilize    # self-stabilization: round oracle vs message-driven repair
//	arrowbench -exp churn        # dynamic topology: availability/latency vs fault rate, all protocols
//	arrowbench -exp scale        # million-node tier: implicit topologies, bytes/node, events/s
//	arrowbench -exp shard        # multi-object sharding: k objects on one shared capacity-1 network
//	arrowbench -exp all          # everything above except scale (opt in: minutes of runtime)
//
// The -pernode, -seed and -sizes flags scale the Section 5 experiments;
// the paper used 100,000 requests per processor on up to 76 processors,
// which this harness reproduces shape-exactly at smaller default sizes
// (pass -pernode 100000 for the full run). The heavyweight sweeps
// (fig10/fig11, adversarial, ratio, baselines) fan their cells across
// -workers simulator workers (default GOMAXPROCS); the remaining
// experiments always use GOMAXPROCS. Results are identical for every
// worker count. Pass -json to emit every table as a machine-readable
// JSON document (one per table) instead of aligned text, so CI can
// track the numbers across commits. For -exp perf, -json emits the
// versioned arrowbench/perf document instead of generic tables; CI
// captures it as BENCH_perf.json and gates regressions with
// cmd/benchcheck.
//
// -exp scale is the million-node tier: every protocol on its implicit
// topology (no LCA tables, no O(n²) metric), sequential cells reporting
// bytes/node and events/s. Its -sizes default is 10000,100000,1000000
// (an explicit -sizes overrides it), its per-node count derives from a
// 2M total-request budget unless -pernode is passed explicitly, and
// -workers selects the lookahead-windowed intra-run drain (results are
// bit-identical at any count). Pass -workersweep 1,2,4 to rerun each
// cell at those drain widths and report events/s and parallel speedup
// per worker count — reported, never gated; the sweep also verifies the
// deterministic outputs match across counts. -latscale S (S > 1) runs
// the cells under the S-scaled synchronous latency model, widening the
// drain's lookahead window to S ticks so each barrier fuses S ticks'
// worth of events; the window width, barrier count and mean fused batch
// size appear as table columns and document fields either way. With
// -json it emits the versioned arrowbench/scale document.
//
// -exp shard is the multi-object tier: every protocol serving k
// independent objects on one shared 32-node network with per-link
// capacity 1, across an objects × Zipf-skew grid (default k in
// {16, 128, 1024}, skew in {0, 1.1}; override the object counts with
// -objects). Each row reports the aggregate cost of the combined
// traffic plus a fairness summary across objects. Its per-node default
// is 250 requests unless -pernode is passed explicitly, and -workers
// fans both the sweep and each run's drain — the output, including the
// versioned arrowbench/shard JSON document under -json, is
// byte-identical at any worker count.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiment (the memory profile is written at exit, after a
// final GC), for digging into exactly the hot paths the scale tier
// exercises.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/tree"
	"repro/internal/workload"
)

// jsonOut switches table output to machine-readable JSON (-json).
var jsonOut bool

// emit prints a result table in the selected output format.
func emit(t *analysis.Table) {
	if jsonOut {
		fmt.Print(t.RenderJSON())
		return
	}
	fmt.Print(t.Render())
	fmt.Println()
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see command doc)")
	perNode := flag.Int("pernode", 2000, "closed-loop requests per node (paper: 100000)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	sizes := flag.String("sizes", "2,4,8,16,24,32,48,64,76", "comma-separated node counts for fig10/fig11 and baselines")
	objects := flag.String("objects", "", "comma-separated object counts for -exp shard (default 16,128,1024)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	workerSweep := flag.String("workersweep", "", "comma-separated worker counts for the -exp scale throughput sweep (reported, never gated)")
	latScale := flag.Int64("latscale", 0, "-exp scale synchronous latency scale (>1 widens the parallel drain's lookahead window to this many ticks)")
	jsonFlag := flag.Bool("json", false, "emit machine-readable JSON tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (post-GC, at exit) to this file")
	flag.Parse()
	jsonOut = *jsonFlag

	// The scale tier has its own size/pernode defaults (millions of
	// nodes, a fixed total-request budget); an explicit flag still wins.
	sizesSet, perNodeSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sizes":
			sizesSet = true
		case "pernode":
			perNodeSet = true
		}
	})

	ns, err := parseSizes(*sizes)
	if err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	defer func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}()
	experiments := map[string]func() error{
		"fig10":       func() error { return runSP2(ns, *perNode, *seed, *workers, true, false) },
		"fig11":       func() error { return runSP2(ns, *perNode, *seed, *workers, false, true) },
		"lowerbound":  func() error { return runLowerBound() },
		"adversarial": func() error { return runAdversarial(*seed, *workers) },
		"ratio":       func() error { return runRatio(*seed, *workers) },
		"sequential":  func() error { return runSequential(*seed) },
		"trees":       func() error { return runTrees(*seed) },
		"arbitration": func() error { return runArbitration(*seed) },
		"async":       func() error { return runAsync(*seed) },
		"stretch":     func() error { return runStretch() },
		"nnapprox":    func() error { return runNNApprox(*seed) },
		"baselines":   func() error { return runBaselines(ns, *perNode, *seed, *workers) },
		"perf":        func() error { return runPerf(ns, *perNode, *seed, *workers) },
		"oneshot":     func() error { return runOneShot(*seed) },
		"directory":   func() error { return runDirectory(*seed) },
		"commtree":    func() error { return runCommTree(*seed) },
		"stabilize":   func() error { return runStabilize(*seed) },
		"churn":       func() error { return runChurn(*perNode, *seed, *workers) },
		"scale": func() error {
			cfg := analysis.ScaleConfig{Seed: *seed, Workers: *workers, LatScale: *latScale}
			if cfg.Workers == 0 {
				cfg.Workers = runtime.GOMAXPROCS(0)
			}
			if sizesSet {
				cfg.Sizes = ns
			}
			if perNodeSet {
				cfg.PerNode = *perNode
			}
			if *workerSweep != "" {
				ws, err := parseSizes(*workerSweep)
				if err != nil {
					return err
				}
				cfg.WorkerSweep = ws
			}
			return runScale(cfg)
		},
		"shard": func() error {
			cfg := analysis.ShardConfig{Seed: *seed, Workers: *workers, PerNode: 250}
			if perNodeSet {
				cfg.PerNode = *perNode
			}
			if *objects != "" {
				ks, err := parseSizes(*objects)
				if err != nil {
					return err
				}
				cfg.Objects = ks
			}
			return runShard(cfg)
		},
	}
	if *exp == "all" {
		order := []string{
			"fig10", "fig11", "lowerbound", "adversarial", "ratio", "sequential",
			"trees", "arbitration", "async", "stretch", "nnapprox", "baselines",
			"perf", "oneshot", "directory", "commtree", "stabilize", "churn",
			"shard",
		}
		for _, name := range order {
			if name == "fig10" {
				if err := runSP2(ns, *perNode, *seed, *workers, true, true); err != nil {
					fatal(err)
				}
				continue
			}
			if name == "fig11" {
				continue // already printed with fig10
			}
			if err := experiments[name](); err != nil {
				fatal(err)
			}
		}
		return
	}
	run, ok := experiments[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := run(); err != nil {
		fatal(err)
	}
}

func parseSizes(s string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		ns = append(ns, n)
	}
	return ns, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arrowbench:", err)
	os.Exit(1)
}

func runSP2(ns []int, perNode int, seed int64, workers int, fig10, fig11 bool) error {
	rows, err := analysis.SP2ExperimentWorkers(ns, perNode, seed, workers)
	if err != nil {
		return err
	}
	if fig10 {
		emit(analysis.Fig10Table(rows))
	}
	if fig11 {
		emit(analysis.Fig11Table(rows))
	}
	return nil
}

func runLowerBound() error {
	rows, err := analysis.LowerBoundSweep([]int{3, 4, 5, 6, 7, 8})
	if err != nil {
		return err
	}
	emit(analysis.LowerBoundTable(rows))
	return nil
}

func runAdversarial(seed int64, workers int) error {
	results, err := analysis.AdversarialSweep([]int{8, 16, 32, 64, 128}, 10, 600, seed, workers)
	if err != nil {
		return err
	}
	emit(analysis.AdversarialTable(results))
	return nil
}

func runRatio(seed int64, workers int) error {
	rows, err := analysis.MeasureRatios(analysis.DefaultRatioConfigs(seed), workers)
	if err != nil {
		return err
	}
	emit(analysis.RatioTable("Theorem 3.19 — measured competitive ratio vs O(s log D)", rows))
	return nil
}

func runSequential(seed int64) error {
	rows, err := analysis.SequentialExperiment([]int{8, 16, 32, 64}, 40, seed)
	if err != nil {
		return err
	}
	emit(analysis.SequentialTable(rows))
	return nil
}

func runTrees(seed int64) error {
	rows, err := analysis.TreeChoiceExperiment(32, 24, seed)
	if err != nil {
		return err
	}
	emit(analysis.TreeChoiceTable(rows))
	return nil
}

func runArbitration(seed int64) error {
	rows, err := analysis.ArbitrationExperiment(63, seed)
	if err != nil {
		return err
	}
	emit(analysis.ArbitrationTable(rows))
	return nil
}

func runAsync(seed int64) error {
	rows, err := analysis.AsyncExperiment(32, 16, 8, seed)
	if err != nil {
		return err
	}
	emit(analysis.AsyncTable(rows))
	return nil
}

func runStretch() error {
	rows, err := analysis.StretchExperiment(4, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	emit(analysis.StretchTable(rows))
	return nil
}

func runNNApprox(seed int64) error {
	rows, err := analysis.NNApproximationSweep([]int{6, 8, 10, 12}, 4, seed)
	if err != nil {
		return err
	}
	t := &analysis.Table{
		Title:   "Theorem 3.18 — NN heuristic vs exact optimum (random instances)",
		Headers: []string{"points", "NN cost", "opt tour", "ratio", "bound"},
	}
	for _, r := range rows {
		t.AddRow(r.Points, r.NNCost, r.Opt, r.Ratio, r.Bound)
	}
	emit(t)
	return nil
}

func runOneShot(seed int64) error {
	rows, err := analysis.OneShotExperiment(32, []int{2, 4, 8, 12}, seed)
	if err != nil {
		return err
	}
	emit(analysis.OneShotTable(rows))
	return nil
}

func runDirectory(seed int64) error {
	rows, err := analysis.DirectoryExperiment([]int{2, 3, 5, 8}, 200, seed)
	if err != nil {
		return err
	}
	emit(analysis.DirectoryTable(rows))
	return nil
}

// runBaselines compares every protocol the engine knows — arrow, NTA,
// centralized and Ivy — first on the paper's closed-loop regime across
// the -sizes node counts (split queue/reply hop columns), then on one
// shared static Poisson workload with the optimal-cost bound. Both are
// single parallel sweeps.
func runBaselines(ns []int, perNode int, seed int64, workers int) error {
	rows, err := analysis.BaselinesClosedLoop(ns, perNode, seed, workers)
	if err != nil {
		return err
	}
	emit(analysis.BaselinesClosedLoopTable(rows))

	const n = 48
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)
	set := workload.Poisson(n, 1.0, 200, seed)
	if len(set) == 0 {
		return fmt.Errorf("empty workload")
	}
	inst := engine.Instance{
		Label:    fmt.Sprintf("complete%d", n),
		Graph:    g,
		Tree:     t,
		Root:     0,
		Workload: engine.NewStatic(set).MustBuild(),
		Seed:     seed,
	}
	cells := engine.Grid([]engine.Instance{inst},
		engine.Arrow{}, engine.NTA{}, engine.Centralized{}, engine.Ivy{})
	outs := engine.Sweep(cells, workers)
	if err := engine.FirstError(outs); err != nil {
		return err
	}
	bounds := opt.Compute(g, 0, set, opt.DistOfGraph(g))
	den := bounds.Upper
	if bounds.Exact {
		den = bounds.Lower
	}
	tbl := &analysis.Table{
		Title:   fmt.Sprintf("Baselines — complete graph n=%d, |R|=%d Poisson requests (static)", n, len(set)),
		Headers: []string{"protocol", "total latency", "messages", "makespan", "ratio vs opt bound"},
	}
	for _, c := range engine.Costs(outs) {
		tbl.AddRow(c.Protocol, c.TotalLatency, c.QueueHops, c.Makespan, opt.Ratio(c.TotalLatency, den))
	}
	emit(tbl)
	return nil
}

// runPerf runs the per-request observability experiment: latency and
// hop distributions for every protocol over the size × workload grid.
// With -json it emits the versioned arrowbench/perf document (the
// BENCH_perf.json schema) instead of generic tables, so CI can gate on
// the deterministic simulated metrics.
func runPerf(ns []int, perNode int, seed int64, workers int) error {
	rows, err := analysis.PerfExperiment(ns, perNode, seed, workers)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitDoc(analysis.PerfDocument(analysis.PerfConfig{
			Sizes: ns, PerNode: perNode, Seed: seed,
		}, rows))
	}
	emit(analysis.PerfLatencyTable(rows))
	emit(analysis.PerfHopsTable(rows))
	return nil
}

// runScale runs the million-node tier: sequential cells, implicit
// topologies, per-cell allocation and throughput accounting. With -json
// it emits the versioned arrowbench/scale document (the BENCH_scale.json
// schema) for CI's schema check and artifact trail.
func runScale(cfg analysis.ScaleConfig) error {
	rows, err := analysis.ScaleExperiment(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitDoc(analysis.ScaleDocument(cfg, rows))
	}
	emit(analysis.ScaleTable(rows))
	if t := analysis.ScaleSweepTable(rows); t != nil {
		emit(t)
	}
	return nil
}

// runShard runs the multi-object sharding tier: k protocol instances on
// one shared capacity-1 network, across an objects × skew grid. With
// -json it emits the versioned arrowbench/shard document, byte-identical
// at any -workers count.
func runShard(cfg analysis.ShardConfig) error {
	rows, err := analysis.ShardExperiment(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitDoc(analysis.ShardDocument(cfg, rows))
	}
	emit(analysis.ShardTable(rows))
	return nil
}

func runCommTree(seed int64) error {
	rows, err := analysis.CommTreeExperiment(6, 60, seed)
	if err != nil {
		return err
	}
	emit(analysis.CommTreeTable(rows))
	return nil
}

func runStabilize(seed int64) error {
	cfg := analysis.StabilizeConfig{
		Sizes: []int{15, 63, 255, 1023}, CorruptFrac: 0.3, Trials: 20, Seed: seed,
	}
	rows, err := analysis.StabilizeExperiment(cfg.Sizes, cfg.CorruptFrac, cfg.Trials, cfg.Seed)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitDoc(analysis.StabilizeDocument(cfg, rows))
	}
	emit(analysis.StabilizeTable(rows))
	return nil
}

// runChurn sweeps fault rate × workload × protocol under deterministic
// node churn: every protocol faces the identical failure trace per
// rate, recovering by its own mechanism (arrow: message-driven repair;
// NTA/Ivy: re-issue; centralized: coordinator failover). -pernode
// scales the cells but is capped: the churn window is sized relative to
// the run, so the smoke-sized default stays representative.
func runChurn(perNode int, seed int64, workers int) error {
	if perNode > 500 {
		perNode = 500
	}
	cfg := analysis.ChurnConfig{
		N: 24, PerNode: perNode, Rates: []float64{0, 0.5, 1, 2}, Seed: seed,
	}
	rows, err := analysis.ChurnExperiment(cfg.N, cfg.PerNode, cfg.Rates, cfg.Seed, workers)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitDoc(analysis.ChurnDocument(cfg, rows))
	}
	emit(analysis.ChurnAvailabilityTable(rows))
	emit(analysis.ChurnLatencyTable(rows))
	return nil
}

// emitDoc prints one versioned machine-readable document.
func emitDoc(doc any) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}
