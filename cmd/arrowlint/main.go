// Command arrowlint statically enforces the repo's determinism,
// hot-path, and protocol invariants (see internal/lint). It speaks the
// `go vet -vettool` driver protocol and is usable two ways:
//
//	go vet -vettool=$(which arrowlint) ./...   # as a vet plugin
//	arrowlint ./...                            # standalone
//
// Standalone mode simply re-execs `go vet -vettool=<self>` with the
// same package patterns, so both paths run the identical protocol:
// per-package vet configs, compiler export data for imports, build
// cache integration. Individual analyzers can be disabled with
// -determinism=false, -hotpath=false, -msgswitch=false,
// -schedorder=false.
//
// Findings exit 2; usage or typecheck errors exit 1; clean exits 0.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The -V=full handshake must work before any other flag handling:
	// cmd/go probes it to compute the tool's build ID for caching.
	if len(args) == 1 && args[0] == "-V=full" {
		return printVersion()
	}
	fs := flag.NewFlagSet("arrowlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol handshake)")
	fs.String("V", "", "print version and exit (cmd/go protocol)")
	enable := map[string]*bool{}
	for _, a := range lint.Suite() {
		if a.Name == "arrowdir" {
			continue // directive validation cannot be disabled
		}
		enable[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *printFlags {
		return printFlagsJSON()
	}
	enabled := map[string]bool{"arrowdir": true}
	for name, on := range enable {
		enabled[name] = *on
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunVet(os.Stderr, rest[0], enabled)
	}
	return standalone(enabled, rest)
}

// standalone re-execs `go vet -vettool=<self>` so package loading,
// export data, and caching all come from the real toolchain.
func standalone(enabled map[string]bool, patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arrowlint: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	for _, a := range lint.Suite() {
		if on, ok := enabled[a.Name]; ok && !on && a.Name != "arrowdir" {
			vetArgs = append(vetArgs, "-"+a.Name+"=false")
		}
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "arrowlint: %v\n", err)
		return 1
	}
	return 0
}

// printVersion implements the cmd/go -V=full handshake: the output must
// be "<name> version <vers> ... buildID=<id>", where the ID changes
// whenever the tool's behavior could. Hashing the executable gives
// exactly that: rebuild arrowlint and every cached vet verdict is
// invalidated.
func printVersion() int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arrowlint: %v\n", err)
		return 1
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arrowlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "arrowlint: %v\n", err)
		return 1
	}
	fmt.Printf("arrowlint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// printFlagsJSON implements the `-flags` handshake: go vet asks the
// tool which flags it accepts so it can pass them through.
func printFlagsJSON() int {
	type vetFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []vetFlag
	for _, a := range lint.Suite() {
		if a.Name == "arrowdir" {
			continue
		}
		out = append(out, vetFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arrowlint: %v\n", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}
