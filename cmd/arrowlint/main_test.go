package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildArrowlint compiles the arrowlint binary into a temp dir and
// returns its path. Building through the real toolchain (rather than
// calling run() in-process) is the point: the meta-tests below exercise
// the -V=full / -flags / vet.cfg protocol exactly as CI does.
func buildArrowlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "arrowlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build arrowlint: %v\n%s", err, out)
	}
	return bin
}

// TestArrowlintSelfClean is the lint gate on the repo itself: the full
// suite, driven through `go vet -vettool`, must report nothing. Every
// intentional wall-clock, RNG, or heap site carries an //arrow:allow
// directive, so a finding here is either a real regression or a missing
// annotation — both are failures.
func TestArrowlintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole repo; skipped in -short")
	}
	bin := buildArrowlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("arrowlint found issues in the repo:\n%s\n(%v)", out, err)
	}
}

// TestArrowlintReportsThroughVet proves the vet driver protocol wiring
// end to end: a scratch module with a known determinism violation must
// make `go vet -vettool=arrowlint` fail and print the diagnostic. This
// keeps TestArrowlintSelfClean honest — if the vet.cfg handling ever
// broke so that findings were silently dropped, the self-clean test
// would pass vacuously and this one would catch it.
func TestArrowlintReportsThroughVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and a scratch module; skipped in -short")
	}
	bin := buildArrowlint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "bad.go"), `// Package bad opts into determinism checking and then violates it.
//
//arrow:deterministic
package bad

import "time"

// Stamp leaks wall-clock time into a deterministic package.
func Stamp() time.Time { return time.Now() }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on a package with a known violation:\n%s", out)
	}
	if !bytes.Contains(out, []byte("time.Now in deterministic package bad")) {
		t.Fatalf("diagnostic missing from vet output:\n%s", out)
	}
}

// TestArrowlintFlagDisablesAnalyzer checks the -<analyzer>=false flags
// survive the trip through go vet's flag handshake: with -determinism
// off, the same scratch violation goes unreported.
func TestArrowlintFlagDisablesAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and a scratch module; skipped in -short")
	}
	bin := buildArrowlint(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "bad.go"), `//arrow:deterministic
package bad

import "time"

func Stamp() time.Time { return time.Now() }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "-determinism=false", "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-determinism=false still reported findings:\n%s\n(%v)", out, err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
