// Command arrowtrace replays the paper's Figures 1–5 walkthrough: two
// concurrent queuing requests on a small spanning tree, printing every
// pointer flip, message hop, and completion, plus the pointer
// configuration after each step.
//
// Usage:
//
//	arrowtrace             # the 6-node example from the paper's figures
//	arrowtrace -n 15 -r 4  # 4 concurrent requests on a 15-node binary tree
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 0, "binary-tree size (0 = use the paper's 6-node example)")
	r := flag.Int("r", 2, "number of simultaneous requests (with -n)")
	seed := flag.Int64("seed", 1, "request placement seed (with -n)")
	flag.Parse()

	var (
		t    *tree.Tree
		set  queuing.Set
		root graph.NodeID
	)
	if *n == 0 {
		// The tree of Figures 1–5:
		//
		//	     x(0)
		//	    /    \
		//	  u(1)   y(2)
		//	  /  \      \
		//	v(3) z(4)   w(5)
		//
		// Root (initial sink) x; nodes v and w issue concurrent requests
		// m1 and m2.
		var err error
		t, err = tree.FromParents(0,
			[]graph.NodeID{0, 0, 0, 1, 1, 2},
			[]graph.Weight{0, 1, 1, 1, 1, 1})
		if err != nil {
			fatal(err)
		}
		root = 0
		set = queuing.NewSet([]queuing.Request{
			{Node: 3, Time: 0}, // v issues m1
			{Node: 5, Time: 0}, // w issues m2
		})
		fmt.Println("Paper Figures 1-5: tree x(0) {u(1) {v(3) z(4)} y(2) {w(5)}}, root x")
		fmt.Println("v(3) and w(5) issue concurrent requests m1=r0, m2=r1")
		fmt.Println()
	} else {
		t = tree.BalancedBinary(*n)
		root = 0
		set = workload.OneShot(*n, *r, *seed)
		fmt.Printf("Balanced binary tree, n=%d, %d simultaneous requests\n\n", *n, *r)
	}

	rec := trace.NewRecorder()
	res, err := arrow.Run(t, set, arrow.Options{Root: root, Tracer: rec})
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- event log ---")
	fmt.Print(rec.RenderLog())
	fmt.Println("\n--- pointer configurations (per flip) ---")
	fmt.Print(rec.RenderSnapshots())
	fmt.Println("--- final state ---")
	fmt.Printf("queuing order: ")
	for i, id := range res.Order {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Printf("r%d(v%d)", id, set[id].Node)
	}
	fmt.Printf("\nfinal sink: v%d\ntotal latency: %d  total hops: %d\n",
		res.FinalSink, res.TotalLatency, res.TotalHops)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arrowtrace:", err)
	os.Exit(1)
}
