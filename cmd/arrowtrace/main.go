// Command arrowtrace replays the paper's Figures 1–5 walkthrough: two
// concurrent queuing requests on a small spanning tree, printing every
// pointer flip, message hop, and completion, plus the pointer
// configuration after each step. With -chaos it instead replays a
// failure/recovery episode: a link outage under closed-loop load, the
// message-driven self-stabilizing repair at heal, and the recovery
// counters.
//
// Usage:
//
//	arrowtrace             # the 6-node example from the paper's figures
//	arrowtrace -n 15 -r 4  # 4 concurrent requests on a 15-node binary tree
//	arrowtrace -chaos      # scripted link failure + repair episode
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/workload"
)

// config carries the parsed flags; main builds it, tests build it
// directly.
type config struct {
	n     int
	r     int
	seed  int64
	chaos bool
}

func main() {
	cfg := config{}
	flag.IntVar(&cfg.n, "n", 0, "binary-tree size (0 = use the paper's 6-node example)")
	flag.IntVar(&cfg.r, "r", 2, "number of simultaneous requests (with -n)")
	flag.Int64Var(&cfg.seed, "seed", 1, "request placement seed (with -n)")
	flag.BoolVar(&cfg.chaos, "chaos", false, "replay a link-failure/repair episode instead")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arrowtrace:", err)
		os.Exit(1)
	}
}

// run executes the selected walkthrough, writing the full trace to w.
func run(cfg config, w io.Writer) error {
	if cfg.chaos {
		return runChaos(w)
	}
	var (
		t    *tree.Tree
		set  queuing.Set
		root graph.NodeID
	)
	if cfg.n == 0 {
		// The tree of Figures 1–5:
		//
		//	     x(0)
		//	    /    \
		//	  u(1)   y(2)
		//	  /  \      \
		//	v(3) z(4)   w(5)
		//
		// Root (initial sink) x; nodes v and w issue concurrent requests
		// m1 and m2.
		var err error
		t, err = tree.FromParents(0,
			[]graph.NodeID{0, 0, 0, 1, 1, 2},
			[]graph.Weight{0, 1, 1, 1, 1, 1})
		if err != nil {
			return err
		}
		root = 0
		set = queuing.NewSet([]queuing.Request{
			{Node: 3, Time: 0}, // v issues m1
			{Node: 5, Time: 0}, // w issues m2
		})
		fmt.Fprintln(w, "Paper Figures 1-5: tree x(0) {u(1) {v(3) z(4)} y(2) {w(5)}}, root x")
		fmt.Fprintln(w, "v(3) and w(5) issue concurrent requests m1=r0, m2=r1")
		fmt.Fprintln(w)
	} else {
		t = tree.BalancedBinary(cfg.n)
		root = 0
		set = workload.OneShot(cfg.n, cfg.r, cfg.seed)
		fmt.Fprintf(w, "Balanced binary tree, n=%d, %d simultaneous requests\n\n", cfg.n, cfg.r)
	}

	rec := trace.NewRecorder()
	res, err := arrow.Run(t, set, arrow.Options{Root: root, Tracer: rec})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "--- event log ---")
	fmt.Fprint(w, rec.RenderLog())
	fmt.Fprintln(w, "\n--- pointer configurations (per flip) ---")
	fmt.Fprint(w, rec.RenderSnapshots())
	fmt.Fprintln(w, "--- final state ---")
	fmt.Fprintf(w, "queuing order: ")
	for i, id := range res.Order {
		if i > 0 {
			fmt.Fprint(w, " -> ")
		}
		fmt.Fprintf(w, "r%d(v%d)", id, set[id].Node)
	}
	fmt.Fprintf(w, "\nfinal sink: v%d\ntotal latency: %d  total hops: %d\n",
		res.FinalSink, res.TotalLatency, res.TotalHops)
	return nil
}

// runChaos replays the scripted failure/recovery episode: a 6-node path
// under closed-loop load, one link outage that drops queue messages in
// flight, and the self-stabilizing repair that merges the split regions
// back once the link heals.
func runChaos(w io.Writer) error {
	t := tree.PathTree(6)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 4, Kind: sim.LinkDown, U: 2, V: 3},
		{At: 25, Kind: sim.LinkUp, U: 2, V: 3},
	}}
	log := trace.NewChaosLog()
	fmt.Fprintln(w, "Chaos episode: 6-node path, closed loop (3 reqs/node), link v2--v3 fails at t=4, heals at t=25")
	fmt.Fprintln(w)
	res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{
		Spec:           loop.Spec{PerNode: 3, Faults: plan},
		Root:           0,
		FaultObserver:  log.OnFault,
		RepairObserver: log.OnRepair,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "--- failure/recovery log ---")
	fmt.Fprint(w, log.Render())
	fmt.Fprintln(w, "--- recovery counters ---")
	fmt.Fprintf(w, "requests: %d  dropped: %d  reissued: %d  replies lost: %d\n",
		res.Requests, res.Dropped, res.Reissued, res.RepliesLost)
	fmt.Fprintf(w, "repair episodes: %d  repair messages: %d  repair time: %d\n",
		res.RepairEpisodes, res.RepairMessages, res.RepairTime)
	fmt.Fprintf(w, "availability: %.3f  makespan: %d\n",
		1-float64(res.Affected)/float64(res.Requests), res.Makespan)
	return nil
}
