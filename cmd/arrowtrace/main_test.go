package main

import (
	"strings"
	"testing"
)

// capture runs the command body and returns its output.
func capture(t *testing.T, cfg config) string {
	t.Helper()
	var b strings.Builder
	if err := run(cfg, &b); err != nil {
		t.Fatalf("run(%+v): %v", cfg, err)
	}
	return b.String()
}

// TestPaperWalkthrough smoke-tests the default mode: the Figures 1–5
// replay produces a non-empty, stable trace with the expected sections.
func TestPaperWalkthrough(t *testing.T) {
	out := capture(t, config{})
	for _, want := range []string{
		"--- event log ---", "--- pointer configurations (per flip) ---",
		"--- final state ---", "queuing order:", "final sink:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if again := capture(t, config{}); again != out {
		t.Error("default walkthrough not stable across runs")
	}
}

// TestRandomTreeMode smoke-tests the -n path on a tiny instance.
func TestRandomTreeMode(t *testing.T) {
	cfg := config{n: 15, r: 4, seed: 3}
	out := capture(t, cfg)
	if !strings.Contains(out, "Balanced binary tree, n=15") || !strings.Contains(out, "final sink:") {
		t.Errorf("unexpected -n output:\n%s", out)
	}
	if again := capture(t, cfg); again != out {
		t.Error("-n mode not stable across runs")
	}
}

// TestChaosMode smoke-tests the failure/recovery replay: the log shows
// the outage, a repair token, and convergence, stably.
func TestChaosMode(t *testing.T) {
	out := capture(t, config{chaos: true})
	for _, want := range []string{
		"x link v2--v3 DOWN", "o link v2--v3 up",
		"repair token", "repair converged",
		"--- recovery counters ---", "availability:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q\n%s", want, out)
		}
	}
	if again := capture(t, config{chaos: true}); again != out {
		t.Error("chaos mode not stable across runs")
	}
}
