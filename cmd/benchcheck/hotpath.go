package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// hotpathBenchmarks maps every package that carries //arrow:hotpath
// annotations to the root-package benchmarks that exercise those
// functions with -benchmem. The -hotpath check fails when an annotated
// package is missing from this manifest (a hot path nobody measures),
// when a manifest entry no longer has annotations (a stale claim), or
// when a mapped benchmark is absent from the bench output (the
// measurement silently dropped out of CI).
var hotpathBenchmarks = map[string][]string{
	"repro/internal/sim":         {"BenchmarkSimSendDispatch", "BenchmarkParallelCommit", "BenchmarkDrainWindowed"},
	"repro/internal/arrow":       {"BenchmarkClosedLoopObserved"},
	"repro/internal/loop":        {"BenchmarkBaselinesClosedLoop"},
	"repro/internal/centralized": {"BenchmarkBaselinesClosedLoop"},
	"repro/internal/shard":       {"BenchmarkShardClosedLoop"},
}

// modulePath is the import-path prefix for packages under the repo root.
const modulePath = "repro"

// checkHotpathCoverage cross-checks the //arrow:hotpath annotations
// under root against the benchmarks recorded in the bench output file:
// every annotated package must map, via hotpathBenchmarks, to at least
// one benchmark that actually ran. Directive scanning is textual (a
// line-leading //arrow:hotpath comment), matching how arrowlint's
// hotpath analyzer discovers them; testdata trees and _test.go files
// are skipped because lint fixtures deliberately contain directives.
func checkHotpathCoverage(root, benchPath string) error {
	annotated, err := hotpathPackages(root)
	if err != nil {
		return err
	}
	if len(annotated) == 0 {
		return fmt.Errorf("no //arrow:hotpath annotations found under %s (wrong -hotpath root?)", root)
	}
	ran, err := benchmarksRun(benchPath)
	if err != nil {
		return err
	}
	var msgs []string
	for _, pkg := range sortedKeys(annotated) {
		benches, ok := hotpathBenchmarks[pkg]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("package %s has //arrow:hotpath functions but no entry in the benchcheck manifest; add it to hotpathBenchmarks with the benchmark that measures it", pkg))
			continue
		}
		for _, b := range benches {
			if !ran[b] {
				msgs = append(msgs, fmt.Sprintf("package %s maps to %s, which is missing from %s (did the benchmark sweep skip it?)", pkg, b, benchPath))
			}
		}
	}
	for _, pkg := range sortedKeys(hotpathBenchmarks) {
		if !annotated[pkg] {
			msgs = append(msgs, fmt.Sprintf("manifest entry %s has no //arrow:hotpath annotations left; remove it from hotpathBenchmarks", pkg))
		}
	}
	if len(msgs) > 0 {
		return fmt.Errorf("hotpath coverage broken:\n  %s", strings.Join(msgs, "\n  "))
	}
	return nil
}

// hotpathPackages walks the Go source under root and returns the import
// paths of packages containing a //arrow:hotpath directive.
func hotpathPackages(root string) (map[string]bool, error) {
	pkgs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// Skip testdata (lint fixtures carry deliberate directives)
			// and hidden dirs — but never the walk root itself, whose
			// name may be "." or "..".
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		has, err := fileHasHotpath(path)
		if err != nil {
			return err
		}
		if has {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			pkg := modulePath
			if rel != "." {
				pkg += "/" + filepath.ToSlash(rel)
			}
			pkgs[pkg] = true
		}
		return nil
	})
	return pkgs, err
}

func fileHasHotpath(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "//arrow:hotpath" || strings.HasPrefix(line, "//arrow:hotpath ") {
			return true, nil
		}
	}
	return false, sc.Err()
}

// benchmarksRun parses go test -bench output and returns the set of
// top-level benchmark names (sub-benchmark and GOMAXPROCS suffixes
// stripped) that produced a result line.
func benchmarksRun(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ran := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i]
		}
		if i := strings.LastIndexByte(name, '-'); i >= 0 {
			name = name[:i]
		}
		ran[name] = true
	}
	return ran, sc.Err()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
