package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a scratch source tree: keys are slash-separated
// relative paths, values file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func writeBenchFile(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHotpathPackagesScansDirectives(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sim/sim.go":               "package sim\n\n//arrow:hotpath send\nfunc send() {}\n",
		"internal/sim/sim_test.go":          "package sim\n\n//arrow:hotpath never counted in tests\nfunc helper() {}\n",
		"internal/lint/testdata/src/f/f.go": "package f\n\n//arrow:hotpath fixture, skipped\nfunc h() {}\n",
		"internal/cold/cold.go":             "package cold\n\nfunc idle() {}\n",
		"internal/doc/doc.go":               "package doc\n\n// the string \"//arrow:hotpath\" mid-comment does not count: x\nfunc y() {}\n",
	})
	pkgs, err := hotpathPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || !pkgs["repro/internal/sim"] {
		t.Fatalf("pkgs = %v, want exactly repro/internal/sim", pkgs)
	}
}

func TestBenchmarksRunStripsSuffixes(t *testing.T) {
	path := writeBenchFile(t,
		"goos: linux",
		"BenchmarkSimSendDispatch/binary/n=1023-8 \t 200000 \t 151.3 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkBaselinesClosedLoop-8 \t 1 \t 1234 ns/op",
		"PASS",
	)
	ran, err := benchmarksRun(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkSimSendDispatch", "BenchmarkBaselinesClosedLoop"} {
		if !ran[want] {
			t.Errorf("%s not detected in %v", want, ran)
		}
	}
}

// hotpathTestTree mirrors the manifest exactly: one annotated file per
// manifest package.
func hotpathTestTree(t *testing.T) string {
	files := map[string]string{}
	for pkg := range hotpathBenchmarks {
		rel := strings.TrimPrefix(pkg, modulePath+"/")
		files[rel+"/hot.go"] = "package p\n\n//arrow:hotpath annotated\nfunc hot() {}\n"
	}
	return writeTree(t, files)
}

func TestCheckHotpathCoverageClean(t *testing.T) {
	root := hotpathTestTree(t)
	bench := writeBenchFile(t,
		"BenchmarkSimSendDispatch/star-8 100 10 ns/op 0 B/op 0 allocs/op",
		"BenchmarkParallelCommit/serial-8 100 10 ns/op",
		"BenchmarkDrainWindowed/serial-8 100 10 ns/op",
		"BenchmarkClosedLoopObserved/none-8 100 10 ns/op",
		"BenchmarkBaselinesClosedLoop/arrow-8 100 10 ns/op",
		"BenchmarkShardClosedLoop/k=16-8 100 10 ns/op",
	)
	if err := checkHotpathCoverage(root, bench); err != nil {
		t.Fatalf("clean tree flagged: %v", err)
	}
}

func TestCheckHotpathCoverageMissingBenchmark(t *testing.T) {
	root := hotpathTestTree(t)
	bench := writeBenchFile(t,
		"BenchmarkSimSendDispatch/star-8 100 10 ns/op",
		"BenchmarkParallelCommit/serial-8 100 10 ns/op",
		"BenchmarkBaselinesClosedLoop/arrow-8 100 10 ns/op",
		"BenchmarkShardClosedLoop/k=16-8 100 10 ns/op",
		// BenchmarkClosedLoopObserved dropped from the sweep.
	)
	err := checkHotpathCoverage(root, bench)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkClosedLoopObserved") {
		t.Fatalf("dropped benchmark not flagged: %v", err)
	}
}

func TestCheckHotpathCoverageUnmappedPackage(t *testing.T) {
	root := hotpathTestTree(t)
	extra := filepath.Join(root, "internal", "rogue")
	if err := os.MkdirAll(extra, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package rogue\n\n//arrow:hotpath unmeasured claim\nfunc hot() {}\n"
	if err := os.WriteFile(filepath.Join(extra, "rogue.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := writeBenchFile(t,
		"BenchmarkSimSendDispatch/star-8 100 10 ns/op",
		"BenchmarkParallelCommit/serial-8 100 10 ns/op",
		"BenchmarkClosedLoopObserved/none-8 100 10 ns/op",
		"BenchmarkBaselinesClosedLoop/arrow-8 100 10 ns/op",
		"BenchmarkShardClosedLoop/k=16-8 100 10 ns/op",
	)
	err := checkHotpathCoverage(root, bench)
	if err == nil || !strings.Contains(err.Error(), "repro/internal/rogue") {
		t.Fatalf("unmapped annotated package not flagged: %v", err)
	}
}

func TestCheckHotpathCoverageStaleManifestEntry(t *testing.T) {
	root := hotpathTestTree(t)
	// Strip the annotations from one manifest package.
	simDir := filepath.Join(root, "internal", "sim")
	if err := os.WriteFile(filepath.Join(simDir, "hot.go"), []byte("package p\n\nfunc cooled() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := writeBenchFile(t,
		"BenchmarkSimSendDispatch/star-8 100 10 ns/op",
		"BenchmarkParallelCommit/serial-8 100 10 ns/op",
		"BenchmarkClosedLoopObserved/none-8 100 10 ns/op",
		"BenchmarkBaselinesClosedLoop/arrow-8 100 10 ns/op",
		"BenchmarkShardClosedLoop/k=16-8 100 10 ns/op",
	)
	err := checkHotpathCoverage(root, bench)
	if err == nil || !strings.Contains(err.Error(), "no //arrow:hotpath annotations left") {
		t.Fatalf("stale manifest entry not flagged: %v", err)
	}
}

// TestCheckHotpathCoverageRepo runs the real check over the real repo
// with a synthetic bench file listing every manifest benchmark — pinning
// that the manifest matches the tree as committed (the benchmark-side
// half is pinned by CI, which uses the actual sweep output).
func TestCheckHotpathCoverageRepo(t *testing.T) {
	var lines []string
	for _, benches := range hotpathBenchmarks {
		for _, b := range benches {
			lines = append(lines, b+"-8 100 10 ns/op")
		}
	}
	bench := writeBenchFile(t, lines...)
	if err := checkHotpathCoverage(filepath.Join("..", ".."), bench); err != nil {
		t.Fatalf("manifest out of sync with the repo: %v", err)
	}
}
