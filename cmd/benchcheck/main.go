// Command benchcheck is the CI benchmark-regression gate. It performs
// two independent checks and exits non-zero if either fails:
//
//   - -bench FILE: parse `go test -bench` output and require that every
//     BenchmarkSimSendDispatch sub-benchmark reports 0 allocs/op — the
//     simulator's zero-alloc send/dispatch invariant (run the benchmarks
//     with -benchmem, or no allocs/op column is emitted and the check
//     fails as "not found").
//
//   - -baseline FILE -current FILE: compare two arrowbench/perf
//     documents (`arrowbench -exp perf -json`, the BENCH_perf.json
//     arrowbench/perf/v2 schema) row by row and fail when a pinned
//     metric regresses more than -tol (default 20%). The pinned metrics
//     — makespan, the per-cell simulator event count, and the
//     latency/hop distribution quantiles — are simulated quantities,
//     deterministic for a fixed config, so unlike wall-clock ns/op they
//     gate reliably on shared CI runners; the tolerance only leaves room
//     for deliberate small semantic changes. The v2 events_per_sec
//     throughput field is deliberately NOT gated: it is wall-clock and
//     would flake on shared runners. Config or schema mismatch between
//     the documents fails immediately: a delta between runs with
//     different parameters is noise.
//
//   - -hotpath DIR (with -bench): cross-check the //arrow:hotpath
//     annotations in the source tree against the benchmarks that
//     actually ran. Every annotated package must map, through the
//     hotpathBenchmarks manifest, to a benchmark present in the bench
//     output — so a hot-path claim without a measurement, a stale
//     manifest entry, or a benchmark silently dropped from the sweep
//     all fail CI.
//
//   - -scale FILE: structurally validate an arrowbench/scale document
//     (`arrowbench -exp scale -json`): the schema string must match
//     analysis.ScaleSchema, the row set must be non-empty, and every
//     row must report positive node/request/event counts. The scale
//     numbers themselves (bytes/node, events/s) are machine-dependent,
//     so this check gates the document's shape, never its values —
//     regressions of the memory property are pinned by the repo's own
//     TestScaleBytesPerNodeFlat instead.
//
//   - -shard FILE: structurally validate an arrowbench/shard document
//     (`arrowbench -exp shard -json`): schema match, non-empty rows,
//     positive counts, per-row conservation (every object's request
//     share summing through the fairness bounds), and ordered fairness
//     extremes (min <= p99 <= max). Shard metrics are fully simulated
//     and deterministic; the cross-worker byte-identity of the document
//     itself is pinned by the repo's TestShardDocumentWorkerIdentity,
//     so this gate checks the shape CI captured as an artifact.
//
// Usage (what CI runs):
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | tee bench.txt
//	go test -run '^$' -bench BenchmarkSimSendDispatch -benchtime 200000x -benchmem . | tee -a bench.txt
//	arrowbench -exp perf -json -sizes 64,76 -pernode 500 -seed 1 > BENCH_perf.ci.json
//	arrowbench -exp scale -json -sizes 2000,5000 -pernode 20 -seed 1 > BENCH_scale.ci.json
//	arrowbench -exp shard -json -pernode 50 -seed 1 > BENCH_shard.ci.json
//	benchcheck -bench bench.txt -hotpath . -baseline BENCH_perf.json -current BENCH_perf.ci.json -scale BENCH_scale.ci.json -shard BENCH_shard.ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// allocBenchmark is the benchmark whose allocs/op must stay zero.
const allocBenchmark = "BenchmarkSimSendDispatch"

func main() {
	benchPath := flag.String("bench", "", "go test -bench output to check for the zero-alloc invariant")
	basePath := flag.String("baseline", "", "committed arrowbench/perf baseline document")
	curPath := flag.String("current", "", "freshly generated arrowbench/perf document")
	scalePath := flag.String("scale", "", "arrowbench/scale document to validate structurally")
	shardPath := flag.String("shard", "", "arrowbench/shard document to validate structurally")
	hotpathRoot := flag.String("hotpath", "", "repo root to cross-check //arrow:hotpath annotations against the bench output (requires -bench)")
	tol := flag.Float64("tol", 0.20, "allowed relative regression of pinned metrics")
	flag.Parse()

	if *hotpathRoot != "" && *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -hotpath needs -bench to know which benchmarks ran")
		os.Exit(2)
	}
	if *benchPath == "" && *scalePath == "" && *shardPath == "" && (*basePath == "" || *curPath == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: nothing to do; pass -bench, -scale, -shard and/or -baseline with -current")
		os.Exit(2)
	}
	failed := false
	if *benchPath != "" {
		if err := checkBenchFile(*benchPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
		} else {
			fmt.Printf("benchcheck: %s allocs/op is zero\n", allocBenchmark)
		}
	}
	if *hotpathRoot != "" {
		if err := checkHotpathCoverage(*hotpathRoot, *benchPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
		} else {
			fmt.Printf("benchcheck: every //arrow:hotpath package is covered by the bench set\n")
		}
	}
	if *basePath != "" || *curPath != "" {
		if *basePath == "" || *curPath == "" {
			fmt.Fprintln(os.Stderr, "benchcheck: -baseline and -current must be given together")
			os.Exit(2)
		}
		base, err := loadPerfDoc(*basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadPerfDoc(*curPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		regressions := comparePerf(base, cur, *tol)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchcheck: %s\n", r)
		}
		if len(regressions) > 0 {
			failed = true
		} else {
			fmt.Printf("benchcheck: %d perf rows within %.0f%% of baseline\n",
				len(base.Rows), *tol*100)
		}
	}
	if *scalePath != "" {
		if err := checkScaleFile(*scalePath); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
		} else {
			fmt.Printf("benchcheck: scale document %s is well-formed\n", *scalePath)
		}
	}
	if *shardPath != "" {
		if err := checkShardFile(*shardPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
		} else {
			fmt.Printf("benchcheck: shard document %s is well-formed\n", *shardPath)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkShardFile validates an arrowbench/shard document: right schema,
// non-empty rows, positive counts, conservation of each row's requests
// against its fairness bounds, and ordered fairness extremes. All shard
// metrics are simulated and deterministic, but this gate still checks
// only invariants, not values — value changes are deliberate baseline
// updates, not CI failures.
func checkShardFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc analysis.ShardDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if doc.Schema != analysis.ShardSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, analysis.ShardSchema)
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	for i, r := range doc.Rows {
		id := fmt.Sprintf("%s row %d (%s/k=%d/s=%g)", path, i, r.Protocol, r.Objects, r.Skew)
		if r.Protocol == "" {
			return fmt.Errorf("%s row %d: missing protocol", path, i)
		}
		if r.N <= 0 || r.Objects <= 0 || r.Requests <= 0 || r.Events <= 0 {
			return fmt.Errorf("%s: non-positive n/objects/requests/events (%d/%d/%d/%d)",
				id, r.N, r.Objects, r.Requests, r.Events)
		}
		if r.Requests != int64(r.N)*int64(r.PerNode) {
			return fmt.Errorf("%s: %d requests completed, workload issued %d",
				id, r.Requests, int64(r.N)*int64(r.PerNode))
		}
		if r.Latency.Count != r.Requests {
			return fmt.Errorf("%s: latency distribution counted %d of %d requests",
				id, r.Latency.Count, r.Requests)
		}
		f := r.Fairness
		if f.Objects != r.Objects {
			return fmt.Errorf("%s: fairness ranges over %d objects", id, f.Objects)
		}
		if f.MinRequests > f.MaxRequests ||
			f.MinRequests*int64(f.Objects) > r.Requests ||
			f.MaxRequests*int64(f.Objects) < r.Requests {
			return fmt.Errorf("%s: fairness request bounds [%d, %d] cannot partition %d requests over %d objects",
				id, f.MinRequests, f.MaxRequests, r.Requests, f.Objects)
		}
		if f.MinAvgLatency > f.P99AvgLatency || f.P99AvgLatency > f.MaxAvgLatency {
			return fmt.Errorf("%s: fairness latency extremes unordered (min %g, p99 %g, max %g)",
				id, f.MinAvgLatency, f.P99AvgLatency, f.MaxAvgLatency)
		}
	}
	return nil
}

// checkScaleFile validates an arrowbench/scale document's shape: right
// schema, non-empty rows, positive counts. Values are machine-dependent
// and never gated here.
func checkScaleFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc analysis.ScaleDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if doc.Schema != analysis.ScaleSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, analysis.ScaleSchema)
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("%s: no rows", path)
	}
	for i, r := range doc.Rows {
		if r.Protocol == "" || r.Topology == "" {
			return fmt.Errorf("%s: row %d: missing protocol/topology", path, i)
		}
		if r.N <= 0 || r.Requests <= 0 || r.Events <= 0 {
			return fmt.Errorf("%s: row %d (%s/%s): non-positive n/requests/events (%d/%d/%d)",
				path, i, r.Protocol, r.Topology, r.N, r.Requests, r.Events)
		}
		// Drain telemetry shape: the lookahead window is always at least
		// one tick, barrier counts cannot be negative, and the mean fused
		// batch is positive exactly when a parallel window ran.
		if r.WindowWidth < 1 {
			return fmt.Errorf("%s: row %d (%s/%s): window_width %d < 1",
				path, i, r.Protocol, r.Topology, r.WindowWidth)
		}
		if r.Windows < 0 {
			return fmt.Errorf("%s: row %d (%s/%s): negative windows %d",
				path, i, r.Protocol, r.Topology, r.Windows)
		}
		if (r.Windows > 0) != (r.MeanBatch > 0) {
			return fmt.Errorf("%s: row %d (%s/%s): windows %d inconsistent with mean_batch %g",
				path, i, r.Protocol, r.Topology, r.Windows, r.MeanBatch)
		}
		for j, p := range r.WorkersSweep {
			if p.Workers < 1 {
				return fmt.Errorf("%s: row %d (%s/%s): sweep point %d: workers %d < 1",
					path, i, r.Protocol, r.Topology, j, p.Workers)
			}
			if p.EventsPerSec <= 0 {
				return fmt.Errorf("%s: row %d (%s/%s): sweep point %d (workers %d): non-positive events_per_sec %g",
					path, i, r.Protocol, r.Topology, j, p.Workers, p.EventsPerSec)
			}
			if p.Speedup <= 0 {
				return fmt.Errorf("%s: row %d (%s/%s): sweep point %d (workers %d): non-positive speedup %g",
					path, i, r.Protocol, r.Topology, j, p.Workers, p.Speedup)
			}
			if p.Windows < 0 {
				return fmt.Errorf("%s: row %d (%s/%s): sweep point %d (workers %d): negative windows %d",
					path, i, r.Protocol, r.Topology, j, p.Workers, p.Windows)
			}
			if (p.Windows > 0) != (p.MeanBatch > 0) {
				return fmt.Errorf("%s: row %d (%s/%s): sweep point %d (workers %d): windows %d inconsistent with mean_batch %g",
					path, i, r.Protocol, r.Topology, j, p.Workers, p.Windows, p.MeanBatch)
			}
		}
	}
	return nil
}

// checkBenchFile enforces the zero-alloc invariant on a go test -bench
// output file.
func checkBenchFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return checkBenchOutput(f)
}

// benchMeasure is one parsed benchmark result line.
type benchMeasure struct {
	iters  int64
	allocs float64
}

// checkBenchOutput scans go test -bench output for allocBenchmark
// sub-benchmarks and fails if any reports non-zero allocs/op at steady
// state, or if no steady-state measurement is found (the invariant
// cannot be confirmed). Zero allocs/op is a steady-state property —
// one-shot heap growth and setup amortize away over iterations — so
// when the same sub-benchmark appears several times (CI appends a
// high-iteration run to the 1x smoke sweep), only the measurement with
// the most iterations counts, and a lone b.N=1 measurement is rejected.
func checkBenchOutput(r io.Reader) error {
	best := map[string]benchMeasure{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Match the exact benchmark (its name continues with the
		// sub-benchmark separator '/' or the GOMAXPROCS suffix '-'), not
		// any benchmark sharing the prefix.
		rest, ok := strings.CutPrefix(line, allocBenchmark)
		if !ok || (rest != "" && rest[0] != '/' && rest[0] != '-' && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fields := strings.Fields(line)
		for i, f := range fields {
			if f != "allocs/op" || i == 0 {
				continue
			}
			allocs, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return fmt.Errorf("%s: cannot parse allocs/op in %q: %v", fields[0], line, err)
			}
			iters := int64(1)
			if len(fields) > 1 {
				if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					iters = v
				}
			}
			if m, ok := best[fields[0]]; !ok || iters > m.iters {
				best[fields[0]] = benchMeasure{iters: iters, allocs: allocs}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(best) == 0 {
		return fmt.Errorf("no %s allocs/op measurement found (run benchmarks with -benchmem)", allocBenchmark)
	}
	var bad []string
	steady := false
	for name, m := range best {
		if m.iters > 1 {
			steady = true
		}
		if m.allocs != 0 {
			bad = append(bad, fmt.Sprintf("%s reports %g allocs/op over %d iterations, want 0", name, m.allocs, m.iters))
		}
	}
	if !steady {
		return fmt.Errorf("only b.N=1 %s measurements found; zero allocs/op needs a steady-state run (e.g. -benchtime 200000x)", allocBenchmark)
	}
	sort.Strings(bad)
	if len(bad) > 0 {
		return fmt.Errorf("zero-alloc invariant broken: %s", strings.Join(bad, "; "))
	}
	return nil
}

func loadPerfDoc(path string) (analysis.PerfDoc, error) {
	var doc analysis.PerfDoc
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// rowKey identifies a perf row across documents.
func rowKey(r analysis.PerfDocRow) string {
	return fmt.Sprintf("%s/n=%d/%s", r.Protocol, r.N, r.Workload)
}

// comparePerf returns one message per regression of a pinned metric —
// current worse than baseline by more than tol relative (with one unit
// of absolute slack, so a 1-vs-2 time-unit quantile is not a 100%
// regression) — plus messages for structural mismatches (schema,
// config, missing rows), which are always failures.
func comparePerf(base, cur analysis.PerfDoc, tol float64) []string {
	var msgs []string
	if base.Schema != cur.Schema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)}
	}
	if !configEqual(base.Config, cur.Config) {
		return []string{fmt.Sprintf("config mismatch: baseline %+v vs current %+v (regenerate the baseline with the same flags)",
			base.Config, cur.Config)}
	}
	curRows := make(map[string]analysis.PerfDocRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curRows[rowKey(r)] = r
	}
	for _, b := range base.Rows {
		c, ok := curRows[rowKey(b)]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: row missing from current document", rowKey(b)))
			continue
		}
		if c.Requests != b.Requests {
			msgs = append(msgs, fmt.Sprintf("%s: completed %d requests, baseline %d", rowKey(b), c.Requests, b.Requests))
		}
		// Integer quantiles get one simulated time unit of absolute
		// slack (1 -> 2 is +100% but one bucket); means are fine-grained
		// floats where that slack would hide large regressions on
		// small-valued rows, so they get only the relative tolerance.
		// events_per_sec is intentionally absent: wall-clock throughput
		// is informational, not a gate.
		for _, m := range []struct {
			name      string
			base, cur float64
			slack     float64
		}{
			{"makespan", float64(b.Makespan), float64(c.Makespan), 1},
			{"events", float64(b.Events), float64(c.Events), 1},
			{"latency.p50", float64(b.Latency.P50), float64(c.Latency.P50), 1},
			{"latency.p90", float64(b.Latency.P90), float64(c.Latency.P90), 1},
			{"latency.p99", float64(b.Latency.P99), float64(c.Latency.P99), 1},
			{"latency.p999", float64(b.Latency.P999), float64(c.Latency.P999), 1},
			{"latency.max", float64(b.Latency.Max), float64(c.Latency.Max), 1},
			{"latency.mean", b.Latency.Mean, c.Latency.Mean, 1e-9},
			{"hops.p99", float64(b.Hops.P99), float64(c.Hops.P99), 1},
			{"hops.max", float64(b.Hops.Max), float64(c.Hops.Max), 1},
			{"hops.mean", b.Hops.Mean, c.Hops.Mean, 1e-9},
		} {
			if m.cur > m.base*(1+tol)+m.slack {
				msgs = append(msgs, fmt.Sprintf("%s: %s regressed %.3f -> %.3f (>%.0f%%)",
					rowKey(b), m.name, m.base, m.cur, tol*100))
			}
		}
	}
	return msgs
}

func configEqual(a, b analysis.PerfConfig) bool {
	if a.PerNode != b.PerNode || a.Seed != b.Seed || len(a.Sizes) != len(b.Sizes) {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			return false
		}
	}
	return true
}
