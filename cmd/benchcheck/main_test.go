package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/stats"
)

const goodBench = `goos: linux
BenchmarkSimSendDispatch/binary-8         5000000   214.0 ns/op   0 B/op   0 allocs/op
BenchmarkSimSendDispatch/star-8           5000000   120.0 ns/op   0 B/op   0 allocs/op
BenchmarkFig10Arrow/n=2-8                 1         83000 ns/op
PASS
`

const badBench = `BenchmarkSimSendDispatch/binary-8   5000000   214.0 ns/op   16 B/op   3 allocs/op
PASS
`

func TestCheckBenchOutput(t *testing.T) {
	if err := checkBenchOutput(strings.NewReader(goodBench)); err != nil {
		t.Errorf("clean output failed: %v", err)
	}
	if err := checkBenchOutput(strings.NewReader(badBench)); err == nil {
		t.Error("3 allocs/op passed the zero-alloc gate")
	}
	if err := checkBenchOutput(strings.NewReader("PASS\n")); err == nil {
		t.Error("missing benchmark passed the gate")
	}
	// Without -benchmem there is no allocs/op column: the invariant is
	// unconfirmed and must fail.
	noMem := "BenchmarkSimSendDispatch/binary-8  5000000  214.0 ns/op\nPASS\n"
	if err := checkBenchOutput(strings.NewReader(noMem)); err == nil {
		t.Error("output without allocs/op column passed the gate")
	}
	// A lone b.N=1 measurement cannot confirm the steady-state property.
	oneShot := "BenchmarkSimSendDispatch/binary-8  1  152232 ns/op  80392 B/op  10 allocs/op\nPASS\n"
	if err := checkBenchOutput(strings.NewReader(oneShot)); err == nil {
		t.Error("b.N=1-only measurement passed the gate")
	}
	// When both the 1x smoke line and a steady-state line are present
	// (CI appends the latter), only the higher-iteration one counts.
	both := oneShot + "BenchmarkSimSendDispatch/binary-8  200000  120.0 ns/op  0 B/op  0 allocs/op\nPASS\n"
	if err := checkBenchOutput(strings.NewReader(both)); err != nil {
		t.Errorf("steady-state zero-alloc line did not override the 1x smoke line: %v", err)
	}
	// A different benchmark sharing the name prefix is not conscripted
	// into the invariant.
	prefixed := goodBench + "BenchmarkSimSendDispatchBatched-8  200000  300.0 ns/op  64 B/op  2 allocs/op\nPASS\n"
	if err := checkBenchOutput(strings.NewReader(prefixed)); err != nil {
		t.Errorf("prefix-sharing benchmark pulled into the gate: %v", err)
	}
}

func perfDoc() analysis.PerfDoc {
	return analysis.PerfDoc{
		Schema: analysis.PerfSchema,
		Config: analysis.PerfConfig{Sizes: []int{64, 76}, PerNode: 500, Seed: 1},
		Rows: []analysis.PerfDocRow{
			{
				Protocol: "arrow", N: 64, Workload: "saturated", Requests: 32000, Makespan: 900,
				Events: 120000, EventsPerSec: 4.2e6,
				Latency: stats.Dist{Count: 32000, Mean: 1.5, P50: 1, P90: 3, P99: 5, P999: 7, Max: 9},
				Hops:    stats.Dist{Count: 32000, Mean: 1.5, P50: 1, P90: 3, P99: 5, P999: 7, Max: 9},
			},
			{
				Protocol: "centralized", N: 64, Workload: "saturated", Requests: 32000, Makespan: 64000,
				Events: 128000, EventsPerSec: 5.7e6,
				Latency: stats.Dist{Count: 32000, Mean: 60, P50: 62, P90: 63, P99: 63, P999: 64, Max: 64},
				Hops:    stats.Dist{Count: 32000, Mean: 0.98, P50: 1, P90: 1, P99: 1, P999: 1, Max: 1},
			},
		},
	}
}

func TestComparePerfIdentical(t *testing.T) {
	if msgs := comparePerf(perfDoc(), perfDoc(), 0.2); len(msgs) != 0 {
		t.Errorf("identical documents regressed: %v", msgs)
	}
}

func TestComparePerfRegression(t *testing.T) {
	cur := perfDoc()
	cur.Rows[0].Latency.P99 = 100 // 5 -> 100: way past 20% + slack
	msgs := comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "latency.p99") {
		t.Errorf("p99 regression not caught: %v", msgs)
	}
}

func TestComparePerfSmallSlack(t *testing.T) {
	// One simulated time unit of jitter on a tiny quantile is not a
	// regression (1 -> 2 is +100% but within the absolute slack).
	cur := perfDoc()
	cur.Rows[0].Latency.P50 = 2
	if msgs := comparePerf(perfDoc(), cur, 0.2); len(msgs) != 0 {
		t.Errorf("one-unit quantile jitter flagged: %v", msgs)
	}
}

func TestComparePerfMeanHasNoAbsoluteSlack(t *testing.T) {
	// Means are fine-grained floats: the quantiles' one-unit slack must
	// not hide a large relative regression on a small-valued mean
	// (0.98 -> 2.17 is +122%).
	cur := perfDoc()
	cur.Rows[1].Hops.Mean = 2.17
	msgs := comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "hops.mean") {
		t.Errorf("small-valued mean regression not caught: %v", msgs)
	}
}

func TestComparePerfImprovementPasses(t *testing.T) {
	cur := perfDoc()
	cur.Rows[1].Makespan = 100 // got faster: never a failure
	cur.Rows[1].Latency.Mean = 1
	if msgs := comparePerf(perfDoc(), cur, 0.2); len(msgs) != 0 {
		t.Errorf("improvement flagged as regression: %v", msgs)
	}
}

func TestComparePerfMissingRow(t *testing.T) {
	cur := perfDoc()
	cur.Rows = cur.Rows[:1]
	msgs := comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "missing") {
		t.Errorf("missing row not caught: %v", msgs)
	}
}

func TestComparePerfConfigMismatch(t *testing.T) {
	cur := perfDoc()
	cur.Config.PerNode = 1000
	msgs := comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "config mismatch") {
		t.Errorf("config mismatch not caught: %v", msgs)
	}
	cur = perfDoc()
	cur.Schema = "arrowbench/perf/v1"
	msgs = comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "schema mismatch") {
		t.Errorf("schema mismatch not caught: %v", msgs)
	}
}

func TestComparePerfEventCountGated(t *testing.T) {
	// The per-cell event count is deterministic, so a blow-up (a
	// protocol or scheduler change doing more work per request) is a
	// gated regression like makespan.
	cur := perfDoc()
	cur.Rows[0].Events = 200000 // +67%
	msgs := comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "events") {
		t.Errorf("event-count regression not caught: %v", msgs)
	}
}

func TestComparePerfThroughputNotGated(t *testing.T) {
	// events_per_sec is wall clock: halving it on a shared CI runner is
	// noise, never a failure.
	cur := perfDoc()
	for i := range cur.Rows {
		cur.Rows[i].EventsPerSec /= 2
	}
	if msgs := comparePerf(perfDoc(), cur, 0.2); len(msgs) != 0 {
		t.Errorf("wall-clock throughput drop flagged: %v", msgs)
	}
}

func shardDoc() analysis.ShardDoc {
	return analysis.ShardDoc{
		Schema: analysis.ShardSchema,
		Config: analysis.ShardDocConfig{N: 32, PerNode: 50, Objects: []int{16}, Skews: []float64{0}, Seed: 1, LinkTxTime: 1},
		Rows: []analysis.ShardDocRow{
			{
				Protocol: "arrow", N: 32, Objects: 16, Skew: 0, PerNode: 50,
				Requests: 1600, QueueHops: 6400, Events: 20000, Makespan: 500,
				Latency: stats.Dist{Count: 1600, Mean: 4, P50: 4, P99: 9, Max: 12},
				Hops:    stats.Dist{Count: 1600, Mean: 4, P50: 4, P99: 9, Max: 12},
				Fairness: engine.Fairness{
					Objects: 16, MinRequests: 90, MaxRequests: 110,
					MinAvgLatency: 3.5, MaxAvgLatency: 4.5, P99AvgLatency: 4.4,
					MinAvailability: 1, MaxAvailability: 1, P1Availability: 1,
				},
			},
		},
	}
}

// TestCheckShardFile covers the shard document's structural gate: a
// well-formed document passes, and each invariant violation fails with
// a message naming the broken property.
func TestCheckShardFile(t *testing.T) {
	write := func(t *testing.T, doc analysis.ShardDoc) string {
		t.Helper()
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "shard.json")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := checkShardFile(write(t, shardDoc())); err != nil {
		t.Errorf("well-formed document failed: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*analysis.ShardDoc)
		want   string
	}{
		{"wrong schema", func(d *analysis.ShardDoc) { d.Schema = "arrowbench/shard/v0" }, "schema"},
		{"no rows", func(d *analysis.ShardDoc) { d.Rows = nil }, "no rows"},
		{"conservation", func(d *analysis.ShardDoc) { d.Rows[0].Requests = 1599 }, "issued"},
		{"dist decoupled", func(d *analysis.ShardDoc) { d.Rows[0].Latency.Count = 7 }, "latency distribution"},
		{"fairness objects", func(d *analysis.ShardDoc) { d.Rows[0].Fairness.Objects = 3 }, "fairness ranges"},
		{"request bounds", func(d *analysis.ShardDoc) { d.Rows[0].Fairness.MinRequests = 101 }, "partition"},
		{"latency extremes", func(d *analysis.ShardDoc) { d.Rows[0].Fairness.P99AvgLatency = 9 }, "unordered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := shardDoc()
			tc.mutate(&doc)
			err := checkShardFile(write(t, doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestComparePerfRequestCountChange(t *testing.T) {
	cur := perfDoc()
	cur.Rows[0].Requests = 31999
	msgs := comparePerf(perfDoc(), cur, 0.2)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "requests") {
		t.Errorf("request-count drift not caught: %v", msgs)
	}
}
