// Command lowerbound generates and runs the Theorem 4.1 adversarial
// instance (the Figure 9 construction): a recursively built request set
// on a path spanning tree of diameter D. It prints the instance, arrow's
// measured cost, bounds on the optimal offline cost, and the resulting
// ratio, optionally dumping the request set for inspection.
//
// Usage:
//
//	lowerbound -logd 6          # D = 64, paper's Figure 9 diameter
//	lowerbound -logd 6 -k 6     # override recursion depth (paper's figure)
//	lowerbound -logd 5 -dump    # print every generated request
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/tree"
	"repro/internal/workload"
)

// config carries the parsed flags; main builds it, tests build it
// directly.
type config struct {
	logD int
	k    int
	dump bool
}

func main() {
	cfg := config{}
	flag.IntVar(&cfg.logD, "logd", 6, "diameter exponent: D = 2^logd")
	flag.IntVar(&cfg.k, "k", 0, "recursion depth (0 = paper's log D / log log D)")
	flag.BoolVar(&cfg.dump, "dump", false, "print the generated request set")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

// run executes the lower-bound instance, writing the report to w.
func run(cfg config, w io.Writer) error {
	depth := cfg.k
	if depth == 0 {
		depth = workload.DefaultK(1 << cfg.logD)
	}
	inst := workload.LowerBound(cfg.logD, depth)
	fmt.Fprintf(w, "Theorem 4.1 instance: path diameter D=%d, recursion depth k=%d, |R|=%d\n",
		inst.D, inst.K, len(inst.Set))
	if cfg.dump {
		for _, r := range inst.Set {
			fmt.Fprintf(w, "  r%-4d = (v%d, t=%d)\n", r.ID, r.Node, r.Time)
		}
	}

	t := tree.PathTree(inst.D + 1)
	g := graph.Path(inst.D + 1)
	res, err := arrow.Run(t, inst.Set, arrow.Options{Root: inst.Root})
	if err != nil {
		return err
	}
	bounds := opt.Compute(g, inst.Root, inst.Set, opt.DistOfGraph(g))

	fmt.Fprintf(w, "\narrow total latency:      %d\n", res.TotalLatency)
	fmt.Fprintf(w, "arrow total hops:         %d\n", res.TotalHops)
	fmt.Fprintf(w, "optimal cost upper bound: %d (achievable order)\n", bounds.Upper)
	fmt.Fprintf(w, "optimal cost lower bound: %d", bounds.Lower)
	if bounds.Exact {
		fmt.Fprintf(w, " (exact)")
	}
	fmt.Fprintf(w, "\nmeasured ratio:           %.3f (>= true competitive ratio witness)\n",
		opt.Ratio(res.TotalLatency, bounds.Upper))
	fmt.Fprintf(w, "theory reference k*D:     %d (asymptotic regime; see EXPERIMENTS.md)\n",
		inst.K*inst.D)
	return nil
}
