package main

import (
	"strings"
	"testing"
)

func capture(t *testing.T, cfg config) string {
	t.Helper()
	var b strings.Builder
	if err := run(cfg, &b); err != nil {
		t.Fatalf("run(%+v): %v", cfg, err)
	}
	return b.String()
}

// TestLowerBoundSmoke runs the main path on a tiny diameter and checks
// the report is non-empty, complete, and stable across runs.
func TestLowerBoundSmoke(t *testing.T) {
	cfg := config{logD: 4}
	out := capture(t, cfg)
	for _, want := range []string{
		"Theorem 4.1 instance: path diameter D=16",
		"arrow total latency:", "optimal cost upper bound:", "measured ratio:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if again := capture(t, cfg); again != out {
		t.Error("report not stable across runs")
	}
}

// TestLowerBoundDump covers the -dump path: every generated request is
// listed.
func TestLowerBoundDump(t *testing.T) {
	out := capture(t, config{logD: 3, dump: true})
	if !strings.Contains(out, "r0") || !strings.Contains(out, "= (v") {
		t.Errorf("dump output missing request lines:\n%s", out)
	}
}

// TestLowerBoundExplicitDepth covers the -k override.
func TestLowerBoundExplicitDepth(t *testing.T) {
	out := capture(t, config{logD: 4, k: 2})
	if !strings.Contains(out, "recursion depth k=2") {
		t.Errorf("explicit depth not honoured:\n%s", out)
	}
}
