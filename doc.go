// Package repro is a complete Go reproduction of "Dynamic Analysis of
// the Arrow Distributed Protocol" (Herlihy, Kuhn, Tirthapura,
// Wattenhofer; SPAA 2004 / Theory of Computing Systems 39, 2006).
//
// The repository root carries the benchmark harness (bench_test.go, one
// benchmark per paper table/figure plus ablations) and cross-module
// integration tests; the implementation lives under internal/ and the
// runnable entry points under cmd/ and examples/. Start with README.md
// for the architecture overview and DESIGN.md for the system inventory
// and per-experiment index.
package repro
