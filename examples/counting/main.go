// Distributed counting — the paper's Section 1 application: "it can be
// used in distributed counting by passing an integer counter down the
// queue". Every node performs fetch-and-increment operations on a shared
// counter with no central server: each operation joins the arrow queue,
// and the counter value travels from each operation to its successor.
// Every participant ends up with a unique, gap-free counter value.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tree"
)

const (
	numNodes    = 20
	incsPerNode = 5
	totalIncs   = numNodes * incsPerNode
)

func main() {
	t := tree.BalancedBinary(numNodes)
	net := runtime.New(t, 0, runtime.Options{})
	net.Start()

	// The counter travels down the distributed queue exactly like the
	// mutex token: when operation p's holder learns its successor r, it
	// hands the incremented counter over. The manager below stands in
	// for that predecessor-to-successor message.
	type grant struct {
		value int64
	}
	var (
		mu    sync.Mutex
		gates = map[int64]chan grant{}
	)
	gateFor := func(reqID int64) chan grant {
		mu.Lock()
		defer mu.Unlock()
		ch, ok := gates[reqID]
		if !ok {
			ch = make(chan grant, 1)
			gates[reqID] = ch
		}
		return ch
	}
	managerDone := make(chan struct{})
	passed := make(chan int64) // holders hand the counter back here
	go func() {
		defer close(managerDone)
		succ := map[int64]int64{}
		cur := int64(-1)
		counter := int64(0)
		served := 0
		completions := net.Completions()
		for served < totalIncs {
			if next, ok := succ[cur]; ok {
				gateFor(next) <- grant{value: counter}
				counter = <-passed // holder returns counter+1
				cur = next
				served++
				continue
			}
			c, ok := <-completions
			if !ok {
				log.Fatal("completions closed early")
			}
			succ[c.PredID] = c.ReqID
		}
	}()

	results := make([][]int64, numNodes)
	var wg sync.WaitGroup
	for v := 0; v < numNodes; v++ {
		wg.Add(1)
		go func(v graph.NodeID) {
			defer wg.Done()
			for i := 0; i < incsPerNode; i++ {
				reqID := net.RequestSync(v)
				g := <-gateFor(reqID) // counter arrives from predecessor
				results[v] = append(results[v], g.value)
				passed <- g.value + 1
			}
		}(graph.NodeID(v))
	}
	wg.Wait()
	<-managerDone
	go func() {
		for range net.Completions() {
		}
	}()
	net.Stop()

	// Verify: all issued values are distinct and cover 0..totalIncs-1.
	seen := make([]bool, totalIncs)
	for v, vals := range results {
		for _, x := range vals {
			if x < 0 || x >= totalIncs || seen[x] {
				log.Fatalf("node %d got duplicate/out-of-range value %d", v, x)
			}
			seen[x] = true
		}
	}
	fmt.Printf("%d fetch-and-increment ops across %d nodes: all values unique and gap-free\n",
		totalIncs, numNodes)
	fmt.Printf("node 0 drew: %v\n", results[0])
	fmt.Printf("node %d drew: %v\n", numNodes-1, results[numNodes-1])
}
