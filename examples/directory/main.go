// Distributed directory for a mobile object (the Demmer–Herlihy arrow
// directory [4], as in the Aleph toolkit): nodes request exclusive access
// to a shared object; the arrow queue orders the requests; the object then
// hops from each requester to its successor. The example measures how far
// the object travels under arrow's ordering versus a clairvoyant optimal
// route, and shows the protocol's locality: consecutive holders tend to be
// close on the tree.
package main

import (
	"fmt"
	"log"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/queuing"
	"repro/internal/tree"
	"repro/internal/tsp"
	"repro/internal/workload"
)

func main() {
	// A 64-node random geometric network — machines spread over a space
	// with local links, the setting where object locality pays off.
	g := graph.RandomGeometric(64, 0.3, 8, 3)
	t, err := tree.PrimMST(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := t.Stretch(g)
	fmt.Printf("network: %d nodes; MST spanning tree, D=%d, stretch=%.2f\n",
		g.NumNodes(), t.Diameter(), s)

	// A hotspot access pattern: half the accesses hit one popular object
	// region, the rest are scattered.
	set := workload.Hotspot(g.NumNodes(), 14, 0.5, 100, 5)
	fmt.Printf("%d object-access requests\n", len(set))

	res, err := arrow.Run(t, set, arrow.Options{Root: t.Root()})
	if err != nil {
		log.Fatal(err)
	}

	// The object starts at the root and visits requesters in queue order.
	var travelTree, travelGraph graph.Weight
	prev := t.Root()
	dg := g.AllPairs()
	fmt.Println("\nobject itinerary:")
	for i, id := range res.Order {
		v := set[id].Node
		dT := t.Dist(prev, v)
		travelTree += dT
		travelGraph += dg[prev][v]
		if i < 6 {
			fmt.Printf("  v%-3d -> v%-3d  (tree dist %d, graph dist %d)\n",
				prev, v, dT, dg[prev][v])
		} else if i == 6 {
			fmt.Println("  ...")
		}
		prev = v
	}

	// Clairvoyant route: optimal TSP path over the requesters (object
	// free to take shortest graph routes in the best possible order).
	nodes := append([]graph.NodeID{t.Root()}, requestNodes(set)...)
	cost := func(i, j int) int64 { return dg[nodes[i]][nodes[j]] }
	_, optTravel, err := tsp.OptimalPath(len(nodes), cost)
	if err != nil {
		log.Fatal(err)
	}

	bounds := opt.Compute(g, t.Root(), set, opt.DistOfGraph(g))
	fmt.Printf("\nobject travel, arrow order over tree:   %d\n", travelTree)
	fmt.Printf("object travel, arrow order over graph:  %d\n", travelGraph)
	fmt.Printf("object travel, clairvoyant optimal:     %d\n", optTravel)
	fmt.Printf("queuing latency: arrow=%d, optimal in [%d, %d]\n",
		res.TotalLatency, bounds.Lower, bounds.Upper)
}

func requestNodes(set queuing.Set) []graph.NodeID {
	out := make([]graph.NodeID, len(set))
	for i, r := range set {
		out[i] = r.Node
	}
	return out
}
