// Totally ordered multicast (Herlihy–Tirthapura–Wattenhofer's application
// [11]): every multicast message joins the distributed queue, and the
// queue position is its global sequence number. All receivers deliver in
// sequence-number order, so every node sees the same message order without
// any central sequencer. The example contrasts arrow's queuing cost with
// a centralized sequencer on the same workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/tree"
	"repro/internal/workload"
)

func main() {
	const n = 24
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)

	// Workload: a bursty stream of multicast sends — several nodes
	// publish nearly simultaneously (the hard case for a sequencer).
	set := workload.Bursty(n, 6, 4, 30, 11)
	fmt.Printf("%d multicast messages from %d senders\n", len(set), len(set.Nodes()))

	// Arrow assigns sequence numbers via the distributed queue.
	res, err := arrow.Run(t, set, arrow.Options{Root: 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nglobal delivery order (same at every receiver):")
	for seq, id := range res.Order {
		r := set[id]
		if seq < 8 || seq >= len(res.Order)-2 {
			fmt.Printf("  seq %2d: message m%d from node v%d (sent t=%d)\n",
				seq, id, r.Node, r.Time)
		} else if seq == 8 {
			fmt.Println("  ...")
		}
	}

	// Sanity: the order is a permutation — every message delivered
	// exactly once, everywhere.
	if !queuing.ValidOrder(res.Order, len(set)) {
		log.Fatal("delivery order is not a permutation")
	}

	// Compare with a centralized sequencer on the same messages.
	ce, err := centralized.Run(g, set, centralized.Options{Center: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequencing cost (total latency): arrow=%d centralized=%d\n",
		res.TotalLatency, ce.TotalLatency)
	fmt.Printf("sequencing makespan:             arrow=%d centralized=%d\n",
		res.Makespan, ce.Makespan)
	avg := func(total int64, k int) float64 { return float64(total) / float64(k) }
	fmt.Printf("avg per-message latency:         arrow=%.2f centralized=%.2f\n",
		avg(res.TotalLatency, len(set)), avg(ce.TotalLatency, len(set)))
}
