// Distributed mutual exclusion over the live goroutine runtime — the
// application Raymond designed the protocol for. Every node is a
// goroutine; a node that wants the critical section queues a request and
// waits for the token. The protocol tells each request's predecessor who
// its successor is, and the token travels down that distributed queue. No
// node ever sees the global queue.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/tree"
)

const (
	numNodes        = 15
	sectionsPerNode = 3
	totalSections   = numNodes * sectionsPerNode
)

// gates hands each request its token-arrival channel.
type gates struct {
	mu sync.Mutex
	m  map[int64]chan struct{}
}

func (g *gates) for_(reqID int64) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch, ok := g.m[reqID]
	if !ok {
		ch = make(chan struct{}, 1)
		g.m[reqID] = ch
	}
	return ch
}

func main() {
	t := tree.BalancedBinary(numNodes)
	net := runtime.New(t, 0, runtime.Options{})
	net.Start()

	gt := &gates{m: make(map[int64]chan struct{})}
	release := make(chan int64)

	// Token manager: walks the distributed queue as the protocol reveals
	// successor edges (completion c means "c.ReqID is queued behind
	// c.PredID"). It grants the token down the chain, waiting for each
	// holder's release. In a deployment this logic is one message from
	// predecessor to successor; the manager stands in for that message.
	managerDone := make(chan struct{})
	go func() {
		defer close(managerDone)
		succ := make(map[int64]int64)
		cur := int64(-1) // virtual root request holds the token initially
		granted := 0
		completions := net.Completions()
		for granted < totalSections {
			if next, ok := succ[cur]; ok {
				gt.for_(next) <- struct{}{} // token to successor
				if id := <-release; id != next {
					log.Fatalf("release from %d while token at %d", id, next)
				}
				cur = next
				granted++
				continue
			}
			c, ok := <-completions
			if !ok {
				log.Fatal("completions closed before all sections ran")
			}
			succ[c.PredID] = c.ReqID
		}
	}()

	var (
		wg      sync.WaitGroup
		inCS    atomic.Int32
		entered atomic.Int32
		orderMu sync.Mutex
		entries []graph.NodeID
	)
	for v := 0; v < numNodes; v++ {
		wg.Add(1)
		go func(v graph.NodeID) {
			defer wg.Done()
			for i := 0; i < sectionsPerNode; i++ {
				reqID := net.RequestSync(v)
				<-gt.for_(reqID) // wait for the token

				if inCS.Add(1) != 1 {
					log.Fatal("mutual exclusion violated")
				}
				orderMu.Lock()
				entries = append(entries, v)
				orderMu.Unlock()
				entered.Add(1)
				inCS.Add(-1)

				release <- reqID // pass the token on
			}
		}(graph.NodeID(v))
	}

	wg.Wait()
	<-managerDone
	close(release)
	// Drain completions the manager no longer needs so Stop can flush.
	go func() {
		for range net.Completions() {
		}
	}()
	net.Stop()

	fmt.Printf("%d critical sections executed across %d nodes, mutual exclusion preserved\n",
		entered.Load(), numNodes)
	fmt.Printf("first 10 token holders: %v\n", entries[:10])
}
