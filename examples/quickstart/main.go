// Quickstart: build a network, pick a spanning tree, run the arrow
// protocol on a batch of concurrent queuing requests, and inspect the
// total order and its cost against the optimal offline bound.
package main

import (
	"fmt"
	"log"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/tree"
	"repro/internal/workload"
)

func main() {
	// 1. The network: a 6x6 grid with unit-latency links.
	g := graph.Grid(6, 6)

	// 2. The pre-selected spanning tree: a BFS tree from the grid center
	//    (any spanning tree works; stretch and diameter drive the cost).
	center, _ := g.Center()
	t, err := tree.BFS(g, center)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := t.Stretch(g)
	fmt.Printf("network: %d nodes, %d edges; tree diameter D=%d, stretch s=%.2f\n",
		g.NumNodes(), g.NumEdges(), t.Diameter(), s)

	// 3. A workload: 12 nodes request simultaneously (maximum contention).
	set := workload.OneShot(g.NumNodes(), 12, 7)

	// 4. Run the protocol (synchronous unit-latency model).
	res, err := arrow.Run(t, set, arrow.Options{Root: t.Root()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nqueuing order (each node learns only its successor):")
	prev := "⊥ (queue head)"
	for _, id := range res.Order {
		c := res.Completions[id]
		fmt.Printf("  %-18s <- r%d at v%-3d (latency %2d, %d hops)\n",
			prev, id, c.Req.Node, c.Latency(), c.Hops)
		prev = fmt.Sprintf("r%d", id)
	}

	// 5. Compare against the clairvoyant optimal offline ordering.
	bounds := opt.Compute(g, t.Root(), set, opt.DistOfGraph(g))
	fmt.Printf("\narrow total latency: %d\n", res.TotalLatency)
	if bounds.Exact {
		fmt.Printf("optimal offline:     %d (exact)\n", bounds.Lower)
		fmt.Printf("competitive ratio:   %.2f (theory bound O(s log D))\n",
			opt.Ratio(res.TotalLatency, bounds.Lower))
	} else {
		fmt.Printf("optimal offline:     in [%d, %d]\n", bounds.Lower, bounds.Upper)
	}
}
