// Cross-module integration tests: whole-pipeline flows that no single
// package exercises — workload persistence through protocol execution,
// simulator-vs-goroutine-runtime agreement, fault injection followed by
// live protocol traffic, and trace-instrumented closed-loop runs.
package repro

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/graph"
	"repro/internal/nta"
	"repro/internal/opt"
	"repro/internal/queuing"
	"repro/internal/runtime"
	"repro/internal/stabilize"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/workload"
)

// TestWorkloadCSVThroughProtocol runs a workload, persists it to CSV,
// reloads it, and verifies the protocol reproduces the identical result —
// the reproducibility pipeline end to end.
func TestWorkloadCSVThroughProtocol(t *testing.T) {
	tr := tree.BalancedBinary(31)
	set := workload.Poisson(31, 0.6, 120, 5)
	res1, err := arrow.Run(tr, set, arrow.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := workload.WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	reloaded, err := workload.ReadCSV(&buf, 31)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := arrow.Run(tr, reloaded, arrow.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalLatency != res2.TotalLatency || res1.Makespan != res2.Makespan {
		t.Error("reloaded workload produced different costs")
	}
	for i := range res1.Order {
		if res1.Order[i] != res2.Order[i] {
			t.Fatal("reloaded workload produced a different order")
		}
	}
}

// TestSimAndRuntimeAgreeSequentially drives the simulator and the
// goroutine runtime with the same sequential request sequence; both must
// produce the same queuing order and per-request hop counts.
func TestSimAndRuntimeAgreeSequentially(t *testing.T) {
	tr := tree.BalancedBinary(15)
	nodes := []graph.NodeID{7, 3, 14, 0, 9, 7, 1}

	// Simulator: spaced far apart in time = sequential.
	reqs := make([]queuing.Request, len(nodes))
	for i, v := range nodes {
		reqs[i] = queuing.Request{Node: v, Time: int64(i) * 100}
	}
	set := queuing.NewSet(reqs)
	simRes, err := arrow.Run(tr, set, arrow.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}

	// Runtime: issue one at a time, waiting for quiescence between.
	net := runtime.New(tr, 0, runtime.Options{})
	net.Start()
	var (
		mu    sync.Mutex
		comps []runtime.Completion
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range net.Completions() {
			mu.Lock()
			comps = append(comps, c)
			mu.Unlock()
		}
	}()
	for _, v := range nodes {
		net.RequestSync(v)
		net.Wait()
	}
	net.Stop()
	<-done

	if len(comps) != len(nodes) {
		t.Fatalf("runtime completed %d of %d", len(comps), len(nodes))
	}
	for i, id := range simRes.Order {
		simC := simRes.Completions[id]
		rtC := comps[i]
		if simC.Req.Node != rtC.Origin {
			t.Errorf("position %d: sim origin v%d, runtime origin v%d",
				i, simC.Req.Node, rtC.Origin)
		}
		if simC.Hops != rtC.Hops {
			t.Errorf("position %d: sim hops %d, runtime hops %d", i, simC.Hops, rtC.Hops)
		}
	}
}

// TestRepairThenProtocolThenRepair injects faults mid-lifecycle: run the
// protocol, corrupt the final pointers, repair, and run more traffic from
// the repaired sink.
func TestRepairThenProtocolThenRepair(t *testing.T) {
	tr := tree.BalancedBinary(31)
	set1 := workload.OneShot(31, 12, 1)
	res, err := arrow.Run(tr, set1, arrow.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	links := append([]graph.NodeID(nil), res.FinalLinks...)
	// Corrupt a third of the pointers.
	for i := 0; i < 10; i++ {
		links[(i*7)%31] = graph.NodeID((i * 13) % 31)
	}
	rep, err := stabilize.Repair(tr, links)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stabilize.IsLegal(tr, links); !ok {
		t.Fatal("repair left an illegal state")
	}
	set2 := workload.OneShot(31, 8, 2)
	res2, err := arrow.Run(tr, set2, arrow.Options{Root: rep.Sink})
	if err != nil {
		t.Fatal(err)
	}
	if !queuing.ValidOrder(res2.Order, len(set2)) {
		t.Fatal("post-repair protocol produced invalid order")
	}
}

// TestTracedRunMatchesUntraced verifies tracing is a pure observer: the
// same run with and without a tracer yields identical costs.
func TestTracedRunMatchesUntraced(t *testing.T) {
	tr := tree.BalancedBinary(15)
	set := workload.Bursty(15, 4, 2, 20, 3)
	plain, err := arrow.Run(tr, set, arrow.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	traced, err := arrow.Run(tr, set, arrow.Options{Root: 0, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalLatency != traced.TotalLatency || plain.TotalHops != traced.TotalHops {
		t.Error("tracer changed protocol behaviour")
	}
	if len(rec.Events()) == 0 {
		t.Error("tracer recorded nothing")
	}
}

// TestAllQueuingProtocolsAgreeOnSequentialOrder runs arrow, NTA and the
// centralized protocol on one well-separated workload; all three must
// queue in issue order (the only sensible sequential order).
func TestAllQueuingProtocolsAgreeOnSequentialOrder(t *testing.T) {
	n := 16
	g := graph.Complete(n)
	tr := tree.BalancedBinary(n)
	set := workload.Sequential(n, 12, 50, 9)

	ar, err := arrow.Run(tr, set, arrow.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	nt, err := nta.Run(g, set, nta.Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := centralized.Run(g, set, centralized.Options{Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		if ar.Order[i] != i || nt.Order[i] != i || ce.Order[i] != i {
			t.Fatalf("position %d: orders arrow=%d nta=%d central=%d, want %d",
				i, ar.Order[i], nt.Order[i], ce.Order[i], i)
		}
	}
}

// TestExperimentHarnessEndToEnd smoke-runs every experiment entry point
// at reduced scale — the arrowbench surface.
func TestExperimentHarnessEndToEnd(t *testing.T) {
	if _, err := analysis.SP2Experiment([]int{2, 4}, 50, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.LowerBoundSweep([]int{3}); err != nil {
		t.Error(err)
	}
	if _, err := analysis.SequentialExperiment([]int{8}, 10, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.TreeChoiceExperiment(8, 6, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.ArbitrationExperiment(15, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.AsyncExperiment(8, 4, 4, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.StretchExperiment(3, []int{1, 2}); err != nil {
		t.Error(err)
	}
	if _, err := analysis.OneShotExperiment(16, []int{4}, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.DirectoryExperiment([]int{2}, 10, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.CommTreeExperiment(4, 10, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.StabilizeExperiment([]int{15}, 0.3, 3, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.AdversarialSearch(8, 6, 30, 1); err != nil {
		t.Error(err)
	}
	if _, err := analysis.NNApproximationSweep([]int{6}, 1, 1); err != nil {
		t.Error(err)
	}
	// The competitive-ratio denominator machinery.
	g := graph.Grid(4, 4)
	set := workload.OneShot(16, 6, 1)
	b := opt.Compute(g, 0, set, opt.DistOfGraph(g))
	if !b.Exact || b.Lower <= 0 {
		t.Errorf("opt bounds degenerate: %+v", b)
	}
}
