package analysis

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/workload"
)

// TreeChoiceRow compares spanning-tree constructions for the same
// workload — the design-choice ablation discussed by Demmer–Herlihy
// (MST) and Peleg–Reshef (minimum communication spanning trees).
type TreeChoiceRow struct {
	Tree      string
	S         float64
	D         int64
	CostArrow int64
	AvgHops   float64
	Ratio     float64 // vs a shared optimal lower/upper bound
}

// TreeChoiceExperiment runs the same workload on a complete graph under
// several spanning trees; the per-tree cells run as one parallel sweep.
func TreeChoiceExperiment(n, requests int, seed int64) ([]TreeChoiceRow, error) {
	g := graph.Complete(n)
	set := workload.Poisson(n, 0.5, sim.Time(4*requests), seed)
	if len(set) == 0 {
		set = workload.OneShot(n, min(requests, n), seed)
	}
	bounds := opt.Compute(g, 0, set, opt.DistOfGraph(g))
	den := bounds.Upper
	if bounds.Exact {
		den = bounds.Lower
	}
	kinds := []TreeKind{TreeBalancedBinary, TreeMST, TreeBFS, TreeStar, TreePath}
	trees := make([]*tree.Tree, len(kinds))
	instances := make([]engine.Instance, len(kinds))
	for i, kind := range kinds {
		t, err := BuildTree(kind, g)
		if err != nil {
			return nil, err
		}
		trees[i] = t
		instances[i] = engine.Instance{
			Label:    kind.String(),
			Graph:    g,
			Tree:     t,
			Root:     t.Root(),
			Workload: engine.NewStatic(set).MustBuild(),
			Seed:     seed,
		}
	}
	outs := engine.Sweep(engine.Grid(instances, engine.Arrow{}), 0)
	if err := engine.FirstError(outs); err != nil {
		return nil, fmt.Errorf("analysis: tree ablation: %w", err)
	}
	rows := make([]TreeChoiceRow, 0, len(kinds))
	for i, kind := range kinds {
		cost := outs[i].Cost
		rows = append(rows, TreeChoiceRow{
			Tree:      kind.String(),
			S:         trees[i].EdgeStretch(g),
			D:         trees[i].Diameter(),
			CostArrow: cost.TotalLatency,
			AvgHops:   cost.AvgQueueHops(),
			Ratio:     opt.Ratio(cost.TotalLatency, den),
		})
	}
	return rows, nil
}

// TreeChoiceTable formats the ablation.
func TreeChoiceTable(rows []TreeChoiceRow) *Table {
	t := &Table{
		Title:   "Ablation — spanning tree choice (same workload, complete graph)",
		Headers: []string{"tree", "s", "D", "cost(arrow)", "avg hops", "ratio"},
	}
	for _, r := range rows {
		t.AddRow(r.Tree, r.S, r.D, r.CostArrow, r.AvgHops, r.Ratio)
	}
	return t
}

// AsyncRow compares delay models on the same instance (Section 3.8:
// the O(s log D) bound survives asynchrony).
type AsyncRow struct {
	Model     string
	Scale     int64
	CostArrow int64
	// NormalizedCost divides by the model scale, making costs comparable
	// to the synchronous unit-latency analysis.
	NormalizedCost float64
	Ratio          float64
}

// AsyncExperiment runs the same workload under synchronous and
// asynchronous delay models.
func AsyncExperiment(n, requests int, scale int64, seed int64) ([]AsyncRow, error) {
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)
	set := workload.Bursty(n, requests/2, 2, sim.Time(8*scale), seed)
	bounds := opt.Compute(g, 0, set, opt.DistOfGraph(g))
	den := bounds.Upper
	if bounds.Exact {
		den = bounds.Lower
	}
	models := []sim.LatencyModel{
		sim.SynchronousScaled(scale),
		sim.AsyncUniform(scale),
		sim.AsyncBimodal(scale, 0.1),
	}
	// Scale request times to the model's time base so concurrency
	// structure is preserved.
	scaled := make([]queuing.Request, len(set))
	for i, r := range set {
		scaled[i] = queuing.Request{Node: r.Node, Time: r.Time * scale}
	}
	sset := queuing.NewSet(scaled)
	instances := make([]engine.Instance, len(models))
	for i, m := range models {
		instances[i] = engine.Instance{
			Label:    m.Name(),
			Graph:    g,
			Tree:     t,
			Root:     0,
			Workload: engine.NewStatic(sset).MustBuild(),
			Latency:  m,
			Seed:     seed,
		}
	}
	outs := engine.Sweep(engine.Grid(instances, engine.Arrow{}), 0)
	if err := engine.FirstError(outs); err != nil {
		return nil, fmt.Errorf("analysis: async ablation: %w", err)
	}
	rows := make([]AsyncRow, 0, len(models))
	for i, m := range models {
		cost := outs[i].Cost
		norm := float64(cost.TotalLatency) / float64(scale)
		rows = append(rows, AsyncRow{
			Model:          m.Name(),
			Scale:          scale,
			CostArrow:      cost.TotalLatency,
			NormalizedCost: norm,
			Ratio:          norm / float64(max(den, 1)),
		})
	}
	return rows, nil
}

// AsyncTable formats the asynchronous-model comparison.
func AsyncTable(rows []AsyncRow) *Table {
	t := &Table{
		Title:   "Section 3.8 — synchronous vs asynchronous delay models",
		Headers: []string{"model", "scale", "cost(arrow)", "normalized", "ratio vs opt"},
	}
	for _, r := range rows {
		t.AddRow(r.Model, r.Scale, r.CostArrow, r.NormalizedCost, r.Ratio)
	}
	return t
}

// ArbitrationRow compares simultaneous-message arbitration policies; the
// analysis claims costs are bounded "irrespective of the order in which
// the queue() messages are locally processed".
type ArbitrationRow struct {
	Arbitration string
	CostArrow   int64
	TotalHops   int64
}

// ArbitrationExperiment runs one high-contention instance under all
// arbitration policies, as one parallel sweep.
func ArbitrationExperiment(n int, seed int64) ([]ArbitrationRow, error) {
	t := tree.BalancedBinary(n)
	set := workload.OneShot(n, n/2, seed)
	arbs := []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom}
	instances := make([]engine.Instance, len(arbs))
	for i, a := range arbs {
		instances[i] = engine.Instance{
			Label:       a.String(),
			Tree:        t,
			Root:        0,
			Workload:    engine.NewStatic(set).MustBuild(),
			Arbitration: a,
			Seed:        seed,
		}
	}
	outs := engine.Sweep(engine.Grid(instances, engine.Arrow{}), 0)
	if err := engine.FirstError(outs); err != nil {
		return nil, err
	}
	rows := make([]ArbitrationRow, 0, len(arbs))
	for i, a := range arbs {
		rows = append(rows, ArbitrationRow{
			Arbitration: a.String(),
			CostArrow:   outs[i].Cost.TotalLatency,
			TotalHops:   outs[i].Cost.QueueHops,
		})
	}
	return rows, nil
}

// ArbitrationTable formats the arbitration ablation.
func ArbitrationTable(rows []ArbitrationRow) *Table {
	t := &Table{
		Title:   "Ablation — local arbitration of simultaneous messages",
		Headers: []string{"arbitration", "cost(arrow)", "total hops"},
	}
	for _, r := range rows {
		t.AddRow(r.Arbitration, r.CostArrow, r.TotalHops)
	}
	return t
}

// StretchRow is one point of the Theorem 4.2 experiment: the lower-bound
// instance stretched over the shortcut gadget.
type StretchRow struct {
	S         int
	D         int
	K         int
	Requests  int
	CostArrow int64
	OptUpper  int64
	Ratio     float64
}

// StretchExperiment builds PathWithShortcuts(D, s) for each s, places the
// Theorem 4.1 instance on the multiples of s (exactly the Theorem 4.2
// construction), and measures the ratio growth ~ s·log(D/s)/loglog(D/s).
// Stretches run in parallel.
func StretchExperiment(logDOverS int, stretches []int) ([]StretchRow, error) {
	rows := make([]StretchRow, len(stretches))
	err := engine.ParallelMapErr(len(stretches), 0, func(i int) error {
		s := stretches[i]
		inner := workload.LowerBound(logDOverS, workload.DefaultK(1<<logDOverS))
		d := inner.D * s
		g := graph.PathWithShortcuts(d, s)
		t := tree.PathTree(d + 1)
		// Map request at path-P' node i to node i*s on the long path.
		mapped := make([]queuing.Request, len(inner.Set))
		for j, r := range inner.Set {
			mapped[j] = queuing.Request{
				Node: graph.NodeID(int(r.Node) * s),
				Time: r.Time * sim.Time(s),
			}
		}
		set := queuing.NewSet(mapped)
		cost, err := engine.Arrow{}.Run(engine.Instance{
			Graph: g, Tree: t, Root: 0, Workload: engine.NewStatic(set).MustBuild(),
		})
		if err != nil {
			return fmt.Errorf("analysis: stretch %d: %w", s, err)
		}
		bounds := opt.Compute(g, 0, set, opt.DistOfGraph(g))
		rows[i] = StretchRow{
			S:         s,
			D:         d,
			K:         inner.K,
			Requests:  len(set),
			CostArrow: cost.TotalLatency,
			OptUpper:  bounds.Upper,
			Ratio:     opt.Ratio(cost.TotalLatency, bounds.Upper),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// StretchTable formats the Theorem 4.2 sweep.
func StretchTable(rows []StretchRow) *Table {
	t := &Table{
		Title:   "Theorem 4.2 — lower bound with stretch-s shortcut gadget",
		Headers: []string{"s", "D", "k", "|R|", "cost(arrow)", "opt upper", "ratio >="},
	}
	for _, r := range rows {
		t.AddRow(r.S, r.D, r.K, r.Requests, r.CostArrow, r.OptUpper, r.Ratio)
	}
	return t
}
