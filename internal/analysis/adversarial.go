package analysis

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
)

// AdversarialResult reports the outcome of a randomized search for
// high-competitive-ratio instances on a path tree — an empirical
// companion to the Theorem 4.1 lower bound. The search hill-climbs over
// small request sets (exact optimum computable) by mutating request
// positions and times.
type AdversarialResult struct {
	D        int
	Requests int
	// BestRatio is the largest cost(arrow)/cost(opt-exact) found.
	BestRatio float64
	// BestSet is the witnessing request set.
	BestSet queuing.Set
	// Evaluated counts candidate instances scored.
	Evaluated int
}

// AdversarialSearch hill-climbs for nReq-request instances on the path
// 0..d maximizing arrow's exact competitive ratio. nReq must be at most
// opt.MaxExactRequests. Deterministic for a fixed seed.
func AdversarialSearch(d, nReq, iterations int, seed int64) (AdversarialResult, error) {
	rng := rand.New(rand.NewSource(seed))
	t := tree.PathTree(d + 1)
	g := graph.Path(d + 1)
	dg := opt.DistOfGraph(g)

	score := func(set queuing.Set) (float64, error) {
		cost, err := engine.Arrow{}.Run(engine.Instance{
			Graph: g, Tree: t, Root: 0, Workload: engine.NewStatic(set).MustBuild(),
		})
		if err != nil {
			return 0, err
		}
		b := opt.Compute(g, 0, set, dg)
		den := b.Lower
		if !b.Exact {
			den = b.Upper
		}
		if den == 0 {
			return 0, nil
		}
		return float64(cost.TotalLatency) / float64(den), nil
	}
	randomSet := func() queuing.Set {
		reqs := make([]queuing.Request, nReq)
		for i := range reqs {
			reqs[i] = queuing.Request{
				Node: graph.NodeID(rng.Intn(d + 1)),
				Time: sim.Time(rng.Intn(2*d + 1)),
			}
		}
		return queuing.NewSet(reqs)
	}
	mutate := func(set queuing.Set) queuing.Set {
		reqs := append([]queuing.Request(nil), set...)
		i := rng.Intn(len(reqs))
		switch rng.Intn(3) {
		case 0:
			reqs[i].Node = graph.NodeID(rng.Intn(d + 1))
		case 1:
			reqs[i].Time = sim.Time(rng.Intn(2*d + 1))
		default:
			delta := rng.Intn(d/4+2) - d/8
			p := int(reqs[i].Node) + delta
			if p < 0 {
				p = 0
			}
			if p > d {
				p = d
			}
			reqs[i].Node = graph.NodeID(p)
		}
		return queuing.NewSet(reqs)
	}

	result := AdversarialResult{D: d, Requests: nReq}
	cur := randomSet()
	curScore, err := score(cur)
	if err != nil {
		return result, err
	}
	best, bestScore := cur, curScore
	sinceImprove := 0
	for iter := 0; iter < iterations; iter++ {
		cand := mutate(cur)
		cs, err := score(cand)
		if err != nil {
			return result, err
		}
		result.Evaluated++
		if cs >= curScore {
			cur, curScore = cand, cs
		}
		if cs > bestScore {
			best, bestScore = cand, cs
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if sinceImprove > iterations/5 {
			// Restart from a fresh random instance to escape plateaus.
			cur = randomSet()
			curScore, err = score(cur)
			if err != nil {
				return result, err
			}
			sinceImprove = 0
		}
	}
	result.BestRatio = bestScore
	result.BestSet = best
	return result, nil
}

// AdversarialSweep runs an independent AdversarialSearch per diameter
// across a worker pool (0 = GOMAXPROCS). Each diameter's search is seeded
// from its own derived seed, so results are deterministic and identical
// for every worker count.
func AdversarialSweep(ds []int, nReq, iterations int, seed int64, workers int) ([]AdversarialResult, error) {
	results := make([]AdversarialResult, len(ds))
	err := engine.ParallelMapErr(len(ds), workers, func(i int) error {
		var err error
		results[i], err = AdversarialSearch(ds[i], nReq, iterations, engine.DeriveSeed(seed, i))
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// AdversarialTable formats search results across diameters.
func AdversarialTable(results []AdversarialResult) *Table {
	t := &Table{
		Title:   "Adversarial search — worst measured ratio on path trees (exact opt)",
		Headers: []string{"D", "|R|", "instances tried", "worst ratio found"},
	}
	for _, r := range results {
		t.AddRow(r.D, r.Requests, r.Evaluated, r.BestRatio)
	}
	return t
}
