package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"a", "long-header"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xyz", "w")
	out := tbl.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "2.500") {
		t.Error("float not formatted to 3 decimals")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestBuildTreeKinds(t *testing.T) {
	g := graph.Complete(15)
	for _, kind := range []TreeKind{
		TreeBalancedBinary, TreeMST, TreeKruskal, TreeBFS, TreeSPT, TreeStar, TreePath,
	} {
		tr, err := BuildTree(kind, g)
		if err != nil {
			t.Errorf("%v: %v", kind, err)
			continue
		}
		if tr.NumNodes() != 15 {
			t.Errorf("%v: %d nodes", kind, tr.NumNodes())
		}
	}
	if _, err := BuildTree(TreeKind(99), g); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestBuildTreeRejectsNonEmbeddable(t *testing.T) {
	// A cycle has no star spanning tree (center 0 lacks edges to all).
	g := graph.Cycle(6)
	if _, err := BuildTree(TreeStar, g); err == nil {
		t.Error("star tree on a cycle should fail embedding check")
	}
	// But path tree embeds in a cycle.
	if _, err := BuildTree(TreePath, g); err != nil {
		t.Errorf("path tree on cycle: %v", err)
	}
}

func TestSP2ExperimentShape(t *testing.T) {
	rows, err := SP2Experiment([]int{2, 8, 32}, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Figure 10's shape: centralized makespan grows ~linearly (x4 per
	// size step here), arrow's grows much slower.
	centralGrowth := float64(rows[2].CentralMakespan) / float64(rows[0].CentralMakespan)
	arrowGrowth := float64(rows[2].ArrowMakespan) / float64(rows[0].ArrowMakespan)
	if centralGrowth < 8 {
		t.Errorf("centralized growth %.1fx over 16x nodes, want >= 8x", centralGrowth)
	}
	if arrowGrowth > centralGrowth/2 {
		t.Errorf("arrow growth %.1fx should be far below centralized %.1fx", arrowGrowth, centralGrowth)
	}
	// Figure 11's range: around 1-2 hops per op under saturation.
	for _, r := range rows {
		if r.AvgHops < 0 || r.AvgHops > 4 {
			t.Errorf("n=%d: avg hops %.2f outside plausible range", r.N, r.AvgHops)
		}
	}
	if out := Fig10Table(rows).Render(); !strings.Contains(out, "Figure 10") {
		t.Error("fig10 table malformed")
	}
	if out := Fig11Table(rows).Render(); !strings.Contains(out, "Figure 11") {
		t.Error("fig11 table malformed")
	}
}

func TestRatioSweepStaysWithinTheoremBound(t *testing.T) {
	// Theorem 3.19 with the explicit constants of the proof gives
	// ratio <= (3·ceil(log2 3D)+1)·12·s·2-ish; we check the much
	// stronger empirical statement ratio <= s·log2(3D) which the sweep
	// satisfies comfortably — regression guard for protocol changes.
	for _, cfg := range DefaultRatioConfigs(3) {
		row, err := MeasureRatio(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !row.Exact {
			continue
		}
		if row.Ratio > row.Bound {
			t.Errorf("%s/%s: ratio %.2f exceeds s*log2(3D) = %.2f",
				cfg.Name, cfg.WorkName, row.Ratio, row.Bound)
		}
		if row.Ratio < 1.0-1e-9 {
			t.Errorf("%s/%s: ratio %.2f below 1 — opt bound broken", cfg.Name, cfg.WorkName, row.Ratio)
		}
	}
}

func TestArrowOrderIsNearestNeighborSync(t *testing.T) {
	// Lemma 3.8, synchronous model: exhaustive check across many random
	// instances and arbitration policies.
	trial := 0
	for seed := int64(0); seed < 60; seed++ {
		n := 4 + int(seed%24)
		tr := tree.BalancedBinary(n)
		set := workload.Poisson(n, 0.7, sim.Time(2*n), seed)
		if len(set) == 0 {
			continue
		}
		for _, arb := range []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom} {
			trial++
			if err := CheckNNOrder(tr, set, arrow.Options{Root: 0, Arbitration: arb, Seed: seed}); err != nil {
				t.Fatalf("seed %d arb %v: %v", seed, arb, err)
			}
		}
	}
	if trial < 100 {
		t.Fatalf("only %d NN trials ran", trial)
	}
}

func TestArrowOrderIsNearestNeighborOnTrees(t *testing.T) {
	// Lemma 3.8 on varied tree shapes, not just balanced binary.
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomGeometric(20, 0.4, 3, seed)
		tr, err := BuildTree(TreeMST, g)
		if err != nil {
			t.Fatal(err)
		}
		set := workload.Bursty(20, 4, 3, 15, seed)
		if err := CheckNNOrder(tr, set, arrow.Options{Root: tr.Root(), Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLongestEdgeBoundLemma313(t *testing.T) {
	// Lemma 3.13: the longest cT edge on arrow's path is <= 3D, after the
	// Lemma 3.11/3.12 time compression. Raw workloads here are already
	// dense enough that the bound holds directly.
	for seed := int64(0); seed < 25; seed++ {
		n := 15
		tr := tree.BalancedBinary(n)
		d := tr.Diameter()
		set := workload.Bursty(n, 5, 3, sim.Time(d), seed)
		res, err := arrow.Run(tr, set, arrow.Options{Root: 0})
		if err != nil {
			t.Fatal(err)
		}
		if mx := LongestEdgeCT(tr, set, 0, res.Order); mx > 3*d {
			t.Errorf("seed %d: longest cT edge %d exceeds 3D = %d", seed, mx, 3*d)
		}
	}
}

func TestVerifyNNOrderDetectsViolation(t *testing.T) {
	tr := tree.PathTree(6)
	set := queuing.NewSet([]queuing.Request{
		{Node: 1, Time: 0},
		{Node: 5, Time: 0},
	})
	// Root 0: NN order must serve node 1 first. The reversed order is a
	// violation VerifyNNOrder must flag.
	if err := VerifyNNOrder(tr, set, 0, queuing.Order{1, 0}); err == nil {
		t.Error("expected NN violation for reversed order")
	}
	if err := VerifyNNOrder(tr, set, 0, queuing.Order{0, 1}); err != nil {
		t.Errorf("correct order rejected: %v", err)
	}
	if err := VerifyNNOrder(tr, set, 0, queuing.Order{0}); err == nil {
		t.Error("expected permutation error")
	}
}

func TestLowerBoundSweepRuns(t *testing.T) {
	rows, err := LowerBoundSweep([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio < 1.0-1e-9 {
			t.Errorf("D=%d: ratio %.3f below 1", r.D, r.Ratio)
		}
		if r.CostArrow < int64(r.D) {
			t.Errorf("D=%d: arrow cost %d below D", r.D, r.CostArrow)
		}
	}
	if out := LowerBoundTable(rows).Render(); !strings.Contains(out, "Theorem 4.1") {
		t.Error("table malformed")
	}
}

func TestSequentialExperimentBounds(t *testing.T) {
	rows, err := SequentialExperiment([]int{8, 16}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if int64(r.MaxHops) > r.D {
			t.Errorf("n=%d: sequential request used %d hops > D=%d", r.N, r.MaxHops, r.D)
		}
		if r.Ratio > r.S+1e-9 {
			t.Errorf("n=%d: sequential ratio %.3f exceeds stretch %.3f", r.N, r.Ratio, r.S)
		}
	}
}

func TestTreeChoiceExperiment(t *testing.T) {
	rows, err := TreeChoiceExperiment(16, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// The path tree has the worst diameter; its cost should not beat the
	// balanced binary tree on a complete graph under this workload.
	var binCost, pathCost int64
	for _, r := range rows {
		switch r.Tree {
		case "balanced-binary":
			binCost = r.CostArrow
		case "path":
			pathCost = r.CostArrow
		}
	}
	// On small workloads the two can be close; flag only a dramatic
	// inversion (path tree should never halve the balanced tree's cost).
	if pathCost*2 < binCost {
		t.Errorf("path tree (%d) beat balanced binary (%d) by 2x — suspicious", pathCost, binCost)
	}
}

func TestArbitrationExperimentCompletes(t *testing.T) {
	rows, err := ArbitrationExperiment(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CostArrow <= 0 {
			t.Errorf("%s: cost %d", r.Arbitration, r.CostArrow)
		}
	}
}

func TestAsyncExperimentNormalization(t *testing.T) {
	rows, err := AsyncExperiment(16, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NormalizedCost <= 0 {
			t.Errorf("%s: normalized cost %f", r.Model, r.NormalizedCost)
		}
	}
	// Async delays are at most the synchronous worst case, so total cost
	// cannot exceed sync by more than rounding effects.
	if rows[1].CostArrow > rows[0].CostArrow*2 {
		t.Errorf("async cost %d wildly exceeds sync %d", rows[1].CostArrow, rows[0].CostArrow)
	}
}

func TestStretchExperimentScaling(t *testing.T) {
	rows, err := StretchExperiment(3, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].D != rows[0].D*4 {
		t.Errorf("stretch-4 diameter %d, want %d", rows[1].D, rows[0].D*4)
	}
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Errorf("s=%d: ratio %f", r.S, r.Ratio)
		}
	}
}

func TestAdversarialSearchFindsNontrivialRatio(t *testing.T) {
	r, err := AdversarialSearch(16, 8, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.BestRatio < 1.2 {
		t.Errorf("search found only ratio %.3f, expected > 1.2 on D=16", r.BestRatio)
	}
	if len(r.BestSet) != 8 {
		t.Errorf("witness has %d requests", len(r.BestSet))
	}
	if out := AdversarialTable([]AdversarialResult{r}).Render(); !strings.Contains(out, "16") {
		t.Error("table malformed")
	}
}

func TestNNApproximationSweepWithinBound(t *testing.T) {
	rows, err := NNApproximationSweep([]int{6, 8}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio > 2*r.Bound+2 {
			t.Errorf("NN ratio %.2f far exceeds theorem bound %.2f", r.Ratio, r.Bound)
		}
	}
}

// TestBaselinesClosedLoop: the four-protocol closed-loop grid completes
// every cell, splits queue from reply traffic, and reproduces the
// Section 5 contrast (centralized serialization vs the distributed
// protocols' flat makespan).
func TestBaselinesClosedLoop(t *testing.T) {
	ns := []int{2, 8, 24}
	const perNode = 150
	rows, err := BaselinesClosedLoop(ns, perNode, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ns)*4 {
		t.Fatalf("%d rows, want %d", len(rows), len(ns)*4)
	}
	byProto := map[string][]BaselineRow{}
	for _, r := range rows {
		if r.Requests != int64(r.N*perNode) {
			t.Errorf("%s n=%d: completed %d of %d", r.Protocol, r.N, r.Requests, r.N*perNode)
		}
		if r.AvgReplyHops <= 0 {
			t.Errorf("%s n=%d: missing reply traffic split", r.Protocol, r.N)
		}
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	for _, p := range []string{"arrow", "nta", "centralized", "ivy"} {
		if len(byProto[p]) != len(ns) {
			t.Fatalf("protocol %s has %d rows, want %d", p, len(byProto[p]), len(ns))
		}
	}
	// Centralized's makespan must grow ~linearly with n; the distributed
	// protocols stay far flatter (the Figure 10 contrast).
	cGrowth := float64(byProto["centralized"][2].Makespan) / float64(byProto["centralized"][0].Makespan)
	for _, p := range []string{"arrow", "nta", "ivy"} {
		g := float64(byProto[p][2].Makespan) / float64(byProto[p][0].Makespan)
		if g > cGrowth/2 {
			t.Errorf("%s growth %.1fx not well below centralized %.1fx", p, g, cGrowth)
		}
	}
	if out := BaselinesClosedLoopTable(rows).Render(); !strings.Contains(out, "reply hops/op") {
		t.Error("baselines table missing reply hop column")
	}
}

// TestTableRenderJSON: the JSON rendering round-trips title, headers and
// header-aligned row arrays without losing cells — even cells beyond the
// header count, which a header-keyed encoding would silently drop.
func TestTableRenderJSON(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "b"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y", "overflow")
	var doc struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(tbl.RenderJSON()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Title != "T" || len(doc.Headers) != 2 || len(doc.Rows) != 2 {
		t.Fatalf("document shape wrong: %+v", doc)
	}
	if doc.Rows[0][0] != "1" || doc.Rows[0][1] != "2.500" {
		t.Errorf("row cells wrong: %+v", doc.Rows[0])
	}
	if len(doc.Rows[1]) != 3 || doc.Rows[1][2] != "overflow" {
		t.Errorf("overflow cell lost: %+v", doc.Rows[1])
	}
}
