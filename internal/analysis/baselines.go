package analysis

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// baselineProtocols is the fixed protocol set of the baselines grid, in
// table order.
func baselineProtocols() []engine.Protocol {
	return []engine.Protocol{
		engine.Arrow{}, engine.NTA{}, engine.Centralized{}, engine.Ivy{},
	}
}

// BaselineRow is one protocol × size cell of the closed-loop baselines
// experiment: all four queuing protocols under the paper's Section 5
// regime (every node keeps one request in flight), on a complete graph
// with a balanced binary spanning tree for arrow. Queue and reply
// traffic are reported in separate columns: the paper charges only queue
// messages to the protocol, and folding the reply leg into one protocol
// but not another would skew the comparison. The nta and ivy rows are
// identical by construction, not by measurement: both protocols chase
// and reverse pointers with the same step rule under this cost model
// (see nta's reversalStepper and TestClosedLoopMatchesIvy).
type BaselineRow struct {
	Protocol     string
	N            int
	PerNode      int
	Requests     int64
	Makespan     sim.Time
	AvgLatency   float64
	AvgQueueHops float64
	AvgReplyHops float64
	// LocalFrac is the fraction of requests that found their predecessor
	// locally (zero queue messages).
	LocalFrac float64
}

// BaselinesClosedLoopGrid builds the experiment cells: for each n, every
// baseline protocol on an identical closed-loop instance. Cells are in
// n-major order, protocols in baselineProtocols order per n.
func BaselinesClosedLoopGrid(ns []int, perNode int, seed int64) []engine.Cell {
	instances := make([]engine.Instance, 0, len(ns))
	for i, n := range ns {
		instances = append(instances, engine.Instance{
			Label:    fmt.Sprintf("n=%d", n),
			Graph:    graph.Complete(n),
			Tree:     tree.BalancedBinary(n),
			Root:     0,
			Workload: engine.NewClosedLoop(perNode).MustBuild(),
			Seed:     engine.DeriveSeed(seed, i),
		})
	}
	return engine.Grid(instances, baselineProtocols()...)
}

// BaselinesClosedLoop runs the closed-loop baselines grid as one
// parallel sweep (workers 0 = GOMAXPROCS; results are identical for
// every worker count) and flattens the outcomes to rows.
func BaselinesClosedLoop(ns []int, perNode int, seed int64, workers int) ([]BaselineRow, error) {
	outs := engine.Sweep(BaselinesClosedLoopGrid(ns, perNode, seed), workers)
	if err := engine.FirstError(outs); err != nil {
		return nil, fmt.Errorf("analysis: baselines sweep: %w", err)
	}
	rows := make([]BaselineRow, 0, len(outs))
	for _, c := range engine.Costs(outs) {
		row := BaselineRow{
			Protocol:     c.Protocol,
			N:            c.N,
			PerNode:      perNode,
			Requests:     c.Requests,
			Makespan:     c.Makespan,
			AvgLatency:   c.AvgLatency(),
			AvgQueueHops: c.AvgQueueHops(),
		}
		if c.Requests > 0 {
			row.AvgReplyHops = float64(c.ReplyHops) / float64(c.Requests)
			row.LocalFrac = float64(c.LocalCompletions) / float64(c.Requests)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BaselinesClosedLoopTable formats the closed-loop baselines comparison.
func BaselinesClosedLoopTable(rows []BaselineRow) *Table {
	t := &Table{
		Title: "Baselines — closed loop (Section 5 regime), all protocols",
		Headers: []string{"protocol", "n", "reqs/node", "makespan", "avg latency",
			"queue hops/op", "reply hops/op", "local frac"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.N, r.PerNode, r.Makespan, r.AvgLatency,
			r.AvgQueueHops, r.AvgReplyHops, r.LocalFrac)
	}
	return t
}
