package analysis

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// ChurnRow is one protocol × workload × fault-rate cell of the churn
// experiment: the degraded-mode regime the static tables cannot express.
// Every field is deterministic for a fixed config — the JSON document is
// byte-identical across runs and worker counts.
type ChurnRow struct {
	Protocol string  `json:"protocol"`
	N        int     `json:"n"`
	PerNode  int     `json:"per_node"`
	Workload string  `json:"workload"`
	Rate     float64 `json:"rate"`
	Requests int64   `json:"requests"`
	Dropped  int64   `json:"dropped"`
	Deferred int64   `json:"deferred"`
	Reissued int64   `json:"reissued"`
	Repairs  int64   `json:"repair_episodes"`
	RepairMs int64   `json:"repair_messages"`
	// RepairTime is the simulated time spent in self-stabilizing repair
	// (arrow only) — the recovery-time column.
	RepairTime int64 `json:"repair_time"`
	// Availability is the clean-completion fraction 1 − affected/requests.
	Availability float64  `json:"availability"`
	Makespan     sim.Time `json:"makespan"`
	// Latency is the per-request queuing-latency distribution; its tail
	// (p99) carries the outage cost of lost-and-reissued requests.
	Latency stats.Dist `json:"latency"`
}

// ChurnWorkloads is the workload axis of the churn experiment: the
// saturated Section 5 regime and a think-time variant that drains queue
// pressure between faults.
func ChurnWorkloads() []PerfWorkload {
	return []PerfWorkload{
		{Name: "saturated"},
		{Name: "think8", Think: 8},
	}
}

// churnPlan builds the deterministic node-churn schedule for one fault
// rate: every node (root and coordinator included — centralized pays its
// failover) suffers on average `rate` outages inside the warm window.
// The same plan backs all protocol cells of the rate, so the protocols
// face an identical failure trace.
func churnPlan(n, perNode int, rate float64, seed int64) *sim.FaultPlan {
	if rate <= 0 {
		return nil
	}
	horizon := sim.Time(4 * perNode)
	start := horizon / 8
	meanDown := sim.Time(perNode/10 + 10)
	return &sim.FaultPlan{Events: sim.NodeChurn(n, nil, rate, meanDown, start, horizon, seed)}
}

// churnCells builds the churn grid in rate-major, then workload, then
// protocol order, each cell with a private recorder (recorders
// accumulate state; see engine.Grid).
func churnCells(n, perNode int, rates []float64, seed int64) (cells []engine.Cell, rows []ChurnRow) {
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)
	workloads := ChurnWorkloads()
	protocols := baselineProtocols()
	for i, rate := range rates {
		plan := churnPlan(n, perNode, rate, sim.DeriveSeed(seed, i))
		for j, w := range workloads {
			for _, p := range protocols {
				cells = append(cells, engine.Cell{
					Protocol: p,
					Instance: engine.Instance{
						Label:    fmt.Sprintf("rate=%g/%s", rate, w.Name),
						Graph:    g,
						Tree:     t,
						Root:     0,
						Workload: engine.NewClosedLoop(perNode).Think(w.Think).MustBuild(),
						Seed:     engine.DeriveSeed(seed, i*len(workloads)+j),
						Faults:   plan,
						Recorder: stats.NewDistRecorder(),
					},
				})
				rows = append(rows, ChurnRow{
					N: n, PerNode: perNode, Workload: w.Name, Rate: rate,
				})
			}
		}
	}
	return cells, rows
}

// ChurnExperiment sweeps fault rate × workload × protocol on a complete
// graph with a balanced binary spanning tree: node churn at each rate
// (an identical failure trace for every protocol), arrow recovering by
// message-driven self-stabilizing repair, NTA/Ivy by re-issue, and
// centralized by coordinator failover. Cells fan across the worker pool;
// results are byte-identical for every worker count.
func ChurnExperiment(n, perNode int, rates []float64, seed int64, workers int) ([]ChurnRow, error) {
	cells, rows := churnCells(n, perNode, rates, seed)
	outs := engine.Sweep(cells, workers)
	if err := engine.FirstError(outs); err != nil {
		return nil, fmt.Errorf("analysis: churn sweep: %w", err)
	}
	for i, c := range engine.Costs(outs) {
		rows[i].Protocol = c.Protocol
		rows[i].Requests = c.Requests
		rows[i].Dropped = c.Dropped
		rows[i].Deferred = c.Deferred
		rows[i].Reissued = c.Reissued
		rows[i].Repairs = c.RepairEpisodes
		rows[i].RepairMs = c.RepairMessages
		rows[i].RepairTime = int64(c.RepairTime)
		rows[i].Availability = c.Availability
		rows[i].Makespan = c.Makespan
		rows[i].Latency = c.Latency
	}
	return rows, nil
}

// ChurnAvailabilityTable formats availability and recovery cost per
// protocol and fault rate.
func ChurnAvailabilityTable(rows []ChurnRow) *Table {
	t := &Table{
		Title: "Churn — availability and recovery vs fault rate (node churn, closed loop)",
		Headers: []string{"protocol", "workload", "rate", "reqs", "dropped", "reissued",
			"repairs", "repair msgs", "repair time", "availability", "makespan"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Workload, r.Rate, r.Requests, r.Dropped, r.Reissued,
			r.Repairs, r.RepairMs, r.RepairTime, r.Availability, r.Makespan)
	}
	return t
}

// ChurnLatencyTable formats the latency tail per protocol and fault
// rate: p99 carries the outage cost of lost-and-reissued requests.
func ChurnLatencyTable(rows []ChurnRow) *Table {
	t := &Table{
		Title: "Churn — per-request queuing latency under faults",
		Headers: []string{"protocol", "workload", "rate", "reqs",
			"p50", "p90", "p99", "max", "mean"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Workload, r.Rate, r.Requests,
			r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max, r.Latency.Mean)
	}
	return t
}

// ChurnSchema versions the machine-readable churn document; bump it on
// any field rename or semantic change.
const ChurnSchema = "arrowbench/churn/v1"

// ChurnConfig records the experiment parameters inside the document.
type ChurnConfig struct {
	N       int       `json:"n"`
	PerNode int       `json:"per_node"`
	Rates   []float64 `json:"rates"`
	Seed    int64     `json:"seed"`
}

// ChurnDoc is the stable schema of `arrowbench -exp churn -json`. Every
// row field is deterministic, so the document is byte-identical across
// runs and worker counts.
type ChurnDoc struct {
	Schema string      `json:"schema"`
	Config ChurnConfig `json:"config"`
	Rows   []ChurnRow  `json:"rows"`
}

// ChurnDocument assembles the machine-readable churn document.
func ChurnDocument(cfg ChurnConfig, rows []ChurnRow) ChurnDoc {
	return ChurnDoc{Schema: ChurnSchema, Config: cfg, Rows: rows}
}
