package analysis

import (
	"encoding/json"
	"testing"
)

// TestChurnExperimentDeterministicJSON is the acceptance pin: the churn
// document's JSON bytes are identical across runs and worker counts.
func TestChurnExperimentDeterministicJSON(t *testing.T) {
	cfg := ChurnConfig{N: 12, PerNode: 60, Rates: []float64{0, 1}, Seed: 5}
	marshal := func(workers int) string {
		rows, err := ChurnExperiment(cfg.N, cfg.PerNode, cfg.Rates, cfg.Seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(ChurnDocument(cfg, rows))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := marshal(1)
	for _, workers := range []int{1, 4, 0} {
		if got := marshal(workers); got != want {
			t.Fatalf("workers=%d: churn JSON diverged", workers)
		}
	}
}

// TestChurnExperimentDegradesGracefully: at a positive fault rate every
// protocol still completes all requests, availability drops below the
// fault-free 1.0 but stays high, and the faulty cells show recovery
// activity.
func TestChurnExperimentDegradesGracefully(t *testing.T) {
	rows, err := ChurnExperiment(16, 80, []float64{0, 2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	protocols := map[string]bool{}
	var faultyCells, activity int
	for _, r := range rows {
		protocols[r.Protocol] = true
		if want := int64(16 * 80); r.Requests != want {
			t.Fatalf("%s rate=%g: completed %d of %d", r.Protocol, r.Rate, r.Requests, want)
		}
		if r.Rate == 0 {
			if r.Availability != 1 || r.Dropped != 0 {
				t.Fatalf("fault-free cell reports fault activity: %+v", r)
			}
			continue
		}
		faultyCells++
		if r.Availability < 0 || r.Availability > 1 {
			t.Fatalf("availability out of range: %+v", r)
		}
		if r.Dropped > 0 {
			activity++
			if r.Availability >= 1 {
				t.Fatalf("%s rate=%g: drops but availability 1: %+v", r.Protocol, r.Rate, r)
			}
		}
		if r.Protocol == "arrow" && r.Reissued > 0 && r.Repairs == 0 {
			t.Fatalf("arrow re-issued without repair: %+v", r)
		}
	}
	if len(protocols) != 4 {
		t.Fatalf("expected 4 protocols, saw %v", protocols)
	}
	if activity == 0 {
		t.Fatalf("no faulty cell dropped anything (%d faulty cells); scenario vacuous", faultyCells)
	}
}

// TestStabilizeExperimentComparesImplementations: the extended E14 rows
// carry both the oracle and the message-driven costs, agreeing on
// convergence and the surviving sink.
func TestStabilizeExperimentComparesImplementations(t *testing.T) {
	rows, err := StabilizeExperiment([]int{15, 31}, 0.3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.AllConverged || !r.SimConverged {
			t.Fatalf("n=%d: convergence failure: %+v", r.N, r)
		}
		if !r.SinksAgree {
			t.Fatalf("n=%d: oracle and message-driven repair disagree on sinks", r.N)
		}
		if r.AvgMessages <= 0 || r.AvgSimTime <= 0 {
			t.Fatalf("n=%d: degenerate message-driven cost: %+v", r.N, r)
		}
	}
}
