package analysis

import (
	"math/rand"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
)

// CommTreeRow compares spanning trees for a known, skewed request
// distribution — the Peleg–Reshef tree-selection problem (§1.1): when the
// origin distribution of the next request is known, a minimum
// communication spanning tree minimizes the expected sequential overhead.
type CommTreeRow struct {
	Tree string
	// Expected is E[dT(U,V)] under the demand distribution — the
	// analytic objective.
	Expected float64
	// Measured is arrow's average per-request latency on a sequential
	// workload drawn from the distribution.
	Measured float64
}

// CommTreeExperiment draws a Zipf-like demand distribution over a grid,
// builds MST / BFS / demand-aware CommTree spanning trees, and measures
// arrow's sequential cost on each.
func CommTreeExperiment(side int, requests int, seed int64) ([]CommTreeRow, error) {
	g := graph.Grid(side, side)
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(seed))
	// Skewed demand: a handful of hot nodes carry most of the traffic.
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.05
	}
	for h := 0; h < 3; h++ {
		p[rng.Intn(n)] += 5
	}

	// Sequential workload drawn from p, spaced beyond any tree diameter.
	cum := make([]float64, n)
	var total float64
	for i, v := range p {
		total += v
		cum[i] = total
	}
	draw := func() graph.NodeID {
		x := rng.Float64() * total
		for i, c := range cum {
			if x <= c {
				return graph.NodeID(i)
			}
		}
		return graph.NodeID(n - 1)
	}
	gap := sim.Time(6 * side)
	reqs := make([]queuing.Request, requests)
	for i := range reqs {
		reqs[i] = queuing.Request{Node: draw(), Time: sim.Time(i) * gap}
	}
	set := queuing.NewSet(reqs)

	type namedTree struct {
		name string
		t    *tree.Tree
	}
	center, _ := g.Center()
	bfs, err := tree.BFS(g, center)
	if err != nil {
		return nil, err
	}
	mst, err := tree.PrimMST(g, 0)
	if err != nil {
		return nil, err
	}
	ct, err := tree.CommTree(g, p, 6)
	if err != nil {
		return nil, err
	}
	trees := []namedTree{{"bfs-center", bfs}, {"mst", mst}, {"comm-tree", ct}}
	rows := make([]CommTreeRow, 0, len(trees))
	for _, nt := range trees {
		res, err := arrow.Run(nt.t, set, arrow.Options{Root: nt.t.Root(), Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CommTreeRow{
			Tree:     nt.name,
			Expected: tree.ExpectedPairCost(nt.t, p),
			Measured: float64(res.TotalLatency) / float64(len(set)),
		})
	}
	return rows, nil
}

// CommTreeTable formats the tree-selection comparison.
func CommTreeTable(rows []CommTreeRow) *Table {
	t := &Table{
		Title:   "Peleg–Reshef tree selection — skewed demand, sequential regime",
		Headers: []string{"tree", "E[dT(U,V)]", "measured latency/op"},
	}
	for _, r := range rows {
		t.AddRow(r.Tree, r.Expected, r.Measured)
	}
	return t
}
