package analysis

import (
	"fmt"
	"math"

	"repro/internal/arrow"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/tsp"
	"repro/internal/workload"
)

// SP2Row is one point of the Section 5 experiment: a complete graph of n
// nodes with a balanced binary spanning tree, every node issuing perNode
// closed-loop queuing requests. Arrow's makespan stays nearly flat as n
// grows; the centralized protocol's makespan grows linearly (Figure 10).
// AvgHops is Figure 11's metric.
type SP2Row struct {
	N                int
	PerNode          int
	ArrowMakespan    sim.Time
	CentralMakespan  sim.Time
	ArrowAvgLatency  float64
	CentralAvgLat    float64
	AvgHops          float64 // queue-message hops per op (Figure 11)
	ReplyHopsPerOp   float64
	LocalCompletions float64 // fraction of requests finding predecessors locally
}

// SP2Grid builds the Figure 10/11 experiment cells: for each n, the
// closed-loop arrow and centralized protocols on a complete graph with a
// balanced binary spanning tree. Cells are in n-major order (arrow, then
// centralized, per n).
func SP2Grid(ns []int, perNode int, seed int64) []engine.Cell {
	instances := make([]engine.Instance, 0, len(ns))
	for _, n := range ns {
		instances = append(instances, engine.Instance{
			Label:    fmt.Sprintf("n=%d", n),
			Graph:    graph.Complete(n),
			Tree:     tree.BalancedBinary(n),
			Root:     0,
			Workload: engine.NewClosedLoop(perNode).MustBuild(),
			Seed:     seed,
		})
	}
	return engine.Grid(instances, engine.Arrow{}, engine.Centralized{})
}

// SP2Experiment reproduces Figures 10 and 11: for each n it runs the
// closed-loop arrow and centralized protocols on a complete graph. Cells
// run in parallel across GOMAXPROCS workers; results are identical to a
// sequential run.
func SP2Experiment(ns []int, perNode int, seed int64) ([]SP2Row, error) {
	return SP2ExperimentWorkers(ns, perNode, seed, 0)
}

// SP2ExperimentWorkers is SP2Experiment with an explicit worker count
// (0 = GOMAXPROCS, 1 = sequential) — exposed so benchmarks can measure
// the sweep speedup.
func SP2ExperimentWorkers(ns []int, perNode int, seed int64, workers int) ([]SP2Row, error) {
	outs := engine.Sweep(SP2Grid(ns, perNode, seed), workers)
	if err := engine.FirstError(outs); err != nil {
		return nil, fmt.Errorf("analysis: SP2 sweep: %w", err)
	}
	rows := make([]SP2Row, 0, len(ns))
	for i, n := range ns {
		ar, ce := outs[2*i].Cost, outs[2*i+1].Cost
		rows = append(rows, SP2Row{
			N:                n,
			PerNode:          perNode,
			ArrowMakespan:    ar.Makespan,
			CentralMakespan:  ce.Makespan,
			ArrowAvgLatency:  ar.AvgLatency(),
			CentralAvgLat:    ce.AvgLatency(),
			AvgHops:          ar.AvgQueueHops(),
			ReplyHopsPerOp:   float64(ar.ReplyHops) / float64(ar.Requests),
			LocalCompletions: float64(ar.LocalCompletions) / float64(ar.Requests),
		})
	}
	return rows, nil
}

// Fig10Table formats the Figure 10 comparison.
func Fig10Table(rows []SP2Row) *Table {
	t := &Table{
		Title:   "Figure 10 — total latency (makespan), arrow vs centralized",
		Headers: []string{"n", "reqs/node", "arrow makespan", "centralized makespan", "arrow avg lat", "central avg lat"},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.PerNode, r.ArrowMakespan, r.CentralMakespan, r.ArrowAvgLatency, r.CentralAvgLat)
	}
	return t
}

// Fig11Table formats the Figure 11 hop counts.
func Fig11Table(rows []SP2Row) *Table {
	t := &Table{
		Title:   "Figure 11 — avg interprocessor messages per queuing op (arrow)",
		Headers: []string{"n", "avg queue hops/op", "local completions", "reply hops/op"},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.AvgHops, r.LocalCompletions, r.ReplyHopsPerOp)
	}
	return t
}

// LowerBoundRow is one point of the Theorem 4.1 experiment.
type LowerBoundRow struct {
	LogD     int
	D        int
	K        int
	Requests int
	// CostArrow is arrow's total latency on the instance (theory: ~k·D).
	CostArrow int64
	// OptUpper is the cost of the best offline order we can construct
	// under cOpt (theory: O(D)).
	OptUpper int64
	// OptLower is a certified lower bound on costOpt.
	OptLower int64
	// Ratio is CostArrow / OptUpper — a lower bound on the true
	// competitive ratio achieved by the instance.
	Ratio float64
}

// LowerBoundSweep runs the Theorem 4.1 instance for each diameter
// exponent, measuring how the arrow/optimal gap grows with D. The
// diameters run in parallel.
func LowerBoundSweep(logDs []int) ([]LowerBoundRow, error) {
	rows := make([]LowerBoundRow, len(logDs))
	err := engine.ParallelMapErr(len(logDs), 0, func(i int) error {
		logD := logDs[i]
		inst := workload.LowerBound(logD, workload.DefaultK(1<<logD))
		g := graph.Path(inst.D + 1)
		t := tree.PathTree(inst.D + 1)
		cost, err := engine.Arrow{}.Run(engine.Instance{
			Graph: g, Tree: t, Root: inst.Root, Workload: engine.NewStatic(inst.Set).MustBuild(),
		})
		if err != nil {
			return fmt.Errorf("analysis: lower bound logD=%d: %w", logD, err)
		}
		bounds := opt.Compute(g, inst.Root, inst.Set, opt.DistOfGraph(g))
		rows[i] = LowerBoundRow{
			LogD:      logD,
			D:         inst.D,
			K:         inst.K,
			Requests:  len(inst.Set),
			CostArrow: cost.TotalLatency,
			OptUpper:  bounds.Upper,
			OptLower:  bounds.Lower,
			Ratio:     opt.Ratio(cost.TotalLatency, bounds.Upper),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// LowerBoundTable formats the Theorem 4.1 sweep.
func LowerBoundTable(rows []LowerBoundRow) *Table {
	t := &Table{
		Title:   "Theorem 4.1 / Figure 9 — adversarial instance, arrow vs optimal",
		Headers: []string{"D", "k", "|R|", "cost(arrow)", "opt upper", "opt lower", "ratio >=", "k*D (theory)"},
	}
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.Requests, r.CostArrow, r.OptUpper, r.OptLower, r.Ratio, r.K*r.D)
	}
	return t
}

// RatioRow is one point of the Theorem 3.19 validation: measured
// competitive ratio against the O(s log D) bound.
type RatioRow struct {
	Topology string
	Tree     string
	Workload string
	N        int
	Requests int
	S        float64
	D        int64
	// CostArrow is arrow's total latency.
	CostArrow int64
	// OptLower / OptUpper bound costOpt; Exact marks OptLower as exact.
	OptLower int64
	OptUpper int64
	Exact    bool
	// Ratio is CostArrow/OptLower when exact, else CostArrow/OptUpper
	// (the conservative measurable ratio).
	Ratio float64
	// Bound is s·log2(3D), the shape of the Theorem 3.19 guarantee.
	Bound float64
}

// RatioConfig describes one competitive-ratio measurement.
type RatioConfig struct {
	Name     string
	Graph    *graph.Graph
	TreeKind TreeKind
	Set      queuing.Set
	WorkName string
	Seed     int64
}

// MeasureRatio runs arrow on the configuration and bounds the optimal
// offline cost.
func MeasureRatio(cfg RatioConfig) (RatioRow, error) {
	t, err := BuildTree(cfg.TreeKind, cfg.Graph)
	if err != nil {
		return RatioRow{}, err
	}
	cost, err := engine.Arrow{}.Run(engine.Instance{
		Label:    cfg.Name,
		Graph:    cfg.Graph,
		Tree:     t,
		Root:     t.Root(),
		Workload: engine.NewStatic(cfg.Set).MustBuild(),
		Seed:     cfg.Seed,
	})
	if err != nil {
		return RatioRow{}, err
	}
	bounds := opt.Compute(cfg.Graph, t.Root(), cfg.Set, opt.DistOfGraph(cfg.Graph))
	s := t.EdgeStretch(cfg.Graph)
	d := t.Diameter()
	row := RatioRow{
		Topology:  cfg.Name,
		Tree:      cfg.TreeKind.String(),
		Workload:  cfg.WorkName,
		N:         cfg.Graph.NumNodes(),
		Requests:  len(cfg.Set),
		S:         s,
		D:         d,
		CostArrow: cost.TotalLatency,
		OptLower:  bounds.Lower,
		OptUpper:  bounds.Upper,
		Exact:     bounds.Exact,
		Bound:     s * math.Log2(3*float64(max(d, 2))),
	}
	if bounds.Exact {
		row.Ratio = opt.Ratio(cost.TotalLatency, bounds.Lower)
	} else {
		row.Ratio = opt.Ratio(cost.TotalLatency, bounds.Upper)
	}
	return row, nil
}

// MeasureRatios runs MeasureRatio for every configuration across a
// worker pool (0 = GOMAXPROCS), returning rows in configuration order.
func MeasureRatios(cfgs []RatioConfig, workers int) ([]RatioRow, error) {
	rows := make([]RatioRow, len(cfgs))
	err := engine.ParallelMapErr(len(cfgs), workers, func(i int) error {
		var err error
		rows[i], err = MeasureRatio(cfgs[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RatioTable formats competitive-ratio measurements.
func RatioTable(title string, rows []RatioRow) *Table {
	t := &Table{
		Title: title,
		Headers: []string{"topology", "tree", "workload", "n", "|R|", "s", "D",
			"cost(arrow)", "opt", "exact", "ratio", "s*log2(3D)"},
	}
	for _, r := range rows {
		optCell := r.OptUpper
		if r.Exact {
			optCell = r.OptLower
		}
		t.AddRow(r.Topology, r.Tree, r.Workload, r.N, r.Requests, r.S, r.D,
			r.CostArrow, optCell, r.Exact, r.Ratio, r.Bound)
	}
	return t
}

// DefaultRatioConfigs returns the standard sweep used by the ratio
// experiment and benchmarks: several topologies and concurrency regimes
// with small request sets so the optimum is computed exactly.
func DefaultRatioConfigs(seed int64) []RatioConfig {
	grid := graph.Grid(6, 6)
	ring := graph.Cycle(24)
	complete := graph.Complete(24)
	geo := graph.RandomGeometric(30, 0.4, 4, seed)
	var cfgs []RatioConfig
	add := func(name string, g *graph.Graph, kind TreeKind, set queuing.Set, wname string) {
		cfgs = append(cfgs, RatioConfig{
			Name: name, Graph: g, TreeKind: kind, Set: set, WorkName: wname, Seed: seed,
		})
	}
	add("grid6x6", grid, TreeBFS, workload.OneShot(36, 10, seed), "oneshot10")
	add("grid6x6", grid, TreeBFS, workload.Poisson(36, 0.2, 60, seed), "poisson")
	add("ring24", ring, TreeMST, workload.OneShot(24, 10, seed+1), "oneshot10")
	add("ring24", ring, TreeMST, workload.Bursty(24, 5, 2, 40, seed+1), "bursty")
	add("complete24", complete, TreeBalancedBinary, workload.OneShot(24, 12, seed+2), "oneshot12")
	add("complete24", complete, TreeBalancedBinary, workload.Sequential(24, 10, 20, seed+2), "sequential")
	add("geo30", geo, TreeMST, workload.Poisson(30, 0.1, 100, seed+3), "poisson")
	add("geo30", geo, TreeBFS, workload.Hotspot(30, 10, 0.5, 50, seed+3), "hotspot")
	return cfgs
}

// SequentialRow is one point of the Demmer–Herlihy sequential regime
// check (E6): requests spaced more than 2D apart.
type SequentialRow struct {
	N        int
	D        int64
	S        float64
	Requests int
	MaxHops  int
	// Ratio compares arrow to the optimal cost of the same (time) order —
	// the sequential competitive ratio, bounded by s.
	Ratio float64
}

// SequentialExperiment validates the sequential-case bounds on complete
// graphs with balanced binary trees. Node counts run in parallel.
func SequentialExperiment(ns []int, requests int, seed int64) ([]SequentialRow, error) {
	rows := make([]SequentialRow, len(ns))
	err := engine.ParallelMapErr(len(ns), 0, func(i int) error {
		n := ns[i]
		g := graph.Complete(n)
		t := tree.BalancedBinary(n)
		d := t.Diameter()
		set := workload.Sequential(n, requests, sim.Time(3*d+3), seed)
		cost, err := engine.Arrow{}.Run(engine.Instance{
			Graph: g, Tree: t, Root: 0, Workload: engine.NewStatic(set).MustBuild(),
		})
		if err != nil {
			return err
		}
		// In the sequential regime every algorithm queues in time order;
		// compare arrow's cost to the optimal cost of that order over G.
		dg := opt.DistOfGraph(g)
		timeOrder := make(queuing.Order, len(set))
		for j := range timeOrder {
			timeOrder[j] = j
		}
		optCost := queuing.OrderCost(set, 0, timeOrder, queuing.CO(dg))
		rows[i] = SequentialRow{
			N:        n,
			D:        d,
			S:        t.EdgeStretch(g),
			Requests: len(set),
			MaxHops:  cost.MaxHops,
			Ratio:    opt.Ratio(cost.TotalLatency, optCost),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SequentialTable formats the sequential-regime check.
func SequentialTable(rows []SequentialRow) *Table {
	t := &Table{
		Title:   "Sequential regime (Demmer–Herlihy): per-op hops <= D, ratio <= s",
		Headers: []string{"n", "D", "s", "|R|", "max hops", "ratio"},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.D, r.S, r.Requests, r.MaxHops, r.Ratio)
	}
	return t
}

// CheckNNOrder validates Lemma 3.8 on one instance: arrow's queuing order
// must be a nearest-neighbour TSP path under cT from the root request.
// Because simultaneous requests make the NN path non-unique, the check
// accepts any tie-break-consistent NN path; it returns an error describing
// the first divergence otherwise.
func CheckNNOrder(t *tree.Tree, set queuing.Set, opts arrow.Options) error {
	res, err := arrow.Run(t, set, opts)
	if err != nil {
		return err
	}
	return VerifyNNOrder(t, set, opts.Root, res.Order)
}

// VerifyNNOrder checks that order is a valid nearest-neighbour path under
// cT: every step must move to a request of minimum cT cost among the
// unvisited ones.
func VerifyNNOrder(t *tree.Tree, set queuing.Set, root graph.NodeID, order queuing.Order) error {
	if !queuing.ValidOrder(order, len(set)) {
		return fmt.Errorf("analysis: order is not a permutation of %d requests", len(set))
	}
	ct := queuing.CT(func(u, v graph.NodeID) graph.Weight { return t.Dist(u, v) })
	visited := make([]bool, len(set))
	prev := queuing.RootRequest(root)
	for step, id := range order {
		chosen := ct(prev, set[id])
		for j := range set {
			if visited[j] || j == id {
				continue
			}
			if c := ct(prev, set[j]); c < chosen {
				return fmt.Errorf(
					"analysis: step %d picked %v (cT=%d) but %v has cT=%d",
					step, set[id], chosen, set[j], c)
			}
		}
		visited[id] = true
		prev = set[id]
	}
	return nil
}

// LongestEdgeCT returns the maximum cT edge cost along arrow's order —
// Lemma 3.13 bounds it by 3D.
func LongestEdgeCT(t *tree.Tree, set queuing.Set, root graph.NodeID, order queuing.Order) int64 {
	ct := queuing.CT(func(u, v graph.NodeID) graph.Weight { return t.Dist(u, v) })
	costs := queuing.EdgeCosts(set, root, order, ct)
	var mx int64
	for _, c := range costs {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// NNApproxRow is one point of the Theorem 3.18 validation (E8).
type NNApproxRow struct {
	Points int
	NNCost int64
	Opt    int64
	Ratio  float64
	Bound  float64
}

// NNApproximationSweep builds random time-annotated metric instances,
// compares the NN path under cT against the exact optimal tour under cM,
// and reports the Theorem 3.18 bound 3/2·log2(DNN/dNN) (tours add a
// factor <= 2 for paths).
func NNApproximationSweep(sizes []int, trialsPerSize int, seed int64) ([]NNApproxRow, error) {
	var rows []NNApproxRow
	for _, n := range sizes {
		if n+1 > tsp.MaxExactN {
			return nil, fmt.Errorf("analysis: size %d exceeds exact solver limit", n)
		}
		for trial := 0; trial < trialsPerSize; trial++ {
			s := seed + int64(n*1000+trial)
			set, root, t := randomTreeInstance(n, s)
			dt := func(u, v graph.NodeID) graph.Weight { return t.Dist(u, v) }
			cT := opt.CostAdapter(set, root, queuing.CT(dt))
			cM := opt.CostAdapter(set, root, queuing.CM(dt))
			_, nnCost := tsp.NearestNeighborPath(n+1, cT)
			optTour, err := tsp.OptimalTour(n+1, cM)
			if err != nil {
				return nil, err
			}
			var dnn, dmax int64 = math.MaxInt64, 1
			order, _ := tsp.NearestNeighborPath(n+1, cT)
			for i := 1; i < len(order); i++ {
				c := cT(order[i-1], order[i])
				if c > 0 && c < dnn {
					dnn = c
				}
				if c > dmax {
					dmax = c
				}
			}
			if dnn == math.MaxInt64 {
				dnn = 1
			}
			bound := 1.5 * math.Ceil(math.Log2(float64(dmax)/float64(dnn)+1))
			rows = append(rows, NNApproxRow{
				Points: n + 1,
				NNCost: nnCost,
				Opt:    optTour,
				Ratio:  opt.Ratio(nnCost, optTour),
				Bound:  bound,
			})
		}
	}
	return rows, nil
}

// randomTreeInstance builds a random tree on n+? nodes and n requests for
// NN-approximation experiments.
func randomTreeInstance(nReq int, seed int64) (queuing.Set, graph.NodeID, *tree.Tree) {
	nNodes := nReq + 2
	g := graph.GNP(nNodes, 0.3, seed)
	t, err := tree.BFS(g, 0)
	if err != nil {
		panic(err)
	}
	set := workload.Poisson(nNodes, 0.5, sim.Time(4*nNodes), seed)
	if len(set) > nReq {
		set = queuing.NewSet(set[:nReq])
	}
	for len(set) < nReq {
		extra := workload.OneShot(nNodes, nReq-len(set), seed+7)
		set = queuing.NewSet(append(set, extra...))
	}
	return set, 0, t
}
