package analysis

import (
	"math"

	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/tree"
	"repro/internal/workload"
)

// OneShotRow is one point of the concurrent one-shot experiment: all
// requests issued simultaneously, the setting of Herlihy, Tirthapura and
// Wattenhofer's PODC'01 analysis [10], whose bound is s·log|R|.
type OneShotRow struct {
	N        int
	R        int
	S        float64
	D        int64
	Cost     int64
	OptLower int64
	OptUpper int64
	Exact    bool
	Ratio    float64
	// Bound is s·log2|R|, the one-shot guarantee's shape.
	Bound float64
}

// OneShotExperiment sweeps request-set sizes on a complete graph with the
// balanced binary tree, measuring the ratio against s·log|R|. Set sizes
// run in parallel (the exact optimum dominates each cell's cost).
func OneShotExperiment(n int, rs []int, seed int64) ([]OneShotRow, error) {
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)
	s := t.EdgeStretch(g)
	d := t.Diameter()
	dg := opt.DistOfGraph(g)
	rows := make([]OneShotRow, len(rs))
	err := engine.ParallelMapErr(len(rs), 0, func(i int) error {
		r := rs[i]
		set := workload.OneShot(n, r, seed+int64(r))
		cost, err := engine.Arrow{}.Run(engine.Instance{
			Graph: g, Tree: t, Root: 0, Workload: engine.NewStatic(set).MustBuild(),
		})
		if err != nil {
			return err
		}
		bounds := opt.Compute(g, 0, set, dg)
		den := bounds.Upper
		if bounds.Exact {
			den = bounds.Lower
		}
		rows[i] = OneShotRow{
			N:        n,
			R:        r,
			S:        s,
			D:        d,
			Cost:     cost.TotalLatency,
			OptLower: bounds.Lower,
			OptUpper: bounds.Upper,
			Exact:    bounds.Exact,
			Ratio:    opt.Ratio(cost.TotalLatency, den),
			Bound:    s * math.Log2(float64(max(r, 2))),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// OneShotTable formats the one-shot sweep.
func OneShotTable(rows []OneShotRow) *Table {
	t := &Table{
		Title:   "One-shot concurrent requests (PODC'01 regime): ratio vs s·log|R|",
		Headers: []string{"n", "|R|", "s", "D", "cost(arrow)", "opt", "exact", "ratio", "s*log2|R|"},
	}
	for _, r := range rows {
		o := r.OptUpper
		if r.Exact {
			o = r.OptLower
		}
		t.AddRow(r.N, r.R, r.S, r.D, r.Cost, o, r.Exact, r.Ratio, r.Bound)
	}
	return t
}

// DirectoryRow compares the arrow directory with the home-based
// directory (Herlihy–Warres [12], discussed in the paper's Section 5.1).
type DirectoryRow struct {
	N             int
	ArrowMakespan int64
	HomeMakespan  int64
	ArrowAvgAcq   float64
	HomeAvgAcq    float64
	ArrowObjHops  float64
	HomeObjHops   float64
	ArrowFindHops int64
	HomeFindHops  int64
}

// DirectoryExperiment runs both directories closed-loop on square grids
// (side x side) — a topology with real distance variance, where the
// arrow directory's locality (successive holders are nearest-neighbour
// close, by Lemma 3.8) beats the home-based directory's fixed round
// trips through the home node. Sizes are grid sides; row N reports
// side².
func DirectoryExperiment(sides []int, perNode int, seed int64) ([]DirectoryRow, error) {
	rows := make([]DirectoryRow, 0, len(sides))
	for _, side := range sides {
		n := side * side
		g := graph.Grid(side, side)
		center, _ := g.Center()
		t, err := tree.BFS(g, center)
		if err != nil {
			return nil, err
		}
		cfg := directory.Config{PerNode: perNode, Seed: seed}
		ar, err := directory.RunArrow(t, center, cfg)
		if err != nil {
			return nil, err
		}
		ho, err := directory.RunHome(g, center, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DirectoryRow{
			N:             n,
			ArrowMakespan: int64(ar.Makespan),
			HomeMakespan:  int64(ho.Makespan),
			ArrowAvgAcq:   ar.AvgAcquireLatency(),
			HomeAvgAcq:    ho.AvgAcquireLatency(),
			ArrowObjHops:  ar.AvgObjectHops(),
			HomeObjHops:   ho.AvgObjectHops(),
			ArrowFindHops: ar.FindHops,
			HomeFindHops:  ho.FindHops,
		})
	}
	return rows, nil
}

// DirectoryTable formats the two-directories comparison.
func DirectoryTable(rows []DirectoryRow) *Table {
	t := &Table{
		Title: "A tale of two directories (Herlihy–Warres) — arrow vs home-based",
		Headers: []string{"n", "arrow makespan", "home makespan", "arrow acq lat",
			"home acq lat", "arrow obj hops/op", "home obj hops/op"},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.ArrowMakespan, r.HomeMakespan, r.ArrowAvgAcq,
			r.HomeAvgAcq, r.ArrowObjHops, r.HomeObjHops)
	}
	return t
}
