package analysis

import (
	"strings"
	"testing"
)

func TestOneShotExperimentBounds(t *testing.T) {
	rows, err := OneShotExperiment(32, []int{2, 4, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Exact {
			t.Errorf("|R|=%d: expected exact optimum", r.R)
			continue
		}
		if r.Ratio < 1.0-1e-9 {
			t.Errorf("|R|=%d: ratio %.3f below 1", r.R, r.Ratio)
		}
		// The PODC'01 guarantee shape: within s·log2|R| with comfortable
		// slack (the constant in the theorem exceeds 1).
		if r.Ratio > 2*r.Bound {
			t.Errorf("|R|=%d: ratio %.3f far above s·log|R| = %.3f", r.R, r.Ratio, r.Bound)
		}
	}
	if out := OneShotTable(rows).Render(); !strings.Contains(out, "One-shot") {
		t.Error("table malformed")
	}
}

func TestDirectoryExperimentArrowWins(t *testing.T) {
	rows, err := DirectoryExperiment([]int{3, 5}, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The Herlihy–Warres observation, reproduced: the arrow directory
		// outperforms the home-based directory, increasingly so with size.
		if r.ArrowMakespan >= r.HomeMakespan {
			t.Errorf("n=%d: arrow makespan %d not below home %d",
				r.N, r.ArrowMakespan, r.HomeMakespan)
		}
		if r.ArrowObjHops >= r.HomeObjHops {
			t.Errorf("n=%d: arrow object travel %.2f not below home %.2f",
				r.N, r.ArrowObjHops, r.HomeObjHops)
		}
	}
	// The advantage grows with system size (locality pays more on
	// larger grids).
	small := float64(rows[0].HomeMakespan) / float64(rows[0].ArrowMakespan)
	large := float64(rows[1].HomeMakespan) / float64(rows[1].ArrowMakespan)
	if large < small {
		t.Errorf("directory advantage shrank with size: %.2f -> %.2f", small, large)
	}
	if out := DirectoryTable(rows).Render(); !strings.Contains(out, "directories") {
		t.Error("table malformed")
	}
}

func TestCommTreeExperimentDemandAwareWins(t *testing.T) {
	rows, err := CommTreeExperiment(5, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	var bfs, comm CommTreeRow
	for _, r := range rows {
		switch r.Tree {
		case "bfs-center":
			bfs = r
		case "comm-tree":
			comm = r
		}
	}
	if comm.Expected > bfs.Expected+1e-9 {
		t.Errorf("comm-tree expected cost %.3f above BFS %.3f", comm.Expected, bfs.Expected)
	}
	if comm.Measured > bfs.Measured*1.2 {
		t.Errorf("comm-tree measured %.3f not competitive with BFS %.3f", comm.Measured, bfs.Measured)
	}
}
