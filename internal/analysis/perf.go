package analysis

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// PerfWorkload is one workload column of the perf grid: a closed-loop
// regime variant whose tail behavior the aggregate tables cannot
// express.
type PerfWorkload struct {
	// Name labels the workload in rows and the JSON schema.
	Name string
	// Think is the closed-loop think time (0 = saturated, one local
	// step between completion and re-issue).
	Think sim.Time
	// Latency is the delay model (nil = synchronous unit latency).
	Latency sim.LatencyModel
}

// PerfWorkloads is the fixed workload axis of the perf experiment, in
// column order: the paper's saturated Section 5 regime, a think-time
// variant that drains the queue pressure, and an asynchronous-delay
// variant (Section 3.8 models) that spreads the latency tail.
func PerfWorkloads() []PerfWorkload {
	return []PerfWorkload{
		{Name: "saturated"},
		{Name: "think16", Think: 16},
		{Name: "async4", Latency: sim.AsyncUniform(4)},
	}
}

// PerfRow is one protocol × size × workload cell of the perf
// experiment: full per-request latency and hop distributions, the
// observability the aggregate BaselineRow cannot express.
type PerfRow struct {
	Protocol string
	N        int
	PerNode  int
	Workload string
	Requests int64
	Makespan sim.Time
	// Events is the simulator event count the cell consumed —
	// deterministic for a fixed config, like Makespan.
	Events int64
	// WallNanos is the cell's wall-clock run time. Unlike every other
	// field it varies run to run; it exists only to derive the events/sec
	// throughput and is never a regression-gate input.
	WallNanos int64
	// Latency is the per-request queuing-latency distribution
	// (simulated time units), Hops the queue/find hop-count
	// distribution.
	Latency stats.Dist
	Hops    stats.Dist
}

// EventsPerSec is the cell's wall-clock simulator throughput.
func (r PerfRow) EventsPerSec() float64 {
	if r.WallNanos <= 0 {
		return 0
	}
	return float64(r.Events) / (float64(r.WallNanos) * 1e-9)
}

// perfCells builds the perf experiment cells plus each cell's workload
// name (the names slice is index-aligned with the cells, so row
// assembly never re-derives the grid nesting positionally). Cells are
// size-major, then workload, then protocol. Unlike engine.Grid, every
// cell gets its own Instance with a private DistRecorder — recorders
// accumulate per-request state, so sharing one across the concurrently
// swept protocol column would race.
func perfCells(ns []int, perNode int, seed int64) (cells []engine.Cell, names []string) {
	workloads := PerfWorkloads()
	protocols := baselineProtocols()
	cells = make([]engine.Cell, 0, len(ns)*len(workloads)*len(protocols))
	names = make([]string, 0, cap(cells))
	for i, n := range ns {
		g := graph.Complete(n)
		t := tree.BalancedBinary(n)
		for j, w := range workloads {
			for _, p := range protocols {
				cells = append(cells, engine.Cell{
					Protocol: p,
					Instance: engine.Instance{
						Label:    fmt.Sprintf("n=%d/%s", n, w.Name),
						Graph:    g,
						Tree:     t,
						Root:     0,
						Workload: engine.NewClosedLoop(perNode).Think(w.Think).MustBuild(),
						Latency:  w.Latency,
						Seed:     engine.DeriveSeed(seed, i*len(workloads)+j),
						Recorder: stats.NewDistRecorder(),
					},
				})
				names = append(names, w.Name)
			}
		}
	}
	return cells, names
}

// timedProtocol decorates a Protocol with wall-clock measurement into a
// caller-owned slot. Timing stays out of engine.Cost so Sweep's outcome
// slices remain byte-identical across runs and worker counts; only the
// perf experiment, which reports throughput, pays for the wrapper.
type timedProtocol struct {
	p    engine.Protocol
	wall *int64
}

func (t timedProtocol) Name() string { return t.p.Name() }

func (t timedProtocol) Run(inst engine.Instance) (engine.Cost, error) {
	start := time.Now() //arrow:allow determinism report-only wall clock: events_per_sec is informational and never gated
	cost, err := t.p.Run(inst)
	*t.wall = time.Since(start).Nanoseconds() //arrow:allow determinism report-only wall clock: events_per_sec is informational and never gated
	return cost, err
}

// PerfExperiment runs the perf grid as one parallel sweep (workers 0 =
// GOMAXPROCS; results are identical for every worker count) and
// flattens the outcomes to rows. Histogram memory is fixed per cell, so
// the experiment runs at the paper's 100k-requests-per-node scale
// without per-request storage.
func PerfExperiment(ns []int, perNode int, seed int64, workers int) ([]PerfRow, error) {
	cells, names := perfCells(ns, perNode, seed)
	walls := make([]int64, len(cells))
	for i := range cells {
		cells[i].Protocol = timedProtocol{p: cells[i].Protocol, wall: &walls[i]}
	}
	outs := engine.Sweep(cells, workers)
	if err := engine.FirstError(outs); err != nil {
		return nil, fmt.Errorf("analysis: perf sweep: %w", err)
	}
	rows := make([]PerfRow, len(outs))
	for i, c := range engine.Costs(outs) {
		rows[i] = PerfRow{
			Protocol:  c.Protocol,
			N:         c.N,
			PerNode:   perNode,
			Workload:  names[i],
			Requests:  c.Requests,
			Makespan:  c.Makespan,
			Events:    c.Events,
			WallNanos: walls[i],
			Latency:   c.Latency,
			Hops:      c.Hops,
		}
	}
	return rows, nil
}

// PerfLatencyTable formats the per-request queuing-latency percentiles
// plus the cell's simulator throughput (million events per wall-clock
// second — the one non-deterministic column).
func PerfLatencyTable(rows []PerfRow) *Table {
	t := &Table{
		Title: "Perf — per-request queuing latency distribution (closed loop)",
		Headers: []string{"protocol", "n", "workload", "reqs",
			"p50", "p90", "p99", "p999", "max", "mean", "std", "Mev/s"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.N, r.Workload, r.Requests,
			r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999,
			r.Latency.Max, r.Latency.Mean, r.Latency.Std,
			r.EventsPerSec()/1e6)
	}
	return t
}

// PerfHopsTable formats the per-request hop-count percentiles.
func PerfHopsTable(rows []PerfRow) *Table {
	t := &Table{
		Title: "Perf — per-request queue/find hop distribution (closed loop)",
		Headers: []string{"protocol", "n", "workload", "reqs",
			"p50", "p90", "p99", "p999", "max", "mean"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.N, r.Workload, r.Requests,
			r.Hops.P50, r.Hops.P90, r.Hops.P99, r.Hops.P999,
			r.Hops.Max, r.Hops.Mean)
	}
	return t
}

// PerfSchema versions the machine-readable perf document. Bump it on
// any field rename or semantic change — cmd/benchcheck refuses to
// compare documents with different schemas. v2 added the deterministic
// per-cell event count (gated like the other pinned metrics) and the
// wall-clock events/sec throughput (reported, never gated).
const PerfSchema = "arrowbench/perf/v2"

// PerfConfig records the experiment parameters inside the document, so
// a baseline comparison against a run with different parameters fails
// loudly instead of reporting nonsense deltas.
type PerfConfig struct {
	Sizes   []int `json:"sizes"`
	PerNode int   `json:"per_node"`
	Seed    int64 `json:"seed"`
}

// PerfDocRow is one row of the perf document. All simulated quantities
// (makespan, latency and hop distributions) are deterministic for a
// fixed config, which is what makes the document a meaningful CI
// regression baseline.
type PerfDocRow struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Requests int64  `json:"requests"`
	Makespan int64  `json:"makespan"`
	// Events is the cell's simulator event count — deterministic, so
	// benchcheck gates it alongside makespan and the quantiles.
	Events int64 `json:"events"`
	// EventsPerSec is wall-clock throughput: the one field that differs
	// between two runs of the same commit. Benchcheck reports it but
	// never gates on it (shared CI runners make wall-clock deltas noise).
	EventsPerSec float64    `json:"events_per_sec"`
	Latency      stats.Dist `json:"latency"`
	Hops         stats.Dist `json:"hops"`
}

// PerfDoc is the stable schema of `arrowbench -exp perf -json` — the
// repo's machine-readable perf trajectory (BENCH_perf.json).
type PerfDoc struct {
	Schema string       `json:"schema"`
	Config PerfConfig   `json:"config"`
	Rows   []PerfDocRow `json:"rows"`
}

// PerfDocument assembles the machine-readable perf document.
func PerfDocument(cfg PerfConfig, rows []PerfRow) PerfDoc {
	doc := PerfDoc{Schema: PerfSchema, Config: cfg, Rows: make([]PerfDocRow, len(rows))}
	for i, r := range rows {
		doc.Rows[i] = PerfDocRow{
			Protocol:     r.Protocol,
			N:            r.N,
			Workload:     r.Workload,
			Requests:     r.Requests,
			Makespan:     int64(r.Makespan),
			Events:       r.Events,
			EventsPerSec: r.EventsPerSec(),
			Latency:      r.Latency,
			Hops:         r.Hops,
		}
	}
	return doc
}
