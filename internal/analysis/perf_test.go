package analysis

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestPerfExperimentShape(t *testing.T) {
	ns := []int{8, 12}
	rows, err := PerfExperiment(ns, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	workloads := PerfWorkloads()
	wantRows := len(ns) * len(workloads) * len(baselineProtocols())
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	i := 0
	for _, n := range ns {
		for _, w := range workloads {
			for _, p := range baselineProtocols() {
				r := rows[i]
				i++
				if r.Protocol != p.Name() || r.N != n || r.Workload != w.Name {
					t.Fatalf("row %d = %s/n=%d/%s, want %s/n=%d/%s",
						i-1, r.Protocol, r.N, r.Workload, p.Name(), n, w.Name)
				}
				if want := int64(5 * n); r.Requests != want || r.Latency.Count != want || r.Hops.Count != want {
					t.Errorf("row %d (%s/n=%d/%s): requests %d, distribution counts %d/%d, want %d",
						i-1, r.Protocol, r.N, r.Workload, r.Requests, r.Latency.Count, r.Hops.Count, want)
				}
				if r.Latency.P50 > r.Latency.P99 || r.Latency.P99 > r.Latency.Max {
					t.Errorf("row %d: latency quantiles not monotone: %+v", i-1, r.Latency)
				}
			}
		}
	}
	if tbl := PerfLatencyTable(rows); len(tbl.Rows) != wantRows || !strings.Contains(tbl.Render(), "p999") {
		t.Error("latency table malformed")
	}
	if tbl := PerfHopsTable(rows); len(tbl.Rows) != wantRows {
		t.Error("hops table malformed")
	}
}

// The perf experiment is a deterministic artifact: same config, same
// document, at any worker count — the property that makes BENCH_perf.json
// a meaningful CI baseline. WallNanos (and the events/sec derived from
// it) is the one deliberate exception: it measures the host, not the
// simulation, so it is zeroed before the comparison and excluded from
// benchcheck's gate for the same reason.
func TestPerfExperimentDeterministic(t *testing.T) {
	a, err := PerfExperiment([]int{8}, 4, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerfExperiment([]int{8}, 4, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		a[i].WallNanos = 0
	}
	for i := range b {
		b[i].WallNanos = 0
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("perf rows differ across worker counts:\n%+v\n%+v", a, b)
	}
}

func TestPerfDocumentRoundTrip(t *testing.T) {
	rows, err := PerfExperiment([]int{8}, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PerfConfig{Sizes: []int{8}, PerNode: 3, Seed: 2}
	doc := PerfDocument(cfg, rows)
	if doc.Schema != PerfSchema || len(doc.Rows) != len(rows) {
		t.Fatalf("document header: %+v", doc)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfDoc
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, back) {
		t.Fatalf("document did not round-trip:\n%+v\n%+v", doc, back)
	}
}
