package analysis

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/nta"
	"repro/internal/sim"
	"repro/internal/tree"
)

// ScaleConfig drives the million-node scale experiment: every protocol
// on its implicit topology — arrow on generated binary and grid trees
// (tree.Walker / tree.GridNav, no LCA tables), the complete-graph
// protocols on sim.CompleteTopology (no O(n²) distance matrix) — with
// per-cell memory and throughput accounting. Unlike the perf grid, the
// point here is not the request distributions but whether the stack
// holds n = 10⁶ in flat per-node state.
type ScaleConfig struct {
	// Sizes are the node counts; nil defaults to 10k, 100k, 1M.
	Sizes []int
	// PerNode fixes requests per node when positive. When 0, each size
	// issues max(1, MaxRequests/n) per node so total work stays roughly
	// flat across sizes instead of exploding with n.
	PerNode int
	// MaxRequests is the total-request budget behind the PerNode=0
	// default; 0 defaults to 2 million.
	MaxRequests int64
	// Seed derives each cell's simulation seed.
	Seed int64
	// Workers requests the lookahead-windowed parallel drain inside each
	// run (see sim.Config.Workers); results are bit-identical at any
	// count.
	Workers int
	// LatScale, when > 1, runs every cell under
	// sim.SynchronousScaled(LatScale) instead of the default unit
	// synchronous model. The scaled model's MinDelay() widens the
	// parallel drain's lookahead window to LatScale ticks, fusing that
	// many ladder buckets per barrier — the knob that makes the window
	// telemetry (and the barrier amortization it measures) visible in
	// the sweep. Deterministic outputs still satisfy the sweep's
	// bit-identity audit; they just describe the scaled-latency system.
	LatScale int64
	// WorkerSweep, when non-empty, reruns every cell at each listed
	// drain worker count and reports per-count events/s plus the
	// parallel speedup over the serial (workers=1) rerun — report-only
	// columns, never gated, like every wall-clock quantity here. A
	// missing 1 is prepended so the speedup baseline always exists, and
	// every rerun's deterministic outputs are checked against the base
	// row (a divergence fails the experiment: the sweep doubles as a
	// determinism audit of the parallel commit).
	WorkerSweep []int
}

// workerSweep normalizes the sweep: nil stays nil; otherwise the counts
// are deduplicated, floored at 1, and led by the serial baseline.
func (c *ScaleConfig) workerSweep() []int {
	if len(c.WorkerSweep) == 0 {
		return nil
	}
	out := []int{1}
	seen := map[int]bool{1: true}
	for _, w := range c.WorkerSweep {
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// latency returns the cells' latency model: nil (the simulator's unit
// synchronous default) unless LatScale widens it.
func (c *ScaleConfig) latency() sim.LatencyModel {
	if c.LatScale > 1 {
		return sim.SynchronousScaled(c.LatScale)
	}
	return nil
}

func (c *ScaleConfig) sizes() []int {
	if len(c.Sizes) > 0 {
		return c.Sizes
	}
	return []int{10_000, 100_000, 1_000_000}
}

func (c *ScaleConfig) perNode(n int) int {
	if c.PerNode > 0 {
		return c.PerNode
	}
	budget := c.MaxRequests
	if budget <= 0 {
		budget = 2_000_000
	}
	per := budget / int64(n)
	if per < 1 {
		per = 1
	}
	return int(per)
}

// ScaleRow is one protocol × topology × size cell of the scale
// experiment. The simulated quantities (Requests, Makespan, Events,
// QueueHops) are deterministic for a fixed config; WallNanos and
// AllocBytes vary run to run and exist for the throughput and
// bytes-per-node columns only.
type ScaleRow struct {
	Protocol  string
	Topology  string
	N         int
	PerNode   int
	Requests  int64
	Makespan  sim.Time
	Events    int64
	QueueHops int64
	WallNanos int64
	// AllocBytes is the cell's cumulative heap allocation
	// (runtime.MemStats.TotalAlloc delta across the run) — the honest
	// "does node state stay flat" number: it includes every transient,
	// so per-request garbage would show up as growth, not hide behind
	// the collector.
	AllocBytes int64
	Workers    int
	// Drain is the base run's drain telemetry: the derived lookahead
	// window width, how many fused parallel windows (barriers) the run
	// paid, and how many events they covered. Telemetry, not part of the
	// determinism tuple: a serial run reports zero windows.
	Drain sim.DrainStats
	// Sweep holds the cell's worker-sweep reruns (nil without
	// ScaleConfig.WorkerSweep). Each point reran the identical cell at a
	// different drain worker count; the deterministic outputs matched
	// the base row, so only the wall clock differs.
	Sweep []ScaleSweepPoint
}

// ScaleSweepPoint is one worker-count rerun of a scale cell.
type ScaleSweepPoint struct {
	Workers   int
	Events    int64
	WallNanos int64
	// Drain is the rerun's drain telemetry — the why behind the wall
	// clock: barriers paid (Windows) and events fused per barrier
	// (MeanBatch) at this worker count.
	Drain sim.DrainStats
}

// EventsPerSec is the rerun's wall-clock simulator throughput.
func (p ScaleSweepPoint) EventsPerSec() float64 {
	if p.WallNanos <= 0 {
		return 0
	}
	return float64(p.Events) / (float64(p.WallNanos) * 1e-9)
}

// SweepSpeedup returns the sweep point's throughput relative to the
// sweep's serial (workers=1) point — the reported parallel speedup.
func (r ScaleRow) SweepSpeedup(p ScaleSweepPoint) float64 {
	for _, base := range r.Sweep {
		if base.Workers == 1 {
			if b := base.EventsPerSec(); b > 0 {
				return p.EventsPerSec() / b
			}
			return 0
		}
	}
	return 0
}

// EventsPerSec is the cell's wall-clock simulator throughput.
func (r ScaleRow) EventsPerSec() float64 {
	if r.WallNanos <= 0 {
		return 0
	}
	return float64(r.Events) / (float64(r.WallNanos) * 1e-9)
}

// BytesPerNode is the cell's allocation footprint per node.
func (r ScaleRow) BytesPerNode() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.AllocBytes) / float64(r.N)
}

// scaleOut is the driver-independent slice of a closed-loop result the
// scale rows report.
type scaleOut struct {
	requests  int64
	makespan  sim.Time
	events    int64
	queueHops int64
}

// scaleCell is one deferred run: construction of the implicit topology
// happens inside run() so its allocations land in the cell's measured
// TotalAlloc delta. run takes the drain worker count so the worker
// sweep can rerun the identical cell at different counts; alongside the
// deterministic outputs it returns the run's drain telemetry (which
// legitimately varies with the worker count and stays outside the
// sweep's bit-identity comparison).
type scaleCell struct {
	protocol string
	topology string
	n        int
	perNode  int
	run      func(workers int) (scaleOut, sim.DrainStats, error)
}

// gridSide returns the comb-tree grid dimensions closest to n nodes:
// side = round(sqrt(n)), capped so the saturated token walk (path
// length Θ(side)) stays tractable at a million nodes.
func gridSide(n int) int {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	return side
}

func scaleCells(cfg *ScaleConfig) []scaleCell {
	var cells []scaleCell
	lat := cfg.latency()
	spec := func(per int, seed int64, workers int, ds *sim.DrainStats) loop.Spec {
		return loop.Spec{PerNode: per, Seed: seed, Workers: workers, Latency: lat, DrainStats: ds}
	}
	for i, n := range cfg.sizes() {
		n, per := n, cfg.perNode(n)
		side := gridSide(n)
		seed := sim.DeriveSeed(cfg.Seed, i)
		cells = append(cells,
			scaleCell{"arrow", "binary-tree", n, per, func(workers int) (scaleOut, sim.DrainStats, error) {
				var ds sim.DrainStats
				res, err := arrow.RunClosedLoop(tree.BinaryWalker(n), arrow.LoopConfig{
					Spec: spec(per, seed, workers, &ds),
				})
				if err != nil {
					return scaleOut{}, ds, err
				}
				return scaleOut{res.Requests, res.Makespan, res.Events, res.QueueHops}, ds, nil
			}},
			scaleCell{"arrow", "grid", side * side, per, func(workers int) (scaleOut, sim.DrainStats, error) {
				var ds sim.DrainStats
				res, err := arrow.RunClosedLoop(tree.GridWalker(side, side), arrow.LoopConfig{
					Spec: spec(per, seed, workers, &ds),
				})
				if err != nil {
					return scaleOut{}, ds, err
				}
				return scaleOut{res.Requests, res.Makespan, res.Events, res.QueueHops}, ds, nil
			}},
			scaleCell{"centralized", "complete", n, per, func(workers int) (scaleOut, sim.DrainStats, error) {
				var ds sim.DrainStats
				res, err := centralized.RunClosedLoopTopo(sim.NewCompleteTopology(n), centralized.LoopConfig{
					Spec: spec(per, seed, workers, &ds),
				})
				if err != nil {
					return scaleOut{}, ds, err
				}
				return scaleOut{res.Requests, res.Makespan, res.Events, res.QueueHops}, ds, nil
			}},
			scaleCell{"nta", "complete", n, per, func(workers int) (scaleOut, sim.DrainStats, error) {
				var ds sim.DrainStats
				res, err := nta.RunClosedLoopTopo(sim.NewCompleteTopology(n), nta.LoopConfig{
					Spec: spec(per, seed, workers, &ds),
				})
				if err != nil {
					return scaleOut{}, ds, err
				}
				return scaleOut{res.Requests, res.Makespan, res.Events, res.QueueHops}, ds, nil
			}},
			scaleCell{"ivy", "complete", n, per, func(workers int) (scaleOut, sim.DrainStats, error) {
				var ds sim.DrainStats
				res, err := ivy.RunClosedLoopTopo(sim.NewCompleteTopology(n), ivy.LoopConfig{
					Spec: spec(per, seed, workers, &ds),
				})
				if err != nil {
					return scaleOut{}, ds, err
				}
				return scaleOut{res.Requests, res.Makespan, res.Events, res.QueueHops}, ds, nil
			}},
		)
	}
	return cells
}

// ScaleExperiment runs the scale grid. Cells run strictly sequentially —
// unlike the other experiments there is no sweep-level parallelism,
// because each cell's allocation delta must not include a concurrent
// neighbor's heap traffic (intra-cell drain parallelism via
// cfg.Workers is fine: its allocations belong to the cell).
func ScaleExperiment(cfg ScaleConfig) ([]ScaleRow, error) {
	cells := scaleCells(&cfg)
	sweep := cfg.workerSweep()
	rows := make([]ScaleRow, 0, len(cells))
	var ms runtime.MemStats
	for _, c := range cells {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now() //arrow:allow determinism report-only wall clock: scale events/s is machine-dependent and never gated
		out, drain, err := c.run(cfg.Workers)
		wall := time.Since(start).Nanoseconds() //arrow:allow determinism report-only wall clock: scale events/s is machine-dependent and never gated
		runtime.ReadMemStats(&ms)
		if err != nil {
			return nil, fmt.Errorf("analysis: scale %s/%s n=%d: %w", c.protocol, c.topology, c.n, err)
		}
		row := ScaleRow{
			Protocol:   c.protocol,
			Topology:   c.topology,
			N:          c.n,
			PerNode:    c.perNode,
			Requests:   out.requests,
			Makespan:   out.makespan,
			Events:     out.events,
			QueueHops:  out.queueHops,
			WallNanos:  wall,
			AllocBytes: int64(ms.TotalAlloc - before),
			Workers:    cfg.Workers,
			Drain:      drain,
		}
		// Worker sweep: rerun the identical cell at each count, timing
		// only. Deterministic outputs must match the base run exactly —
		// the drain contract — so a mismatch is an error, not a report.
		for _, w := range sweep {
			runtime.GC()
			swStart := time.Now() //arrow:allow determinism report-only wall clock: sweep events/s is machine-dependent and never gated
			swOut, swDrain, err := c.run(w)
			swWall := time.Since(swStart).Nanoseconds() //arrow:allow determinism report-only wall clock: sweep events/s is machine-dependent and never gated
			if err != nil {
				return nil, fmt.Errorf("analysis: scale sweep %s/%s n=%d workers=%d: %w", c.protocol, c.topology, c.n, w, err)
			}
			if swOut != out {
				return nil, fmt.Errorf("analysis: scale sweep %s/%s n=%d workers=%d diverged from base run: %+v != %+v",
					c.protocol, c.topology, c.n, w, swOut, out)
			}
			row.Sweep = append(row.Sweep, ScaleSweepPoint{Workers: w, Events: swOut.events, WallNanos: swWall, Drain: swDrain})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScaleTable formats the scale rows: deterministic protocol work on the
// left, the two resource columns (throughput, bytes/node) on the right.
func ScaleTable(rows []ScaleRow) *Table {
	t := &Table{
		Title: "Scale — implicit topologies, closed loop (sequential cells)",
		Headers: []string{"protocol", "topology", "n", "per-node", "reqs",
			"makespan", "events", "qhops/req", "Mev/s", "B/node",
			"window", "windows", "batch"},
	}
	for _, r := range rows {
		qper := 0.0
		if r.Requests > 0 {
			qper = float64(r.QueueHops) / float64(r.Requests)
		}
		t.AddRow(r.Protocol, r.Topology, r.N, r.PerNode, r.Requests,
			int64(r.Makespan), r.Events, qper, r.EventsPerSec()/1e6, r.BytesPerNode(),
			int64(r.Drain.WindowWidth), r.Drain.Windows, r.Drain.MeanBatch())
	}
	return t
}

// ScaleSchema versions the machine-readable scale document (see
// PerfSchema for the bump discipline).
const ScaleSchema = "arrowbench/scale/v1"

// ScaleDocConfig records the experiment parameters inside the document.
type ScaleDocConfig struct {
	Sizes       []int `json:"sizes"`
	PerNode     int   `json:"per_node"`
	MaxRequests int64 `json:"max_requests"`
	Seed        int64 `json:"seed"`
	Workers     int   `json:"workers"`
	// LatScale is the synchronous latency scale of every cell (absent at
	// the default unit scale); it equals the drain's lookahead window
	// width under the scaled model.
	LatScale int64 `json:"lat_scale,omitempty"`
	// WorkerSweep is the normalized worker-sweep request (absent without
	// one; always led by the serial baseline 1 otherwise).
	WorkerSweep []int `json:"worker_sweep,omitempty"`
}

// ScaleDocRow is one row of the scale document. Requests, Makespan,
// Events and QueueHops are deterministic for a fixed config;
// EventsPerSec and the byte columns are machine-dependent and reported
// for trend reading, never gated.
type ScaleDocRow struct {
	Protocol     string  `json:"protocol"`
	Topology     string  `json:"topology"`
	N            int     `json:"n"`
	PerNode      int     `json:"per_node"`
	Requests     int64   `json:"requests"`
	Makespan     int64   `json:"makespan"`
	Events       int64   `json:"events"`
	QueueHops    int64   `json:"queue_hops"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocBytes   int64   `json:"alloc_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`
	Workers      int     `json:"workers"`
	// WindowWidth is the drain's derived lookahead window width in ticks
	// (the latency model's MinDelay; 1 for a serial run), Windows the
	// number of fused parallel windows — barriers — the base run paid,
	// and MeanBatch the mean events fused per window (0 when every
	// window fell back to serial dispatch). Telemetry like
	// events_per_sec: shape-checked by benchcheck, never gated on value.
	WindowWidth int64   `json:"window_width"`
	Windows     int64   `json:"windows"`
	MeanBatch   float64 `json:"mean_batch"`
	// WorkersSweep reports the cell's per-worker-count throughput and
	// parallel speedup (absent without a sweep). Like events_per_sec,
	// these are machine-dependent, reported for trend reading and shape
	// checked by benchcheck — never gated on value.
	WorkersSweep []ScaleSweepDocPoint `json:"workers_sweep,omitempty"`
}

// ScaleSweepDocPoint is one worker-count rerun in the document. Windows
// and MeanBatch carry the rerun's drain telemetry so the artifact shows
// *why* events/s moved: fewer barriers, bigger fused batches.
type ScaleSweepDocPoint struct {
	Workers      int     `json:"workers"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
	Windows      int64   `json:"windows"`
	MeanBatch    float64 `json:"mean_batch"`
}

// ScaleDoc is the stable schema of `arrowbench -exp scale -json`.
type ScaleDoc struct {
	Schema string         `json:"schema"`
	Config ScaleDocConfig `json:"config"`
	Rows   []ScaleDocRow  `json:"rows"`
}

// ScaleDocument assembles the machine-readable scale document.
func ScaleDocument(cfg ScaleConfig, rows []ScaleRow) ScaleDoc {
	maxReq := cfg.MaxRequests
	if maxReq <= 0 && cfg.PerNode <= 0 {
		maxReq = 2_000_000
	}
	latScale := cfg.LatScale
	if latScale <= 1 {
		latScale = 0 // unit scale: omitted from the document
	}
	doc := ScaleDoc{
		Schema: ScaleSchema,
		Config: ScaleDocConfig{
			Sizes: cfg.sizes(), PerNode: cfg.PerNode,
			MaxRequests: maxReq, Seed: cfg.Seed, Workers: cfg.Workers,
			LatScale:    latScale,
			WorkerSweep: cfg.workerSweep(),
		},
		Rows: make([]ScaleDocRow, len(rows)),
	}
	for i, r := range rows {
		doc.Rows[i] = ScaleDocRow{
			Protocol:     r.Protocol,
			Topology:     r.Topology,
			N:            r.N,
			PerNode:      r.PerNode,
			Requests:     r.Requests,
			Makespan:     int64(r.Makespan),
			Events:       r.Events,
			QueueHops:    r.QueueHops,
			EventsPerSec: r.EventsPerSec(),
			AllocBytes:   r.AllocBytes,
			BytesPerNode: r.BytesPerNode(),
			Workers:      r.Workers,
			WindowWidth:  int64(r.Drain.WindowWidth),
			Windows:      r.Drain.Windows,
			MeanBatch:    r.Drain.MeanBatch(),
		}
		for _, p := range r.Sweep {
			doc.Rows[i].WorkersSweep = append(doc.Rows[i].WorkersSweep, ScaleSweepDocPoint{
				Workers:      p.Workers,
				EventsPerSec: p.EventsPerSec(),
				Speedup:      r.SweepSpeedup(p),
				Windows:      p.Drain.Windows,
				MeanBatch:    p.Drain.MeanBatch(),
			})
		}
	}
	return doc
}

// ScaleSweepTable formats the worker-sweep columns, or returns nil when
// no row carries a sweep.
func ScaleSweepTable(rows []ScaleRow) *Table {
	any := false
	for _, r := range rows {
		if len(r.Sweep) > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	t := &Table{
		Title:   "Scale — drain worker sweep (report-only; identical simulated results, wall clock varies)",
		Headers: []string{"protocol", "topology", "n", "workers", "Mev/s", "speedup", "windows", "batch"},
	}
	for _, r := range rows {
		for _, p := range r.Sweep {
			t.AddRow(r.Protocol, r.Topology, r.N, p.Workers,
				p.EventsPerSec()/1e6, r.SweepSpeedup(p), p.Drain.Windows, p.Drain.MeanBatch())
		}
	}
	return t
}
