package analysis

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ShardConfig drives the multi-object sharding experiment: every
// protocol serving k objects on one shared n-node network, across an
// objects × skew grid. The network has unit per-link capacity
// (LinkTxTime 1) unless overridden, so the k instances genuinely
// contend — cross-object interference shows up in the latency
// distributions instead of superposing for free.
type ShardConfig struct {
	// N is the shared network's node count; 0 defaults to 32.
	N int
	// PerNode is the closed-loop requests per node in every cell.
	PerNode int
	// Objects are the object counts of the grid; nil defaults to
	// 16, 128, 1024.
	Objects []int
	// Skews are the Zipf popularity exponents of the grid; nil defaults
	// to 0 (uniform) and 1.1 (the classic hot-object regime).
	Skews []float64
	// Seed derives each cell's simulation seed.
	Seed int64
	// LinkTxTime is the shared network's per-link serialization time;
	// 0 defaults to 1 (pass a negative value for the infinite-capacity
	// model, which the config normalizes back to 0).
	LinkTxTime sim.Time
	// Workers sets both the sweep pool and each run's lookahead-windowed
	// drain. Results — including the JSON document — are byte-identical
	// at any worker count; the field is deliberately absent from the
	// document for exactly that reason.
	Workers int
}

func (c *ShardConfig) n() int {
	if c.N > 0 {
		return c.N
	}
	return 32
}

func (c *ShardConfig) objects() []int {
	if len(c.Objects) > 0 {
		return c.Objects
	}
	return []int{16, 128, 1024}
}

func (c *ShardConfig) skews() []float64 {
	if len(c.Skews) > 0 {
		return c.Skews
	}
	return []float64{0, 1.1}
}

func (c *ShardConfig) linkTxTime() sim.Time {
	if c.LinkTxTime < 0 {
		return 0
	}
	if c.LinkTxTime == 0 {
		return 1
	}
	return c.LinkTxTime
}

// ShardRow is one protocol × objects × skew cell: the aggregate cost of
// the combined traffic, its latency distribution, and the fairness
// summary across the objects. Every field is a simulated quantity —
// deterministic for a fixed config, no wall-clock anywhere — so the
// rows gate reliably in CI.
type ShardRow struct {
	Protocol string
	N        int
	Objects  int
	Skew     float64
	PerNode  int
	Cost     engine.Cost
	Fairness engine.Fairness
}

// shardProtocols returns the experiment's protocol columns in
// deterministic order.
func shardProtocols() []engine.MultiProtocol {
	return []engine.MultiProtocol{
		engine.Arrow{},
		engine.Centralized{},
		engine.NTA{},
		engine.Ivy{},
	}
}

// ShardExperiment runs the sharding grid. Cells fan across the worker
// pool with results written in deterministic cell order, and each cell
// also drains its own run on cfg.Workers simulator workers; both levels
// of parallelism leave every row byte-identical.
func ShardExperiment(cfg ShardConfig) ([]ShardRow, error) {
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("analysis: shard experiment needs PerNode >= 1, got %d", cfg.PerNode)
	}
	n := cfg.n()
	protos := shardProtocols()
	type cell struct {
		proto   engine.MultiProtocol
		objects int
		skew    float64
		seed    int64
	}
	var cells []cell
	for _, k := range cfg.objects() {
		for _, s := range cfg.skews() {
			for _, p := range protos {
				cells = append(cells, cell{p, k, s, sim.DeriveSeed(cfg.Seed, len(cells))})
			}
		}
	}
	rows := make([]ShardRow, len(cells))
	err := engine.ParallelMapErr(len(cells), cfg.Workers, func(i int) error {
		c := cells[i]
		mc, err := c.proto.RunMulti(engine.MultiInstance{
			Label:      fmt.Sprintf("n=%d/k=%d/s=%g", n, c.objects, c.skew),
			Nodes:      n,
			Workload:   engine.NewClosedLoop(cfg.PerNode).Objects(c.objects).Zipf(c.skew).MustBuild(),
			Seed:       c.seed,
			Workers:    cfg.Workers,
			LinkTxTime: cfg.linkTxTime(),
			Recorder:   stats.NewDistRecorder(),
		})
		if err != nil {
			return fmt.Errorf("analysis: shard %s k=%d s=%g: %w", c.proto.Name(), c.objects, c.skew, err)
		}
		rows[i] = ShardRow{
			Protocol: c.proto.Name(),
			N:        n,
			Objects:  c.objects,
			Skew:     c.skew,
			PerNode:  cfg.PerNode,
			Cost:     mc.Aggregate,
			Fairness: mc.Fairness,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ShardTable formats the shard rows: aggregate traffic on the left,
// the fairness spread across objects on the right.
func ShardTable(rows []ShardRow) *Table {
	t := &Table{
		Title: "Multi-object sharding — shared network, per-link capacity 1",
		Headers: []string{"protocol", "k", "skew", "reqs", "qhops/req",
			"lat p50", "lat p99", "makespan", "req min/max", "avglat max", "avglat p99"},
	}
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Objects, r.Skew, r.Cost.Requests, r.Cost.AvgQueueHops(),
			r.Cost.Latency.P50, r.Cost.Latency.P99, int64(r.Cost.Makespan),
			fmt.Sprintf("%d/%d", r.Fairness.MinRequests, r.Fairness.MaxRequests),
			r.Fairness.MaxAvgLatency, r.Fairness.P99AvgLatency)
	}
	return t
}

// ShardSchema versions the machine-readable shard document (see
// PerfSchema for the bump discipline).
const ShardSchema = "arrowbench/shard/v1"

// ShardDocConfig records the experiment parameters inside the document.
// Workers is deliberately absent: the document is byte-identical at any
// worker count, and including it would break exactly that property.
type ShardDocConfig struct {
	N          int       `json:"n"`
	PerNode    int       `json:"per_node"`
	Objects    []int     `json:"objects"`
	Skews      []float64 `json:"skews"`
	Seed       int64     `json:"seed"`
	LinkTxTime int64     `json:"link_tx_time"`
}

// ShardDocRow is one row of the shard document. Every field is
// deterministic for a fixed config — no wall-clock quantities.
type ShardDocRow struct {
	Protocol     string          `json:"protocol"`
	N            int             `json:"n"`
	Objects      int             `json:"objects"`
	Skew         float64         `json:"skew"`
	PerNode      int             `json:"per_node"`
	Requests     int64           `json:"requests"`
	QueueHops    int64           `json:"queue_hops"`
	ReplyHops    int64           `json:"reply_hops"`
	LocalComps   int64           `json:"local_completions"`
	TotalLatency int64           `json:"total_latency"`
	Makespan     int64           `json:"makespan"`
	Events       int64           `json:"events"`
	Latency      stats.Dist      `json:"latency"`
	Hops         stats.Dist      `json:"hops"`
	Fairness     engine.Fairness `json:"fairness"`
}

// ShardDoc is the stable schema of `arrowbench -exp shard -json`.
type ShardDoc struct {
	Schema string         `json:"schema"`
	Config ShardDocConfig `json:"config"`
	Rows   []ShardDocRow  `json:"rows"`
}

// ShardDocument assembles the machine-readable shard document.
func ShardDocument(cfg ShardConfig, rows []ShardRow) ShardDoc {
	doc := ShardDoc{
		Schema: ShardSchema,
		Config: ShardDocConfig{
			N:          cfg.n(),
			PerNode:    cfg.PerNode,
			Objects:    cfg.objects(),
			Skews:      cfg.skews(),
			Seed:       cfg.Seed,
			LinkTxTime: int64(cfg.linkTxTime()),
		},
		Rows: make([]ShardDocRow, len(rows)),
	}
	for i, r := range rows {
		doc.Rows[i] = ShardDocRow{
			Protocol:     r.Protocol,
			N:            r.N,
			Objects:      r.Objects,
			Skew:         r.Skew,
			PerNode:      r.PerNode,
			Requests:     r.Cost.Requests,
			QueueHops:    r.Cost.QueueHops,
			ReplyHops:    r.Cost.ReplyHops,
			LocalComps:   r.Cost.LocalCompletions,
			TotalLatency: r.Cost.TotalLatency,
			Makespan:     int64(r.Cost.Makespan),
			Events:       r.Cost.Events,
			Latency:      r.Cost.Latency,
			Hops:         r.Cost.Hops,
			Fairness:     r.Fairness,
		}
	}
	return doc
}
