package analysis

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestShardExperimentRows pins the grid's shape and the per-row
// conservation invariants on a small configuration.
func TestShardExperimentRows(t *testing.T) {
	cfg := ShardConfig{
		N:       16,
		PerNode: 10,
		Objects: []int{4, 32},
		Skews:   []float64{0, 1.1},
		Seed:    3,
	}
	rows, err := ShardExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(cfg.Objects) * len(cfg.Skews) * 4
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.Cost.Requests != int64(cfg.N)*int64(cfg.PerNode) {
			t.Errorf("%s k=%d s=%g: %d requests, want %d",
				r.Protocol, r.Objects, r.Skew, r.Cost.Requests, cfg.N*cfg.PerNode)
		}
		if r.Fairness.Objects != r.Objects {
			t.Errorf("%s k=%d: fairness ranges over %d objects", r.Protocol, r.Objects, r.Fairness.Objects)
		}
		if r.Cost.Latency.Count != r.Cost.Requests {
			t.Errorf("%s k=%d s=%g: latency dist counted %d of %d requests",
				r.Protocol, r.Objects, r.Skew, r.Cost.Latency.Count, r.Cost.Requests)
		}
	}
	if out := ShardTable(rows).Render(); out == "" {
		t.Error("empty shard table")
	}
}

// TestShardDocumentWorkerIdentity is the experiment's headline gate:
// the marshalled shard document must be byte-identical across worker
// counts — both the sweep pool and each run's parallel drain.
func TestShardDocumentWorkerIdentity(t *testing.T) {
	cfg := ShardConfig{
		N:       16,
		PerNode: 15,
		Objects: []int{8, 64},
		Skews:   []float64{0, 1.1},
		Seed:    7,
	}
	marshal := func(workers int) []byte {
		c := cfg
		c.Workers = workers
		rows, err := ShardExperiment(c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(ShardDocument(c, rows), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := marshal(1)
	for _, w := range []int{2, 4} {
		if par := marshal(w); !bytes.Equal(serial, par) {
			t.Fatalf("shard document differs between workers=1 and workers=%d", w)
		}
	}
	// The schema promise: no workers field anywhere in the document.
	if bytes.Contains(serial, []byte("workers")) {
		t.Error("shard document leaks a workers field; byte-identity across -workers would be vacuous")
	}
}
