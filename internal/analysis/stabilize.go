package analysis

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stabilize"
	"repro/internal/tree"
)

// StabilizeRow summarizes self-stabilization repair over a batch of
// random corruptions of one tree size.
type StabilizeRow struct {
	N            int
	Trials       int
	CorruptFrac  float64
	AvgRounds    float64
	MaxRounds    int
	AvgDecycles  float64
	AvgMerges    float64
	AllConverged bool
}

// StabilizeExperiment corrupts a fraction of pointers uniformly at
// random and measures repair cost (rounds, de-cycles, merges) across
// trials — the E14 experiment.
func StabilizeExperiment(ns []int, corruptFrac float64, trials int, seed int64) ([]StabilizeRow, error) {
	rows := make([]StabilizeRow, 0, len(ns))
	for _, n := range ns {
		t := tree.BalancedBinary(n)
		rng := rand.New(rand.NewSource(seed + int64(n)))
		row := StabilizeRow{N: n, Trials: trials, CorruptFrac: corruptFrac, AllConverged: true}
		var sumRounds, sumDecycles, sumMerges int64
		for trial := 0; trial < trials; trial++ {
			links := make([]graph.NodeID, n)
			for v := range links {
				node := graph.NodeID(v)
				if node == 0 {
					links[v] = 0
				} else {
					links[v] = t.NextHop(node, 0)
				}
			}
			for k := 0; k < int(float64(n)*corruptFrac); k++ {
				links[rng.Intn(n)] = graph.NodeID(rng.Intn(n))
			}
			res, err := stabilize.Repair(t, links)
			if err != nil {
				return nil, err
			}
			if _, ok := stabilize.IsLegal(t, links); !ok {
				row.AllConverged = false
			}
			sumRounds += int64(res.Rounds)
			sumDecycles += int64(res.DecycledEdges)
			sumMerges += int64(res.MergedRegions)
			if res.Rounds > row.MaxRounds {
				row.MaxRounds = res.Rounds
			}
		}
		row.AvgRounds = float64(sumRounds) / float64(trials)
		row.AvgDecycles = float64(sumDecycles) / float64(trials)
		row.AvgMerges = float64(sumMerges) / float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// StabilizeTable formats the self-stabilization experiment.
func StabilizeTable(rows []StabilizeRow) *Table {
	t := &Table{
		Title:   "Self-stabilization (Herlihy–Tirthapura) — repair from random corruption",
		Headers: []string{"n", "trials", "corrupt", "avg rounds", "max rounds", "avg de-cycles", "avg merges", "converged"},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.Trials, r.CorruptFrac, r.AvgRounds, r.MaxRounds, r.AvgDecycles, r.AvgMerges, r.AllConverged)
	}
	return t
}
