package analysis

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stabilize"
	"repro/internal/tree"
)

// StabilizeRow summarizes self-stabilization repair over a batch of
// random corruptions of one tree size, for both implementations: the
// round-based oracle (rounds, de-cycles, merges) and the message-driven
// protocol (episodes, messages, simulated convergence time), which runs
// on the same corrupted instances so the two are directly comparable.
type StabilizeRow struct {
	N            int     `json:"n"`
	Trials       int     `json:"trials"`
	CorruptFrac  float64 `json:"corrupt_frac"`
	AvgRounds    float64 `json:"avg_rounds"`
	MaxRounds    int     `json:"max_rounds"`
	AvgDecycles  float64 `json:"avg_decycles"`
	AvgMerges    float64 `json:"avg_merges"`
	AllConverged bool    `json:"all_converged"`
	// Message-driven repair columns: average repair messages (= tree-edge
	// hops), simulated convergence time, and episodes per trial; and
	// whether every trial agreed with the oracle's surviving sink.
	AvgMessages  float64 `json:"avg_messages"`
	AvgSimTime   float64 `json:"avg_sim_time"`
	AvgEpisodes  float64 `json:"avg_episodes"`
	SinksAgree   bool    `json:"sinks_agree"`
	SimConverged bool    `json:"sim_converged"`
	MaxMessages  int64   `json:"max_messages"`
	MaxSimTime   int64   `json:"max_sim_time"`
}

// StabilizeExperiment corrupts a fraction of pointers uniformly at
// random and measures repair cost across trials — the round-based
// oracle's rounds/de-cycles/merges and the message-driven protocol's
// messages/time/episodes on the same instances (the E14 experiment).
func StabilizeExperiment(ns []int, corruptFrac float64, trials int, seed int64) ([]StabilizeRow, error) {
	rows := make([]StabilizeRow, 0, len(ns))
	for _, n := range ns {
		t := tree.BalancedBinary(n)
		rng := rand.New(rand.NewSource(seed + int64(n)))
		row := StabilizeRow{
			N: n, Trials: trials, CorruptFrac: corruptFrac,
			AllConverged: true, SinksAgree: true, SimConverged: true,
		}
		var sumRounds, sumDecycles, sumMerges int64
		var sumMsgs, sumTime, sumEpisodes int64
		for trial := 0; trial < trials; trial++ {
			links := make([]graph.NodeID, n)
			for v := range links {
				node := graph.NodeID(v)
				if node == 0 {
					links[v] = 0
				} else {
					links[v] = t.NextHop(node, 0)
				}
			}
			for k := 0; k < int(float64(n)*corruptFrac); k++ {
				links[rng.Intn(n)] = graph.NodeID(rng.Intn(n))
			}
			simLinks := append([]graph.NodeID(nil), links...)
			res, err := stabilize.Repair(t, links)
			if err != nil {
				return nil, err
			}
			if _, ok := stabilize.IsLegal(t, links); !ok {
				row.AllConverged = false
			}
			sumRounds += int64(res.Rounds)
			sumDecycles += int64(res.DecycledEdges)
			sumMerges += int64(res.MergedRegions)
			if res.Rounds > row.MaxRounds {
				row.MaxRounds = res.Rounds
			}
			simRes, err := stabilize.RunSim(t, simLinks, stabilize.SimOptions{
				Seed: seed + int64(n) + int64(trial),
			})
			if err != nil {
				row.SimConverged = false
				continue
			}
			if simRes.Sink != res.Sink {
				row.SinksAgree = false
			}
			sumMsgs += simRes.Messages
			sumTime += int64(simRes.ConvergenceTime)
			sumEpisodes += int64(simRes.Episodes)
			if simRes.Messages > row.MaxMessages {
				row.MaxMessages = simRes.Messages
			}
			if int64(simRes.ConvergenceTime) > row.MaxSimTime {
				row.MaxSimTime = int64(simRes.ConvergenceTime)
			}
		}
		row.AvgRounds = float64(sumRounds) / float64(trials)
		row.AvgDecycles = float64(sumDecycles) / float64(trials)
		row.AvgMerges = float64(sumMerges) / float64(trials)
		row.AvgMessages = float64(sumMsgs) / float64(trials)
		row.AvgSimTime = float64(sumTime) / float64(trials)
		row.AvgEpisodes = float64(sumEpisodes) / float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// StabilizeTable formats the self-stabilization experiment: oracle
// rounds next to message-driven cost in the protocols' hops/latency
// currency.
func StabilizeTable(rows []StabilizeRow) *Table {
	t := &Table{
		Title: "Self-stabilization (Herlihy–Tirthapura) — round oracle vs message-driven repair",
		Headers: []string{"n", "trials", "corrupt", "avg rounds", "max rounds",
			"avg de-cycles", "avg merges", "avg msgs", "avg time", "avg episodes",
			"sinks agree", "converged"},
	}
	for _, r := range rows {
		t.AddRow(r.N, r.Trials, r.CorruptFrac, r.AvgRounds, r.MaxRounds,
			r.AvgDecycles, r.AvgMerges, r.AvgMessages, r.AvgSimTime, r.AvgEpisodes,
			r.SinksAgree, r.AllConverged && r.SimConverged)
	}
	return t
}

// StabilizeSchema versions the machine-readable stabilize document.
const StabilizeSchema = "arrowbench/stabilize/v1"

// StabilizeConfig records the experiment parameters inside the document.
type StabilizeConfig struct {
	Sizes       []int   `json:"sizes"`
	CorruptFrac float64 `json:"corrupt_frac"`
	Trials      int     `json:"trials"`
	Seed        int64   `json:"seed"`
}

// StabilizeDoc is the stable schema of `arrowbench -exp stabilize
// -json`; every field is deterministic for a fixed config.
type StabilizeDoc struct {
	Schema string          `json:"schema"`
	Config StabilizeConfig `json:"config"`
	Rows   []StabilizeRow  `json:"rows"`
}

// StabilizeDocument assembles the machine-readable stabilize document.
func StabilizeDocument(cfg StabilizeConfig, rows []StabilizeRow) StabilizeDoc {
	return StabilizeDoc{Schema: StabilizeSchema, Config: cfg, Rows: rows}
}
