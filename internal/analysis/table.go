// Package analysis is the experiment harness: it runs the protocol
// configurations behind every table and figure of the paper's evaluation
// (and the theory-validation experiments DESIGN.md adds) and formats the
// results as plain-text tables.
package analysis

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RenderJSON returns the table as a machine-readable JSON document —
// the title, the header list, and one cell array per row aligned with
// the headers (cell values keep Render's string formatting) — so CI can
// track experiment output across commits without scraping aligned text.
// Rows stay arrays rather than header-keyed objects: an object would
// silently drop cells beyond the header count or under duplicate header
// names, truncating exactly the artifact CI relies on.
func (t *Table) RenderJSON() string {
	type doc struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	b, err := json.MarshalIndent(doc{Title: t.Title, Headers: t.Headers, Rows: rows}, "", "  ")
	if err != nil {
		// Impossible: the document is strings all the way down.
		panic(fmt.Sprintf("analysis: table JSON: %v", err))
	}
	return string(b) + "\n"
}
