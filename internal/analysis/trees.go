package analysis

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tree"
)

// TreeKind selects a spanning-tree construction for experiments.
type TreeKind int

const (
	// TreeBalancedBinary is the paper's experimental choice on complete
	// graphs (Section 5).
	TreeBalancedBinary TreeKind = iota
	// TreeMST is Prim's minimum spanning tree (Demmer–Herlihy's choice).
	TreeMST
	// TreeKruskal is Kruskal's MST (differs from Prim only on ties).
	TreeKruskal
	// TreeBFS is the breadth-first tree from the graph center.
	TreeBFS
	// TreeSPT is the Dijkstra shortest-path tree from the graph center.
	TreeSPT
	// TreeStar is a star centered on node 0 — a "home node" topology;
	// only valid when the graph has the needed edges.
	TreeStar
	// TreePath is the path 0-1-...-n-1; only valid on graphs containing
	// that path (paths, cycles, complete graphs, lower-bound gadgets).
	TreePath
)

func (k TreeKind) String() string {
	switch k {
	case TreeBalancedBinary:
		return "balanced-binary"
	case TreeMST:
		return "mst-prim"
	case TreeKruskal:
		return "mst-kruskal"
	case TreeBFS:
		return "bfs"
	case TreeSPT:
		return "spt"
	case TreeStar:
		return "star"
	case TreePath:
		return "path"
	default:
		return fmt.Sprintf("tree(%d)", int(k))
	}
}

// BuildTree constructs the requested spanning tree of g. Star, path and
// balanced-binary require the corresponding edges to exist in g (true on
// complete graphs).
func BuildTree(kind TreeKind, g *graph.Graph) (*tree.Tree, error) {
	switch kind {
	case TreeBalancedBinary:
		t := tree.BalancedBinary(g.NumNodes())
		if err := checkEmbeds(t, g); err != nil {
			return nil, err
		}
		return t, nil
	case TreeMST:
		return tree.PrimMST(g, 0)
	case TreeKruskal:
		return tree.KruskalMST(g, 0)
	case TreeBFS:
		c, _ := g.Center()
		return tree.BFS(g, c)
	case TreeSPT:
		c, _ := g.Center()
		return tree.ShortestPathTree(g, c)
	case TreeStar:
		t := tree.StarTree(g.NumNodes())
		if err := checkEmbeds(t, g); err != nil {
			return nil, err
		}
		return t, nil
	case TreePath:
		t := tree.PathTree(g.NumNodes())
		if err := checkEmbeds(t, g); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, fmt.Errorf("analysis: unknown tree kind %d", int(kind))
	}
}

// checkEmbeds verifies that every tree edge exists in g — spanning trees
// must be subgraphs of the network.
func checkEmbeds(t *tree.Tree, g *graph.Graph) error {
	for v := 0; v < t.NumNodes(); v++ {
		node := graph.NodeID(v)
		if node == t.Root() {
			continue
		}
		if !g.HasEdge(node, t.Parent(node)) {
			return fmt.Errorf("analysis: tree edge (%d,%d) missing from graph", node, t.Parent(node))
		}
	}
	return nil
}
