// Package arrow implements the arrow distributed queuing protocol — the
// paper's primary contribution (Section 2).
//
// The protocol runs on a pre-selected spanning tree T. Every node v keeps
// a pointer link(v) to a tree neighbour (or to itself, making v the sink)
// and id(v), the identifier of the last queuing operation v issued. To
// queue operation a, node v sends queue(a) toward link(v) and points
// link(v) at itself; each node u receiving queue(a) from w performs an
// atomic path reversal: it flips link(u) to w and either forwards the
// message to the old link or — if u was the sink — completes the queuing
// of a behind id(u).
//
// The implementation runs on the deterministic discrete-event simulator
// (package sim) under synchronous or asynchronous delay models and records
// exactly the costs the paper analyzes: per-request latency (Definition
// 3.2), queue-message hops, the induced total order, and the final
// pointer configuration.
package arrow

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Options configures a protocol run.
type Options struct {
	// Root is the initial sink (tail of the empty queue). All link
	// pointers are initialized toward it.
	Root graph.NodeID
	// Latency is the message delay model; nil means the paper's
	// synchronous unit-latency model.
	Latency sim.LatencyModel
	// Arbitration orders simultaneously arriving messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Tracer observes protocol steps; nil disables tracing.
	Tracer Tracer
	// MaxEvents guards against divergence; 0 derives a generous default
	// from the instance size.
	MaxEvents int64
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
}

// Tracer observes protocol execution; implementations must be cheap, as
// hooks fire on every step. See package trace for a renderer.
type Tracer interface {
	OnInit(t *tree.Tree, root graph.NodeID)
	OnRequest(at sim.Time, req queuing.Request)
	OnSend(at sim.Time, from, to graph.NodeID, reqID int)
	OnFlip(at sim.Time, node, oldLink, newLink graph.NodeID)
	OnComplete(at sim.Time, reqID, predID int, sink graph.NodeID)
}

// Completion records the queuing of one request.
type Completion struct {
	// Req is the completed request.
	Req queuing.Request
	// PredID is the predecessor request's ID, or -1 for the virtual root
	// request r0.
	PredID int
	// At is the completion time: when the predecessor's issuer learnt its
	// successor (Definition 3.2).
	At sim.Time
	// Sink is the node at which the queue message terminated.
	Sink graph.NodeID
	// Hops is the number of queue-message link traversals (0 when the
	// requester was itself the sink).
	Hops int
}

// Latency returns the request's queuing latency At − Time.
func (c Completion) Latency() int64 { return int64(c.At - c.Req.Time) }

// Result collects everything a protocol run produced.
type Result struct {
	// Set is the request set the run served.
	Set queuing.Set
	// Root is the initial sink.
	Root graph.NodeID
	// Completions is indexed by request ID.
	Completions []Completion
	// Order is arrow's queuing order πA (request IDs, first queued first),
	// reconstructed from the predecessor chain.
	Order queuing.Order
	// TotalLatency is Σ latencies — the paper's cost metric (Def 3.3).
	TotalLatency int64
	// TotalHops is Σ queue-message hops (= protocol messages sent).
	TotalHops int64
	// MaxHops is the largest per-request hop count (≤ D by Demmer–Herlihy).
	MaxHops int
	// Makespan is the simulated time at quiescence.
	Makespan sim.Time
	// FinalLinks is the link pointer of every node after quiescence.
	FinalLinks []graph.NodeID
	// FinalSink is the unique sink after quiescence.
	FinalSink graph.NodeID
}

// queueMsg is the protocol's only message type.
type queueMsg struct{ reqID int }

// state is the per-run protocol state, indexed by node.
type state struct {
	t    *tree.Tree
	set  queuing.Set
	opts Options

	link    []graph.NodeID
	lastReq []int // id(v): last request issued by v; -1 = never (⊥)
	hops    []int // per-request hop counter

	// msgs holds one pre-boxed queue message per request: forwarding sends
	// the same *queueMsg at every hop, so no per-send interface boxing.
	msgs []queueMsg

	completions []Completion
	completed   int
}

// Run executes the arrow protocol for the request set on tree t and
// returns the full cost accounting. The run is deterministic for fixed
// Options.
func Run(t *tree.Tree, set queuing.Set, opts Options) (*Result, error) {
	if err := set.Validate(t.NumNodes()); err != nil {
		return nil, err
	}
	if int(opts.Root) < 0 || int(opts.Root) >= t.NumNodes() {
		return nil, fmt.Errorf("arrow: root %d out of range", opts.Root)
	}
	maxEvents := opts.MaxEvents
	if maxEvents == 0 {
		// Each request travels at most n hops plus its injection timer.
		maxEvents = sim.SatMul(int64(len(set)+1), sim.SatMul(int64(t.NumNodes()+2), 4))
		if maxEvents < 4096 {
			maxEvents = 4096
		}
	}
	st := &state{
		t:           t,
		set:         set,
		opts:        opts,
		link:        initialLinks(t, opts.Root),
		lastReq:     make([]int, t.NumNodes()),
		hops:        make([]int, len(set)),
		msgs:        make([]queueMsg, len(set)),
		completions: make([]Completion, len(set)),
	}
	for i := range st.msgs {
		st.msgs[i].reqID = i
	}
	for i := range st.lastReq {
		st.lastReq[i] = -1
	}
	for i := range st.completions {
		st.completions[i].PredID = -2 // sentinel: not completed
	}
	if opts.Tracer != nil {
		opts.Tracer.OnInit(t, opts.Root)
	}

	s := sim.New(sim.Config{
		Topology:    sim.TreeTopology{T: t},
		Latency:     opts.Latency,
		Arbitration: opts.Arbitration,
		Seed:        opts.Seed,
		MaxEvents:   maxEvents,
		Scheduler:   opts.Scheduler,
	})
	s.SetAllHandlers(st.handleMessage)
	for _, r := range set {
		req := r
		s.ScheduleAt(req.Time, func(ctx *sim.Context) { st.initiate(ctx, req) })
	}
	makespan := s.Run()

	if st.completed != len(set) {
		return nil, fmt.Errorf("arrow: only %d of %d requests completed", st.completed, len(set))
	}
	res := &Result{
		Set:         set,
		Root:        opts.Root,
		Completions: st.completions,
		Makespan:    makespan,
		FinalLinks:  st.link,
	}
	for i := range st.completions {
		c := &st.completions[i]
		res.TotalLatency += c.Latency()
		res.TotalHops += int64(c.Hops)
		if c.Hops > res.MaxHops {
			res.MaxHops = c.Hops
		}
	}
	order, err := orderFromPredecessors(st.completions)
	if err != nil {
		return nil, err
	}
	res.Order = order
	sink, err := followLinks(t, st.link)
	if err != nil {
		return nil, err
	}
	res.FinalSink = sink
	return res, nil
}

// initialLinks points every node's link at its tree neighbour toward
// root; the root points at itself (the unique sink).
func initialLinks(t tree.Nav, root graph.NodeID) []graph.NodeID {
	links := make([]graph.NodeID, t.NumNodes())
	for v := range links {
		node := graph.NodeID(v)
		if node == root {
			links[v] = node
		} else {
			links[v] = t.NextHop(node, root)
		}
	}
	return links
}

// initiate performs the atomic initiation sequence of Section 2 at the
// requesting node.
func (st *state) initiate(ctx *sim.Context, req queuing.Request) {
	v := req.Node
	if tr := st.opts.Tracer; tr != nil {
		tr.OnRequest(ctx.Now(), req)
	}
	if st.link[v] == v {
		// v is the sink: the request finds its predecessor locally, with
		// zero messages — id(v) is the current tail (or ⊥ = virtual root).
		st.complete(ctx, req.ID, st.lastReq[v], v)
		st.lastReq[v] = req.ID
		return
	}
	target := st.link[v]
	st.lastReq[v] = req.ID
	old := st.link[v]
	st.link[v] = v
	if tr := st.opts.Tracer; tr != nil {
		tr.OnFlip(ctx.Now(), v, old, v)
		tr.OnSend(ctx.Now(), v, target, req.ID)
	}
	st.hops[req.ID]++
	ctx.Send(v, target, &st.msgs[req.ID])
}

// handleMessage performs the atomic path-reversal step at a node
// receiving queue(a).
func (st *state) handleMessage(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	qm, ok := msg.(*queueMsg)
	if !ok {
		panic(fmt.Sprintf("arrow: unexpected message %T", msg))
	}
	next := st.link[at]
	st.link[at] = from
	if tr := st.opts.Tracer; tr != nil {
		tr.OnFlip(ctx.Now(), at, next, from)
	}
	if next != at {
		if tr := st.opts.Tracer; tr != nil {
			tr.OnSend(ctx.Now(), at, next, qm.reqID)
		}
		st.hops[qm.reqID]++
		ctx.Send(at, next, qm)
		return
	}
	// at was the sink: queue(a) found its predecessor id(at).
	st.complete(ctx, qm.reqID, st.lastReq[at], at)
}

func (st *state) complete(ctx *sim.Context, reqID, predID int, sink graph.NodeID) {
	c := &st.completions[reqID]
	if c.PredID != -2 {
		panic(fmt.Sprintf("arrow: request %d completed twice", reqID))
	}
	*c = Completion{
		Req:    st.set[reqID],
		PredID: predID,
		At:     ctx.Now(),
		Sink:   sink,
		Hops:   st.hops[reqID],
	}
	st.completed++
	if tr := st.opts.Tracer; tr != nil {
		tr.OnComplete(ctx.Now(), reqID, predID, sink)
	}
}

// orderFromPredecessors chains completions into the total order. Exactly
// one request has the virtual root (-1) as predecessor; every other
// request names a unique predecessor.
func orderFromPredecessors(cs []Completion) (queuing.Order, error) {
	succ := make(map[int]int, len(cs))
	for i, c := range cs {
		if c.PredID == -2 {
			return nil, fmt.Errorf("arrow: request %d never completed", i)
		}
		if _, dup := succ[c.PredID]; dup {
			return nil, fmt.Errorf("arrow: two successors recorded for request %d", c.PredID)
		}
		succ[c.PredID] = i
	}
	order := make(queuing.Order, 0, len(cs))
	cur, ok := succ[-1]
	for ok {
		order = append(order, cur)
		cur, ok = succ[cur]
	}
	if len(order) != len(cs) {
		return nil, fmt.Errorf("arrow: predecessor chain covers %d of %d requests", len(order), len(cs))
	}
	return order, nil
}

// followLinks verifies the pointer invariant: from every node, following
// link pointers reaches a unique sink. Returns that sink.
func followLinks(t tree.Nav, links []graph.NodeID) (graph.NodeID, error) {
	var sink graph.NodeID = -1
	for v := range links {
		cur := graph.NodeID(v)
		for steps := 0; ; steps++ {
			if steps > len(links) {
				return -1, fmt.Errorf("arrow: link cycle detected from node %d", v)
			}
			next := links[cur]
			if next == cur {
				break
			}
			cur = next
		}
		if sink == -1 {
			sink = cur
		} else if sink != cur {
			return -1, fmt.Errorf("arrow: two sinks %d and %d", sink, cur)
		}
	}
	return sink, nil
}

// VerifySinkReachability re-exposes the pointer invariant check for tests
// and examples.
func VerifySinkReachability(t tree.Nav, links []graph.NodeID) (graph.NodeID, error) {
	return followLinks(t, links)
}
