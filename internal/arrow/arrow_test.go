package arrow

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/workload"
)

// paperExampleTree builds the 8-node tree resembling Figures 1-5:
//
//	    x
//	   / \
//	  u   y
//	 / \   \
//	v   z   w
//
// with node IDs: x=0 u=1 y=2 v=3 z=4 w=5.
func paperExampleTree(t *testing.T) *tree.Tree {
	t.Helper()
	parent := []graph.NodeID{0, 0, 0, 1, 1, 2}
	pw := []graph.Weight{0, 1, 1, 1, 1, 1}
	tr, err := tree.FromParents(0, parent, pw)
	if err != nil {
		t.Fatalf("building example tree: %v", err)
	}
	return tr
}

func TestSingleRequestFromRoot(t *testing.T) {
	tr := paperExampleTree(t)
	set := queuing.NewSet([]queuing.Request{{Node: 0, Time: 0}})
	res, err := Run(tr, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Completions[0]
	if c.PredID != -1 {
		t.Errorf("predecessor = %d, want -1 (virtual root)", c.PredID)
	}
	if c.Hops != 0 {
		t.Errorf("hops = %d, want 0 (local completion at root)", c.Hops)
	}
	if c.Latency() != 0 {
		t.Errorf("latency = %d, want 0", c.Latency())
	}
	if res.FinalSink != 0 {
		t.Errorf("final sink = %d, want 0", res.FinalSink)
	}
}

func TestSingleRemoteRequest(t *testing.T) {
	tr := paperExampleTree(t)
	// v (node 3) requests; root is x (node 0); dT(v, x) = 2.
	set := queuing.NewSet([]queuing.Request{{Node: 3, Time: 0}})
	res, err := Run(tr, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Completions[0]
	if c.PredID != -1 {
		t.Errorf("predecessor = %d, want -1", c.PredID)
	}
	if c.Hops != 2 {
		t.Errorf("hops = %d, want 2", c.Hops)
	}
	if c.Latency() != 2 {
		t.Errorf("latency = %d, want 2 (dT(v, root))", c.Latency())
	}
	if c.Sink != 0 {
		t.Errorf("sink = %d, want 0", c.Sink)
	}
	if res.FinalSink != 3 {
		t.Errorf("final sink = %d, want 3 (the requester)", res.FinalSink)
	}
}

func TestSequentialLatencyEqualsTreeDistance(t *testing.T) {
	// Eq. (1): when requests are well separated, the latency of a request
	// queued after its predecessor is exactly dT between their origins.
	tr := tree.BalancedBinary(15)
	nodes := []graph.NodeID{7, 3, 12, 0, 14, 5}
	reqs := make([]queuing.Request, len(nodes))
	gap := sim.Time(3 * tr.Diameter())
	for i, v := range nodes {
		reqs[i] = queuing.Request{Node: v, Time: sim.Time(i) * gap}
	}
	set := queuing.NewSet(reqs)
	res, err := Run(tr, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	prev := queuing.RootRequest(0)
	for _, id := range res.Order {
		c := res.Completions[id]
		want := tr.Dist(prev.Node, set[id].Node)
		if c.Latency() != want {
			t.Errorf("request %d: latency %d, want dT = %d", id, c.Latency(), want)
		}
		prev = set[id]
	}
	// Sequential requests are served in issue order.
	for i, id := range res.Order {
		if id != i {
			t.Errorf("order[%d] = %d, want %d (issue order)", i, id, i)
		}
	}
}

func TestConcurrentFigureSixScenario(t *testing.T) {
	// Figure 6: v is the initial tail; x and y request simultaneously.
	// Tree: path v - u - w with x, y hanging off u and w.
	//
	//   v(0) - u(1) - w(2)
	//          |      |
	//          x(3)   y(4)
	parent := []graph.NodeID{0, 0, 1, 1, 2}
	pw := []graph.Weight{0, 1, 1, 1, 1}
	tr, err := tree.FromParents(0, parent, pw)
	if err != nil {
		t.Fatal(err)
	}
	set := queuing.NewSet([]queuing.Request{
		{Node: 3, Time: 0}, // x
		{Node: 4, Time: 0}, // y
	})
	res, err := Run(tr, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Both requests must queue, one behind the root, the other behind it.
	if len(res.Order) != 2 {
		t.Fatalf("order has %d entries, want 2", len(res.Order))
	}
	first := res.Completions[res.Order[0]]
	second := res.Completions[res.Order[1]]
	if first.PredID != -1 {
		t.Errorf("first request predecessor = %d, want -1", first.PredID)
	}
	if second.PredID != res.Order[0] {
		t.Errorf("second request predecessor = %d, want %d", second.PredID, res.Order[0])
	}
	if res.FinalSink != set[res.Order[1]].Node {
		t.Errorf("final sink = %d, want last queued request's node %d",
			res.FinalSink, set[res.Order[1]].Node)
	}
}

func TestTotalOrderInvariants(t *testing.T) {
	// Arrow must produce a valid total order for arbitrary concurrent
	// workloads: every request exactly once, predecessor chain intact.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(28)
		g := graph.GNP(n, 0.3, int64(trial))
		tr, err := tree.BFS(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		set := workload.Poisson(n, 0.8, sim.Time(2*n), int64(trial*13+1))
		if len(set) == 0 {
			continue
		}
		res, err := Run(tr, set, Options{Root: 0, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !queuing.ValidOrder(res.Order, len(set)) {
			t.Fatalf("trial %d: order is not a permutation", trial)
		}
		// Pointer invariant: links lead to the unique sink, which is the
		// origin of the last queued request.
		last := set[res.Order[len(res.Order)-1]]
		if res.FinalSink != last.Node {
			t.Errorf("trial %d: final sink %d != last request node %d",
				trial, res.FinalSink, last.Node)
		}
		// Hop bound: every request travels at most the tree's hop diameter.
		a, b := tr.DiameterEndpoints()
		maxHops := tr.Hops(a, b)
		for _, c := range res.Completions {
			if c.Hops > maxHops {
				t.Errorf("trial %d: request %d used %d hops > hop-diameter %d",
					trial, c.Req.ID, c.Hops, maxHops)
			}
		}
	}
}

func TestLemma39TimeSeparatedOrdering(t *testing.T) {
	// Lemma 3.9: if tj − ti > dT(vi, vj), arrow orders ri before rj.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(20)
		tr := tree.BalancedBinary(n)
		set := workload.Poisson(n, 0.5, sim.Time(3*n), int64(trial))
		if len(set) < 2 {
			continue
		}
		res, err := Run(tr, set, Options{Root: 0})
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, len(set))
		for p, id := range res.Order {
			pos[id] = p
		}
		for i := range set {
			for j := range set {
				if set[j].Time-set[i].Time > tr.Dist(set[i].Node, set[j].Node) {
					if pos[i] > pos[j] {
						t.Errorf("trial %d: r%d (t=%d) ordered after r%d (t=%d) despite gap > dT",
							trial, i, set[i].Time, j, set[j].Time)
					}
				}
			}
		}
	}
}

func TestAsynchronousRunsComplete(t *testing.T) {
	for _, model := range []sim.LatencyModel{
		sim.AsyncUniform(5),
		sim.AsyncBimodal(5, 0.2),
	} {
		tr := tree.BalancedBinary(31)
		set := workload.Bursty(31, 8, 3, 40, 3)
		res, err := Run(tr, set, Options{Root: 0, Latency: model, Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		if !queuing.ValidOrder(res.Order, len(set)) {
			t.Errorf("%s: invalid order", model.Name())
		}
	}
}

func TestArbitrationInvariance(t *testing.T) {
	// The protocol completes and produces a valid order under any local
	// arbitration of simultaneous messages.
	tr := tree.BalancedBinary(31)
	set := workload.OneShot(31, 16, 5)
	for _, arb := range []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom} {
		res, err := Run(tr, set, Options{Root: 0, Arbitration: arb, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", arb, err)
		}
		if !queuing.ValidOrder(res.Order, len(set)) {
			t.Errorf("%v: invalid order", arb)
		}
	}
}

func TestDeterminism(t *testing.T) {
	tr := tree.BalancedBinary(31)
	set := workload.Poisson(31, 0.6, 100, 9)
	r1, err := Run(tr, set, Options{Root: 0, Latency: sim.AsyncUniform(4), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tr, set, Options{Root: 0, Latency: sim.AsyncUniform(4), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalLatency != r2.TotalLatency || r1.Makespan != r2.Makespan {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)",
			r1.TotalLatency, r1.Makespan, r2.TotalLatency, r2.Makespan)
	}
	for i := range r1.Order {
		if r1.Order[i] != r2.Order[i] {
			t.Fatalf("orders diverge at %d", i)
		}
	}
}

func TestMultipleRequestsSameNode(t *testing.T) {
	tr := tree.BalancedBinary(7)
	set := queuing.NewSet([]queuing.Request{
		{Node: 3, Time: 0},
		{Node: 3, Time: 1}, // issued while the first is still in flight
		{Node: 5, Time: 1},
		{Node: 3, Time: 2},
	})
	res, err := Run(tr, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !queuing.ValidOrder(res.Order, len(set)) {
		t.Fatal("invalid order")
	}
	// The second and later requests of node 3 are queued directly behind
	// its previous request (local completion): node 3 is its own sink.
	pos := make([]int, len(set))
	for p, id := range res.Order {
		pos[id] = p
	}
	if pos[0] > pos[1] || pos[1] > pos[3] {
		t.Errorf("same-node requests reordered: positions %v", pos)
	}
}

func TestVerifySinkReachabilityRejectsCycle(t *testing.T) {
	tr := paperExampleTree(t)
	links := []graph.NodeID{1, 0, 0, 1, 1, 2} // 0 -> 1 -> 0 cycle
	if _, err := VerifySinkReachability(tr, links); err == nil {
		t.Error("expected cycle detection error")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	tr := paperExampleTree(t)
	if _, err := Run(tr, queuing.Set{{ID: 0, Node: 99, Time: 0}}, Options{Root: 0}); err == nil {
		t.Error("expected error for out-of-range node")
	}
	if _, err := Run(tr, queuing.Set{}, Options{Root: 77}); err == nil {
		t.Error("expected error for out-of-range root")
	}
}

func TestClosedLoopSmall(t *testing.T) {
	tr := tree.BalancedBinary(8)
	res, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: 10}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 80 {
		t.Errorf("requests = %d, want 80", res.Requests)
	}
	if res.AvgQueueHops() < 0 || res.AvgQueueHops() > float64(tr.NumNodes()) {
		t.Errorf("avg hops = %f out of range", res.AvgQueueHops())
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %d, want > 0", res.Makespan)
	}
}

func TestClosedLoopSingleNode(t *testing.T) {
	tr := tree.BalancedBinary(1)
	res, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: 5}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 5 {
		t.Errorf("requests = %d, want 5", res.Requests)
	}
	if res.QueueHops != 0 {
		t.Errorf("queue hops = %d, want 0 (all local)", res.QueueHops)
	}
}
