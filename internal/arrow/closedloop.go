package arrow

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/tree"
)

// LoopConfig drives the closed-loop workload of the paper's experiments
// (Section 5): every processor issues PerNode queuing requests, each
// issued immediately (after ThinkTime units of local processing) once the
// previous one is known to be complete. Completion is signalled to the
// requester by a reply message routed over the tree, except when the
// request finds its predecessor locally.
//
// The shared run knobs (PerNode, ThinkTime, Latency, Arbitration, Seed,
// Recorder, Scheduler, Faults, Workers, LinkTxTime) live in the embedded
// loop.Spec; only arrow-specific extensions are declared here.
//
// Arrow's fault semantics refine loop.Spec.Faults: a queue message
// dropped by a fault corrupts the pointer state (the loser's region
// splits off); once the network heals, the driver freezes new issues,
// drains in-flight requests, runs the message-driven self-stabilizing
// repair (stabilize.Engine) over the same simulator, and re-issues every
// lost request. The plan must be Healing: a permanently dead entity
// leaves requests unservable and the run errors at drain.
type LoopConfig struct {
	loop.Spec
	// Root is the initial sink.
	Root graph.NodeID
	// FaultObserver, when non-nil, is told each fault transition (for
	// tracing).
	FaultObserver func(sim.FaultEvent)
	// RepairObserver, when non-nil, is told each repair-protocol step
	// (for tracing).
	RepairObserver func(stabilize.RepairEvent)
}

// LoopResult aggregates a closed-loop run. Counters rather than
// per-request records keep multi-million-request runs cheap.
type LoopResult struct {
	// N is the node count, Requests the total completed requests.
	N        int
	Requests int64
	// Makespan is the total simulated time to drain all requests — the
	// quantity Figure 10 plots.
	Makespan sim.Time
	// QueueHops counts queue-message link traversals; QueueHops/Requests
	// is the quantity Figure 11 plots.
	QueueHops int64
	// ReplyHops counts completion-notification link traversals (the
	// paper does not charge these to the queuing protocol; reported
	// separately).
	ReplyHops int64
	// LocalCompletions counts requests whose predecessor was found
	// locally (zero queue messages).
	LocalCompletions int64
	// TotalLatency sums per-request queuing latencies (Definition 3.2).
	TotalLatency int64
	// MaxQueueHops is the worst single-request hop count.
	MaxQueueHops int
	// Events is the number of simulator events the run consumed
	// (messages + timers) — deterministic for a fixed config.
	Events int64
	// Fault/recovery counters, all zero in fault-free runs. The field
	// set and order deliberately match loop.Result and
	// centralized.LoopResult so the engine adapter maps every protocol
	// through one conversion.
	//
	// Dropped counts messages lost to faults, Deferred messages stalled
	// by them (policy FaultQueue). Reissued counts requests re-issued
	// after their queue message was lost, RepliesLost completion
	// notifications lost in transit (recovered by a timer at heal).
	// Affected counts completed requests a fault touched — the
	// complement of the availability fraction. RepairEpisodes /
	// RepairMessages / RepairTime account the self-stabilizing repair
	// runs in the same message/latency currency as the protocol.
	Dropped        int64
	Deferred       int64
	Reissued       int64
	RepliesLost    int64
	Affected       int64
	RepairEpisodes int64
	RepairMessages int64
	RepairTime     sim.Time
}

// AvgQueueHops returns queue-message hops per queuing operation —
// Figure 11's metric.
func (r *LoopResult) AvgQueueHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueueHops) / float64(r.Requests)
}

// AvgLatency returns mean per-request queuing latency.
func (r *LoopResult) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

// arrowMsg is the closed-loop driver's message family (the repair
// engine's messages are stabilize's own family); the marker method lets
// arrowlint's msgswitch analyzer check switch exhaustiveness.
type arrowMsg interface{ isArrowMsg() }

type loopReply struct {
	origin graph.NodeID
}

type loopFind struct {
	origin graph.NodeID
}

func (*loopReply) isArrowMsg() {}
func (*loopFind) isArrowMsg()  {}

// loopState is O(n), not O(PerNode·n): a node's next request issues only
// after the completion notification for its previous one, so at most one
// request per node is in flight and all per-request bookkeeping can be
// keyed by the issuing node — at the paper's scale (100k requests per
// node) per-request arrays would cost hundreds of MB per sweep cell. The
// arrays are flat struct-of-arrays slabs with narrow element types, so a
// million-node run's driver state is a few dozen MB with zero per-node
// boxing.
type loopState struct {
	t   tree.Nav
	cfg LoopConfig

	link []graph.NodeID

	issueTime []sim.Time
	hops      []int32

	// Pre-boxed messages, one per node: queue and reply forwarding pass
	// the same pointer at every hop, avoiding per-send interface boxing,
	// and a node's successive requests reuse its slot.
	msgs    []loopFind
	replies []loopReply

	remaining []int32

	// resS has one accumulator slot per drain shard (one slot on serial
	// runs): counters land in resS[ctx.Shard()], so no two workers share
	// a counter; the slots merge into the returned LoopResult after the
	// run (integer sums and a max — order-independent, hence
	// bit-identical to serial accumulation).
	resS []LoopResult

	// fs is the fault/recovery state, nil in fault-free runs: the hot
	// path pays one nil check per issue/completion.
	fs *faultLoopState
}

// faultLoopState is the arrow loop's degraded-mode machinery: loss
// detection (the simulator reports each dropped message), a
// freeze/drain/repair/re-issue cycle around the embedded stabilize
// engine, and the availability accounting.
type faultLoopState struct {
	eng *stabilize.Engine
	// lost marks nodes whose current request's queue message was lost;
	// they re-issue after repair. parked marks nodes whose next issue
	// fired during a freeze and waits for repair to finish. affected
	// marks requests a fault touched, counted at completion.
	lost     []bool
	parked   []bool
	affected []bool
	// inFlight counts issued-but-not-completed-or-lost requests — the
	// drain condition before repair may run.
	inFlight int
	// frozen gates new issues while a repair is pending or running;
	// corrupted records that a queue-message drop corrupted the pointer
	// state since the last repair.
	frozen    bool
	corrupted bool
	// repairing marks an engine episode in flight; repairStart stamps
	// the accounting.
	repairing   bool
	repairStart sim.Time
}

// RunClosedLoop executes the closed-loop experiment on tree t — any
// tree.Nav: the explicit lifted *tree.Tree, or an implicit navigator
// (tree.Walker, tree.GridNav) for million-node runs. Fault plans
// require the explicit tree (the stabilize repair engine traverses
// adjacency the implicit navigators do not materialize).
func RunClosedLoop(t tree.Nav, cfg LoopConfig) (*LoopResult, error) {
	n := t.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("arrow: PerNode must be >= 1")
	}
	if int(cfg.Root) < 0 || int(cfg.Root) >= n {
		return nil, fmt.Errorf("arrow: root %d out of range", cfg.Root)
	}
	if err := cfg.Faults.Validate(sim.TreeTopology{T: t}); err != nil {
		return nil, err
	}
	if cfg.Faults != nil && !cfg.Faults.Healing() {
		return nil, fmt.Errorf("arrow: closed loop requires a healing fault plan (every down matched by an up)")
	}
	var liftedTree *tree.Tree
	if cfg.Faults != nil {
		lt, ok := t.(*tree.Tree)
		if !ok {
			return nil, fmt.Errorf("arrow: fault plans require an explicit *tree.Tree (got %T)", t)
		}
		liftedTree = lt
	}
	workers := cfg.Workers
	if workers > 1 && (cfg.Arbitration != sim.ArbFIFO || cfg.Scheduler != sim.SchedLadder || cfg.Faults != nil) {
		workers = 1
	}
	if workers < 1 {
		workers = 1
	}
	think := cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	total := int64(cfg.PerNode) * int64(n)
	st := &loopState{
		t:         t,
		cfg:       cfg,
		link:      initialLinks(t, cfg.Root),
		issueTime: make([]sim.Time, n),
		hops:      make([]int32, n),
		msgs:      make([]loopFind, n),
		replies:   make([]loopReply, n),
		remaining: make([]int32, n),
		resS:      make([]LoopResult, workers),
	}
	for v := range st.remaining {
		st.remaining[v] = int32(cfg.PerNode)
		st.msgs[v].origin = graph.NodeID(v)
		st.replies[v].origin = graph.NodeID(v)
	}
	// Divergence guard: each request costs at most ~2n message events
	// plus a timer; saturating arithmetic keeps the guard sane at scales
	// where the product overflows int64. Faulty runs add repair traffic
	// and re-issues, bounded by the plan's episode count.
	budget := sim.SatAdd(sim.SatMul(total, int64(4*n+8)), 1024)
	if cfg.Faults != nil {
		budget = sim.SatMul(budget, 4)
	}
	scfg := sim.Config{
		Topology:    sim.TreeTopology{T: t},
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   budget,
		Scheduler:   cfg.Scheduler,
		Faults:      cfg.Faults,
		Workers:     workers,
		LinkTxTime:  cfg.LinkTxTime,
	}
	if err := scfg.Validate(); err != nil {
		return nil, fmt.Errorf("arrow closed loop: %w", err)
	}
	s := sim.New(scfg)
	if cfg.Faults != nil {
		st.fs = &faultLoopState{
			lost:     make([]bool, n),
			parked:   make([]bool, n),
			affected: make([]bool, n),
		}
		st.fs.eng = stabilize.NewEngine(liftedTree, st.link, stabilize.EngineConfig{
			Observer: cfg.RepairObserver,
			OnDone:   st.repairDone,
		})
		s.SetBlockedHandler(st.onBlocked)
		s.SetFaultObserver(st.onFault)
	}
	s.SetAllHandlers(st.handle)
	// Issue timers dispatch by node through the TimerHandler: neither the
	// initial injection nor the per-request re-issue captures a closure.
	s.SetTimerHandler(st.issue)
	for v := 0; v < n; v++ {
		s.ScheduleNodeAt(0, graph.NodeID(v))
	}
	makespan := s.Run()
	if cfg.DrainStats != nil {
		*cfg.DrainStats = s.DrainStats()
	}
	res := st.merge()
	res.N = n
	res.Makespan = makespan
	res.Events = s.EventsProcessed()
	res.Dropped = s.MessagesDropped()
	res.Deferred = s.MessagesDeferred()
	if fs := st.fs; fs != nil {
		res.RepairEpisodes = int64(fs.eng.Episodes())
		res.RepairMessages = fs.eng.Messages()
	}
	if res.Requests != total {
		if fs := st.fs; fs != nil {
			lost, parked := 0, 0
			for v := range fs.lost {
				if fs.lost[v] {
					lost++
				}
				if fs.parked[v] {
					parked++
				}
			}
			return nil, fmt.Errorf("arrow: closed loop completed %d of %d requests (lost=%d parked=%d inFlight=%d frozen=%v repairing=%v corrupted=%v)",
				res.Requests, total, lost, parked, fs.inFlight, fs.frozen, fs.repairing, fs.corrupted)
		}
		return nil, fmt.Errorf("arrow: closed loop completed %d of %d requests", res.Requests, total)
	}
	if _, err := followLinks(t, st.link); err != nil {
		return nil, err
	}
	return res, nil
}

// merge folds the per-shard accumulator slots into one LoopResult.
func (st *loopState) merge() *LoopResult {
	res := &LoopResult{}
	for i := range st.resS {
		r := &st.resS[i]
		res.Requests += r.Requests
		res.QueueHops += r.QueueHops
		res.ReplyHops += r.ReplyHops
		res.LocalCompletions += r.LocalCompletions
		res.TotalLatency += r.TotalLatency
		res.Reissued += r.Reissued
		res.RepliesLost += r.RepliesLost
		res.Affected += r.Affected
		res.RepairTime += r.RepairTime
		if r.MaxQueueHops > res.MaxQueueHops {
			res.MaxQueueHops = r.MaxQueueHops
		}
	}
	return res
}

// onFault watches liveness transitions: once the network fully heals
// after a corrupting drop, the loop freezes new issues, drains, and
// repairs.
func (st *loopState) onFault(ctx *sim.Context, ev sim.FaultEvent) {
	if st.cfg.FaultObserver != nil {
		st.cfg.FaultObserver(ev)
	}
	fs := st.fs
	if fs.corrupted && ctx.ActiveFaults() == 0 {
		fs.frozen = true
		st.tryRepair(ctx)
	}
}

// onBlocked is told each message a fault dropped or stalled. A dropped
// queue message corrupts the pointer state — its requester's region
// split off when it initiated — so repair is armed; a dropped reply only
// delays the requester, recovered by a timer at the heal instant.
func (st *loopState) onBlocked(ctx *sim.Context, from, to graph.NodeID, msg sim.Message, upAt sim.Time, dropped bool) {
	fs := st.fs
	switch m := msg.(type) {
	case *loopFind:
		fs.affected[m.origin] = true
		if dropped && !fs.lost[m.origin] {
			fs.lost[m.origin] = true
			fs.corrupted = true
			fs.inFlight--
			st.tryRepair(ctx)
		}
	case *loopReply:
		fs.affected[m.origin] = true
		if dropped {
			st.resS[ctx.Shard()].RepliesLost++
			if upAt != sim.FaultNever {
				// The request completed; its issuer just never heard.
				// Resume its loop once the blocking entity recovers.
				ctx.AfterNode(upAt-ctx.Now()+1, m.origin)
			}
		}
	default:
		if fs.eng.Owns(msg) {
			// A fault caught the repair itself: abort the episode (its
			// time still counts as repair downtime); the next heal
			// re-runs it from the current pointer state.
			if dropped && fs.eng.Running() {
				fs.eng.Abort()
				st.resS[ctx.Shard()].RepairTime += ctx.Now() - fs.repairStart
				fs.repairing = false
			}
		}
	}
}

// tryRepair starts a repair episode once the loop is frozen, the network
// healed, and every in-flight request drained (completed or lost).
func (st *loopState) tryRepair(ctx *sim.Context) {
	fs := st.fs
	if !fs.frozen || fs.repairing || fs.inFlight > 0 || ctx.ActiveFaults() != 0 {
		return
	}
	fs.repairing = true
	fs.repairStart = ctx.Now()
	fs.eng.Begin(ctx)
}

// repairDone unfreezes the loop: lost requests re-issue against the
// repaired pointer state and parked nodes resume.
func (st *loopState) repairDone(ctx *sim.Context, converged bool) {
	fs := st.fs
	st.resS[ctx.Shard()].RepairTime += ctx.Now() - fs.repairStart
	fs.repairing = false
	fs.frozen = false
	fs.corrupted = false
	for v := range fs.parked {
		if fs.lost[v] || fs.parked[v] {
			fs.parked[v] = false
			ctx.AfterNode(1, graph.NodeID(v))
		}
	}
}

//arrow:hotpath one call per request issued (BenchmarkClosedLoopObserved)
func (st *loopState) issue(ctx *sim.Context, v graph.NodeID) {
	if fs := st.fs; fs != nil {
		if fs.frozen {
			// A repair is pending or running: park the issue; repairDone
			// resumes it.
			fs.parked[v] = true
			return
		}
		if fs.lost[v] {
			st.reissue(ctx, v)
			return
		}
	}
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	st.issueTime[v] = ctx.Now()
	st.hops[v] = 0
	if st.fs != nil {
		st.fs.inFlight++
	}

	if st.link[v] == v {
		// The total order itself is not retained in closed-loop runs, so
		// queuing behind the node's previous request is purely local.
		st.completeAt(ctx, v, v)
		return
	}
	target := st.link[v]
	st.link[v] = v
	st.hops[v]++
	ctx.Send(v, target, &st.msgs[v])
}

// reissue re-initiates a request whose queue message a fault destroyed.
// Repair has restored a legal pointer state by now; the request keeps
// its original issue time, so its latency carries the outage — exactly
// what the churn experiment's tail quantiles measure.
func (st *loopState) reissue(ctx *sim.Context, v graph.NodeID) {
	fs := st.fs
	fs.lost[v] = false
	fs.inFlight++
	st.resS[ctx.Shard()].Reissued++
	st.hops[v] = 0
	if st.link[v] == v {
		// Repair elected v's region the survivor: the request queues
		// locally behind whatever merged in.
		st.completeAt(ctx, v, v)
		return
	}
	target := st.link[v]
	st.link[v] = v
	st.hops[v]++
	ctx.Send(v, target, &st.msgs[v])
}

//arrow:hotpath one call per delivered find/reply message
func (st *loopState) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *loopFind:
		next := st.link[at]
		st.link[at] = from
		if next != at {
			st.hops[m.origin]++
			ctx.Send(at, next, m)
			return
		}
		st.completeAt(ctx, m.origin, at)
	case *loopReply:
		if at == m.origin {
			st.scheduleNext(ctx, at)
			return
		}
		st.resS[ctx.Shard()].ReplyHops++
		ctx.Send(at, st.t.NextHop(at, m.origin), m)
	default:
		if fs := st.fs; fs != nil && fs.eng.Owns(msg) {
			fs.eng.Handle(ctx, at, from, msg)
			return
		}
		panic(fmt.Sprintf("arrow: unexpected message %T", msg))
	}
}

// completeAt records the queuing of origin's current request at the sink
// and notifies the requester so it can issue its next request. Counters
// land in the context's shard slot and the recording routes through the
// context, which keeps the parallel drain race-free and its histogram
// accumulation order serial.
func (st *loopState) completeAt(ctx *sim.Context, origin, sink graph.NodeID) {
	res := &st.resS[ctx.Shard()]
	lat := int64(ctx.Now() - st.issueTime[origin])
	res.Requests++
	res.TotalLatency += lat
	res.QueueHops += int64(st.hops[origin])
	if int(st.hops[origin]) > res.MaxQueueHops {
		res.MaxQueueHops = int(st.hops[origin])
	}
	ctx.RecordRequest(st.cfg.Recorder, lat, int(st.hops[origin]))
	if fs := st.fs; fs != nil {
		fs.inFlight--
		if fs.affected[origin] {
			res.Affected++
			fs.affected[origin] = false
		}
		if fs.frozen {
			st.tryRepair(ctx)
		}
	}
	if origin == sink {
		res.LocalCompletions++
		st.scheduleNext(ctx, origin)
		return
	}
	res.ReplyHops++
	ctx.Send(sink, st.t.NextHop(sink, origin), &st.replies[origin])
}

func (st *loopState) scheduleNext(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	think := st.cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	ctx.AfterNode(think, v)
}
