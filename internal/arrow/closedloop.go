package arrow

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// LoopConfig drives the closed-loop workload of the paper's experiments
// (Section 5): every processor issues PerNode queuing requests, each
// issued immediately (after ThinkTime units of local processing) once the
// previous one is known to be complete. Completion is signalled to the
// requester by a reply message routed over the tree, except when the
// request finds its predecessor locally.
type LoopConfig struct {
	// Root is the initial sink.
	Root graph.NodeID
	// PerNode is the number of requests each node issues.
	PerNode int
	// ThinkTime is the delay between learning completion and issuing the
	// next request; 0 defaults to 1 (one local processing step).
	ThinkTime sim.Time
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and hop count as it completes (fixed-memory streaming
	// observability at any request count). The completion hot path does
	// no recording work when nil.
	Recorder stats.Recorder
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
}

// LoopResult aggregates a closed-loop run. Counters rather than
// per-request records keep multi-million-request runs cheap.
type LoopResult struct {
	// N is the node count, Requests the total completed requests.
	N        int
	Requests int64
	// Makespan is the total simulated time to drain all requests — the
	// quantity Figure 10 plots.
	Makespan sim.Time
	// QueueHops counts queue-message link traversals; QueueHops/Requests
	// is the quantity Figure 11 plots.
	QueueHops int64
	// ReplyHops counts completion-notification link traversals (the
	// paper does not charge these to the queuing protocol; reported
	// separately).
	ReplyHops int64
	// LocalCompletions counts requests whose predecessor was found
	// locally (zero queue messages).
	LocalCompletions int64
	// TotalLatency sums per-request queuing latencies (Definition 3.2).
	TotalLatency int64
	// MaxQueueHops is the worst single-request hop count.
	MaxQueueHops int
	// Events is the number of simulator events the run consumed
	// (messages + timers) — deterministic for a fixed config.
	Events int64
}

// AvgQueueHops returns queue-message hops per queuing operation —
// Figure 11's metric.
func (r *LoopResult) AvgQueueHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueueHops) / float64(r.Requests)
}

// AvgLatency returns mean per-request queuing latency.
func (r *LoopResult) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

type loopReply struct {
	origin graph.NodeID
}

type loopFind struct {
	origin graph.NodeID
}

// loopState is O(n), not O(PerNode·n): a node's next request issues only
// after the completion notification for its previous one, so at most one
// request per node is in flight and all per-request bookkeeping can be
// keyed by the issuing node — at the paper's scale (100k requests per
// node) per-request arrays would cost hundreds of MB per sweep cell.
type loopState struct {
	t   *tree.Tree
	cfg LoopConfig

	link []graph.NodeID

	issueTime []sim.Time
	hops      []int

	// Pre-boxed messages, one per node: queue and reply forwarding pass
	// the same pointer at every hop, avoiding per-send interface boxing,
	// and a node's successive requests reuse its slot.
	msgs    []loopFind
	replies []loopReply

	remaining []int
	res       *LoopResult
}

// RunClosedLoop executes the closed-loop experiment on tree t.
func RunClosedLoop(t *tree.Tree, cfg LoopConfig) (*LoopResult, error) {
	n := t.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("arrow: PerNode must be >= 1")
	}
	if int(cfg.Root) < 0 || int(cfg.Root) >= n {
		return nil, fmt.Errorf("arrow: root %d out of range", cfg.Root)
	}
	think := cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	total := int64(cfg.PerNode) * int64(n)
	st := &loopState{
		t:         t,
		cfg:       cfg,
		link:      initialLinks(t, cfg.Root),
		issueTime: make([]sim.Time, n),
		hops:      make([]int, n),
		msgs:      make([]loopFind, n),
		replies:   make([]loopReply, n),
		remaining: make([]int, n),
		res:       &LoopResult{N: n},
	}
	for v := range st.remaining {
		st.remaining[v] = cfg.PerNode
		st.msgs[v].origin = graph.NodeID(v)
		st.replies[v].origin = graph.NodeID(v)
	}

	s := sim.New(sim.Config{
		Topology:    sim.TreeTopology{T: t},
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		// Generous divergence guard: each request costs at most ~2n
		// message events plus a timer; saturating arithmetic keeps the
		// guard sane at scales where the product overflows int64.
		MaxEvents: sim.SatAdd(sim.SatMul(total, int64(4*n+8)), 1024),
		Scheduler: cfg.Scheduler,
	})
	s.SetAllHandlers(st.handle)
	// Issue timers dispatch by node through the TimerHandler: neither the
	// initial injection nor the per-request re-issue captures a closure.
	s.SetTimerHandler(st.issue)
	for v := 0; v < n; v++ {
		s.ScheduleNodeAt(0, graph.NodeID(v))
	}
	st.res.Makespan = s.Run()
	st.res.Events = s.EventsProcessed()
	if st.res.Requests != total {
		return nil, fmt.Errorf("arrow: closed loop completed %d of %d requests", st.res.Requests, total)
	}
	if _, err := followLinks(t, st.link); err != nil {
		return nil, err
	}
	return st.res, nil
}

func (st *loopState) issue(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	st.issueTime[v] = ctx.Now()
	st.hops[v] = 0

	if st.link[v] == v {
		// The total order itself is not retained in closed-loop runs, so
		// queuing behind the node's previous request is purely local.
		st.completeAt(ctx, v, v)
		return
	}
	target := st.link[v]
	st.link[v] = v
	st.hops[v]++
	ctx.Send(v, target, &st.msgs[v])
}

func (st *loopState) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *loopFind:
		next := st.link[at]
		st.link[at] = from
		if next != at {
			st.hops[m.origin]++
			ctx.Send(at, next, m)
			return
		}
		st.completeAt(ctx, m.origin, at)
	case *loopReply:
		if at == m.origin {
			st.scheduleNext(ctx, at)
			return
		}
		st.res.ReplyHops++
		ctx.Send(at, st.t.NextHop(at, m.origin), m)
	default:
		panic(fmt.Sprintf("arrow: unexpected message %T", msg))
	}
}

// completeAt records the queuing of origin's current request at the sink
// and notifies the requester so it can issue its next request.
func (st *loopState) completeAt(ctx *sim.Context, origin, sink graph.NodeID) {
	lat := int64(ctx.Now() - st.issueTime[origin])
	st.res.Requests++
	st.res.TotalLatency += lat
	st.res.QueueHops += int64(st.hops[origin])
	if st.hops[origin] > st.res.MaxQueueHops {
		st.res.MaxQueueHops = st.hops[origin]
	}
	if st.cfg.Recorder != nil {
		st.cfg.Recorder.RecordRequest(lat, st.hops[origin])
	}
	if origin == sink {
		st.res.LocalCompletions++
		st.scheduleNext(ctx, origin)
		return
	}
	st.res.ReplyHops++
	ctx.Send(sink, st.t.NextHop(sink, origin), &st.replies[origin])
}

func (st *loopState) scheduleNext(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	think := st.cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	ctx.AfterNode(think, v)
}
