package arrow_test

import (
	"fmt"

	"repro/internal/arrow"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
)

// ExampleRun demonstrates the protocol on the paper's running scenario:
// two nodes issue concurrent requests on a small spanning tree rooted at
// node 0.
func ExampleRun() {
	t := tree.BalancedBinary(7) // node 0 root; children 2i+1, 2i+2
	set := queuing.NewSet([]queuing.Request{
		{Node: 5, Time: 0},
		{Node: 6, Time: 0},
	})
	res, err := arrow.Run(t, set, arrow.Options{Root: 0})
	if err != nil {
		panic(err)
	}
	for _, id := range res.Order {
		c := res.Completions[id]
		fmt.Printf("request at v%d queued behind %d with latency %d\n",
			c.Req.Node, c.PredID, c.Latency())
	}
	fmt.Println("final sink:", res.FinalSink)
	// Output:
	// request at v5 queued behind -1 with latency 2
	// request at v6 queued behind 0 with latency 2
	// final sink: 6
}

// ExampleRunClosedLoop reproduces a miniature Figure 10 measurement: the
// makespan of a saturated closed-loop run.
func ExampleRunClosedLoop() {
	t := tree.BalancedBinary(4)
	res, err := arrow.RunClosedLoop(t, arrow.LoopConfig{Spec: loop.Spec{PerNode: 3}, Root: 0})
	if err != nil {
		panic(err)
	}
	fmt.Println("requests completed:", res.Requests)
	fmt.Println("all local or remote:", res.LocalCompletions+(res.Requests-res.LocalCompletions) == res.Requests)
	// Output:
	// requests completed: 12
	// all local or remote: true
}

// ExampleOptions_asynchronous shows an asynchronous run with seeded
// random delays (Section 3.8): same API, different latency model.
func ExampleOptions_asynchronous() {
	t := tree.BalancedBinary(7)
	set := queuing.NewSet([]queuing.Request{
		{Node: 3, Time: 0},
		{Node: 4, Time: 0},
		{Node: 5, Time: 0},
	})
	res, err := arrow.Run(t, set, arrow.Options{
		Root:    0,
		Latency: sim.AsyncUniform(4),
		Seed:    42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("requests queued:", len(res.Order))
	fmt.Println("order is a permutation:", queuing.ValidOrder(res.Order, len(set)))
	// Output:
	// requests queued: 3
	// order is a permutation: true
}
