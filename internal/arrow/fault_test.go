package arrow

import (
	"reflect"
	"testing"

	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/stabilize"
	"repro/internal/tree"
)

// faultLoop runs a closed loop under the given plan and sanity-checks
// the shared invariants: every request completes, the final pointer
// state is legal, and the counters are internally consistent.
func faultLoop(t *testing.T, tr *tree.Tree, plan *sim.FaultPlan, perNode int) *LoopResult {
	t.Helper()
	res, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(perNode) * int64(tr.NumNodes()); res.Requests != want {
		t.Fatalf("completed %d of %d requests", res.Requests, want)
	}
	if res.Affected > res.Requests {
		t.Fatalf("affected %d exceeds requests %d", res.Affected, res.Requests)
	}
	if res.Reissued > 0 && res.RepairEpisodes == 0 {
		t.Fatalf("requests re-issued without a repair episode: %+v", res)
	}
	return res
}

// TestClosedLoopSurvivesLinkChurn is the arrow tentpole end to end: tree
// links fail and heal under load, dropped queue messages corrupt the
// pointer state, the embedded message-driven repair restores it, and
// every lost request re-issues and completes.
func TestClosedLoopSurvivesLinkChurn(t *testing.T) {
	tr := tree.BalancedBinary(31)
	plan := &sim.FaultPlan{Events: sim.LinkChurn(sim.TreeLinks(tr), 2, 30, 20, 800, 5)}
	res := faultLoop(t, tr, plan, 40)
	if res.Dropped == 0 {
		t.Fatal("churn plan dropped nothing; the scenario is vacuous")
	}
	if res.Reissued == 0 || res.RepairEpisodes == 0 || res.RepairMessages == 0 {
		t.Fatalf("no recovery activity despite drops: %+v", res)
	}
	if res.RepairTime <= 0 {
		t.Fatalf("repair consumed no simulated time: %+v", res)
	}
	if res.Affected == 0 {
		t.Fatalf("drops recorded but no request marked affected: %+v", res)
	}
}

// TestClosedLoopSurvivesNodeChurn: node failures (timers deferred,
// deliveries dropped) recover the same way.
func TestClosedLoopSurvivesNodeChurn(t *testing.T) {
	tr := tree.BalancedBinary(24)
	plan := &sim.FaultPlan{Events: sim.NodeChurn(24, nil, 1.5, 25, 30, 700, 9)}
	res := faultLoop(t, tr, plan, 30)
	if res.Dropped == 0 {
		t.Skip("plan dropped nothing at this seed; covered by link churn")
	}
}

// TestClosedLoopQueuePolicyLosesNothing: under FaultQueue messages stall
// instead of dropping — no corruption, no repair, everything completes.
func TestClosedLoopQueuePolicyLosesNothing(t *testing.T) {
	tr := tree.BalancedBinary(15)
	plan := &sim.FaultPlan{
		Policy: sim.FaultQueue,
		Events: sim.LinkChurn(sim.TreeLinks(tr), 2, 20, 10, 400, 3),
	}
	res := faultLoop(t, tr, plan, 25)
	if res.Dropped != 0 {
		t.Fatalf("queue policy dropped %d messages", res.Dropped)
	}
	if res.RepairEpisodes != 0 || res.Reissued != 0 {
		t.Fatalf("queue policy triggered recovery machinery: %+v", res)
	}
	if res.Deferred == 0 {
		t.Fatal("plan deferred nothing; the scenario is vacuous")
	}
	if res.Affected == 0 {
		t.Fatal("deferred messages did not mark requests affected")
	}
}

// TestClosedLoopFaultRunsDeterministic: the full fault/repair cycle is
// reproducible — two identical runs return identical results.
func TestClosedLoopFaultRunsDeterministic(t *testing.T) {
	tr := tree.BalancedBinary(31)
	plan := &sim.FaultPlan{Events: sim.LinkChurn(sim.TreeLinks(tr), 2, 30, 20, 800, 5)}
	a := faultLoop(t, tr, plan, 40)
	b := faultLoop(t, tr, plan, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestClosedLoopEmptyPlanBitIdentical: a nil plan and an empty plan
// produce byte-identical results — the acceptance criterion protecting
// the pinned BENCH_perf metrics.
func TestClosedLoopEmptyPlanBitIdentical(t *testing.T) {
	tr := tree.BalancedBinary(31)
	base, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: 50}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: 50, Faults: &sim.FaultPlan{}}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, empty) {
		t.Fatalf("empty plan diverged from nil plan:\n nil:   %+v\n empty: %+v", base, empty)
	}
}

// TestClosedLoopRejectsNonHealingPlan: a permanent failure leaves
// requests unservable; the driver refuses the plan up front.
func TestClosedLoopRejectsNonHealingPlan(t *testing.T) {
	tr := tree.PathTree(4)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{{At: 5, Kind: sim.NodeDown, U: 2}}}
	if _, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: 3, Faults: plan}, Root: 0}); err == nil {
		t.Fatal("non-healing plan accepted")
	}
}

// TestClosedLoopScriptedOutage pins the episode structure on a scripted
// single-link outage: tracing observers see the fault transitions and a
// repair run, in order.
func TestClosedLoopScriptedOutage(t *testing.T) {
	tr := tree.PathTree(6)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 7, Kind: sim.LinkDown, U: 2, V: 3},
		{At: 40, Kind: sim.LinkUp, U: 2, V: 3},
	}}
	var faults []sim.FaultEvent
	var repairs []stabilize.RepairEvent
	res, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: 10, Faults: plan}, Root: 0, FaultObserver: func(ev sim.FaultEvent) { faults = append(faults, ev) }, RepairObserver: func(ev stabilize.RepairEvent) { repairs = append(repairs, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 || faults[0].Kind != sim.LinkDown || faults[1].Kind != sim.LinkUp {
		t.Fatalf("fault observer saw %v", faults)
	}
	if res.Dropped > 0 {
		if len(repairs) == 0 {
			t.Fatal("drops occurred but no repair events observed")
		}
		last := repairs[len(repairs)-1]
		if last.Kind != stabilize.RepDone {
			t.Fatalf("repair log does not end in convergence: %v", last.Kind)
		}
	}
	if want := int64(60); res.Requests != want {
		t.Fatalf("completed %d of %d", res.Requests, want)
	}
}
