package arrow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/workload"
)

// randomInstance builds a random connected graph, a BFS spanning tree,
// and a random dynamic workload from a seed.
func randomInstance(seed int64) (*tree.Tree, queuing.Set) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(40)
	g := graph.GNP(n, 0.25, seed)
	t, err := tree.BFS(g, graph.NodeID(rng.Intn(n)))
	if err != nil {
		panic(err)
	}
	set := workload.Poisson(n, 0.3+rng.Float64(), sim.Time(2*n+1), seed)
	return t, set
}

// Property: the queuing order is always a permutation, for any instance
// and any delay model.
func TestPropertyOrderIsPermutation(t *testing.T) {
	prop := func(seed int64) bool {
		tr, set := randomInstance(seed)
		if len(set) == 0 {
			return true
		}
		for _, lat := range []sim.LatencyModel{nil, sim.AsyncUniform(3)} {
			res, err := Run(tr, set, Options{Root: tr.Root(), Latency: lat, Seed: seed})
			if err != nil {
				return false
			}
			if !queuing.ValidOrder(res.Order, len(set)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eq. (2) — arrow's total latency equals the sum of tree
// distances between consecutive origins in its own order, in the
// synchronous model.
func TestPropertyCostEqualsOrderDistance(t *testing.T) {
	prop := func(seed int64) bool {
		tr, set := randomInstance(seed)
		if len(set) == 0 {
			return true
		}
		res, err := Run(tr, set, Options{Root: tr.Root(), Seed: seed})
		if err != nil {
			return false
		}
		ca := queuing.CA(func(u, v graph.NodeID) graph.Weight { return tr.Dist(u, v) })
		return res.TotalLatency == queuing.OrderCost(set, tr.Root(), res.Order, ca)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: per-request latency equals dT(predecessor origin, origin) in
// the synchronous model (eq. (1)) — not just in total.
func TestPropertyPerRequestLatencyIsTreeDistance(t *testing.T) {
	prop := func(seed int64) bool {
		tr, set := randomInstance(seed)
		if len(set) == 0 {
			return true
		}
		res, err := Run(tr, set, Options{Root: tr.Root(), Seed: seed})
		if err != nil {
			return false
		}
		prev := queuing.RootRequest(tr.Root())
		for _, id := range res.Order {
			c := res.Completions[id]
			if c.Latency() != tr.Dist(prev.Node, set[id].Node) {
				return false
			}
			prev = set[id]
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hops per request equal the tree hop-distance between
// consecutive origins (messages travel the direct tree path — Demmer and
// Herlihy's Lemma, used for eq. (1)).
func TestPropertyHopsAreTreePathLengths(t *testing.T) {
	prop := func(seed int64) bool {
		tr, set := randomInstance(seed)
		if len(set) == 0 {
			return true
		}
		res, err := Run(tr, set, Options{Root: tr.Root(), Seed: seed})
		if err != nil {
			return false
		}
		prev := tr.Root()
		for _, id := range res.Order {
			c := res.Completions[id]
			if c.Hops != tr.Hops(prev, set[id].Node) {
				return false
			}
			prev = set[id].Node
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the asynchronous latency of each request never exceeds the
// synchronous worst case dT (message delays are at most 1 per unit
// weight after scaling).
func TestPropertyAsyncLatencyBounded(t *testing.T) {
	prop := func(seed int64) bool {
		tr, set := randomInstance(seed)
		if len(set) == 0 {
			return true
		}
		scale := int64(4)
		scaled := make([]queuing.Request, len(set))
		for i, r := range set {
			scaled[i] = queuing.Request{Node: r.Node, Time: r.Time * scale}
		}
		sset := queuing.NewSet(scaled)
		res, err := Run(tr, sset, Options{
			Root:    tr.Root(),
			Latency: sim.AsyncUniform(scale),
			Seed:    seed,
		})
		if err != nil {
			return false
		}
		prev := tr.Root()
		for _, id := range res.Order {
			c := res.Completions[id]
			// Worst case: issued, then waited for the predecessor's
			// reversal, then travelled dT at worst-case speed. The loose
			// but always-valid bound is the makespan.
			if c.Latency() > int64(res.Makespan) {
				return false
			}
			if c.Latency() < 0 {
				return false
			}
			prev = sset[id].Node
		}
		_ = prev
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the final sink is the origin of the last request in arrow's
// order, under every arbitration policy.
func TestPropertyFinalSinkIsLastOrigin(t *testing.T) {
	prop := func(seed int64) bool {
		tr, set := randomInstance(seed)
		if len(set) == 0 {
			return true
		}
		for _, arb := range []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom} {
			res, err := Run(tr, set, Options{Root: tr.Root(), Arbitration: arb, Seed: seed})
			if err != nil {
				return false
			}
			if res.FinalSink != set[res.Order[len(res.Order)-1]].Node {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the one-shot regime orders requests so that consecutive
// origins' distances telescope within 2x the tree weight — a smoke-level
// consequence of the NN characterization (no NN step can exceed the
// remaining span). Checked via the Lemma 3.13-style longest-edge bound:
// in the one-shot case every cT edge is a dT value <= D.
func TestPropertyOneShotEdgesWithinDiameter(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := graph.GNP(n, 0.3, seed)
		tr, err := tree.BFS(g, 0)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(n)
		set := workload.OneShot(n, k, seed)
		res, err := Run(tr, set, Options{Root: 0, Seed: seed})
		if err != nil {
			return false
		}
		d := tr.Diameter()
		prev := tr.Root()
		for _, id := range res.Order {
			if tr.Dist(prev, set[id].Node) > d {
				return false
			}
			prev = set[id].Node
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: closed-loop runs conserve request counts and never lose
// track of hops under any latency model.
func TestPropertyClosedLoopConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		per := 1 + rng.Intn(12)
		tr := tree.BalancedBinary(n)
		res, err := RunClosedLoop(tr, LoopConfig{Spec: loop.Spec{PerNode: per, Latency: sim.AsyncUniform(2), Seed: seed}, Root: graph.NodeID(rng.Intn(n))})
		if err != nil {
			return false
		}
		if res.Requests != int64(n*per) {
			return false
		}
		return res.QueueHops >= 0 && res.LocalCompletions <= res.Requests
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
