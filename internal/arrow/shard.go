package arrow

import (
	"fmt"

	"repro/internal/graph"
)

// ShardForest is arrow's multi-object pointer state: k independent
// arrow instances, each running the protocol on its own balanced binary
// spanning tree over the same n nodes. Object o's tree is object 0's
// tree rotated by o's root — node v plays the role of label
// (v - root_o) mod n in a binary heap rooted at root_o = o mod n — so
// the k trees share no root and spread both the root hotspot and the
// per-link traffic across the whole network, while every tree keeps the
// O(log n) depth the protocol's competitive bound charges.
//
// The flat link array is keyed by (object, node); each entry is the
// node's arrow for that object and is touched only by events at that
// node, which is what makes the stepper shard-safe (see
// shard.ShardSafe).
type ShardForest struct {
	n    int
	link []graph.NodeID
}

// NewShardForest builds the k rotated trees with every arrow pointing
// toward the object's root (the initial tail holder). O(k·n) space.
func NewShardForest(n, k int) (*ShardForest, error) {
	if n < 1 {
		return nil, fmt.Errorf("arrow: shard forest needs n >= 1, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("arrow: shard forest needs k >= 1 objects, got %d", k)
	}
	f := &ShardForest{n: n, link: make([]graph.NodeID, k*n)}
	for o := 0; o < k; o++ {
		root := o % n
		base := o * n
		for v := 0; v < n; v++ {
			l := v - root
			if l < 0 {
				l += n
			}
			if l == 0 {
				// The root's arrow points to itself: it holds the tail.
				f.link[base+v] = graph.NodeID(v)
				continue
			}
			p := (l-1)/2 + root
			if p >= n {
				p -= n
			}
			f.link[base+v] = graph.NodeID(p)
		}
	}
	return f, nil
}

// StartFind begins a request for obj at v: a self arrow means v already
// holds the object's tail; otherwise the request follows the arrow and
// v's arrow flips to self (the new pending tail direction).
func (f *ShardForest) StartFind(obj int32, v graph.NodeID) (graph.NodeID, bool) {
	i := int(obj)*f.n + int(v)
	if f.link[i] == v {
		return v, true
	}
	target := f.link[i]
	f.link[i] = v
	return target, false
}

// ForwardFind applies arrow's path reversal for obj at node at: the
// arrow flips back toward the previous hop, and a self arrow means the
// chase found the tail here.
func (f *ShardForest) ForwardFind(obj int32, at, from, origin graph.NodeID) (graph.NodeID, bool) {
	i := int(obj)*f.n + int(at)
	next := f.link[i]
	f.link[i] = from
	if next == at {
		return at, true
	}
	return next, false
}

// ShardSafeStepper marks the forest safe for the parallel drain: every
// link entry is keyed by the node whose events touch it, across all
// objects.
func (f *ShardForest) ShardSafeStepper() {}
