// Package centralized implements the centralized queuing protocol the
// paper compares against in Section 5: a globally known central node
// stores the current tail of the total order; every queuing request costs
// one message to the central node and one message back. The central node
// serializes request processing (one message per service-time unit),
// which is what produces the linear slowdown of Figure 10 as the system
// grows.
//
// Messages travel over the graph's shortest paths (MetricTopology), so on
// a complete graph each of the two messages is a single hop, exactly as
// in the paper's SP2 setup.
package centralized

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// Options configures a centralized-protocol run.
type Options struct {
	// Center is the central node (queue-tail holder).
	Center graph.NodeID
	// ServiceTime is the time the central node needs per request message;
	// 0 defaults to 1. This models the serialization bottleneck.
	ServiceTime sim.Time
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
}

// Completion records the queuing of one request by the centralized
// protocol.
type Completion struct {
	Req queuing.Request
	// PredID is the predecessor request ID (-1 = the virtual root).
	PredID int
	// At is when the requester received the reply naming its predecessor
	// (the experiment's completion definition in Section 5).
	At sim.Time
	// Hops is the physical link traversals of the request + reply pair.
	Hops int
}

// Latency returns At − issue time.
func (c Completion) Latency() int64 { return int64(c.At - c.Req.Time) }

// Result aggregates a static-set centralized run.
type Result struct {
	Set          queuing.Set
	Completions  []Completion
	Order        queuing.Order
	TotalLatency int64
	TotalHops    int64
	Makespan     sim.Time
}

// seqMsg is the static (request-set) run's message family, distinct
// from the closed-loop family in closedloop.go; the marker method lets
// arrowlint's msgswitch analyzer check switch exhaustiveness.
type seqMsg interface{ isSeqMsg() }

type reqMsg struct {
	reqID  int
	origin graph.NodeID
}

type replyMsg struct {
	reqID  int
	predID int
}

func (reqMsg) isSeqMsg()   {}
func (replyMsg) isSeqMsg() {}

// engine holds the central node's serialization state, shared by static
// and closed-loop runs.
type engine struct {
	center    graph.NodeID
	service   sim.Time
	busyUntil sim.Time
	lastReq   int // last request granted a queue position; -1 = root
}

// serve admits one request message at the central node at the current
// time, assigns its predecessor, and invokes done(predID) when the
// center's serialized processing of it finishes.
func (e *engine) serve(ctx *sim.Context, done func(ctx *sim.Context, predID int)) {
	start := ctx.Now()
	if e.busyUntil > start {
		start = e.busyUntil
	}
	finish := start + e.service
	e.busyUntil = finish
	pred := e.lastReq
	ctx.After(finish-ctx.Now(), func(ctx *sim.Context) { done(ctx, pred) })
}

// Run executes the centralized protocol for a static request set over
// graph g.
func Run(g *graph.Graph, set queuing.Set, opts Options) (*Result, error) {
	if err := set.Validate(g.NumNodes()); err != nil {
		return nil, err
	}
	if int(opts.Center) < 0 || int(opts.Center) >= g.NumNodes() {
		return nil, fmt.Errorf("centralized: center %d out of range", opts.Center)
	}
	service := opts.ServiceTime
	if service <= 0 {
		service = 1
	}
	topo := sim.NewMetricTopology(g)
	s := sim.New(sim.Config{
		Topology:    topo,
		Latency:     opts.Latency,
		Arbitration: opts.Arbitration,
		Seed:        opts.Seed,
		MaxEvents:   sim.SatAdd(sim.SatMul(int64(len(set)), 16), 1024),
		Scheduler:   opts.Scheduler,
	})
	res := &Result{
		Set:         set,
		Completions: make([]Completion, len(set)),
	}
	for i := range res.Completions {
		res.Completions[i].PredID = -2
	}
	eng := &engine{center: opts.Center, service: service, lastReq: -1}
	completed := 0
	record := func(reqID, predID int, at sim.Time) {
		c := &res.Completions[reqID]
		if c.PredID != -2 {
			panic("centralized: request completed twice")
		}
		hops := 0
		if origin := set[reqID].Node; origin != eng.center {
			hops = topo.Hops(origin, eng.center) + topo.Hops(eng.center, origin)
		}
		*c = Completion{Req: set[reqID], PredID: predID, At: at, Hops: hops}
		res.TotalHops += int64(hops)
		completed++
	}
	admit := func(ctx *sim.Context, reqID int, origin graph.NodeID) {
		eng.serve(ctx, func(ctx *sim.Context, pred int) {
			if origin == eng.center {
				record(reqID, pred, ctx.Now())
				return
			}
			ctx.Send(eng.center, origin, replyMsg{reqID: reqID, predID: pred})
		})
		eng.lastReq = reqID
	}

	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		switch m := msg.(type) {
		case reqMsg:
			if at != eng.center {
				panic("centralized: request message at non-center node")
			}
			admit(ctx, m.reqID, m.origin)
		case replyMsg:
			record(m.reqID, m.predID, ctx.Now())
		default:
			panic(fmt.Sprintf("centralized: unexpected message %T", msg))
		}
	})
	for _, r := range set {
		req := r
		s.ScheduleAt(req.Time, func(ctx *sim.Context) {
			if req.Node == eng.center {
				admit(ctx, req.ID, req.Node)
				return
			}
			ctx.Send(req.Node, eng.center, reqMsg{reqID: req.ID, origin: req.Node})
		})
	}
	res.Makespan = s.Run()
	if completed != len(set) {
		return nil, fmt.Errorf("centralized: completed %d of %d requests", completed, len(set))
	}
	succ := make(map[int]int, len(set))
	for i, c := range res.Completions {
		if _, dup := succ[c.PredID]; dup {
			return nil, fmt.Errorf("centralized: duplicate successor for request %d", c.PredID)
		}
		succ[c.PredID] = i
	}
	order := make(queuing.Order, 0, len(set))
	cur, ok := succ[-1]
	for ok {
		order = append(order, cur)
		cur, ok = succ[cur]
	}
	if len(order) != len(set) {
		return nil, fmt.Errorf("centralized: broken predecessor chain")
	}
	res.Order = order
	for _, c := range res.Completions {
		res.TotalLatency += c.Latency()
	}
	return res, nil
}
