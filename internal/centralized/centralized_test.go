package centralized

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/workload"
)

func TestSingleRemoteRequest(t *testing.T) {
	g := graph.Complete(4)
	set := queuing.NewSet([]queuing.Request{{Node: 2, Time: 0}})
	res, err := Run(g, set, Options{Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Completions[0]
	if c.PredID != -1 {
		t.Errorf("pred = %d, want -1", c.PredID)
	}
	// Unit latency to center, 1 service unit, unit latency back = 3.
	if c.Latency() != 3 {
		t.Errorf("latency = %d, want 3", c.Latency())
	}
	if c.Hops != 2 {
		t.Errorf("hops = %d, want 2 (one message each way)", c.Hops)
	}
}

func TestCenterLocalRequest(t *testing.T) {
	g := graph.Complete(4)
	set := queuing.NewSet([]queuing.Request{{Node: 0, Time: 0}})
	res, err := Run(g, set, Options{Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0].Hops != 0 {
		t.Errorf("local request hops = %d, want 0", res.Completions[0].Hops)
	}
	if res.Completions[0].Latency() != 1 {
		t.Errorf("local request latency = %d, want 1 (service only)", res.Completions[0].Latency())
	}
}

func TestSerializationBottleneck(t *testing.T) {
	// n simultaneous requests: the center serves one per time unit, so
	// the last reply leaves at time >= n.
	g := graph.Complete(9)
	var reqs []queuing.Request
	for v := 1; v < 9; v++ {
		reqs = append(reqs, queuing.Request{Node: graph.NodeID(v), Time: 0})
	}
	res, err := Run(g, queuing.NewSet(reqs), Options{Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 8+2 {
		t.Errorf("makespan = %d, want >= 10 (8 service + 2 network)", res.Makespan)
	}
	// The queue order must reflect the serialization: a permutation.
	if !queuing.ValidOrder(res.Order, len(reqs)) {
		t.Error("invalid order")
	}
}

func TestOrderIsArrivalOrder(t *testing.T) {
	g := graph.Complete(6)
	set := queuing.NewSet([]queuing.Request{
		{Node: 1, Time: 0},
		{Node: 2, Time: 10},
		{Node: 3, Time: 20},
	})
	res, err := Run(g, set, Options{Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range res.Order {
		if id != i {
			t.Errorf("order[%d] = %d, want %d (well-separated = arrival order)", i, id, i)
		}
	}
}

func TestRunRejectsBadCenter(t *testing.T) {
	g := graph.Complete(3)
	if _, err := Run(g, queuing.Set{}, Options{Center: 9}); err == nil {
		t.Error("expected center range error")
	}
}

func TestClosedLoopScalesLinearly(t *testing.T) {
	// The defining property of the centralized baseline: makespan grows
	// ~linearly with node count under saturation (Figure 10's contrast).
	per := 50
	var prev int64
	for _, n := range []int{4, 8, 16, 32} {
		g := graph.Complete(n)
		res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: per}, Center: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != int64(per*n) {
			t.Fatalf("n=%d: completed %d, want %d", n, res.Requests, per*n)
		}
		// Service serialization alone forces makespan >= total requests.
		if int64(res.Makespan) < int64(per*(n-1)) {
			t.Errorf("n=%d: makespan %d too small for serialized center", n, res.Makespan)
		}
		if prev > 0 && int64(res.Makespan) < prev*3/2 {
			t.Errorf("n=%d: makespan %d did not grow ~linearly from %d", n, res.Makespan, prev)
		}
		prev = int64(res.Makespan)
	}
}

func TestClosedLoopAveragesAndValidation(t *testing.T) {
	g := graph.Complete(8)
	res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 20}, Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency() <= 0 {
		t.Error("avg latency should be positive")
	}
	if res.AvgHops() <= 0 || res.AvgHops() > 2 {
		t.Errorf("avg hops = %f, want in (0,2]", res.AvgHops())
	}
	if _, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 0}, Center: 0}); err == nil {
		t.Error("expected PerNode validation error")
	}
}

func TestStaticRunWithDynamicWorkload(t *testing.T) {
	g := graph.Complete(16)
	set := workload.Poisson(16, 0.4, 100, 5)
	if len(set) == 0 {
		t.Skip("empty workload draw")
	}
	res, err := Run(g, set, Options{Center: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !queuing.ValidOrder(res.Order, len(set)) {
		t.Error("invalid order")
	}
	if res.TotalLatency < int64(len(set)) {
		t.Errorf("total latency %d implausibly small", res.TotalLatency)
	}
}
