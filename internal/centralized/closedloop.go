package centralized

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/sim"
)

// LoopConfig drives the closed-loop centralized experiment matching
// arrow.RunClosedLoop: every node issues PerNode requests, each issued
// ThinkTime after the reply for the previous one arrives. The shared run
// knobs live in the embedded loop.Spec, with centralized-specific
// refinements:
//
//   - Recorder receives the queue-side hop count (0 for requests issued
//     at the center) alongside each queuing latency.
//   - Faults runs with coordinator-failure semantics: when the center
//     dies the system is unavailable until a deterministic failover —
//     after FailoverDelay the smallest live node becomes the new
//     (sticky) center, requests caught at the old center re-issue there,
//     and dropped requests/replies retry once the blocking entity or the
//     failover completes. The plan must be Healing.
//   - Workers is accepted for config symmetry but always normalizes to a
//     serial run: the center is a global serialization point (busyUntil
//     is shared mutable state), so the lookahead-windowed drain has nothing
//     to shard. Results are identical at any value.
type LoopConfig struct {
	loop.Spec
	// Center is the coordinator node.
	Center graph.NodeID
	// ServiceTime is the center's per-request serialization time (0 = 1).
	ServiceTime sim.Time
	// FailoverDelay is the unavailability window after a center failure
	// before the replacement center serves (0 = 8 time units).
	FailoverDelay sim.Time
}

// LoopResult aggregates a closed-loop centralized run. Request traffic
// (node -> center) and reply traffic (center -> node) are counted
// separately so comparisons against arrow charge the same sides of the
// round trip: QueueHops matches arrow's queue messages, ReplyHops its
// completion notifications.
type LoopResult struct {
	N        int
	Requests int64
	Makespan sim.Time
	// QueueHops counts physical link traversals of request messages.
	QueueHops int64
	// ReplyHops counts physical link traversals of reply messages.
	ReplyHops int64
	// LocalCompletions counts requests issued at the center itself
	// (zero messages), mirroring the other protocols' local counters.
	LocalCompletions int64
	// TotalLatency sums issue -> queued-at-center latencies (arrival
	// plus the serialization wait) — the same endpoint the other
	// protocols' loop results measure; the reply leg is notification
	// traffic, charged to ReplyHops only.
	TotalLatency int64
	// MaxQueueHops is the worst single-request queue-side hop count.
	// The field set and order deliberately match loop.Result, so the
	// engine adapter maps every protocol through one conversion.
	MaxQueueHops int
	// Events is the number of simulator events the run consumed
	// (messages + timers) — deterministic for a fixed config.
	Events int64
	// Fault/recovery counters, all zero in fault-free runs; the field
	// set and order match arrow.LoopResult and loop.Result so the
	// engine adapter maps every protocol through one conversion. The
	// Repair* fields stay zero: the centralized protocol recovers by
	// failover and re-issue, not distributed repair.
	Dropped        int64
	Deferred       int64
	Reissued       int64
	RepliesLost    int64
	Affected       int64
	RepairEpisodes int64
	RepairMessages int64
	RepairTime     sim.Time
}

// AvgLatency returns mean queuing latency per request.
func (r *LoopResult) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

// AvgHops returns mean physical link traversals per request, both
// directions of the round trip combined.
func (r *LoopResult) AvgHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueueHops+r.ReplyHops) / float64(r.Requests)
}

// clMsg is the closed-loop driver's message family; the marker method
// lets arrowlint's msgswitch analyzer check switch exhaustiveness.
type clMsg interface{ isClMsg() }

type loopReq struct{ origin graph.NodeID }

type loopReply struct{}

func (*loopReq) isClMsg()   {}
func (*loopReply) isClMsg() {}

// clState is the closed-loop driver state, O(n) like the other
// protocols' loops: at most one request per node is in flight, so issue
// times key by node and the pre-boxed request message is reused across a
// node's successive requests. Node timers carry only the node, so the
// per-node serving flag distinguishes the two timer meanings — a
// serve-finish at the center for v's request vs v's own think-time
// re-issue tick — which are never pending simultaneously for one node
// (a request must be replied to before its issuer thinks again).
type clState struct {
	cfg       LoopConfig
	topo      sim.Topology
	center    graph.NodeID
	service   sim.Time
	think     sim.Time
	busyUntil sim.Time

	issued    []sim.Time
	serving   []bool
	msgs      []loopReq
	rep       loopReply
	remaining []int32
	res       *LoopResult

	// Failover state, used only under faults. epoch identifies the
	// current coordinator regime; a request admitted under an older
	// epoch was caught at a failed center and re-issues. failoverSeq
	// guards against superseded failover timers.
	lost        []bool
	affected    []bool
	serveEpoch  []int64
	epoch       int64
	failoverAt  sim.Time
	nextCenter  graph.NodeID
	failoverSeq int64
	failDelay   sim.Time
}

// RunClosedLoop executes the closed-loop centralized experiment on g.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	return RunClosedLoopTopo(sim.NewMetricTopology(g), cfg)
}

// RunClosedLoopTopo is RunClosedLoop over an arbitrary metric topology;
// the implicit sim.CompleteTopology keeps million-node runs free of the
// O(n²) distance matrix.
func RunClosedLoopTopo(topo sim.Topology, cfg LoopConfig) (*LoopResult, error) {
	n := topo.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("centralized: PerNode must be >= 1")
	}
	if int(cfg.Center) < 0 || int(cfg.Center) >= n {
		return nil, fmt.Errorf("centralized: center %d out of range", cfg.Center)
	}
	think := cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	service := cfg.ServiceTime
	if service <= 0 {
		service = 1
	}
	total := int64(cfg.PerNode) * int64(n)
	st := &clState{
		cfg:       cfg,
		topo:      topo,
		center:    cfg.Center,
		service:   service,
		think:     think,
		issued:    make([]sim.Time, n),
		serving:   make([]bool, n),
		msgs:      make([]loopReq, n),
		remaining: make([]int32, n),
		res:       &LoopResult{N: n},
	}
	if err := cfg.Faults.Validate(st.topo); err != nil {
		return nil, fmt.Errorf("centralized: %w", err)
	}
	if cfg.Faults != nil && !cfg.Faults.Healing() {
		return nil, fmt.Errorf("centralized: closed loop requires a healing fault plan (every down matched by an up)")
	}
	for v := range st.remaining {
		st.remaining[v] = int32(cfg.PerNode)
		st.msgs[v].origin = graph.NodeID(v)
	}

	budget := sim.SatAdd(sim.SatMul(total, 16), 1024)
	if cfg.Faults != nil {
		budget = sim.SatMul(budget, 4)
	}
	scfg := sim.Config{
		Topology:    st.topo,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   budget,
		Scheduler:   cfg.Scheduler,
		Faults:      cfg.Faults,
		LinkTxTime:  cfg.LinkTxTime,
	}
	if err := scfg.Validate(); err != nil {
		return nil, fmt.Errorf("centralized closed loop: %w", err)
	}
	s := sim.New(scfg)
	if cfg.Faults != nil {
		st.lost = make([]bool, n)
		st.affected = make([]bool, n)
		st.serveEpoch = make([]int64, n)
		st.failDelay = cfg.FailoverDelay
		if st.failDelay <= 0 {
			st.failDelay = 8
		}
		s.SetFaultObserver(st.onFault)
		s.SetBlockedHandler(st.onBlocked)
	}
	s.SetAllHandlers(st.handle)
	s.SetTimerHandler(st.timer)
	for v := 0; v < n; v++ {
		s.ScheduleNodeAt(0, graph.NodeID(v))
	}
	st.res.Makespan = s.Run()
	if cfg.DrainStats != nil {
		// Always the serial drain (window width 1, zero parallel
		// windows); filled for config symmetry with the other drivers.
		*cfg.DrainStats = s.DrainStats()
	}
	st.res.Events = s.EventsProcessed()
	st.res.Dropped = s.MessagesDropped()
	st.res.Deferred = s.MessagesDeferred()
	if st.res.Requests != total {
		return nil, fmt.Errorf("centralized: closed loop completed %d of %d", st.res.Requests, total)
	}
	return st.res, nil
}

// onFault reacts to the effective coordinator dying: after FailoverDelay
// the smallest live node becomes the new center (sticky — the old center
// returning does not reclaim the role). A failure of the
// pending replacement re-arms the failover.
func (st *clState) onFault(ctx *sim.Context, ev sim.FaultEvent) {
	if ev.Kind != sim.NodeDown {
		return
	}
	effective := st.center
	if st.failoverAt > ctx.Now() {
		effective = st.nextCenter
	}
	if ev.U != effective {
		return
	}
	st.armFailover(ctx, ev.U)
}

// armFailover elects a replacement for the failed coordinator and
// schedules the takeover after the failover window.
func (st *clState) armFailover(ctx *sim.Context, failed graph.NodeID) {
	st.nextCenter = st.pickCenter(ctx, failed)
	st.failoverAt = ctx.Now() + st.failDelay
	st.failoverSeq++
	seq := st.failoverSeq
	ctx.After(st.failDelay, func(ctx *sim.Context) {
		if seq != st.failoverSeq {
			return // superseded by a newer failover
		}
		if ctx.NodeDownUntil(st.nextCenter) != 0 {
			// The elected replacement died during the failover window —
			// possibly at this very instant, which onFault cannot see
			// (fault transitions at time T apply before this timer, and
			// the pending-failover check there excludes T itself). Elect
			// again rather than install a dead coordinator.
			st.armFailover(ctx, st.nextCenter)
			return
		}
		st.center = st.nextCenter
		st.epoch++
		st.busyUntil = ctx.Now()
	})
}

// pickCenter deterministically elects the smallest live node other than
// the failed one (falling back to the failed node itself if everything
// is down — the retries then wait out the heal).
func (st *clState) pickCenter(ctx *sim.Context, failed graph.NodeID) graph.NodeID {
	for v := 0; v < st.res.N; v++ {
		node := graph.NodeID(v)
		if node != failed && ctx.NodeDownUntil(node) == 0 {
			return node
		}
	}
	return failed
}

// onBlocked retries requests and replies a fault destroyed: a dropped
// request re-issues once the failover (or the blocking entity) resolves;
// a dropped reply only resumes the requester's loop.
func (st *clState) onBlocked(ctx *sim.Context, from, to graph.NodeID, msg sim.Message, upAt sim.Time, dropped bool) {
	switch m := msg.(type) {
	case *loopReq:
		st.affected[m.origin] = true
		if dropped {
			st.lost[m.origin] = true
			st.retryAt(ctx, m.origin, upAt)
		}
	case *loopReply:
		st.affected[to] = true
		if dropped {
			st.res.RepliesLost++
			st.retryAt(ctx, to, upAt)
		}
	}
}

func (st *clState) retryAt(ctx *sim.Context, v graph.NodeID, upAt sim.Time) {
	// Prefer the failover instant when one is pending: the replacement
	// center serves long before a dead center heals.
	if st.failoverAt > ctx.Now() {
		ctx.AfterNode(st.failoverAt-ctx.Now()+1, v)
		return
	}
	if upAt == sim.FaultNever {
		return // unserviceable; the drain check reports the shortfall
	}
	ctx.AfterNode(upAt-ctx.Now()+1, v)
}

func (st *clState) timer(ctx *sim.Context, v graph.NodeID) {
	if st.serving[v] {
		st.serving[v] = false
		if st.serveEpoch != nil && st.serveEpoch[v] != st.epoch {
			// The serve was running at a center that failed before the
			// request could queue: it is lost with the coordinator and
			// re-issues against the replacement.
			st.affected[v] = true
			st.lost[v] = true
			st.retryAt(ctx, v, ctx.Now())
			return
		}
		st.queued(ctx, v)
		if v == st.center {
			st.scheduleNext(ctx, v)
			return
		}
		ctx.Send(st.center, v, &st.rep)
		return
	}
	st.issue(ctx, v)
}

//arrow:hotpath one call per delivered request/reply message
func (st *clState) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *loopReq:
		if at != st.center {
			if st.lost == nil {
				panic("centralized: request at non-center node")
			}
			// A request delivered to a node that lost the coordinator
			// role mid-flight (failover): redirect to the current center.
			st.affected[m.origin] = true
			ctx.Send(at, st.center, m)
			return
		}
		st.serve(ctx, m.origin)
	case *loopReply:
		st.scheduleNext(ctx, at)
	default:
		panic(fmt.Sprintf("centralized: unexpected message %T", msg))
	}
}

//arrow:hotpath one call per request issued
func (st *clState) issue(ctx *sim.Context, v graph.NodeID) {
	if st.lost != nil && st.lost[v] {
		// Re-issue the lost request against the current center, keeping
		// the original issue time so the latency carries the outage.
		st.lost[v] = false
		st.res.Reissued++
		if v == st.center {
			st.serve(ctx, v)
			return
		}
		ctx.Send(v, st.center, &st.msgs[v])
		return
	}
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	st.issued[v] = ctx.Now()
	if v == st.center {
		st.serve(ctx, v)
		return
	}
	ctx.Send(v, st.center, &st.msgs[v])
}

// serve admits v's request into the center's serialized processing and
// schedules its finish as a node timer for v.
func (st *clState) serve(ctx *sim.Context, v graph.NodeID) {
	start := ctx.Now()
	if st.busyUntil > start {
		start = st.busyUntil
	}
	finish := start + st.service
	st.busyUntil = finish
	st.serving[v] = true
	if st.serveEpoch != nil {
		st.serveEpoch[v] = st.epoch
	}
	ctx.AfterNode(finish-ctx.Now(), v)
}

// queued records v's request joining the total order at the center
// (after its serialization wait) — the latency endpoint every protocol's
// loop result measures, so the baselines column compares like with like.
// The reply only tells the requester to re-issue.
func (st *clState) queued(ctx *sim.Context, v graph.NodeID) {
	lat := int64(ctx.Now() - st.issued[v])
	st.res.Requests++
	st.res.TotalLatency += lat
	h := 0
	if v == st.center {
		st.res.LocalCompletions++
	} else {
		h = st.topo.Hops(v, st.center)
		st.res.QueueHops += int64(h)
		st.res.ReplyHops += int64(st.topo.Hops(st.center, v))
		if h > st.res.MaxQueueHops {
			st.res.MaxQueueHops = h
		}
	}
	if st.cfg.Recorder != nil {
		st.cfg.Recorder.RecordRequest(lat, h)
	}
	if st.affected != nil && st.affected[v] {
		st.res.Affected++
		st.affected[v] = false
	}
}

func (st *clState) scheduleNext(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] > 0 {
		ctx.AfterNode(st.think, v)
	}
}
