package centralized

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// LoopConfig drives the closed-loop centralized experiment matching
// arrow.RunClosedLoop: every node issues PerNode requests, each issued
// ThinkTime after the reply for the previous one arrives.
type LoopConfig struct {
	Center      graph.NodeID
	PerNode     int
	ThinkTime   sim.Time
	ServiceTime sim.Time
	Latency     sim.LatencyModel
	Arbitration sim.Arbitration
	Seed        int64
}

// LoopResult aggregates a closed-loop centralized run.
type LoopResult struct {
	N            int
	Requests     int64
	Makespan     sim.Time
	Hops         int64
	TotalLatency int64 // issue -> reply arrival, summed
}

// AvgLatency returns mean round-trip latency per request.
func (r *LoopResult) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

// AvgHops returns mean physical link traversals per request.
func (r *LoopResult) AvgHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Hops) / float64(r.Requests)
}

type loopReq struct {
	origin graph.NodeID
	issued sim.Time
}

type loopReply struct {
	issued sim.Time
}

// RunClosedLoop executes the closed-loop centralized experiment on g.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	n := g.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("centralized: PerNode must be >= 1")
	}
	if int(cfg.Center) < 0 || int(cfg.Center) >= n {
		return nil, fmt.Errorf("centralized: center %d out of range", cfg.Center)
	}
	think := cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	service := cfg.ServiceTime
	if service <= 0 {
		service = 1
	}
	topo := sim.NewMetricTopology(g)
	total := int64(cfg.PerNode) * int64(n)
	s := sim.New(sim.Config{
		Topology:    topo,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   total*16 + 1024,
	})
	res := &LoopResult{N: n}
	eng := &engine{center: cfg.Center, service: service, lastReq: -1}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = cfg.PerNode
	}

	var issue func(ctx *sim.Context, v graph.NodeID)
	complete := func(ctx *sim.Context, v graph.NodeID, issued sim.Time) {
		res.Requests++
		res.TotalLatency += int64(ctx.Now() - issued)
		if v != eng.center {
			res.Hops += int64(topo.Hops(v, eng.center) + topo.Hops(eng.center, v))
		}
		if remaining[v] > 0 {
			ctx.After(think, func(ctx *sim.Context) { issue(ctx, v) })
		}
	}
	issue = func(ctx *sim.Context, v graph.NodeID) {
		if remaining[v] == 0 {
			return
		}
		remaining[v]--
		issued := ctx.Now()
		if v == eng.center {
			eng.serve(ctx, func(ctx *sim.Context, _ int) { complete(ctx, v, issued) })
			return
		}
		ctx.Send(v, eng.center, loopReq{origin: v, issued: issued})
	}

	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		switch m := msg.(type) {
		case loopReq:
			if at != eng.center {
				panic("centralized: request at non-center node")
			}
			eng.serve(ctx, func(ctx *sim.Context, _ int) {
				ctx.Send(eng.center, m.origin, loopReply{issued: m.issued})
			})
		case loopReply:
			complete(ctx, at, m.issued)
		default:
			panic(fmt.Sprintf("centralized: unexpected message %T", msg))
		}
	})
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		s.ScheduleAt(0, func(ctx *sim.Context) { issue(ctx, node) })
	}
	res.Makespan = s.Run()
	if res.Requests != total {
		return nil, fmt.Errorf("centralized: closed loop completed %d of %d", res.Requests, total)
	}
	return res, nil
}
