package centralized

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LoopConfig drives the closed-loop centralized experiment matching
// arrow.RunClosedLoop: every node issues PerNode requests, each issued
// ThinkTime after the reply for the previous one arrives.
type LoopConfig struct {
	Center      graph.NodeID
	PerNode     int
	ThinkTime   sim.Time
	ServiceTime sim.Time
	Latency     sim.LatencyModel
	Arbitration sim.Arbitration
	Seed        int64
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and queue-side hop count (0 for requests issued at the
	// center) as it queues. The hot path does no recording work when nil.
	Recorder stats.Recorder
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
}

// LoopResult aggregates a closed-loop centralized run. Request traffic
// (node -> center) and reply traffic (center -> node) are counted
// separately so comparisons against arrow charge the same sides of the
// round trip: QueueHops matches arrow's queue messages, ReplyHops its
// completion notifications.
type LoopResult struct {
	N        int
	Requests int64
	Makespan sim.Time
	// QueueHops counts physical link traversals of request messages.
	QueueHops int64
	// ReplyHops counts physical link traversals of reply messages.
	ReplyHops int64
	// LocalCompletions counts requests issued at the center itself
	// (zero messages), mirroring the other protocols' local counters.
	LocalCompletions int64
	// TotalLatency sums issue -> queued-at-center latencies (arrival
	// plus the serialization wait) — the same endpoint the other
	// protocols' loop results measure; the reply leg is notification
	// traffic, charged to ReplyHops only.
	TotalLatency int64
	// MaxQueueHops is the worst single-request queue-side hop count.
	// The field set and order deliberately match loop.Result, so the
	// engine adapter maps every protocol through one conversion.
	MaxQueueHops int
	// Events is the number of simulator events the run consumed
	// (messages + timers) — deterministic for a fixed config.
	Events int64
}

// AvgLatency returns mean queuing latency per request.
func (r *LoopResult) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

// AvgHops returns mean physical link traversals per request, both
// directions of the round trip combined.
func (r *LoopResult) AvgHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueueHops+r.ReplyHops) / float64(r.Requests)
}

type loopReq struct{ origin graph.NodeID }

type loopReply struct{}

// clState is the closed-loop driver state, O(n) like the other
// protocols' loops: at most one request per node is in flight, so issue
// times key by node and the pre-boxed request message is reused across a
// node's successive requests. Node timers carry only the node, so the
// per-node serving flag distinguishes the two timer meanings — a
// serve-finish at the center for v's request vs v's own think-time
// re-issue tick — which are never pending simultaneously for one node
// (a request must be replied to before its issuer thinks again).
type clState struct {
	cfg       LoopConfig
	topo      *sim.MetricTopology
	center    graph.NodeID
	service   sim.Time
	think     sim.Time
	busyUntil sim.Time

	issued    []sim.Time
	serving   []bool
	msgs      []loopReq
	rep       loopReply
	remaining []int
	res       *LoopResult
}

// RunClosedLoop executes the closed-loop centralized experiment on g.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	n := g.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("centralized: PerNode must be >= 1")
	}
	if int(cfg.Center) < 0 || int(cfg.Center) >= n {
		return nil, fmt.Errorf("centralized: center %d out of range", cfg.Center)
	}
	think := cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	service := cfg.ServiceTime
	if service <= 0 {
		service = 1
	}
	total := int64(cfg.PerNode) * int64(n)
	st := &clState{
		cfg:       cfg,
		topo:      sim.NewMetricTopology(g),
		center:    cfg.Center,
		service:   service,
		think:     think,
		issued:    make([]sim.Time, n),
		serving:   make([]bool, n),
		msgs:      make([]loopReq, n),
		remaining: make([]int, n),
		res:       &LoopResult{N: n},
	}
	for v := range st.remaining {
		st.remaining[v] = cfg.PerNode
		st.msgs[v].origin = graph.NodeID(v)
	}

	s := sim.New(sim.Config{
		Topology:    st.topo,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   sim.SatAdd(sim.SatMul(total, 16), 1024),
		Scheduler:   cfg.Scheduler,
	})
	s.SetAllHandlers(st.handle)
	s.SetTimerHandler(st.timer)
	for v := 0; v < n; v++ {
		s.ScheduleNodeAt(0, graph.NodeID(v))
	}
	st.res.Makespan = s.Run()
	st.res.Events = s.EventsProcessed()
	if st.res.Requests != total {
		return nil, fmt.Errorf("centralized: closed loop completed %d of %d", st.res.Requests, total)
	}
	return st.res, nil
}

func (st *clState) timer(ctx *sim.Context, v graph.NodeID) {
	if st.serving[v] {
		st.serving[v] = false
		st.queued(ctx, v)
		if v == st.center {
			st.scheduleNext(ctx, v)
			return
		}
		ctx.Send(st.center, v, &st.rep)
		return
	}
	st.issue(ctx, v)
}

func (st *clState) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *loopReq:
		if at != st.center {
			panic("centralized: request at non-center node")
		}
		st.serve(ctx, m.origin)
	case *loopReply:
		st.scheduleNext(ctx, at)
	default:
		panic(fmt.Sprintf("centralized: unexpected message %T", msg))
	}
}

func (st *clState) issue(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	st.issued[v] = ctx.Now()
	if v == st.center {
		st.serve(ctx, v)
		return
	}
	ctx.Send(v, st.center, &st.msgs[v])
}

// serve admits v's request into the center's serialized processing and
// schedules its finish as a node timer for v.
func (st *clState) serve(ctx *sim.Context, v graph.NodeID) {
	start := ctx.Now()
	if st.busyUntil > start {
		start = st.busyUntil
	}
	finish := start + st.service
	st.busyUntil = finish
	st.serving[v] = true
	ctx.AfterNode(finish-ctx.Now(), v)
}

// queued records v's request joining the total order at the center
// (after its serialization wait) — the latency endpoint every protocol's
// loop result measures, so the baselines column compares like with like.
// The reply only tells the requester to re-issue.
func (st *clState) queued(ctx *sim.Context, v graph.NodeID) {
	lat := int64(ctx.Now() - st.issued[v])
	st.res.Requests++
	st.res.TotalLatency += lat
	h := 0
	if v == st.center {
		st.res.LocalCompletions++
	} else {
		h = st.topo.Hops(v, st.center)
		st.res.QueueHops += int64(h)
		st.res.ReplyHops += int64(st.topo.Hops(st.center, v))
		if h > st.res.MaxQueueHops {
			st.res.MaxQueueHops = h
		}
	}
	if st.cfg.Recorder != nil {
		st.cfg.Recorder.RecordRequest(lat, h)
	}
}

func (st *clState) scheduleNext(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] > 0 {
		ctx.AfterNode(st.think, v)
	}
}
