package centralized

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LoopConfig drives the closed-loop centralized experiment matching
// arrow.RunClosedLoop: every node issues PerNode requests, each issued
// ThinkTime after the reply for the previous one arrives.
type LoopConfig struct {
	Center      graph.NodeID
	PerNode     int
	ThinkTime   sim.Time
	ServiceTime sim.Time
	Latency     sim.LatencyModel
	Arbitration sim.Arbitration
	Seed        int64
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and queue-side hop count (0 for requests issued at the
	// center) as it queues. The hot path does no recording work when nil.
	Recorder stats.Recorder
}

// LoopResult aggregates a closed-loop centralized run. Request traffic
// (node -> center) and reply traffic (center -> node) are counted
// separately so comparisons against arrow charge the same sides of the
// round trip: QueueHops matches arrow's queue messages, ReplyHops its
// completion notifications.
type LoopResult struct {
	N        int
	Requests int64
	Makespan sim.Time
	// QueueHops counts physical link traversals of request messages.
	QueueHops int64
	// ReplyHops counts physical link traversals of reply messages.
	ReplyHops int64
	// LocalCompletions counts requests issued at the center itself
	// (zero messages), mirroring the other protocols' local counters.
	LocalCompletions int64
	// TotalLatency sums issue -> queued-at-center latencies (arrival
	// plus the serialization wait) — the same endpoint the other
	// protocols' loop results measure; the reply leg is notification
	// traffic, charged to ReplyHops only.
	TotalLatency int64
	// MaxQueueHops is the worst single-request queue-side hop count.
	// The field set and order deliberately match loop.Result, so the
	// engine adapter maps every protocol through one conversion.
	MaxQueueHops int
}

// AvgLatency returns mean queuing latency per request.
func (r *LoopResult) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

// AvgHops returns mean physical link traversals per request, both
// directions of the round trip combined.
func (r *LoopResult) AvgHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueueHops+r.ReplyHops) / float64(r.Requests)
}

type loopReq struct {
	origin graph.NodeID
	issued sim.Time
}

type loopReply struct{}

// RunClosedLoop executes the closed-loop centralized experiment on g.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	n := g.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("centralized: PerNode must be >= 1")
	}
	if int(cfg.Center) < 0 || int(cfg.Center) >= n {
		return nil, fmt.Errorf("centralized: center %d out of range", cfg.Center)
	}
	think := cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	service := cfg.ServiceTime
	if service <= 0 {
		service = 1
	}
	topo := sim.NewMetricTopology(g)
	total := int64(cfg.PerNode) * int64(n)
	s := sim.New(sim.Config{
		Topology:    topo,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   total*16 + 1024,
	})
	res := &LoopResult{N: n}
	eng := &engine{center: cfg.Center, service: service, lastReq: -1}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = cfg.PerNode
	}

	var issue func(ctx *sim.Context, v graph.NodeID)
	scheduleNext := func(ctx *sim.Context, v graph.NodeID) {
		if remaining[v] > 0 {
			ctx.After(think, func(ctx *sim.Context) { issue(ctx, v) })
		}
	}
	// queued records the request joining the total order at the center
	// (after its serialization wait) — the latency endpoint every
	// protocol's loop result measures, so the baselines column compares
	// like with like. The reply only tells the requester to re-issue.
	queued := func(ctx *sim.Context, v graph.NodeID, issued sim.Time) {
		lat := int64(ctx.Now() - issued)
		res.Requests++
		res.TotalLatency += lat
		h := 0
		if v == eng.center {
			res.LocalCompletions++
		} else {
			h = topo.Hops(v, eng.center)
			res.QueueHops += int64(h)
			res.ReplyHops += int64(topo.Hops(eng.center, v))
			if h > res.MaxQueueHops {
				res.MaxQueueHops = h
			}
		}
		if cfg.Recorder != nil {
			cfg.Recorder.RecordRequest(lat, h)
		}
	}
	issue = func(ctx *sim.Context, v graph.NodeID) {
		if remaining[v] == 0 {
			return
		}
		remaining[v]--
		issued := ctx.Now()
		if v == eng.center {
			eng.serve(ctx, func(ctx *sim.Context, _ int) {
				queued(ctx, v, issued)
				scheduleNext(ctx, v)
			})
			return
		}
		ctx.Send(v, eng.center, loopReq{origin: v, issued: issued})
	}

	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		switch m := msg.(type) {
		case loopReq:
			if at != eng.center {
				panic("centralized: request at non-center node")
			}
			eng.serve(ctx, func(ctx *sim.Context, _ int) {
				queued(ctx, m.origin, m.issued)
				ctx.Send(eng.center, m.origin, loopReply{})
			})
		case loopReply:
			scheduleNext(ctx, at)
		default:
			panic(fmt.Sprintf("centralized: unexpected message %T", msg))
		}
	})
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		s.ScheduleAt(0, func(ctx *sim.Context) { issue(ctx, node) })
	}
	res.Makespan = s.Run()
	if res.Requests != total {
		return nil, fmt.Errorf("centralized: closed loop completed %d of %d", res.Requests, total)
	}
	return res, nil
}
