package centralized

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/sim"
)

// TestClosedLoopCoordinatorFailover: the center dies under load; after
// the deterministic failover window the smallest live node takes over,
// requests caught at the dead coordinator re-issue there, and every
// request completes.
func TestClosedLoopCoordinatorFailover(t *testing.T) {
	const n, perNode = 12, 30
	g := graph.Complete(n)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 20, Kind: sim.NodeDown, U: 0},
		{At: 90, Kind: sim.NodeUp, U: 0},
	}}
	res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Center: 0, FailoverDelay: 6})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * perNode); res.Requests != want {
		t.Fatalf("completed %d of %d", res.Requests, want)
	}
	if res.Dropped == 0 {
		t.Fatal("coordinator outage dropped nothing; scenario vacuous")
	}
	if res.Reissued == 0 {
		t.Fatalf("no request re-issued across the failover: %+v", res)
	}
	if res.Affected == 0 {
		t.Fatalf("failover touched no requests: %+v", res)
	}
	// Determinism.
	again, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Center: 0, FailoverDelay: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("failover run not deterministic")
	}
}

// TestClosedLoopNonCenterChurn: failures of ordinary nodes pause their
// own loops (timers defer) and lose some replies, but the center keeps
// serving and the run drains.
func TestClosedLoopNonCenterChurn(t *testing.T) {
	const n, perNode = 16, 25
	g := graph.Complete(n)
	keep := func(v graph.NodeID) bool { return v != 0 }
	plan := &sim.FaultPlan{Events: sim.NodeChurn(n, keep, 1.5, 25, 20, 500, 11)}
	res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * perNode); res.Requests != want {
		t.Fatalf("completed %d of %d", res.Requests, want)
	}
}

// TestClosedLoopEmptyFaultPlanBitIdentical: the acceptance criterion on
// the centralized driver.
func TestClosedLoopEmptyFaultPlanBitIdentical(t *testing.T) {
	g := graph.Complete(10)
	base, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 20}, Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 20, Faults: &sim.FaultPlan{}}, Center: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, empty) {
		t.Fatalf("empty plan diverged:\n nil:   %+v\n empty: %+v", base, empty)
	}
}

// TestFailoverReelectsWhenReplacementDiesAtTakeover pins the boundary
// case where the elected replacement dies at the exact failover
// instant: fault transitions at time T apply before the failover timer
// at T, so the takeover must re-check liveness and elect again instead
// of installing a dead coordinator.
func TestFailoverReelectsWhenReplacementDiesAtTakeover(t *testing.T) {
	const n, perNode = 8, 15
	g := graph.Complete(n)
	// Center 0 dies at t=10; with FailoverDelay 6 the takeover fires at
	// t=16 — the exact instant replacement node 1 dies.
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 10, Kind: sim.NodeDown, U: 0},
		{At: 16, Kind: sim.NodeDown, U: 1},
		{At: 60, Kind: sim.NodeUp, U: 1},
		{At: 80, Kind: sim.NodeUp, U: 0},
	}}
	res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Center: 0, FailoverDelay: 6})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * perNode); res.Requests != want {
		t.Fatalf("completed %d of %d", res.Requests, want)
	}
	if res.Reissued == 0 {
		t.Fatalf("no re-issues across the double failure: %+v", res)
	}
}
