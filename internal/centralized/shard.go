package centralized

import (
	"fmt"

	"repro/internal/graph"
)

// ShardCenters is the centralized scheme's multi-object discipline:
// object o's coordinator is center_o = o mod n, so the k objects
// round-robin their coordinators across the nodes instead of melting
// one. The stepper is stateless — every request is one hop to the
// object's center — and the serialization a real coordinator suffers
// comes from the shared network's per-link capacity (Spec.LinkTxTime)
// rather than an explicit service time: requests for the same object
// from the same origin queue on the origin→center link.
type ShardCenters struct {
	n int
}

// NewShardCenters validates the dimensions; no per-object state exists.
func NewShardCenters(n, k int) (*ShardCenters, error) {
	if n < 1 {
		return nil, fmt.Errorf("centralized: shard centers need n >= 1, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("centralized: shard centers need k >= 1 objects, got %d", k)
	}
	return &ShardCenters{n: n}, nil
}

// center returns object obj's coordinator.
func (c *ShardCenters) center(obj int32) graph.NodeID {
	return graph.NodeID(int(obj) % c.n)
}

// StartFind completes locally when v is the object's own coordinator;
// otherwise the request is one hop to the center.
func (c *ShardCenters) StartFind(obj int32, v graph.NodeID) (graph.NodeID, bool) {
	ctr := c.center(obj)
	if v == ctr {
		return v, true
	}
	return ctr, false
}

// ForwardFind always terminates: the only forward is the single hop to
// the center.
func (c *ShardCenters) ForwardFind(obj int32, at, from, origin graph.NodeID) (graph.NodeID, bool) {
	return at, true
}

// ShardSafeStepper marks the stepper safe for the parallel drain:
// there is no mutable state at all.
func (c *ShardCenters) ShardSafeStepper() {}
