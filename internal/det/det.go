// Package det holds the repo's sanctioned deterministic-iteration
// helpers. Go randomizes map range order on purpose; in this codebase
// anything that feeds results, messages, or scheduling must be a pure
// function of the seed, so map iteration in deterministic packages is a
// vet error (arrowlint's determinism analyzer). When a map is the right
// container, iterate it through SortedKeys: the order is then fixed by
// the keys themselves, independent of insertion history and runtime
// hashing — deterministic by construction, not by discipline.
package det

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. The one map range in
// this module lives here, where the sort directly below it makes the
// order well-defined.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	//arrow:allow determinism the range feeds the sort below; this is the sanctioned iteration point
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
