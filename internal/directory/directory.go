// Package directory implements the arrow distributed directory of Demmer
// and Herlihy [4] — the mobile-object application that motivates the
// paper's Section 1 — together with the home-based directory baseline it
// was measured against by Herlihy and Warres [12] ("a tale of two
// directories").
//
// In the arrow directory, a node acquiring the shared object queues a
// find request with the arrow protocol; the object then travels down the
// distributed queue from each holder directly to its successor. In the
// home-based directory, a fixed home node serializes all accesses and the
// object shuttles between the home and each requester.
//
// Both run on the deterministic simulator so their costs are directly
// comparable: acquisition latency, object travel, and makespan.
package directory

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// Config drives a closed-loop directory experiment: every node acquires
// the object PerNode times, holding it for HoldTime per access, issuing
// its next acquire ThinkTime after releasing.
type Config struct {
	PerNode   int
	HoldTime  sim.Time
	ThinkTime sim.Time
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	Seed        int64
}

func (c *Config) normalize() {
	if c.HoldTime <= 0 {
		c.HoldTime = 1
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 1
	}
}

// Result aggregates a directory run.
type Result struct {
	N        int
	Acquires int64
	// Makespan is the simulated time until the last release.
	Makespan sim.Time
	// AcquireLatency sums issue-to-object-arrival times.
	AcquireLatency int64
	// FindHops counts queue-message link traversals (arrow) or
	// request-message hops (home).
	FindHops int64
	// ObjectHops counts link traversals of the object itself.
	ObjectHops int64
}

// AvgAcquireLatency returns mean time from request to object arrival.
func (r *Result) AvgAcquireLatency() float64 {
	if r.Acquires == 0 {
		return 0
	}
	return float64(r.AcquireLatency) / float64(r.Acquires)
}

// AvgObjectHops returns mean object travel per acquisition.
func (r *Result) AvgObjectHops() float64 {
	if r.Acquires == 0 {
		return 0
	}
	return float64(r.ObjectHops) / float64(r.Acquires)
}

// Messages used by the arrow directory. The dirMsg marker method lets
// arrowlint's msgswitch analyzer check switch exhaustiveness.
type dirMsg interface{ isDirMsg() }

type (
	findMsg struct{ reqID int }
	objMsg  struct {
		target graph.NodeID // requester the object is travelling to
		reqID  int          // request being satisfied
	}
)

func (findMsg) isDirMsg() {}
func (objMsg) isDirMsg()  {}

type arrowDirState struct {
	t   *tree.Tree
	cfg Config

	link    []graph.NodeID
	lastReq []int

	origin    []graph.NodeID
	issueTime []sim.Time
	hops      []int

	succ      map[int]int // predecessor reqID -> successor reqID
	remaining []int
	res       *Result

	// Object location: objAt/objAfter are meaningful while objFree (the
	// object is parked awaiting the successor of request objAfter);
	// while travelling or held it is tracked by messages and timers.
	objAt    graph.NodeID
	objFree  bool
	objAfter int
}

// RunArrow executes the closed-loop arrow directory on tree t. The object
// starts at root.
func RunArrow(t *tree.Tree, root graph.NodeID, cfg Config) (*Result, error) {
	n := t.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("directory: PerNode must be >= 1")
	}
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("directory: root %d out of range", root)
	}
	cfg.normalize()
	total := int64(cfg.PerNode) * int64(n)
	st := &arrowDirState{
		t:         t,
		cfg:       cfg,
		link:      make([]graph.NodeID, n),
		lastReq:   make([]int, n),
		succ:      make(map[int]int),
		remaining: make([]int, n),
		res:       &Result{N: n},
	}
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		if node == root {
			st.link[v] = node
		} else {
			st.link[v] = t.NextHop(node, root)
		}
		st.lastReq[v] = -1
		st.remaining[v] = cfg.PerNode
	}
	s := sim.New(sim.Config{
		Topology:    sim.TreeTopology{T: t},
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   total*int64(8*n+16) + 4096,
	})
	s.SetAllHandlers(st.handle)
	// The object sits at root, already released by the virtual request
	// (-1); its first transfer triggers when -1's successor is queued.
	st.objAt = root
	st.objFree = true
	st.objAfter = -1
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		s.ScheduleAt(0, func(ctx *sim.Context) { st.issue(ctx, node) })
	}
	st.res.Makespan = s.Run()
	if st.res.Acquires != total {
		return nil, fmt.Errorf("directory: %d of %d acquisitions completed", st.res.Acquires, total)
	}
	return st.res, nil
}

func (st *arrowDirState) issue(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	reqID := len(st.origin)
	st.origin = append(st.origin, v)
	st.issueTime = append(st.issueTime, ctx.Now())
	st.hops = append(st.hops, 0)

	if st.link[v] == v {
		pred := st.lastReq[v]
		st.lastReq[v] = reqID
		st.queued(ctx, reqID, pred)
		return
	}
	target := st.link[v]
	st.lastReq[v] = reqID
	st.link[v] = v
	st.hops[reqID]++
	ctx.Send(v, target, findMsg{reqID: reqID})
}

func (st *arrowDirState) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case findMsg:
		next := st.link[at]
		st.link[at] = from
		if next != at {
			st.hops[m.reqID]++
			ctx.Send(at, next, m)
			return
		}
		st.queued(ctx, m.reqID, st.lastReq[at])
	case objMsg:
		st.res.ObjectHops++
		if at == m.target {
			st.objectArrived(ctx, m.reqID)
			return
		}
		ctx.Send(at, st.t.NextHop(at, m.target), m)
	default:
		panic(fmt.Sprintf("directory: unexpected message %T", msg))
	}
}

// queued records that reqID is ordered directly behind predID. If the
// predecessor has already released the object, the transfer starts now.
func (st *arrowDirState) queued(ctx *sim.Context, reqID, predID int) {
	st.res.FindHops += int64(st.hops[reqID])
	st.succ[predID] = reqID
	if st.objFree && st.objAfter == predID {
		st.objFree = false
		st.sendObject(ctx, st.objAt, reqID)
	}
}

// sendObject dispatches the object from its current location toward the
// origin of reqID (zero hops if already there).
func (st *arrowDirState) sendObject(ctx *sim.Context, fromNode graph.NodeID, reqID int) {
	target := st.origin[reqID]
	if fromNode == target {
		st.objectArrived(ctx, reqID)
		return
	}
	ctx.Send(fromNode, st.t.NextHop(fromNode, target), objMsg{target: target, reqID: reqID})
}

// objectArrived grants the object for reqID: the acquire completes, the
// holder works for HoldTime, then releases.
func (st *arrowDirState) objectArrived(ctx *sim.Context, reqID int) {
	v := st.origin[reqID]
	st.res.Acquires++
	st.res.AcquireLatency += int64(ctx.Now() - st.issueTime[reqID])
	ctx.After(st.cfg.HoldTime, func(ctx *sim.Context) {
		st.release(ctx, reqID)
		// The node issues its next acquire after thinking.
		ctx.After(st.cfg.ThinkTime, func(ctx *sim.Context) { st.issue(ctx, v) })
	})
}

// release hands the object to the successor if known, or parks it.
func (st *arrowDirState) release(ctx *sim.Context, reqID int) {
	v := st.origin[reqID]
	if next, ok := st.succ[reqID]; ok {
		st.sendObject(ctx, v, next)
		return
	}
	st.objAt = v
	st.objFree = true
	st.objAfter = reqID
}
