package directory

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
)

func TestArrowDirectoryCompletesAllAcquisitions(t *testing.T) {
	tr := tree.BalancedBinary(15)
	res, err := RunArrow(tr, 0, Config{PerNode: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquires != 150 {
		t.Errorf("acquires = %d, want 150", res.Acquires)
	}
	if res.AvgAcquireLatency() <= 0 {
		t.Error("acquire latency must be positive")
	}
	if res.ObjectHops <= 0 {
		t.Error("object never moved — implausible with 15 contending nodes")
	}
}

func TestArrowDirectorySingleNode(t *testing.T) {
	tr := tree.BalancedBinary(1)
	res, err := RunArrow(tr, 0, Config{PerNode: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquires != 5 {
		t.Errorf("acquires = %d", res.Acquires)
	}
	if res.ObjectHops != 0 || res.FindHops != 0 {
		t.Errorf("single node moved the object (%d) or sent finds (%d)",
			res.ObjectHops, res.FindHops)
	}
}

func TestArrowDirectoryObjectLocality(t *testing.T) {
	// On a path with contention concentrated at one end, object travel
	// per op should stay far below the diameter: successive holders are
	// close on the tree.
	tr := tree.PathTree(33)
	res, err := RunArrow(tr, 0, Config{PerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgObjectHops() > 32 {
		t.Errorf("avg object travel %.1f exceeds diameter", res.AvgObjectHops())
	}
}

func TestHomeDirectoryCompletesAllAcquisitions(t *testing.T) {
	g := graph.Complete(12)
	res, err := RunHome(g, 0, Config{PerNode: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquires != 120 {
		t.Errorf("acquires = %d, want 120", res.Acquires)
	}
	// Home-based: every remote acquisition moves the object twice (grant
	// + return). With 11 remote nodes and 10 acquisitions each, plus the
	// home's own: at least 2*110 object hops on a complete graph.
	if res.ObjectHops < 220 {
		t.Errorf("object hops = %d, want >= 220", res.ObjectHops)
	}
}

func TestArrowBeatsHomeUnderContention(t *testing.T) {
	// The Herlihy–Warres observation: the arrow directory outperforms the
	// home-based directory under contention because objects travel
	// directly between successive holders.
	for _, n := range []int{8, 16, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tr := tree.BalancedBinary(n)
			g := graph.Complete(n)
			ar, err := RunArrow(tr, 0, Config{PerNode: 20})
			if err != nil {
				t.Fatal(err)
			}
			ho, err := RunHome(g, 0, Config{PerNode: 20})
			if err != nil {
				t.Fatal(err)
			}
			if ar.Makespan > ho.Makespan {
				t.Errorf("arrow makespan %d exceeds home-based %d", ar.Makespan, ho.Makespan)
			}
		})
	}
}

func TestDirectoryValidation(t *testing.T) {
	tr := tree.BalancedBinary(3)
	if _, err := RunArrow(tr, 0, Config{PerNode: 0}); err == nil {
		t.Error("expected PerNode error")
	}
	if _, err := RunArrow(tr, 9, Config{PerNode: 1}); err == nil {
		t.Error("expected root range error")
	}
	g := graph.Complete(3)
	if _, err := RunHome(g, 9, Config{PerNode: 1}); err == nil {
		t.Error("expected home range error")
	}
	if _, err := RunHome(g, 0, Config{PerNode: 0}); err == nil {
		t.Error("expected PerNode error")
	}
}

func TestDirectoryDeterminism(t *testing.T) {
	tr := tree.BalancedBinary(15)
	a, err := RunArrow(tr, 0, Config{PerNode: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunArrow(tr, 0, Config{PerNode: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.ObjectHops != b.ObjectHops || a.AcquireLatency != b.AcquireLatency {
		t.Error("same-seed directory runs diverged")
	}
}

func TestDirectoryHoldTimeStretchesMakespan(t *testing.T) {
	tr := tree.BalancedBinary(8)
	fast, err := RunArrow(tr, 0, Config{PerNode: 5, HoldTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunArrow(tr, 0, Config{PerNode: 5, HoldTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= fast.Makespan {
		t.Errorf("hold time 10 makespan %d not above hold time 1 makespan %d",
			slow.Makespan, fast.Makespan)
	}
}
