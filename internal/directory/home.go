package directory

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Home-based directory baseline (Herlihy–Warres [12]): a fixed home node
// owns the object's directory entry. To acquire, a node sends a request
// to the home; the home serializes requests and ships the object to each
// requester in turn; after HoldTime the holder returns the object to the
// home, which then serves the next queued request. Every access therefore
// pays two object trips through the home plus the request message —
// compared with arrow's single direct predecessor-to-successor transfer.

// homeMsg is the home-based protocol's message family; the marker
// method lets arrowlint's msgswitch analyzer check switch
// exhaustiveness.
type homeMsg interface{ isHomeMsg() }

type (
	homeReq struct {
		origin graph.NodeID
		issued sim.Time
	}
	homeObj struct {
		issued sim.Time // issue time of the request being served
		grant  bool     // true: home -> requester; false: return to home
	}
)

func (homeReq) isHomeMsg() {}
func (homeObj) isHomeMsg() {}

type homeState struct {
	cfg       Config
	home      graph.NodeID
	topo      *sim.MetricTopology
	queue     []homeReq
	objAtHome bool
	remaining []int
	res       *Result
}

// RunHome executes the closed-loop home-based directory over graph g with
// the given home node. Messages travel over shortest paths.
func RunHome(g *graph.Graph, home graph.NodeID, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("directory: PerNode must be >= 1")
	}
	if int(home) < 0 || int(home) >= n {
		return nil, fmt.Errorf("directory: home %d out of range", home)
	}
	cfg.normalize()
	total := int64(cfg.PerNode) * int64(n)
	st := &homeState{
		cfg:       cfg,
		home:      home,
		topo:      sim.NewMetricTopology(g),
		objAtHome: true,
		remaining: make([]int, n),
		res:       &Result{N: n},
	}
	for i := range st.remaining {
		st.remaining[i] = cfg.PerNode
	}
	s := sim.New(sim.Config{
		Topology:    st.topo,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   total*32 + 4096,
	})
	s.SetAllHandlers(st.handle)
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		s.ScheduleAt(0, func(ctx *sim.Context) { st.issue(ctx, node) })
	}
	st.res.Makespan = s.Run()
	if st.res.Acquires != total {
		return nil, fmt.Errorf("directory: home served %d of %d acquisitions", st.res.Acquires, total)
	}
	return st.res, nil
}

func (st *homeState) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case homeReq:
		if at != st.home {
			panic("directory: request at non-home node")
		}
		st.res.FindHops += int64(st.topo.Hops(m.origin, st.home))
		st.queue = append(st.queue, m)
		st.serveNext(ctx)
	case homeObj:
		if m.grant {
			st.granted(ctx, at, m.issued)
			return
		}
		if at != st.home {
			panic("directory: returned object at non-home node")
		}
		st.objAtHome = true
		st.serveNext(ctx)
	default:
		panic(fmt.Sprintf("directory: unexpected message %T", msg))
	}
}

func (st *homeState) issue(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	req := homeReq{origin: v, issued: ctx.Now()}
	if v == st.home {
		st.queue = append(st.queue, req)
		st.serveNext(ctx)
		return
	}
	ctx.Send(v, st.home, req)
}

// serveNext ships the object to the next queued requester if it is home.
func (st *homeState) serveNext(ctx *sim.Context) {
	if !st.objAtHome || len(st.queue) == 0 {
		return
	}
	req := st.queue[0]
	st.queue = st.queue[1:]
	st.objAtHome = false
	if req.origin == st.home {
		st.granted(ctx, st.home, req.issued)
		return
	}
	st.res.ObjectHops += int64(st.topo.Hops(st.home, req.origin))
	ctx.Send(st.home, req.origin, homeObj{issued: req.issued, grant: true})
}

// granted completes one acquisition at v; after the hold time the object
// returns to the home and v thinks before its next acquire.
func (st *homeState) granted(ctx *sim.Context, v graph.NodeID, issued sim.Time) {
	st.res.Acquires++
	st.res.AcquireLatency += int64(ctx.Now() - issued)
	ctx.After(st.cfg.HoldTime, func(ctx *sim.Context) {
		if v == st.home {
			st.objAtHome = true
			st.serveNext(ctx)
		} else {
			st.res.ObjectHops += int64(st.topo.Hops(v, st.home))
			ctx.Send(v, st.home, homeObj{})
		}
		ctx.After(st.cfg.ThinkTime, func(ctx *sim.Context) { st.issue(ctx, v) })
	})
}
