package engine

import (
	"fmt"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/ivy"
	"repro/internal/nta"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// tallyHops aggregates a completion slice into the shared Cost fields:
// requests that completed locally (zero hops) and the worst per-request
// hop count.
func tallyHops[T any](cs []T, hops func(T) int) (local int64, maxHops int) {
	for _, c := range cs {
		h := hops(c)
		if h == 0 {
			local++
		}
		if h > maxHops {
			maxHops = h
		}
	}
	return local, maxHops
}

// Arrow runs the arrow protocol on the instance's spanning tree. It
// supports both static-set and closed-loop workloads.
type Arrow struct{}

// Name implements Protocol.
func (Arrow) Name() string { return "arrow" }

// Run implements Protocol.
func (p Arrow) Run(inst Instance) (Cost, error) {
	if inst.Tree == nil {
		return Cost{}, fmt.Errorf("engine: arrow requires Instance.Tree")
	}
	if inst.Workload.Closed() {
		res, err := arrow.RunClosedLoop(inst.Tree, arrow.LoopConfig{
			Root:        inst.Root,
			PerNode:     inst.Workload.PerNode,
			ThinkTime:   inst.Workload.ThinkTime,
			Latency:     inst.Latency,
			Arbitration: inst.Arbitration,
			Seed:        inst.Seed,
		})
		if err != nil {
			return Cost{}, err
		}
		return Cost{
			Protocol:         p.Name(),
			Label:            inst.Label,
			N:                res.N,
			Requests:         res.Requests,
			TotalLatency:     res.TotalLatency,
			QueueHops:        res.QueueHops,
			ReplyHops:        res.ReplyHops,
			MaxHops:          res.MaxQueueHops,
			LocalCompletions: res.LocalCompletions,
			Makespan:         res.Makespan,
		}, nil
	}
	res, err := arrow.Run(inst.Tree, inst.Workload.Set, arrow.Options{
		Root:        inst.Root,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
	})
	if err != nil {
		return Cost{}, err
	}
	local, _ := tallyHops(res.Completions, func(c arrow.Completion) int { return c.Hops })
	return Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Tree.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          res.MaxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}, nil
}

// Centralized runs the central-coordinator baseline over the instance's
// graph metric, with Instance.Root as the central node. It supports both
// static-set and closed-loop workloads.
type Centralized struct {
	// ServiceTime is the central node's per-request serialization cost
	// (0 = one time unit).
	ServiceTime sim.Time
}

// Name implements Protocol.
func (Centralized) Name() string { return "centralized" }

// Run implements Protocol.
func (p Centralized) Run(inst Instance) (Cost, error) {
	if inst.Graph == nil {
		return Cost{}, fmt.Errorf("engine: centralized requires Instance.Graph")
	}
	if inst.Workload.Closed() {
		res, err := centralized.RunClosedLoop(inst.Graph, centralized.LoopConfig{
			Center:      inst.Root,
			PerNode:     inst.Workload.PerNode,
			ThinkTime:   inst.Workload.ThinkTime,
			ServiceTime: p.ServiceTime,
			Latency:     inst.Latency,
			Arbitration: inst.Arbitration,
			Seed:        inst.Seed,
		})
		if err != nil {
			return Cost{}, err
		}
		return Cost{
			Protocol:     p.Name(),
			Label:        inst.Label,
			N:            res.N,
			Requests:     res.Requests,
			TotalLatency: res.TotalLatency,
			QueueHops:    res.Hops,
			Makespan:     res.Makespan,
		}, nil
	}
	res, err := centralized.Run(inst.Graph, inst.Workload.Set, centralized.Options{
		Center:      inst.Root,
		ServiceTime: p.ServiceTime,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
	})
	if err != nil {
		return Cost{}, err
	}
	local, maxHops := tallyHops(res.Completions, func(c centralized.Completion) int { return c.Hops })
	return Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Graph.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          maxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}, nil
}

// NTA runs the Naimi–Trehel–Arnold path-reversal protocol over the
// instance's graph metric. Static-set workloads only.
type NTA struct{}

// Name implements Protocol.
func (NTA) Name() string { return "nta" }

// Run implements Protocol.
func (p NTA) Run(inst Instance) (Cost, error) {
	if inst.Graph == nil {
		return Cost{}, fmt.Errorf("engine: nta requires Instance.Graph")
	}
	if inst.Workload.Closed() {
		return Cost{}, errUnsupported(p.Name(), "closed-loop workloads")
	}
	res, err := nta.Run(inst.Graph, inst.Workload.Set, nta.Options{
		Root:        inst.Root,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
	})
	if err != nil {
		return Cost{}, err
	}
	local, _ := tallyHops(res.Completions, func(c nta.Completion) int { return c.Hops })
	return Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Graph.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          res.MaxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}, nil
}

// Ivy replays the Li–Hudak probable-owner directory on the instance's
// request set. The directory serializes finds at the owner, so requests
// are processed in issue order; per-request cost is the pointer chain the
// find traverses, charged at the graph metric's distances (QueueHops
// counts forwarding messages, TotalLatency their metric cost). Static-set
// workloads only.
type Ivy struct{}

// Name implements Protocol.
func (Ivy) Name() string { return "ivy" }

// Run implements Protocol.
func (p Ivy) Run(inst Instance) (Cost, error) {
	if inst.Graph == nil {
		return Cost{}, fmt.Errorf("engine: ivy requires Instance.Graph")
	}
	if inst.Workload.Closed() {
		return Cost{}, errUnsupported(p.Name(), "closed-loop workloads")
	}
	set := inst.Workload.Set
	if err := set.Validate(inst.Graph.NumNodes()); err != nil {
		return Cost{}, err
	}
	dist := inst.Graph.AllPairs()
	dir := ivy.NewDirectory(inst.Graph.NumNodes(), inst.Root)
	cost := Cost{
		Protocol: p.Name(),
		Label:    inst.Label,
		N:        inst.Graph.NumNodes(),
		Requests: int64(len(set)),
		Order:    make(queuing.Order, 0, len(set)),
	}
	// The directory serializes requests; the clock advances to each
	// request's issue time, then by the chain's metric cost.
	var clock sim.Time
	for _, r := range set {
		if r.Time > clock {
			clock = r.Time
		}
		chain := dir.FindChain(r.Node)
		hops := len(chain) - 1
		var d int64
		for i := 0; i+1 < len(chain); i++ {
			d += dist[chain[i]][chain[i+1]]
		}
		clock += sim.Time(d)
		cost.QueueHops += int64(hops)
		cost.TotalLatency += int64(clock - r.Time)
		if hops > cost.MaxHops {
			cost.MaxHops = hops
		}
		if hops == 0 {
			cost.LocalCompletions++
		}
		cost.Order = append(cost.Order, r.ID)
	}
	cost.Makespan = clock
	return cost, nil
}
