package engine

import (
	"fmt"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/nta"
	"repro/internal/sim"
	"repro/internal/stats"
)

// loopSpec projects an Instance onto the shared closed-loop run spec
// every protocol's LoopConfig embeds — the one place the mapping exists,
// so a new shared knob is threaded to all four drivers by one edit.
func loopSpec(inst Instance) loop.Spec {
	return loop.Spec{
		PerNode:     inst.Workload.PerNode,
		ThinkTime:   inst.Workload.ThinkTime,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
		Scheduler:   inst.Scheduler,
		Recorder:    inst.Recorder,
		Faults:      inst.Faults,
		Workers:     inst.Workers,
		LinkTxTime:  inst.LinkTxTime,
	}
}

// loopCounters is the closed-loop counter shape shared field for field
// by arrow.LoopResult, loop.Result (NTA, Ivy) and
// centralized.LoopResult; the adapters convert each protocol's result
// into it so the Cost mapping lives in one place (the conversion stops
// compiling if a result struct drifts).
type loopCounters struct {
	N                int
	Requests         int64
	Makespan         sim.Time
	QueueHops        int64
	ReplyHops        int64
	LocalCompletions int64
	TotalLatency     int64
	MaxQueueHops     int
	Events           int64
	Dropped          int64
	Deferred         int64
	Reissued         int64
	RepliesLost      int64
	Affected         int64
	RepairEpisodes   int64
	RepairMessages   int64
	RepairTime       sim.Time
}

// loopCost maps a closed-loop run's counters to the standard Cost.
func loopCost(proto, label string, r loopCounters) Cost {
	return Cost{
		Protocol:         proto,
		Label:            label,
		N:                r.N,
		Requests:         r.Requests,
		TotalLatency:     r.TotalLatency,
		QueueHops:        r.QueueHops,
		ReplyHops:        r.ReplyHops,
		MaxHops:          r.MaxQueueHops,
		LocalCompletions: r.LocalCompletions,
		Makespan:         r.Makespan,
		Events:           r.Events,
		Dropped:          r.Dropped,
		Deferred:         r.Deferred,
		Reissued:         r.Reissued,
		RepliesLost:      r.RepliesLost,
		Affected:         r.Affected,
		RepairEpisodes:   r.RepairEpisodes,
		RepairMessages:   r.RepairMessages,
		RepairTime:       r.RepairTime,
	}
}

// tallyHops aggregates a completion slice into the shared Cost fields —
// requests that completed locally (zero hops) and the worst per-request
// hop count — and feeds the instance recorder, which is how static-set
// runs (whose drivers already retain per-request completion records)
// get the same per-request observability as the streaming closed loops.
func tallyHops[T any](rec stats.Recorder, cs []T, hops func(T) int, latency func(T) int64) (local int64, maxHops int) {
	for _, c := range cs {
		h := hops(c)
		if rec != nil {
			rec.RecordRequest(latency(c), h)
		}
		if h == 0 {
			local++
		}
		if h > maxHops {
			maxHops = h
		}
	}
	return local, maxHops
}

// attachDists copies the recorder's distribution snapshots into the
// cost when the instance recorder is the standard DistRecorder, and
// derives the availability fraction from the affected-request counter
// (1 for fault-free runs and empty workloads).
func attachDists(c *Cost, rec stats.Recorder) {
	if dr, ok := rec.(*stats.DistRecorder); ok && dr != nil {
		c.Latency = dr.Latency.Snapshot()
		c.Hops = dr.Hops.Snapshot()
	}
	c.Availability = 1
	if c.Requests > 0 {
		c.Availability = 1 - float64(c.Affected)/float64(c.Requests)
	}
}

// Validate checks the run spec's cross-field coherence before any
// driver normalizes or executes it: the workload shape, the
// fault-plan and multi-object combinations, and the simulator-level
// knobs the drivers cannot repair by normalization (they surface as
// the simulator's own typed *sim.ConfigError, the same error
// sim.Config.Validate returns, so callers see one error vocabulary
// whether a bad knob is caught here or at driver level). Worker-count
// incompatibilities are deliberately NOT rejected: drivers normalize
// those to a serial drain, which is a supported configuration.
func (inst Instance) Validate() error {
	if err := inst.Workload.validate(); err != nil {
		return err
	}
	if err := validateFaults(inst); err != nil {
		return err
	}
	if err := validateMulti(inst); err != nil {
		return err
	}
	if inst.LinkTxTime < 0 {
		return &sim.ConfigError{Field: "LinkTxTime", Reason: fmt.Sprintf("must be >= 0, got %d", inst.LinkTxTime)}
	}
	return nil
}

// validateFaults rejects the workload/fault combinations the drivers do
// not support: faults require a closed-loop workload (a static set has
// no re-issue loop to survive them).
func validateFaults(inst Instance) error {
	if inst.Faults != nil && !inst.Workload.Closed() {
		return fmt.Errorf("engine: Instance.Faults requires a closed-loop workload")
	}
	return nil
}

// validateMulti rejects the instance fields the object dimension and
// the single-object tier do not share: per-object recorders only make
// sense with Objects > 1, and the multi-object tier runs no fault
// plans (a plan on a multi instance would otherwise be dropped
// silently by the dispatch).
func validateMulti(inst Instance) error {
	if !inst.Workload.Multi() {
		if inst.ObjectRecorders != nil {
			return fmt.Errorf("engine: Instance.ObjectRecorders requires a multi-object workload (Workload.Objects > 1)")
		}
		return nil
	}
	if inst.Faults != nil {
		return fmt.Errorf("engine: multi-object workloads do not support fault plans")
	}
	return nil
}

// Arrow runs the arrow protocol on the instance's spanning tree. It
// supports both static-set and closed-loop workloads.
type Arrow struct{}

// Name implements Protocol.
func (Arrow) Name() string { return "arrow" }

// Run implements Protocol.
func (p Arrow) Run(inst Instance) (Cost, error) {
	if err := inst.Validate(); err != nil {
		return Cost{}, err
	}
	if inst.Tree == nil {
		return Cost{}, fmt.Errorf("engine: arrow requires Instance.Tree")
	}
	if inst.Workload.Multi() {
		mc, err := p.RunMulti(multiFromInstance(inst, inst.Tree.NumNodes()))
		if err != nil {
			return Cost{}, err
		}
		return mc.Aggregate, nil
	}
	if inst.Workload.Closed() {
		res, err := arrow.RunClosedLoop(inst.Tree, arrow.LoopConfig{
			Spec: loopSpec(inst),
			Root: inst.Root,
		})
		if err != nil {
			return Cost{}, err
		}
		cost := loopCost(p.Name(), inst.Label, loopCounters(*res))
		attachDists(&cost, inst.Recorder)
		return cost, nil
	}
	res, err := arrow.Run(inst.Tree, inst.Workload.Set, arrow.Options{
		Root:        inst.Root,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
		Scheduler:   inst.Scheduler,
	})
	if err != nil {
		return Cost{}, err
	}
	local, _ := tallyHops(inst.Recorder, res.Completions,
		func(c arrow.Completion) int { return c.Hops },
		func(c arrow.Completion) int64 { return c.Latency() })
	cost := Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Tree.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          res.MaxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}
	attachDists(&cost, inst.Recorder)
	return cost, nil
}

// Centralized runs the central-coordinator baseline over the instance's
// graph metric, with Instance.Root as the central node. It supports both
// static-set and closed-loop workloads.
type Centralized struct {
	// ServiceTime is the central node's per-request serialization cost
	// (0 = one time unit).
	ServiceTime sim.Time
	// FailoverDelay is the unavailability window after a coordinator
	// failure before the deterministic replacement serves (0 = the
	// driver default; only meaningful with Instance.Faults).
	FailoverDelay sim.Time
}

// Name implements Protocol.
func (Centralized) Name() string { return "centralized" }

// Run implements Protocol.
func (p Centralized) Run(inst Instance) (Cost, error) {
	if err := inst.Validate(); err != nil {
		return Cost{}, err
	}
	if inst.Graph == nil {
		return Cost{}, fmt.Errorf("engine: centralized requires Instance.Graph")
	}
	if inst.Workload.Multi() {
		mc, err := p.RunMulti(multiFromInstance(inst, inst.Graph.NumNodes()))
		if err != nil {
			return Cost{}, err
		}
		return mc.Aggregate, nil
	}
	if inst.Workload.Closed() {
		res, err := centralized.RunClosedLoop(inst.Graph, centralized.LoopConfig{
			Spec:          loopSpec(inst),
			Center:        inst.Root,
			ServiceTime:   p.ServiceTime,
			FailoverDelay: p.FailoverDelay,
		})
		if err != nil {
			return Cost{}, err
		}
		cost := loopCost(p.Name(), inst.Label, loopCounters(*res))
		attachDists(&cost, inst.Recorder)
		return cost, nil
	}
	res, err := centralized.Run(inst.Graph, inst.Workload.Set, centralized.Options{
		Center:      inst.Root,
		ServiceTime: p.ServiceTime,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
		Scheduler:   inst.Scheduler,
	})
	if err != nil {
		return Cost{}, err
	}
	local, maxHops := tallyHops(inst.Recorder, res.Completions,
		func(c centralized.Completion) int { return c.Hops },
		func(c centralized.Completion) int64 { return c.Latency() })
	cost := Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Graph.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          maxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}
	attachDists(&cost, inst.Recorder)
	return cost, nil
}

// NTA runs the Naimi–Trehel–Arnold path-reversal protocol over the
// instance's graph metric. It supports both static-set and closed-loop
// workloads.
type NTA struct{}

// Name implements Protocol.
func (NTA) Name() string { return "nta" }

// Run implements Protocol.
func (p NTA) Run(inst Instance) (Cost, error) {
	if err := inst.Validate(); err != nil {
		return Cost{}, err
	}
	if inst.Graph == nil {
		return Cost{}, fmt.Errorf("engine: nta requires Instance.Graph")
	}
	if inst.Workload.Multi() {
		mc, err := p.RunMulti(multiFromInstance(inst, inst.Graph.NumNodes()))
		if err != nil {
			return Cost{}, err
		}
		return mc.Aggregate, nil
	}
	if inst.Workload.Closed() {
		res, err := nta.RunClosedLoop(inst.Graph, nta.LoopConfig{
			Spec: loopSpec(inst),
			Root: inst.Root,
		})
		if err != nil {
			return Cost{}, err
		}
		cost := loopCost(p.Name(), inst.Label, loopCounters(*res))
		attachDists(&cost, inst.Recorder)
		return cost, nil
	}
	res, err := nta.Run(inst.Graph, inst.Workload.Set, nta.Options{
		Root:        inst.Root,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
		Scheduler:   inst.Scheduler,
	})
	if err != nil {
		return Cost{}, err
	}
	local, _ := tallyHops(inst.Recorder, res.Completions,
		func(c nta.Completion) int { return c.Hops },
		func(c nta.Completion) int64 { return c.Latency() })
	cost := Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Graph.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          res.MaxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}
	attachDists(&cost, inst.Recorder)
	return cost, nil
}

// Ivy runs the Li–Hudak probable-owner directory on the discrete-event
// simulator: find messages follow probable-owner chains as real messages
// over the graph metric, with ivy.Directory as the pointer-combinatorics
// core (QueueHops counts forwarding messages — the amortized-Θ(log n)
// quantity — and TotalLatency their simulated cost). It supports both
// static-set and closed-loop workloads.
type Ivy struct{}

// Name implements Protocol.
func (Ivy) Name() string { return "ivy" }

// Run implements Protocol.
func (p Ivy) Run(inst Instance) (Cost, error) {
	if err := inst.Validate(); err != nil {
		return Cost{}, err
	}
	if inst.Graph == nil {
		return Cost{}, fmt.Errorf("engine: ivy requires Instance.Graph")
	}
	if inst.Workload.Multi() {
		mc, err := p.RunMulti(multiFromInstance(inst, inst.Graph.NumNodes()))
		if err != nil {
			return Cost{}, err
		}
		return mc.Aggregate, nil
	}
	if inst.Workload.Closed() {
		res, err := ivy.RunClosedLoop(inst.Graph, ivy.LoopConfig{
			Spec: loopSpec(inst),
			Root: inst.Root,
		})
		if err != nil {
			return Cost{}, err
		}
		cost := loopCost(p.Name(), inst.Label, loopCounters(*res))
		attachDists(&cost, inst.Recorder)
		return cost, nil
	}
	res, err := ivy.Run(inst.Graph, inst.Workload.Set, ivy.Options{
		Root:        inst.Root,
		Latency:     inst.Latency,
		Arbitration: inst.Arbitration,
		Seed:        inst.Seed,
		Scheduler:   inst.Scheduler,
	})
	if err != nil {
		return Cost{}, err
	}
	local, _ := tallyHops(inst.Recorder, res.Completions,
		func(c ivy.Completion) int { return c.Hops },
		func(c ivy.Completion) int64 { return c.Latency() })
	cost := Cost{
		Protocol:         p.Name(),
		Label:            inst.Label,
		N:                inst.Graph.NumNodes(),
		Requests:         int64(len(res.Completions)),
		TotalLatency:     res.TotalLatency,
		QueueHops:        res.TotalHops,
		MaxHops:          res.MaxHops,
		LocalCompletions: local,
		Makespan:         res.Makespan,
		Order:            res.Order,
	}
	attachDists(&cost, inst.Recorder)
	return cost, nil
}
