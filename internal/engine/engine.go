// Package engine is the reusable experiment layer above the protocol
// packages: a single Protocol interface with a standard Cost result, one
// adapter per queuing protocol (arrow, centralized, NTA, Ivy), and a
// sharded parallel runner (Sweep) that fans independent experiment cells
// across a worker pool while returning results in deterministic cell
// order — byte-identical to a sequential run.
//
// Experiment code above this layer (internal/analysis, cmd/arrowbench,
// the root benchmarks) composes cells instead of hand-wiring each
// protocol pair, so adding a protocol or a topology automatically extends
// every sweep.
package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// Workload selects what traffic an instance carries: a static request
// set (the paper's analytic setting) or a closed-loop load where every
// node keeps PerNode requests in flight one at a time (the Section 5
// experimental setting). Closed-loop workloads additionally carry the
// multi-object dimension: Objects > 1 shards the run across that many
// protocol instances on one shared network, with per-request object
// choice drawn from a Zipf popularity law of exponent Skew.
//
// Construct workloads through the WorkloadSpec builder (NewClosedLoop /
// NewStatic), which rejects ambiguous combinations at construction; the
// zero-value-literal route remains open for tests but is validated only
// when a run starts.
type Workload struct {
	// Set is the static request set; leave nil (with a positive
	// PerNode) for a closed-loop run.
	Set queuing.Set
	// PerNode is the number of closed-loop requests each node issues;
	// ignored when Set is non-nil.
	PerNode int
	// ThinkTime is the closed-loop delay between learning completion and
	// issuing the next request (0 = one local step).
	ThinkTime sim.Time
	// Objects is the number of independent protocol instances the
	// closed-loop traffic spreads over (0 and 1 both mean the classic
	// single-object run). Each request draws its object independently;
	// all objects' traffic shares one network. Requires a closed-loop
	// workload.
	Objects int
	// Skew is the Zipf exponent of object popularity when Objects > 1:
	// object o (0-based) is drawn with weight (o+1)^-Skew. 0 means
	// uniform popularity; larger values concentrate load on low-numbered
	// objects (s = 1.1 is the classic hot-object regime).
	Skew float64
}

// Closed reports whether the workload is closed-loop: no static set and
// a positive PerNode. A generator that legitimately produced no requests
// is not reclassified as a closed-loop run (NewStatic normalizes nil),
// and the ambiguous combination — nil set with PerNode < 1, e.g. a
// closed-loop experiment invoked with PerNode 0 — is rejected by every
// adapter via validate instead of silently running an empty static set.
func (w Workload) Closed() bool { return w.Set == nil && w.PerNode > 0 }

// Multi reports whether the workload carries the object dimension.
func (w Workload) Multi() bool { return w.Objects > 1 }

// validate rejects the ambiguous workload that is neither a static set
// nor a well-formed closed loop, and malformed object dimensions.
func (w Workload) validate() error {
	if w.Set == nil && w.PerNode < 1 {
		return fmt.Errorf("engine: workload has neither a static request set nor a positive closed-loop PerNode")
	}
	if w.Objects < 0 {
		return fmt.Errorf("engine: workload Objects must be >= 0, got %d", w.Objects)
	}
	if w.Objects > 1 && w.Set != nil {
		return fmt.Errorf("engine: multi-object workloads require a closed loop (static sets carry no object dimension)")
	}
	if w.Skew != 0 {
		if w.Skew < 0 {
			return fmt.Errorf("engine: workload Skew must be >= 0, got %g", w.Skew)
		}
		if w.Objects <= 1 {
			return fmt.Errorf("engine: workload Skew %g without Objects > 1 has nothing to skew", w.Skew)
		}
	}
	return nil
}

// WorkloadSpec builds a validated Workload. It replaces the positional
// Static / ClosedLoop constructors: every knob is named, the chain reads
// as the experiment it describes, and Build rejects ambiguous or
// contradictory specs at construction time rather than when a run
// starts.
//
//	w, err := engine.NewClosedLoop(2000).Think(16).Objects(1000).Zipf(1.1).Build()
type WorkloadSpec struct {
	w   Workload
	err error
}

// NewClosedLoop starts a closed-loop spec where every node issues
// perNode requests one at a time. perNode < 1 is reported by Build.
func NewClosedLoop(perNode int) *WorkloadSpec {
	s := &WorkloadSpec{w: Workload{PerNode: perNode}}
	if perNode < 1 {
		s.err = fmt.Errorf("engine: closed-loop PerNode must be >= 1, got %d", perNode)
	}
	return s
}

// NewStatic starts a static-set spec replaying the given request set. A
// nil set is normalized to an empty one, so empty generator output stays
// in static mode.
func NewStatic(set queuing.Set) *WorkloadSpec {
	if set == nil {
		set = queuing.Set{}
	}
	return &WorkloadSpec{w: Workload{Set: set}}
}

// Think sets the closed-loop think time (delay between learning
// completion and issuing the next request; 0 = one local step).
func (s *WorkloadSpec) Think(d sim.Time) *WorkloadSpec {
	if s.w.Set != nil && s.err == nil {
		s.err = fmt.Errorf("engine: Think applies to closed-loop workloads, not static sets")
	}
	if d < 0 && s.err == nil {
		s.err = fmt.Errorf("engine: ThinkTime must be >= 0, got %d", d)
	}
	s.w.ThinkTime = d
	return s
}

// Objects sets the multi-object dimension: the closed-loop traffic
// spreads over k independent protocol instances sharing one network.
// k <= 1 keeps the classic single-object run.
func (s *WorkloadSpec) Objects(k int) *WorkloadSpec {
	if s.w.Set != nil && s.err == nil {
		s.err = fmt.Errorf("engine: Objects applies to closed-loop workloads, not static sets")
	}
	if k < 0 && s.err == nil {
		s.err = fmt.Errorf("engine: Objects must be >= 0, got %d", k)
	}
	s.w.Objects = k
	return s
}

// Zipf sets the object-popularity exponent (see Workload.Skew); call it
// after Objects.
func (s *WorkloadSpec) Zipf(skew float64) *WorkloadSpec {
	if s.err == nil {
		if skew < 0 {
			s.err = fmt.Errorf("engine: Zipf skew must be >= 0, got %g", skew)
		} else if skew != 0 && s.w.Objects <= 1 {
			s.err = fmt.Errorf("engine: Zipf skew %g without Objects > 1 has nothing to skew", skew)
		}
	}
	s.w.Skew = skew
	return s
}

// Build returns the validated workload or the first construction error.
func (s *WorkloadSpec) Build() (Workload, error) {
	if s.err != nil {
		return Workload{}, s.err
	}
	if err := s.w.validate(); err != nil {
		return Workload{}, err
	}
	return s.w, nil
}

// MustBuild is Build for specs known correct by construction (package
// defaults, tests); it panics on a malformed spec.
func (s *WorkloadSpec) MustBuild() Workload {
	w, err := s.Build()
	if err != nil {
		panic(err)
	}
	return w
}

// Static returns a static-set workload.
//
// Deprecated: use NewStatic(set).Build (or MustBuild). Kept one release
// for mechanical migration.
func Static(set queuing.Set) Workload {
	return NewStatic(set).MustBuild()
}

// ClosedLoop returns a closed-loop workload.
//
// Deprecated: use NewClosedLoop(perNode).Think(think).Build (or
// MustBuild), which validates at construction. Kept one release for
// mechanical migration; unlike the builder it defers PerNode validation
// to run time, exactly as it always did.
func ClosedLoop(perNode int, think sim.Time) Workload {
	return Workload{PerNode: perNode, ThinkTime: think}
}

// Instance is one fully specified experiment cell input: topology,
// workload and simulation options. Graph is required by the completely
// connected protocols (centralized, NTA, Ivy); Tree by arrow. Either may
// be nil when no cell protocol needs it.
type Instance struct {
	// Label names the cell in experiment output (e.g. "n=32").
	Label string
	// Graph is the network G.
	Graph *graph.Graph
	// Tree is the spanning tree T arrow runs on.
	Tree *tree.Tree
	// Root is the initial sink (arrow), central node (centralized) or
	// initial owner (NTA, Ivy).
	Root graph.NodeID
	// Workload is the traffic.
	Workload Workload
	// Latency is the delay model (nil = synchronous unit latency).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration, per cell.
	Seed int64
	// Faults is the deterministic liveness schedule the cell runs under
	// (nil = fault-free, bit-identical to a simulator without the fault
	// layer). Only closed-loop workloads support faults; the plan is
	// read-only and may be shared across cells, so a sweep stays
	// byte-identical across worker counts. Arrow recovers by
	// message-driven self-stabilizing repair, NTA/Ivy by re-issue, and
	// centralized by deterministic coordinator failover.
	Faults *sim.FaultPlan
	// Scheduler selects the simulator's event-queue implementation for
	// every run of this instance. Semantically inert — both schedulers
	// realize the identical event order (see sim.SchedulerKind) — it
	// exists so the cross-scheduler equivalence tests can pin that claim
	// protocol by protocol.
	Scheduler sim.SchedulerKind
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and hop count: closed-loop drivers feed it streamingly as
	// requests complete (fixed memory at any request count), static runs
	// from their completion records after the run. On a multi-object run
	// (Workload.Objects > 1) it observes the aggregate stream — every
	// object's completions, in completion order. When the recorder is
	// a *stats.DistRecorder, the run's Cost carries Latency/Hops
	// distribution snapshots. The protocol hot paths do no recording
	// work when Recorder is nil.
	//
	// Recorders accumulate state, so each swept cell needs its own —
	// aggregate and per-object alike: Grid panics rather than share a
	// recording Instance (a Recorder or any ObjectRecorders entry)
	// across its protocol column (the copies would race under Sweep) —
	// grids that record build one Instance per cell, with fresh
	// recorders for every object slot (as analysis.PerfExperiment does).
	Recorder stats.Recorder
	// ObjectRecorders, when non-nil, attaches one recorder per object of
	// a multi-object run: entry o observes exactly object o's
	// completions. Its length must equal Workload.Objects; entries may
	// be nil to skip an object. Single-object and static runs reject it.
	ObjectRecorders []stats.Recorder
	// Workers requests the lookahead-windowed parallel event drain inside each
	// closed-loop run (see sim.Config.Workers). Results are bit-identical
	// at any worker count: drivers that cannot shard safely (Ivy's
	// directory, the centralized coordinator) and configs outside the
	// drain's support (faults, non-FIFO arbitration, heap scheduler)
	// normalize back to a serial run. Static workloads ignore it.
	Workers int
	// LinkTxTime, when positive, gives every link of the instance's
	// network finite serialization capacity (see sim.Config.LinkTxTime):
	// messages on one directed link depart at least LinkTxTime apart, so
	// concurrent traffic — in particular the combined load of a
	// multi-object run — queues instead of superposing for free. 0 keeps
	// the classic infinite-capacity model.
	LinkTxTime sim.Time
}

// Cost is the standard result of one protocol run: the cost metrics the
// paper analyzes, in one shape for every protocol.
type Cost struct {
	// Protocol and Label identify the cell that produced the cost.
	Protocol string
	Label    string
	// N is the node count, Requests the completed request count.
	N        int
	Requests int64
	// TotalLatency is Σ per-request queuing latencies (Definition 3.2):
	// issue until the request is queued behind its predecessor, in both
	// workload modes and for every protocol.
	TotalLatency int64
	// QueueHops counts queue/find-message link traversals; QueueHops /
	// Requests is Figure 11's metric.
	QueueHops int64
	// ReplyHops counts completion-notification traversals (closed-loop
	// runs; the paper does not charge these to the queuing protocol, so
	// every adapter reports them separately from QueueHops).
	ReplyHops int64
	// MaxHops is the worst single-request hop count.
	MaxHops int
	// LocalCompletions counts requests that found their predecessor
	// locally (zero messages).
	LocalCompletions int64
	// Makespan is the simulated time at quiescence.
	Makespan sim.Time
	// Events is the number of simulator events the run consumed
	// (messages plus timers) — deterministic for a fixed instance, and
	// the denominator of the perf document's events/sec throughput.
	// Populated by closed-loop runs; zero for static-set runs.
	Events int64
	// Latency and Hops are per-request distribution snapshots (queuing
	// latency; queue/find hop counts) with p50/p90/p99/p999/max and
	// streaming mean/std, populated when Instance.Recorder is a
	// *stats.DistRecorder; zero (Count == 0) otherwise.
	Latency stats.Dist
	Hops    stats.Dist
	// Fault/recovery metrics, populated by closed-loop runs under a
	// FaultPlan and zero otherwise. Dropped/Deferred count messages the
	// faults destroyed or stalled; Reissued counts requests re-issued
	// after a loss, RepliesLost completion notifications lost in
	// transit. RepairEpisodes/RepairMessages/RepairTime account arrow's
	// message-driven self-stabilizing repair in the same hops/latency
	// currency as the protocol traffic. Affected counts completed
	// requests a fault touched.
	Dropped        int64
	Deferred       int64
	Reissued       int64
	RepliesLost    int64
	Affected       int64
	RepairEpisodes int64
	RepairMessages int64
	RepairTime     sim.Time
	// Availability is the clean-completion fraction 1 − Affected /
	// Requests: the share of requests no fault touched (1 for fault-free
	// runs).
	Availability float64
	// Order is the induced total order (static-set runs; nil otherwise).
	Order queuing.Order
}

// AvgLatency returns mean per-request latency.
func (c Cost) AvgLatency() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.TotalLatency) / float64(c.Requests)
}

// AvgQueueHops returns queue-message hops per operation.
func (c Cost) AvgQueueHops() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.QueueHops) / float64(c.Requests)
}

// Protocol is a queuing protocol the engine can run on an Instance.
// Implementations must be stateless values: the same Protocol is invoked
// concurrently from multiple sweep workers. Every built-in adapter
// (Arrow, Centralized, NTA, Ivy) supports both static-set and
// closed-loop workloads.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Run executes the protocol on the instance and returns its cost.
	// Runs are deterministic for a fixed instance.
	Run(inst Instance) (Cost, error)
}
