// Package engine is the reusable experiment layer above the protocol
// packages: a single Protocol interface with a standard Cost result, one
// adapter per queuing protocol (arrow, centralized, NTA, Ivy), and a
// sharded parallel runner (Sweep) that fans independent experiment cells
// across a worker pool while returning results in deterministic cell
// order — byte-identical to a sequential run.
//
// Experiment code above this layer (internal/analysis, cmd/arrowbench,
// the root benchmarks) composes cells instead of hand-wiring each
// protocol pair, so adding a protocol or a topology automatically extends
// every sweep.
package engine

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// Workload selects what traffic an instance carries: a static request
// set (the paper's analytic setting) or a closed-loop load where every
// node keeps PerNode requests in flight one at a time (the Section 5
// experimental setting).
type Workload struct {
	// Set is the static request set; leave nil (with a positive
	// PerNode) for a closed-loop run.
	Set queuing.Set
	// PerNode is the number of closed-loop requests each node issues;
	// ignored when Set is non-nil.
	PerNode int
	// ThinkTime is the closed-loop delay between learning completion and
	// issuing the next request (0 = one local step).
	ThinkTime sim.Time
}

// Closed reports whether the workload is closed-loop: no static set and
// a positive PerNode. A generator that legitimately produced no requests
// is not reclassified as a closed-loop run (Static normalizes nil), and
// the ambiguous combination — nil set with PerNode < 1, e.g. a
// closed-loop experiment invoked with PerNode 0 — is rejected by every
// adapter via validate instead of silently running an empty static set.
func (w Workload) Closed() bool { return w.Set == nil && w.PerNode > 0 }

// validate rejects the ambiguous workload that is neither a static set
// nor a well-formed closed loop.
func (w Workload) validate() error {
	if w.Set == nil && w.PerNode < 1 {
		return fmt.Errorf("engine: workload has neither a static request set nor a positive closed-loop PerNode")
	}
	return nil
}

// Static returns a static-set workload. A nil set is normalized to an
// empty one, so empty generator output stays in static mode.
func Static(set queuing.Set) Workload {
	if set == nil {
		set = queuing.Set{}
	}
	return Workload{Set: set}
}

// ClosedLoop returns a closed-loop workload.
func ClosedLoop(perNode int, think sim.Time) Workload {
	return Workload{PerNode: perNode, ThinkTime: think}
}

// Instance is one fully specified experiment cell input: topology,
// workload and simulation options. Graph is required by the completely
// connected protocols (centralized, NTA, Ivy); Tree by arrow. Either may
// be nil when no cell protocol needs it.
type Instance struct {
	// Label names the cell in experiment output (e.g. "n=32").
	Label string
	// Graph is the network G.
	Graph *graph.Graph
	// Tree is the spanning tree T arrow runs on.
	Tree *tree.Tree
	// Root is the initial sink (arrow), central node (centralized) or
	// initial owner (NTA, Ivy).
	Root graph.NodeID
	// Workload is the traffic.
	Workload Workload
	// Latency is the delay model (nil = synchronous unit latency).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration, per cell.
	Seed int64
	// Faults is the deterministic liveness schedule the cell runs under
	// (nil = fault-free, bit-identical to a simulator without the fault
	// layer). Only closed-loop workloads support faults; the plan is
	// read-only and may be shared across cells, so a sweep stays
	// byte-identical across worker counts. Arrow recovers by
	// message-driven self-stabilizing repair, NTA/Ivy by re-issue, and
	// centralized by deterministic coordinator failover.
	Faults *sim.FaultPlan
	// Scheduler selects the simulator's event-queue implementation for
	// every run of this instance. Semantically inert — both schedulers
	// realize the identical event order (see sim.SchedulerKind) — it
	// exists so the cross-scheduler equivalence tests can pin that claim
	// protocol by protocol.
	Scheduler sim.SchedulerKind
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and hop count: closed-loop drivers feed it streamingly as
	// requests complete (fixed memory at any request count), static runs
	// from their completion records after the run. When the recorder is
	// a *stats.DistRecorder, the run's Cost carries Latency/Hops
	// distribution snapshots. The protocol hot paths do no recording
	// work when Recorder is nil.
	//
	// Recorders accumulate state, so each swept cell needs its own:
	// Grid panics rather than share a recording Instance across its
	// protocol column (the copies would race under Sweep) — grids that
	// record build one Instance per cell (as analysis.PerfExperiment does).
	Recorder stats.Recorder
	// Workers requests the tick-windowed parallel event drain inside each
	// closed-loop run (see sim.Config.Workers). Results are bit-identical
	// at any worker count: drivers that cannot shard safely (Ivy's
	// directory, the centralized coordinator) and configs outside the
	// drain's support (faults, non-FIFO arbitration, heap scheduler)
	// normalize back to a serial run. Static workloads ignore it.
	Workers int
}

// Cost is the standard result of one protocol run: the cost metrics the
// paper analyzes, in one shape for every protocol.
type Cost struct {
	// Protocol and Label identify the cell that produced the cost.
	Protocol string
	Label    string
	// N is the node count, Requests the completed request count.
	N        int
	Requests int64
	// TotalLatency is Σ per-request queuing latencies (Definition 3.2):
	// issue until the request is queued behind its predecessor, in both
	// workload modes and for every protocol.
	TotalLatency int64
	// QueueHops counts queue/find-message link traversals; QueueHops /
	// Requests is Figure 11's metric.
	QueueHops int64
	// ReplyHops counts completion-notification traversals (closed-loop
	// runs; the paper does not charge these to the queuing protocol, so
	// every adapter reports them separately from QueueHops).
	ReplyHops int64
	// MaxHops is the worst single-request hop count.
	MaxHops int
	// LocalCompletions counts requests that found their predecessor
	// locally (zero messages).
	LocalCompletions int64
	// Makespan is the simulated time at quiescence.
	Makespan sim.Time
	// Events is the number of simulator events the run consumed
	// (messages plus timers) — deterministic for a fixed instance, and
	// the denominator of the perf document's events/sec throughput.
	// Populated by closed-loop runs; zero for static-set runs.
	Events int64
	// Latency and Hops are per-request distribution snapshots (queuing
	// latency; queue/find hop counts) with p50/p90/p99/p999/max and
	// streaming mean/std, populated when Instance.Recorder is a
	// *stats.DistRecorder; zero (Count == 0) otherwise.
	Latency stats.Dist
	Hops    stats.Dist
	// Fault/recovery metrics, populated by closed-loop runs under a
	// FaultPlan and zero otherwise. Dropped/Deferred count messages the
	// faults destroyed or stalled; Reissued counts requests re-issued
	// after a loss, RepliesLost completion notifications lost in
	// transit. RepairEpisodes/RepairMessages/RepairTime account arrow's
	// message-driven self-stabilizing repair in the same hops/latency
	// currency as the protocol traffic. Affected counts completed
	// requests a fault touched.
	Dropped        int64
	Deferred       int64
	Reissued       int64
	RepliesLost    int64
	Affected       int64
	RepairEpisodes int64
	RepairMessages int64
	RepairTime     sim.Time
	// Availability is the clean-completion fraction 1 − Affected /
	// Requests: the share of requests no fault touched (1 for fault-free
	// runs).
	Availability float64
	// Order is the induced total order (static-set runs; nil otherwise).
	Order queuing.Order
}

// AvgLatency returns mean per-request latency.
func (c Cost) AvgLatency() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.TotalLatency) / float64(c.Requests)
}

// AvgQueueHops returns queue-message hops per operation.
func (c Cost) AvgQueueHops() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.QueueHops) / float64(c.Requests)
}

// Protocol is a queuing protocol the engine can run on an Instance.
// Implementations must be stateless values: the same Protocol is invoked
// concurrently from multiple sweep workers. Every built-in adapter
// (Arrow, Centralized, NTA, Ivy) supports both static-set and
// closed-loop workloads.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Run executes the protocol on the instance and returns its cost.
	// Runs are deterministic for a fixed instance.
	Run(inst Instance) (Cost, error)
}
