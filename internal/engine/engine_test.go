package engine

import (
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/workload"
)

// determinismGrid builds a cell grid covering every arbitration policy,
// several latency models (including random ones) and every protocol
// adapter in both workload modes it supports.
func determinismGrid(seed int64) []Cell {
	const n = 24
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)
	set := workload.Poisson(n, 0.5, 80, seed)
	if len(set) == 0 {
		set = workload.OneShot(n, n/2, seed)
	}
	var cells []Cell
	arbs := []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom}
	models := []sim.LatencyModel{nil, sim.AsyncUniform(7), sim.AsyncBimodal(5, 0.2)}
	i := 0
	for _, arb := range arbs {
		for _, m := range models {
			inst := Instance{
				Label:       fmt.Sprintf("arb=%v/model=%d", arb, i),
				Graph:       g,
				Tree:        t,
				Root:        0,
				Workload:    Static(set),
				Latency:     m,
				Arbitration: arb,
				Seed:        DeriveSeed(seed, i),
			}
			loopInst := inst
			loopInst.Workload = ClosedLoop(8, 0)
			cells = append(cells,
				Cell{Protocol: Arrow{}, Instance: inst},
				Cell{Protocol: NTA{}, Instance: inst},
				Cell{Protocol: Centralized{}, Instance: inst},
				Cell{Protocol: Ivy{}, Instance: inst},
				Cell{Protocol: Arrow{}, Instance: loopInst},
				Cell{Protocol: Centralized{}, Instance: loopInst},
				Cell{Protocol: NTA{}, Instance: loopInst},
				Cell{Protocol: Ivy{}, Instance: loopInst},
			)
			i++
		}
	}
	return cells
}

// TestSweepDeterministicAcrossWorkerCounts is the runner's core
// guarantee: the outcome slice of a parallel sweep is byte-identical to
// the sequential workers=1 run, across arbitration policies and
// random-latency models.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		cells := determinismGrid(seed)
		want := Sweep(cells, 1)
		if err := FirstError(want); err != nil {
			t.Fatalf("seed %d: sequential sweep failed: %v", seed, err)
		}
		wantBytes := make([]string, len(want))
		for i, o := range want {
			wantBytes[i] = fmt.Sprintf("%#v", o.Cost)
		}
		for _, workers := range []int{2, 4, 8, 0} {
			got := Sweep(cells, workers)
			for i := range got {
				if got[i].Err != nil {
					t.Fatalf("seed %d workers %d cell %d: %v", seed, workers, i, got[i].Err)
				}
				if g := fmt.Sprintf("%#v", got[i].Cost); g != wantBytes[i] {
					t.Errorf("seed %d workers %d cell %d (%s/%s): parallel result diverged\n got: %s\nwant: %s",
						seed, workers, i, cells[i].Protocol.Name(), cells[i].Instance.Label, g, wantBytes[i])
				}
			}
		}
	}
}

// TestSweepRepeatable re-runs the same sweep twice at full parallelism;
// both passes must agree (no hidden shared state across cells).
func TestSweepRepeatable(t *testing.T) {
	cells := determinismGrid(7)
	a := Sweep(cells, 8)
	b := Sweep(cells, 8)
	for i := range a {
		if fmt.Sprintf("%#v", a[i]) != fmt.Sprintf("%#v", b[i]) {
			t.Fatalf("cell %d: sweep is not repeatable", i)
		}
	}
}

// recorderGrid is determinismGrid with a fresh DistRecorder per cell.
// It must be rebuilt for every sweep: recorders accumulate state.
func recorderGrid(seed int64) []Cell {
	cells := determinismGrid(seed)
	for i := range cells {
		inst := cells[i].Instance
		inst.Recorder = stats.NewDistRecorder()
		cells[i].Instance = inst
	}
	return cells
}

// TestSweepDeterministicWithRecorders extends the worker-count
// determinism guarantee to instrumented sweeps: with a private
// DistRecorder per cell, the full Cost — including the Latency/Hops
// distribution snapshots — is byte-identical for every worker count.
func TestSweepDeterministicWithRecorders(t *testing.T) {
	want := Sweep(recorderGrid(5), 1)
	if err := FirstError(want); err != nil {
		t.Fatalf("sequential sweep failed: %v", err)
	}
	for i, o := range want {
		if o.Cost.Latency.Count != o.Cost.Requests || o.Cost.Hops.Count != o.Cost.Requests {
			t.Fatalf("cell %d: distribution count %d/%d != requests %d",
				i, o.Cost.Latency.Count, o.Cost.Hops.Count, o.Cost.Requests)
		}
	}
	for _, workers := range []int{2, 8, 0} {
		got := Sweep(recorderGrid(5), workers)
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("workers %d cell %d: %v", workers, i, got[i].Err)
			}
			g, w := fmt.Sprintf("%#v", got[i].Cost), fmt.Sprintf("%#v", want[i].Cost)
			if g != w {
				t.Errorf("workers %d cell %d: instrumented result diverged\n got: %s\nwant: %s", workers, i, g, w)
			}
		}
	}
}

// TestRecorderDistributionsConsistent cross-checks the distribution
// snapshots against the aggregate counters on every protocol adapter in
// both workload modes: counts equal Requests, the streaming mean equals
// TotalLatency/Requests, the hop maximum equals MaxHops, and the
// quantiles are monotone.
func TestRecorderDistributionsConsistent(t *testing.T) {
	const n, perNode = 12, 16
	for _, mode := range []string{"closed", "static"} {
		w := ClosedLoop(perNode, 0)
		if mode == "static" {
			w = Static(workload.Poisson(n, 0.7, 60, 3))
		}
		for _, p := range []Protocol{Arrow{}, Centralized{}, NTA{}, Ivy{}} {
			rec := stats.NewDistRecorder()
			cost, err := p.Run(Instance{
				Graph:    graph.Complete(n),
				Tree:     tree.BalancedBinary(n),
				Root:     0,
				Workload: w,
				Recorder: rec,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name(), mode, err)
			}
			if cost.Latency.Count != cost.Requests || cost.Hops.Count != cost.Requests {
				t.Errorf("%s/%s: distribution counts %d/%d, requests %d",
					p.Name(), mode, cost.Latency.Count, cost.Hops.Count, cost.Requests)
			}
			if cost.Requests > 0 {
				if got, want := cost.Latency.Mean, cost.AvgLatency(); math.Abs(got-want) > 1e-9*math.Max(1, want) {
					t.Errorf("%s/%s: streaming mean %v != TotalLatency/Requests %v", p.Name(), mode, got, want)
				}
			}
			if int(cost.Hops.Max) != cost.MaxHops {
				t.Errorf("%s/%s: hop distribution max %d != MaxHops %d",
					p.Name(), mode, cost.Hops.Max, cost.MaxHops)
			}
			for _, d := range []stats.Dist{cost.Latency, cost.Hops} {
				if d.P50 > d.P90 || d.P90 > d.P99 || d.P99 > d.P999 || d.P999 > d.Max || d.Min > d.P50 {
					t.Errorf("%s/%s: quantiles not monotone: %+v", p.Name(), mode, d)
				}
			}
		}
	}
}

// TestRecorderMemoryIndependentOfRequests is the paper-scale memory
// pin: a closed-loop run at the paper's 100k requests per node streams
// every completion through the recorder, yet the histogram's bucket
// storage is the same fixed array a 100-request run uses — per-request
// observability without per-request storage.
func TestRecorderMemoryIndependentOfRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	const n, perNode = 4, 100000
	big := stats.NewDistRecorder()
	cost, err := NTA{}.Run(Instance{
		Graph:    graph.Complete(n),
		Workload: ClosedLoop(perNode, 0),
		Recorder: big,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * perNode); cost.Requests != want || big.Latency.Count() != want {
		t.Fatalf("completed %d requests, recorded %d, want %d", cost.Requests, big.Latency.Count(), want)
	}
	small := stats.NewDistRecorder()
	small.RecordRequest(1, 1)
	if big.Latency.Buckets() != small.Latency.Buckets() || big.Hops.Buckets() != small.Hops.Buckets() {
		t.Errorf("histogram storage grew with request count: %d/%d buckets vs %d/%d",
			big.Latency.Buckets(), big.Hops.Buckets(), small.Latency.Buckets(), small.Hops.Buckets())
	}
}

func sequentialInstance(n, requests int) Instance {
	return Instance{
		Graph:    graph.Complete(n),
		Tree:     tree.BalancedBinary(n),
		Root:     0,
		Workload: Static(workload.Sequential(n, requests, 50, 9)),
	}
}

// TestAdaptersAgreeOnSequentialOrder: with requests spaced far apart
// every protocol must queue in issue order.
func TestAdaptersAgreeOnSequentialOrder(t *testing.T) {
	inst := sequentialInstance(16, 12)
	for _, p := range []Protocol{Arrow{}, NTA{}, Centralized{}, Ivy{}} {
		cost, err := p.Run(inst)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if cost.Requests != 12 {
			t.Errorf("%s: completed %d of 12", p.Name(), cost.Requests)
		}
		if !queuing.ValidOrder(cost.Order, 12) {
			t.Fatalf("%s: invalid order %v", p.Name(), cost.Order)
		}
		for i, id := range cost.Order {
			if id != i {
				t.Errorf("%s: position %d queued request %d, want %d", p.Name(), i, id, i)
			}
		}
	}
}

// TestClosedLoopAdapters: every protocol's loop adapter completes
// PerNode*n requests and reports the figure metrics, with reply traffic
// split from queue traffic.
func TestClosedLoopAdapters(t *testing.T) {
	const n, perNode = 15, 20
	inst := Instance{
		Graph:    graph.Complete(n),
		Tree:     tree.BalancedBinary(n),
		Root:     0,
		Workload: ClosedLoop(perNode, 0),
	}
	for _, p := range []Protocol{Arrow{}, Centralized{}, NTA{}, Ivy{}} {
		cost, err := p.Run(inst)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if cost.Requests != n*perNode {
			t.Errorf("%s: completed %d of %d", p.Name(), cost.Requests, n*perNode)
		}
		if cost.Makespan <= 0 || cost.AvgLatency() <= 0 {
			t.Errorf("%s: degenerate cost %+v", p.Name(), cost)
		}
		if cost.ReplyHops <= 0 {
			t.Errorf("%s: closed-loop run reported no reply traffic: %+v", p.Name(), cost)
		}
		if cost.QueueHops <= 0 {
			t.Errorf("%s: closed-loop run reported no queue traffic: %+v", p.Name(), cost)
		}
	}
}

// TestEmptyStaticWorkloadStaysStatic: a generator that produced no
// requests must run as an empty static set, not be reclassified as a
// closed-loop workload (the nil-slice footgun), and a zero Workload is
// not closed either.
func TestEmptyStaticWorkloadStaysStatic(t *testing.T) {
	if Static(nil).Closed() || (Workload{}).Closed() {
		t.Fatal("empty workloads must not be closed-loop")
	}
	if !ClosedLoop(1, 0).Closed() {
		t.Fatal("ClosedLoop(1, 0) must be closed-loop")
	}
	inst := Instance{
		Graph:    graph.Complete(6),
		Tree:     tree.BalancedBinary(6),
		Root:     0,
		Workload: Static(nil),
	}
	for _, p := range []Protocol{Arrow{}, NTA{}, Centralized{}, Ivy{}} {
		cost, err := p.Run(inst)
		if err != nil {
			t.Fatalf("%s: empty static set errored: %v", p.Name(), err)
		}
		if cost.Requests != 0 || cost.QueueHops != 0 {
			t.Errorf("%s: empty set produced traffic: %+v", p.Name(), cost)
		}
		// The ambiguous workload — no set, no positive PerNode (e.g. a
		// closed-loop experiment invoked with PerNode 0) — must error,
		// not run as an accidental empty static set.
		for _, w := range []Workload{{}, ClosedLoop(0, 0)} {
			bad := inst
			bad.Workload = w
			if _, err := p.Run(bad); err == nil {
				t.Errorf("%s: ambiguous workload %+v did not error", p.Name(), w)
			}
		}
	}
}

// TestAdapterTopologyErrors: missing topology inputs fail with a
// descriptive error rather than wrong numbers, in both workload modes.
func TestAdapterTopologyErrors(t *testing.T) {
	for _, w := range []Workload{ClosedLoop(5, 0), Static(workload.OneShot(8, 2, 1))} {
		for _, p := range []Protocol{NTA{}, Ivy{}, Centralized{}} {
			if _, err := p.Run(Instance{Workload: w}); err == nil {
				t.Errorf("%s: expected error for nil graph (closed=%v)", p.Name(), w.Closed())
			}
		}
		if _, err := (Arrow{}).Run(Instance{Workload: w}); err == nil {
			t.Errorf("arrow: expected error for nil tree (closed=%v)", w.Closed())
		}
	}
}

// TestSweepErrorPropagation: a failing cell surfaces through FirstError
// without disturbing sibling cells.
func TestSweepErrorPropagation(t *testing.T) {
	good := sequentialInstance(8, 4)
	bad := Instance{Workload: ClosedLoop(2, 0)} // nil graph: NTA must error
	outs := Sweep([]Cell{
		{Protocol: Arrow{}, Instance: good},
		{Protocol: NTA{}, Instance: bad},
		{Protocol: Arrow{}, Instance: good},
	}, 2)
	if err := FirstError(outs); err == nil {
		t.Fatal("expected sweep error")
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Error("healthy cells must not fail")
	}
	if outs[1].Err == nil {
		t.Error("failing cell lost its error")
	}
}

// TestGridOrder: Grid is instance-major and deterministic.
func TestGridOrder(t *testing.T) {
	a := sequentialInstance(8, 4)
	a.Label = "a"
	b := sequentialInstance(8, 4)
	b.Label = "b"
	cells := Grid([]Instance{a, b}, Arrow{}, NTA{})
	want := []struct{ label, proto string }{
		{"a", "arrow"}, {"a", "nta"}, {"b", "arrow"}, {"b", "nta"},
	}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, w := range want {
		if cells[i].Instance.Label != w.label || cells[i].Protocol.Name() != w.proto {
			t.Errorf("cell %d = %s/%s, want %s/%s",
				i, cells[i].Instance.Label, cells[i].Protocol.Name(), w.label, w.proto)
		}
	}
}

// TestGridRejectsSharedRecorder: crossing a recording instance with a
// protocol column would share one accumulating recorder across
// concurrently swept cells; Grid must refuse eagerly.
func TestGridRejectsSharedRecorder(t *testing.T) {
	inst := sequentialInstance(8, 4)
	inst.Recorder = stats.NewDistRecorder()
	defer func() {
		if recover() == nil {
			t.Error("Grid accepted a shared Recorder across a protocol column")
		}
	}()
	Grid([]Instance{inst}, Arrow{}, NTA{})
}

// TestGridAllowsRecorderWithOneProtocol: a single-protocol column with
// per-instance recorders has no sharing, so recording instances pass.
func TestGridAllowsRecorderWithOneProtocol(t *testing.T) {
	a, b := sequentialInstance(8, 4), sequentialInstance(8, 4)
	a.Recorder = stats.NewDistRecorder()
	b.Recorder = stats.NewDistRecorder()
	if cells := Grid([]Instance{a, b}, Arrow{}); len(cells) != 2 {
		t.Errorf("got %d cells, want 2", len(cells))
	}
}

// TestGridRejectsRecorderSharedAcrossInstances: the instance axis is
// guarded too — one recorder reused by several instances would race
// even with a single protocol.
func TestGridRejectsRecorderSharedAcrossInstances(t *testing.T) {
	rec := stats.NewDistRecorder()
	a, b := sequentialInstance(8, 4), sequentialInstance(8, 4)
	a.Recorder = rec
	b.Recorder = rec
	defer func() {
		if recover() == nil {
			t.Error("Grid accepted one Recorder shared across instances")
		}
	}()
	Grid([]Instance{a, b}, Arrow{})
}

// TestParallelMap: every index is visited exactly once, for pool sizes
// below, at, and above the item count.
func TestParallelMap(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var visits [n]atomic.Int32
		ParallelMap(n, workers, func(i int) { visits[i].Add(1) })
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers %d: index %d visited %d times", workers, i, got)
			}
		}
	}
	ParallelMap(0, 4, func(i int) { t.Error("fn called for n=0") })
}

// TestDeriveSeed: adjacent cells get decorrelated seeds.
func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at cell %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("base seed must influence derived seeds")
	}
}

// TestIvyAdapterCost: a request at the owner completes locally, and the
// serialized clock charges metric distance along pointer chains.
func TestIvyAdapterCost(t *testing.T) {
	g := graph.Complete(4)
	set := queuing.NewSet([]queuing.Request{
		{Node: 0, Time: 0},  // at the initial owner: local
		{Node: 2, Time: 10}, // one chain hop to 0
		{Node: 2, Time: 30}, // local again (2 owns it now)
	})
	cost, err := Ivy{}.Run(Instance{Graph: g, Root: 0, Workload: Static(set)})
	if err != nil {
		t.Fatal(err)
	}
	if cost.LocalCompletions != 2 {
		t.Errorf("local completions = %d, want 2", cost.LocalCompletions)
	}
	if cost.QueueHops != 1 {
		t.Errorf("queue hops = %d, want 1", cost.QueueHops)
	}
	if cost.MaxHops != 1 {
		t.Errorf("max hops = %d, want 1", cost.MaxHops)
	}
}

// TestSchedulerEquivalenceAcrossProtocols is the engine half of the
// tentpole's correctness proof (the sim package pins raw traces): every
// protocol adapter, in both workload modes, produces a bit-identical
// Cost — counters, makespan, event count, order, and the full
// latency/hop histogram snapshots — under the heap and ladder
// schedulers, across arbitration modes, latency models and seeds.
func TestSchedulerEquivalenceAcrossProtocols(t *testing.T) {
	const n = 13
	g := graph.Complete(n)
	tr := tree.BalancedBinary(n)
	set := workload.Poisson(n, 0.6, 50, 3)
	workloads := []struct {
		name string
		w    Workload
	}{
		{"closed", ClosedLoop(9, 0)},
		{"closed-think", ClosedLoop(5, 3)},
		{"static", Static(set)},
	}
	arbs := []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom}
	models := []sim.LatencyModel{nil, sim.AsyncUniform(3), sim.AsyncBimodal(6, 0.3)}
	for _, p := range []Protocol{Arrow{}, Centralized{}, NTA{}, Ivy{}} {
		for _, wl := range workloads {
			for _, arb := range arbs {
				for mi, m := range models {
					for seed := int64(1); seed <= 2; seed++ {
						run := func(k sim.SchedulerKind) Cost {
							rec := stats.NewDistRecorder()
							cost, err := p.Run(Instance{
								Graph:       g,
								Tree:        tr,
								Root:        0,
								Workload:    wl.w,
								Latency:     m,
								Arbitration: arb,
								Seed:        seed,
								Scheduler:   k,
								Recorder:    rec,
							})
							if err != nil {
								t.Fatalf("%s/%s/%v/model=%d/seed=%d/%v: %v",
									p.Name(), wl.name, arb, mi, seed, k, err)
							}
							return cost
						}
						heap, ladder := run(sim.SchedHeap), run(sim.SchedLadder)
						if !reflect.DeepEqual(heap, ladder) {
							t.Errorf("%s/%s/%v/model=%d/seed=%d: heap and ladder costs differ:\nheap:   %+v\nladder: %+v",
								p.Name(), wl.name, arb, mi, seed, heap, ladder)
						}
					}
				}
			}
		}
	}
}

// faultGrid builds closed-loop cells for every protocol under a shared
// read-only FaultPlan (node churn, plus tree-link churn for arrow), with
// a private recorder per cell.
func faultGrid(seed int64) []Cell {
	const n = 20
	g := graph.Complete(n)
	t := tree.BalancedBinary(n)
	nodePlan := &sim.FaultPlan{Events: sim.NodeChurn(n, nil, 1, 20, 15, 500, seed)}
	linkPlan := &sim.FaultPlan{Events: sim.LinkChurn(sim.TreeLinks(t), 1.5, 20, 15, 500, seed)}
	queuePlan := &sim.FaultPlan{Policy: sim.FaultQueue, Events: nodePlan.Events}
	var cells []Cell
	for i, plan := range []*sim.FaultPlan{nodePlan, queuePlan} {
		inst := Instance{
			Label:    fmt.Sprintf("faults=%d", i),
			Graph:    g,
			Tree:     t,
			Root:     0,
			Workload: ClosedLoop(12, 0),
			Seed:     DeriveSeed(seed, i),
			Faults:   plan,
			Recorder: stats.NewDistRecorder(),
		}
		for _, p := range []Protocol{Arrow{}, Centralized{}, NTA{}, Ivy{}} {
			c := inst
			c.Recorder = stats.NewDistRecorder()
			cells = append(cells, Cell{Protocol: p, Instance: c})
		}
	}
	arrowInst := Instance{
		Label:    "faults=tree-links",
		Tree:     t,
		Root:     0,
		Workload: ClosedLoop(12, 0),
		Seed:     DeriveSeed(seed, 9),
		Faults:   linkPlan,
		Recorder: stats.NewDistRecorder(),
	}
	cells = append(cells, Cell{Protocol: Arrow{}, Instance: arrowInst})
	return cells
}

// TestSweepDeterministicWithFaults mirrors the worker-count determinism
// guarantee on faulty cells: with Instance.Faults set (shared read-only
// plans across cells), the full Cost — fault counters, repair
// accounting, availability, and the distribution snapshots — is
// byte-identical for every worker count.
func TestSweepDeterministicWithFaults(t *testing.T) {
	want := Sweep(faultGrid(3), 1)
	if err := FirstError(want); err != nil {
		t.Fatalf("sequential faulty sweep failed: %v", err)
	}
	anyFaults := false
	for i, o := range want {
		if o.Cost.Dropped > 0 || o.Cost.Deferred > 0 {
			anyFaults = true
		}
		if o.Cost.Availability < 0 || o.Cost.Availability > 1 {
			t.Fatalf("cell %d: availability %v out of range", i, o.Cost.Availability)
		}
	}
	if !anyFaults {
		t.Fatal("fault grid produced no fault activity; the test is vacuous")
	}
	for _, workers := range []int{2, 4, 0} {
		got := Sweep(faultGrid(3), workers)
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("workers %d cell %d: %v", workers, i, got[i].Err)
			}
			g, w := fmt.Sprintf("%#v", got[i].Cost), fmt.Sprintf("%#v", want[i].Cost)
			if g != w {
				t.Errorf("workers %d cell %d: faulty sweep diverged\n got: %s\nwant: %s", workers, i, g, w)
			}
		}
	}
}

// TestFaultsRequireClosedLoop: every adapter refuses a static workload
// with faults rather than silently ignoring the plan.
func TestFaultsRequireClosedLoop(t *testing.T) {
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 1, Kind: sim.NodeDown, U: 1}, {At: 5, Kind: sim.NodeUp, U: 1},
	}}
	inst := sequentialInstance(8, 4)
	inst.Faults = plan
	for _, p := range []Protocol{Arrow{}, NTA{}, Centralized{}, Ivy{}} {
		if _, err := p.Run(inst); err == nil {
			t.Errorf("%s: static workload with faults accepted", p.Name())
		}
	}
}
