package engine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/nta"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
)

// MultiInstance is one fully specified multi-object experiment cell: k
// protocol instances sharded across an n-node shared network. Unlike
// the single-object Instance there is no explicit Graph/Tree/Root — the
// shared network is the implicit complete metric on Nodes nodes, and
// each object roots at its own home node (object o at o mod Nodes), so
// the k instances spread the root hotspot instead of stacking it.
type MultiInstance struct {
	// Label names the cell in experiment output (e.g. "n=32/k=1000").
	Label string
	// Nodes is the shared network's node count.
	Nodes int
	// Workload is the traffic; it must be closed-loop. Workload.Objects
	// of 0 or 1 runs the degenerate single-object case through the same
	// sharded machinery.
	Workload Workload
	// Latency, Arbitration, Seed, Scheduler, Workers and LinkTxTime
	// carry the same simulator knobs as Instance. A positive LinkTxTime
	// is what makes the network shared in a measurable sense: the
	// objects' combined traffic queues on per-link capacity instead of
	// superposing for free.
	Latency     sim.LatencyModel
	Arbitration sim.Arbitration
	Seed        int64
	Scheduler   sim.SchedulerKind
	Workers     int
	LinkTxTime  sim.Time
	// Recorder observes the aggregate completion stream (every object);
	// ObjectRecorders entry o observes exactly object o's completions.
	// The sharing rules of Instance.Recorder apply to both.
	Recorder        stats.Recorder
	ObjectRecorders []stats.Recorder
}

// Fairness summarizes how evenly a multi-object run treated its k
// objects: extremes and tail quantiles across the per-object costs.
// Quantiles are nearest-rank over the object population, so they are
// exact and deterministic. The JSON tags are the wire shape of the
// shard experiment output.
type Fairness struct {
	// Objects is the population size the quantiles range over.
	Objects int `json:"objects"`
	// MinRequests/MaxRequests bound the per-object request counts — the
	// spread the Zipf skew induces.
	MinRequests int64 `json:"min_requests"`
	MaxRequests int64 `json:"max_requests"`
	// MinAvgLatency/MaxAvgLatency/P99AvgLatency summarize the objects'
	// mean queuing latencies; P99AvgLatency is the latency the slowest
	// 1% of objects exceed.
	MinAvgLatency float64 `json:"min_avg_latency"`
	MaxAvgLatency float64 `json:"max_avg_latency"`
	P99AvgLatency float64 `json:"p99_avg_latency"`
	// MinAvailability/MaxAvailability/P1Availability summarize the
	// objects' clean-completion fractions. Availability is
	// higher-is-better, so its tail is the low end: P1Availability is
	// the availability 99% of objects meet or exceed. All three are 1
	// for fault-free runs (the multi-object tier currently rejects
	// fault plans, so the fields future-proof the schema).
	MinAvailability float64 `json:"min_availability"`
	MaxAvailability float64 `json:"max_availability"`
	P1Availability  float64 `json:"p1_availability"`
}

// MultiCost is the result of one multi-object run: the standard Cost
// for the combined traffic, one Cost per object, and the fairness
// summary across them.
type MultiCost struct {
	// Aggregate covers all objects' traffic. Its Makespan/Events are
	// whole-run quantities; its Latency/Hops snapshots are populated
	// when MultiInstance.Recorder is a *stats.DistRecorder.
	Aggregate Cost
	// PerObject holds object o's cost at index o. Makespan and Events
	// stay zero (they are global); Latency/Hops snapshots are populated
	// for objects whose ObjectRecorders entry is a *stats.DistRecorder.
	PerObject []Cost
	// Fairness summarizes the per-object spread.
	Fairness Fairness
}

// MultiProtocol is a Protocol that can also run sharded multi-object
// instances. All four built-in adapters implement it.
type MultiProtocol interface {
	Protocol
	// RunMulti executes k sharded instances of the protocol on the
	// shared network and returns per-object and aggregate costs.
	RunMulti(inst MultiInstance) (MultiCost, error)
}

// objects normalizes the workload's object dimension for the shard
// driver: 0 (unset) runs as the single-object degenerate case.
func (m MultiInstance) objects() int {
	if m.Workload.Objects < 1 {
		return 1
	}
	return m.Workload.Objects
}

// validate rejects multi-instances the shard tier cannot run.
func (m MultiInstance) validate() error {
	if m.Nodes < 1 {
		return fmt.Errorf("engine: MultiInstance.Nodes must be >= 1, got %d", m.Nodes)
	}
	if err := m.Workload.validate(); err != nil {
		return err
	}
	if !m.Workload.Closed() {
		return fmt.Errorf("engine: multi-object runs require a closed-loop workload")
	}
	return nil
}

// shardSpec projects a MultiInstance onto the shard driver's run spec —
// the multi-object counterpart of loopSpec.
func shardSpec(m MultiInstance) shard.Spec {
	return shard.Spec{
		Spec: loop.Spec{
			PerNode:     m.Workload.PerNode,
			ThinkTime:   m.Workload.ThinkTime,
			Latency:     m.Latency,
			Arbitration: m.Arbitration,
			Seed:        m.Seed,
			Scheduler:   m.Scheduler,
			Recorder:    m.Recorder,
			Workers:     m.Workers,
			LinkTxTime:  m.LinkTxTime,
		},
		Objects:         m.objects(),
		Skew:            m.Workload.Skew,
		ObjectRecorders: m.ObjectRecorders,
	}
}

// runShard is the shared multi-object adapter body: run the stepper
// through the shard driver on the implicit complete metric, then map
// the per-object and aggregate results onto Cost and summarize
// fairness.
func runShard(proto string, m MultiInstance, step shard.Stepper) (MultiCost, error) {
	res, err := shard.Run(sim.NewCompleteTopology(m.Nodes), step, proto, shardSpec(m))
	if err != nil {
		return MultiCost{}, err
	}
	mc := MultiCost{
		Aggregate: loopCost(proto, m.Label, loopCounters(res.Agg)),
		PerObject: make([]Cost, len(res.PerObject)),
	}
	attachDists(&mc.Aggregate, m.Recorder)
	for o := range res.PerObject {
		c := loopCost(proto, m.Label, loopCounters(res.PerObject[o]))
		var rec stats.Recorder
		if m.ObjectRecorders != nil {
			rec = m.ObjectRecorders[o]
		}
		attachDists(&c, rec)
		mc.PerObject[o] = c
	}
	mc.Fairness = summarizeFairness(mc.PerObject)
	return mc, nil
}

// summarizeFairness folds the per-object costs into the fairness
// summary.
func summarizeFairness(perObject []Cost) Fairness {
	k := len(perObject)
	f := Fairness{Objects: k}
	if k == 0 {
		return f
	}
	lats := make([]float64, k)
	avails := make([]float64, k)
	f.MinRequests = math.MaxInt64
	for o, c := range perObject {
		lats[o] = c.AvgLatency()
		avails[o] = c.Availability
		if c.Requests < f.MinRequests {
			f.MinRequests = c.Requests
		}
		if c.Requests > f.MaxRequests {
			f.MaxRequests = c.Requests
		}
	}
	sort.Float64s(lats)
	sort.Float64s(avails)
	f.MinAvgLatency = lats[0]
	f.MaxAvgLatency = lats[k-1]
	f.P99AvgLatency = nearestRank(lats, 99)
	f.MinAvailability = avails[0]
	f.MaxAvailability = avails[k-1]
	f.P1Availability = nearestRank(avails, 1)
	return f
}

// nearestRank returns the p-th percentile of an ascending slice by the
// nearest-rank rule: the smallest element with at least p% of the
// population at or below it.
func nearestRank(sorted []float64, p float64) float64 {
	n := len(sorted)
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// multiFromInstance projects a single-object Instance carrying a
// multi-object workload onto the MultiInstance the shard tier runs;
// Protocol.Run uses it to dispatch transparently. Graph/Tree/Root do
// not carry over — the shared network is the implicit complete metric
// and each object roots at its own home node.
func multiFromInstance(inst Instance, nodes int) MultiInstance {
	return MultiInstance{
		Label:           inst.Label,
		Nodes:           nodes,
		Workload:        inst.Workload,
		Latency:         inst.Latency,
		Arbitration:     inst.Arbitration,
		Seed:            inst.Seed,
		Scheduler:       inst.Scheduler,
		Workers:         inst.Workers,
		LinkTxTime:      inst.LinkTxTime,
		Recorder:        inst.Recorder,
		ObjectRecorders: inst.ObjectRecorders,
	}
}

// RunMulti implements MultiProtocol: k arrow instances, each on its own
// rotated binary tree (see arrow.ShardForest), sharing the network.
func (p Arrow) RunMulti(m MultiInstance) (MultiCost, error) {
	if err := m.validate(); err != nil {
		return MultiCost{}, err
	}
	step, err := arrow.NewShardForest(m.Nodes, m.objects())
	if err != nil {
		return MultiCost{}, err
	}
	return runShard(p.Name(), m, step)
}

// RunMulti implements MultiProtocol: k coordinators, object o's at node
// o mod Nodes, with serialization supplied by the shared network's
// per-link capacity rather than an explicit service time (see
// centralized.ShardCenters). ServiceTime and FailoverDelay do not apply
// to the sharded tier.
func (p Centralized) RunMulti(m MultiInstance) (MultiCost, error) {
	if err := m.validate(); err != nil {
		return MultiCost{}, err
	}
	step, err := centralized.NewShardCenters(m.Nodes, m.objects())
	if err != nil {
		return MultiCost{}, err
	}
	return runShard(p.Name(), m, step)
}

// RunMulti implements MultiProtocol: k independent path-reversal
// pointer sets over the shared metric (see nta.ShardReversal).
func (p NTA) RunMulti(m MultiInstance) (MultiCost, error) {
	if err := m.validate(); err != nil {
		return MultiCost{}, err
	}
	step, err := nta.NewShardReversal(m.Nodes, m.objects())
	if err != nil {
		return MultiCost{}, err
	}
	return runShard(p.Name(), m, step)
}

// RunMulti implements MultiProtocol: k independent probable-owner
// directories over the shared metric (see ivy.ShardDirectory).
func (p Ivy) RunMulti(m MultiInstance) (MultiCost, error) {
	if err := m.validate(); err != nil {
		return MultiCost{}, err
	}
	step, err := ivy.NewShardDirectory(m.Nodes, m.objects())
	if err != nil {
		return MultiCost{}, err
	}
	return runShard(p.Name(), m, step)
}
