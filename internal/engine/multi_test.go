package engine_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// multiProtocols returns the four adapters through the MultiProtocol
// interface; the assignment is itself the compile-time check that all
// four implement it.
func multiProtocols() []engine.MultiProtocol {
	return []engine.MultiProtocol{
		engine.Arrow{},
		engine.Centralized{},
		engine.NTA{},
		engine.Ivy{},
	}
}

// TestRunMultiAllProtocols runs every adapter's sharded tier and checks
// the cross-protocol invariants: request conservation into the object
// partition, the fairness extremes bracketing the per-object values,
// and per-object recorder wiring.
func TestRunMultiAllProtocols(t *testing.T) {
	const n, k, perNode = 12, 16, 20
	for _, p := range multiProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			recs := make([]stats.Recorder, k)
			dists := make([]*stats.DistRecorder, k)
			for o := range recs {
				dists[o] = stats.NewDistRecorder()
				recs[o] = dists[o]
			}
			agg := stats.NewDistRecorder()
			mc, err := p.RunMulti(engine.MultiInstance{
				Label:           "multi",
				Nodes:           n,
				Workload:        engine.NewClosedLoop(perNode).Objects(k).Zipf(1.1).MustBuild(),
				Seed:            4,
				LinkTxTime:      1,
				Recorder:        agg,
				ObjectRecorders: recs,
			})
			if err != nil {
				t.Fatal(err)
			}
			if mc.Aggregate.Requests != int64(n)*perNode {
				t.Errorf("aggregate completed %d requests, want %d", mc.Aggregate.Requests, n*perNode)
			}
			if len(mc.PerObject) != k {
				t.Fatalf("got %d per-object costs, want %d", len(mc.PerObject), k)
			}
			var sum int64
			for o, c := range mc.PerObject {
				sum += c.Requests
				if c.Requests < mc.Fairness.MinRequests || c.Requests > mc.Fairness.MaxRequests {
					t.Errorf("object %d requests %d outside fairness bounds [%d, %d]",
						o, c.Requests, mc.Fairness.MinRequests, mc.Fairness.MaxRequests)
				}
				if c.Latency.Count != dists[o].Latency.Snapshot().Count {
					t.Errorf("object %d cost snapshot decoupled from its recorder", o)
				}
				if c.Requests > 0 && c.Latency.Count != c.Requests {
					t.Errorf("object %d recorder saw %d completions, counters say %d",
						o, c.Latency.Count, c.Requests)
				}
			}
			if sum != mc.Aggregate.Requests {
				t.Errorf("per-object requests sum to %d, aggregate says %d", sum, mc.Aggregate.Requests)
			}
			if mc.Aggregate.Latency.Count != mc.Aggregate.Requests {
				t.Errorf("aggregate recorder saw %d completions, want %d",
					mc.Aggregate.Latency.Count, mc.Aggregate.Requests)
			}
			if mc.Fairness.Objects != k {
				t.Errorf("fairness ranges over %d objects, want %d", mc.Fairness.Objects, k)
			}
			if mc.Fairness.MinAvailability != 1 || mc.Fairness.P1Availability != 1 {
				t.Errorf("fault-free availability fairness %+v, want all 1", mc.Fairness)
			}
			if mc.Fairness.P99AvgLatency < mc.Fairness.MinAvgLatency ||
				mc.Fairness.P99AvgLatency > mc.Fairness.MaxAvgLatency {
				t.Errorf("P99 avg latency %g outside [%g, %g]", mc.Fairness.P99AvgLatency,
					mc.Fairness.MinAvgLatency, mc.Fairness.MaxAvgLatency)
			}
		})
	}
}

// TestRunDispatchesMulti pins the transparent dispatch: a plain
// Instance whose workload carries Objects > 1 must run the sharded
// tier and return exactly the multi run's aggregate, so sweeps and
// grids gain the object dimension without new plumbing.
func TestRunDispatchesMulti(t *testing.T) {
	const n, k, perNode = 10, 8, 15
	w := engine.NewClosedLoop(perNode).Objects(k).Zipf(1.1).MustBuild()
	g := graph.Complete(n)
	tr := tree.BalancedBinary(n)
	for _, p := range multiProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			got, err := p.Run(engine.Instance{
				Label:    "dispatch",
				Graph:    g,
				Tree:     tr,
				Workload: w,
				Seed:     6,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.RunMulti(engine.MultiInstance{
				Label:    "dispatch",
				Nodes:    n,
				Workload: w,
				Seed:     6,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want.Aggregate) {
				t.Errorf("dispatched cost diverged from RunMulti aggregate:\n run  %+v\n mult %+v",
					got, want.Aggregate)
			}
		})
	}
}

// TestMultiValidation covers the instance combinations the object
// dimension rejects.
func TestMultiValidation(t *testing.T) {
	const n = 8
	g := graph.Complete(n)
	tr := tree.BalancedBinary(n)
	multi := engine.NewClosedLoop(5).Objects(4).MustBuild()
	single := engine.NewClosedLoop(5).MustBuild()

	t.Run("object recorders on single-object run", func(t *testing.T) {
		_, err := engine.Arrow{}.Run(engine.Instance{
			Tree:            tr,
			Workload:        single,
			ObjectRecorders: make([]stats.Recorder, 1),
		})
		if err == nil || !strings.Contains(err.Error(), "ObjectRecorders") {
			t.Errorf("got %v, want ObjectRecorders rejection", err)
		}
	})
	t.Run("faults on multi-object run", func(t *testing.T) {
		_, err := engine.NTA{}.Run(engine.Instance{
			Graph:    g,
			Workload: multi,
			Faults:   &sim.FaultPlan{},
		})
		if err == nil || !strings.Contains(err.Error(), "fault") {
			t.Errorf("got %v, want fault rejection", err)
		}
	})
	t.Run("static multi workload", func(t *testing.T) {
		if _, err := engine.NewStatic(nil).Objects(4).Build(); err == nil {
			t.Error("builder accepted Objects on a static set")
		}
	})
	t.Run("skew without objects", func(t *testing.T) {
		if _, err := engine.NewClosedLoop(5).Zipf(1.1).Build(); err == nil {
			t.Error("builder accepted skew without an object dimension")
		}
	})
	t.Run("recorder length mismatch", func(t *testing.T) {
		_, err := engine.Ivy{}.RunMulti(engine.MultiInstance{
			Nodes:           n,
			Workload:        multi,
			ObjectRecorders: make([]stats.Recorder, 3),
		})
		if err == nil {
			t.Error("mismatched ObjectRecorders length was accepted")
		}
	})
}

// TestGridRejectsSharedObjectRecorder extends the sharing gate to the
// object dimension: one recorder appearing in two instances' object
// slots — or twice within one instance — must panic.
func TestGridRejectsSharedObjectRecorder(t *testing.T) {
	w := engine.NewClosedLoop(5).Objects(2).MustBuild()
	shared := stats.NewDistRecorder()
	expectPanic := func(t *testing.T, instances []engine.Instance) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("Grid accepted a shared object recorder")
			}
		}()
		engine.Grid(instances, engine.NTA{})
	}
	t.Run("across instances", func(t *testing.T) {
		expectPanic(t, []engine.Instance{
			{Label: "a", Workload: w, ObjectRecorders: []stats.Recorder{shared, nil}},
			{Label: "b", Workload: w, ObjectRecorders: []stats.Recorder{nil, shared}},
		})
	})
	t.Run("within one instance", func(t *testing.T) {
		expectPanic(t, []engine.Instance{
			{Label: "a", Workload: w, ObjectRecorders: []stats.Recorder{shared, shared}},
		})
	})
	t.Run("aggregate and object slot", func(t *testing.T) {
		expectPanic(t, []engine.Instance{
			{Label: "a", Workload: w, Recorder: shared,
				ObjectRecorders: []stats.Recorder{shared, nil}},
		})
	})
	t.Run("across protocol columns", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Grid crossed a recording instance with two protocols")
			}
		}()
		engine.Grid([]engine.Instance{
			{Label: "a", Workload: w, ObjectRecorders: []stats.Recorder{shared, nil}},
		}, engine.NTA{}, engine.Ivy{})
	})
}
