package engine

import (
	"fmt"
	"reflect"

	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Cell is one independent experiment: a protocol applied to an instance.
type Cell struct {
	Protocol Protocol
	Instance Instance
}

// Outcome is the result slot of one cell.
type Outcome struct {
	Cost Cost
	Err  error
}

// Sweep runs every cell and returns outcomes in cell order. Cells are
// fanned across a worker pool of the given size (0 or negative =
// GOMAXPROCS); each cell is an isolated simulation seeded from its own
// Instance.Seed, so the outcome slice is byte-identical for every worker
// count, including the sequential workers=1 run.
func Sweep(cells []Cell, workers int) []Outcome {
	out := make([]Outcome, len(cells))
	ParallelMap(len(cells), workers, func(i int) {
		cost, err := cells[i].Protocol.Run(cells[i].Instance)
		out[i] = Outcome{Cost: cost, Err: err}
	})
	return out
}

// FirstError returns the first cell error in cell order, or nil.
func FirstError(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// Costs projects the outcome slice to costs; call after FirstError.
func Costs(outs []Outcome) []Cost {
	cs := make([]Cost, len(outs))
	for i, o := range outs {
		cs[i] = o.Cost
	}
	return cs
}

// Grid builds the cross product of instances and protocols in
// deterministic instance-major order: all protocols of instance 0, then
// all of instance 1, and so on.
//
// A recorder shared between cells is rejected with a descriptive panic
// — the aggregate Recorder and every ObjectRecorders entry alike:
// crossing a recording instance with a protocol column, or reusing one
// recorder across several instances (or across an instance's object
// slots, or between an instance's aggregate and object streams), would
// have concurrently swept cells feed the same accumulating state — a
// data race under Sweep, and conflated distributions even sequentially.
// Grids that record build one Instance per cell, with fresh recorders
// for every object slot (as analysis.PerfExperiment does).
func Grid(instances []Instance, protocols ...Protocol) []Cell {
	// seen is a slice scan, not a map: instance counts are tiny, the
	// scan's order is the deterministic instance order by construction,
	// and an interface-keyed map would be one refactor away from a
	// nondeterministic range (and panics at insert on a non-comparable
	// dynamic type, where == against a distinct comparable value never
	// does).
	var seen []stats.Recorder
	note := func(label, slot string, r stats.Recorder) {
		if r == nil || !reflect.TypeOf(r).Comparable() {
			return
		}
		for _, s := range seen {
			if s == r {
				panic(fmt.Sprintf("engine: Grid instances share one recorder (%s seen again at %q); give each instance — and each object slot — its own",
					slot, label))
			}
		}
		seen = append(seen, r)
	}
	for _, inst := range instances {
		records := inst.Recorder != nil
		for _, r := range inst.ObjectRecorders {
			if r != nil {
				records = true
				break
			}
		}
		if !records {
			continue
		}
		if len(protocols) > 1 {
			panic(fmt.Sprintf("engine: Grid would share instance %q's recorders (Recorder or ObjectRecorders) across %d protocol cells; build per-cell instances instead",
				inst.Label, len(protocols)))
		}
		note(inst.Label, "Recorder", inst.Recorder)
		for o, r := range inst.ObjectRecorders {
			note(inst.Label, fmt.Sprintf("ObjectRecorders[%d]", o), r)
		}
	}
	cells := make([]Cell, 0, len(instances)*len(protocols))
	for _, inst := range instances {
		for _, p := range protocols {
			cells = append(cells, Cell{Protocol: p, Instance: inst})
		}
	}
	return cells
}

// ParallelMap invokes fn(i) for every i in [0, n) across a pool of
// workers (0 or negative = GOMAXPROCS) and returns once all calls
// finished. Calls are claimed dynamically, so uneven cell costs balance
// across workers; fn must write its result into its own index of a
// pre-sized slice (no two calls share an index, so no locking is needed).
// It is a thin re-export of par.ParallelMap, the shared primitive the
// simulator's lookahead-windowed parallel drain also runs on.
func ParallelMap(n, workers int, fn func(i int)) { par.ParallelMap(n, workers, fn) }

// ParallelMapErr is ParallelMap for fallible work: it collects every
// call's error and returns the first one in index order (nil when all
// succeeded).
func ParallelMapErr(n, workers int, fn func(i int) error) error {
	return par.ParallelMapErr(n, workers, fn)
}

// DeriveSeed decorrelates per-cell seeds from a base seed: cells seeded
// DeriveSeed(base, 0), DeriveSeed(base, 1), ... draw unrelated random
// streams even though the cell indices are adjacent. It is the same
// splitmix64 mixer the simulator uses for its internal streams.
func DeriveSeed(base int64, cell int) int64 { return sim.DeriveSeed(base, cell) }
