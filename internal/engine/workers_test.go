package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// TestClosedLoopBitIdenticalAcrossDrainWorkers is the parallel drain's
// end-to-end guarantee at the engine layer: for every protocol adapter
// and a spread of closed-loop workloads, the full Cost — every counter,
// the makespan, the event count and the latency/hops distribution
// snapshots — is bit-identical between the serial run and the
// lookahead-windowed parallel drain at any worker count. Protocols that
// normalize Workers away (Ivy, centralized) ride along so the guarantee
// reads "any Instance.Workers value is safe", not "only where sharding
// engages".
func TestClosedLoopBitIdenticalAcrossDrainWorkers(t *testing.T) {
	const n = 96
	g := graph.Complete(n)
	tr := tree.BalancedBinary(n)
	workloads := []struct {
		name    string
		perNode int
		think   sim.Time
		model   sim.LatencyModel
	}{
		{"sync/saturated", 6, 0, nil},
		{"sync/think16", 4, 16, nil},
		{"async4/think3", 4, 3, sim.AsyncUniform(4)},
		// Scaled synchronous latency widens the drain's lookahead window
		// to 8 fused ticks per barrier; think 3 puts every think timer
		// mid-window (the in-shard sub-queue), think 16 puts them past it.
		{"sync8/think3", 4, 3, sim.SynchronousScaled(8)},
		{"sync8/think16", 4, 16, sim.SynchronousScaled(8)},
	}
	protocols := []Protocol{Arrow{}, NTA{}, Ivy{}, Centralized{}}
	run := func(p Protocol, wl int, workers int) Cost {
		rec := stats.NewDistRecorder()
		cost, err := p.Run(Instance{
			Label:    fmt.Sprintf("%s/w=%d", workloads[wl].name, workers),
			Graph:    g,
			Tree:     tr,
			Root:     0,
			Workload: ClosedLoop(workloads[wl].perNode, workloads[wl].think),
			Latency:  workloads[wl].model,
			Seed:     DeriveSeed(7, wl),
			Recorder: rec,
			Workers:  workers,
		})
		if err != nil {
			t.Fatalf("%s %s workers=%d: %v", p.Name(), workloads[wl].name, workers, err)
		}
		return cost
	}
	for _, p := range protocols {
		for wl := range workloads {
			want := run(p, wl, 1)
			for _, workers := range []int{0, 2, 3, 7} {
				got := run(p, wl, workers)
				// Labels differ by construction; everything else must not.
				got.Label = want.Label
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s %s: workers=%d diverged from serial:\n got:  %#v\nwant: %#v",
						p.Name(), workloads[wl].name, workers, got, want)
				}
			}
		}
	}
}
