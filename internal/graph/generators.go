package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Complete returns the complete graph K_n with unit edge weights. This is
// the topology the paper's experiments assume for the IBM SP2 ("we could
// treat the network as a complete graph with all edges having the same
// weight").
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(NodeID(u), NodeID(v), 1)
		}
	}
	return g
}

// Path returns the path graph v0 - v1 - ... - v_{n-1} with unit weights.
// Its diameter is n-1. Paths are the topology of the Theorem 4.1 lower
// bound.
func Path(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		g.AddEdge(NodeID(u), NodeID(u+1), 1)
	}
	return g
}

// Cycle returns the cycle graph C_n with unit weights.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 nodes")
	}
	g := Path(n)
	g.AddEdge(NodeID(n-1), 0, 1)
	return g
}

// Star returns the star graph with node 0 at the center and unit weights.
func Star(n int) *Graph {
	g := New(n)
	for u := 1; u < n; u++ {
		g.AddEdge(0, NodeID(u), 1)
	}
	return g
}

// Grid returns the rows x cols grid graph with unit weights. Node (r, c)
// has ID r*cols + c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// Torus returns the rows x cols torus (grid with wraparound) with unit
// weights. Both dimensions must be at least 3 to avoid parallel edges.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus needs dimensions >= 3")
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(((r+rows)%rows)*cols + (c+cols)%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, c+1), 1)
			g.AddEdge(id(r, c), id(r+1, c), 1)
		}
	}
	return g
}

// HyperCube returns the d-dimensional hypercube (2^d nodes, unit weights).
func HyperCube(d int) *Graph {
	if d < 0 || d > 20 {
		panic("graph: hypercube dimension out of range")
	}
	n := 1 << d
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddEdge(NodeID(u), NodeID(v), 1)
			}
		}
	}
	return g
}

// BinaryTreeGraph returns a perfectly balanced binary tree as a graph:
// node i has children 2i+1 and 2i+2 (unit weights). This mirrors the
// spanning tree the paper's experiments use, as a standalone topology.
func BinaryTreeGraph(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		if c := 2*u + 1; c < n {
			g.AddEdge(NodeID(u), NodeID(c), 1)
		}
		if c := 2*u + 2; c < n {
			g.AddEdge(NodeID(u), NodeID(c), 1)
		}
	}
	return g
}

// PathWithShortcuts builds the Theorem 4.2 gadget: a path v0..vD of unit
// edges, plus shortcut edges between v_{(i-1)s} and v_{is} of weight 1 for
// i = 1..D/s. On this graph the path itself is a spanning tree with
// stretch s. D must be a multiple of s.
func PathWithShortcuts(d int, s int) *Graph {
	if s < 1 || d%s != 0 {
		panic(fmt.Sprintf("graph: PathWithShortcuts requires s >= 1 dividing D; got D=%d s=%d", d, s))
	}
	g := Path(d + 1)
	if s == 1 {
		return g
	}
	for i := 1; i*s <= d; i++ {
		g.AddEdge(NodeID((i-1)*s), NodeID(i*s), 1)
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points uniform in
// the unit square, an edge between points closer than radius, with weight
// ceil(dist/radius * maxW) in 1..maxW. A Hamiltonian backbone path is
// added (weight maxW) to guarantee connectivity, which keeps experiments
// well-defined at small radii.
func RandomGeometric(n int, radius float64, maxW Weight, seed int64) *Graph {
	if maxW < 1 {
		panic("graph: maxW must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			dist := math.Sqrt(dx*dx + dy*dy)
			if dist < radius {
				w := Weight(math.Ceil(dist / radius * float64(maxW)))
				if w < 1 {
					w = 1
				}
				g.AddEdge(NodeID(u), NodeID(v), w)
			}
		}
	}
	for u := 0; u+1 < n; u++ {
		if !g.HasEdge(NodeID(u), NodeID(u+1)) {
			g.AddEdge(NodeID(u), NodeID(u+1), maxW)
		}
	}
	return g
}

// GNP returns an Erdős–Rényi G(n, p) graph with unit weights, made
// connected by adding a Hamiltonian backbone path.
func GNP(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(u), NodeID(v), 1)
			}
		}
	}
	for u := 0; u+1 < n; u++ {
		if !g.HasEdge(NodeID(u), NodeID(u+1)) {
			g.AddEdge(NodeID(u), NodeID(u+1), 1)
		}
	}
	return g
}

// TreePlusCycle builds the graph sketched after Theorem 4.1: a path (tree
// backbone) of length pathLen attached to a cycle of length cycleLen+1
// through a single shared edge. Choosing the spanning tree that excludes
// one cycle edge yields stretch cycleLen on that edge.
func TreePlusCycle(pathLen, cycleLen int) *Graph {
	if pathLen < 1 || cycleLen < 2 {
		panic("graph: TreePlusCycle needs pathLen >= 1, cycleLen >= 2")
	}
	n := pathLen + 1 + cycleLen
	g := New(n)
	for u := 0; u < pathLen; u++ {
		g.AddEdge(NodeID(u), NodeID(u+1), 1)
	}
	// Cycle through nodes pathLen, pathLen+1, ..., pathLen+cycleLen, back
	// to pathLen.
	for i := 0; i < cycleLen; i++ {
		g.AddEdge(NodeID(pathLen+i), NodeID(pathLen+i+1), 1)
	}
	g.AddEdge(NodeID(pathLen+cycleLen), NodeID(pathLen), 1)
	return g
}
