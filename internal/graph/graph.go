// Package graph provides the weighted undirected graph substrate used by
// the arrow protocol reproduction: the communication network G = (V, E)
// from the paper, together with shortest-path machinery (dG), diameter and
// eccentricity computations, and the standard topology generators used in
// the experiments.
//
// Nodes are dense integer identifiers in [0, N). Edge weights are positive
// int64 latencies; the synchronous model of the paper corresponds to unit
// weights. All distances are exact (Dijkstra / BFS), not approximations.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node in a Graph. IDs are dense in [0, NumNodes).
type NodeID int32

// Weight is an edge weight / distance in simulated time units.
type Weight = int64

// Infinity is the distance reported between disconnected nodes.
const Infinity Weight = 1<<62 - 1

// Edge is one endpoint record in an adjacency list.
type Edge struct {
	To NodeID
	W  Weight
}

// Graph is a weighted undirected graph with dense integer node IDs.
// The zero value is an empty graph; use New to allocate one with n nodes.
type Graph struct {
	adj      [][]Edge
	edges    int
	unitOnly bool // true while every added edge has weight 1
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]Edge, n), unitOnly: true}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Unit reports whether every edge added so far has weight 1.
func (g *Graph) Unit() bool { return g.unitOnly }

// AddEdge adds an undirected edge between u and v with weight w.
// It panics on self-loops, out-of-range nodes, or non-positive weights;
// these are programming errors, not runtime conditions.
func (g *Graph) AddEdge(u, v NodeID, w Weight) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	g.check(u)
	g.check(v)
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %d", w))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, W: w})
	g.edges++
	if w != 1 {
		g.unitOnly = false
	}
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of the edge (u, v), or (0, false) if no
// such edge exists. If parallel edges were added, the first is returned.
func (g *Graph) EdgeWeight(u, v NodeID) (Weight, bool) {
	g.check(u)
	g.check(v)
	for _, e := range g.adj[u] {
		if e.To == v {
			return e.W, true
		}
	}
	return 0, false
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []Edge {
	g.check(u)
	return g.adj[u]
}

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u NodeID) int {
	g.check(u)
	return len(g.adj[u])
}

func (g *Graph) check(u NodeID) {
	if int(u) < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// ErrDisconnected is returned by operations that require a connected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// Connected reports whether the graph is connected (true for empty and
// single-node graphs).
func (g *Graph) Connected() bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:      make([][]Edge, len(g.adj)),
		edges:    g.edges,
		unitOnly: g.unitOnly,
	}
	for i, a := range g.adj {
		c.adj[i] = append([]Edge(nil), a...)
	}
	return c
}

// EdgeList returns all undirected edges once, as (u, v, w) with u < v.
func (g *Graph) EdgeList() []EdgeRecord {
	out := make([]EdgeRecord, 0, g.edges)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if NodeID(u) < e.To {
				out = append(out, EdgeRecord{U: NodeID(u), V: e.To, W: e.W})
			}
		}
	}
	return out
}

// EdgeRecord is a materialized undirected edge.
type EdgeRecord struct {
	U, V NodeID
	W    Weight
}
