package graph

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
	if !g.Unit() {
		t.Error("empty graph should report Unit")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge not visible from both sides")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 3 {
		t.Errorf("EdgeWeight(0,1) = %d,%v want 3,true", w, ok)
	}
	if g.Unit() {
		t.Error("graph with weight-3 edge must not report Unit")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"self-loop", func() { New(3).AddEdge(1, 1, 1) }},
		{"out-of-range", func() { New(3).AddEdge(0, 7, 1) }},
		{"zero-weight", func() { New(3).AddEdge(0, 1, 0) }},
		{"negative-weight", func() { New(3).AddEdge(0, 1, -2) }},
		{"negative-count", func() { New(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs must be connected")
	}
}

func TestShortestFromUnitVsWeighted(t *testing.T) {
	// A 5-cycle: BFS (unit) and Dijkstra must agree.
	unit := Cycle(5)
	weighted := New(5)
	for _, e := range unit.EdgeList() {
		weighted.AddEdge(e.U, e.V, 1)
	}
	// Force the Dijkstra path by adding a weighted edge elsewhere.
	big := New(5)
	for _, e := range unit.EdgeList() {
		big.AddEdge(e.U, e.V, 2)
	}
	du := unit.ShortestFrom(0)
	dw := big.ShortestFrom(0)
	for v := range du {
		if dw[v] != 2*du[v] {
			t.Errorf("node %d: weighted dist %d != 2*unit %d", v, dw[v], du[v])
		}
	}
}

func TestShortestPathEndpointsAndLength(t *testing.T) {
	g := Grid(4, 4)
	path, d := g.ShortestPath(0, 15)
	if d != 6 {
		t.Errorf("corner-to-corner distance = %d, want 6", d)
	}
	if path[0] != 0 || path[len(path)-1] != 15 {
		t.Errorf("path endpoints %d..%d, want 0..15", path[0], path[len(path)-1])
	}
	if len(path) != 7 {
		t.Errorf("path has %d nodes, want 7", len(path))
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Errorf("path step (%d,%d) is not an edge", path[i-1], path[i])
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if p, d := g.ShortestPath(0, 2); p != nil || d != Infinity {
		t.Errorf("unreachable: got path=%v d=%d", p, d)
	}
	dist := g.ShortestFrom(0)
	if dist[2] != Infinity {
		t.Errorf("dist to unreachable = %d, want Infinity", dist[2])
	}
}

func TestDiameterKnownTopologies(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want Weight
	}{
		{"path10", Path(10), 9},
		{"cycle10", Cycle(10), 5},
		{"complete7", Complete(7), 1},
		{"star8", Star(8), 2},
		{"grid3x4", Grid(3, 4), 5},
		{"hypercube4", HyperCube(4), 4},
		{"torus4x4", Torus(4, 4), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if d := tc.g.Diameter(); d != tc.want {
				t.Errorf("diameter = %d, want %d", d, tc.want)
			}
		})
	}
}

func TestCenterOfPath(t *testing.T) {
	g := Path(9)
	c, ecc := g.Center()
	if c != 4 || ecc != 4 {
		t.Errorf("center = %d (ecc %d), want 4 (ecc 4)", c, ecc)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.AddEdge(0, 3, 1)
	if g.HasEdge(0, 3) {
		t.Error("mutation of clone leaked into original")
	}
	if g.NumEdges() != 3 || c.NumEdges() != 4 {
		t.Errorf("edge counts: orig %d want 3, clone %d want 4", g.NumEdges(), c.NumEdges())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	edges := g.EdgeList()
	if len(edges) != g.NumEdges() {
		t.Fatalf("EdgeList has %d entries, want %d", len(edges), g.NumEdges())
	}
	rebuilt := New(g.NumNodes())
	for _, e := range edges {
		rebuilt.AddEdge(e.U, e.V, e.W)
	}
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if g.HasEdge(NodeID(u), NodeID(v)) != rebuilt.HasEdge(NodeID(u), NodeID(v)) {
				t.Fatalf("edge (%d,%d) differs after round trip", u, v)
			}
		}
	}
}

func TestGeneratorsConnectedAndSized(t *testing.T) {
	cases := []struct {
		name  string
		g     *Graph
		nodes int
	}{
		{"complete10", Complete(10), 10},
		{"path1", Path(1), 1},
		{"gnp-sparse", GNP(30, 0.05, 1), 30},
		{"gnp-dense", GNP(30, 0.9, 2), 30},
		{"geometric", RandomGeometric(25, 0.3, 5, 3), 25},
		{"shortcuts", PathWithShortcuts(32, 4), 33},
		{"treepluscycle", TreePlusCycle(5, 4), 10},
		{"binarytree", BinaryTreeGraph(13), 13},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.NumNodes() != tc.nodes {
				t.Errorf("nodes = %d, want %d", tc.g.NumNodes(), tc.nodes)
			}
			if !tc.g.Connected() {
				t.Error("generator produced a disconnected graph")
			}
		})
	}
}

func TestPathWithShortcutsStretchSource(t *testing.T) {
	// The gadget keeps path distance between shortcut endpoints at 1.
	g := PathWithShortcuts(16, 4)
	if w, ok := g.EdgeWeight(0, 4); !ok || w != 1 {
		t.Errorf("shortcut edge (0,4) = %d,%v want 1,true", w, ok)
	}
	if d := g.Dist(0, 16); d != 4 {
		t.Errorf("dG(0,16) = %d, want 4 (via shortcuts)", d)
	}
}

func TestPathWithShortcutsRejectsBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-dividing stretch")
		}
	}()
	PathWithShortcuts(10, 3)
}

// Property: triangle inequality for shortest-path distances on random
// connected graphs.
func TestShortestPathTriangleInequality(t *testing.T) {
	prop := func(seed int64) bool {
		n := 10 + int(seed%11+11)%11
		g := GNP(n, 0.3, seed)
		d := g.AllPairs()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					if d[u][v] > d[u][w]+d[w][v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: symmetry of shortest-path distances on undirected graphs.
func TestShortestPathSymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		n := 8 + int(seed%7+7)%7
		g := RandomGeometric(n, 0.4, 5, seed)
		d := g.AllPairs()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if d[u][v] != d[v][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: eccentricity of every node is between radius and diameter.
func TestEccentricityBounds(t *testing.T) {
	prop := func(seed int64) bool {
		n := 6 + int(seed%9+9)%9
		g := GNP(n, 0.4, seed)
		diam := g.Diameter()
		_, radius := g.Center()
		for u := 0; u < n; u++ {
			ecc := g.Eccentricity(NodeID(u))
			if ecc < radius || ecc > diam {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
