package graph

//arrow:allow schedorder Dijkstra's priority queue orders graph distances, not simulator events
import "container/heap"

// ShortestFrom returns the single-source shortest-path distances dG(src, ·)
// for every node. Unreachable nodes get Infinity. Unit-weight graphs use
// BFS; weighted graphs use Dijkstra with a binary heap.
func (g *Graph) ShortestFrom(src NodeID) []Weight {
	g.check(src)
	if g.unitOnly {
		return g.bfs(src)
	}
	return g.dijkstra(src)
}

// Dist returns the shortest-path distance dG(u, v).
// For repeated queries prefer ShortestFrom or AllPairs.
func (g *Graph) Dist(u, v NodeID) Weight {
	return g.ShortestFrom(u)[v]
}

func (g *Graph) bfs(src NodeID) []Weight {
	n := g.NumNodes()
	dist := make([]Weight, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, e := range g.adj[u] {
			if dist[e.To] == Infinity {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

type pqItem struct {
	node NodeID
	dist Weight
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

func (g *Graph) dijkstra(src NodeID) []Weight {
	n := g.NumNodes()
	dist := make([]Weight, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if nd := dist[u] + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst as a node sequence
// including both endpoints, and its length. It returns (nil, Infinity) if
// dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID) ([]NodeID, Weight) {
	g.check(src)
	g.check(dst)
	n := g.NumNodes()
	dist := make([]Weight, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, e := range g.adj[u] {
			if nd := dist[u] + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if dist[dst] == Infinity {
		return nil, Infinity
	}
	var path []NodeID
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst]
}

// AllPairs returns the full distance matrix dG. It runs one shortest-path
// pass per node: O(n·(m + n log n)) for weighted graphs, O(n·(n+m)) for
// unit graphs.
func (g *Graph) AllPairs() [][]Weight {
	n := g.NumNodes()
	d := make([][]Weight, n)
	for i := 0; i < n; i++ {
		d[i] = g.ShortestFrom(NodeID(i))
	}
	return d
}

// Eccentricity returns max_v dG(u, v), or Infinity if the graph is
// disconnected from u.
func (g *Graph) Eccentricity(u NodeID) Weight {
	dist := g.ShortestFrom(u)
	var ecc Weight
	for _, d := range dist {
		if d == Infinity {
			return Infinity
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum shortest-path distance between any two
// nodes, or Infinity if the graph is disconnected. O(n) shortest-path
// passes.
func (g *Graph) Diameter() Weight {
	var diam Weight
	for u := 0; u < g.NumNodes(); u++ {
		ecc := g.Eccentricity(NodeID(u))
		if ecc == Infinity {
			return Infinity
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Center returns a node with minimum eccentricity (the graph center) and
// its eccentricity. For an empty graph it returns (0, 0).
func (g *Graph) Center() (NodeID, Weight) {
	best := NodeID(0)
	bestEcc := Infinity
	if g.NumNodes() == 0 {
		return 0, 0
	}
	for u := 0; u < g.NumNodes(); u++ {
		ecc := g.Eccentricity(NodeID(u))
		if ecc < bestEcc {
			bestEcc = ecc
			best = NodeID(u)
		}
	}
	return best, bestEcc
}
