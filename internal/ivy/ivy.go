// Package ivy implements the Li–Hudak dynamic distributed-object manager
// ("Ivy") find protocol referenced in the paper's related work: each node
// keeps a probable-owner pointer; a find request follows the pointer chain
// to the current owner, and path shortening then redirects every visited
// pointer straight at the requesting node. Ginat, Sleator and Tarjan
// proved the amortized pointer-chain cost per request is Θ(log n); the
// package exposes per-request chain lengths so tests and benches can check
// that bound. Like NTA (and unlike arrow), Ivy needs a completely
// connected network.
package ivy

import (
	"fmt"

	"repro/internal/graph"
)

// Directory is a sequential model of the Ivy ownership directory: it
// captures exactly the pointer-chain combinatorics that the amortized
// analysis is about, with requests processed one at a time (the protocol
// serializes finds at the owner in any case).
type Directory struct {
	owner    []graph.NodeID // probable-owner pointers
	trueOwn  graph.NodeID   // current actual owner
	requests int64
	chainSum int64
	chainMax int
}

// NewDirectory returns a directory over n nodes, initially owned by root;
// every probable-owner pointer starts at root.
func NewDirectory(n int, root graph.NodeID) *Directory {
	if int(root) < 0 || int(root) >= n {
		panic(fmt.Sprintf("ivy: root %d out of range", root))
	}
	d := &Directory{owner: make([]graph.NodeID, n), trueOwn: root}
	for i := range d.owner {
		d.owner[i] = root
	}
	return d
}

// Find transfers ownership to v, following the probable-owner chain from
// v and applying full path shortening: every node on the chain (including
// the previous owner) afterwards points directly at v. It returns the
// chain length (number of forwarding messages).
func (d *Directory) Find(v graph.NodeID) int {
	if d.owner[v] == v {
		// Local hit: no chain to record, and no allocation.
		d.trueOwn = v
		d.requests++
		return 0
	}
	chain := d.FindChain(v)
	return len(chain) - 1
}

// FindChain is Find exposing the visited pointer chain: the returned
// slice lists the nodes the request traversed, starting at v and ending
// at the previous owner, so callers can charge network distances per
// forwarding message (chain[i] -> chain[i+1]). Its length is the chain
// length plus one; a local hit returns just [v].
func (d *Directory) FindChain(v graph.NodeID) []graph.NodeID {
	chain := []graph.NodeID{v}
	cur := v
	for d.owner[cur] != cur {
		next := d.owner[cur]
		cur = next
		chain = append(chain, cur)
		if len(chain) > len(d.owner)+1 {
			panic("ivy: probable-owner cycle")
		}
	}
	// cur is the actual owner (owner[cur] == cur); redirect every visited
	// pointer (and the owner) straight at the requester.
	for _, x := range chain {
		d.owner[x] = v
	}
	d.owner[v] = v
	d.trueOwn = v
	hops := len(chain) - 1
	d.requests++
	d.chainSum += int64(hops)
	if hops > d.chainMax {
		d.chainMax = hops
	}
	return chain
}

// Owner returns the current actual owner.
func (d *Directory) Owner() graph.NodeID { return d.trueOwn }

// ProbableOwner returns v's current pointer (for invariant checks).
func (d *Directory) ProbableOwner(v graph.NodeID) graph.NodeID { return d.owner[v] }

// Requests returns the number of finds served.
func (d *Directory) Requests() int64 { return d.requests }

// AmortizedChain returns total chain length divided by request count —
// the quantity Ginat et al. bound by Θ(log n).
func (d *Directory) AmortizedChain() float64 {
	if d.requests == 0 {
		return 0
	}
	return float64(d.chainSum) / float64(d.requests)
}

// MaxChain returns the worst single-request chain length observed.
func (d *Directory) MaxChain() int { return d.chainMax }
