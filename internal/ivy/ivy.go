// Package ivy implements the Li–Hudak dynamic distributed-object manager
// ("Ivy") find protocol referenced in the paper's related work: each node
// keeps a probable-owner pointer; a find request follows the pointer chain
// to the current owner, and path shortening then redirects every visited
// pointer straight at the requesting node. Ginat, Sleator and Tarjan
// proved the amortized pointer-chain cost per request is Θ(log n); the
// package exposes per-request chain lengths so tests and benches can check
// that bound. Like NTA (and unlike arrow), Ivy needs a completely
// connected network.
//
// Directory is the sequential pointer-combinatorics core (Find /
// FindChain replay a whole chain atomically); Run and RunClosedLoop
// execute the same pointer discipline step-wise on the discrete-event
// simulator, with find messages travelling the graph metric.
package ivy

import (
	"fmt"

	"repro/internal/graph"
)

// Directory is a sequential model of the Ivy ownership directory: it
// captures exactly the pointer-chain combinatorics that the amortized
// analysis is about, with requests processed one at a time (the protocol
// serializes finds at the owner in any case).
type Directory struct {
	owner    []graph.NodeID // probable-owner pointers
	trueOwn  graph.NodeID   // current actual owner
	requests int64
	chainSum int64
	chainMax int
}

// NewDirectory returns a directory over n nodes, initially owned by root;
// every probable-owner pointer starts at root.
func NewDirectory(n int, root graph.NodeID) *Directory {
	if int(root) < 0 || int(root) >= n {
		panic(fmt.Sprintf("ivy: root %d out of range", root))
	}
	d := &Directory{owner: make([]graph.NodeID, n), trueOwn: root}
	for i := range d.owner {
		d.owner[i] = root
	}
	return d
}

// Find transfers ownership to v, following the probable-owner chain from
// v and applying full path shortening: every node on the chain (including
// the previous owner) afterwards points directly at v. It returns the
// chain length (number of forwarding messages).
func (d *Directory) Find(v graph.NodeID) int {
	if d.owner[v] == v {
		// Local hit: no chain to record, and no allocation.
		d.trueOwn = v
		d.record(0)
		return 0
	}
	chain := d.FindChain(v)
	return len(chain) - 1
}

// record accounts one served find of the given chain length.
func (d *Directory) record(hops int) {
	d.requests++
	d.chainSum += int64(hops)
	if hops > d.chainMax {
		d.chainMax = hops
	}
}

// StartFind begins a distributed find at requester v — the step-wise
// counterpart of Find/FindChain used when forwarding messages travel over
// a simulated network instead of being replayed atomically. If v already
// owns the object the find is a local hit (recorded immediately) and
// local is true. Otherwise the returned target is the first forwarding
// destination, and v's pointer redirects at itself: v is the chain's
// eventual owner, so later finds queue behind it exactly as FindChain's
// final shortening would arrange.
func (d *Directory) StartFind(v graph.NodeID) (target graph.NodeID, local bool) {
	if d.owner[v] == v {
		d.trueOwn = v
		d.record(0)
		return v, true
	}
	target = d.owner[v]
	d.owner[v] = v
	return target, false
}

// ForwardFind processes a distributed find for requester v arriving at
// node at with hops forwarding messages consumed so far (including the
// one that reached at). The visited pointer shortens at v. If at was the
// owner, ownership transfers to v, the chain is recorded, and done is
// true; otherwise the find must be forwarded to next.
//
// A sequence of StartFind + ForwardFind steps with no interleaved finds
// leaves the directory in exactly the state FindChain produces — the
// step-wise API changes the execution, not the pointer combinatorics.
func (d *Directory) ForwardFind(at, v graph.NodeID, hops int) (next graph.NodeID, done bool) {
	next = d.owner[at]
	d.owner[at] = v
	if next == at {
		d.trueOwn = v
		d.record(hops)
		return v, true
	}
	return next, false
}

// FindChain is Find exposing the visited pointer chain: the returned
// slice lists the nodes the request traversed, starting at v and ending
// at the previous owner, so callers can charge network distances per
// forwarding message (chain[i] -> chain[i+1]). Its length is the chain
// length plus one; a local hit returns just [v].
func (d *Directory) FindChain(v graph.NodeID) []graph.NodeID {
	chain := []graph.NodeID{v}
	cur := v
	for d.owner[cur] != cur {
		next := d.owner[cur]
		cur = next
		chain = append(chain, cur)
		if len(chain) > len(d.owner)+1 {
			panic("ivy: probable-owner cycle")
		}
	}
	// cur is the actual owner (owner[cur] == cur); redirect every visited
	// pointer (and the owner) straight at the requester.
	for _, x := range chain {
		d.owner[x] = v
	}
	d.owner[v] = v
	d.trueOwn = v
	d.record(len(chain) - 1)
	return chain
}

// Owner returns the current actual owner.
func (d *Directory) Owner() graph.NodeID { return d.trueOwn }

// ProbableOwner returns v's current pointer (for invariant checks).
func (d *Directory) ProbableOwner(v graph.NodeID) graph.NodeID { return d.owner[v] }

// Requests returns the number of finds served.
func (d *Directory) Requests() int64 { return d.requests }

// AmortizedChain returns total chain length divided by request count —
// the quantity Ginat et al. bound by Θ(log n).
func (d *Directory) AmortizedChain() float64 {
	if d.requests == 0 {
		return 0
	}
	return float64(d.chainSum) / float64(d.requests)
}

// MaxChain returns the worst single-request chain length observed.
func (d *Directory) MaxChain() int { return d.chainMax }
