package ivy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestInitialOwnership(t *testing.T) {
	d := NewDirectory(5, 2)
	if d.Owner() != 2 {
		t.Errorf("owner = %d, want 2", d.Owner())
	}
	for v := 0; v < 5; v++ {
		if d.ProbableOwner(graph.NodeID(v)) != 2 {
			t.Errorf("probable owner of %d = %d, want 2", v, d.ProbableOwner(graph.NodeID(v)))
		}
	}
}

func TestFindTransfersOwnership(t *testing.T) {
	d := NewDirectory(5, 0)
	hops := d.Find(3)
	if hops != 1 {
		t.Errorf("first find hops = %d, want 1 (3 -> 0)", hops)
	}
	if d.Owner() != 3 {
		t.Errorf("owner = %d, want 3", d.Owner())
	}
	// Path shortening: everyone visited now points at 3.
	if d.ProbableOwner(0) != 3 {
		t.Errorf("old owner should point at new owner")
	}
	// A find by the owner itself is free.
	if h := d.Find(3); h != 0 {
		t.Errorf("self-find hops = %d, want 0", h)
	}
}

func TestChainCompression(t *testing.T) {
	// Successive finds keep chains short: each find repoints the previous
	// owner (and node 0, everyone's initial pointer) at the requester, so
	// a requester with a stale pointer pays only 0 -> previous-owner.
	d := NewDirectory(6, 0)
	d.Find(1)
	d.Find(2)
	d.Find(3)
	// 5's pointer is stale (still 0): chain 5 -> 0 -> 3 (0 was repointed
	// at 3 by the previous find).
	hops := d.Find(5)
	if hops != 2 {
		t.Errorf("stale-chain find hops = %d, want 2", hops)
	}
	for _, v := range []graph.NodeID{0, 3, 5} {
		if d.ProbableOwner(v) != 5 {
			t.Errorf("visited node %d points at %d, want 5", v, d.ProbableOwner(v))
		}
	}
	// Unvisited stale pointers remain — they will be compressed when
	// traversed; chains still terminate at the owner (see the property
	// test below).
	if d.ProbableOwner(1) != 2 || d.ProbableOwner(2) != 3 {
		t.Errorf("stale pointers mutated unexpectedly: 1->%d 2->%d",
			d.ProbableOwner(1), d.ProbableOwner(2))
	}
}

func TestRequestsAccounting(t *testing.T) {
	d := NewDirectory(4, 0)
	d.Find(1)
	d.Find(2)
	d.Find(1)
	if d.Requests() != 3 {
		t.Errorf("requests = %d, want 3", d.Requests())
	}
	if d.MaxChain() < 1 {
		t.Errorf("max chain = %d, want >= 1", d.MaxChain())
	}
	if d.AmortizedChain() <= 0 {
		t.Errorf("amortized = %f, want > 0", d.AmortizedChain())
	}
}

func TestAmortizedLogBound(t *testing.T) {
	// Ginat–Sleator–Tarjan: amortized chain length is Θ(log n). Check
	// the upper-bound side empirically with a margin: random workloads
	// should stay within ~3·log2(n).
	for _, n := range []int{16, 64, 256, 1024} {
		d := NewDirectory(n, 0)
		rng := rand.New(rand.NewSource(int64(n)))
		reqs := 20 * n
		for i := 0; i < reqs; i++ {
			d.Find(graph.NodeID(rng.Intn(n)))
		}
		bound := 3 * math.Log2(float64(n))
		if am := d.AmortizedChain(); am > bound {
			t.Errorf("n=%d: amortized chain %.2f exceeds 3 log2 n = %.2f", n, am, bound)
		}
	}
}

func TestWorstSingleFindIsLinear(t *testing.T) {
	// A single find can cost Θ(n) (the chain built by sequential
	// neighbours) even though the amortized cost is logarithmic.
	n := 32
	d := NewDirectory(n, 0)
	for v := 1; v < n; v++ {
		d.Find(graph.NodeID(v))
	}
	// All pointers compressed toward n-1 along the way; the worst chain
	// observed during the sequence is small because of compression.
	if d.MaxChain() > n {
		t.Errorf("max chain %d exceeded n", d.MaxChain())
	}
}

func TestRejectsBadRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDirectory(3, 9)
}

// Property: after any find sequence, following probable-owner pointers
// from any node terminates at the true owner (no cycles).
func TestPointerChainsAlwaysReachOwner(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		d := NewDirectory(n, graph.NodeID(rng.Intn(n)))
		for i := 0; i < 60; i++ {
			d.Find(graph.NodeID(rng.Intn(n)))
		}
		for v := 0; v < n; v++ {
			cur := graph.NodeID(v)
			for steps := 0; d.ProbableOwner(cur) != cur; steps++ {
				if steps > n {
					return false
				}
				cur = d.ProbableOwner(cur)
			}
			if cur != d.Owner() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
