package ivy

// Simulator-backed Ivy: find messages follow probable-owner chains as
// real discrete-event messages over the graph metric, with Directory as
// the pointer-combinatorics core (StartFind/ForwardFind are its
// step-wise face). Run replays a static request set; RunClosedLoop is
// the Section 5 closed-loop regime, driven by the shared loop harness.
// A find reaching a node with an in-flight request of its own queues
// behind it (the object will pass through that node), matching the
// queuing-completion definition the other protocols use.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// Options configures a simulator-backed Ivy run.
type Options struct {
	// Root is the initial owner; all probable-owner pointers start there.
	Root graph.NodeID
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
}

// Completion records the ownership transfer serving one request.
type Completion struct {
	Req queuing.Request
	// PredID is the request this one queued behind (-1 = the initial
	// ownership at the root).
	PredID int
	// At is the simulated time the find reached the owner (ownership
	// transfer — the request is now queued).
	At sim.Time
	// Hops is the number of forwarding messages (the pointer-chain
	// length; each may cross several physical links on non-complete
	// graphs, see PhysHops).
	Hops int
	// PhysHops counts physical link traversals.
	PhysHops int
}

// Latency returns At − issue time.
func (c Completion) Latency() int64 { return int64(c.At - c.Req.Time) }

// Result aggregates a static-set Ivy run.
type Result struct {
	Set         queuing.Set
	Completions []Completion
	// Order is the total order induced by the predecessor chain — the
	// sequence ownership passes through the requests.
	Order        queuing.Order
	TotalLatency int64
	TotalHops    int64
	MaxHops      int
	Makespan     sim.Time
	// Directory is the final directory state, exposing the amortized
	// Θ(log n) chain accounting (Ginat–Sleator–Tarjan).
	Directory *Directory
}

type findMsg struct {
	reqID  int
	origin graph.NodeID
	hops   int
	phys   int
}

// Run executes Ivy for a static request set over graph g's metric: finds
// are forwarded along probable-owner pointers as simulator messages and
// each visited pointer shortens at the requester.
func Run(g *graph.Graph, set queuing.Set, opts Options) (*Result, error) {
	if err := set.Validate(g.NumNodes()); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if int(opts.Root) < 0 || int(opts.Root) >= n {
		return nil, fmt.Errorf("ivy: root %d out of range", opts.Root)
	}
	topo := sim.NewMetricTopology(g)
	s := sim.New(sim.Config{
		Topology:    topo,
		Latency:     opts.Latency,
		Arbitration: opts.Arbitration,
		Seed:        opts.Seed,
		MaxEvents:   sim.SatAdd(sim.SatMul(int64(len(set)), sim.SatMul(int64(n+4), 4)), 1024),
		Scheduler:   opts.Scheduler,
	})
	dir := NewDirectory(n, opts.Root)
	res := &Result{
		Set:         set,
		Completions: make([]Completion, len(set)),
		Directory:   dir,
	}
	for i := range res.Completions {
		res.Completions[i].PredID = -2
	}
	// Pre-boxed messages, one per request: forwarding mutates and
	// resends the same pointer at every hop, so a chain of length k
	// costs zero interface boxings instead of k.
	msgs := make([]findMsg, len(set))
	// lastReq[v] is the most recent request that made v self-pointing
	// (pending or owner); -1 marks the initial ownership at the root.
	lastReq := make([]int, n)
	for v := range lastReq {
		lastReq[v] = -1
	}
	completed := 0
	complete := func(ctx *sim.Context, reqID, predID, hops, phys int) {
		c := &res.Completions[reqID]
		if c.PredID != -2 {
			panic("ivy: request completed twice")
		}
		*c = Completion{Req: set[reqID], PredID: predID, At: ctx.Now(), Hops: hops, PhysHops: phys}
		completed++
	}
	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		m, ok := msg.(*findMsg)
		if !ok {
			panic(fmt.Sprintf("ivy: unexpected message %T", msg))
		}
		next, done := dir.ForwardFind(at, m.origin, m.hops)
		if done {
			complete(ctx, m.reqID, lastReq[at], m.hops, m.phys)
			return
		}
		m.hops++
		m.phys += topo.Hops(at, next)
		ctx.Send(at, next, m)
	})
	for _, r := range set {
		req := r
		s.ScheduleAt(req.Time, func(ctx *sim.Context) {
			v := req.Node
			target, local := dir.StartFind(v)
			if local {
				pred := lastReq[v]
				lastReq[v] = req.ID
				complete(ctx, req.ID, pred, 0, 0)
				return
			}
			lastReq[v] = req.ID
			m := &msgs[req.ID]
			m.reqID, m.origin, m.hops, m.phys = req.ID, v, 1, topo.Hops(v, target)
			ctx.Send(v, target, m)
		})
	}
	res.Makespan = s.Run()
	if completed != len(set) {
		return nil, fmt.Errorf("ivy: completed %d of %d requests", completed, len(set))
	}
	succ := make(map[int]int, len(set))
	for i, c := range res.Completions {
		if _, dup := succ[c.PredID]; dup {
			return nil, fmt.Errorf("ivy: duplicate successor for %d", c.PredID)
		}
		succ[c.PredID] = i
	}
	order := make(queuing.Order, 0, len(set))
	cur, ok := succ[-1]
	for ok {
		order = append(order, cur)
		cur, ok = succ[cur]
	}
	if len(order) != len(set) {
		return nil, fmt.Errorf("ivy: broken predecessor chain")
	}
	res.Order = order
	for _, c := range res.Completions {
		res.TotalLatency += c.Latency()
		res.TotalHops += int64(c.Hops)
		if c.Hops > res.MaxHops {
			res.MaxHops = c.Hops
		}
	}
	return res, nil
}

// LoopConfig drives the closed-loop Ivy experiment, mirroring
// arrow.LoopConfig and nta.LoopConfig: every node issues PerNode
// requests, each issued ThinkTime after the previous one is known to be
// served, with ownership transfers acknowledged by a direct reply from
// the previous owner's node.
type LoopConfig struct {
	// Spec holds the shared run knobs. Workers is accepted for config
	// symmetry with the other protocols but always normalizes to a
	// serial run: Directory accumulates cross-node chain statistics on
	// every step, so it is not loop.ShardSafe. Results are identical at
	// any value.
	loop.Spec
	// Root is the initial owner.
	Root graph.NodeID
}

// LoopResult aggregates a closed-loop Ivy run — the shared closed-loop
// counter shape (see loop.Result). QueueHops counts find-forwarding
// messages: the pointer-chain length summed over requests, i.e. the
// amortized-Θ(log n) quantity.
type LoopResult = loop.Result

// RunClosedLoop executes the closed-loop Ivy experiment over graph g's
// metric, with Directory (via its step-wise StartFind/ForwardFind face)
// as the loop harness's pointer discipline.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	return RunClosedLoopTopo(sim.NewMetricTopology(g), cfg)
}

// RunClosedLoopTopo is RunClosedLoop over an arbitrary metric topology;
// the implicit sim.CompleteTopology keeps million-node runs free of the
// O(n²) distance matrix.
func RunClosedLoopTopo(topo sim.Topology, cfg LoopConfig) (*LoopResult, error) {
	n := topo.NumNodes()
	if int(cfg.Root) < 0 || int(cfg.Root) >= n {
		return nil, fmt.Errorf("ivy: root %d out of range", cfg.Root)
	}
	return loop.RunTopo(topo, NewDirectory(n, cfg.Root), "ivy", cfg.Spec)
}
