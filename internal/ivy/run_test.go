package ivy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRunMatchesDirectoryOnSequentialWorkloads: with requests spaced so
// no two finds are concurrently in flight, the sim-backed run must visit
// exactly the chains the atomic Directory replay produces.
func TestRunMatchesDirectoryOnSequentialWorkloads(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := graph.Complete(n)
		reqs := make([]queuing.Request, 40)
		for i := range reqs {
			// Complete graph: any chain costs < n, so spacing by 2n
			// serializes the finds.
			reqs[i] = queuing.Request{Node: graph.NodeID(rng.Intn(n)), Time: sim.Time(i * 2 * n)}
		}
		set := queuing.NewSet(reqs)
		res, err := Run(g, set, Options{Root: 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref := NewDirectory(n, 0)
		for i, r := range set {
			want := ref.Find(r.Node)
			if got := res.Completions[i].Hops; got != want {
				t.Fatalf("seed %d request %d: sim chain %d, directory chain %d", seed, i, got, want)
			}
		}
		// The final pointer state agrees too.
		for v := 0; v < n; v++ {
			if got, want := res.Directory.ProbableOwner(graph.NodeID(v)), ref.ProbableOwner(graph.NodeID(v)); got != want {
				t.Fatalf("seed %d: pointer of %d = %d, want %d", seed, v, got, want)
			}
		}
		if res.Directory.Owner() != ref.Owner() {
			t.Fatalf("seed %d: owner %d, want %d", seed, res.Directory.Owner(), ref.Owner())
		}
		// Sequential finds queue in issue order.
		for i, id := range res.Order {
			if id != i {
				t.Fatalf("seed %d: sequential order broken: %v", seed, res.Order)
			}
		}
	}
}

// TestRunConcurrentTotalOrder: under concurrency the predecessor chain
// must still be a total order and every request must complete.
func TestRunConcurrentTotalOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 6 + int(seed)%20
		g := graph.Complete(n)
		set := workload.OneShot(n, n/2+1, seed)
		res, err := Run(g, set, Options{Root: 0, Arbitration: sim.ArbRandom, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !queuing.ValidOrder(res.Order, len(set)) {
			t.Fatalf("seed %d: invalid order %v", seed, res.Order)
		}
	}
}

// TestRunAmortizedAccountingPreserved: the sim-backed run feeds the same
// amortized chain accounting Ginat et al. bound by Θ(log n).
func TestRunAmortizedAccountingPreserved(t *testing.T) {
	n := 128
	g := graph.Complete(n)
	set := workload.Poisson(n, 2.0, 2000, 5)
	if len(set) < 100 {
		t.Fatalf("workload too small: %d", len(set))
	}
	res, err := Run(g, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Directory.Requests(); got != int64(len(set)) {
		t.Errorf("directory served %d of %d", got, len(set))
	}
	if am, bound := res.Directory.AmortizedChain(), 3*math.Log2(float64(n)); am > bound {
		t.Errorf("amortized chain %.2f exceeds 3 log2 n = %.2f", am, bound)
	}
	if float64(res.TotalHops) != res.Directory.AmortizedChain()*float64(res.Directory.Requests()) {
		t.Errorf("result hops %d disagree with directory accounting", res.TotalHops)
	}
}

func TestRunClosedLoopCompletesAll(t *testing.T) {
	for _, n := range []int{1, 2, 9, 24} {
		g := graph.Complete(n)
		res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 8}, Root: 0})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Requests != int64(8*n) {
			t.Errorf("n=%d: completed %d of %d", n, res.Requests, 8*n)
		}
		if want := res.Requests - res.LocalCompletions; res.ReplyHops != want {
			t.Errorf("n=%d: reply hops = %d, want remote completions %d", n, res.ReplyHops, want)
		}
	}
}

func TestRunClosedLoopAmortizedChains(t *testing.T) {
	// Closed-loop uniform demand keeps amortized chains logarithmic.
	n := 64
	res, err := RunClosedLoop(graph.Complete(n), LoopConfig{Spec: loop.Spec{PerNode: 40}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if avg, bound := res.AvgQueueHops(), 3*math.Log2(float64(n)); avg > bound {
		t.Errorf("avg chain %.2f exceeds 3 log2 n = %.2f", avg, bound)
	}
}

func TestRunClosedLoopDeterministic(t *testing.T) {
	cfg := LoopConfig{Spec: loop.Spec{PerNode: 12, ThinkTime: 2, Latency: sim.AsyncUniform(6), Arbitration: sim.ArbRandom, Seed: 123}, Root: 1}
	g := graph.Complete(12)
	a, err := RunClosedLoop(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClosedLoop(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("same config diverged:\n a: %+v\n b: %+v", a, b)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	g := graph.Complete(4)
	if _, err := Run(g, queuing.NewSet([]queuing.Request{{Node: 9}}), Options{Root: 0}); err == nil {
		t.Error("expected error for out-of-range request node")
	}
	if _, err := Run(g, workload.OneShot(4, 2, 1), Options{Root: 7}); err == nil {
		t.Error("expected error for out-of-range root")
	}
	if _, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 0}, Root: 0}); err == nil {
		t.Error("expected error for PerNode = 0")
	}
	if _, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 1}, Root: 5}); err == nil {
		t.Error("expected error for out-of-range root")
	}
}
