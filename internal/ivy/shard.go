package ivy

import (
	"fmt"

	"repro/internal/graph"
)

// ShardDirectory is Ivy's multi-object probable-owner state: k
// independent owner pointer sets over the same n nodes, object o's
// pointers initially naming root_o = o mod n as owner. The chase with
// forward path shortening performs step-for-step the same pointer
// updates as NTA's reversal (see the note on nta's reversalStepper and
// TestClosedLoopMatchesIvy), so the shard tier keeps the identity: Ivy
// and NTA shard rows are equal by construction, differing only in what
// the pointers mean.
type ShardDirectory struct {
	n     int
	owner []graph.NodeID
}

// NewShardDirectory builds the k probable-owner sets; O(k·n) space.
func NewShardDirectory(n, k int) (*ShardDirectory, error) {
	if n < 1 {
		return nil, fmt.Errorf("ivy: shard directory needs n >= 1, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("ivy: shard directory needs k >= 1 objects, got %d", k)
	}
	d := &ShardDirectory{n: n, owner: make([]graph.NodeID, k*n)}
	for o := 0; o < k; o++ {
		root := graph.NodeID(o % n)
		base := o * n
		for v := 0; v < n; v++ {
			d.owner[base+v] = root
		}
	}
	return d, nil
}

// StartFind begins a request for obj at v: owning the object already
// completes locally; otherwise the request chases v's probable owner
// and v names itself (it is about to own the object).
func (d *ShardDirectory) StartFind(obj int32, v graph.NodeID) (graph.NodeID, bool) {
	i := int(obj)*d.n + int(v)
	if d.owner[i] == v {
		return v, true
	}
	target := d.owner[i]
	d.owner[i] = v
	return target, false
}

// ForwardFind shortens at's probable-owner pointer for obj to the
// requester and continues the chase; a self pointer means at owned the
// object.
func (d *ShardDirectory) ForwardFind(obj int32, at, from, origin graph.NodeID) (graph.NodeID, bool) {
	i := int(obj)*d.n + int(at)
	next := d.owner[i]
	d.owner[i] = origin
	if next == at {
		return origin, true
	}
	return next, false
}

// ShardSafeStepper marks the directory safe for the parallel drain:
// every owner entry is keyed by the node whose events touch it.
func (d *ShardDirectory) ShardSafeStepper() {}
