package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces bit-reproducibility in deterministic
// packages. Everything that feeds results, messages, or scheduling must
// be a pure function of the seed, so:
//
//   - no wall-clock reads: time.Now, time.Since, time.Until;
//   - no global math/rand generator (seeded *rand.Rand constructed via
//     rand.New(rand.NewSource(seed)) is the sanctioned source);
//   - no map iteration: range order is randomized by the runtime, so
//     any map range can leak nondeterminism into whatever the loop
//     computes — iterate a sorted key slice instead (det.SortedKeys);
//   - no goroutine spawns outside internal/par: par.ParallelMap is the
//     single place where concurrency is made deterministic by
//     index-owned result slots.
//
// _test.go files are exempt: tests are the dynamic gate and use
// timing/seeding idioms of their own.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, map iteration, and stray goroutines in deterministic packages",
	Run:  runDeterminism,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions backed by the shared global Source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are fine: they produce the
// seeded streams the repo runs on.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

func runDeterminism(pass *Pass) error {
	if !pass.InDeterministicPackage() {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name := calleePkgFunc(pass.Info, n); pkg != "" {
					switch {
					case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
						pass.Reportf(n.Pos(), "time.%s in deterministic package %s: inject a clock or take times from the simulator", name, pass.Pkg.Name())
					case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[name]:
						pass.Reportf(n.Pos(), "global rand.%s in deterministic package %s: draw from a seeded *rand.Rand instead", name, pass.Pkg.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is random and this package is deterministic: iterate sorted keys (det.SortedKeys) or keep a slice")
					}
				}
			case *ast.GoStmt:
				if pass.Pkg.Name() != "par" {
					pass.Reportf(n.Pos(), "goroutine spawn in deterministic package %s: route concurrency through par.ParallelMap (or engine.Sweep)", pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}

// calleePkgFunc resolves a call of the form pkg.Func to its package
// path and function name; it returns "" for method calls, locals, and
// builtins.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := info.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
