package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// arrowlint's comment directives, in the style of go:build /
// go:generate — no space after //, so gofmt leaves them alone and they
// are visibly machine-facing:
//
//	//arrow:allow <check> <reason...>   suppress one check here
//	//arrow:hotpath [note...]           mark a function as a zero-alloc path
//	//arrow:deterministic               opt a file's package into the
//	//                                  deterministic set
//
// An allow directive placed on its own line covers the next line; at
// the end of a line it covers that line; in the doc comment of a
// declaration it covers the whole declaration. The reason is not
// optional: an unexplained suppression is exactly the kind of entropy
// the linter exists to stop.
const directivePrefix = "//arrow:"

// knownChecks are the analyzer names an allow directive may reference.
var knownChecks = map[string]bool{
	"determinism": true,
	"hotpath":     true,
	"msgswitch":   true,
	"schedorder":  true,
}

type allowSite struct {
	check string
	// file-and-line scope: [fromLine, toLine] in filename
	filename string
	fromLine int
	toLine   int
}

type hotpathFunc struct {
	decl *ast.FuncDecl
}

type directives struct {
	allows        []allowSite
	hotpaths      []hotpathFunc
	deterministic bool
}

// allowed reports whether an //arrow:allow for check covers pos.
func (d *directives) allowed(check string, pos token.Position) bool {
	for _, a := range d.allows {
		if a.check == check && a.filename == pos.Filename &&
			pos.Line >= a.fromLine && pos.Line <= a.toLine {
			return true
		}
	}
	return false
}

// parseDirective splits an //arrow: comment into verb and argument
// rest; ok is false for ordinary comments.
func parseDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	verb, rest, _ = strings.Cut(body, " ")
	return verb, strings.TrimSpace(rest), true
}

// scanDirectives indexes every arrowlint directive in the package.
// Malformed directives are left out of the index (so they cannot
// silence anything) and re-reported by DirectiveAnalyzer.
func scanDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{}
	for _, f := range files {
		docRanges := declDocRanges(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case "allow":
					check, reason, _ := strings.Cut(rest, " ")
					if !knownChecks[check] || strings.TrimSpace(reason) == "" {
						continue // malformed; DirectiveAnalyzer reports it
					}
					pos := fset.Position(c.Pos())
					site := allowSite{
						check:    check,
						filename: pos.Filename,
						fromLine: pos.Line,
						toLine:   pos.Line + 1,
					}
					if decl, isDoc := docRanges[cg]; isDoc {
						end := fset.Position(decl.End())
						site.toLine = end.Line
					}
					d.allows = append(d.allows, site)
				case "deterministic":
					d.deterministic = true
				}
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if verb, _, ok := parseDirective(c.Text); ok && verb == "hotpath" {
					d.hotpaths = append(d.hotpaths, hotpathFunc{decl: fn})
				}
			}
		}
	}
	return d
}

// declDocRanges maps each comment group that is a declaration's doc
// comment to that declaration, so allow directives in docs can scope to
// the whole decl.
func declDocRanges(f *ast.File) map[*ast.CommentGroup]ast.Decl {
	m := map[*ast.CommentGroup]ast.Decl{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				m[d.Doc] = decl
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				m[d.Doc] = decl
			}
		}
	}
	return m
}

// DirectiveAnalyzer validates arrowlint directives themselves: unknown
// verbs, allow without a known check name, and allow without a reason
// are findings — a typoed directive that silently suppresses nothing
// (or worse, everything) must not pass vet.
var DirectiveAnalyzer = &Analyzer{
	Name: "arrowdir",
	Doc:  "validate //arrow: directive syntax (allow needs a known check and a reason)",
	Run:  runDirectiveCheck,
}

func runDirectiveCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case "allow":
					check, reason, _ := strings.Cut(rest, " ")
					if check == "" {
						pass.Reportf(c.Pos(), "arrow:allow needs a check name and a reason")
					} else if !knownChecks[check] {
						pass.Reportf(c.Pos(), "arrow:allow references unknown check %q", check)
					} else if strings.TrimSpace(reason) == "" {
						pass.Reportf(c.Pos(), "arrow:allow %s needs a reason", check)
					}
				case "hotpath", "deterministic":
					// Placement of hotpath is validated by the hotpath
					// analyzer (it must be a FuncDecl doc to take effect).
				default:
					pass.Reportf(c.Pos(), "unknown arrowlint directive arrow:%s", verb)
				}
			}
		}
	}
	return nil
}
