package lint

// The fixture harness is a small analysistest: each fixture package
// under testdata/src declares its expected findings inline with want
// comments, the harness loads and typechecks the package with Loader,
// runs the suite, and diffs reported against expected.
//
// Comment syntax, anywhere inside a comment's text:
//
//	want `regexp`            an unsuppressed finding on this line whose
//	                         message matches regexp
//	want:allowed `regexp`    a finding on this line that an
//	                         //arrow:allow directive suppressed — this
//	                         is how fixtures prove suppression works
//	want+N `regexp`          same, but the finding is N lines below the
//	                         comment (for findings reported at a bare
//	                         directive line that cannot hold a second
//	                         comment)
//
// Every reported diagnostic must be claimed by exactly one want, and
// every want must be claimed by a diagnostic; either leftover fails.

import (
	"regexp"
	"strconv"
	"testing"
)

var wantRE = regexp.MustCompile("want(:allowed)?(\\+[0-9]+)? `([^`]*)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	source  string
	allowed bool
	matched bool
}

func fixtureExpectations(t *testing.T, lp *LoadedPackage) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[3])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[3], err)
					}
					pos := lp.Fset.Position(c.Pos())
					line := pos.Line
					if m[2] != "" {
						off, _ := strconv.Atoi(m[2][1:])
						line += off
					}
					exps = append(exps, &expectation{
						file:    pos.Filename,
						line:    line,
						re:      re,
						source:  m[3],
						allowed: m[1] != "",
					})
				}
			}
		}
	}
	return exps
}

// runFixture analyzes testdata/src/<path> with the named analyzers and
// diffs the diagnostics against the fixture's want comments.
func runFixture(t *testing.T, path string, analyzers ...string) {
	t.Helper()
	loader := NewLoader("testdata/src")
	lp, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a] = true
	}
	diags, err := RunSuite(lp.Fset, lp.Files, lp.Pkg, lp.Info, lp.Path, "repro", enabled)
	if err != nil {
		t.Fatalf("running suite on %s: %v", path, err)
	}
	exps := fixtureExpectations(t, lp)
	for _, d := range diags {
		claimed := false
		for _, e := range exps {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line &&
				e.allowed == d.Suppress && e.re.MatchString(d.Message) {
				e.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic %s:%d: [%s] %s (suppressed=%v)",
				d.Pos.Filename, d.Pos.Line, d.Check, d.Message, d.Suppress)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("want at %s:%d not reported: `%s` (allowed=%v)",
				e.file, e.line, e.source, e.allowed)
		}
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, "detfix", "determinism") }
func TestHotpathFixture(t *testing.T)     { runFixture(t, "hotfix", "hotpath") }
func TestMsgswitchFixture(t *testing.T)   { runFixture(t, "msgfix", "msgswitch") }
func TestSchedorderFixture(t *testing.T)  { runFixture(t, "schedfix", "schedorder") }
func TestDirectiveFixture(t *testing.T)   { runFixture(t, "dirfix", "arrowdir") }

// TestFixtureSimPackageClean pins that the fixture scheduler stand-in
// itself is finding-free: construction inside a package named sim is
// the sanctioned path.
func TestFixtureSimPackageClean(t *testing.T) { runFixture(t, "sim", "schedorder") }
