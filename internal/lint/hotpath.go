package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer is the static twin of benchcheck's zero-alloc gate.
// A function whose doc comment carries //arrow:hotpath declares that it
// runs on the per-send/per-event path and must not allocate at steady
// state. The analyzer rejects the four allocation sources that have
// actually bitten this codebase:
//
//   - fmt calls (every fmt.* call allocates; a fmt call that is the
//     direct argument of panic is exempt — the formatting runs once,
//     on the way down);
//   - closures that capture variables (captured vars move to the heap;
//     the closure-free TimerHandler/ScheduleNodeAt API exists exactly
//     so hot paths never need one);
//   - boxing a non-pointer-shaped value into an interface (pointers,
//     maps, chans and funcs are stored directly in the iface word;
//     everything else allocates — pre-box messages once, like the
//     drivers' msgs arrays);
//   - appending to a slice declared in the same function with no
//     capacity (var s []T, s := []T{}, or make([]T, 0)): growth
//     reallocates on the hot path; pre-size it.
//
// A finding that is intentional — e.g. an amortized freelist grow —
// takes an //arrow:allow hotpath <reason>.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //arrow:hotpath must not allocate: no fmt, capturing closures, interface boxing, or unsized append",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	// A hotpath directive anywhere but a function's doc comment does
	// nothing; that silence is a bug in the annotation, so report it.
	marked := map[*ast.CommentGroup]bool{}
	for _, hp := range pass.dirs.hotpaths {
		if hp.decl.Doc != nil {
			marked[hp.decl.Doc] = true
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			if marked[cg] {
				continue
			}
			for _, c := range cg.List {
				if verb, _, ok := parseDirective(c.Text); ok && verb == "hotpath" {
					pass.Reportf(c.Pos(), "arrow:hotpath must be in the doc comment of a function declaration to take effect")
				}
			}
		}
	}
	for _, hp := range pass.dirs.hotpaths {
		checkHotFunc(pass, hp.decl)
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	locals := localSliceDecls(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, locals)
		case *ast.FuncLit:
			if capturesOuter(pass, fn, n) {
				pass.Reportf(n.Pos(), "capturing closure in hotpath %s: captured variables escape to the heap; use the closure-free timer/handler API", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					checkBoxing(pass, fn, n.Rhs[i], pass.Info.TypeOf(lhs))
				}
			}
		case *ast.ReturnStmt:
			sig, _ := pass.Info.TypeOf(fn.Name).(*types.Signature)
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkBoxing(pass, fn, res, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, locals map[types.Object]bool) {
	if pkg, name := calleePkgFunc(pass.Info, call); pkg == "fmt" {
		if !insidePanic(pass, fn, call) {
			pass.Reportf(call.Pos(), "fmt.%s in hotpath %s: fmt always allocates; move formatting off the send path", name, fn.Name.Name)
		}
		return
	}
	// Unsized-append check: append to a slice declared in this very
	// function with zero capacity.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if b, ok := pass.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if target, ok := call.Args[0].(*ast.Ident); ok && locals[pass.Info.ObjectOf(target)] {
				pass.Reportf(call.Pos(), "append to unsized local slice %s in hotpath %s: pre-size it (make with capacity) or hoist it out", target.Name, fn.Name.Name)
			}
		}
		return
	}
	// Boxing check on arguments against the callee signature.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, fn, arg, pt)
	}
}

// checkBoxing reports expr if assigning it to target boxes a
// non-pointer-shaped value into an interface.
func checkBoxing(pass *Pass, fn *ast.FuncDecl, expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface carries the word, no alloc
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return // pointer-shaped: stored directly in the interface word
	}
	if insidePanic(pass, fn, expr) {
		return // panic formatting is the cold path
	}
	pass.Reportf(expr.Pos(), "%s value boxed into interface in hotpath %s: boxing a non-pointer allocates; pre-box it once outside the loop", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), fn.Name.Name)
}

// insidePanic reports whether expr sits (transitively) inside the
// argument of a panic call within fn — formatting a panic message is
// one-shot by definition and exempt from hot-path rules.
func insidePanic(pass *Pass, fn *ast.FuncDecl, expr ast.Expr) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
				if call.Pos() <= expr.Pos() && expr.End() <= call.End() {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// capturesOuter reports whether lit references a variable declared in
// fn outside the literal itself (receiver, parameter, or local).
func capturesOuter(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside fn but outside the literal.
		if v.Pos() >= fn.Pos() && v.Pos() < fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// localSliceDecls collects objects for slices declared inside fn with
// zero capacity: `var s []T`, `s := []T{}`, `s := make([]T, 0)` (or any
// make with no capacity argument).
func localSliceDecls(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	locals := map[types.Object]bool{}
	mark := func(id *ast.Ident, init ast.Expr) {
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if init == nil {
			locals[obj] = true // var s []T
			return
		}
		switch e := init.(type) {
		case *ast.CompositeLit:
			if len(e.Elts) == 0 {
				locals[obj] = true // s := []T{}
			}
		case *ast.CallExpr:
			if f, ok := e.Fun.(*ast.Ident); ok && f.Name == "make" && len(e.Args) <= 2 {
				if _, isBuiltin := pass.Info.ObjectOf(f).(*types.Builtin); isBuiltin {
					locals[obj] = true // make([]T, n) without cap
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) && len(n.Rhs) == len(n.Lhs) {
					mark(id, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					mark(id, init)
				}
			}
		}
		return true
	})
	return locals
}
