// Package lint is arrowlint: a static-analysis suite that enforces the
// repo's determinism, hot-path, and protocol invariants at compile
// time. It is the static twin of the dynamic gates — the
// sweep-determinism property tests, benchcheck's zero-alloc gate, and
// the scheduler-equivalence traces — and exists so that a stray
// time.Now, a global math/rand call, an unordered map iteration, or a
// capturing closure on a send path is a vet error today instead of a
// flaky CI run three PRs from now.
//
// The suite is built directly on go/ast and go/types (the module is
// dependency-free by policy; golang.org/x/tools is not available), with
// a small framework mirroring the x/tools go/analysis shape: each
// check is an Analyzer with a Run func over a Pass, and
// cmd/arrowlint drives the suite both standalone and as a
// `go vet -vettool` plugin.
//
// Four analyzers:
//
//   - determinism: in deterministic packages, forbid wall-clock reads
//     (time.Now/Since/Until), the global math/rand generator, map
//     iteration (order reaches results, messages, or scheduling), and
//     goroutine spawns outside internal/par.
//   - hotpath: functions annotated //arrow:hotpath must not call fmt,
//     build capturing closures, box non-pointer values into
//     interfaces, or grow locally-declared slices from a zero
//     capacity.
//   - msgswitch: type switches over a protocol message family (an
//     interface with an is*Msg/is*Message marker method) must list
//     every type in the family, and switches over repo-declared
//     integer enums must cover every declared constant.
//   - schedorder: events and timers go through the (at, pri, seq)
//     scheduler API: no construction of sim.Simulator/sim.Context
//     outside the sim package, no storing a *sim.Context beyond the
//     handler call, and no wall-clock timers or second event heap in
//     deterministic packages.
//
// Suppression: a finding is silenced by an `//arrow:allow <check>
// <reason>` directive on the same line, the line above, or in the doc
// comment of the enclosing declaration. The reason is mandatory; the
// directive analyzer rejects malformed or unknown directives.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. It mirrors the
// golang.org/x/tools/go/analysis Analyzer shape so the suite reads
// familiarly, but carries only what the arrowlint driver needs.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one package. Report goes through
// the framework so //arrow:allow filtering happens in one place.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the canonical import path ("repro/internal/loop"); it can
	// differ from Pkg.Path() in fixture loads.
	Path string
	// Module is the module path ("repro"), or "" when unknown; enum
	// exhaustiveness uses it to recognize repo-declared types.
	Module string

	dirs   *directives
	report func(Diagnostic)
}

// Diagnostic is one finding, attributed to the analyzer that produced
// it.
type Diagnostic struct {
	Pos      token.Position
	Check    string
	Message  string
	Suppress bool // true when an //arrow:allow directive covered it
}

// Reportf files a finding at pos. Findings covered by a matching
// //arrow:allow directive are marked suppressed and dropped by the
// drivers (the test harness still sees them, so fixtures can prove a
// suppression works).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	}
	if p.dirs != nil && p.dirs.allowed(p.Analyzer.Name, position) {
		d.Suppress = true
	}
	p.report(d)
}

// InDeterministicPackage reports whether the pass's package carries the
// repo's determinism contract: bit-identical outputs for a fixed seed.
// Membership is by import path (the fixed list below) or by an
// `//arrow:deterministic` file directive, which is how new packages and
// test fixtures opt in.
func (p *Pass) InDeterministicPackage() bool {
	path := canonicalPath(p.Path)
	for _, det := range deterministicPackages {
		if path == det {
			return true
		}
	}
	return p.dirs != nil && p.dirs.deterministic
}

// deterministicPackages are the packages whose outputs feed results,
// messages, or scheduling and must therefore be bit-reproducible for a
// fixed seed. internal/runtime is deliberately absent: it is the live
// goroutine-per-node arrow, wall-clock by design, and its agreement
// with the simulator is checked dynamically.
var deterministicPackages = []string{
	"repro/internal/sim",
	"repro/internal/engine",
	"repro/internal/loop",
	"repro/internal/tree",
	"repro/internal/stabilize",
	"repro/internal/arrow",
	"repro/internal/centralized",
	"repro/internal/nta",
	"repro/internal/ivy",
	"repro/internal/directory",
	"repro/internal/workload",
	"repro/internal/graph",
	"repro/internal/queuing",
	"repro/internal/stats",
	"repro/internal/opt",
	"repro/internal/trace",
	"repro/internal/analysis",
	"repro/internal/tsp",
	"repro/internal/det",
	"repro/internal/par",
	"repro/internal/lint",
}

// canonicalPath strips the test-variant suffix go vet appends to a
// package under test ("repro/internal/sim [repro/internal/sim.test]").
func canonicalPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// isTestFile reports whether the file at pos is an _test.go file. The
// determinism and wall-clock checks skip tests: tests are gated
// dynamically, and seeded-randomness or timing assertions are
// legitimate there.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Suite returns the arrowlint analyzers in reporting order: the
// directive validator first (a malformed directive silently disabling a
// check is itself a finding), then the four invariant checks.
func Suite() []*Analyzer {
	return []*Analyzer{
		DirectiveAnalyzer,
		DeterminismAnalyzer,
		HotpathAnalyzer,
		MsgswitchAnalyzer,
		SchedorderAnalyzer,
	}
}

// RunSuite analyzes one package with every analyzer in the suite whose
// name is enabled (nil enabled = all) and returns the diagnostics,
// including suppressed ones, in source order.
func RunSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path, module string, enabled map[string]bool) ([]Diagnostic, error) {
	dirs := scanDirectives(fset, files)
	var out []Diagnostic
	for _, a := range Suite() {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Path:     path,
			Module:   module,
			dirs:     dirs,
			report:   func(d Diagnostic) { out = append(out, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny and this avoids pulling
	// sort.Slice's reflection into the hot vet path for nothing.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && lessDiag(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func lessDiag(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Check < b.Check
}
