package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file is the source-level package loader behind the analysistest
// harness: it typechecks a fixture directory tree without the go build
// graph. Fixture packages may import sibling fixture packages (resolved
// from source, recursively) and anything the toolchain can provide
// export data for (resolved via `go list -export`, which works offline
// against the local build cache).

// LoadedPackage is one typechecked package ready for RunSuite.
type LoadedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Path  string
}

// Loader typechecks fixture packages under Root, where each import path
// maps to the directory Root/<path>.
type Loader struct {
	Root string

	fset *token.FileSet
	mu   sync.Mutex
	pkgs map[string]*LoadedPackage
	gc   types.Importer
}

func NewLoader(root string) *Loader {
	l := &Loader{
		Root: root,
		fset: token.NewFileSet(),
		pkgs: map[string]*LoadedPackage{},
	}
	l.gc = importer.ForCompiler(l.fset, "gc", exportDataLookup)
	return l
}

// Load typechecks the fixture package at Root/<path> (memoized).
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

func (l *Loader) load(path string) (*LoadedPackage, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through fixture %q", path)
		}
		return p, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = nil // cycle marker
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(ipath))); err == nil {
				dep, err := l.load(ipath)
				if err != nil {
					return nil, err
				}
				return dep.Pkg, nil
			}
			return l.gc.Import(ipath)
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %v", path, err)
	}
	lp := &LoadedPackage{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Path: path}
	l.pkgs[path] = lp
	return lp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportDataLookup resolves an import to compiler export data via
// `go list -export`. The gc importer falls back to this only for
// packages it cannot find installed, so the exec cost is paid once per
// uncached package per process.
func exportDataLookup(path string) (io.ReadCloser, error) {
	out, err := goListExport(path)
	if err != nil {
		return nil, err
	}
	return os.Open(out)
}

var (
	exportCacheMu sync.Mutex
	exportCache   = map[string]string{}
)

func goListExport(path string) (string, error) {
	exportCacheMu.Lock()
	defer exportCacheMu.Unlock()
	if f, ok := exportCache[path]; ok {
		return f, nil
	}
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	f := strings.TrimSpace(stdout.String())
	if f == "" {
		return "", fmt.Errorf("go list -export %s: no export data", path)
	}
	exportCache[path] = f
	return f, nil
}
