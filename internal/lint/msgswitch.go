package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MsgswitchAnalyzer enforces exhaustive dispatch over protocol message
// families and repo-declared enums. A forgotten case in a message
// switch is the classic protocol-extension bug: the new message falls
// into default (or worse, is silently dropped) and the failure shows up
// rounds later as a stuck token.
//
// Two kinds of switch are checked:
//
//   - Type switches over a message family. A family is an interface
//     declaring a parameterless marker method matching is*Msg /
//     is*Message (e.g. `type loopMsg interface{ isLoopMsg() }`). Any
//     type switch with at least one case type implementing a family
//     must list every type in that family — every named type in the
//     family's declaring package whose value or pointer implements the
//     marker. A default clause does not excuse a missing case: default
//     is for corruption panics, not for real messages.
//
//   - Value switches over an enum: a defined (non-alias) integer type
//     declared in this module with at least two package-level
//     constants. If every case expression is constant, the cases must
//     cover every declared constant value of the type (names sharing a
//     value count once).
//
// Marker methods travel through export data, so cross-package switches
// stay checkable under go vet's one-package-at-a-time protocol.
var MsgswitchAnalyzer = &Analyzer{
	Name: "msgswitch",
	Doc:  "type switches over is*Msg marker interfaces and repo enums must be exhaustive",
	Run:  runMsgswitch,
}

var markerMethodRE = regexp.MustCompile(`^is[A-Z][A-Za-z0-9]*(Msg|Message)$`)

func runMsgswitch(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// familyOf returns the message-family interface that typ (or its
// pointer) implements, if any.
func familyOf(typ types.Type) *types.Named {
	named := namedOf(typ)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		fam, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		iface, ok := fam.Underlying().(*types.Interface)
		if !ok || !isMarkerIface(iface) {
			continue
		}
		if types.Implements(typ, iface) {
			return fam
		}
	}
	return nil
}

// isMarkerIface reports whether iface declares a parameterless,
// resultless marker method named is*Msg/is*Message.
func isMarkerIface(iface *types.Interface) bool {
	for i := 0; i < iface.NumExplicitMethods(); i++ {
		m := iface.ExplicitMethod(i)
		sig := m.Type().(*types.Signature)
		if markerMethodRE.MatchString(m.Name()) && sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return true
		}
	}
	return false
}

func namedOf(typ types.Type) *types.Named {
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	named, _ := typ.(*types.Named)
	return named
}

func checkTypeSwitch(pass *Pass, sw *ast.TypeSwitchStmt) {
	// Collect the case types and the families they belong to.
	covered := map[*types.Named]bool{} // named type (pointee) -> seen as case
	var families []*types.Named        // case order, deduplicated
	famSeen := map[*types.Named]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.Info.Types[expr]
			if !ok || tv.Type == nil || tv.IsNil() {
				continue
			}
			if named := namedOf(tv.Type); named != nil {
				covered[named] = true
				if !types.IsInterface(named.Underlying()) {
					if fam := familyOf(tv.Type); fam != nil && !famSeen[fam] {
						famSeen[fam] = true
						families = append(families, fam)
					}
				}
			}
		}
	}
	for _, fam := range families {
		iface := fam.Underlying().(*types.Interface)
		pkg := fam.Obj().Pkg()
		var missing []string
		// Scope.Names is sorted, so the report order is deterministic —
		// the linter holds itself to the invariant it enforces.
		for _, name := range pkg.Scope().Names() {
			tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			member, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(member.Underlying()) {
				continue
			}
			if !types.Implements(member, iface) && !types.Implements(types.NewPointer(member), iface) {
				continue
			}
			if !covered[member] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(), "type switch over message family %s is missing cases for %s",
				fam.Obj().Name(), strings.Join(missing, ", "))
		}
	}
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := pass.Info.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !inModule(pass, pkg) {
		return
	}
	// Declared constants of exactly this type, deduplicated by value.
	type enumConst struct {
		name string
		val  constant.Value
	}
	var consts []enumConst
	seen := map[string]bool{} // value string -> declared
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if !seen[key] {
			seen[key] = true
			consts = append(consts, enumConst{name: name, val: c.Val()})
		}
	}
	if len(consts) < 2 {
		return // not an enum, just a typed constant
	}
	coveredVals := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.Info.Types[expr]
			if !ok || tv.Value == nil {
				return // non-constant case: range checks etc.; not an enum dispatch
			}
			coveredVals[tv.Value.ExactString()] = true
		}
	}
	if len(coveredVals) == 0 {
		return // `switch kind {}` with only default, or no cases at all
	}
	var missing []string
	for _, c := range consts {
		if !coveredVals[c.val.ExactString()] {
			missing = append(missing, c.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over enum %s is missing cases for %s",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// inModule reports whether pkg is part of this module (the enum rule
// only applies to repo-declared types; stdlib integer types with
// constants, like reflect.Kind, are out of scope).
func inModule(pass *Pass, pkg *types.Package) bool {
	if pkg == pass.Pkg {
		return true
	}
	if pass.Module == "" {
		return false
	}
	path := canonicalPath(pkg.Path())
	return path == pass.Module || strings.HasPrefix(path, pass.Module+"/")
}
