package lint

import (
	"go/ast"
	"go/types"
)

// SchedorderAnalyzer keeps every event and timer on the simulator's
// (at, pri, seq) total order. The scheduler's determinism guarantees
// hold only if all scheduling flows through the sim API — sim.New,
// Context.Send/After/AfterNode, Simulator.ScheduleAt/ScheduleNodeAt —
// so the analyzer flags the ways code has tried (or could try) to go
// around it:
//
//   - constructing sim.Simulator or sim.Context directly (composite
//     literal or new) outside the sim package: a zero-value Simulator
//     skips New's stream seeding and plan compilation; a hand-built
//     Context forges scheduling authority;
//   - storing a *sim.Context anywhere that outlives the handler call
//     (struct field, slice/map element, package var, channel): the
//     context is only valid during its handler dispatch, and a stashed
//     context bypasses both the event order and the parallel drain's
//     op logs;
//   - wall-clock timers (time.Sleep/After/AfterFunc/NewTimer/
//     NewTicker/Tick) in deterministic packages outside sim: simulated
//     time is the only clock events may ride;
//   - importing container/heap in a deterministic package outside sim:
//     a second event queue cannot share the (at, pri, seq) order — put
//     the events on the scheduler instead.
//
// Scheduler-owned types are recognized by package name "sim" so the
// fixture packages exercise the same code path as the real
// internal/sim.
var SchedorderAnalyzer = &Analyzer{
	Name: "schedorder",
	Doc:  "events and timers go through the (at, pri, seq) scheduler API; no scheduler internals outside internal/sim",
	Run:  runSchedorder,
}

var wallClockTimerFuncs = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Tick": true,
}

func runSchedorder(pass *Pass) error {
	inSim := pass.Pkg.Name() == "sim"
	det := pass.InDeterministicPackage()
	for _, f := range pass.Files {
		test := isTestFile(pass.Fset, f.Pos())
		if det && !inSim && !test {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"container/heap"` {
					pass.Reportf(imp.Pos(), "container/heap in deterministic package %s: a second event queue cannot share the scheduler's (at, pri, seq) order", pass.Pkg.Name())
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if inSim {
					return true
				}
				if name, ok := schedulerOwnedType(pass.Info.TypeOf(n)); ok {
					pass.Reportf(n.Pos(), "direct construction of sim.%s outside internal/sim: go through sim.New and the scheduler API", name)
				}
			case *ast.CallExpr:
				if !inSim {
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
						if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
							if name, ok := schedulerOwnedType(pass.Info.TypeOf(n.Args[0])); ok {
								pass.Reportf(n.Pos(), "direct construction of sim.%s outside internal/sim: go through sim.New and the scheduler API", name)
							}
						}
					}
				}
				if det && !inSim && !test {
					if pkg, name := calleePkgFunc(pass.Info, n); pkg == "time" && wallClockTimerFuncs[name] {
						pass.Reportf(n.Pos(), "wall-clock time.%s in deterministic package %s: schedule through the simulator (Context.After/AfterNode, ScheduleNodeAt)", name, pass.Pkg.Name())
					}
				}
			case *ast.AssignStmt:
				if inSim {
					return true
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) || !isContextPtr(pass.Info.TypeOf(n.Rhs[i])) {
						continue
					}
					switch lhs := lhs.(type) {
					case *ast.SelectorExpr:
						pass.Reportf(n.Pos(), "storing *sim.Context in a field: contexts are valid only during their handler call; capture node IDs and reschedule instead")
					case *ast.IndexExpr:
						pass.Reportf(n.Pos(), "storing *sim.Context in a container: contexts are valid only during their handler call")
					case *ast.Ident:
						if v, ok := pass.Info.ObjectOf(lhs).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
							pass.Reportf(n.Pos(), "storing *sim.Context in package variable %s: contexts are valid only during their handler call", lhs.Name)
						}
					}
				}
			case *ast.SendStmt:
				if !inSim && isContextPtr(pass.Info.TypeOf(n.Value)) {
					pass.Reportf(n.Pos(), "sending *sim.Context on a channel: contexts are valid only during their handler call")
				}
			case *ast.KeyValueExpr:
				if !inSim && isContextPtr(pass.Info.TypeOf(n.Value)) {
					pass.Reportf(n.Pos(), "storing *sim.Context in a composite literal: contexts are valid only during their handler call")
				}
			}
			return true
		})
	}
	return nil
}

// schedulerOwnedType reports whether typ is one of the sim package's
// scheduler-owned structs that only internal/sim may construct.
func schedulerOwnedType(typ types.Type) (string, bool) {
	named := namedOf(typ)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "sim" {
		return "", false
	}
	name := named.Obj().Name()
	if name == "Simulator" || name == "Context" {
		return name, true
	}
	return "", false
}

// isContextPtr reports whether typ is *sim.Context.
func isContextPtr(typ types.Type) bool {
	ptr, ok := typ.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Context" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "sim"
}
