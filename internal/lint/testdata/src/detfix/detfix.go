// Package detfix exercises the determinism analyzer: the package opts
// into the deterministic set with the file directive below, so
// wall-clock reads, the global rand generator, map iteration, and
// goroutine spawns are findings, while seeded streams and sorted
// iteration are not.
//
//arrow:deterministic
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

func Wall() time.Time {
	return time.Now() // want `time\.Now in deterministic package detfix`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic package detfix`
}

func Global() int {
	return rand.Intn(6) // want `global rand\.Intn in deterministic package detfix`
}

// Seeded draws from a constructed stream: the sanctioned source.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func Iterate(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is random`
		sum += v
	}
	return sum
}

// IterateSorted walks the keys in sorted order: no finding.
func IterateSorted(m map[string]int) int {
	keys := make([]string, 0, len(m))
	//arrow:allow determinism fixture: key collection itself needs one raw pass
	for k := range m { // want:allowed `map iteration order is random`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func Spawn(done chan struct{}) {
	go close(done) // want `goroutine spawn in deterministic package detfix`
}

// WallAllowed proves decl-scoped suppression: the allow directive in
// this doc comment covers the whole function.
//
//arrow:allow determinism fixture: report-only timestamp, never feeds results
func WallAllowed() time.Time {
	return time.Now() // want:allowed `time\.Now in deterministic package detfix`
}
