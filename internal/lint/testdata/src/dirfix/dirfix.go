// Package dirfix exercises the directive validator: malformed
// directives are findings, well-formed ones are not.
package dirfix

//arrow:frobnicate nonsense verb — want `unknown arrowlint directive arrow:frobnicate`
var a = 1

//arrow:allow notacheck the check name is bogus so this is a finding — want `arrow:allow references unknown check "notacheck"`
var b = 2

// want+2 `arrow:allow determinism needs a reason`
//
//arrow:allow determinism
var c = 3

// want+2 `arrow:allow needs a check name and a reason`
//
//arrow:allow
var d = 4

//arrow:allow determinism a well-formed allow with a reason is fine
var e = 5

//arrow:deterministic
var f = 6
