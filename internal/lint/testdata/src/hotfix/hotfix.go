// Package hotfix exercises the hotpath analyzer: each annotated
// function commits one of the four allocation sins, and the clean
// variants prove the exemptions (panic formatting, pre-sized slices,
// pointer-shaped interface values).
package hotfix

import "fmt"

//arrow:hotpath
func Fmt(x int) {
	fmt.Println(x) // want `fmt\.Println in hotpath Fmt`
}

//arrow:hotpath
func Closure(x int) func() int {
	return func() int { return x } // want `capturing closure in hotpath Closure`
}

//arrow:hotpath
func Box(x int) any {
	return x // want `int value boxed into interface in hotpath Box`
}

//arrow:hotpath
func Grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to unsized local slice out in hotpath Grow`
	}
	return out
}

// Presized allocates once up front and only panics on the cold path:
// no findings.
//
//arrow:hotpath
func Presized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	if len(out) != len(xs) {
		panic(fmt.Sprintf("hotfix: lost %d elements", len(xs)-len(out)))
	}
	return out
}

// PointerShaped returns a pointer through an interface: the iface word
// holds the pointer directly, no allocation, no finding.
//
//arrow:hotpath
func PointerShaped(p *int) any {
	return p
}

// NonCapturing uses a closure that touches nothing from the enclosing
// frame: nothing escapes, no finding.
//
//arrow:hotpath
func NonCapturing() func() int {
	return func() int { return 42 }
}

// Amortized proves decl-scoped suppression of an intentional unsized
// grow (the freelist idiom).
//
//arrow:allow hotpath fixture: amortized freelist growth, measured zero-alloc at steady state
//arrow:hotpath
func Amortized(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want:allowed `append to unsized local slice out`
	}
	return out
}

func cold() {
	//arrow:hotpath misplaced, does nothing here — want `arrow:hotpath must be in the doc comment of a function declaration`
	_ = 0
}
