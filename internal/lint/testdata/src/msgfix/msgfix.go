// Package msgfix exercises the msgswitch analyzer: a marker-method
// message family with an incomplete and a complete type switch, and a
// declared enum with an incomplete and a complete value switch.
package msgfix

type wireMsg interface{ isWireMsg() }

type pingMsg struct{ seq int }
type pongMsg struct{ seq int }
type ackMsg struct{ seq int }

func (pingMsg) isWireMsg() {}
func (pongMsg) isWireMsg() {}
func (ackMsg) isWireMsg()  {}

// incomplete forgets ackMsg; the default clause does not excuse it.
func incomplete(m wireMsg) int {
	switch m.(type) { // want `type switch over message family wireMsg is missing cases for ackMsg`
	case pingMsg:
		return 1
	case pongMsg:
		return 2
	default:
		return 0
	}
}

func complete(m wireMsg) int {
	switch v := m.(type) {
	case pingMsg:
		return v.seq
	case pongMsg:
		return v.seq
	case ackMsg:
		return v.seq
	}
	return 0
}

type phase int

const (
	phaseIdle phase = iota
	phaseBusy
	phaseDone
)

func enumIncomplete(p phase) string {
	switch p { // want `switch over enum phase is missing cases for phaseDone`
	case phaseIdle:
		return "idle"
	case phaseBusy:
		return "busy"
	}
	return "?"
}

func enumComplete(p phase) string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseBusy:
		return "busy"
	case phaseDone:
		return "done"
	}
	return "?"
}

// enumAllowed proves decl-scoped suppression for a deliberate partial
// dispatch.
//
//arrow:allow msgswitch fixture: phaseDone handled by the caller's fallthrough
func enumAllowed(p phase) string {
	switch p { // want:allowed `switch over enum phase is missing cases for phaseDone`
	case phaseIdle:
		return "idle"
	case phaseBusy:
		return "busy"
	}
	return "?"
}

// rangeStyle switches on non-constant cases: not an enum dispatch, no
// finding.
func rangeStyle(p phase, cut phase) string {
	switch p {
	case cut:
		return "cut"
	}
	return "?"
}
