package schedfix

import _ "container/heap" // want `container/heap in deterministic package schedfix`
