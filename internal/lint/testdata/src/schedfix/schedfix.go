// Package schedfix exercises the schedorder analyzer against the
// fixture sim package: direct construction of scheduler-owned types,
// context stores that outlive the handler call, and wall-clock timers
// in a deterministic package.
//
//arrow:deterministic
package schedfix

import (
	"time"

	"sim"
)

type node struct {
	id  int
	ctx *sim.Context
}

var saved *sim.Context

func construct() *sim.Simulator {
	return &sim.Simulator{} // want `direct construction of sim\.Simulator outside internal/sim`
}

func allocate() *sim.Context {
	return new(sim.Context) // want `direct construction of sim\.Context outside internal/sim`
}

func stash(n *node, c *sim.Context) {
	n.ctx = c // want `storing \*sim\.Context in a field`
}

func stashGlobal(c *sim.Context) {
	saved = c // want `storing \*sim\.Context in package variable saved`
}

func stashSlice(dst []*sim.Context, c *sim.Context) {
	dst[0] = c // want `storing \*sim\.Context in a container`
}

func stashChan(ch chan *sim.Context, c *sim.Context) {
	ch <- c // want `sending \*sim\.Context on a channel`
}

func stashLit(c *sim.Context) node {
	return node{id: 1, ctx: c} // want `storing \*sim\.Context in a composite literal`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in deterministic package schedfix`
}

// sanctioned goes through the sim API and only uses the context inside
// the handler frame: no findings.
func sanctioned() int64 {
	s := sim.New(8)
	return s.Ctx().Now()
}

// watchdog proves decl-scoped suppression of a wall-clock timer.
//
//arrow:allow schedorder fixture: coarse watchdog outside the event loop
func watchdog() {
	time.Sleep(time.Second) // want:allowed `wall-clock time\.Sleep`
}
