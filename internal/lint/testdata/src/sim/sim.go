// Package sim is the fixture stand-in for the scheduler package.
// schedorder recognizes scheduler-owned types by package name, so this
// fixture exercises the exact code path the real internal/sim takes:
// construction in here is sanctioned, construction anywhere else is a
// finding.
package sim

type Simulator struct{ n int }

type Context struct{ now int64 }

func New(n int) *Simulator { return &Simulator{n: n} }

func (s *Simulator) Ctx() *Context { return &Context{} }

func (c *Context) Now() int64 { return c.now }
