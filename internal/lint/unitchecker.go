package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol (the
// protocol golang.org/x/tools/go/analysis/unitchecker speaks; x/tools
// is not vendorable here, so arrowlint implements it directly on the
// standard library). go vet invokes the tool once per package with a
// JSON config file as the sole positional argument; the config names
// the source files and maps every import to a compiler export-data
// file, which go/importer's gc importer can read natively. The tool
// must write the (for arrowlint, empty) facts file at VetxOutput so
// go vet can cache the run, must stay silent on VetxOnly dependency
// passes, and signals findings with exit code 2.

// VetConfig mirrors cmd/go's internal vetConfig JSON.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVet executes one unit-checker invocation against the vet config at
// cfgPath and returns the process exit code: 0 clean, 1 tool/typecheck
// error, 2 findings.
func RunVet(w io.Writer, cfgPath string, enabled map[string]bool) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "arrowlint: %v\n", err)
		return 1
	}
	// Facts first: go vet caches the run keyed on this file existing,
	// and arrowlint has no cross-package facts to record.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(w, "arrowlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}
	diags, err := analyzeUnit(cfg, enabled)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "arrowlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	reported := 0
	for _, d := range diags {
		if d.Suppress {
			continue
		}
		fmt.Fprintf(w, "%s: [%s] %s\n", d.Pos, d.Check, d.Message)
		reported++
	}
	if reported > 0 {
		return 2
	}
	return 0
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("unsupported compiler %q (arrowlint reads gc export data only)", cfg.Compiler)
	}
	return cfg, nil
}

// analyzeUnit parses and typechecks the unit described by cfg and runs
// the suite over it.
func analyzeUnit(cfg *VetConfig, enabled map[string]bool) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var typeErrs []error
	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", buildArch()),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if v := goLanguageVersion(cfg.GoVersion); v != "" {
		tcfg.GoVersion = v
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, typeErrs[0]
	}
	return RunSuite(fset, files, pkg, info, cfg.ImportPath, cfg.ModulePath, enabled)
}

func buildArch() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}

// goLanguageVersion normalizes cfg.GoVersion to what types.Config
// accepts ("go1.24"); release candidates and devel strings carry
// suffixes types rejects, so trim to the major.minor prefix.
func goLanguageVersion(v string) string {
	if !strings.HasPrefix(v, "go") {
		return ""
	}
	dots := 0
	for i := 2; i < len(v); i++ {
		c := v[i]
		if c == '.' {
			dots++
			if dots == 2 {
				return v[:i]
			}
			continue
		}
		if c < '0' || c > '9' {
			return v[:i]
		}
	}
	return v
}
