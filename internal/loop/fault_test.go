package loop_test

// External test package: the loop driver is exercised through its real
// consumers (NTA and Ivy), matching how the engine adapters drive it.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/nta"
	"repro/internal/sim"
)

// churnPlan is a node-churn schedule over a complete graph (link churn
// is a tree-topology notion; forwarding protocols send point to point).
func churnPlan(n int, rate float64, seed int64) *sim.FaultPlan {
	return &sim.FaultPlan{Events: sim.NodeChurn(n, nil, rate, 25, 20, 600, seed)}
}

// TestForwardingLoopsSurviveNodeChurn: NTA and Ivy closed loops complete
// every request under node churn — dropped finds re-issue at heal,
// dropped replies resume the requester's loop.
func TestForwardingLoopsSurviveNodeChurn(t *testing.T) {
	const n, perNode = 24, 30
	g := graph.Complete(n)
	plan := churnPlan(n, 1.5, 7)
	run := func(name string) *nta.LoopResult {
		switch name {
		case "nta":
			res, err := nta.RunClosedLoop(g, nta.LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Root: 0})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		default:
			res, err := ivy.RunClosedLoop(g, ivy.LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Root: 0})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
	}
	for _, name := range []string{"nta", "ivy"} {
		res := run(name)
		if want := int64(n * perNode); res.Requests != want {
			t.Fatalf("%s: completed %d of %d", name, res.Requests, want)
		}
		if res.Dropped == 0 {
			t.Fatalf("%s: churn plan dropped nothing; scenario vacuous", name)
		}
		if res.Reissued == 0 && res.RepliesLost == 0 {
			t.Fatalf("%s: drops without any recovery activity: %+v", name, res)
		}
		if res.Affected == 0 || res.Affected > res.Requests {
			t.Fatalf("%s: implausible affected count: %+v", name, res)
		}
		if res.RepairMessages != 0 || res.RepairEpisodes != 0 {
			t.Fatalf("%s: forwarding protocol reported repair traffic: %+v", name, res)
		}
		// Determinism: an identical run returns identical counters.
		if again := run(name); !reflect.DeepEqual(res, again) {
			t.Fatalf("%s: fault run not deterministic", name)
		}
	}
}

// TestForwardingLoopQueuePolicy: under FaultQueue nothing drops and no
// re-issues happen; stalled messages only mark requests affected.
func TestForwardingLoopQueuePolicy(t *testing.T) {
	const n, perNode = 16, 20
	g := graph.Complete(n)
	plan := &sim.FaultPlan{Policy: sim.FaultQueue, Events: sim.NodeChurn(n, nil, 1, 20, 15, 400, 3)}
	res, err := nta.RunClosedLoop(g, nta.LoopConfig{Spec: loop.Spec{PerNode: perNode, Faults: plan}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.Reissued != 0 {
		t.Fatalf("queue policy lost work: %+v", res)
	}
	if res.Deferred == 0 {
		t.Fatal("plan deferred nothing; scenario vacuous")
	}
	if res.Affected == 0 {
		t.Fatal("deferred messages did not mark requests affected")
	}
}

// TestForwardingLoopEmptyPlanBitIdentical: the acceptance criterion on
// the forwarding drivers — a nil and an empty plan agree byte for byte.
func TestForwardingLoopEmptyPlanBitIdentical(t *testing.T) {
	g := graph.Complete(12)
	base, err := ivy.RunClosedLoop(g, ivy.LoopConfig{Spec: loop.Spec{PerNode: 25}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := ivy.RunClosedLoop(g, ivy.LoopConfig{Spec: loop.Spec{PerNode: 25, Faults: &sim.FaultPlan{}}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, empty) {
		t.Fatalf("empty plan diverged:\n nil:   %+v\n empty: %+v", base, empty)
	}
}

// TestForwardingLoopRejectsNonHealingPlan: permanent failures are
// refused up front.
func TestForwardingLoopRejectsNonHealingPlan(t *testing.T) {
	g := graph.Complete(6)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{{At: 3, Kind: sim.NodeDown, U: 1}}}
	if _, err := nta.RunClosedLoop(g, nta.LoopConfig{Spec: loop.Spec{PerNode: 2, Faults: plan}, Root: 0}); err == nil {
		t.Fatal("non-healing plan accepted")
	}
}
