// Package loop is the shared closed-loop driver for pointer-forwarding
// queuing protocols over a graph metric (NTA, Ivy): every node issues
// PerNode requests, each request chases the protocol's pointer
// discipline hop by hop as real simulator messages, the node where the
// chase ends notifies the requester directly, and the requester re-issues
// after ThinkTime. The pointer discipline itself is supplied as a
// Stepper, so the counters, message pre-boxing, think-time handling and
// divergence guard exist exactly once and cannot drift between
// protocols. (Arrow's closed loop lives in package arrow: its replies
// route hop-by-hop over the spanning tree and its drained-link invariant
// is tree-specific, so it shares the counter shape but not the driver.)
package loop

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Stepper is a protocol's pointer discipline — the only part that
// differs between the forwarding protocols. Both methods mutate the
// protocol's pointer state.
type Stepper interface {
	// StartFind begins a request at v. If v already holds the object /
	// tail, local is true and no message is sent; otherwise the request
	// is forwarded to target.
	StartFind(v graph.NodeID) (target graph.NodeID, local bool)
	// ForwardFind processes a request for origin arriving at node at
	// with hops forwarding messages consumed so far. done reports the
	// chase ended at at; otherwise the request forwards to next.
	ForwardFind(at, origin graph.NodeID, hops int) (next graph.NodeID, done bool)
}

// ShardSafe marks a Stepper whose pointer state is partitioned by node:
// StartFind(v) touches only state keyed by v, ForwardFind(at, ...) only
// state keyed by at. Such a stepper may run under the simulator's
// lookahead-windowed parallel drain, where same-tick events at different
// nodes execute on different workers — the node-keyed partition is
// exactly the drain's shard boundary. Steppers with cross-node shared
// state (Ivy's directory statistics, for example) must not opt in; the
// driver runs them serially regardless of Config.Workers.
type ShardSafe interface {
	ShardSafeStepper()
}

// Spec drives a closed-loop run (the Section 5 regime). It is the one
// run-spec shared by every protocol driver: arrow, centralized, NTA and
// Ivy all embed it in their LoopConfig, so the common knobs exist once
// and cannot drift between protocols.
type Spec struct {
	// PerNode is the number of requests each node issues.
	PerNode int
	// ThinkTime is the delay between learning completion and issuing the
	// next request; 0 defaults to 1 (one local processing step).
	ThinkTime sim.Time
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and hop count as it completes (fixed-memory streaming
	// observability at any request count). The completion hot path does
	// no recording work when nil.
	Recorder stats.Recorder
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
	// Faults, when non-nil, is the deterministic liveness schedule the
	// run executes under. A dropped find loses the request; the
	// simulator's drop notification marks it lost and the requester
	// re-issues once the blocking entity recovers (pointer-forwarding
	// protocols need no global repair: a split chain re-forms as finds
	// terminate at the requester, which the re-issue then queues
	// behind). A dropped completion notification is recovered the same
	// way. The plan must be Healing: a permanently dead entity leaves
	// requests unservable and the run errors at drain.
	Faults *sim.FaultPlan
	// Workers > 1 requests the simulator's lookahead-windowed parallel drain.
	// The driver normalizes it to serial whenever the run cannot be
	// reproduced bit-identically in parallel: a stepper that is not
	// ShardSafe, non-FIFO arbitration, the heap scheduler, or a fault
	// plan. Results are bit-identical to a serial run either way.
	Workers int
	// LinkTxTime, when positive, gives every link finite serialization
	// capacity (see sim.Config.LinkTxTime); 0 keeps the classic
	// infinite-capacity model.
	LinkTxTime sim.Time
	// DrainStats, when non-nil, receives the run's drain telemetry
	// (lookahead window width, barrier count, fused batch sizes). It is
	// an out-pointer rather than a Result field so Result stays exactly
	// the determinism tuple: telemetry may legitimately differ across
	// worker counts while Result stays bit-identical.
	DrainStats *sim.DrainStats
}

// Config is the pre-consolidation name of Spec.
//
// Deprecated: use Spec. The alias is kept for one release so existing
// callers migrate mechanically; it will be removed.
type Config = Spec

// Result aggregates a closed-loop run with the same counters as
// arrow.LoopResult, so the engine layer reports one Cost shape for every
// protocol. QueueHops and ReplyHops count logical messages (each is a
// direct metric send): the quantity the protocols' amortized analyses
// are about, and identical to physical link traversals on complete
// graphs (the paper's SP2 setting).
type Result struct {
	// N is the node count, Requests the total completed requests.
	N        int
	Requests int64
	// Makespan is the total simulated time to drain all requests.
	Makespan sim.Time
	// QueueHops counts request-forwarding messages.
	QueueHops int64
	// ReplyHops counts completion-notification messages (reported
	// separately; the paper does not charge these to the protocol).
	ReplyHops int64
	// LocalCompletions counts requests whose issuer already held the
	// object / tail (zero messages).
	LocalCompletions int64
	// TotalLatency sums per-request queuing latencies (issue to queued).
	TotalLatency int64
	// MaxQueueHops is the worst single-request forwarding count.
	MaxQueueHops int
	// Events is the number of simulator events the run consumed
	// (messages + timers) — the denominator of the engine's events/sec
	// throughput metric, deterministic for a fixed config.
	Events int64
	// Fault/recovery counters, all zero in fault-free runs; the field
	// set and order match arrow.LoopResult and centralized.LoopResult so
	// the engine adapter maps every protocol through one conversion.
	// The Repair* fields stay zero here: pointer-forwarding protocols
	// recover by re-issue alone.
	Dropped        int64
	Deferred       int64
	Reissued       int64
	RepliesLost    int64
	Affected       int64
	RepairEpisodes int64
	RepairMessages int64
	RepairTime     sim.Time
}

// AvgQueueHops returns forwarding messages per queuing operation.
func (r *Result) AvgQueueHops() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueueHops) / float64(r.Requests)
}

// AvgLatency returns mean per-request queuing latency.
func (r *Result) AvgLatency() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Requests)
}

// loopMsg is the driver's message family; the marker method lets
// arrowlint's msgswitch analyzer hold every type switch over these
// messages to exhaustiveness.
type loopMsg interface{ isLoopMsg() }

type find struct{ origin graph.NodeID }

type reply struct{}

func (*find) isLoopMsg()  {}
func (*reply) isLoopMsg() {}

// state is O(n), not O(PerNode·n): every node has at most one request in
// flight (the next one issues only after the completion notification),
// so per-request bookkeeping can be keyed by the issuing node and the
// pre-boxed message reused across a node's successive requests — at the
// paper's scale (100k requests per node) per-request arrays would cost
// hundreds of MB per sweep cell. The per-node arrays are flat
// struct-of-arrays slabs with narrow element types (hop and remaining
// counts fit int32 up to n = 2³¹ forwarding steps), so a million-node
// state costs ~24 MB and zero per-node boxing.
type state struct {
	cfg   Spec
	step  Stepper
	proto string

	issueTime []sim.Time
	hops      []int32

	// Pre-boxed messages, one per node: forwarding passes the same
	// pointer at every hop, avoiding per-send interface boxing.
	msgs []find
	rep  reply

	remaining []int32

	// resS has one accumulator slot per drain shard (one slot on serial
	// runs): completions land in resS[ctx.Shard()], so no two workers
	// share a counter; the slots merge into the returned Result after
	// the run. Every merged field is order-independent (integer sums and
	// a max), so the merge is bit-identical to serial accumulation.
	resS []Result

	// lost/affected are the fault-recovery state, nil in fault-free
	// runs: lost marks nodes whose current find was dropped (re-issued
	// at heal), affected marks requests a fault touched (counted at
	// completion).
	lost     []bool
	affected []bool
}

// Run executes the closed-loop experiment for the given pointer
// discipline over graph g's metric. proto prefixes error messages.
func Run(g *graph.Graph, step Stepper, proto string, cfg Spec) (*Result, error) {
	return RunTopo(sim.NewMetricTopology(g), step, proto, cfg)
}

// effectiveWorkers normalizes cfg.Workers against everything the
// parallel drain cannot reproduce bit-identically; the returned count is
// safe to hand to sim.New.
func effectiveWorkers(step Stepper, cfg Spec) int {
	if cfg.Workers <= 1 {
		return 1
	}
	if _, ok := step.(ShardSafe); !ok {
		return 1
	}
	if cfg.Arbitration != sim.ArbFIFO || cfg.Scheduler != sim.SchedLadder || cfg.Faults != nil {
		return 1
	}
	return cfg.Workers
}

// RunTopo is Run over an arbitrary metric topology — in particular the
// implicit sim.CompleteTopology, which is how million-node complete-
// graph runs avoid the O(n²) distance matrix Run's materialized metric
// would build.
func RunTopo(topo sim.Topology, step Stepper, proto string, cfg Spec) (*Result, error) {
	n := topo.NumNodes()
	if cfg.PerNode < 1 {
		return nil, fmt.Errorf("%s: PerNode must be >= 1", proto)
	}
	if err := cfg.Faults.Validate(topo); err != nil {
		return nil, fmt.Errorf("%s: %w", proto, err)
	}
	if cfg.Faults != nil && !cfg.Faults.Healing() {
		return nil, fmt.Errorf("%s: closed loop requires a healing fault plan (every down matched by an up)", proto)
	}
	workers := effectiveWorkers(step, cfg)
	total := int64(cfg.PerNode) * int64(n)
	st := &state{
		cfg:       cfg,
		step:      step,
		proto:     proto,
		issueTime: make([]sim.Time, n),
		hops:      make([]int32, n),
		msgs:      make([]find, n),
		remaining: make([]int32, n),
		resS:      make([]Result, workers),
	}
	for v := range st.remaining {
		st.remaining[v] = int32(cfg.PerNode)
		st.msgs[v].origin = graph.NodeID(v)
	}

	budget := eventBudget(total, n)
	if cfg.Faults != nil {
		budget = sim.SatMul(budget, 4)
	}
	scfg := sim.Config{
		Topology:    topo,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		MaxEvents:   budget,
		Scheduler:   cfg.Scheduler,
		Faults:      cfg.Faults,
		Workers:     workers,
		LinkTxTime:  cfg.LinkTxTime,
	}
	// Surface simulator-config violations (negative LinkTxTime, a
	// parallel drain the normalization above could not repair) as errors
	// rather than tripping sim.New's last-resort panic.
	if err := scfg.Validate(); err != nil {
		return nil, fmt.Errorf("%s closed loop: %w", proto, err)
	}
	s := sim.New(scfg)
	if cfg.Faults != nil {
		st.lost = make([]bool, n)
		st.affected = make([]bool, n)
		s.SetBlockedHandler(st.onBlocked)
	}
	s.SetAllHandlers(st.handle)
	// Issue timers dispatch by node through the TimerHandler: neither the
	// initial injection nor the per-request re-issue captures a closure.
	s.SetTimerHandler(st.issue)
	for v := 0; v < n; v++ {
		s.ScheduleNodeAt(0, graph.NodeID(v))
	}
	makespan := s.Run()
	if cfg.DrainStats != nil {
		*cfg.DrainStats = s.DrainStats()
	}
	res := st.merge()
	res.N = n
	res.Makespan = makespan
	res.Events = s.EventsProcessed()
	res.Dropped = s.MessagesDropped()
	res.Deferred = s.MessagesDeferred()
	if res.Requests != total {
		return nil, fmt.Errorf("%s: closed loop completed %d of %d requests", proto, res.Requests, total)
	}
	return res, nil
}

// merge folds the per-shard accumulator slots into one Result.
func (st *state) merge() *Result {
	res := &Result{}
	for i := range st.resS {
		r := &st.resS[i]
		res.Requests += r.Requests
		res.QueueHops += r.QueueHops
		res.ReplyHops += r.ReplyHops
		res.LocalCompletions += r.LocalCompletions
		res.TotalLatency += r.TotalLatency
		res.Reissued += r.Reissued
		res.RepliesLost += r.RepliesLost
		res.Affected += r.Affected
		if r.MaxQueueHops > res.MaxQueueHops {
			res.MaxQueueHops = r.MaxQueueHops
		}
	}
	return res
}

// onBlocked is told each message a fault dropped or stalled. A dropped
// find loses the requester's current attempt: it re-issues after the
// blocking entity recovers. A dropped reply means the request completed
// but its issuer never heard: a timer at the heal instant resumes its
// loop.
func (st *state) onBlocked(ctx *sim.Context, from, to graph.NodeID, msg sim.Message, upAt sim.Time, dropped bool) {
	switch m := msg.(type) {
	case *find:
		st.affected[m.origin] = true
		if dropped {
			st.lost[m.origin] = true
			st.retryAt(ctx, m.origin, upAt)
		}
	case *reply:
		// The shared reply value carries no origin; the requester is the
		// destination.
		st.affected[to] = true
		if dropped {
			st.resS[ctx.Shard()].RepliesLost++
			st.retryAt(ctx, to, upAt)
		}
	}
}

func (st *state) retryAt(ctx *sim.Context, v graph.NodeID, upAt sim.Time) {
	if upAt == sim.FaultNever {
		// Permanently unserviceable; the drain check reports the
		// shortfall (healing plans never get here).
		return
	}
	ctx.AfterNode(upAt-ctx.Now()+1, v)
}

// eventBudget is the divergence guard: each request costs at most n
// forwarding messages plus a reply and a timer. Saturating arithmetic
// keeps the guard meaningful at scales where the product overflows
// int64 (a wrapped value would either disable the guard or panic a
// healthy run).
func eventBudget(total int64, n int) int64 {
	return sim.SatAdd(sim.SatMul(total, int64(2*n+8)), 1024)
}

//arrow:hotpath one call per request issued (BenchmarkBaselinesClosedLoop)
func (st *state) issue(ctx *sim.Context, v graph.NodeID) {
	if st.lost != nil && st.lost[v] {
		// Re-issue a request whose find a fault destroyed. The original
		// issue time is kept, so the request's latency carries the
		// outage. StartFind runs against the current pointer state: the
		// partial path reversal of the lost attempt left every touched
		// pointer aimed at v, so chains still terminate.
		st.lost[v] = false
		st.resS[ctx.Shard()].Reissued++
		target, local := st.step.StartFind(v)
		if local {
			st.hops[v] = 0
			st.completeAt(ctx, v, v)
			return
		}
		st.hops[v] = 1
		ctx.Send(v, target, &st.msgs[v])
		return
	}
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	st.issueTime[v] = ctx.Now()

	target, local := st.step.StartFind(v)
	if local {
		st.hops[v] = 0
		st.completeAt(ctx, v, v)
		return
	}
	st.hops[v] = 1
	ctx.Send(v, target, &st.msgs[v])
}

//arrow:hotpath one call per delivered find/reply message
func (st *state) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *find:
		next, done := st.step.ForwardFind(at, m.origin, int(st.hops[m.origin]))
		if done {
			st.completeAt(ctx, m.origin, at)
			return
		}
		st.hops[m.origin]++
		ctx.Send(at, next, m)
	case *reply:
		st.scheduleNext(ctx, at)
	default:
		panic(fmt.Sprintf("%s: unexpected message %T", st.proto, msg))
	}
}

// completeAt records the queuing of origin's current request at sink and
// notifies the requester so it can issue its next request. Counters land
// in the context's shard slot and the recording routes through the
// context, which keeps the parallel drain race-free and its histogram
// accumulation order serial.
func (st *state) completeAt(ctx *sim.Context, origin, sink graph.NodeID) {
	res := &st.resS[ctx.Shard()]
	lat := int64(ctx.Now() - st.issueTime[origin])
	res.Requests++
	res.TotalLatency += lat
	res.QueueHops += int64(st.hops[origin])
	if int(st.hops[origin]) > res.MaxQueueHops {
		res.MaxQueueHops = int(st.hops[origin])
	}
	ctx.RecordRequest(st.cfg.Recorder, lat, int(st.hops[origin]))
	if st.affected != nil && st.affected[origin] {
		res.Affected++
		st.affected[origin] = false
	}
	if origin == sink {
		res.LocalCompletions++
		st.scheduleNext(ctx, origin)
		return
	}
	res.ReplyHops++
	ctx.Send(sink, origin, &st.rep)
}

func (st *state) scheduleNext(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	think := st.cfg.ThinkTime
	if think <= 0 {
		think = 1
	}
	ctx.AfterNode(think, v)
}
