package loop

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// TestEventBudgetSaturates is the regression test for the divergence
// guard's int64 overflow: total * (2n+8) wraps at large n × PerNode
// (e.g. 2^31 total requests over 2^31 nodes), which either disabled the
// guard (negative product) or panicked a healthy run (small positive
// wrap). The budget must saturate instead.
func TestEventBudgetSaturates(t *testing.T) {
	if got := eventBudget(100, 10); got != 100*28+1024 {
		t.Errorf("small budget = %d, want %d", got, 100*28+1024)
	}
	huge := []struct {
		total int64
		n     int
	}{
		{math.MaxInt64 / 2, 1 << 20},
		{int64(1) << 40, math.MaxInt32},
		{math.MaxInt64, math.MaxInt32},
	}
	for _, c := range huge {
		got := eventBudget(c.total, c.n)
		if got != math.MaxInt64 {
			t.Errorf("eventBudget(%d, %d) = %d, want saturation at MaxInt64", c.total, c.n, got)
		}
		if got <= 0 {
			t.Errorf("eventBudget(%d, %d) = %d: wrapped to non-positive, guard disabled", c.total, c.n, got)
		}
	}
}

// chainStepper is a minimal pointer discipline for driver-level tests:
// every request chases to node 0.
type chainStepper struct{}

func (s chainStepper) StartFind(v graph.NodeID) (graph.NodeID, bool) {
	if v == 0 {
		return v, true
	}
	return 0, false
}

func (s chainStepper) ForwardFind(at, origin graph.NodeID, hops int) (graph.NodeID, bool) {
	return origin, true
}

// TestRunCompletesWithNodeTimers smoke-tests the closure-free driver
// end to end: every request completes and the counters balance.
func TestRunCompletesWithNodeTimers(t *testing.T) {
	g := graph.Complete(7)
	res, err := Run(g, chainStepper{}, "test", Config{PerNode: 5, ThinkTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 35 {
		t.Errorf("completed %d requests, want 35", res.Requests)
	}
	if res.Events <= res.Requests {
		t.Errorf("events = %d, want > requests (each request costs several events)", res.Events)
	}
	if res.LocalCompletions != 5 {
		t.Errorf("local completions = %d, want 5 (node 0's own requests)", res.LocalCompletions)
	}
}
