package nta

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/sim"
)

// LoopConfig drives the closed-loop workload of the paper's experiments
// (Section 5) for NTA, mirroring arrow.LoopConfig: every node issues
// PerNode queuing requests, each issued ThinkTime units after learning the
// previous one completed. A request that queues remotely is acknowledged
// by a reply message from the predecessor's node back to the requester,
// sent directly over the metric. The shared run knobs live in the
// embedded loop.Spec.
type LoopConfig struct {
	loop.Spec
	// Root is the initial tail holder; all last pointers start there.
	Root graph.NodeID
}

// LoopResult aggregates a closed-loop NTA run — the shared closed-loop
// counter shape (see loop.Result).
type LoopResult = loop.Result

// reversalStepper is NTA's pointer discipline as a loop.Stepper: every
// visited node redirects its last pointer to the requester, and the
// chase ends at the node whose pointer is self (the tail holder) —
// exactly the pointer operations of the static Run.
//
// Note that these are step-for-step the same pointer updates as Ivy's
// probable-owner chase with forward path shortening (ivy.Directory):
// the two protocols differ in what the pointers mean (mutex queue tail
// vs object ownership) and in their surrounding machinery, not in the
// message traffic this cost model charges. Closed-loop NTA and Ivy rows
// in the baselines experiment are therefore identical by construction —
// TestClosedLoopMatchesIvy pins that identity so it reads as the
// theorem it is rather than an empirical coincidence.
type reversalStepper struct{ last []graph.NodeID }

func (s *reversalStepper) StartFind(v graph.NodeID) (graph.NodeID, bool) {
	if s.last[v] == v {
		return v, true
	}
	target := s.last[v]
	s.last[v] = v
	return target, false
}

func (s *reversalStepper) ForwardFind(at, origin graph.NodeID, hops int) (graph.NodeID, bool) {
	next := s.last[at]
	s.last[at] = origin
	if next == at {
		return origin, true
	}
	return next, false
}

// ShardSafeStepper marks the reversal discipline safe for the parallel
// drain: StartFind(v) touches only last[v] and ForwardFind(at, ...)
// only last[at] — state partitioned exactly by the drain's node shards.
func (s *reversalStepper) ShardSafeStepper() {}

// RunClosedLoop executes the closed-loop NTA experiment over graph g's
// metric: requests follow last pointers as real simulator messages, each
// visited node redirects its pointer to the requester, and the node
// holding the tail notifies the requester directly.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	return RunClosedLoopTopo(sim.NewMetricTopology(g), cfg)
}

// RunClosedLoopTopo is RunClosedLoop over an arbitrary metric topology;
// the implicit sim.CompleteTopology keeps million-node runs free of the
// O(n²) distance matrix.
func RunClosedLoopTopo(topo sim.Topology, cfg LoopConfig) (*LoopResult, error) {
	n := topo.NumNodes()
	if int(cfg.Root) < 0 || int(cfg.Root) >= n {
		return nil, fmt.Errorf("nta: root %d out of range", cfg.Root)
	}
	st := &reversalStepper{last: make([]graph.NodeID, n)}
	for v := range st.last {
		st.last[v] = cfg.Root
	}
	st.last[cfg.Root] = cfg.Root
	return loop.RunTopo(topo, st, "nta", cfg.Spec)
}
