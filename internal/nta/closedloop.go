package nta

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LoopConfig drives the closed-loop workload of the paper's experiments
// (Section 5) for NTA, mirroring arrow.LoopConfig: every node issues
// PerNode queuing requests, each issued ThinkTime units after learning the
// previous one completed. A request that queues remotely is acknowledged
// by a reply message from the predecessor's node back to the requester,
// sent directly over the metric.
type LoopConfig struct {
	// Root is the initial tail holder; all last pointers start there.
	Root graph.NodeID
	// PerNode is the number of requests each node issues.
	PerNode int
	// ThinkTime is the delay between learning completion and issuing the
	// next request; 0 defaults to 1 (one local processing step).
	ThinkTime sim.Time
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Recorder, when non-nil, receives every completed request's queuing
	// latency and hop count (see loop.Config.Recorder).
	Recorder stats.Recorder
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
	// Faults is the deterministic liveness schedule (see loop.Config).
	Faults *sim.FaultPlan
	// Workers requests the tick-windowed parallel drain (see
	// loop.Config.Workers); results are bit-identical at any count.
	Workers int
}

// LoopResult aggregates a closed-loop NTA run — the shared closed-loop
// counter shape (see loop.Result).
type LoopResult = loop.Result

// reversalStepper is NTA's pointer discipline as a loop.Stepper: every
// visited node redirects its last pointer to the requester, and the
// chase ends at the node whose pointer is self (the tail holder) —
// exactly the pointer operations of the static Run.
//
// Note that these are step-for-step the same pointer updates as Ivy's
// probable-owner chase with forward path shortening (ivy.Directory):
// the two protocols differ in what the pointers mean (mutex queue tail
// vs object ownership) and in their surrounding machinery, not in the
// message traffic this cost model charges. Closed-loop NTA and Ivy rows
// in the baselines experiment are therefore identical by construction —
// TestClosedLoopMatchesIvy pins that identity so it reads as the
// theorem it is rather than an empirical coincidence.
type reversalStepper struct{ last []graph.NodeID }

func (s *reversalStepper) StartFind(v graph.NodeID) (graph.NodeID, bool) {
	if s.last[v] == v {
		return v, true
	}
	target := s.last[v]
	s.last[v] = v
	return target, false
}

func (s *reversalStepper) ForwardFind(at, origin graph.NodeID, hops int) (graph.NodeID, bool) {
	next := s.last[at]
	s.last[at] = origin
	if next == at {
		return origin, true
	}
	return next, false
}

// ShardSafeStepper marks the reversal discipline safe for the parallel
// drain: StartFind(v) touches only last[v] and ForwardFind(at, ...)
// only last[at] — state partitioned exactly by the drain's node shards.
func (s *reversalStepper) ShardSafeStepper() {}

// RunClosedLoop executes the closed-loop NTA experiment over graph g's
// metric: requests follow last pointers as real simulator messages, each
// visited node redirects its pointer to the requester, and the node
// holding the tail notifies the requester directly.
func RunClosedLoop(g *graph.Graph, cfg LoopConfig) (*LoopResult, error) {
	return RunClosedLoopTopo(sim.NewMetricTopology(g), cfg)
}

// RunClosedLoopTopo is RunClosedLoop over an arbitrary metric topology;
// the implicit sim.CompleteTopology keeps million-node runs free of the
// O(n²) distance matrix.
func RunClosedLoopTopo(topo sim.Topology, cfg LoopConfig) (*LoopResult, error) {
	n := topo.NumNodes()
	if int(cfg.Root) < 0 || int(cfg.Root) >= n {
		return nil, fmt.Errorf("nta: root %d out of range", cfg.Root)
	}
	st := &reversalStepper{last: make([]graph.NodeID, n)}
	for v := range st.last {
		st.last[v] = cfg.Root
	}
	st.last[cfg.Root] = cfg.Root
	return loop.RunTopo(topo, st, "nta", loop.Config{
		PerNode:     cfg.PerNode,
		ThinkTime:   cfg.ThinkTime,
		Latency:     cfg.Latency,
		Arbitration: cfg.Arbitration,
		Seed:        cfg.Seed,
		Recorder:    cfg.Recorder,
		Scheduler:   cfg.Scheduler,
		Faults:      cfg.Faults,
		Workers:     cfg.Workers,
	})
}
