package nta

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/sim"
)

func TestClosedLoopCompletesAll(t *testing.T) {
	for _, n := range []int{1, 2, 7, 24} {
		g := graph.Complete(n)
		res, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 10}, Root: 0})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Requests != int64(10*n) {
			t.Errorf("n=%d: completed %d of %d", n, res.Requests, 10*n)
		}
		if res.N != n {
			t.Errorf("n=%d: N = %d", n, res.N)
		}
		if res.Makespan <= 0 {
			t.Errorf("n=%d: makespan = %d", n, res.Makespan)
		}
		if res.QueueHops+res.LocalCompletions == 0 {
			t.Errorf("n=%d: no queue traffic and no local completions", n)
		}
	}
}

func TestClosedLoopSingleNodeAllLocal(t *testing.T) {
	res, err := RunClosedLoop(graph.Complete(1), LoopConfig{Spec: loop.Spec{PerNode: 25}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalCompletions != 25 || res.QueueHops != 0 || res.ReplyHops != 0 {
		t.Errorf("single node run not all-local: %+v", res)
	}
}

func TestClosedLoopReplyAccounting(t *testing.T) {
	// Every remote completion triggers exactly one reply message;
	// local completions trigger none.
	res, err := RunClosedLoop(graph.Complete(8), LoopConfig{Spec: loop.Spec{PerNode: 12}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Requests - res.LocalCompletions; res.ReplyHops != want {
		t.Errorf("reply hops = %d, want remote completions %d", res.ReplyHops, want)
	}
	if res.MaxQueueHops < 1 || res.MaxQueueHops >= res.N {
		t.Errorf("max queue hops = %d out of expected range [1,%d)", res.MaxQueueHops, res.N)
	}
}

func TestClosedLoopDeterministic(t *testing.T) {
	cfg := LoopConfig{Spec: loop.Spec{PerNode: 15, ThinkTime: 3, Latency: sim.AsyncUniform(5), Arbitration: sim.ArbRandom, Seed: 99}, Root: 2}
	g := graph.Complete(16)
	a, err := RunClosedLoop(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClosedLoop(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("same config diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestClosedLoopMatchesIvy pins the implementation identity between
// NTA's path reversal and Ivy's forward-shortened probable-owner chase:
// both redirect every visited pointer at the requester and stop at a
// self-pointing node, so under this cost model they generate identical
// traffic. The baselines table shows equal nta/ivy rows by this
// construction, not by measurement noise.
func TestClosedLoopMatchesIvy(t *testing.T) {
	for _, seed := range []int64{1, 9} {
		cfg := LoopConfig{Spec: loop.Spec{PerNode: 25, ThinkTime: 2, Latency: sim.AsyncUniform(4), Arbitration: sim.ArbRandom, Seed: seed}, Root: 3}
		g := graph.Complete(20)
		a, err := RunClosedLoop(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ivy.RunClosedLoop(g, ivy.LoopConfig{Spec: loop.Spec{PerNode: cfg.PerNode, ThinkTime: cfg.ThinkTime, Latency: cfg.Latency, Arbitration: cfg.Arbitration, Seed: cfg.Seed}, Root: cfg.Root})
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Errorf("seed %d: nta and ivy closed loops diverged:\n nta: %+v\n ivy: %+v", seed, a, b)
		}
	}
}

func TestClosedLoopRejectsBadConfig(t *testing.T) {
	g := graph.Complete(4)
	if _, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 0}, Root: 0}); err == nil {
		t.Error("expected error for PerNode = 0")
	}
	if _, err := RunClosedLoop(g, LoopConfig{Spec: loop.Spec{PerNode: 1}, Root: 9}); err == nil {
		t.Error("expected error for out-of-range root")
	}
}

func TestClosedLoopPointerCollapseKeepsHopsLow(t *testing.T) {
	// Under uniform closed-loop demand pointer chains collapse toward
	// recent requesters: average hops stays far below the n worst case.
	res, err := RunClosedLoop(graph.Complete(32), LoopConfig{Spec: loop.Spec{PerNode: 50}, Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if avg := res.AvgQueueHops(); avg >= float64(res.N)/2 {
		t.Errorf("avg queue hops %.2f did not collapse (n=%d)", avg, res.N)
	}
}
