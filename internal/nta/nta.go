// Package nta implements the Naimi–Trehel–Arnold (NTA) path-reversal
// queuing protocol, the closest relative of arrow discussed in the
// paper's related work (Section 1.1). Unlike arrow, NTA assumes a
// completely connected network: a node's "last" pointer may name any node
// in the graph, and a request is forwarded directly to that node over the
// network metric. Every node a request visits redirects its pointer to
// the requester, so pointer chains collapse toward recent requesters —
// expected O(log n) messages per operation under uniform demand, but up
// to n in the worst case (vs. arrow's tree-diameter bound).
package nta

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// Options configures an NTA run.
type Options struct {
	// Root is the initial tail holder; all last pointers start there.
	Root graph.NodeID
	// Latency is the delay model (nil = synchronous).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Scheduler selects the simulator's event-queue implementation
	// (semantically inert; see sim.SchedulerKind).
	Scheduler sim.SchedulerKind
}

// Completion records the queuing of one request.
type Completion struct {
	Req    queuing.Request
	PredID int
	At     sim.Time
	// Hops is the number of logical forwarding messages (each may cross
	// several physical links on non-complete graphs; see PhysHops).
	Hops int
	// PhysHops counts physical link traversals.
	PhysHops int
}

// Latency returns At − issue time.
func (c Completion) Latency() int64 { return int64(c.At - c.Req.Time) }

// Result aggregates an NTA run.
type Result struct {
	Set          queuing.Set
	Completions  []Completion
	Order        queuing.Order
	TotalLatency int64
	TotalHops    int64
	MaxHops      int
	Makespan     sim.Time
}

type requestMsg struct {
	reqID  int
	origin graph.NodeID
	hops   int
	phys   int
}

// Run executes NTA for a static request set over graph g.
func Run(g *graph.Graph, set queuing.Set, opts Options) (*Result, error) {
	if err := set.Validate(g.NumNodes()); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if int(opts.Root) < 0 || int(opts.Root) >= n {
		return nil, fmt.Errorf("nta: root %d out of range", opts.Root)
	}
	topo := sim.NewMetricTopology(g)
	s := sim.New(sim.Config{
		Topology:    topo,
		Latency:     opts.Latency,
		Arbitration: opts.Arbitration,
		Seed:        opts.Seed,
		MaxEvents:   sim.SatAdd(sim.SatMul(int64(len(set)), sim.SatMul(int64(n+4), 4)), 1024),
		Scheduler:   opts.Scheduler,
	})
	last := make([]graph.NodeID, n)
	lastReq := make([]int, n)
	for v := range last {
		last[v] = opts.Root
		lastReq[v] = -1
	}
	last[opts.Root] = opts.Root

	res := &Result{Set: set, Completions: make([]Completion, len(set))}
	for i := range res.Completions {
		res.Completions[i].PredID = -2
	}
	completed := 0
	complete := func(ctx *sim.Context, m requestMsg, predID int) {
		c := &res.Completions[m.reqID]
		if c.PredID != -2 {
			panic("nta: request completed twice")
		}
		*c = Completion{
			Req:      set[m.reqID],
			PredID:   predID,
			At:       ctx.Now(),
			Hops:     m.hops,
			PhysHops: m.phys,
		}
		completed++
	}
	var receive func(ctx *sim.Context, at graph.NodeID, m requestMsg)
	receive = func(ctx *sim.Context, at graph.NodeID, m requestMsg) {
		target := last[at]
		last[at] = m.origin
		if target == at {
			// at holds the tail: m.origin's request queues behind at's
			// last issued request.
			complete(ctx, m, lastReq[at])
			return
		}
		m.hops++
		m.phys += topo.Hops(at, target)
		ctx.Send(at, target, m)
	}
	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		m, ok := msg.(requestMsg)
		if !ok {
			panic(fmt.Sprintf("nta: unexpected message %T", msg))
		}
		receive(ctx, at, m)
	})
	for _, r := range set {
		req := r
		s.ScheduleAt(req.Time, func(ctx *sim.Context) {
			v := req.Node
			m := requestMsg{reqID: req.ID, origin: v}
			if last[v] == v {
				// v already holds the tail: local completion.
				complete(ctx, m, lastReq[v])
				lastReq[v] = req.ID
				return
			}
			target := last[v]
			last[v] = v
			lastReq[v] = req.ID
			m.hops++
			m.phys += topo.Hops(v, target)
			ctx.Send(v, target, m)
		})
	}
	res.Makespan = s.Run()
	if completed != len(set) {
		return nil, fmt.Errorf("nta: completed %d of %d requests", completed, len(set))
	}
	succ := make(map[int]int, len(set))
	for i, c := range res.Completions {
		if _, dup := succ[c.PredID]; dup {
			return nil, fmt.Errorf("nta: duplicate successor for %d", c.PredID)
		}
		succ[c.PredID] = i
	}
	order := make(queuing.Order, 0, len(set))
	cur, ok := succ[-1]
	for ok {
		order = append(order, cur)
		cur, ok = succ[cur]
	}
	if len(order) != len(set) {
		return nil, fmt.Errorf("nta: broken predecessor chain")
	}
	res.Order = order
	for _, c := range res.Completions {
		res.TotalLatency += c.Latency()
		res.TotalHops += int64(c.Hops)
		if c.Hops > res.MaxHops {
			res.MaxHops = c.Hops
		}
	}
	return res, nil
}
