package nta

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/workload"
)

func TestSingleRequest(t *testing.T) {
	g := graph.Complete(5)
	set := queuing.NewSet([]queuing.Request{{Node: 3, Time: 0}})
	res, err := Run(g, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Completions[0]
	if c.PredID != -1 {
		t.Errorf("pred = %d, want -1", c.PredID)
	}
	if c.Hops != 1 {
		t.Errorf("hops = %d, want 1 (direct to root)", c.Hops)
	}
	if c.Latency() != 1 {
		t.Errorf("latency = %d, want 1", c.Latency())
	}
}

func TestPointerCollapse(t *testing.T) {
	// Sequential requests: after v requests, everyone's path to the tail
	// shortens toward v. A second requester reaches the tail in one hop
	// because the first requester updated the root's pointer.
	g := graph.Complete(6)
	set := queuing.NewSet([]queuing.Request{
		{Node: 3, Time: 0},
		{Node: 4, Time: 100},
		{Node: 5, Time: 200},
	})
	res, err := Run(g, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Request from 4 goes 4 -> 0 (old pointer) -> 3: 2 hops. Request from
	// 5 goes 5 -> 0 -> 4 (0's pointer was updated to 4): 2 hops.
	if res.Completions[1].Hops != 2 {
		t.Errorf("request 1 hops = %d, want 2", res.Completions[1].Hops)
	}
	if res.Completions[2].Hops != 2 {
		t.Errorf("request 2 hops = %d, want 2", res.Completions[2].Hops)
	}
	for i, id := range res.Order {
		if id != i {
			t.Errorf("sequential order broken: %v", res.Order)
			break
		}
	}
}

func TestLocalTailRequest(t *testing.T) {
	g := graph.Complete(4)
	set := queuing.NewSet([]queuing.Request{
		{Node: 2, Time: 0},
		{Node: 2, Time: 50}, // 2 holds the tail: local completion
	})
	res, err := Run(g, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[1].Hops != 0 {
		t.Errorf("tail holder's request hops = %d, want 0", res.Completions[1].Hops)
	}
	if res.Completions[1].PredID != 0 {
		t.Errorf("pred = %d, want 0", res.Completions[1].PredID)
	}
}

func TestConcurrentTotalOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 6 + int(seed)%20
		g := graph.Complete(n)
		set := workload.Poisson(n, 0.8, 80, seed)
		if len(set) == 0 {
			continue
		}
		res, err := Run(g, set, Options{Root: 0, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !queuing.ValidOrder(res.Order, len(set)) {
			t.Fatalf("seed %d: invalid order", seed)
		}
		// Every request visits at most n nodes.
		for _, c := range res.Completions {
			if c.Hops > n {
				t.Errorf("seed %d: request %d used %d hops > n", seed, c.Req.ID, c.Hops)
			}
		}
	}
}

func TestAmortizedHopsModestUnderUniformLoad(t *testing.T) {
	// The NTA analysis gives expected O(log n) messages per operation
	// under uniform random requests; verify the average stays well below
	// the trivial n bound.
	n := 64
	g := graph.Complete(n)
	set := workload.Sequential(n, 300, 3, 7)
	res, err := Run(g, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(res.TotalHops) / float64(len(set))
	if avg > 12 { // 2*log2(64) = 12: generous bound for the expectation
		t.Errorf("avg hops %f exceeds ~2 log n", avg)
	}
}

func TestRejectsBadRoot(t *testing.T) {
	g := graph.Complete(3)
	if _, err := Run(g, queuing.Set{}, Options{Root: 7}); err == nil {
		t.Error("expected root range error")
	}
}

func TestWorksOnNonCompleteGraphViaMetric(t *testing.T) {
	// NTA assumes full connectivity; over a sparse graph the simulator
	// routes logically with metric latency. Physical hops then exceed
	// logical hops.
	g := graph.Cycle(8)
	set := queuing.NewSet([]queuing.Request{
		{Node: 4, Time: 0},
		{Node: 6, Time: 20},
	})
	res, err := Run(g, set, Options{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions[0].PhysHops != 4 {
		t.Errorf("phys hops = %d, want 4 (cycle distance 4)", res.Completions[0].PhysHops)
	}
	if res.Completions[0].Hops != 1 {
		t.Errorf("logical hops = %d, want 1", res.Completions[0].Hops)
	}
}
