package nta

import (
	"fmt"

	"repro/internal/graph"
)

// ShardReversal is NTA's multi-object pointer state: k independent last
// pointer sets over the same n nodes, object o's pointers initially
// converging on root_o = o mod n. The reversal discipline is exactly
// the single-object reversalStepper's, applied to the slice of the flat
// array owned by the request's object: every visited node redirects its
// last pointer for that object to the requester, and the chase ends at
// the node whose pointer is self.
type ShardReversal struct {
	n    int
	last []graph.NodeID
}

// NewShardReversal builds the k pointer sets; O(k·n) space.
func NewShardReversal(n, k int) (*ShardReversal, error) {
	if n < 1 {
		return nil, fmt.Errorf("nta: shard reversal needs n >= 1, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("nta: shard reversal needs k >= 1 objects, got %d", k)
	}
	r := &ShardReversal{n: n, last: make([]graph.NodeID, k*n)}
	for o := 0; o < k; o++ {
		root := graph.NodeID(o % n)
		base := o * n
		for v := 0; v < n; v++ {
			r.last[base+v] = root
		}
	}
	return r, nil
}

// StartFind begins a request for obj at v: a self pointer means v holds
// the object's tail; otherwise the request chases the pointer and v's
// pointer flips to self.
func (r *ShardReversal) StartFind(obj int32, v graph.NodeID) (graph.NodeID, bool) {
	i := int(obj)*r.n + int(v)
	if r.last[i] == v {
		return v, true
	}
	target := r.last[i]
	r.last[i] = v
	return target, false
}

// ForwardFind redirects at's last pointer for obj to the requester and
// continues the chase; a self pointer means the tail was here.
func (r *ShardReversal) ForwardFind(obj int32, at, from, origin graph.NodeID) (graph.NodeID, bool) {
	i := int(obj)*r.n + int(at)
	next := r.last[i]
	r.last[i] = origin
	if next == at {
		return origin, true
	}
	return next, false
}

// ShardSafeStepper marks the discipline safe for the parallel drain:
// every last entry is keyed by the node whose events touch it.
func (r *ShardReversal) ShardSafeStepper() {}
