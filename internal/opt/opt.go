// Package opt bounds the cost of the optimal offline queuing algorithm
// Opt of Section 3.3 — the denominator of the competitive ratio. Opt
// knows all requests, orders them to minimize total latency, and
// communicates over the graph G (not just the tree T).
//
// Exact computation is a minimum-cost Hamiltonian path under the
// asymmetric cost cOpt (eq. (4)), solved with Held–Karp for small request
// sets. For larger sets the package computes the Manhattan-MST lower
// bound from Lemmas 3.15–3.17 (any order's Manhattan cost is at least the
// MST weight under cM, and CM <= 12·CO), plus achievable upper bounds via
// nearest-neighbour and 2-opt orders over cOpt.
package opt

import (
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/tree"
	"repro/internal/tsp"
)

// Bounds summarizes what we can say about costOpt for a request set.
type Bounds struct {
	// Lower is the best lower bound available on costOpt: the exact value
	// when Exact, otherwise the Manhattan-MST bound.
	Lower int64
	// Upper is an achievable ordering's cost under cOpt: the minimum of
	// the NN and 2-opt improved orders (an upper bound on min_π Σ cOpt,
	// which itself lower-bounds nothing — it is reported to show the gap).
	Upper int64
	// Exact reports whether Lower is the true min_π Σ cOpt.
	Exact bool
	// ExactOrder is the optimal order when Exact.
	ExactOrder queuing.Order
	// ManhattanMST is the MST weight over requests ∪ {root} under
	// cM(dG); Lower >= ManhattanMST/12 by the Lemma 3.17 chain.
	ManhattanMST int64
}

// MaxExactRequests is the largest request count solved exactly.
const MaxExactRequests = tsp.MaxExactN - 1

// CostAdapter exposes a queuing cost over {root} ∪ R as a tsp.Cost with
// point 0 = the virtual root request and point i = request i−1. It is the
// bridge between the queuing cost model and the TSP machinery.
func CostAdapter(s queuing.Set, root graph.NodeID, c queuing.CostFunc) tsp.Cost {
	r0 := queuing.RootRequest(root)
	get := func(i int) queuing.Request {
		if i == 0 {
			return r0
		}
		return s[i-1]
	}
	return func(i, j int) int64 { return c(get(i), get(j)) }
}

// orderFromPath converts a tsp path (starting at point 0 = root) to a
// queuing.Order over request IDs.
func orderFromPath(path []int) queuing.Order {
	o := make(queuing.Order, 0, len(path)-1)
	for _, p := range path[1:] {
		o = append(o, p-1)
	}
	return o
}

// Compute bounds costOpt for request set s over graph g with initial
// root (queue tail) at root. dist must be the graph metric dG; pass
// tree.Dist to bound the tree-restricted optimum instead.
func Compute(g *graph.Graph, root graph.NodeID, s queuing.Set, dist queuing.DistFunc) Bounds {
	var b Bounds
	n := len(s) + 1
	cOpt := CostAdapter(s, root, queuing.CO(dist))
	cM := CostAdapter(s, root, queuing.CM(dist))

	b.ManhattanMST = tsp.MSTWeight(n, cM)

	if len(s) <= MaxExactRequests {
		path, cost, err := tsp.OptimalPath(n, cOpt)
		if err == nil {
			b.Exact = true
			b.Lower = cost
			b.ExactOrder = orderFromPath(path)
		}
	}
	if !b.Exact {
		lb := b.ManhattanMST / 12
		if lb < 1 && len(s) > 0 {
			lb = 1
		}
		b.Lower = lb
	}

	_, nnCost := tsp.NearestNeighborPath(n, cOpt)
	_, optCost := tsp.GreedyEdgePath(n, cOpt)
	b.Upper = min(nnCost, optCost)
	return b
}

// DistOfGraph returns a DistFunc backed by g's all-pairs matrix.
func DistOfGraph(g *graph.Graph) queuing.DistFunc {
	d := g.AllPairs()
	return func(u, v graph.NodeID) graph.Weight { return d[u][v] }
}

// DistOfTree returns a DistFunc for dT.
func DistOfTree(t *tree.Tree) queuing.DistFunc {
	return func(u, v graph.NodeID) graph.Weight { return t.Dist(u, v) }
}

// Ratio returns numerator/denominator as float64, or 0 when the
// denominator is 0 (degenerate empty workloads).
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
