package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/tree"
	"repro/internal/workload"
)

func TestComputeExactSmallInstance(t *testing.T) {
	g := graph.Path(5)
	// Two simultaneous requests at the two ends; root in the middle.
	set := queuing.NewSet([]queuing.Request{
		{Node: 0, Time: 0},
		{Node: 4, Time: 0},
	})
	b := Compute(g, 2, set, DistOfGraph(g))
	if !b.Exact {
		t.Fatal("tiny instance should be exact")
	}
	// Optimal: root(2) -> 0 (cost 2) -> 4 (cost 4) or symmetric = 6.
	if b.Lower != 6 {
		t.Errorf("exact optimal = %d, want 6", b.Lower)
	}
	if !queuing.ValidOrder(b.ExactOrder, 2) {
		t.Errorf("exact order invalid: %v", b.ExactOrder)
	}
	if b.Upper < b.Lower {
		t.Errorf("upper %d below lower %d", b.Upper, b.Lower)
	}
}

func TestComputeTimeDominatedCost(t *testing.T) {
	g := graph.Path(3)
	// Request at t=10 ordered after one at t=0: ordering backwards in
	// time is expensive (cO = ti - tj), forcing time order.
	set := queuing.NewSet([]queuing.Request{
		{Node: 1, Time: 0},
		{Node: 2, Time: 50},
	})
	b := Compute(g, 0, set, DistOfGraph(g))
	if !b.Exact {
		t.Fatal("should be exact")
	}
	// Time order: root->1 (d=1), 1->2 (d=1) = 2. Reverse would cost
	// max(2, 0) + max(1, 50-0)=50+... so optimal is 2.
	if b.Lower != 2 {
		t.Errorf("optimal = %d, want 2", b.Lower)
	}
	if got := b.ExactOrder[0]; got != 0 {
		t.Errorf("optimal order starts with request %d, want 0", got)
	}
}

func TestComputeLargeUsesMSTBound(t *testing.T) {
	g := graph.Complete(30)
	set := workload.OneShot(30, 25, 3) // too many requests for exact
	b := Compute(g, 0, set, DistOfGraph(g))
	if b.Exact {
		t.Fatal("25 requests should not be exact")
	}
	if b.Lower < 1 {
		t.Errorf("lower bound %d, want >= 1", b.Lower)
	}
	if b.ManhattanMST <= 0 {
		t.Errorf("Manhattan MST = %d, want > 0", b.ManhattanMST)
	}
	if b.Lower > b.Upper {
		t.Errorf("lower %d exceeds upper %d", b.Lower, b.Upper)
	}
}

func TestLowerBoundNeverExceedsExact(t *testing.T) {
	// The Manhattan-MST/12 bound must hold whenever we can compute the
	// exact optimum.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		g := graph.GNP(n, 0.4, seed)
		k := 2 + rng.Intn(8)
		set := workload.OneShot(n, min(k, n), seed)
		dg := DistOfGraph(g)
		b := Compute(g, 0, set, dg)
		if !b.Exact {
			return true
		}
		mstBound := b.ManhattanMST / 12
		return mstBound <= b.Lower
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCostAdapterMapsRootAndRequests(t *testing.T) {
	tr := tree.PathTree(6)
	set := queuing.NewSet([]queuing.Request{
		{Node: 3, Time: 2},
		{Node: 5, Time: 4},
	})
	c := CostAdapter(set, 0, queuing.CA(DistOfTree(tr)))
	if got := c(0, 1); got != 3 {
		t.Errorf("root->req0 = %d, want dT(0,3)=3", got)
	}
	if got := c(1, 2); got != 2 {
		t.Errorf("req0->req1 = %d, want dT(3,5)=2", got)
	}
}

func TestDistFuncsAgreeOnTreeGraphs(t *testing.T) {
	tr := tree.BalancedBinary(15)
	g := tr.ToGraph()
	dg := DistOfGraph(g)
	dt := DistOfTree(tr)
	for u := 0; u < 15; u++ {
		for v := 0; v < 15; v++ {
			if dg(graph.NodeID(u), graph.NodeID(v)) != dt(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("dG != dT at (%d,%d) on a tree graph", u, v)
			}
		}
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(10, 5); r != 2 {
		t.Errorf("Ratio(10,5) = %f", r)
	}
	if r := Ratio(10, 0); r != 0 {
		t.Errorf("Ratio by zero = %f, want 0", r)
	}
}

func TestEmptySet(t *testing.T) {
	g := graph.Path(4)
	b := Compute(g, 0, queuing.Set{}, DistOfGraph(g))
	if !b.Exact || b.Lower != 0 || b.Upper != 0 {
		t.Errorf("empty set bounds = %+v", b)
	}
}
