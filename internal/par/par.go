// Package par holds the dependency-free parallel fan-out primitives
// shared by the engine's cell sweeps and the simulator's lookahead-windowed
// parallel drain. It sits below every other internal package (the
// simulator cannot import engine), so both layers share one
// implementation of dynamic work claiming.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelMap invokes fn(i) for every i in [0, n) across a pool of
// workers (0 or negative = GOMAXPROCS) and returns once all calls
// finished. Calls are claimed dynamically, so uneven costs balance
// across workers; fn must write its result into its own index of a
// pre-sized slice (no two calls share an index, so no locking is needed).
func ParallelMap(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelMapErr is ParallelMap for fallible work: it collects every
// call's error and returns the first one in index order (nil when all
// succeeded).
func ParallelMapErr(n, workers int, fn func(i int) error) error {
	errs := make([]error, n)
	ParallelMap(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
