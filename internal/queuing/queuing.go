// Package queuing defines the distributed-queuing problem objects of the
// paper: requests r = (v, t), request sets R, queuing orders π, and the
// four cost functions the analysis builds on —
//
//	cA(ri, rj) = dT(vi, vj)                      (arrow latency, eq. (1))
//	cT(ri, rj) = per Definition 3.5              (arrow's NN-TSP cost)
//	cM(ri, rj) = dT(vi, vj) + |ti − tj|          (Manhattan metric, Def 3.14)
//	cO(ri, rj) = max{dT(vi, vj), ti − tj}        (optimal bound on T, eq. (3))
//	cOpt(ri, rj) = max{dG(vi, vj), ti − tj}      (optimal bound on G)
//
// Orders always start with the virtual root request r0 = (root, 0).
package queuing

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Request is a queuing request (v, t): node v asks to join the total
// order at time t. ID is the request's index in its Set and doubles as
// the protocol-level unique identifier.
type Request struct {
	ID   int
	Node graph.NodeID
	Time sim.Time
}

func (r Request) String() string {
	return fmt.Sprintf("r%d=(v%d,t%d)", r.ID, r.Node, r.Time)
}

// Set is a finite request set R, indexed by non-decreasing time as in the
// paper (ties broken arbitrarily but deterministically). Use NewSet to
// normalize.
type Set []Request

// NewSet sorts requests by (time, node) and assigns IDs 0..len-1. The
// input slice is not modified.
func NewSet(reqs []Request) Set {
	s := append(Set(nil), reqs...)
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Time != s[j].Time {
			return s[i].Time < s[j].Time
		}
		return s[i].Node < s[j].Node
	})
	for i := range s {
		s[i].ID = i
	}
	return s
}

// Validate checks that the set is normalized (sorted, IDs dense, times
// non-negative, nodes within range).
func (s Set) Validate(numNodes int) error {
	for i, r := range s {
		if r.ID != i {
			return fmt.Errorf("queuing: request %d has ID %d", i, r.ID)
		}
		if r.Time < 0 {
			return fmt.Errorf("queuing: request %d has negative time %d", i, r.Time)
		}
		if int(r.Node) < 0 || int(r.Node) >= numNodes {
			return fmt.Errorf("queuing: request %d at out-of-range node %d", i, r.Node)
		}
		if i > 0 && s[i-1].Time > r.Time {
			return fmt.Errorf("queuing: set not sorted at index %d", i)
		}
	}
	return nil
}

// MaxTime returns the largest request time (0 for an empty set).
func (s Set) MaxTime() sim.Time {
	var m sim.Time
	for _, r := range s {
		if r.Time > m {
			m = r.Time
		}
	}
	return m
}

// Nodes returns the distinct nodes issuing requests.
func (s Set) Nodes() []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, r := range s {
		if !seen[r.Node] {
			seen[r.Node] = true
			out = append(out, r.Node)
		}
	}
	return out
}

// DistFunc returns the tree or graph distance between two nodes.
type DistFunc func(u, v graph.NodeID) graph.Weight

// CostFunc is a pairwise ordering cost c(ri, rj): the cost contribution
// of queuing rj immediately after ri. Root is the virtual request
// r0 = (root, 0); implementations must handle it like any request.
type CostFunc func(ri, rj Request) int64

// CT returns Definition 3.5's cost under tree distance d:
//
//	d' := tj − ti + dT(vi, vj); cT = d' if d' >= 0, else ti − tj + dT(vi, vj).
//
// Both branches are non-negative (Fact 3.6). cT is asymmetric.
func CT(d DistFunc) CostFunc {
	return func(ri, rj Request) int64 {
		dt := d(ri.Node, rj.Node)
		v := rj.Time - ri.Time + dt
		if v >= 0 {
			return v
		}
		return ri.Time - rj.Time + dt
	}
}

// CM returns the Manhattan metric of Definition 3.14 under distance d:
// cM = d(vi, vj) + |ti − tj|. It is symmetric and satisfies the triangle
// inequality whenever d does.
func CM(d DistFunc) CostFunc {
	return func(ri, rj Request) int64 {
		dt := rj.Time - ri.Time
		if dt < 0 {
			dt = -dt
		}
		return d(ri.Node, rj.Node) + dt
	}
}

// CO returns eq. (3)'s lower-bound cost under distance d:
// cO(ri, rj) = max{d(vi, vj), ti − tj} — the minimum latency any queuing
// algorithm can achieve when ordering rj immediately after ri.
func CO(d DistFunc) CostFunc {
	return func(ri, rj Request) int64 {
		dt := d(ri.Node, rj.Node)
		if lag := ri.Time - rj.Time; lag > dt {
			return lag
		}
		return dt
	}
}

// CA returns eq. (1)'s arrow latency cost: cA(ri, rj) = dT(vi, vj).
func CA(d DistFunc) CostFunc {
	return func(ri, rj Request) int64 { return d(ri.Node, rj.Node) }
}

// Order is a queuing order π over a Set: a permutation of request IDs.
// Entry 0 names the request queued first (directly behind the virtual
// root request r0); the root itself is implicit.
type Order []int

// ValidOrder reports whether o is a permutation of 0..n-1.
func ValidOrder(o Order, n int) bool {
	if len(o) != n {
		return false
	}
	seen := make([]bool, n)
	for _, id := range o {
		if id < 0 || id >= n || seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// RootRequest returns the virtual request r0 = (root, 0) with ID −1.
func RootRequest(root graph.NodeID) Request {
	return Request{ID: -1, Node: root, Time: 0}
}

// OrderCost sums c over consecutive pairs of the order, starting from the
// virtual root request: Σ c(r_{π(i−1)}, r_{π(i)}) with r_{π(0)} := r0.
func OrderCost(s Set, root graph.NodeID, o Order, c CostFunc) int64 {
	prev := RootRequest(root)
	var total int64
	for _, id := range o {
		total += c(prev, s[id])
		prev = s[id]
	}
	return total
}

// EdgeCosts returns the |R| consecutive-pair costs of the order under c,
// starting from the root request. Useful for inspecting the longest edge
// (Lemma 3.13 checks cT edges <= 3D).
func EdgeCosts(s Set, root graph.NodeID, o Order, c CostFunc) []int64 {
	prev := RootRequest(root)
	out := make([]int64, len(o))
	for i, id := range o {
		out[i] = c(prev, s[id])
		prev = s[id]
	}
	return out
}
