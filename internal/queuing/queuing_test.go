package queuing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

func lineDist(u, v graph.NodeID) graph.Weight {
	d := int64(u) - int64(v)
	if d < 0 {
		d = -d
	}
	return d
}

func TestNewSetSortsAndIndexes(t *testing.T) {
	set := NewSet([]Request{
		{Node: 3, Time: 10},
		{Node: 1, Time: 0},
		{Node: 2, Time: 10},
		{Node: 0, Time: 5},
	})
	wantNodes := []graph.NodeID{1, 0, 2, 3}
	for i, r := range set {
		if r.ID != i {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
		if r.Node != wantNodes[i] {
			t.Errorf("position %d: node %d, want %d", i, r.Node, wantNodes[i])
		}
	}
	if err := set.Validate(4); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := NewSet([]Request{{Node: 0, Time: 0}, {Node: 1, Time: 2}})
	cases := []struct {
		name string
		set  Set
		n    int
	}{
		{"bad-id", Set{{ID: 5, Node: 0, Time: 0}}, 3},
		{"negative-time", Set{{ID: 0, Node: 0, Time: -1}}, 3},
		{"node-range", Set{{ID: 0, Node: 9, Time: 0}}, 3},
		{"unsorted", Set{{ID: 0, Node: 0, Time: 5}, {ID: 1, Node: 0, Time: 1}}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.set.Validate(tc.n) == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := good.Validate(2); err != nil {
		t.Errorf("good set rejected: %v", err)
	}
}

func TestMaxTimeAndNodes(t *testing.T) {
	set := NewSet([]Request{{Node: 2, Time: 3}, {Node: 2, Time: 9}, {Node: 0, Time: 1}})
	if set.MaxTime() != 9 {
		t.Errorf("MaxTime = %d, want 9", set.MaxTime())
	}
	if nodes := set.Nodes(); len(nodes) != 2 {
		t.Errorf("Nodes = %v, want 2 distinct", nodes)
	}
	if (Set{}).MaxTime() != 0 {
		t.Error("empty MaxTime should be 0")
	}
}

func TestCTDefinition(t *testing.T) {
	ct := CT(lineDist)
	ri := Request{Node: 2, Time: 5}
	rj := Request{Node: 6, Time: 7}
	// d' = (7-5) + 4 = 6 >= 0.
	if c := ct(ri, rj); c != 6 {
		t.Errorf("cT = %d, want 6", c)
	}
	// Reverse: d' = (5-7) + 4 = 2 >= 0.
	if c := ct(rj, ri); c != 2 {
		t.Errorf("cT reversed = %d, want 2", c)
	}
	// d' < 0 branch: ti - tj + dT.
	early := Request{Node: 0, Time: 0}
	late := Request{Node: 1, Time: 10}
	// d' = (0-10)+1 = -9 < 0 => cT = 10-0+1 = 11.
	if c := ct(late, early); c != 11 {
		t.Errorf("cT negative branch = %d, want 11", c)
	}
}

func TestCMCOCA(t *testing.T) {
	cm := CM(lineDist)
	co := CO(lineDist)
	ca := CA(lineDist)
	a := Request{Node: 1, Time: 4}
	b := Request{Node: 5, Time: 2}
	if c := cm(a, b); c != 6 {
		t.Errorf("cM = %d, want 4+2=6", c)
	}
	if c := co(a, b); c != 4 {
		t.Errorf("cO = %d, want max(4, 4-2)=4", c)
	}
	if c := co(Request{Node: 1, Time: 9}, Request{Node: 2, Time: 1}); c != 8 {
		t.Errorf("cO time-dominated = %d, want 8", c)
	}
	if c := ca(a, b); c != 4 {
		t.Errorf("cA = %d, want 4", c)
	}
}

func TestOrderCostAndEdgeCosts(t *testing.T) {
	set := NewSet([]Request{
		{Node: 2, Time: 0},
		{Node: 5, Time: 0},
	})
	order := Order{0, 1}
	cost := OrderCost(set, 0, order, CA(lineDist))
	if cost != 2+3 {
		t.Errorf("order cost = %d, want 5", cost)
	}
	edges := EdgeCosts(set, 0, order, CA(lineDist))
	if len(edges) != 2 || edges[0] != 2 || edges[1] != 3 {
		t.Errorf("edge costs = %v, want [2 3]", edges)
	}
}

func TestValidOrder(t *testing.T) {
	if !ValidOrder(Order{2, 0, 1}, 3) {
		t.Error("valid permutation rejected")
	}
	for _, bad := range []Order{{0, 0, 1}, {0, 1}, {0, 1, 5}, {-1, 0, 1}} {
		if ValidOrder(bad, 3) {
			t.Errorf("invalid order %v accepted", bad)
		}
	}
}

func TestRootRequest(t *testing.T) {
	r := RootRequest(7)
	if r.ID != -1 || r.Node != 7 || r.Time != 0 {
		t.Errorf("root request = %+v", r)
	}
}

// Property: Fact 3.6 — cT is non-negative for all request pairs.
func TestCTNonNegative(t *testing.T) {
	prop := func(n1, n2 uint8, t1, t2 uint16) bool {
		ct := CT(lineDist)
		a := Request{Node: graph.NodeID(n1), Time: int64(t1)}
		b := Request{Node: graph.NodeID(n2), Time: int64(t2)}
		return ct(a, b) >= 0 && ct(b, a) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: cT <= cM (used in the proof of Theorem 3.19).
func TestCTBelowManhattan(t *testing.T) {
	prop := func(n1, n2 uint8, t1, t2 uint16) bool {
		ct := CT(lineDist)
		cm := CM(lineDist)
		a := Request{Node: graph.NodeID(n1), Time: int64(t1)}
		b := Request{Node: graph.NodeID(n2), Time: int64(t2)}
		return ct(a, b) <= cm(a, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: cO <= cM <= 2·cO pointwise (eq. (8) gives cM <= 2·cO via
// max(a,b) >= (a+b)/2).
func TestCOManhattanSandwich(t *testing.T) {
	prop := func(n1, n2 uint8, t1, t2 uint16) bool {
		co := CO(lineDist)
		cm := CM(lineDist)
		a := Request{Node: graph.NodeID(n1), Time: int64(t1)}
		b := Request{Node: graph.NodeID(n2), Time: int64(t2)}
		x, y := co(a, b), cm(a, b)
		// cO uses ti - tj (not absolute), so only the forward direction
		// is sandwiched when tj >= ti; check the max-form inequality:
		// cM(a,b) <= cO(a,b) + cO(b,a) always, and cO <= cM.
		return x <= y && y <= co(a, b)+co(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: cM is a metric over requests (symmetry + triangle) when the
// node distance is a metric.
func TestManhattanIsMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := tree.BalancedBinary(31)
	cm := CM(func(u, v graph.NodeID) graph.Weight { return tr.Dist(u, v) })
	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{Node: graph.NodeID(rng.Intn(31)), Time: int64(rng.Intn(100))}
	}
	for _, a := range reqs {
		for _, b := range reqs {
			if cm(a, b) != cm(b, a) {
				t.Fatalf("cM asymmetric for %v,%v", a, b)
			}
			for _, c := range reqs {
				if cm(a, b) > cm(a, c)+cm(c, b) {
					t.Fatalf("cM triangle violated for %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

// Property: NewSet output always validates.
func TestNewSetAlwaysValid(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(30)
		reqs := make([]Request, k)
		for i := range reqs {
			reqs[i] = Request{
				ID:   rng.Intn(100), // garbage IDs must be overwritten
				Node: graph.NodeID(rng.Intn(16)),
				Time: int64(rng.Intn(50)),
			}
		}
		return NewSet(reqs).Validate(16) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
