// Package runtime is a live, goroutine-based implementation of the arrow
// protocol: every tree node is a goroutine owning its link pointer, and
// tree edges are channel-backed FIFO mailboxes — the natural Go embedding
// of the paper's asynchronous message-passing model. It complements the
// deterministic simulator (package arrow): the simulator measures the
// paper's cost model exactly, while this runtime demonstrates the protocol
// under real, racy concurrency (run the tests with -race).
//
// State is never shared: each node's link and id fields are touched only
// by its own goroutine, and all coordination flows through channels.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/tree"
)

// Completion reports one queued request, delivered on the network's
// completions channel. PredID is -1 when the request was queued behind
// the virtual root request.
type Completion struct {
	ReqID  int64
	PredID int64
	Origin graph.NodeID
	Sink   graph.NodeID
	Hops   int
	At     time.Time
}

// Options tunes a Network.
type Options struct {
	// HopDelay, if positive, delays each message hop to emulate network
	// latency in demonstrations.
	HopDelay time.Duration
	// Clock supplies Completion.At timestamps; nil defaults to time.Now.
	// Tests inject a fixed clock here so completion records compare
	// deterministically; the live network is wall-clock by design
	// everywhere else (see the runtime-vs-sim agreement check).
	Clock func() time.Time
}

// Network runs the arrow protocol over a spanning tree with one goroutine
// per node.
type Network struct {
	t    *tree.Tree
	root graph.NodeID
	opts Options

	nodes       []*node
	compIn      chan Completion
	completions chan Completion
	collectorWg sync.WaitGroup
	nextReq     atomic.Int64
	inflight    sync.WaitGroup
	// mu orders request admission against shutdown: Request holds the
	// read side while it checks running and enqueues, Stop holds the
	// write side while it flips running. Without it a Request racing
	// Stop could pass the running check, then enqueue into a node whose
	// loop already exited — the mailbox would never drain and Stop would
	// deadlock in wg.Wait().
	mu      sync.RWMutex
	started atomic.Bool
	running atomic.Bool
	stopped chan struct{}
	wg      sync.WaitGroup
}

// message is the node-loop message family. The marker method makes the
// family checkable: arrowlint's msgswitch analyzer requires every type
// switch over it to list all three members.
type message interface{ isRuntimeMsg() }

type queueMsg struct {
	reqID  int64
	origin graph.NodeID
	from   graph.NodeID
	hops   int
}

type issueMsg struct {
	reqID int64
	done  chan<- struct{} // optional: closed once initiation is processed
}

type stopMsg struct{}

func (queueMsg) isRuntimeMsg() {}
func (issueMsg) isRuntimeMsg() {}
func (stopMsg) isRuntimeMsg()  {}

type node struct {
	id      graph.NodeID
	link    graph.NodeID
	lastReq int64
	in      chan message // unbounded mailbox input
	out     chan message // node loop reads here
	net     *Network
}

// New builds a network over tree t with the initial sink at root.
func New(t *tree.Tree, root graph.NodeID, opts Options) *Network {
	n := t.NumNodes()
	if int(root) < 0 || int(root) >= n {
		panic(fmt.Sprintf("runtime: root %d out of range", root))
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	net := &Network{
		t:           t,
		root:        root,
		opts:        opts,
		nodes:       make([]*node, n),
		compIn:      make(chan Completion, 16),
		completions: make(chan Completion),
		stopped:     make(chan struct{}),
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		link := id
		if id != root {
			link = t.NextHop(id, root)
		}
		net.nodes[v] = &node{
			id:      id,
			link:    link,
			lastReq: -1,
			in:      make(chan message, 16),
			out:     make(chan message),
			net:     net,
		}
	}
	return net
}

// Start launches the node goroutines. It must be called exactly once.
func (net *Network) Start() {
	// The whole launch — flag flips AND every wg.Add/goroutine spawn —
	// happens under mu, so a Stop that observes started==true inside
	// its own locked section also observes running==true (no phantom
	// winner to wait for) and a fully populated WaitGroup (its Wait
	// cannot interleave with these Adds, which would be WaitGroup
	// misuse and let Stop return before the nodes even exist).
	net.mu.Lock()
	defer net.mu.Unlock()
	if !net.started.CompareAndSwap(false, true) {
		panic("runtime: Start called twice")
	}
	net.running.Store(true)
	for _, nd := range net.nodes {
		net.wg.Add(2)
		go nd.mailbox()
		go nd.run()
	}
	net.collectorWg.Add(1)
	go net.collect()
}

// collect pumps completions from the bounded internal channel to the
// public channel through an unbounded buffer, so protocol goroutines never
// block on a slow (or absent) consumer.
func (net *Network) collect() {
	defer net.collectorWg.Done()
	var buf []Completion
	in := net.compIn
	for in != nil || len(buf) > 0 {
		var out chan Completion
		var head Completion
		if len(buf) > 0 {
			out = net.completions
			head = buf[0]
		}
		select {
		case c, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			buf = append(buf, c)
		case out <- head:
			buf = buf[1:]
		}
	}
	close(net.completions)
}

// Completions returns the channel on which queuing completions are
// delivered. Delivery is unbounded (slow consumers never stall the
// protocol); the channel is closed by Stop.
func (net *Network) Completions() <-chan Completion { return net.completions }

// Request asynchronously issues a queuing request at node v and returns
// its request ID. The completion eventually appears on Completions.
// Requests racing Stop either get fully serviced (Stop waits for them)
// or fail fast with TryRequest's rejection panic — they are never
// silently dropped into a stopped node.
func (net *Network) Request(v graph.NodeID) int64 {
	id, ok := net.TryRequest(v)
	if !ok {
		panic("runtime: Request before Start or after Stop")
	}
	return id
}

// TryRequest is Request that reports rejection instead of panicking:
// ok is false when the network is not running (before Start, after Stop,
// or once a concurrent Stop has begun shutting down). A request accepted
// here is guaranteed to complete before Stop returns.
func (net *Network) TryRequest(v graph.NodeID) (id int64, ok bool) {
	id, _, ok = net.admit(v, false)
	return id, ok
}

// RequestSync issues a request at v and waits until v's protocol
// initiation step has executed (not until queuing completes). Useful for
// tests that need a deterministic issue order.
func (net *Network) RequestSync(v graph.NodeID) int64 {
	id, done, ok := net.admit(v, true)
	if !ok {
		panic("runtime: Request before Start or after Stop")
	}
	<-done
	return id
}

// admit atomically checks that the network is running and enqueues the
// issue message. Holding mu's read side across check+enqueue closes the
// Request/Stop race: once Stop's writer section flips running, no new
// issue can reach a mailbox, and every issue that won the race is
// covered by Stop's quiescence wait.
func (net *Network) admit(v graph.NodeID, sync bool) (id int64, done chan struct{}, ok bool) {
	net.mu.RLock()
	defer net.mu.RUnlock()
	if !net.running.Load() {
		return 0, nil, false
	}
	id = net.nextReq.Add(1) - 1
	net.inflight.Add(1)
	if sync {
		done = make(chan struct{})
	}
	net.nodes[v].in <- issueMsg{reqID: id, done: done}
	return id, done, true
}

// Wait blocks until every issued request has completed (quiescence).
func (net *Network) Wait() { net.inflight.Wait() }

// Stop rejects further requests, waits for quiescence of the accepted
// ones, terminates all goroutines, and closes the completions channel
// (after all buffered completions are delivered). A consumer must be
// draining Completions, otherwise Stop blocks until the remaining
// completions are read. Concurrent Stop calls all return only once the
// shutdown has fully finished; Stop before Start is a no-op. The
// network cannot be restarted.
func (net *Network) Stop() {
	// Flip running before waiting: a Request serialized after this
	// point is rejected, one serialized before is counted in inflight,
	// so the Wait below observes a monotonically draining system.
	net.mu.Lock()
	started := net.started.Load()
	stopping := started && net.running.CompareAndSwap(true, false)
	net.mu.Unlock()
	if !started {
		return
	}
	if !stopping {
		// Another Stop won the race (or already finished): hold every
		// caller to Stop's contract by waiting for that shutdown.
		<-net.stopped
		return
	}
	net.Wait()
	for _, nd := range net.nodes {
		nd.in <- stopMsg{}
	}
	net.wg.Wait()
	close(net.compIn)
	net.collectorWg.Wait()
	close(net.stopped)
}

// Links returns a snapshot of all link pointers. Only valid after Stop
// (otherwise racy by construction).
func (net *Network) Links() []graph.NodeID {
	select {
	case <-net.stopped:
	default:
		panic("runtime: Links before Stop")
	}
	links := make([]graph.NodeID, len(net.nodes))
	for i, nd := range net.nodes {
		links[i] = nd.link
	}
	return links
}

// mailbox pumps messages from the unbounded input buffer to the node
// loop, preserving FIFO order. Buffering in a goroutine-owned slice keeps
// protocol sends non-blocking, which rules out channel deadlock between
// mutually sending neighbours.
func (nd *node) mailbox() {
	defer nd.net.wg.Done()
	var buf []message
	in := nd.in
	for in != nil || len(buf) > 0 {
		var out chan message
		var head message
		if len(buf) > 0 {
			out = nd.out
			head = buf[0]
		}
		select {
		case m, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			buf = append(buf, m)
			if _, stop := m.(stopMsg); stop {
				in = nil
			}
		case out <- head:
			buf = buf[1:]
		}
	}
	close(nd.out)
}

func (nd *node) run() {
	defer nd.net.wg.Done()
	for m := range nd.out {
		switch msg := m.(type) {
		case issueMsg:
			nd.initiate(msg)
		case queueMsg:
			nd.pathReversal(msg)
		case stopMsg:
			// Drain is unnecessary: Stop only runs after quiescence.
			return
		default:
			panic(fmt.Sprintf("runtime: unexpected message %T", m))
		}
	}
}

func (nd *node) initiate(msg issueMsg) {
	if msg.done != nil {
		defer close(msg.done)
	}
	if nd.link == nd.id {
		pred := nd.lastReq
		nd.lastReq = msg.reqID
		nd.complete(Completion{
			ReqID: msg.reqID, PredID: pred, Origin: nd.id, Sink: nd.id, At: nd.net.opts.Clock(),
		})
		return
	}
	target := nd.link
	nd.lastReq = msg.reqID
	nd.link = nd.id
	nd.send(target, queueMsg{reqID: msg.reqID, origin: nd.id, from: nd.id, hops: 1})
}

func (nd *node) pathReversal(msg queueMsg) {
	next := nd.link
	nd.link = msg.from
	if next != nd.id {
		fwd := msg
		fwd.from = nd.id
		fwd.hops++
		nd.send(next, fwd)
		return
	}
	nd.complete(Completion{
		ReqID:  msg.reqID,
		PredID: nd.lastReq,
		Origin: msg.origin,
		Sink:   nd.id,
		Hops:   msg.hops,
		At:     nd.net.opts.Clock(),
	})
}

func (nd *node) send(to graph.NodeID, msg queueMsg) {
	if d := nd.net.opts.HopDelay; d > 0 {
		time.Sleep(d)
	}
	nd.net.nodes[to].in <- msg
}

func (nd *node) complete(c Completion) {
	nd.net.compIn <- c
	nd.net.inflight.Done()
}
