// Package runtime is a live, goroutine-based implementation of the arrow
// protocol: every tree node is a goroutine owning its link pointers, and
// tree edges are channel-backed FIFO mailboxes — the natural Go embedding
// of the paper's asynchronous message-passing model. It complements the
// deterministic simulator (package arrow): the simulator measures the
// paper's cost model exactly, while this runtime demonstrates the protocol
// under real, racy concurrency (run the tests with -race).
//
// The runtime is a sharded multi-object service: Options.Objects runs k
// independent arrow instances over the same tree and the same node
// goroutines, object o rooted at its own home node, with Submit as the
// object-keyed request front door. Admission is bounded — with a
// positive MaxInFlight the network sheds load with a typed
// *OverloadError instead of queueing without limit, so mailbox memory
// stays proportional to the admission window rather than the offered
// load.
//
// State is never shared: each node's link and lastReq entries are touched
// only by its own goroutine, and all coordination flows through channels.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/tree"
)

// Completion reports one queued request, delivered on the network's
// completions channel. PredID is -1 when the request was queued behind
// the virtual root request of its object.
type Completion struct {
	ReqID  int64
	PredID int64
	// Object is the shared object the request queued on (0 on
	// single-object networks).
	Object int32
	Origin graph.NodeID
	Sink   graph.NodeID
	Hops   int
	At     time.Time
}

// Options tunes a Network.
type Options struct {
	// HopDelay, if positive, delays each message hop to emulate network
	// latency in demonstrations.
	HopDelay time.Duration
	// Clock supplies Completion.At timestamps; nil defaults to time.Now.
	// Tests inject a fixed clock here so completion records compare
	// deterministically; the live network is wall-clock by design
	// everywhere else (see the runtime-vs-sim agreement check).
	Clock func() time.Time
	// Objects is the number of independent protocol instances the
	// network serves (0 and 1 both mean one object). Object o's tree is
	// the shared spanning tree re-rooted at (root + o) mod n, so the k
	// sink hotspots spread across the nodes.
	Objects int
	// MaxInFlight bounds admitted-but-uncompleted requests across all
	// objects: Submit beyond the bound fails fast with *OverloadError
	// instead of growing node mailboxes without limit. 0 means
	// unbounded (the classic demonstration mode).
	MaxInFlight int
}

// ErrStopped is returned by Submit when the network is not accepting
// requests: before Start, after Stop, or once a concurrent Stop has
// begun shutting down.
var ErrStopped = errors.New("runtime: network not running")

// OverloadError is Submit's typed backpressure rejection: the admission
// window (Options.MaxInFlight) was full. The request was not enqueued;
// the caller may retry after completions drain.
type OverloadError struct {
	Node   graph.NodeID
	Object int32
	Limit  int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("runtime: node %d rejected request for object %d: %d requests in flight",
		e.Node, e.Object, e.Limit)
}

// Network runs k sharded arrow instances over a spanning tree with one
// goroutine per node.
type Network struct {
	t       *tree.Tree
	root    graph.NodeID
	opts    Options
	objects int

	nodes       []*node
	compIn      chan Completion
	completions chan Completion
	collectorWg sync.WaitGroup
	nextReq     atomic.Int64
	inflight    sync.WaitGroup
	// inflightN mirrors the inflight WaitGroup as a readable counter:
	// admit increments it inside the admission window check, complete
	// decrements it, so its value is the exact number of admitted,
	// uncompleted requests.
	inflightN atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	// mu orders request admission against shutdown: Submit holds the
	// read side while it checks running and enqueues, Stop holds the
	// write side while it flips running. Without it a Submit racing
	// Stop could pass the running check, then enqueue into a node whose
	// loop already exited — the mailbox would never drain and Stop would
	// deadlock in wg.Wait().
	mu      sync.RWMutex
	started atomic.Bool
	running atomic.Bool
	stopped chan struct{}
	wg      sync.WaitGroup
}

// message is the node-loop message family. The marker method makes the
// family checkable: arrowlint's msgswitch analyzer requires every type
// switch over it to list all three members.
type message interface{ isRuntimeMsg() }

type queueMsg struct {
	reqID  int64
	obj    int32
	origin graph.NodeID
	from   graph.NodeID
	hops   int
}

type issueMsg struct {
	reqID int64
	obj   int32
	done  chan<- struct{} // optional: closed once initiation is processed
}

type stopMsg struct{}

func (queueMsg) isRuntimeMsg() {}
func (issueMsg) isRuntimeMsg() {}
func (stopMsg) isRuntimeMsg()  {}

// node owns one slot of every object's pointer state: link[o] is the
// node's arrow for object o, lastReq[o] its most recent request on that
// object's queue. Both are touched only by the node's own goroutine.
type node struct {
	id      graph.NodeID
	link    []graph.NodeID
	lastReq []int64
	in      chan message // unbounded mailbox input
	out     chan message // node loop reads here
	net     *Network
}

// New builds a network over tree t. Object 0's initial sink is root;
// object o's is (root + o) mod n, so multi-object networks spread their
// sinks over the whole tree.
func New(t *tree.Tree, root graph.NodeID, opts Options) *Network {
	n := t.NumNodes()
	if int(root) < 0 || int(root) >= n {
		panic(fmt.Sprintf("runtime: root %d out of range", root))
	}
	if opts.Objects < 0 {
		panic(fmt.Sprintf("runtime: Objects must be >= 0, got %d", opts.Objects))
	}
	if opts.MaxInFlight < 0 {
		panic(fmt.Sprintf("runtime: MaxInFlight must be >= 0, got %d", opts.MaxInFlight))
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	k := opts.Objects
	if k < 1 {
		k = 1
	}
	net := &Network{
		t:           t,
		root:        root,
		opts:        opts,
		objects:     k,
		nodes:       make([]*node, n),
		compIn:      make(chan Completion, 16),
		completions: make(chan Completion),
		stopped:     make(chan struct{}),
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		nd := &node{
			id:      id,
			link:    make([]graph.NodeID, k),
			lastReq: make([]int64, k),
			in:      make(chan message, 16),
			out:     make(chan message),
			net:     net,
		}
		for o := 0; o < k; o++ {
			objRoot := graph.NodeID((int(root) + o) % n)
			if id == objRoot {
				nd.link[o] = id
			} else {
				nd.link[o] = t.NextHop(id, objRoot)
			}
			nd.lastReq[o] = -1
		}
		net.nodes[v] = nd
	}
	return net
}

// Objects returns the number of objects the network serves.
func (net *Network) Objects() int { return net.objects }

// Accepted returns the number of requests admitted so far.
func (net *Network) Accepted() int64 { return net.accepted.Load() }

// Rejected returns the number of requests refused by the admission
// window (*OverloadError rejections; ErrStopped refusals don't count —
// they are lifecycle, not load).
func (net *Network) Rejected() int64 { return net.rejected.Load() }

// InFlight returns the number of admitted, uncompleted requests.
func (net *Network) InFlight() int64 { return net.inflightN.Load() }

// Start launches the node goroutines. It must be called exactly once.
func (net *Network) Start() {
	// The whole launch — flag flips AND every wg.Add/goroutine spawn —
	// happens under mu, so a Stop that observes started==true inside
	// its own locked section also observes running==true (no phantom
	// winner to wait for) and a fully populated WaitGroup (its Wait
	// cannot interleave with these Adds, which would be WaitGroup
	// misuse and let Stop return before the nodes even exist).
	net.mu.Lock()
	defer net.mu.Unlock()
	if !net.started.CompareAndSwap(false, true) {
		panic("runtime: Start called twice")
	}
	net.running.Store(true)
	for _, nd := range net.nodes {
		net.wg.Add(2)
		go nd.mailbox()
		go nd.run()
	}
	net.collectorWg.Add(1)
	go net.collect()
}

// collect pumps completions from the bounded internal channel to the
// public channel through an unbounded buffer, so protocol goroutines never
// block on a slow (or absent) consumer.
func (net *Network) collect() {
	defer net.collectorWg.Done()
	var buf []Completion
	in := net.compIn
	for in != nil || len(buf) > 0 {
		var out chan Completion
		var head Completion
		if len(buf) > 0 {
			out = net.completions
			head = buf[0]
		}
		select {
		case c, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			buf = append(buf, c)
		case out <- head:
			buf = buf[1:]
		}
	}
	close(net.completions)
}

// Completions returns the channel on which queuing completions are
// delivered. Delivery is unbounded (slow consumers never stall the
// protocol); the channel is closed by Stop.
func (net *Network) Completions() <-chan Completion { return net.completions }

// Request asynchronously issues a queuing request for object 0 at node
// v and returns its request ID. The completion eventually appears on
// Completions. Requests racing Stop either get fully serviced (Stop
// waits for them) or fail fast — they are never silently dropped into a
// stopped node.
func (net *Network) Request(v graph.NodeID) int64 {
	id, err := net.Submit(v, 0)
	if err != nil {
		panic("runtime: " + err.Error())
	}
	return id
}

// TryRequest is Request that reports rejection instead of panicking:
// ok is false when the network is not running or the admission window
// is full. A request accepted here is guaranteed to complete before
// Stop returns.
func (net *Network) TryRequest(v graph.NodeID) (id int64, ok bool) {
	id, err := net.Submit(v, 0)
	return id, err == nil
}

// Submit is the object-keyed request front door: it issues a queuing
// request for object obj at node v. It fails fast with ErrStopped when
// the network is not running and with a typed *OverloadError when the
// admission window (Options.MaxInFlight) is full; an accepted request
// is guaranteed to complete before Stop returns, with its completion on
// Completions.
func (net *Network) Submit(v graph.NodeID, obj int32) (id int64, err error) {
	id, _, err = net.admit(v, obj, false)
	return id, err
}

// RequestSync issues a request for object 0 at v and waits until v's
// protocol initiation step has executed (not until queuing completes).
// Useful for tests that need a deterministic issue order.
func (net *Network) RequestSync(v graph.NodeID) int64 {
	id, done, err := net.admit(v, 0, true)
	if err != nil {
		panic("runtime: " + err.Error())
	}
	<-done
	return id
}

// admit atomically checks that the network is running, applies the
// admission window, and enqueues the issue message. Holding mu's read
// side across check+enqueue closes the Submit/Stop race: once Stop's
// writer section flips running, no new issue can reach a mailbox, and
// every issue that won the race is covered by Stop's quiescence wait.
func (net *Network) admit(v graph.NodeID, obj int32, sync bool) (id int64, done chan struct{}, err error) {
	if int(v) < 0 || int(v) >= len(net.nodes) {
		return 0, nil, fmt.Errorf("runtime: node %d out of range", v)
	}
	if int(obj) < 0 || int(obj) >= net.objects {
		return 0, nil, fmt.Errorf("runtime: object %d out of range (network serves %d)", obj, net.objects)
	}
	net.mu.RLock()
	defer net.mu.RUnlock()
	if !net.running.Load() {
		return 0, nil, ErrStopped
	}
	// Optimistic reserve: take the slot, then give it back if that
	// overshot the window. Concurrent submitters may transiently
	// overshoot each other's reservations but never the admitted load —
	// at most MaxInFlight requests are ever in the system.
	if limit := net.opts.MaxInFlight; limit > 0 {
		if net.inflightN.Add(1) > int64(limit) {
			net.inflightN.Add(-1)
			net.rejected.Add(1)
			return 0, nil, &OverloadError{Node: v, Object: obj, Limit: limit}
		}
	} else {
		net.inflightN.Add(1)
	}
	id = net.nextReq.Add(1) - 1
	net.inflight.Add(1)
	net.accepted.Add(1)
	if sync {
		done = make(chan struct{})
	}
	net.nodes[v].in <- issueMsg{reqID: id, obj: obj, done: done}
	return id, done, nil
}

// Wait blocks until every issued request has completed (quiescence).
func (net *Network) Wait() { net.inflight.Wait() }

// Stop rejects further requests, waits for quiescence of the accepted
// ones, terminates all goroutines, and closes the completions channel
// (after all buffered completions are delivered). A consumer must be
// draining Completions, otherwise Stop blocks until the remaining
// completions are read. Concurrent Stop calls all return only once the
// shutdown has fully finished; Stop before Start is a no-op. The
// network cannot be restarted.
func (net *Network) Stop() {
	// Flip running before waiting: a Submit serialized after this
	// point is rejected, one serialized before is counted in inflight,
	// so the Wait below observes a monotonically draining system.
	net.mu.Lock()
	started := net.started.Load()
	stopping := started && net.running.CompareAndSwap(true, false)
	net.mu.Unlock()
	if !started {
		return
	}
	if !stopping {
		// Another Stop won the race (or already finished): hold every
		// caller to Stop's contract by waiting for that shutdown.
		<-net.stopped
		return
	}
	net.Wait()
	for _, nd := range net.nodes {
		nd.in <- stopMsg{}
	}
	net.wg.Wait()
	close(net.compIn)
	net.collectorWg.Wait()
	close(net.stopped)
}

// Links returns a snapshot of object 0's link pointers. Only valid
// after Stop (otherwise racy by construction).
func (net *Network) Links() []graph.NodeID { return net.LinksFor(0) }

// LinksFor returns a snapshot of object obj's link pointers. Only valid
// after Stop (otherwise racy by construction).
func (net *Network) LinksFor(obj int32) []graph.NodeID {
	select {
	case <-net.stopped:
	default:
		panic("runtime: Links before Stop")
	}
	if int(obj) < 0 || int(obj) >= net.objects {
		panic(fmt.Sprintf("runtime: object %d out of range (network serves %d)", obj, net.objects))
	}
	links := make([]graph.NodeID, len(net.nodes))
	for i, nd := range net.nodes {
		links[i] = nd.link[obj]
	}
	return links
}

// mailbox pumps messages from the unbounded input buffer to the node
// loop, preserving FIFO order. Buffering in a goroutine-owned slice keeps
// protocol sends non-blocking, which rules out channel deadlock between
// mutually sending neighbours; with a positive MaxInFlight the buffer is
// additionally bounded by the admission window (each admitted request
// contributes at most one buffered message per node).
func (nd *node) mailbox() {
	defer nd.net.wg.Done()
	var buf []message
	in := nd.in
	for in != nil || len(buf) > 0 {
		var out chan message
		var head message
		if len(buf) > 0 {
			out = nd.out
			head = buf[0]
		}
		select {
		case m, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			buf = append(buf, m)
			if _, stop := m.(stopMsg); stop {
				in = nil
			}
		case out <- head:
			buf = buf[1:]
		}
	}
	close(nd.out)
}

func (nd *node) run() {
	defer nd.net.wg.Done()
	for m := range nd.out {
		switch msg := m.(type) {
		case issueMsg:
			nd.initiate(msg)
		case queueMsg:
			nd.pathReversal(msg)
		case stopMsg:
			// Drain is unnecessary: Stop only runs after quiescence.
			return
		default:
			panic(fmt.Sprintf("runtime: unexpected message %T", m))
		}
	}
}

func (nd *node) initiate(msg issueMsg) {
	if msg.done != nil {
		defer close(msg.done)
	}
	o := msg.obj
	if nd.link[o] == nd.id {
		pred := nd.lastReq[o]
		nd.lastReq[o] = msg.reqID
		nd.complete(Completion{
			ReqID: msg.reqID, PredID: pred, Object: o,
			Origin: nd.id, Sink: nd.id, At: nd.net.opts.Clock(),
		})
		return
	}
	target := nd.link[o]
	nd.lastReq[o] = msg.reqID
	nd.link[o] = nd.id
	nd.send(target, queueMsg{reqID: msg.reqID, obj: o, origin: nd.id, from: nd.id, hops: 1})
}

func (nd *node) pathReversal(msg queueMsg) {
	o := msg.obj
	next := nd.link[o]
	nd.link[o] = msg.from
	if next != nd.id {
		fwd := msg
		fwd.from = nd.id
		fwd.hops++
		nd.send(next, fwd)
		return
	}
	nd.complete(Completion{
		ReqID:  msg.reqID,
		PredID: nd.lastReq[o],
		Object: o,
		Origin: msg.origin,
		Sink:   nd.id,
		Hops:   msg.hops,
		At:     nd.net.opts.Clock(),
	})
}

func (nd *node) send(to graph.NodeID, msg queueMsg) {
	if d := nd.net.opts.HopDelay; d > 0 {
		time.Sleep(d)
	}
	nd.net.nodes[to].in <- msg
}

func (nd *node) complete(c Completion) {
	nd.net.compIn <- c
	nd.net.inflightN.Add(-1)
	nd.net.inflight.Done()
}
