package runtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/tree"
)

// collect starts a drainer for the completions channel and returns a
// function that stops the network and returns everything received.
func collect(net *Network) func() []Completion {
	var (
		mu    sync.Mutex
		comps []Completion
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range net.Completions() {
			mu.Lock()
			comps = append(comps, c)
			mu.Unlock()
		}
	}()
	return func() []Completion {
		net.Stop()
		<-done
		mu.Lock()
		defer mu.Unlock()
		return comps
	}
}

func TestSingleRequestCompletes(t *testing.T) {
	tr := tree.BalancedBinary(7)
	net := New(tr, 0, Options{})
	net.Start()
	finish := collect(net)
	id := net.Request(5)
	comps := finish()
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	c := comps[0]
	if c.ReqID != id || c.PredID != -1 || c.Origin != 5 || c.Sink != 0 {
		t.Errorf("completion = %+v", c)
	}
	if c.Hops != 2 {
		t.Errorf("hops = %d, want 2 (5 -> 2 -> 0)", c.Hops)
	}
}

func TestTotalOrderUnderConcurrency(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		n := 31
		tr := tree.BalancedBinary(n)
		net := New(tr, 0, Options{})
		net.Start()
		finish := collect(net)

		const requests = 200
		var wg sync.WaitGroup
		rng := rand.New(rand.NewSource(int64(trial)))
		targets := make([]graph.NodeID, requests)
		for i := range targets {
			targets[i] = graph.NodeID(rng.Intn(n))
		}
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < requests; j += 8 {
					net.Request(targets[j])
				}
			}(i)
		}
		wg.Wait()
		comps := finish()
		if len(comps) != requests {
			t.Fatalf("trial %d: %d completions, want %d", trial, len(comps), requests)
		}
		// Predecessor chain must be a total order: unique predecessors,
		// exactly one request behind the virtual root.
		succ := make(map[int64]int64, requests)
		for _, c := range comps {
			if _, dup := succ[c.PredID]; dup {
				t.Fatalf("trial %d: duplicate successor for %d", trial, c.PredID)
			}
			succ[c.PredID] = c.ReqID
		}
		count := 0
		cur, ok := succ[-1]
		for ok {
			count++
			cur, ok = succ[cur]
		}
		if count != requests {
			t.Fatalf("trial %d: chain covers %d of %d", trial, count, requests)
		}
	}
}

func TestPointerInvariantAfterQuiescence(t *testing.T) {
	n := 15
	tr := tree.BalancedBinary(n)
	net := New(tr, 0, Options{})
	net.Start()
	finish := collect(net)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v graph.NodeID) {
			defer wg.Done()
			net.Request(v)
		}(graph.NodeID(v))
	}
	wg.Wait()
	comps := finish()
	links := net.Links()
	sink, err := arrow.VerifySinkReachability(tr, links)
	if err != nil {
		t.Fatal(err)
	}
	// The sink must be the origin of the last request in the chain.
	succ := make(map[int64]Completion)
	for _, c := range comps {
		succ[c.PredID] = c
	}
	var last Completion
	cur, ok := succ[-1]
	for ok {
		last = cur
		cur, ok = succ[cur.ReqID]
	}
	if sink != last.Origin {
		t.Errorf("final sink %d != last request origin %d", sink, last.Origin)
	}
}

func TestRequestSyncSequentialSemantics(t *testing.T) {
	// Issuing sequentially from one goroutine with RequestSync then
	// waiting gives the issue order as the queue order.
	tr := tree.PathTree(10)
	net := New(tr, 0, Options{})
	net.Start()
	finish := collect(net)
	var ids []int64
	for _, v := range []graph.NodeID{9, 3, 7} {
		ids = append(ids, net.RequestSync(v))
		net.Wait()
	}
	comps := finish()
	byID := map[int64]Completion{}
	for _, c := range comps {
		byID[c.ReqID] = c
	}
	if byID[ids[0]].PredID != -1 {
		t.Errorf("first request pred = %d", byID[ids[0]].PredID)
	}
	if byID[ids[1]].PredID != ids[0] || byID[ids[2]].PredID != ids[1] {
		t.Error("sequential requests out of order")
	}
	// Hops equal tree distances between consecutive origins.
	if byID[ids[1]].Hops != 6 {
		t.Errorf("hops = %d, want dT(9,3) = 6", byID[ids[1]].Hops)
	}
}

func TestHopDelayOption(t *testing.T) {
	tr := tree.PathTree(4)
	net := New(tr, 0, Options{HopDelay: time.Millisecond})
	net.Start()
	finish := collect(net)
	start := time.Now()
	net.Request(3)
	net.Wait()
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("3-hop request with 1ms hop delay finished in %v", elapsed)
	}
	finish()
}

func TestStopIdempotentAndGuards(t *testing.T) {
	tr := tree.PathTree(3)
	net := New(tr, 0, Options{})
	net.Start()
	finish := collect(net)
	finish()
	net.Stop() // second stop is a no-op
	defer func() {
		if recover() == nil {
			t.Error("Request after Stop should panic")
		}
	}()
	net.Request(1)
}

// TestRequestStopRace hammers Request against Stop (run with -race):
// every accepted request must complete before Stop returns, rejected
// ones must fail fast via TryRequest, and nothing may deadlock — the
// regression this pins down is an issue racing past the running check
// into a node whose loop already exited, wedging Stop in wg.Wait().
func TestRequestStopRace(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		const n = 15
		tr := tree.BalancedBinary(n)
		net := New(tr, 0, Options{})
		net.Start()
		var accepted, completed int64
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range net.Completions() {
				completed++
			}
		}()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					if _, ok := net.TryRequest(graph.NodeID((w*50 + i) % n)); !ok {
						return // network stopped underneath us
					}
					atomic.AddInt64(&accepted, 1)
				}
			}(w)
		}
		close(start)
		net.Stop() // races the issuers
		wg.Wait()
		<-drained
		if completed != atomic.LoadInt64(&accepted) {
			t.Fatalf("trial %d: accepted %d requests but %d completed",
				trial, atomic.LoadInt64(&accepted), completed)
		}
		if _, ok := net.TryRequest(3); ok {
			t.Fatalf("trial %d: TryRequest accepted after Stop", trial)
		}
	}
}

// TestConcurrentStops: every Stop caller — including losers of the
// shutdown race — returns only after the network is fully stopped, and
// Stop before Start is a no-op.
func TestConcurrentStops(t *testing.T) {
	idle := New(tree.PathTree(3), 0, Options{})
	idle.Stop() // before Start: must return immediately

	// Stop racing Start (run with -race): Stop either no-ops (it beat
	// Start's locked section) or performs a full shutdown of an entirely
	// launched network — never a partial one.
	for i := 0; i < 50; i++ {
		net := New(tree.PathTree(4), 0, Options{})
		go func() {
			for range net.Completions() {
			}
		}()
		done := make(chan struct{})
		go func() {
			defer close(done)
			net.Stop()
		}()
		net.Start()
		<-done
		net.Stop() // idempotent regardless of which side won
	}

	tr := tree.BalancedBinary(7)
	net := New(tr, 0, Options{})
	net.Start()
	go func() {
		for range net.Completions() {
		}
	}()
	for i := 0; i < 20; i++ {
		net.Request(graph.NodeID(i % 7))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			net.Stop()
			// Stop returned, so the network must be fully stopped:
			// Links panics otherwise.
			net.Links()
		}()
	}
	wg.Wait()
}

func TestLinksBeforeStopPanics(t *testing.T) {
	tr := tree.PathTree(3)
	net := New(tr, 0, Options{})
	net.Start()
	defer func() {
		if recover() == nil {
			t.Error("Links before Stop should panic")
		}
		finish := collect(net)
		finish()
	}()
	net.Links()
}

func TestManyRequestsFromSameNode(t *testing.T) {
	tr := tree.BalancedBinary(7)
	net := New(tr, 0, Options{})
	net.Start()
	finish := collect(net)
	for i := 0; i < 50; i++ {
		net.Request(4)
	}
	comps := finish()
	if len(comps) != 50 {
		t.Fatalf("%d completions, want 50", len(comps))
	}
	// After the first, every request from node 4 completes locally.
	local := 0
	for _, c := range comps {
		if c.Sink == 4 {
			local++
		}
	}
	if local < 49 {
		t.Errorf("only %d local completions, want >= 49", local)
	}
}

// TestInjectedClock pins the Options.Clock seam: every completion
// timestamp must come from the injected clock, not the wall clock, so
// tests (and trace comparisons) can reason about At deterministically.
func TestInjectedClock(t *testing.T) {
	var ticks atomic.Int64
	epoch := time.Unix(1_000_000, 0)
	tr := tree.BalancedBinary(7)
	net := New(tr, 0, Options{Clock: func() time.Time {
		return epoch.Add(time.Duration(ticks.Add(1)) * time.Second)
	}})
	net.Start()
	finish := collect(net)
	net.RequestSync(5)
	net.RequestSync(3)
	comps := finish()
	if len(comps) != 2 {
		t.Fatalf("got %d completions, want 2", len(comps))
	}
	for i, c := range comps {
		want := epoch.Add(time.Duration(i+1) * time.Second)
		if !c.At.Equal(want) {
			t.Errorf("completion %d At = %v, want %v (injected clock)", i, c.At, want)
		}
	}
}
