package runtime

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/tree"
)

// TestMultiObjectTotalOrders checks the sharded service's core
// correctness claim under real concurrency: each object's completions
// form their own total order (unique predecessors, one chain from the
// virtual root), independent of the interleaving with every other
// object's traffic on the same nodes and mailboxes.
func TestMultiObjectTotalOrders(t *testing.T) {
	const n, k, requests = 31, 8, 400
	tr := tree.BalancedBinary(n)
	net := New(tr, 0, Options{Objects: k})
	net.Start()
	finish := collect(net)

	rng := rand.New(rand.NewSource(1))
	type target struct {
		node graph.NodeID
		obj  int32
	}
	targets := make([]target, requests)
	for i := range targets {
		targets[i] = target{graph.NodeID(rng.Intn(n)), int32(rng.Intn(k))}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < requests; j += 8 {
				if _, err := net.Submit(targets[j].node, targets[j].obj); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	comps := finish()
	if len(comps) != requests {
		t.Fatalf("%d completions, want %d", len(comps), requests)
	}
	perObj := make(map[int32][]Completion)
	for _, c := range comps {
		perObj[c.Object] = append(perObj[c.Object], c)
	}
	for o, cs := range perObj {
		succ := make(map[int64]int64, len(cs))
		for _, c := range cs {
			if _, dup := succ[c.PredID]; dup {
				t.Fatalf("object %d: duplicate successor for %d", o, c.PredID)
			}
			succ[c.PredID] = c.ReqID
		}
		count := 0
		cur, ok := succ[-1]
		for ok {
			count++
			cur, ok = succ[cur]
		}
		if count != len(cs) {
			t.Fatalf("object %d: chain covers %d of %d", o, count, len(cs))
		}
	}
	// Every object's pointer state must independently satisfy the sink
	// reachability invariant on its own re-rooted tree.
	for o := int32(0); o < k; o++ {
		if _, err := arrow.VerifySinkReachability(tr, net.LinksFor(o)); err != nil {
			t.Errorf("object %d: %v", o, err)
		}
	}
}

// TestSubmitValidation covers the front door's refusal cases: out of
// range coordinates, and the lifecycle rejection after Stop.
func TestSubmitValidation(t *testing.T) {
	tr := tree.BalancedBinary(7)
	net := New(tr, 0, Options{Objects: 4})
	net.Start()
	if _, err := net.Submit(3, 4); err == nil {
		t.Error("object beyond the served range was accepted")
	}
	if _, err := net.Submit(3, -1); err == nil {
		t.Error("negative object was accepted")
	}
	if _, err := net.Submit(7, 0); err == nil {
		t.Error("node beyond the tree was accepted")
	}
	go func() {
		for range net.Completions() {
		}
	}()
	net.Stop()
	if _, err := net.Submit(3, 0); !errors.Is(err, ErrStopped) {
		t.Errorf("Submit after Stop returned %v, want ErrStopped", err)
	}
}

// TestAdmissionRejection saturates a tiny admission window and checks
// the backpressure contract: overloads surface as typed *OverloadError,
// every rejection is counted, no accepted request is lost, and the
// in-flight gauge ends at zero.
func TestAdmissionRejection(t *testing.T) {
	const n, limit, attempts = 15, 2, 400
	tr := tree.BalancedBinary(n)
	// The hop delay keeps admitted requests in flight long enough that
	// concurrent submitters must overrun the window.
	net := New(tr, 0, Options{
		Objects:     4,
		MaxInFlight: limit,
		HopDelay:    50 * time.Microsecond,
	})
	net.Start()
	finish := collect(net)

	var overloads, accepted int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < attempts/8; i++ {
				_, err := net.Submit(graph.NodeID(rng.Intn(n)), int32(rng.Intn(4)))
				var ov *OverloadError
				switch {
				case err == nil:
					atomic.AddInt64(&accepted, 1)
				case errors.As(err, &ov):
					atomic.AddInt64(&overloads, 1)
					if ov.Limit != limit {
						t.Errorf("overload reports limit %d, want %d", ov.Limit, limit)
					}
				default:
					t.Errorf("unexpected error: %v", err)
				}
				if g := net.InFlight(); g > limit {
					t.Errorf("in-flight gauge %d exceeds limit %d", g, limit)
				}
			}
		}(w)
	}
	wg.Wait()
	comps := finish()

	if overloads == 0 {
		t.Error("saturating a window of 2 produced no overload rejections")
	}
	if got := net.Rejected(); got != overloads {
		t.Errorf("Rejected() = %d, observed %d overload errors", got, overloads)
	}
	if got := net.Accepted(); got != accepted {
		t.Errorf("Accepted() = %d, observed %d accepted submissions", got, accepted)
	}
	if int64(len(comps)) != accepted {
		t.Errorf("%d completions for %d accepted requests", len(comps), accepted)
	}
	if g := net.InFlight(); g != 0 {
		t.Errorf("in-flight gauge %d after quiescence", g)
	}
}

// TestSoakShardedService drives the sharded service at scale under the
// race detector: >= 1M requests across >= 1k objects from concurrent
// clients against a bounded admission window. It asserts zero lost
// requests (every accepted request completes, per object), typed and
// counted rejections, and an in-flight gauge that respects the window
// and drains to zero. Memory stays bounded by construction — the
// admission window caps mailbox growth and the drain counts rather
// than buffers completions — so the soak's footprint is independent of
// the request count.
func TestSoakShardedService(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	const (
		n       = 32
		k       = 1024
		total   = 1_000_000
		limit   = 8192
		clients = 16
	)
	tr := tree.BalancedBinary(n)
	net := New(tr, 0, Options{Objects: k, MaxInFlight: limit})
	net.Start()

	// Count completions per object instead of buffering them: the soak
	// verifies conservation, not records.
	compCounts := make([]int64, k)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for c := range net.Completions() {
			atomic.AddInt64(&compCounts[c.Object], 1)
		}
	}()

	subCounts := make([]int64, k)
	var issued int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for {
				if atomic.AddInt64(&issued, 1) > total {
					return
				}
				v := graph.NodeID(rng.Intn(n))
				obj := int32(rng.Intn(k))
				for {
					_, err := net.Submit(v, obj)
					if err == nil {
						atomic.AddInt64(&subCounts[obj], 1)
						break
					}
					var ov *OverloadError
					if !errors.As(err, &ov) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					// Backpressure: yield and retry the same request.
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()
	net.Stop()
	<-drained

	if got := net.Accepted(); got != total {
		t.Errorf("Accepted() = %d, want %d", got, total)
	}
	var lost int64
	for o := 0; o < k; o++ {
		if compCounts[o] != subCounts[o] {
			lost++
			t.Errorf("object %d: %d completions for %d accepted requests",
				o, compCounts[o], subCounts[o])
		}
	}
	if lost == 0 {
		var comps int64
		for o := 0; o < k; o++ {
			comps += compCounts[o]
		}
		if comps != total {
			t.Errorf("%d total completions, want %d", comps, total)
		}
	}
	if g := net.InFlight(); g != 0 {
		t.Errorf("in-flight gauge %d after shutdown", g)
	}
	t.Logf("soak: %d requests, %d objects, %d rejections under limit %d",
		total, k, net.Rejected(), limit)
}
