// Package shard is the multi-object closed-loop driver: k independent
// protocol instances — one per object, each with its own pointer state
// and root — all riding one shared simulator network whose links carry
// the combined traffic. It generalizes package loop along the object
// dimension the single-object drivers lack: every node issues PerNode
// requests one at a time, each request drawing its object from a
// deterministic Zipf popularity law, chasing that object's pointer
// discipline hop by hop as real simulator messages. With a positive
// LinkTxTime the shared links serialize cross-object traffic, so
// hot-object interference shows up as queueing delay on every object
// sharing the congested links rather than superposing for free.
//
// The pointer discipline is supplied as an object-keyed Stepper; the
// driver owns issue bookkeeping, the object draw, per-object and
// aggregate accounting, message pre-boxing and the divergence guard, so
// they exist once and cannot drift between protocols.
package shard

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Stepper is a protocol's object-keyed pointer discipline. Both methods
// mutate only the pointer state of the given object. Unlike
// loop.Stepper, ForwardFind receives both the previous hop (from) and
// the requester (origin): tree protocols reverse pointers toward the
// previous hop (arrow), metric protocols toward the origin (NTA, Ivy).
type Stepper interface {
	// StartFind begins a request for object obj at node v. If v already
	// holds the object's tail, local is true and no message is sent;
	// otherwise the request forwards to target.
	StartFind(obj int32, v graph.NodeID) (target graph.NodeID, local bool)
	// ForwardFind processes a request for (obj, origin) arriving at node
	// at from node from. done reports the chase ended at at; otherwise
	// the request forwards to next.
	ForwardFind(obj int32, at, from, origin graph.NodeID) (next graph.NodeID, done bool)
}

// ShardSafe marks a Stepper whose pointer state is partitioned by node:
// for every object, StartFind(obj, v) touches only state keyed by v and
// ForwardFind(obj, at, ...) only state keyed by at. Such a stepper may
// run under the simulator's lookahead-windowed parallel drain — the node
// partition is exactly the drain's shard boundary, and the object
// dimension adds no sharing because each request touches one object's
// state at one node per event. Steppers with cross-node shared state
// must not opt in; the driver runs them serially regardless of Workers.
type ShardSafe interface {
	ShardSafeStepper()
}

// Spec drives a multi-object closed-loop run. The embedded loop.Spec
// carries the shared run knobs; Faults must be nil (the multi-object
// tier does not support fault plans — Run errors on one).
type Spec struct {
	loop.Spec
	// Objects is the number of independent protocol instances sharing
	// the network; must be >= 1.
	Objects int
	// Skew is the Zipf exponent of object popularity: each request
	// draws object o with weight (o+1)^-Skew (0 = uniform).
	Skew float64
	// ObjectRecorders, when non-nil, attaches one recorder per object:
	// entry o observes exactly object o's completions (nil entries skip
	// an object). Length must equal Objects. The aggregate
	// Spec.Recorder, when set, additionally observes every completion.
	ObjectRecorders []stats.Recorder
}

// Result aggregates a multi-object run: the familiar closed-loop
// counter shape once for the combined traffic and once per object.
type Result struct {
	// N is the node count, Objects the object count.
	N       int
	Objects int
	// Agg is the aggregate over all objects. Its Makespan is the time
	// to drain the combined load and its Events the total event count.
	Agg loop.Result
	// PerObject holds each object's own counters, indexed by object.
	// Makespan and Events are global quantities and stay zero here; N
	// is the shared node count.
	PerObject []loop.Result
}

// findMsg is the driver's request message; the marker method keys the
// family for arrowlint's msgswitch analyzer.
type shardMsg interface{ isShardMsg() }

type findMsg struct {
	origin graph.NodeID
	obj    int32
}

type replyMsg struct{}

func (*findMsg) isShardMsg()  {}
func (*replyMsg) isShardMsg() {}

// state is O(n + workers·k): per-node bookkeeping mirrors package loop
// (one in-flight request per node, pre-boxed messages reused across a
// node's successive requests), and the per-object counters get one slot
// per drain shard so no two workers share an accumulator. A node's
// pre-boxed findMsg is re-stamped with the object of each new request;
// that is safe for the same reason the reuse itself is — the previous
// request's message is done traveling before the node's next issue.
type state struct {
	spec  Spec
	step  Stepper
	proto string
	zipf  *workload.Zipf

	issueTime []sim.Time
	hops      []int32
	issued    []int32
	remaining []int32

	msgs []findMsg
	rep  replyMsg

	// resS[shard][obj] accumulates object obj's counters for drain
	// shard `shard`; the slots merge after the run (integer sums and a
	// max — order-independent, hence bit-identical at any worker count).
	resS [][]loop.Result
}

// effectiveWorkers normalizes spec.Workers against everything the
// parallel drain cannot reproduce bit-identically.
func effectiveWorkers(step Stepper, spec Spec) int {
	if spec.Workers <= 1 {
		return 1
	}
	if _, ok := step.(ShardSafe); !ok {
		return 1
	}
	if spec.Arbitration != sim.ArbFIFO || spec.Scheduler != sim.SchedLadder {
		return 1
	}
	return spec.Workers
}

// eventBudget is the divergence guard: each request costs at most ~2n
// message events plus a reply and timers, independent of the object
// count (objects partition the requests, they do not multiply them).
func eventBudget(total int64, n int) int64 {
	return sim.SatAdd(sim.SatMul(total, int64(4*n+8)), 1024)
}

// Run executes the multi-object closed-loop experiment over topo with
// the given object-keyed pointer discipline. proto prefixes error
// messages.
func Run(topo sim.Topology, step Stepper, proto string, spec Spec) (*Result, error) {
	n := topo.NumNodes()
	if spec.PerNode < 1 {
		return nil, fmt.Errorf("%s: PerNode must be >= 1", proto)
	}
	if spec.Objects < 1 {
		return nil, fmt.Errorf("%s: Objects must be >= 1, got %d", proto, spec.Objects)
	}
	if spec.Skew < 0 {
		return nil, fmt.Errorf("%s: Skew must be >= 0, got %g", proto, spec.Skew)
	}
	if spec.Faults != nil {
		return nil, fmt.Errorf("%s: fault plans are not supported on multi-object runs", proto)
	}
	if spec.ObjectRecorders != nil && len(spec.ObjectRecorders) != spec.Objects {
		return nil, fmt.Errorf("%s: ObjectRecorders has %d entries for %d objects",
			proto, len(spec.ObjectRecorders), spec.Objects)
	}
	k := spec.Objects
	workers := effectiveWorkers(step, spec)
	total := int64(spec.PerNode) * int64(n)
	st := &state{
		spec:      spec,
		step:      step,
		proto:     proto,
		zipf:      workload.NewZipf(k, spec.Skew),
		issueTime: make([]sim.Time, n),
		hops:      make([]int32, n),
		issued:    make([]int32, n),
		remaining: make([]int32, n),
		msgs:      make([]findMsg, n),
		resS:      make([][]loop.Result, workers),
	}
	for i := range st.resS {
		st.resS[i] = make([]loop.Result, k)
	}
	for v := range st.remaining {
		st.remaining[v] = int32(spec.PerNode)
		st.msgs[v].origin = graph.NodeID(v)
	}
	scfg := sim.Config{
		Topology:    topo,
		Latency:     spec.Latency,
		Arbitration: spec.Arbitration,
		Seed:        spec.Seed,
		MaxEvents:   eventBudget(total, n),
		Scheduler:   spec.Scheduler,
		Workers:     workers,
		LinkTxTime:  spec.LinkTxTime,
	}
	if err := scfg.Validate(); err != nil {
		return nil, fmt.Errorf("%s shard loop: %w", proto, err)
	}
	s := sim.New(scfg)
	s.SetAllHandlers(st.handle)
	s.SetTimerHandler(st.issue)
	for v := 0; v < n; v++ {
		s.ScheduleNodeAt(0, graph.NodeID(v))
	}
	makespan := s.Run()
	if spec.DrainStats != nil {
		*spec.DrainStats = s.DrainStats()
	}
	res := st.merge(n, k)
	res.Agg.Makespan = makespan
	res.Agg.Events = s.EventsProcessed()
	if res.Agg.Requests != total {
		return nil, fmt.Errorf("%s: multi-object loop completed %d of %d requests",
			proto, res.Agg.Requests, total)
	}
	return res, nil
}

// merge folds the per-shard, per-object accumulator slots into the
// per-object results and their aggregate.
func (st *state) merge(n, k int) *Result {
	res := &Result{
		N:         n,
		Objects:   k,
		Agg:       loop.Result{N: n},
		PerObject: make([]loop.Result, k),
	}
	for o := 0; o < k; o++ {
		po := &res.PerObject[o]
		po.N = n
		for s := range st.resS {
			r := &st.resS[s][o]
			po.Requests += r.Requests
			po.QueueHops += r.QueueHops
			po.ReplyHops += r.ReplyHops
			po.LocalCompletions += r.LocalCompletions
			po.TotalLatency += r.TotalLatency
			if r.MaxQueueHops > po.MaxQueueHops {
				po.MaxQueueHops = r.MaxQueueHops
			}
		}
		res.Agg.Requests += po.Requests
		res.Agg.QueueHops += po.QueueHops
		res.Agg.ReplyHops += po.ReplyHops
		res.Agg.LocalCompletions += po.LocalCompletions
		res.Agg.TotalLatency += po.TotalLatency
		if po.MaxQueueHops > res.Agg.MaxQueueHops {
			res.Agg.MaxQueueHops = po.MaxQueueHops
		}
	}
	return res
}

//arrow:hotpath one call per request issued (object draw included)
func (st *state) issue(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	st.remaining[v]--
	idx := st.issued[v]
	st.issued[v]++
	obj := st.zipf.Draw(st.spec.Seed, v, int64(idx))
	st.issueTime[v] = ctx.Now()

	target, local := st.step.StartFind(obj, v)
	if local {
		st.hops[v] = 0
		st.completeAt(ctx, obj, v, v)
		return
	}
	st.hops[v] = 1
	st.msgs[v].obj = obj
	ctx.Send(v, target, &st.msgs[v])
}

//arrow:hotpath one call per delivered find/reply message
func (st *state) handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *findMsg:
		next, done := st.step.ForwardFind(m.obj, at, from, m.origin)
		if done {
			st.completeAt(ctx, m.obj, m.origin, at)
			return
		}
		st.hops[m.origin]++
		ctx.Send(at, next, m)
	case *replyMsg:
		st.scheduleNext(ctx, at)
	default:
		panic(fmt.Sprintf("%s: unexpected message %T", st.proto, msg))
	}
}

// completeAt records the queuing of origin's current request for obj at
// sink and notifies the requester. Counters land in the context's shard
// slot for the object, and both the per-object and aggregate recordings
// route through the context, which keeps the parallel drain race-free
// and the recorders' accumulation order serial.
func (st *state) completeAt(ctx *sim.Context, obj int32, origin, sink graph.NodeID) {
	res := &st.resS[ctx.Shard()][obj]
	lat := int64(ctx.Now() - st.issueTime[origin])
	h := int(st.hops[origin])
	res.Requests++
	res.TotalLatency += lat
	res.QueueHops += int64(h)
	if h > res.MaxQueueHops {
		res.MaxQueueHops = h
	}
	ctx.RecordRequest(st.spec.Recorder, lat, h)
	if st.spec.ObjectRecorders != nil {
		ctx.RecordRequest(st.spec.ObjectRecorders[obj], lat, h)
	}
	if origin == sink {
		res.LocalCompletions++
		st.scheduleNext(ctx, origin)
		return
	}
	res.ReplyHops++
	ctx.Send(sink, origin, &st.rep)
}

func (st *state) scheduleNext(ctx *sim.Context, v graph.NodeID) {
	if st.remaining[v] == 0 {
		return
	}
	think := st.spec.ThinkTime
	if think <= 0 {
		think = 1
	}
	ctx.AfterNode(think, v)
}
