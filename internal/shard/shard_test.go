package shard_test

import (
	"reflect"
	"testing"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/nta"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
)

// steppers builds one shard stepper per protocol for an n-node, k-object
// run; the table drives the cross-protocol tests.
func steppers(t *testing.T, n, k int) map[string]shard.Stepper {
	t.Helper()
	forest, err := arrow.NewShardForest(n, k)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := nta.NewShardReversal(n, k)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := ivy.NewShardDirectory(n, k)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := centralized.NewShardCenters(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]shard.Stepper{
		"arrow":       forest,
		"nta":         rev,
		"ivy":         dir,
		"centralized": ctr,
	}
}

// TestSingleObjectMatchesLoop pins the shard driver's degenerate case to
// the single-object driver it generalizes: with one object, NTA through
// the shard driver over the complete metric must reproduce the loop
// driver's counters exactly (same pointer discipline, same direct
// replies, same think-time schedule).
func TestSingleObjectMatchesLoop(t *testing.T) {
	const n, perNode = 24, 50
	topo := sim.NewCompleteTopology(n)

	rev, err := nta.NewShardReversal(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shard.Run(topo, rev, "nta", shard.Spec{
		Spec:    loop.Spec{PerNode: perNode, Seed: 7},
		Objects: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	want, err := nta.RunClosedLoopTopo(topo, nta.LoopConfig{
		Spec: loop.Spec{PerNode: perNode, Seed: 7},
		Root: 0,
	})
	if err != nil {
		t.Fatal(err)
	}

	if got.Agg.Requests != want.Requests ||
		got.Agg.QueueHops != want.QueueHops ||
		got.Agg.ReplyHops != want.ReplyHops ||
		got.Agg.LocalCompletions != want.LocalCompletions ||
		got.Agg.TotalLatency != want.TotalLatency ||
		got.Agg.MaxQueueHops != want.MaxQueueHops ||
		got.Agg.Makespan != want.Makespan {
		t.Errorf("single-object shard run diverged from loop run:\n shard %+v\n loop  %+v",
			got.Agg, *want)
	}
}

// TestNTAMatchesIvy extends the protocols' step-for-step identity (see
// nta's reversalStepper note) to the multi-object tier.
func TestNTAMatchesIvy(t *testing.T) {
	const n, k, perNode = 16, 8, 20
	spec := shard.Spec{
		Spec:    loop.Spec{PerNode: perNode, Seed: 3},
		Objects: k,
		Skew:    1.1,
	}
	rev, err := nta.NewShardReversal(n, k)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := ivy.NewShardDirectory(n, k)
	if err != nil {
		t.Fatal(err)
	}
	a, err := shard.Run(sim.NewCompleteTopology(n), rev, "nta", spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := shard.Run(sim.NewCompleteTopology(n), dir, "ivy", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nta and ivy shard runs diverged:\n nta %+v\n ivy %+v", a.Agg, b.Agg)
	}
}

// TestCrossWorkerBitIdentity is the shard tier's determinism gate:
// every protocol's full result — aggregate, every per-object counter
// set, and per-object latency histogram snapshots — must be
// bit-identical between the serial drain and the parallel drain.
func TestCrossWorkerBitIdentity(t *testing.T) {
	const n, k, perNode = 32, 64, 30
	run := func(name string, workers int) (*shard.Result, []stats.Dist) {
		recs := make([]stats.Recorder, k)
		dists := make([]*stats.DistRecorder, k)
		for o := range recs {
			dists[o] = stats.NewDistRecorder()
			recs[o] = dists[o]
		}
		step := steppers(t, n, k)[name]
		res, err := shard.Run(sim.NewCompleteTopology(n), step, name, shard.Spec{
			Spec:            loop.Spec{PerNode: perNode, Seed: 11, Workers: workers, LinkTxTime: 1},
			Objects:         k,
			Skew:            1.1,
			ObjectRecorders: recs,
		})
		if err != nil {
			t.Fatal(err)
		}
		snaps := make([]stats.Dist, k)
		for o := range snaps {
			snaps[o] = dists[o].Latency.Snapshot()
		}
		return res, snaps
	}
	for _, name := range []string{"arrow", "nta", "ivy", "centralized"} {
		t.Run(name, func(t *testing.T) {
			serial, serialSnaps := run(name, 1)
			parallel, parallelSnaps := run(name, 4)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("results diverge across worker counts:\n serial   %+v\n parallel %+v",
					serial.Agg, parallel.Agg)
			}
			if !reflect.DeepEqual(serialSnaps, parallelSnaps) {
				t.Errorf("per-object histogram snapshots diverge across worker counts")
			}
		})
	}
}

// TestObjectConservation checks the per-object partition: object request
// counts must sum to the total and match the Zipf draws exactly.
func TestObjectConservation(t *testing.T) {
	const n, k, perNode = 16, 32, 25
	spec := shard.Spec{
		Spec:    loop.Spec{PerNode: perNode, Seed: 5},
		Objects: k,
		Skew:    1.1,
	}
	step := steppers(t, n, k)["arrow"]
	res, err := shard.Run(sim.NewCompleteTopology(n), step, "arrow", spec)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, po := range res.PerObject {
		sum += po.Requests
	}
	if sum != res.Agg.Requests || sum != int64(n)*perNode {
		t.Errorf("per-object requests sum to %d, want %d", sum, int64(n)*perNode)
	}
}

// TestHotObjectSkew pins the Zipf head: at s = 1.1 the hottest object
// must draw strictly more requests than the coldest, and the head
// object's share must dominate the uniform share.
func TestHotObjectSkew(t *testing.T) {
	const n, k, perNode = 16, 32, 50
	spec := shard.Spec{
		Spec:    loop.Spec{PerNode: perNode, Seed: 9},
		Objects: k,
		Skew:    1.1,
	}
	step := steppers(t, n, k)["nta"]
	res, err := shard.Run(sim.NewCompleteTopology(n), step, "nta", spec)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(n) * perNode
	hot := res.PerObject[0].Requests
	cold := res.PerObject[k-1].Requests
	if hot <= cold {
		t.Errorf("object 0 drew %d requests, tail object %d — skew inverted", hot, cold)
	}
	if hot*int64(k) <= 2*total {
		t.Errorf("hot object's share %d/%d does not dominate the uniform share", hot, total)
	}
}

// TestSharedLinkCapacity checks the contention model end to end: with a
// positive LinkTxTime the shared links serialize the combined traffic,
// so the same multi-object run must take strictly longer than with
// infinite capacity, while completing the same requests.
func TestSharedLinkCapacity(t *testing.T) {
	const n, k, perNode = 16, 8, 40
	run := func(tx sim.Time) *shard.Result {
		step := steppers(t, n, k)["centralized"]
		res, err := shard.Run(sim.NewCompleteTopology(n), step, "centralized", shard.Spec{
			Spec:    loop.Spec{PerNode: perNode, Seed: 2, LinkTxTime: tx},
			Objects: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(0)
	capped := run(4)
	if capped.Agg.Requests != free.Agg.Requests {
		t.Fatalf("capacity changed the request count: %d vs %d",
			capped.Agg.Requests, free.Agg.Requests)
	}
	if capped.Agg.Makespan <= free.Agg.Makespan {
		t.Errorf("LinkTxTime=4 makespan %d not longer than uncapped %d",
			capped.Agg.Makespan, free.Agg.Makespan)
	}
	if capped.Agg.TotalLatency <= free.Agg.TotalLatency {
		t.Errorf("LinkTxTime=4 total latency %d not above uncapped %d",
			capped.Agg.TotalLatency, free.Agg.TotalLatency)
	}
}

// TestSpecValidation covers the driver's refusal cases.
func TestSpecValidation(t *testing.T) {
	const n = 8
	step := steppers(t, n, 4)["nta"]
	cases := []struct {
		name string
		spec shard.Spec
	}{
		{"zero objects", shard.Spec{Spec: loop.Spec{PerNode: 1}}},
		{"negative skew", shard.Spec{Spec: loop.Spec{PerNode: 1}, Objects: 4, Skew: -1}},
		{"no requests", shard.Spec{Objects: 4}},
		{"faults", shard.Spec{
			Spec:    loop.Spec{PerNode: 1, Faults: &sim.FaultPlan{}},
			Objects: 4,
		}},
		{"recorder length", shard.Spec{
			Spec:            loop.Spec{PerNode: 1},
			Objects:         4,
			ObjectRecorders: make([]stats.Recorder, 3),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := shard.Run(sim.NewCompleteTopology(n), step, "nta", tc.spec); err == nil {
				t.Errorf("spec %+v was accepted", tc.spec)
			}
		})
	}
}
