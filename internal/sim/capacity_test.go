package sim

import (
	"testing"

	"repro/internal/graph"
)

// TestLinkTxTimeSpacesBurst pins the capacity model's core contract: a
// burst of b messages sent into one link at the same instant departs
// spaced LinkTxTime apart, so the arrivals spread over b·LinkTxTime
// instead of landing together.
func TestLinkTxTimeSpacesBurst(t *testing.T) {
	s := New(Config{Topology: lineTopology(2), LinkTxTime: 3})
	var arrived []Time
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		arrived = append(arrived, ctx.Now())
	})
	s.ScheduleAt(0, func(ctx *Context) {
		for i := 0; i < 4; i++ {
			ctx.Send(0, 1, i)
		}
	})
	s.Run()
	// Departures 0, 3, 6, 9; synchronous delivery adds one unit.
	want := []Time{1, 4, 7, 10}
	if len(arrived) != len(want) {
		t.Fatalf("got %d arrivals, want %d", len(arrived), len(want))
	}
	for i, at := range arrived {
		if at != want[i] {
			t.Fatalf("arrival times %v, want %v", arrived, want)
		}
	}
}

// TestLinkTxTimePerLink pins that capacity is per directed link, not
// global: simultaneous bursts on two different links serialize
// independently and land at the same instants.
func TestLinkTxTimePerLink(t *testing.T) {
	s := New(Config{Topology: lineTopology(3), LinkTxTime: 2})
	arrivals := map[graph.NodeID][]Time{}
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		arrivals[from] = append(arrivals[from], ctx.Now())
	})
	s.ScheduleAt(0, func(ctx *Context) {
		for i := 0; i < 3; i++ {
			ctx.Send(0, 1, i) // link 0->1
			ctx.Send(2, 1, i) // link 2->1
		}
	})
	s.Run()
	want := []Time{1, 3, 5}
	for _, from := range []graph.NodeID{0, 2} {
		got := arrivals[from]
		if len(got) != len(want) {
			t.Fatalf("link %d->1: %d arrivals, want %d", from, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("link %d->1 arrivals %v, want %v (cross-link interference?)", from, got, want)
			}
		}
	}
}

// TestLinkTxTimeZeroIsInfiniteCapacity pins the default: with
// LinkTxTime 0 the same burst arrives together, exactly as before the
// capacity model existed.
func TestLinkTxTimeZeroIsInfiniteCapacity(t *testing.T) {
	s := New(Config{Topology: lineTopology(2)})
	var arrived []Time
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		arrived = append(arrived, ctx.Now())
	})
	s.ScheduleAt(0, func(ctx *Context) {
		for i := 0; i < 4; i++ {
			ctx.Send(0, 1, i)
		}
	})
	if end := s.Run(); end != 1 {
		t.Errorf("makespan %d, want 1", end)
	}
	for _, at := range arrived {
		if at != 1 {
			t.Fatalf("arrival times %v, want all 1", arrived)
		}
	}
}

// TestLinkTxTimeKeepsFIFO: serialization must not reorder a link's
// messages, including under a randomized latency model whose draws
// would otherwise interleave them.
func TestLinkTxTimeKeepsFIFO(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := New(Config{
			Topology:   lineTopology(2),
			Latency:    AsyncUniform(50),
			Seed:       seed,
			LinkTxTime: 3,
		})
		var got []int
		s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
			got = append(got, msg.(int))
		})
		s.ScheduleAt(0, func(ctx *Context) {
			for i := 0; i < 20; i++ {
				ctx.Send(0, 1, i)
			}
		})
		s.Run()
		if len(got) != 20 {
			t.Fatalf("seed %d: %d deliveries, want 20", seed, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: FIFO violated under capacity: got %v", seed, got)
			}
		}
	}
}

// TestNegativeLinkTxTimePanics: a negative capacity is a config bug.
func TestNegativeLinkTxTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative LinkTxTime")
		}
	}()
	New(Config{Topology: lineTopology(2), LinkTxTime: -1})
}
