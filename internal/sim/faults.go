package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/tree"
)

// FaultKind discriminates fault-plan transitions.
type FaultKind uint8

const (
	// LinkDown takes the undirected link {U, V} out of service.
	LinkDown FaultKind = iota
	// LinkUp restores the undirected link {U, V}.
	LinkUp
	// NodeDown takes node U out of service: it receives no messages, and
	// its node timers are deferred until it returns.
	NodeDown
	// NodeUp restores node U.
	NodeUp
)

func (k FaultKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent is one scheduled liveness transition. Link events name the
// undirected pair {U, V} (both directions fail together); node events
// name U and ignore V.
type FaultEvent struct {
	At   Time
	Kind FaultKind
	U, V graph.NodeID
}

// FaultPolicy selects what happens to a message whose source, destination
// or link is down.
type FaultPolicy uint8

const (
	// FaultDrop loses the message (the default): the sender gets no
	// signal in-protocol, but the registered BlockedHandler is told, so
	// drivers can model loss detection without hidden global knowledge.
	FaultDrop FaultPolicy = iota
	// FaultQueue stalls the message: it is delivered after the blocking
	// entity recovers (its normal latency is charged after the recovery
	// instant). Per-link FIFO order is preserved.
	FaultQueue
)

func (p FaultPolicy) String() string {
	if p == FaultQueue {
		return "queue"
	}
	return "drop"
}

// FaultNever is the recovery time reported for an entity whose plan never
// brings it back up. BlockedHandler receives it for drops caused by a
// permanent failure; closed-loop drivers treat it as "unserviceable".
const FaultNever Time = math.MaxInt64

// FaultPlan is a deterministic schedule of liveness transitions enforced
// by the simulator. The plan is immutable once handed to a simulator and
// may be shared read-only across concurrently swept experiment cells;
// each simulator compiles its own mutable liveness state from it. A nil
// plan (or one with no events) leaves every run bit-identical to a
// fault-free simulator.
type FaultPlan struct {
	// Policy selects drop vs queue semantics for blocked messages.
	Policy FaultPolicy
	// Events is the transition schedule; it need not be sorted.
	Events []FaultEvent
}

// Validate checks the plan against a topology: event bounds, link events
// naming connected pairs, and per-entity alternation (a Down may only be
// followed by a matching Up, and an Up requires a preceding Down). A
// trailing Down with no Up is legal — a permanent failure.
func (p *FaultPlan) Validate(topo Topology) error {
	if p == nil {
		return nil
	}
	n := topo.NumNodes()
	order := sortedEventIndex(p.Events)
	nodeDown := make(map[graph.NodeID]bool)
	linkDown := make(map[linkKey]bool)
	for _, i := range order {
		ev := p.Events[i]
		if ev.At < 0 {
			return fmt.Errorf("sim: fault event %d at negative time %d", i, ev.At)
		}
		switch ev.Kind {
		case LinkDown, LinkUp:
			if int(ev.U) < 0 || int(ev.U) >= n || int(ev.V) < 0 || int(ev.V) >= n {
				return fmt.Errorf("sim: fault event %d link {%d,%d} out of range", i, ev.U, ev.V)
			}
			if _, ok := topo.Latency(ev.U, ev.V); !ok {
				return fmt.Errorf("sim: fault event %d link {%d,%d} is not a topology link", i, ev.U, ev.V)
			}
			key := canonicalLink(ev.U, ev.V)
			if ev.Kind == LinkDown {
				if linkDown[key] {
					return fmt.Errorf("sim: link {%d,%d} taken down twice without an up", ev.U, ev.V)
				}
				linkDown[key] = true
			} else {
				if !linkDown[key] {
					return fmt.Errorf("sim: link {%d,%d} brought up while already up", ev.U, ev.V)
				}
				delete(linkDown, key)
			}
		case NodeDown, NodeUp:
			if int(ev.U) < 0 || int(ev.U) >= n {
				return fmt.Errorf("sim: fault event %d node %d out of range", i, ev.U)
			}
			if ev.Kind == NodeDown {
				if nodeDown[ev.U] {
					return fmt.Errorf("sim: node %d taken down twice without an up", ev.U)
				}
				nodeDown[ev.U] = true
			} else {
				if !nodeDown[ev.U] {
					return fmt.Errorf("sim: node %d brought up while already up", ev.U)
				}
				delete(nodeDown, ev.U)
			}
		default:
			return fmt.Errorf("sim: fault event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// Healing reports whether every Down event has a matching Up — the
// precondition of closed-loop workloads, which cannot drain requests
// issued at (or routed through) a permanently dead entity.
func (p *FaultPlan) Healing() bool {
	if p == nil {
		return true
	}
	down := 0
	for _, ev := range p.Events {
		switch ev.Kind {
		case LinkDown, NodeDown:
			down++
		case LinkUp, NodeUp:
			down--
		}
	}
	return down == 0
}

func canonicalLink(u, v graph.NodeID) linkKey {
	if u > v {
		u, v = v, u
	}
	return linkKey{u, v}
}

// sortedEventIndex returns event indices in (At, index) order — the order
// transitions apply in, stable so equal-time events keep slice order.
func sortedEventIndex(events []FaultEvent) []int {
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return events[order[a]].At < events[order[b]].At
	})
	return order
}

// compiledFault is one scheduled transition with its precomputed recovery
// time (the matching Up's time; FaultNever for a permanent Down).
type compiledFault struct {
	ev   FaultEvent
	upAt Time
}

// FaultObserver is told each fault transition as it applies. It runs
// inside event processing and may inspect liveness and schedule work via
// ctx, like any handler.
type FaultObserver func(ctx *Context, ev FaultEvent)

// BlockedHandler is told each message blocked by a fault: dropped
// (policy FaultDrop, or a permanent failure under FaultQueue) or stalled
// until upAt (policy FaultQueue). It fires at the enforcement point —
// send time, or delivery time when the destination died while the
// message was in flight.
type BlockedHandler func(ctx *Context, from, to graph.NodeID, msg Message, upAt Time, dropped bool)

// faultState is a simulator's compiled, mutable view of its FaultPlan.
type faultState struct {
	policy FaultPolicy
	// compiled transitions, in (At, plan index) order.
	events []compiledFault
	// nodeUpAt[v] != 0 means v is down until that time (FaultNever for a
	// permanent failure). Transition times are >= 0 and Ups strictly
	// follow Downs, so 0 is never a legal recovery time.
	nodeUpAt []Time
	// linkUpAt mirrors nodeUpAt per directed link slot (LinkIndexer
	// topologies); downLinks is the map fallback.
	linkUpAt  []Time
	downLinks map[linkKey]Time
	// active counts entities currently down.
	active int

	dropped       int64
	deferred      int64
	timerDeferred int64
	timerDropped  int64
}

// compileFaults validates and compiles a plan for one simulator. It never
// mutates the plan, so a plan can back many concurrent simulators.
func compileFaults(p *FaultPlan, topo Topology, li LinkIndexer) *faultState {
	if p == nil || len(p.Events) == 0 {
		return nil
	}
	if err := p.Validate(topo); err != nil {
		panic(err)
	}
	order := sortedEventIndex(p.Events)
	f := &faultState{
		policy:   p.Policy,
		events:   make([]compiledFault, 0, len(order)),
		nodeUpAt: make([]Time, topo.NumNodes()),
	}
	if li != nil {
		f.linkUpAt = make([]Time, li.NumLinks())
	} else {
		f.downLinks = make(map[linkKey]Time)
	}
	// Match each Down with its Up to precompute recovery times.
	for pos, i := range order {
		ev := p.Events[i]
		cf := compiledFault{ev: ev, upAt: FaultNever}
		if ev.Kind == LinkDown || ev.Kind == NodeDown {
			for _, j := range order[pos+1:] {
				up := p.Events[j]
				if ev.Kind == LinkDown && up.Kind == LinkUp &&
					canonicalLink(up.U, up.V) == canonicalLink(ev.U, ev.V) {
					cf.upAt = up.At
					break
				}
				if ev.Kind == NodeDown && up.Kind == NodeUp && up.U == ev.U {
					cf.upAt = up.At
					break
				}
			}
		}
		f.events = append(f.events, cf)
	}
	return f
}

// scheduleFaults pushes every compiled transition into the event queue,
// in compile order so equal-time transitions keep plan order under FIFO
// arbitration. Fault transitions ride the same ladder queue as protocol
// events, preserving the scheduler's total order and zero-alloc path.
func (s *Simulator) scheduleFaults() {
	if s.f == nil {
		return
	}
	for i := range s.f.events {
		cf := &s.f.events[i]
		s.push(event{at: cf.ev.At, kind: evFault, msg: cf})
	}
}

// applyFault realizes one transition and tells the observer.
func (s *Simulator) applyFault(ctx *Context, cf *compiledFault) {
	f := s.f
	ev := cf.ev
	switch ev.Kind {
	case LinkDown:
		f.setLink(s, ev.U, ev.V, cf.upAt)
		f.active++
	case LinkUp:
		f.setLink(s, ev.U, ev.V, 0)
		f.active--
	case NodeDown:
		f.nodeUpAt[ev.U] = cf.upAt
		f.active++
	case NodeUp:
		f.nodeUpAt[ev.U] = 0
		f.active--
	}
	if s.faultH != nil {
		s.faultH(ctx, ev)
	}
}

func (f *faultState) setLink(s *Simulator, u, v graph.NodeID, upAt Time) {
	if f.linkUpAt != nil {
		f.linkUpAt[s.linkIdx.LinkIndex(u, v)] = upAt
		f.linkUpAt[s.linkIdx.LinkIndex(v, u)] = upAt
		return
	}
	key := canonicalLink(u, v)
	if upAt == 0 {
		delete(f.downLinks, key)
	} else {
		f.downLinks[key] = upAt
	}
}

// blockedUntil returns the recovery time of whatever blocks a u -> v
// message, or 0 if nothing does. With several blockers it returns the
// latest recovery.
func (f *faultState) blockedUntil(s *Simulator, u, v graph.NodeID) Time {
	up := f.nodeUpAt[u]
	if t := f.nodeUpAt[v]; t > up {
		up = t
	}
	if f.linkUpAt != nil {
		if t := f.linkUpAt[s.linkIdx.LinkIndex(u, v)]; t > up {
			up = t
		}
	} else if t := f.downLinks[canonicalLink(u, v)]; t > up {
		up = t
	}
	return up
}

// ActiveFaults returns the number of entities (links and nodes) currently
// down; 0 means the network is fully healed.
func (s *Simulator) ActiveFaults() int {
	if s.f == nil {
		return 0
	}
	return s.f.active
}

// MessagesDropped returns the number of messages lost to faults.
func (s *Simulator) MessagesDropped() int64 {
	if s.f == nil {
		return 0
	}
	return s.f.dropped
}

// MessagesDeferred returns the number of messages stalled by faults
// (policy FaultQueue).
func (s *Simulator) MessagesDeferred() int64 {
	if s.f == nil {
		return 0
	}
	return s.f.deferred
}

// TimersDeferred returns the number of node timers deferred because their
// node was down when they fired.
func (s *Simulator) TimersDeferred() int64 {
	if s.f == nil {
		return 0
	}
	return s.f.timerDeferred
}

// ActiveFaults re-exposes Simulator.ActiveFaults to handlers.
func (c *Context) ActiveFaults() int { return c.s.ActiveFaults() }

// NodeDownUntil returns the time at which v recovers (FaultNever for a
// permanent failure), or 0 if v is up.
func (c *Context) NodeDownUntil(v graph.NodeID) Time {
	if c.s.f == nil {
		return 0
	}
	return c.s.f.nodeUpAt[v]
}

// TreeLinks enumerates a spanning tree's undirected edges as {child,
// parent} pairs — the candidate set for LinkChurn on a tree topology.
func TreeLinks(t *tree.Tree) [][2]graph.NodeID {
	links := make([][2]graph.NodeID, 0, t.NumNodes()-1)
	for v := 0; v < t.NumNodes(); v++ {
		node := graph.NodeID(v)
		if t.Parent(node) == node {
			continue
		}
		links = append(links, [2]graph.NodeID{node, t.Parent(node)})
	}
	return links
}

// LinkChurn deterministically generates matched down/up episodes for the
// given undirected links: each link independently suffers on average
// failuresPerLink outages, uniformly placed in [start, horizon), each
// lasting 1 + U[0, 2*meanDown) ticks (overlapping draws for one link are
// discarded). Every Down is matched by an Up, so the plan is Healing.
func LinkChurn(links [][2]graph.NodeID, failuresPerLink float64, meanDown, start, horizon Time, seed int64) []FaultEvent {
	var events []FaultEvent
	for i, l := range links {
		churnEpisodes(failuresPerLink, meanDown, start, horizon, DeriveSeed(seed, i),
			func(down, up Time) {
				events = append(events,
					FaultEvent{At: down, Kind: LinkDown, U: l[0], V: l[1]},
					FaultEvent{At: up, Kind: LinkUp, U: l[0], V: l[1]})
			})
	}
	return events
}

// NodeChurn deterministically generates matched down/up episodes for
// nodes [0, n), with the same placement law as LinkChurn. keep, when
// non-nil, excludes nodes it reports false for (e.g. a node that must
// stay up).
func NodeChurn(n int, keep func(graph.NodeID) bool, failuresPerNode float64, meanDown, start, horizon Time, seed int64) []FaultEvent {
	var events []FaultEvent
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		if keep != nil && !keep(node) {
			continue
		}
		churnEpisodes(failuresPerNode, meanDown, start, horizon, DeriveSeed(seed, v),
			func(down, up Time) {
				events = append(events,
					FaultEvent{At: down, Kind: NodeDown, U: node},
					FaultEvent{At: up, Kind: NodeUp, U: node})
			})
	}
	return events
}

// churnEpisodes draws one entity's outage episodes. The count is the
// integer part of rate plus a Bernoulli draw on the fraction; placements
// are sorted and overlapping episodes discarded, so emissions alternate
// down/up per entity.
func churnEpisodes(rate float64, meanDown, start, horizon Time, seed int64, emit func(down, up Time)) {
	if rate <= 0 || horizon <= start {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	count := int(rate)
	if rng.Float64() < rate-float64(count) {
		count++
	}
	if count == 0 {
		return
	}
	span := int64(horizon - start)
	downs := make([]Time, count)
	for i := range downs {
		downs[i] = start + Time(rng.Int63n(span))
	}
	durs := make([]Time, count)
	for i := range durs {
		d := Time(1)
		if meanDown > 0 {
			d = 1 + Time(rng.Int63n(int64(2*meanDown)))
		}
		durs[i] = d
	}
	sort.Slice(downs, func(i, j int) bool { return downs[i] < downs[j] })
	var lastUp Time = -1
	for i, d := range downs {
		if d <= lastUp {
			continue
		}
		up := d + durs[i]
		emit(d, up)
		lastUp = up
	}
}
