package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
)

// pingPong runs a two-node ping-pong for `rounds` messages under the
// given plan, returning per-arrival times and the drop count.
func pingPong(t *testing.T, plan *FaultPlan, rounds int) ([]Time, *Simulator) {
	t.Helper()
	tr := tree.PathTree(2)
	s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan})
	var arrivals []Time
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		arrivals = append(arrivals, ctx.Now())
		if len(arrivals) < rounds {
			ctx.Send(at, from, msg)
		}
	})
	s.ScheduleAt(0, func(ctx *Context) { ctx.Send(0, 1, struct{}{}) })
	s.Run()
	return arrivals, s
}

// TestNilAndEmptyPlansAreInert: a nil plan and an empty plan produce the
// exact same trace as no plan at all.
func TestNilAndEmptyPlansAreInert(t *testing.T) {
	base, _ := pingPong(t, nil, 6)
	empty, s := pingPong(t, &FaultPlan{}, 6)
	if !reflect.DeepEqual(base, empty) {
		t.Errorf("empty plan diverged: %v vs %v", empty, base)
	}
	if s.MessagesDropped() != 0 || s.ActiveFaults() != 0 {
		t.Error("empty plan reported fault activity")
	}
}

// TestLinkDownDropsInWindow: with the drop policy, exactly the messages
// sent during the outage are lost and the BlockedHandler reports them
// with the recovery time.
func TestLinkDownDropsInWindow(t *testing.T) {
	tr := tree.PathTree(2)
	plan := &FaultPlan{Events: []FaultEvent{
		{At: 3, Kind: LinkDown, U: 0, V: 1},
		{At: 7, Kind: LinkUp, U: 0, V: 1},
	}}
	s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan})
	var delivered, blocked []Time
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		delivered = append(delivered, ctx.Now())
	})
	s.SetBlockedHandler(func(ctx *Context, from, to graph.NodeID, msg Message, upAt Time, dropped bool) {
		if !dropped || upAt != 7 {
			t.Errorf("blocked handler: upAt=%d dropped=%v, want 7/true", upAt, dropped)
		}
		blocked = append(blocked, ctx.Now())
	})
	for i := Time(0); i < 10; i++ {
		at := i
		s.ScheduleAt(at, func(ctx *Context) { ctx.Send(0, 1, struct{}{}) })
	}
	s.Run()
	// Sends at t in [3, 7) are blocked (the down event applies before the
	// same-tick sends under FIFO; the up event restores t=7 sends).
	if want := []Time{3, 4, 5, 6}; !reflect.DeepEqual(blocked, want) {
		t.Errorf("blocked at %v, want %v", blocked, want)
	}
	if s.MessagesDropped() != 4 {
		t.Errorf("dropped = %d, want 4", s.MessagesDropped())
	}
	if len(delivered) != 6 {
		t.Errorf("delivered %d messages, want 6", len(delivered))
	}
}

// TestQueuePolicyDefersAndKeepsFIFO: under FaultQueue nothing is lost;
// blocked messages deliver after the heal, without overtaking.
func TestQueuePolicyDefersAndKeepsFIFO(t *testing.T) {
	tr := tree.PathTree(2)
	plan := &FaultPlan{Policy: FaultQueue, Events: []FaultEvent{
		{At: 2, Kind: LinkDown, U: 0, V: 1},
		{At: 10, Kind: LinkUp, U: 0, V: 1},
	}}
	s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan})
	type arrival struct {
		at  Time
		seq int
	}
	var got []arrival
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		got = append(got, arrival{ctx.Now(), msg.(int)})
	})
	for i := 0; i < 6; i++ {
		seq := i
		s.ScheduleAt(Time(i), func(ctx *Context) { ctx.Send(0, 1, seq) })
	}
	s.Run()
	if s.MessagesDropped() != 0 {
		t.Fatalf("queue policy dropped %d messages", s.MessagesDropped())
	}
	if s.MessagesDeferred() != 4 {
		t.Errorf("deferred = %d, want 4", s.MessagesDeferred())
	}
	want := []arrival{{1, 0}, {2, 1}, {11, 2}, {11, 3}, {11, 4}, {11, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("arrivals %v, want %v", got, want)
	}
}

// TestNodeDownGatesTimersAndDelivery: a down node's timers defer to its
// recovery, and messages that were in flight when it died are blocked at
// delivery time.
func TestNodeDownGatesTimersAndDelivery(t *testing.T) {
	tr := tree.PathTree(3)
	plan := &FaultPlan{Events: []FaultEvent{
		{At: 4, Kind: NodeDown, U: 1},
		{At: 9, Kind: NodeUp, U: 1},
	}}
	s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan})
	var timerAt Time
	var droppedInFlight bool
	s.SetTimerHandler(func(ctx *Context, v graph.NodeID) { timerAt = ctx.Now() })
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		t.Errorf("message delivered to %d at %d; all sends target the dead window", at, ctx.Now())
	})
	s.SetBlockedHandler(func(ctx *Context, from, to graph.NodeID, msg Message, upAt Time, dropped bool) {
		if to == 1 && dropped {
			droppedInFlight = true
		}
	})
	s.ScheduleNodeAt(5, 1) // timer during the outage: defers to t=9
	// Sent at t=3 (node up), arrives t=4 when the node is down: blocked
	// at delivery.
	s.ScheduleAt(3, func(ctx *Context) { ctx.Send(0, 1, struct{}{}) })
	s.Run()
	if timerAt != 9 {
		t.Errorf("deferred timer fired at %d, want 9", timerAt)
	}
	if s.TimersDeferred() != 1 {
		t.Errorf("timers deferred = %d, want 1", s.TimersDeferred())
	}
	if !droppedInFlight {
		t.Error("in-flight message to a dead node was not blocked at delivery")
	}
}

// TestFaultObserverSeesTransitionsInOrder: the observer runs for every
// transition with the liveness state already updated, and ActiveFaults
// tracks the down count.
func TestFaultObserverSeesTransitionsInOrder(t *testing.T) {
	tr := tree.PathTree(3)
	plan := &FaultPlan{Events: []FaultEvent{
		{At: 8, Kind: NodeUp, U: 2},
		{At: 2, Kind: NodeDown, U: 2},
		{At: 4, Kind: LinkDown, U: 0, V: 1},
		{At: 6, Kind: LinkUp, U: 0, V: 1},
	}}
	s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan})
	var seen []string
	s.SetFaultObserver(func(ctx *Context, ev FaultEvent) {
		seen = append(seen, fmt.Sprintf("%d:%v(active=%d)", ctx.Now(), ev.Kind, ctx.ActiveFaults()))
		if ev.Kind == NodeDown && ctx.NodeDownUntil(ev.U) != 8 {
			t.Errorf("NodeDownUntil = %d, want 8", ctx.NodeDownUntil(ev.U))
		}
	})
	s.Run()
	want := []string{
		"2:node-down(active=1)", "4:link-down(active=2)",
		"6:link-up(active=1)", "8:node-up(active=0)",
	}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("observer saw %v, want %v", seen, want)
	}
}

// TestPlanValidation rejects malformed plans.
func TestPlanValidation(t *testing.T) {
	topo := TreeTopology{T: tree.PathTree(3)}
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"up without down", FaultPlan{Events: []FaultEvent{{At: 1, Kind: LinkUp, U: 0, V: 1}}}},
		{"double down", FaultPlan{Events: []FaultEvent{
			{At: 1, Kind: NodeDown, U: 1}, {At: 2, Kind: NodeDown, U: 1}}}},
		{"non-link", FaultPlan{Events: []FaultEvent{{At: 1, Kind: LinkDown, U: 0, V: 2}}}},
		{"out of range", FaultPlan{Events: []FaultEvent{{At: 1, Kind: NodeDown, U: 9}}}},
		{"negative time", FaultPlan{Events: []FaultEvent{{At: -1, Kind: NodeDown, U: 0}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(topo); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	ok := FaultPlan{Events: []FaultEvent{
		{At: 1, Kind: NodeDown, U: 1}, {At: 5, Kind: NodeUp, U: 1},
		{At: 9, Kind: NodeDown, U: 1}, // trailing permanent failure is legal
	}}
	if err := ok.Validate(topo); err != nil {
		t.Errorf("legal plan rejected: %v", err)
	}
	if ok.Healing() {
		t.Error("plan with a permanent failure reported Healing")
	}
	if !(&FaultPlan{}).Healing() || !(*FaultPlan)(nil).Healing() {
		t.Error("empty/nil plans must be Healing")
	}
}

// TestPermanentFailureDropsEvenUnderQueuePolicy: FaultQueue cannot stall
// a message forever; permanent blockage degrades to a reported drop.
func TestPermanentFailureDropsEvenUnderQueuePolicy(t *testing.T) {
	tr := tree.PathTree(2)
	plan := &FaultPlan{Policy: FaultQueue, Events: []FaultEvent{
		{At: 1, Kind: NodeDown, U: 1},
	}}
	s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan})
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		t.Error("message delivered through a permanent failure")
	})
	var gotUpAt Time
	s.SetBlockedHandler(func(ctx *Context, from, to graph.NodeID, msg Message, upAt Time, dropped bool) {
		gotUpAt = upAt
		if !dropped {
			t.Error("permanent blockage must drop")
		}
	})
	s.ScheduleAt(2, func(ctx *Context) { ctx.Send(0, 1, struct{}{}) })
	if s.Run(); gotUpAt != FaultNever {
		t.Errorf("upAt = %d, want FaultNever", gotUpAt)
	}
}

// TestChurnGeneratorsDeterministicAndHealing: churn expansion is a pure
// function of its inputs, produces validated healing plans, and scales
// with the rate.
func TestChurnGeneratorsDeterministicAndHealing(t *testing.T) {
	tr := tree.BalancedBinary(31)
	links := TreeLinks(tr)
	if len(links) != 30 {
		t.Fatalf("TreeLinks returned %d links, want 30", len(links))
	}
	a := LinkChurn(links, 1.5, 20, 10, 500, 7)
	b := LinkChurn(links, 1.5, 20, 10, 500, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("LinkChurn is not deterministic")
	}
	planA := &FaultPlan{Events: a}
	if err := planA.Validate(TreeTopology{T: tr}); err != nil {
		t.Fatalf("generated link plan invalid: %v", err)
	}
	if !planA.Healing() {
		t.Error("generated link plan is not healing")
	}
	nodes := NodeChurn(31, func(v graph.NodeID) bool { return v != 0 }, 1, 20, 10, 500, 7)
	for _, ev := range nodes {
		if ev.U == 0 {
			t.Fatal("NodeChurn ignored the keep filter")
		}
		if ev.At < 10 {
			t.Fatalf("churn event at %d before start", ev.At)
		}
	}
	planN := &FaultPlan{Events: nodes}
	if err := planN.Validate(TreeTopology{T: tr}); err != nil {
		t.Fatalf("generated node plan invalid: %v", err)
	}
	if !planN.Healing() {
		t.Error("generated node plan is not healing")
	}
	lo := len(LinkChurn(links, 0.5, 20, 10, 500, 7))
	hi := len(LinkChurn(links, 4, 20, 10, 500, 7))
	if lo >= hi {
		t.Errorf("churn volume did not grow with rate: %d vs %d", lo, hi)
	}
	if len(LinkChurn(links, 0, 20, 10, 500, 7)) != 0 {
		t.Error("zero rate produced churn")
	}
}

// TestSchedulerEquivalenceWithFaults: the heap and ladder schedulers
// realize the identical trace when fault transitions are interleaved
// with messages and deferred deliveries.
func TestSchedulerEquivalenceWithFaults(t *testing.T) {
	tr := tree.BalancedBinary(15)
	plan := &FaultPlan{Policy: FaultQueue, Events: append(
		LinkChurn(TreeLinks(tr), 2, 10, 5, 200, 3),
		NodeChurn(15, func(v graph.NodeID) bool { return v != 0 }, 1, 10, 5, 200, 4)...)}
	run := func(k SchedulerKind) []string {
		s := New(Config{Topology: TreeTopology{T: tr}, Faults: plan, Scheduler: k})
		var trace []string
		s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
			trace = append(trace, fmt.Sprintf("m:%d:%d<-%d", ctx.Now(), at, from))
			if ctx.Now() < 150 {
				ctx.Send(at, from, msg)
			}
		})
		s.SetFaultObserver(func(ctx *Context, ev FaultEvent) {
			trace = append(trace, fmt.Sprintf("f:%d:%v:%d,%d", ctx.Now(), ev.Kind, ev.U, ev.V))
		})
		for v := 1; v < 15; v++ {
			leaf := graph.NodeID(v)
			s.ScheduleAt(Time(v%3), func(ctx *Context) {
				ctx.Send(leaf, tr.Parent(leaf), struct{}{})
			})
		}
		s.Run()
		trace = append(trace, fmt.Sprintf("end:%d:%d:%d", s.Now(), s.MessagesDropped(), s.MessagesDeferred()))
		return trace
	}
	heap, ladder := run(SchedHeap), run(SchedLadder)
	if !reflect.DeepEqual(heap, ladder) {
		t.Fatalf("schedulers diverged under faults:\nheap n=%d\nladder n=%d", len(heap), len(ladder))
	}
}
