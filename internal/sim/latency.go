package sim

import "math/rand"

// LatencyModel maps an edge's nominal weight to a per-message delay.
// Implementations must return delays in [1, ∞); the simulator additionally
// clamps to >= 1 and enforces link FIFO order.
type LatencyModel interface {
	// Delay returns the delay for one message over an edge of weight w.
	Delay(w int64, rng *rand.Rand) Time
	// Scale returns the model's time scale: the worst-case delay of a
	// message over a unit-weight edge. Costs measured under the model are
	// comparable to analytic unit-latency bounds after dividing by Scale.
	Scale() int64
	// Name identifies the model in experiment output.
	Name() string
}

type syncModel struct{ scale int64 }

// Synchronous returns the paper's synchronous model: a message over an
// edge of weight w always takes exactly w time units.
func Synchronous() LatencyModel { return syncModel{scale: 1} }

// SynchronousScaled returns a synchronous model where each weight unit
// costs scale time units. Useful for comparing against async runs that use
// the same scale.
func SynchronousScaled(scale int64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	return syncModel{scale: scale}
}

func (m syncModel) Delay(w int64, _ *rand.Rand) Time { return w * m.scale }
func (m syncModel) Scale() int64                     { return m.scale }
func (m syncModel) Name() string                     { return "sync" }

type asyncUniform struct{ scale int64 }

// AsyncUniform returns the asynchronous model of Section 3.8 with delays
// scaled so the slowest message over an edge of weight w takes w·scale
// units: each message independently draws an integer delay uniformly from
// [1, w·scale]. With scale >= 2 even unit-weight edges exhibit variable
// delays.
func AsyncUniform(scale int64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	return asyncUniform{scale: scale}
}

func (m asyncUniform) Delay(w int64, rng *rand.Rand) Time {
	hi := w * m.scale
	if hi <= 1 {
		return 1
	}
	return 1 + rng.Int63n(hi)
}
func (m asyncUniform) Scale() int64 { return m.scale }
func (m asyncUniform) Name() string { return "async-uniform" }

type asyncBimodal struct {
	scale    int64
	slowProb float64
}

// AsyncBimodal returns an adversarial-ish asynchronous model: most
// messages are fast (delay 1 per weight unit) but with probability
// slowProb a message takes the full w·scale. This stresses the protocol's
// tolerance to stragglers while keeping the worst case bounded.
func AsyncBimodal(scale int64, slowProb float64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	if slowProb < 0 || slowProb > 1 {
		panic("sim: slowProb must be in [0,1]")
	}
	return asyncBimodal{scale: scale, slowProb: slowProb}
}

func (m asyncBimodal) Delay(w int64, rng *rand.Rand) Time {
	if rng.Float64() < m.slowProb {
		return w * m.scale
	}
	return w
}
func (m asyncBimodal) Scale() int64 { return m.scale }
func (m asyncBimodal) Name() string { return "async-bimodal" }
