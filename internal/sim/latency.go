package sim

import "math/rand"

// LatencyModel maps an edge's nominal weight to a per-message delay.
// Implementations must return delays in [1, ∞); the simulator additionally
// clamps to >= 1 and enforces link FIFO order.
type LatencyModel interface {
	// Delay returns the delay for one message over an edge of weight w.
	Delay(w int64, rng *rand.Rand) Time
	// Scale returns the model's time scale: the worst-case delay of a
	// message over a unit-weight edge. Costs measured under the model are
	// comparable to analytic unit-latency bounds after dividing by Scale.
	Scale() int64
	// MinDelay returns a lower bound on any delay the model can produce
	// for any legal edge weight (weights are >= 1): the model's
	// conservative lookahead. The parallel drain fuses all ladder ticks
	// in [t, t+MinDelay()) into one barrier — a handler running at tick
	// t cannot affect another node before t+MinDelay(). A model that
	// cannot bound its delays must return 1 (every delay is clamped to
	// >= 1 anyway, so 1 is always sound and degrades the window to the
	// classic one-tick batch); a return < 1 marks the model
	// window-incompatible and Config.Validate rejects it under
	// Workers > 1.
	MinDelay() Time
	// Name identifies the model in experiment output.
	Name() string
}

type syncModel struct{ scale int64 }

// Synchronous returns the paper's synchronous model: a message over an
// edge of weight w always takes exactly w time units.
func Synchronous() LatencyModel { return syncModel{scale: 1} }

// SynchronousScaled returns a synchronous model where each weight unit
// costs scale time units. Useful for comparing against async runs that use
// the same scale.
func SynchronousScaled(scale int64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	return syncModel{scale: scale}
}

func (m syncModel) Delay(w int64, _ *rand.Rand) Time { return w * m.scale }
func (m syncModel) Scale() int64                     { return m.scale }

// MinDelay: a unit-weight edge takes exactly scale, and heavier edges
// take more, so scale is the exact lookahead — the one built-in model
// whose window is wider than a single tick.
func (m syncModel) MinDelay() Time { return m.scale }
func (m syncModel) Name() string   { return "sync" }

type asyncUniform struct{ scale int64 }

// AsyncUniform returns the asynchronous model of Section 3.8 with delays
// scaled so the slowest message over an edge of weight w takes w·scale
// units: each message independently draws an integer delay uniformly from
// [1, w·scale]. With scale >= 2 even unit-weight edges exhibit variable
// delays.
func AsyncUniform(scale int64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	return asyncUniform{scale: scale}
}

func (m asyncUniform) Delay(w int64, rng *rand.Rand) Time {
	hi := w * m.scale
	if hi <= 1 {
		return 1
	}
	return 1 + rng.Int63n(hi)
}
func (m asyncUniform) Scale() int64 { return m.scale }

// MinDelay: the uniform draw floors at 1 (a delay of exactly 1 has
// positive probability on every edge), so the lookahead window is the
// classic one-tick batch.
func (m asyncUniform) MinDelay() Time { return 1 }
func (m asyncUniform) Name() string   { return "async-uniform" }

// CounterLatency is an optional LatencyModel extension for models whose
// per-message delay is a pure function of (edge weight, config seed,
// message sequence number) instead of a draw from a shared RNG stream.
// Because the delay depends only on the message's deterministic global
// sequence number — assigned identically at any worker count — the
// simulator can compute it from any commit worker without serializing,
// which is what lets randomized-delay configs run under the sharded
// parallel commit. This is the same counter-based discipline as
// workload.Zipf and Context.Draw.
type CounterLatency interface {
	LatencyModel
	// DelayFor returns the delay for the message that will be (or was)
	// assigned global sequence number seq, over an edge of weight w,
	// under the given config seed. Must be a pure function of its
	// arguments with a result in [1, ∞).
	DelayFor(w int64, seed int64, seq uint64) Time
}

type asyncCounter struct{ scale int64 }

// AsyncCounter returns an asynchronous model with the same delay
// distribution shape as AsyncUniform — each message takes an integer
// delay in [1, w·scale], approximately uniform — but drawn by hashing
// (seed, message seq) with the splitmix64 counter discipline instead of
// consuming a serialized RNG stream. Runs using it are bit-identical at
// any Workers count, including under the sharded parallel commit. (The
// modulo mapping carries a negligible bias for w·scale ≪ 2^64; exact
// reproducibility, not distributional purity, is the point.)
func AsyncCounter(scale int64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	return asyncCounter{scale: scale}
}

func (m asyncCounter) Delay(w int64, _ *rand.Rand) Time {
	// The simulator routes CounterLatency models through DelayFor; the
	// stream-based entry point cannot reproduce the counter draws.
	panic("sim: AsyncCounter delays are seq-keyed; use DelayFor (the simulator does this automatically)")
}

func (m asyncCounter) DelayFor(w int64, seed int64, seq uint64) Time {
	hi := w * m.scale
	if hi <= 1 {
		return 1
	}
	h := uint64(DeriveSeed(seed, int(seq)))
	return 1 + Time(h%uint64(hi))
}
func (m asyncCounter) Scale() int64 { return m.scale }

// MinDelay: the counter hash can land on 1 for any weight, so the
// window stays one tick wide.
func (m asyncCounter) MinDelay() Time { return 1 }
func (m asyncCounter) Name() string   { return "async-counter" }

type asyncBimodal struct {
	scale    int64
	slowProb float64
}

// AsyncBimodal returns an adversarial-ish asynchronous model: most
// messages are fast (delay 1 per weight unit) but with probability
// slowProb a message takes the full w·scale. This stresses the protocol's
// tolerance to stragglers while keeping the worst case bounded.
func AsyncBimodal(scale int64, slowProb float64) LatencyModel {
	if scale < 1 {
		panic("sim: latency scale must be >= 1")
	}
	if slowProb < 0 || slowProb > 1 {
		panic("sim: slowProb must be in [0,1]")
	}
	return asyncBimodal{scale: scale, slowProb: slowProb}
}

func (m asyncBimodal) Delay(w int64, rng *rand.Rand) Time {
	if rng.Float64() < m.slowProb {
		return w * m.scale
	}
	return w
}
func (m asyncBimodal) Scale() int64 { return m.scale }

// MinDelay: the fast mode delivers a unit-weight message in 1, so the
// bimodal model cannot promise more than the universal one-tick
// lookahead.
func (m asyncBimodal) MinDelay() Time { return 1 }
func (m asyncBimodal) Name() string   { return "async-bimodal" }
