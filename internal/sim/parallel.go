package sim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/stats"
)

// This file is the tick-windowed conservative parallel drain. Unit (and
// uniformly scaled) latency gives every message a lookahead of at least
// one tick, so all events sharing a timestamp are causally independent
// *inputs*: none of them can schedule work at its own tick for a node
// that also has an event in the batch — new work lands at least one
// tick later, or (for zero-delay timers) behind the batch in sequence
// order. That makes one ladder-queue tick bucket the natural parallel
// unit:
//
//  1. peekTime finds the next tick t; every event at t is popped into a
//     batch (no handler has run yet, so nothing new can appear at t
//     ahead of it);
//  2. the batch is sharded by destination node (to % workers) and each
//     shard's handlers run concurrently — driver state is keyed by
//     node, so shards touch disjoint state — with every mutating
//     Context call buffered into the worker's op log;
//  3. the logged effects are committed in serial event order. When the
//     config is commit-shardable (deterministic per-message delays —
//     synchronous or CounterLatency — and dense-or-absent per-link
//     state), the commit itself runs on the workers: each one
//     redundantly walks the logs in batch order to reconstruct every
//     effect's global (at, pri, seq) key from a running push count,
//     then applies only the effects it owns — sends by destination
//     link, timers by destination node — so per-link FIFO slots and
//     capacity reservations stay single-writer sequential state. The
//     staged events are merged into the scheduler by ascending seq, the
//     exact order the serial loop would have pushed them. Otherwise
//     (stream-RNG latency models, map/paged link tiers) the coordinator
//     replays the logs serially through the real send path.
//
// Either way, sequence numbers, delays, FIFO clamps and recorder
// accumulation reproduce exactly what the serial loop would have done,
// so the run is bit-identical to Workers <= 1 — histogram snapshots
// included (recorder shards merge exactly; see stats.ShardableRecorder).
// Batches containing closure timers or fault events, and batches too
// small to amortize the fan-out, fall back to the serial dispatch path
// (same order again).

// op kinds of the worker-side effect log.
const (
	opSend uint8 = iota
	opTimer
	opNodeTimer
	opRecord
)

// emitOp is one buffered side effect of a handler run inside a worker.
// idx is the batch index of the event that emitted it, which is all the
// commit phase needs to interleave the per-worker logs back into serial
// order.
type emitOp struct {
	idx  int32
	kind uint8
	u, v graph.NodeID
	t    Time // absolute fire time (timers) or latency (records)
	h    int  // hops (records)
	msg  Message
	rec  stats.Recorder
	fn   TimerFunc
}

// opBuffer is one worker's effect log for the current batch. idx is the
// batch index the worker is currently processing; Context's mutating
// methods stamp it into each op. recs flags that at least one opRecord
// was logged (non-shardable recorder), so the sharded commit knows to
// run the serial record replay afterwards.
type opBuffer struct {
	ops  []emitOp
	idx  int32
	cur  int // replay cursor
	recs bool
}

func (b *opBuffer) add(op emitOp) { b.ops = append(b.ops, op) }

func (b *opBuffer) reset() {
	// Drop reference fields so recycled capacity doesn't pin payloads.
	for i := range b.ops {
		b.ops[i] = emitOp{}
	}
	b.ops = b.ops[:0]
	b.cur = 0
	b.recs = false
}

// recShard pairs a ShardableRecorder with one worker's private shard of
// it; each worker Context keeps an insertion-ordered list so the
// post-drain absorb walk is deterministic.
type recShard struct {
	parent stats.ShardableRecorder
	shard  stats.Recorder
}

// commitState is one commit worker's reusable scratch: the events it
// staged this batch (ascending seq by construction), per-source-log
// cursors for the batch-order walk, a merge cursor for the coordinator,
// and its share of the message/hop counters.
type commitState struct {
	staged   []event
	cursors  []int
	mergeCur int
	pushes   uint64
	messages int64
	hops     int64
}

func (cs *commitState) resetFor(w int) {
	// Drop references so recycled capacity doesn't pin message payloads.
	for i := range cs.staged {
		cs.staged[i] = event{}
	}
	cs.staged = cs.staged[:0]
	if len(cs.cursors) != w {
		cs.cursors = make([]int, w)
	} else {
		for i := range cs.cursors {
			cs.cursors[i] = 0
		}
	}
	cs.mergeCur = 0
	cs.pushes = 0
	cs.messages = 0
	cs.hops = 0
}

// commitShardable reports whether the logged effects of a tick batch
// can be committed by the workers themselves instead of a serial
// replay. Two properties are required:
//
//   - per-message delays must be reconstructible from the message's
//     deterministic global seq alone: the synchronous model (a pure
//     function of edge weight) or a CounterLatency model (seq-keyed
//     hash). Stream-RNG models (AsyncUniform, AsyncBimodal) consume a
//     serialized rand stream whose draw order IS the serial commit
//     order, so they keep the serial replay.
//   - per-link FIFO/capacity state must be flat (dense tier) or absent:
//     commit workers then write disjoint cells (each link is owned by
//     exactly one worker), whereas the map and paged tiers mutate
//     shared structure on insert.
func (s *Simulator) commitShardable() bool {
	if s.syncScale == 0 && s.ctrLat == nil {
		return false
	}
	if s.fifo != nil && s.fifo.dense == nil {
		return false
	}
	if s.busy != nil && s.busy.dense == nil {
		return false
	}
	return true
}

// linkOwner maps a directed link to the commit worker that owns its
// sequential state. With a LinkIndexer the dense index is used directly
// (matching the dense fifo/busy cells); otherwise — legal only when no
// link state exists at all — a hash of the endpoints keeps all traffic
// of one link on one worker.
//
//arrow:hotpath one call per logged send during the sharded commit
func (s *Simulator) linkOwner(u, v graph.NodeID) int {
	if s.linkIdx != nil {
		return s.linkIdx.LinkIndex(u, v) % s.workers
	}
	h := uint64(u)*0x9E3779B97F4A7C15 ^ uint64(v)*0xBF58476D1CE4E5B9
	return int(h % uint64(s.workers))
}

// runParallel is Run for workers > 1. New has already rejected configs
// the drain cannot reproduce bit-identically (non-FIFO arbitration, the
// heap scheduler, fault plans).
func (s *Simulator) runParallel() Time {
	w := s.workers
	wctx := make([]*Context, w)
	for i := range wctx {
		wctx[i] = &Context{s: s, shard: i, buf: &opBuffer{}}
	}
	sharded := s.commitShardable()
	var commits []*commitState
	if sharded {
		commits = make([]*commitState, w)
		for i := range commits {
			commits[i] = &commitState{cursors: make([]int, w)}
		}
	}
	// Below this, goroutine fan-out costs more than it buys; the batch
	// runs on the serial-fallback path instead.
	minBatch := 2*w + 8
	var (
		batch  []event
		shards = make([][]int32, w)
	)
	for {
		t, ok := s.lq.peekTime()
		if !ok {
			break
		}
		if t < s.now {
			panic("sim: time went backwards")
		}
		// Gather the whole tick: drain the base bucket peekTime just
		// landed on. Handlers have not run, so nothing can be scheduled
		// at t ahead of what is already queued; events pushed at t during
		// this batch's processing are behind every batch member in
		// sequence order and form the next batch. The bucket probe never
		// advances the window, so those pushes (at t, t+1, ...) stay
		// legal.
		batch = batch[:0]
		serialOnly := false
		for {
			var e event
			if !s.lq.pop(&e) || e.at != t {
				// Unreachable: each pop is guarded by a probe that saw an
				// event at t.
				panic("sim: tick batch popped an event off its tick")
			}
			if e.kind == evTimer || e.kind == evFault {
				serialOnly = true
			}
			batch = append(batch, e)
			if !s.lq.curBucketNonEmpty() {
				break
			}
		}
		s.now = t
		if serialOnly || len(batch) < minBatch {
			for i := range batch {
				s.processed++
				if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
					panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
				}
				s.dispatch(s.ctx, &batch[i])
			}
			continue
		}
		s.processed += int64(len(batch))
		if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
		}
		// Shard by destination node: driver state is keyed by node, so
		// two workers never touch the same state, and a fixed node→shard
		// map keeps any per-node ordering within one worker.
		for i := range shards {
			shards[i] = shards[i][:0]
		}
		for i := range batch {
			sh := int(batch[i].to) % w
			shards[sh] = append(shards[sh], int32(i))
		}
		par.ParallelMap(w, w, func(wi int) {
			ctx := wctx[wi]
			ctx.buf.reset()
			for _, bi := range shards[wi] {
				e := &batch[bi]
				ctx.buf.idx = bi
				ctx.evTo, ctx.evSeq = e.to, e.seq
				switch e.kind {
				case evNodeTimer:
					h := s.timerH
					if h == nil {
						panic(fmt.Sprintf("sim: node timer for node %d with no TimerHandler", e.to))
					}
					h(ctx, e.to)
				case evMessage:
					h := s.handler(e.to)
					if h == nil {
						panic(fmt.Sprintf("sim: message for node %d with no handler", e.to))
					}
					h(ctx, e.to, e.from, e.msg)
				case evTimer, evFault:
					// The serialOnly probe routed every batch containing
					// these to the serial dispatch above; reaching here
					// means the routing broke, not the protocol.
					panic("sim: serial-only event kind in parallel batch")
				}
			}
		})
		if !sharded {
			s.replayLogs(batch, wctx)
			continue
		}
		// Sharded commit: every commit worker walks ALL the logs in batch
		// order (cheap — it reads each op once) to reconstruct the global
		// push sequence, and applies just the effects it owns. The
		// ParallelMap join gives the happens-before edge between the
		// handler phase's log writes and the commit phase's reads, and
		// between the commit phase's link-cell writes and the next
		// batch's.
		baseSeq := s.seq
		anyRecs := false
		for _, ctx := range wctx {
			if ctx.buf.recs {
				anyRecs = true
			}
		}
		par.ParallelMap(w, w, func(ci int) {
			s.commitShard(ci, batch, wctx, commits[ci], baseSeq)
		})
		pushes := commits[0].pushes
		for _, cs := range commits[1:] {
			if cs.pushes != pushes {
				panic("sim: parallel commit push-count divergence")
			}
		}
		s.mergeStaged(commits)
		s.seq = baseSeq + pushes
		for _, cs := range commits {
			s.messages += cs.messages
			s.hops += cs.hops
		}
		if anyRecs {
			s.replayRecords(batch, wctx)
		}
	}
	// Fold each worker's recorder shards back into their parents. Worker
	// order then insertion order is deterministic, and ShardableRecorder
	// absorption is exact, so the parents end bit-identical to a serial
	// run regardless of how observations were partitioned.
	for _, ctx := range wctx {
		for _, rs := range ctx.recList {
			rs.parent.Absorb(rs.shard)
		}
		ctx.recM = nil
		ctx.recList = nil
	}
	return s.now
}

// replayLogs is the serial commit fallback: the coordinator replays the
// effect logs in batch order through the real send/schedule/record
// paths. Each worker emitted its ops with ascending batch indices, so a
// per-buffer cursor and an idx match suffice to merge the logs into the
// exact serial interleaving.
func (s *Simulator) replayLogs(batch []event, wctx []*Context) {
	w := s.workers
	for i := range batch {
		buf := wctx[int(batch[i].to)%w].buf
		for buf.cur < len(buf.ops) && buf.ops[buf.cur].idx == int32(i) {
			op := &buf.ops[buf.cur]
			buf.cur++
			switch op.kind {
			case opSend:
				s.send(op.u, op.v, op.msg)
			case opTimer:
				s.scheduleTimer(op.t, op.fn)
			case opNodeTimer:
				s.push(event{at: op.t, kind: evNodeTimer, to: op.v})
			case opRecord:
				op.rec.RecordRequest(op.t, op.h)
			}
		}
	}
}

// commitShard is one worker's slice of the sharded commit. It walks all
// op logs in batch order, counting pushes to derive each op's global
// sequence number — the count is identical on every worker, so the
// (at, pri, seq) keys match what the serial replay would have stamped —
// and applies the ops it owns: sends whose destination link hashes to
// this worker (their FIFO clamp and capacity reservation touch only
// cells this worker owns), node timers whose node shard is this worker,
// and closure timers round-robined by seq. Applied events are staged in
// ascending seq order for the coordinator's merge.
//
//arrow:hotpath every logged effect is walked here once per commit worker
func (s *Simulator) commitShard(ci int, batch []event, wctx []*Context, cs *commitState, baseSeq uint64) {
	w := s.workers
	cs.resetFor(w)
	pushes := uint64(0)
	for i := range batch {
		src := int(batch[i].to) % w
		buf := wctx[src].buf
		cur := cs.cursors[src]
		for cur < len(buf.ops) && buf.ops[cur].idx == int32(i) {
			op := &buf.ops[cur]
			cur++
			switch op.kind {
			case opSend:
				pushes++
				if s.linkOwner(op.u, op.v) == ci {
					s.commitSend(cs, op, baseSeq+pushes)
				}
			case opTimer:
				pushes++
				if int((baseSeq+pushes)%uint64(w)) == ci {
					seq := baseSeq + pushes
					cs.staged = append(cs.staged, event{at: op.t, pri: int64(seq), seq: seq, kind: evTimer, fn: op.fn})
				}
			case opNodeTimer:
				pushes++
				if int(op.v)%w == ci {
					seq := baseSeq + pushes
					cs.staged = append(cs.staged, event{at: op.t, pri: int64(seq), seq: seq, kind: evNodeTimer, to: op.v})
				}
			case opRecord:
				// Non-shardable recorders are replayed serially by the
				// coordinator after the commit (replayRecords); they do
				// not consume a sequence number.
			}
		}
		cs.cursors[src] = cur
	}
	cs.pushes = pushes
}

// commitSend applies one owned send: the same latency lookup, delay,
// capacity reservation and FIFO clamp as the serial path, against link
// cells only this worker touches. The delay needs no RNG stream — the
// config is commit-shardable, so it is a pure function of the edge
// weight (synchronous) or of the message's seq (CounterLatency).
//
//arrow:hotpath one call per owned send during the sharded commit
func (s *Simulator) commitSend(cs *commitState, op *emitOp, seq uint64) {
	wgt, ok := s.cfg.Topology.Latency(op.u, op.v)
	if !ok {
		panic(fmt.Sprintf("sim: illegal send %d -> %d (not connected in topology)", op.u, op.v))
	}
	var delay Time
	if s.syncScale != 0 {
		delay = wgt * s.syncScale
	} else {
		delay = s.ctrLat.DelayFor(wgt, s.cfg.Seed, seq)
	}
	if delay < 1 {
		delay = 1
	}
	depart := s.now
	if s.busy != nil {
		depart = s.busy.reserve(op.u, op.v, depart, s.txTime)
	}
	arrive := depart + delay
	if !s.fifoFree {
		arrive = s.fifo.clamp(op.u, op.v, arrive)
	}
	cs.messages++
	cs.hops += int64(s.cfg.Topology.Hops(op.u, op.v))
	cs.staged = append(cs.staged, event{at: arrive, pri: int64(seq), seq: seq, kind: evMessage, to: op.v, from: op.u, msg: op.msg})
}

// mergeStaged pushes the staged events into the scheduler in ascending
// global seq — exactly the order the serial replay would have pushed
// them, which preserves the ladder buckets' FIFO append invariant. Each
// worker's staged list is already seq-sorted, so this is a w-way merge
// with a linear head scan (w is small).
//
//arrow:hotpath one pass per parallel batch over every staged event
func (s *Simulator) mergeStaged(commits []*commitState) {
	for {
		best := -1
		var bestSeq uint64
		for i, cs := range commits {
			if cs.mergeCur < len(cs.staged) {
				if sq := cs.staged[cs.mergeCur].seq; best < 0 || sq < bestSeq {
					best, bestSeq = i, sq
				}
			}
		}
		if best < 0 {
			return
		}
		cs := commits[best]
		s.lq.push(&cs.staged[cs.mergeCur])
		cs.mergeCur++
	}
}

// replayRecords applies the buffered opRecord effects of non-shardable
// recorders in batch (= serial event) order; it runs only when a batch
// actually logged one, and reuses the buffers' replay cursors (the
// sharded commit keeps its own).
func (s *Simulator) replayRecords(batch []event, wctx []*Context) {
	w := s.workers
	for i := range batch {
		buf := wctx[int(batch[i].to)%w].buf
		for buf.cur < len(buf.ops) && buf.ops[buf.cur].idx == int32(i) {
			op := &buf.ops[buf.cur]
			buf.cur++
			if op.kind == opRecord {
				op.rec.RecordRequest(op.t, op.h)
			}
		}
	}
}
