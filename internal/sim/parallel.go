package sim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/stats"
)

// This file is the lookahead-windowed conservative parallel drain. The
// latency model's MinDelay() is a conservative Chandy–Misra–Bryant
// lookahead bound L: a handler running at tick t cannot put work on
// another node before t + L, so ALL events in the window [t, t+L) are
// causally independent *inputs* — none of them can schedule cross-node
// work inside the window, and the only intra-window products are a
// node's own timers, which stay on the node's shard. That makes the
// fused window (every ladder bucket in [t, t+L)) the parallel unit,
// paying one barrier, one key walk and one merge per window instead of
// per tick:
//
//  1. peekTime finds the next tick t; every bucket in [t, t+L) is
//     drained into one super-batch (no handler has run yet, so nothing
//     new can appear inside the window ahead of it; nextTickWithin
//     never moves the ladder past the window, so the commits that land
//     at t+L and later stay legal);
//  2. the batch is sharded by destination node (to % workers) and each
//     shard's handlers run concurrently — driver state is keyed by
//     node, so shards touch disjoint state — with every mutating
//     Context call buffered into the worker's op log. A node timer
//     that fires inside the window appends to the worker's ordered
//     mid-window sub-queue and executes in-shard, in exactly the
//     (at, seq) slot the serial run would give it (same-tick entries
//     sort behind the pre-window batch, whose sequence numbers are all
//     smaller, and among themselves by creation order, which per shard
//     equals serial push order); every cross-node send has delay >= L
//     and lands strictly outside the window;
//  3. the logged effects are committed in serial event order, once per
//     window: a window walk enumerates every executed event — the
//     sorted batch merged with the mid-window timers it discovers as
//     it assigns sequence numbers — and reconstructs each effect's
//     global (at, pri, seq) key from a running push count. When the
//     config is commit-shardable (deterministic per-message delays —
//     synchronous or CounterLatency — and dense-or-absent per-link
//     state), the commit itself runs on the workers: each one walks
//     redundantly and applies only the effects it owns — sends by
//     destination link, timers by destination node — so per-link FIFO
//     slots and capacity reservations stay single-writer sequential
//     state, and the staged events merge into the scheduler by
//     ascending seq, the exact order the serial loop would have pushed
//     them. Otherwise (stream-RNG latency models, map/paged link
//     tiers) the coordinator replays the logs serially through the
//     real send path.
//
// Either way, sequence numbers, delays, FIFO clamps and recorder
// accumulation reproduce exactly what the serial loop would have done,
// so the run is bit-identical to Workers <= 1 — histogram snapshots
// included (recorder shards merge exactly; see stats.ShardableRecorder).
// Windows containing closure timers or fault events, and windows too
// small to amortize the fan-out (the minBatch decision is per-window,
// not per-tick), fall back to a serial replay that interleaves the
// batch with everything it schedules mid-window in (at, pri, seq)
// order — the same serial order again.

// op kinds of the worker-side effect log.
const (
	opSend uint8 = iota
	opTimer
	opNodeTimer
	opRecord
)

// dynSeqUnknown marks the Context of a mid-window node timer: its
// global sequence number is reconstructed only at commit, so the
// seq-keyed Context.Draw is unavailable while it runs.
const dynSeqUnknown = ^uint64(0)

// emitOp is one buffered side effect of a handler run inside a worker.
// idx is the worker-local execution ordinal of the event that emitted
// it (0, 1, 2, … in the order the worker ran its events, mid-window
// timers included); the commit phase's window walk re-derives the same
// per-worker order, so an ordinal cursor per source log is all it
// needs to interleave the logs back into serial order.
type emitOp struct {
	idx  int32
	kind uint8
	u, v graph.NodeID
	t    Time // absolute fire time (timers) or latency (records)
	h    int  // hops (records)
	msg  Message
	rec  stats.Recorder
	fn   TimerFunc
}

// opBuffer is one worker's effect log for the current window. idx is
// the execution ordinal the worker is currently processing; Context's
// mutating methods stamp it into each op. recs flags that at least one
// opRecord was logged (non-shardable recorder), so the sharded commit
// knows to run the serial record replay afterwards.
type opBuffer struct {
	ops  []emitOp
	idx  int32
	recs bool
}

func (b *opBuffer) add(op emitOp) { b.ops = append(b.ops, op) }

func (b *opBuffer) reset() {
	// Drop reference fields so recycled capacity doesn't pin payloads.
	for i := range b.ops {
		b.ops[i] = emitOp{}
	}
	b.ops = b.ops[:0]
	b.recs = false
}

// dynEvent is one mid-window node timer: fire tick, a monotone
// creation/discovery ordinal that breaks same-tick ties (per shard it
// equals the serial push order; in the window walk, the global one),
// and the target node.
type dynEvent struct {
	at  Time
	ord int64
	v   graph.NodeID
}

// dynEvHeap is a hand-rolled min-heap of dynEvents keyed (at, ord) —
// the ordered mid-window sub-queue. Value-typed and recycled, so the
// steady state allocates nothing.
type dynEvHeap []dynEvent

func (h dynEvHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].ord < h[j].ord
}

//arrow:hotpath one push per mid-window timer
func (h *dynEvHeap) push(e dynEvent) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

//arrow:hotpath one pop per mid-window timer
func (h *dynEvHeap) pop() dynEvent {
	a := *h
	n := len(a) - 1
	top := a[0]
	a[0] = a[n]
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}

// winState is one worker's view of the current fused window: its end
// tick (events at >= end commit normally; earlier node timers execute
// in-shard) and the ordered mid-window sub-queue with its creation
// counter.
type winState struct {
	end Time
	dyn dynEvHeap
	ord int64
}

func (ws *winState) reset(end Time) {
	ws.end = end
	ws.dyn = ws.dyn[:0]
	ws.ord = 0
}

// recShard pairs a ShardableRecorder with one worker's private shard of
// it; each worker Context keeps an insertion-ordered list so the
// post-drain absorb walk is deterministic.
type recShard struct {
	parent stats.ShardableRecorder
	shard  stats.Recorder
}

// windowWalker enumerates a fused window's executed events in global
// serial order: the pre-window batch (already sorted by (at, pri, seq))
// merged with the mid-window node timers the walk itself discovers —
// the caller reports each opNodeTimer firing inside the window via
// addDyn as it consumes the op, which is exactly when the serial run
// would have pushed it, so discovery order reproduces serial seq order
// and the (at, ord) heap replays the serial interleaving. Restricted
// to one shard, the enumeration equals that worker's execution order,
// which is why per-source ordinal cursors line each event up with its
// logged ops. The walker is reusable scratch: one per commit worker,
// one on the coordinator.
type windowWalker struct {
	batch  []event
	w      int
	i      int     // batch cursor
	ordCur []int32 // next execution ordinal per source worker
	opCur  []int   // op-log cursor per source worker
	dyn    dynEvHeap
	dynOrd int64
}

func (wk *windowWalker) resetFor(w int, batch []event) {
	wk.batch = batch
	wk.w = w
	wk.i = 0
	if len(wk.ordCur) != w {
		wk.ordCur = make([]int32, w)
		wk.opCur = make([]int, w)
	} else {
		for i := 0; i < w; i++ {
			wk.ordCur[i] = 0
			wk.opCur[i] = 0
		}
	}
	wk.dyn = wk.dyn[:0]
	wk.dynOrd = 0
}

// addDyn registers a discovered mid-window node timer for enumeration.
func (wk *windowWalker) addDyn(at Time, v graph.NodeID) {
	wk.dyn.push(dynEvent{at: at, ord: wk.dynOrd, v: v})
	wk.dynOrd++
}

// next returns the next executed event's source shard and tick. Batch
// events win same-tick ties against mid-window timers because every
// mid-window seq is larger than every pre-window seq.
//
//arrow:hotpath one call per executed event per walking commit worker
func (wk *windowWalker) next() (src int, at Time, ok bool) {
	if wk.i < len(wk.batch) {
		e := &wk.batch[wk.i]
		if len(wk.dyn) == 0 || e.at <= wk.dyn[0].at {
			wk.i++
			return int(e.to) % wk.w, e.at, true
		}
	} else if len(wk.dyn) == 0 {
		return 0, 0, false
	}
	d := wk.dyn.pop()
	return int(d.v) % wk.w, d.at, true
}

// commitState is one commit worker's reusable scratch: the events it
// staged this window (ascending seq by construction), its window
// walker, a merge cursor for the coordinator, and its share of the
// message/hop counters.
type commitState struct {
	staged   []event
	wk       windowWalker
	mergeCur int
	pushes   uint64
	messages int64
	hops     int64
}

func (cs *commitState) reset() {
	// Drop references so recycled capacity doesn't pin message payloads.
	for i := range cs.staged {
		cs.staged[i] = event{}
	}
	cs.staged = cs.staged[:0]
	cs.mergeCur = 0
	cs.pushes = 0
	cs.messages = 0
	cs.hops = 0
}

// commitShardable reports whether the logged effects of a fused window
// can be committed by the workers themselves instead of a serial
// replay. Two properties are required:
//
//   - per-message delays must be reconstructible from the message's
//     deterministic global seq alone: the synchronous model (a pure
//     function of edge weight) or a CounterLatency model (seq-keyed
//     hash). Stream-RNG models (AsyncUniform, AsyncBimodal) consume a
//     serialized rand stream whose draw order IS the serial commit
//     order, so they keep the serial replay.
//   - per-link FIFO/capacity state must be flat (dense tier) or absent:
//     commit workers then write disjoint cells (each link is owned by
//     exactly one worker), whereas the map and paged tiers mutate
//     shared structure on insert.
func (s *Simulator) commitShardable() bool {
	if s.syncScale == 0 && s.ctrLat == nil {
		return false
	}
	if s.fifo != nil && s.fifo.dense == nil {
		return false
	}
	if s.busy != nil && s.busy.dense == nil {
		return false
	}
	return true
}

// linkOwner maps a directed link to the commit worker that owns its
// sequential state. With a LinkIndexer the dense index is used directly
// (matching the dense fifo/busy cells); otherwise — legal only when no
// link state exists at all — a hash of the endpoints keeps all traffic
// of one link on one worker.
//
//arrow:hotpath one call per logged send during the sharded commit
func (s *Simulator) linkOwner(u, v graph.NodeID) int {
	if s.linkIdx != nil {
		return s.linkIdx.LinkIndex(u, v) % s.workers
	}
	h := uint64(u)*0x9E3779B97F4A7C15 ^ uint64(v)*0xBF58476D1CE4E5B9
	return int(h % uint64(s.workers))
}

// runParallel is Run for workers > 1. New has already rejected configs
// the drain cannot reproduce bit-identically (non-FIFO arbitration, the
// heap scheduler, fault plans, an unbounded-MinDelay latency model).
func (s *Simulator) runParallel() Time {
	w := s.workers
	wctx := make([]*Context, w)
	for i := range wctx {
		wctx[i] = &Context{s: s, shard: i, buf: &opBuffer{}, win: &winState{}}
	}
	sharded := s.commitShardable()
	var commits []*commitState
	if sharded {
		commits = make([]*commitState, w)
		for i := range commits {
			commits[i] = &commitState{}
		}
	}
	// Below this, goroutine fan-out costs more than it buys; the window
	// runs on the serial-fallback path instead. The decision is made
	// once per fused window, so scaled-latency configs get L ticks'
	// worth of events to clear the bar with.
	minBatch := 2*w + 8
	var (
		batch  []event
		shards = make([][]int32, w)
		wmax   = make([]Time, w)  // last tick each worker executed
		wdyn   = make([]int64, w) // mid-window timers each worker executed
		walk   windowWalker       // coordinator's walker (serial replay paths)
	)
	for {
		t0, ok := s.lq.peekTime()
		if !ok {
			break
		}
		if t0 < s.now {
			panic("sim: time went backwards")
		}
		winEnd := t0 + s.window
		// Gather the fused window: drain every bucket in [t0, winEnd).
		// Handlers have not run, so nothing can appear inside the window
		// ahead of what is already queued, and the gathered batch is
		// ascending (at, pri, seq) — bucket lists drain in (pri, seq)
		// order and ticks are visited in order. nextTickWithin leaves
		// the ladder's base at or before the last drained tick, so the
		// commits that land at winEnd and later stay legal pushes.
		batch = batch[:0]
		// The pending count bounds the window's batch; growing to it in
		// one step avoids ramping a frontier-sized slice through append's
		// ~1.25× growth steps (which costs ~5× the peak in cumulative
		// allocation on the first, already full-sized window).
		if need := s.lq.size; cap(batch) < need {
			if c := 2 * cap(batch); need < c {
				need = c // never re-make for less than a doubling
			}
			batch = make([]event, 0, need)
		}
		serialOnly := false
		tick := t0
		for {
			var e event
			if !s.lq.pop(&e) || e.at != tick {
				// Unreachable: each pop is guarded by a probe that saw an
				// event at tick.
				panic("sim: window batch popped an event off its tick")
			}
			if e.kind == evTimer || e.kind == evFault {
				serialOnly = true
			}
			batch = append(batch, e)
			if s.lq.curBucketNonEmpty() {
				continue
			}
			nt, ok := s.lq.nextTickWithin(winEnd)
			if !ok {
				break
			}
			tick = nt
		}
		s.now = t0
		if serialOnly || len(batch) < minBatch {
			// Serial fallback: dispatch the window's events and
			// everything they schedule inside it in (at, pri, seq)
			// order. The window's ladder buckets are already popped, so
			// push diverts mid-window work into winDyn (see push) and
			// the loop merges it with the remaining batch — batch
			// events win same-tick ties because their seqs are all
			// smaller than any seq assigned during the window.
			s.winEnd = winEnd
			i := 0
			for {
				var e event
				if i < len(batch) && (len(s.winDyn) == 0 || batch[i].before(&s.winDyn[0])) {
					e = batch[i]
					batch[i] = event{} // release msg/fn references
					i++
				} else if len(s.winDyn) > 0 {
					e = s.winDyn.pop()
				} else {
					break
				}
				if e.at < s.now {
					panic("sim: time went backwards")
				}
				s.now = e.at
				s.processed++
				if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
					panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
				}
				s.dispatch(s.ctx, &e)
			}
			s.winEnd = 0
			continue
		}
		s.processed += int64(len(batch))
		if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
		}
		// Shard by destination node: driver state is keyed by node, so
		// two workers never touch the same state, and a fixed node→shard
		// map keeps any per-node ordering within one worker. Each shard
		// slice is ascending batch index = ascending (at, seq).
		for i := range shards {
			shards[i] = shards[i][:0]
		}
		for i := range batch {
			sh := int(batch[i].to) % w
			shards[sh] = append(shards[sh], int32(i))
		}
		par.ParallelMap(w, w, func(wi int) {
			ctx := wctx[wi]
			ctx.buf.reset()
			// Pre-size the op log in one step: a fused window buffers the
			// whole in-flight frontier, and letting append ramp a
			// multi-megabyte slice up in ~1.25× steps costs ~5× the peak
			// in cumulative allocation. Two ops per event (send + record,
			// or send + timer) is the common ceiling.
			if need := 2 * len(shards[wi]); cap(ctx.buf.ops) < need {
				if c := 2 * cap(ctx.buf.ops); need < c {
					need = c // never re-make for less than a doubling
				}
				ctx.buf.ops = make([]emitOp, 0, need)
			}
			ws := ctx.win
			ws.reset(winEnd)
			mine := shards[wi]
			maxAt := t0
			execOrd := int32(0)
			ii := 0
			// Merge the shard's batch slice with its mid-window timer
			// sub-queue: always the earliest tick next, batch first on
			// ties (its seqs are smaller). Restricted to this shard,
			// that is exactly the serial execution order.
			for {
				takeBatch := false
				if ii < len(mine) {
					if len(ws.dyn) == 0 || batch[mine[ii]].at <= ws.dyn[0].at {
						takeBatch = true
					}
				} else if len(ws.dyn) == 0 {
					break
				}
				ctx.buf.idx = execOrd
				execOrd++
				if takeBatch {
					e := &batch[mine[ii]]
					ii++
					ctx.evAt, ctx.evTo, ctx.evSeq = e.at, e.to, e.seq
					maxAt = e.at
					switch e.kind {
					case evNodeTimer:
						h := s.timerH
						if h == nil {
							panic(fmt.Sprintf("sim: node timer for node %d with no TimerHandler", e.to))
						}
						h(ctx, e.to)
					case evMessage:
						h := s.handler(e.to)
						if h == nil {
							panic(fmt.Sprintf("sim: message for node %d with no handler", e.to))
						}
						h(ctx, e.to, e.from, e.msg)
					case evTimer, evFault:
						// The serialOnly probe routed every window containing
						// these to the serial dispatch above; reaching here
						// means the routing broke, not the protocol.
						panic("sim: serial-only event kind in parallel batch")
					}
				} else {
					d := ws.dyn.pop()
					ctx.evAt, ctx.evTo, ctx.evSeq = d.at, d.v, dynSeqUnknown
					maxAt = d.at
					h := s.timerH
					if h == nil {
						panic(fmt.Sprintf("sim: node timer for node %d with no TimerHandler", d.v))
					}
					h(ctx, d.v)
				}
			}
			wmax[wi] = maxAt
			wdyn[wi] = int64(execOrd) - int64(len(mine))
		})
		dynTotal := int64(0)
		for _, d := range wdyn {
			dynTotal += d
		}
		s.processed += dynTotal
		if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
		}
		s.statWindows++
		s.statWindowEvents += int64(len(batch)) + dynTotal
		baseSeq := s.seq
		anyRecs := false
		for _, ctx := range wctx {
			if ctx.buf.recs {
				anyRecs = true
			}
		}
		if sharded {
			// Sharded commit: every commit worker walks ALL the logs in
			// window order (cheap — it reads each op once) to
			// reconstruct the global push sequence, and applies just the
			// effects it owns. The ParallelMap join gives the
			// happens-before edge between the handler phase's log writes
			// and the commit phase's reads, and between the commit
			// phase's link-cell writes and the next window's.
			par.ParallelMap(w, w, func(ci int) {
				s.commitShard(ci, batch, wctx, commits[ci], baseSeq, winEnd)
			})
			pushes := commits[0].pushes
			for _, cs := range commits[1:] {
				if cs.pushes != pushes {
					panic("sim: parallel commit push-count divergence")
				}
			}
			s.mergeStaged(commits)
			s.seq = baseSeq + pushes
			for _, cs := range commits {
				s.messages += cs.messages
				s.hops += cs.hops
			}
			if anyRecs {
				s.replayRecords(wctx, winEnd, &walk, batch)
			}
		} else {
			s.replayLogs(wctx, winEnd, &walk, batch)
		}
		// Advance the clock to the last tick the window executed, like
		// the serial loop would have.
		for _, m := range wmax {
			if m > s.now {
				s.now = m
			}
		}
	}
	// Fold each worker's recorder shards back into their parents. Worker
	// order then insertion order is deterministic, and ShardableRecorder
	// absorption is exact, so the parents end bit-identical to a serial
	// run regardless of how observations were partitioned.
	for _, ctx := range wctx {
		for _, rs := range ctx.recList {
			rs.parent.Absorb(rs.shard)
		}
		ctx.recM = nil
		ctx.recList = nil
	}
	return s.now
}

// replayLogs is the serial commit fallback for non-shardable configs:
// the coordinator replays the effect logs through the real
// send/schedule/record paths in the window walk's serial order, with
// the clock set to each event's own tick so delays, capacity
// reservations and stream-RNG draws match the serial run exactly. A
// node timer that fired inside the window already executed in-shard:
// its push is skipped but its sequence number is consumed, and the
// walker enumerates it so its own ops land in the right slot.
func (s *Simulator) replayLogs(wctx []*Context, winEnd Time, wk *windowWalker, batch []event) {
	wk.resetFor(s.workers, batch)
	s.replayGuard = winEnd
	for {
		src, at, ok := wk.next()
		if !ok {
			break
		}
		s.now = at
		buf := wctx[src].buf
		ord := wk.ordCur[src]
		wk.ordCur[src]++
		cur := wk.opCur[src]
		for cur < len(buf.ops) && buf.ops[cur].idx == ord {
			op := &buf.ops[cur]
			cur++
			switch op.kind {
			case opSend:
				s.send(op.u, op.v, op.msg)
			case opTimer:
				s.scheduleTimer(op.t, op.fn)
			case opNodeTimer:
				if op.t < winEnd {
					s.seq++
					wk.addDyn(op.t, op.v)
				} else {
					s.push(event{at: op.t, kind: evNodeTimer, to: op.v})
				}
			case opRecord:
				op.rec.RecordRequest(op.t, op.h)
			}
		}
		wk.opCur[src] = cur
	}
	s.replayGuard = 0
}

// commitShard is one worker's slice of the sharded commit. It walks all
// op logs in window order, counting pushes to derive each op's global
// sequence number — the count is identical on every worker, so the
// (at, pri, seq) keys match what the serial replay would have stamped —
// and applies the ops it owns: sends whose destination link hashes to
// this worker (their FIFO clamp and capacity reservation touch only
// cells this worker owns), node timers landing past the window whose
// node shard is this worker, and closure timers round-robined by seq.
// Mid-window node timers consume a sequence number but stage nothing
// (they already executed in-shard); the walker enumerates them so
// their ops are keyed correctly. Applied events are staged in
// ascending seq order for the coordinator's merge.
//
//arrow:hotpath every logged effect is walked here once per commit worker
func (s *Simulator) commitShard(ci int, batch []event, wctx []*Context, cs *commitState, baseSeq uint64, winEnd Time) {
	w := s.workers
	cs.reset()
	// Pre-size the staging slice in one step (see the op-log pre-size in
	// runParallel): in steady state each executed event pushes about one
	// future event, split evenly across the commit workers.
	if need := 2*len(batch)/w + 16; cap(cs.staged) < need {
		if c := 2 * cap(cs.staged); need < c {
			need = c // never re-make for less than a doubling
		}
		cs.staged = make([]event, 0, need)
	}
	wk := &cs.wk
	wk.resetFor(w, batch)
	pushes := uint64(0)
	for {
		src, at, ok := wk.next()
		if !ok {
			break
		}
		buf := wctx[src].buf
		ord := wk.ordCur[src]
		wk.ordCur[src]++
		cur := wk.opCur[src]
		for cur < len(buf.ops) && buf.ops[cur].idx == ord {
			op := &buf.ops[cur]
			cur++
			switch op.kind {
			case opSend:
				pushes++
				if s.linkOwner(op.u, op.v) == ci {
					s.commitSend(cs, op, baseSeq+pushes, at, winEnd)
				}
			case opTimer:
				pushes++
				if int((baseSeq+pushes)%uint64(w)) == ci {
					seq := baseSeq + pushes
					cs.staged = append(cs.staged, event{at: op.t, pri: int64(seq), seq: seq, kind: evTimer, fn: op.fn})
				}
			case opNodeTimer:
				pushes++
				if op.t < winEnd {
					wk.addDyn(op.t, op.v)
				} else if int(op.v)%w == ci {
					seq := baseSeq + pushes
					cs.staged = append(cs.staged, event{at: op.t, pri: int64(seq), seq: seq, kind: evNodeTimer, to: op.v})
				}
			case opRecord:
				// Non-shardable recorders are replayed serially by the
				// coordinator after the commit (replayRecords); they do
				// not consume a sequence number.
			}
		}
		wk.opCur[src] = cur
	}
	cs.pushes = pushes
}

// commitSend applies one owned send: the same latency lookup, delay,
// capacity reservation and FIFO clamp as the serial path, against link
// cells only this worker touches, departing at the emitting event's own
// tick. The delay needs no RNG stream — the config is commit-shardable,
// so it is a pure function of the edge weight (synchronous) or of the
// message's seq (CounterLatency). An arrival inside the window would
// mean the latency model's MinDelay() bound lied; the panic is the
// drain's safety check, not a recoverable condition.
//
//arrow:hotpath one call per owned send during the sharded commit
func (s *Simulator) commitSend(cs *commitState, op *emitOp, seq uint64, at, winEnd Time) {
	wgt, ok := s.cfg.Topology.Latency(op.u, op.v)
	if !ok {
		panic(fmt.Sprintf("sim: illegal send %d -> %d (not connected in topology)", op.u, op.v))
	}
	var delay Time
	if s.syncScale != 0 {
		delay = wgt * s.syncScale
	} else {
		delay = s.ctrLat.DelayFor(wgt, s.cfg.Seed, seq)
	}
	if delay < 1 {
		delay = 1
	}
	depart := at
	if s.busy != nil {
		depart = s.busy.reserve(op.u, op.v, depart, s.txTime)
	}
	arrive := depart + delay
	if !s.fifoFree {
		arrive = s.fifo.clamp(op.u, op.v, arrive)
	}
	if arrive < winEnd {
		panic(fmt.Sprintf("sim: message arrives at %d inside the parallel window ending %d — latency model %q violated its MinDelay() bound", arrive, winEnd, s.cfg.Latency.Name()))
	}
	cs.messages++
	cs.hops += int64(s.cfg.Topology.Hops(op.u, op.v))
	cs.staged = append(cs.staged, event{at: arrive, pri: int64(seq), seq: seq, kind: evMessage, to: op.v, from: op.u, msg: op.msg})
}

// mergeStaged pushes the staged events into the scheduler in ascending
// global seq — exactly the order the serial replay would have pushed
// them, which preserves the ladder buckets' FIFO append invariant. Each
// worker's staged list is already seq-sorted, so this is a w-way merge
// with a linear head scan (w is small).
//
//arrow:hotpath one pass per parallel window over every staged event
func (s *Simulator) mergeStaged(commits []*commitState) {
	for {
		best := -1
		var bestSeq uint64
		for i, cs := range commits {
			if cs.mergeCur < len(cs.staged) {
				if sq := cs.staged[cs.mergeCur].seq; best < 0 || sq < bestSeq {
					best, bestSeq = i, sq
				}
			}
		}
		if best < 0 {
			return
		}
		cs := commits[best]
		s.lq.push(&cs.staged[cs.mergeCur])
		cs.mergeCur++
	}
}

// replayRecords applies the buffered opRecord effects of non-shardable
// recorders in window-walk (= serial event) order; it runs only when a
// window actually logged one, after the sharded commit, on the
// coordinator's own walker.
func (s *Simulator) replayRecords(wctx []*Context, winEnd Time, wk *windowWalker, batch []event) {
	wk.resetFor(s.workers, batch)
	for {
		src, _, ok := wk.next()
		if !ok {
			break
		}
		buf := wctx[src].buf
		ord := wk.ordCur[src]
		wk.ordCur[src]++
		cur := wk.opCur[src]
		for cur < len(buf.ops) && buf.ops[cur].idx == ord {
			op := &buf.ops[cur]
			cur++
			switch op.kind {
			case opRecord:
				op.rec.RecordRequest(op.t, op.h)
			case opNodeTimer:
				if op.t < winEnd {
					wk.addDyn(op.t, op.v)
				}
			}
		}
		wk.opCur[src] = cur
	}
}
