package sim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/stats"
)

// This file is the tick-windowed conservative parallel drain. Unit (and
// uniformly scaled) latency gives every message a lookahead of at least
// one tick, so all events sharing a timestamp are causally independent
// *inputs*: none of them can schedule work at its own tick for a node
// that also has an event in the batch — new work lands at least one
// tick later, or (for zero-delay timers) behind the batch in sequence
// order. That makes one ladder-queue tick bucket the natural parallel
// unit:
//
//  1. peekTime finds the next tick t; every event at t is popped into a
//     batch (no handler has run yet, so nothing new can appear at t
//     ahead of it);
//  2. the batch is sharded by destination node (to % workers) and each
//     shard's handlers run concurrently — driver state is keyed by
//     node, so shards touch disjoint state — with every mutating
//     Context call buffered into the worker's op log;
//  3. the coordinator replays the op logs in batch (= serial event)
//     order through the real send/schedule/record paths.
//
// Sequence numbers, latency-RNG draws, FIFO clamps and recorder
// accumulation all happen in the replay, in exactly the order the
// serial loop would have produced, so the run is bit-identical to
// Workers <= 1 — histogram floating-point included. Batches containing
// closure timers or fault events, and batches too small to amortize the
// fan-out, fall back to the serial dispatch path (same order again).

// op kinds of the worker-side effect log.
const (
	opSend uint8 = iota
	opTimer
	opNodeTimer
	opRecord
)

// emitOp is one buffered side effect of a handler run inside a worker.
// idx is the batch index of the event that emitted it, which is all the
// coordinator needs to interleave the per-worker logs back into serial
// order.
type emitOp struct {
	idx  int32
	kind uint8
	u, v graph.NodeID
	t    Time // absolute fire time (timers) or latency (records)
	h    int  // hops (records)
	msg  Message
	rec  stats.Recorder
	fn   TimerFunc
}

// opBuffer is one worker's effect log for the current batch. idx is the
// batch index the worker is currently processing; Context's mutating
// methods stamp it into each op.
type opBuffer struct {
	ops []emitOp
	idx int32
	cur int // replay cursor
}

func (b *opBuffer) add(op emitOp) { b.ops = append(b.ops, op) }

func (b *opBuffer) reset() {
	// Drop reference fields so recycled capacity doesn't pin payloads.
	for i := range b.ops {
		b.ops[i] = emitOp{}
	}
	b.ops = b.ops[:0]
	b.cur = 0
}

// runParallel is Run for workers > 1. New has already rejected configs
// the drain cannot reproduce bit-identically (non-FIFO arbitration, the
// heap scheduler, fault plans).
func (s *Simulator) runParallel() Time {
	w := s.workers
	wctx := make([]*Context, w)
	for i := range wctx {
		wctx[i] = &Context{s: s, shard: i, buf: &opBuffer{}}
	}
	// Below this, goroutine fan-out costs more than it buys; the batch
	// runs on the serial-fallback path instead.
	minBatch := 2*w + 8
	var (
		batch  []event
		shards = make([][]int32, w)
	)
	for {
		t, ok := s.lq.peekTime()
		if !ok {
			break
		}
		if t < s.now {
			panic("sim: time went backwards")
		}
		// Gather the whole tick: drain the base bucket peekTime just
		// landed on. Handlers have not run, so nothing can be scheduled
		// at t ahead of what is already queued; events pushed at t during
		// this batch's processing are behind every batch member in
		// sequence order and form the next batch. The bucket probe never
		// advances the window, so those pushes (at t, t+1, ...) stay
		// legal.
		batch = batch[:0]
		serialOnly := false
		for {
			var e event
			if !s.lq.pop(&e) || e.at != t {
				// Unreachable: each pop is guarded by a probe that saw an
				// event at t.
				panic("sim: tick batch popped an event off its tick")
			}
			if e.kind == evTimer || e.kind == evFault {
				serialOnly = true
			}
			batch = append(batch, e)
			if !s.lq.curBucketNonEmpty() {
				break
			}
		}
		s.now = t
		if serialOnly || len(batch) < minBatch {
			for i := range batch {
				s.processed++
				if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
					panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
				}
				s.dispatch(s.ctx, &batch[i])
			}
			continue
		}
		s.processed += int64(len(batch))
		if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
		}
		// Shard by destination node: driver state is keyed by node, so
		// two workers never touch the same state, and a fixed node→shard
		// map keeps any per-node ordering within one worker.
		for i := range shards {
			shards[i] = shards[i][:0]
		}
		for i := range batch {
			sh := int(batch[i].to) % w
			shards[sh] = append(shards[sh], int32(i))
		}
		par.ParallelMap(w, w, func(wi int) {
			ctx := wctx[wi]
			ctx.buf.reset()
			for _, bi := range shards[wi] {
				e := &batch[bi]
				ctx.buf.idx = bi
				switch e.kind {
				case evNodeTimer:
					h := s.timerH
					if h == nil {
						panic(fmt.Sprintf("sim: node timer for node %d with no TimerHandler", e.to))
					}
					h(ctx, e.to)
				case evMessage:
					h := s.handler(e.to)
					if h == nil {
						panic(fmt.Sprintf("sim: message for node %d with no handler", e.to))
					}
					h(ctx, e.to, e.from, e.msg)
				case evTimer, evFault:
					// The serialOnly probe routed every batch containing
					// these to the serial dispatch above; reaching here
					// means the routing broke, not the protocol.
					panic("sim: serial-only event kind in parallel batch")
				}
			}
		})
		// Replay the effect logs in batch order. Each worker emitted its
		// ops with ascending batch indices, so a per-buffer cursor and an
		// idx match suffice to merge the logs into the exact serial
		// interleaving.
		for i := range batch {
			buf := wctx[int(batch[i].to)%w].buf
			for buf.cur < len(buf.ops) && buf.ops[buf.cur].idx == int32(i) {
				op := &buf.ops[buf.cur]
				buf.cur++
				switch op.kind {
				case opSend:
					s.send(op.u, op.v, op.msg)
				case opTimer:
					s.scheduleTimer(op.t, op.fn)
				case opNodeTimer:
					s.push(event{at: op.t, kind: evNodeTimer, to: op.v})
				case opRecord:
					op.rec.RecordRequest(op.t, op.h)
				}
			}
		}
	}
	return s.now
}
