package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/tree"
)

// tokenRun drives a self-contained token-bouncing protocol — every node
// fires a timer, sends a token to the root, the root bounces it back,
// and the origin records the round trip — and returns everything a
// worker count could perturb: makespan, counters and the recorded
// distributions.
func tokenRun(t *testing.T, n, rounds, workers int, lat LatencyModel, tx Time) (Time, int64, int64, int64, stats.Dist, stats.Dist) {
	t.Helper()
	nav := tree.BinaryWalker(n)
	rec := stats.NewDistRecorder()
	s := New(Config{
		Topology:   TreeTopology{T: nav},
		Latency:    lat,
		Seed:       7,
		Workers:    workers,
		LinkTxTime: tx,
	})
	issue := make([]Time, n)
	left := make([]int, n)
	for i := range left {
		left[i] = rounds
	}
	s.SetTimerHandler(func(ctx *Context, v graph.NodeID) {
		issue[v] = ctx.Now()
		ctx.Send(v, nav.Parent(v), find{origin: v, up: true})
	})
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		m := msg.(find)
		if m.up {
			if at == nav.Root() {
				ctx.Send(at, nav.NextHop(at, m.origin), find{origin: m.origin})
				return
			}
			ctx.Send(at, nav.Parent(at), m)
			return
		}
		if at != m.origin {
			ctx.Send(at, nav.NextHop(at, m.origin), m)
			return
		}
		ctx.RecordRequest(rec, int64(ctx.Now()-issue[at]), int(nav.Depth(at))*2)
		left[at]--
		if left[at] > 0 {
			// Think time drawn from the counter-based per-event RNG: the
			// draw is keyed by (seed, node, seq), so it must agree across
			// serial and parallel drains — the bit-identity comparison
			// below pins that.
			ctx.AfterNode(1+Time(ctx.Draw(0)%3), at)
		}
	})
	for v := 1; v < n; v++ {
		s.ScheduleNodeAt(Time(1+v%3), graph.NodeID(v))
	}
	mk := s.Run()
	return mk, s.Messages(), s.Hops(), s.EventsProcessed(), rec.Latency.Snapshot(), rec.Hops.Snapshot()
}

type find struct {
	origin graph.NodeID
	up     bool
}

// TestParallelDrainBitIdentical pins the lookahead-windowed parallel drain
// against the serial loop: every observable — makespan, message/hop/
// event counters, and the recorded latency and hop distributions down
// to their floating-point means — must match for every worker count.
// The model × capacity matrix covers every commit mode: "sync" and
// "asyncctr" engage the sharded commit (without and with per-link
// capacity state), "async4" exercises the serial-replay fallback for
// stream-RNG latency, and the protocol draws think times from the
// counter-based Context.Draw in every case.
func TestParallelDrainBitIdentical(t *testing.T) {
	cases := map[string]struct {
		model func() LatencyModel
		tx    Time
	}{
		"sync":        {model: func() LatencyModel { return Synchronous() }},
		"sync/tx":     {model: func() LatencyModel { return Synchronous() }, tx: 2},
		"async4":      {model: func() LatencyModel { return AsyncUniform(4) }},
		"asyncctr":    {model: func() LatencyModel { return AsyncCounter(4) }},
		"asyncctr/tx": {model: func() LatencyModel { return AsyncCounter(4) }, tx: 1},
		// The scaled synchronous model is the wide-window case: MinDelay 8
		// fuses eight ticks per barrier, and the protocol's 1–3-tick think
		// timers all fire mid-window through the in-shard sub-queue.
		"sync8":    {model: func() LatencyModel { return SynchronousScaled(8) }},
		"sync8/tx": {model: func() LatencyModel { return SynchronousScaled(8) }, tx: 2},
	}
	for name, c := range cases {
		mk0, msg0, hop0, ev0, lat0, hops0 := tokenRun(t, 300, 4, 0, c.model(), c.tx)
		for _, w := range []int{2, 3, 8} {
			mk, msg, hop, ev, lat, hops := tokenRun(t, 300, 4, w, c.model(), c.tx)
			if mk != mk0 || msg != msg0 || hop != hop0 || ev != ev0 {
				t.Fatalf("%s workers=%d: (mk=%d msg=%d hop=%d ev=%d), serial (mk=%d msg=%d hop=%d ev=%d)",
					name, w, mk, msg, hop, ev, mk0, msg0, hop0, ev0)
			}
			if !reflect.DeepEqual(lat, lat0) || !reflect.DeepEqual(hops, hops0) {
				t.Fatalf("%s workers=%d: distributions diverged\nlat: %+v\nwant %+v\nhops: %+v\nwant %+v",
					name, w, lat, lat0, hops, hops0)
			}
		}
	}
}

// TestLatencyMinDelay pins every built-in model's lookahead bound: the
// synchronous family promises its scale, everything that can produce a
// unit delay promises exactly 1.
func TestLatencyMinDelay(t *testing.T) {
	cases := []struct {
		m    LatencyModel
		want Time
	}{
		{Synchronous(), 1},
		{SynchronousScaled(8), 8},
		{AsyncUniform(4), 1},
		{AsyncCounter(4), 1},
		{AsyncBimodal(8, 0.5), 1},
	}
	for _, c := range cases {
		if got := c.m.MinDelay(); got != c.want {
			t.Errorf("%s: MinDelay() = %d, want %d", c.m.Name(), got, c.want)
		}
	}
}

// unboundedLat is a window-incompatible model: it cannot bound its
// delays (MinDelay < 1), so Validate must reject it under Workers > 1
// instead of silently degrading.
type unboundedLat struct{ LatencyModel }

func (unboundedLat) MinDelay() Time { return 0 }
func (unboundedLat) Name() string   { return "unbounded" }

// TestValidateRejectsUnboundedMinDelay pins the typed rejection: a
// model whose MinDelay cannot anchor the lookahead window fails
// Validate with a *ConfigError on Workers — but stays legal serially.
func TestValidateRejectsUnboundedMinDelay(t *testing.T) {
	topo := TreeTopology{T: tree.BinaryWalker(8)}
	bad := Config{Topology: topo, Workers: 2, Latency: unboundedLat{Synchronous()}}
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted Workers=2 with an unbounded-MinDelay model")
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Workers" {
		t.Fatalf("Validate error = %v (%T), want *ConfigError on Workers", err, err)
	}
	serial := Config{Topology: topo, Latency: unboundedLat{Synchronous()}}
	if err := serial.Validate(); err != nil {
		t.Fatalf("serial config with unbounded model rejected: %v", err)
	}
}

// TestWindowZeroDelayTimerOrder pins the in-window sub-queue's ordering
// contract directly: a zero-delay node timer created mid-window must
// execute before the same node's pre-scheduled later-tick event — the
// serial (at, seq) order — not drift to the window end or the next
// barrier. The run is wide-window parallel by construction (64 nodes ×
// two initial ticks inside one 8-tick window clears minBatch), verified
// via the drain telemetry.
func TestWindowZeroDelayTimerOrder(t *testing.T) {
	const n = 64
	nav := tree.BinaryWalker(n)
	type step struct {
		label string
		at    Time
	}
	run := func(workers int) ([][]step, DrainStats) {
		s := New(Config{
			Topology: TreeTopology{T: nav},
			Latency:  SynchronousScaled(8),
			Workers:  workers,
		})
		order := make([][]step, n)
		phase := make([]int, n)
		s.SetTimerHandler(func(ctx *Context, v graph.NodeID) {
			switch phase[v] {
			case 0: // tick 1: schedule the zero-delay follow-up
				order[v] = append(order[v], step{"first", ctx.Now()})
				ctx.AfterNode(0, v)
			case 1: // still tick 1, mid-window
				order[v] = append(order[v], step{"zero", ctx.Now()})
			default: // tick 4, same window
				order[v] = append(order[v], step{"later", ctx.Now()})
			}
			phase[v]++
		})
		for v := 0; v < n; v++ {
			s.ScheduleNodeAt(1, graph.NodeID(v))
			s.ScheduleNodeAt(4, graph.NodeID(v))
		}
		s.Run()
		return order, s.DrainStats()
	}
	want := []step{{"first", 1}, {"zero", 1}, {"later", 4}}
	serial, _ := run(0)
	for _, workers := range []int{0, 2, 4} {
		order, ds := run(workers)
		for v := range order {
			if !reflect.DeepEqual(order[v], want) {
				t.Fatalf("workers=%d node %d ran %v, want %v", workers, v, order[v], want)
			}
		}
		if !reflect.DeepEqual(order, serial) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
		if workers > 1 {
			if ds.WindowWidth != 8 || ds.Windows < 1 || ds.MeanBatch() <= 0 {
				t.Fatalf("workers=%d: no parallel window ran (stats %+v); the test exercised only the fallback", workers, ds)
			}
		}
	}
}

// noIdxTopo hides a topology's LinkIndexer, forcing the map link tier.
type noIdxTopo struct{ Topology }

// TestCommitShardable pins the commit-mode decision: the sharded commit
// engages exactly when delays are deterministic per message and link
// state is dense or absent.
func TestCommitShardable(t *testing.T) {
	tree8 := TreeTopology{T: tree.BinaryWalker(8)}
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"sync", Config{Topology: tree8, Workers: 2}, true},
		{"sync/capacity", Config{Topology: tree8, Workers: 2, LinkTxTime: 1}, true},
		{"counter", Config{Topology: tree8, Workers: 2, Latency: AsyncCounter(4)}, true},
		{"stream-rng", Config{Topology: tree8, Workers: 2, Latency: AsyncUniform(4)}, false},
		{"counter/map-tier", Config{Topology: noIdxTopo{tree8}, Workers: 2, Latency: AsyncCounter(4)}, false},
		{"sync/paged-capacity", Config{Topology: NewCompleteTopology(100000), Workers: 2, LinkTxTime: 1}, false},
	}
	for _, c := range cases {
		if got := New(c.cfg).commitShardable(); got != c.want {
			t.Errorf("%s: commitShardable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestConfigValidate pins the typed validation front door: malformed
// configs come back as *ConfigError (the drivers and engine surface
// them as errors), and a well-formed parallel config passes.
func TestConfigValidate(t *testing.T) {
	topo := TreeTopology{T: tree.BinaryWalker(8)}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"nil-topology", Config{}},
		{"negative-tx", Config{Topology: topo, LinkTxTime: -1}},
		{"workers-lifo", Config{Topology: topo, Workers: 2, Arbitration: ArbLIFO}},
		{"workers-random", Config{Topology: topo, Workers: 2, Arbitration: ArbRandom}},
		{"workers-heap", Config{Topology: topo, Workers: 2, Scheduler: SchedHeap}},
		{"workers-faults", Config{Topology: topo, Workers: 2, Faults: &FaultPlan{}}},
	}
	for _, c := range bad {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate returned nil, want error", c.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: Validate error %T is not *ConfigError", c.name, err)
		}
	}
	good := Config{Topology: topo, Workers: 8, LinkTxTime: 3, Latency: AsyncCounter(2)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestParallelConfigGuards pins the New-time rejections: the drain can
// only reproduce serial order under FIFO arbitration on the ladder
// scheduler without faults.
func TestParallelConfigGuards(t *testing.T) {
	topo := TreeTopology{T: tree.BinaryWalker(8)}
	expectPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: New did not panic", name)
			}
		}()
		New(cfg)
	}
	expectPanic("lifo", Config{Topology: topo, Workers: 2, Arbitration: ArbLIFO})
	expectPanic("random", Config{Topology: topo, Workers: 2, Arbitration: ArbRandom})
	expectPanic("heap", Config{Topology: topo, Workers: 2, Scheduler: SchedHeap})
	expectPanic("faults", Config{Topology: topo, Workers: 2, Faults: &FaultPlan{}})
}

// TestCompleteTopologyMatchesMetric pins the implicit complete metric
// against the materialized one on the pairs both can answer.
func TestCompleteTopologyMatchesMetric(t *testing.T) {
	n := 9
	m := NewMetricTopology(graph.Complete(n))
	c := NewCompleteTopology(n)
	if c.NumNodes() != m.NumNodes() || c.NumLinks() != m.NumLinks() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", c.NumNodes(), c.NumLinks(), m.NumNodes(), m.NumLinks())
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			uu, vv := graph.NodeID(u), graph.NodeID(v)
			cw, cok := c.Latency(uu, vv)
			mw, mok := m.Latency(uu, vv)
			if cw != mw || cok != mok {
				t.Fatalf("Latency(%d,%d) = (%d,%v), want (%d,%v)", u, v, cw, cok, mw, mok)
			}
			if cok {
				if c.Hops(uu, vv) != m.Hops(uu, vv) {
					t.Fatalf("Hops(%d,%d) mismatch", u, v)
				}
				if c.LinkIndex(uu, vv) != m.LinkIndex(uu, vv) {
					t.Fatalf("LinkIndex(%d,%d) mismatch", u, v)
				}
			}
			if c.Dist(uu, vv) != m.Dist(uu, vv) {
				t.Fatalf("Dist(%d,%d) mismatch", u, v)
			}
		}
	}
}
