package sim

import (
	"math/bits"
	"slices"

	"repro/internal/graph"
)

// SchedulerKind selects the event-queue implementation backing a
// Simulator. Both schedulers realize the exact same total event order —
// ascending (at, pri, seq) — so a run's trace, metrics and makespan are
// bit-identical under either; TestSchedulerEquivalence pins that. The
// selector exists for that equivalence test and for benchmarking the two
// against each other, not as a tuning knob.
type SchedulerKind uint8

const (
	// SchedLadder is the default: a bucketed ladder/calendar queue with
	// O(1) push/pop for the near-future delays that dominate the
	// synchronous model, plus a binary-heap overflow tier for far-future
	// events.
	SchedLadder SchedulerKind = iota
	// SchedHeap is the previous implementation: a single binary min-heap,
	// O(log pending) per operation.
	SchedHeap
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedLadder:
		return "ladder"
	case SchedHeap:
		return "heap"
	default:
		return "scheduler(?)"
	}
}

type evKind uint8

const (
	evTimer evKind = iota
	evNodeTimer
	evMessage
	// evFault applies a FaultPlan transition; msg carries *compiledFault.
	evFault
)

type event struct {
	at   Time
	pri  int64
	seq  uint64
	kind evKind
	to   graph.NodeID
	from graph.NodeID
	msg  Message
	fn   TimerFunc
}

// before is the scheduler total order: time, then arbitration priority,
// then scheduling sequence (unique, so the order is total and every
// scheduler realizes the same one).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.pri != o.pri {
		return e.pri < o.pri
	}
	return e.seq < o.seq
}

// samePriBefore is the within-bucket order: all bucket events share a
// timestamp, so only (pri, seq) discriminates.
func samePriBefore(x, y *event) bool {
	if x.pri != y.pri {
		return x.pri < y.pri
	}
	return x.seq < y.seq
}

// cmpEvent adapts samePriBefore for slices.SortFunc. A top-level
// function rather than a closure so sorting a bucket allocates nothing.
func cmpEvent(x, y event) int {
	if samePriBefore(&x, &y) {
		return -1
	}
	return 1
}

// eventHeap is a hand-rolled min-heap of event values: events live inline
// in the backing array, so pushing a message costs zero heap allocations
// (container/heap would box every event through its any-typed interface).
// It is the SchedHeap scheduler and the ladder queue's overflow tier.
type eventHeap []event

func (h eventHeap) less(i, j int) bool { return h[i].before(&h[j]) }

// push sift-ups into the value-typed heap; the append is the amortized
// backing-array grow, zero-alloc at steady state.
//
//arrow:hotpath heap-scheduler enqueue
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

//arrow:hotpath sift-down on the value-typed heap
func (h *eventHeap) pop() event {
	a := *h
	n := len(a) - 1
	top := a[0]
	a[0] = a[n]
	a[n] = event{} // release msg/fn references
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}

const (
	// ringBits sizes the ladder's bucket ring: one bucket per simulated
	// tick, covering delays up to ringSize ticks ahead without touching
	// the overflow tier. 512 covers every delay the synchronous and
	// scaled-async models produce on the paper's topologies while the
	// ring itself stays one 4 KB array of list heads.
	ringBits = 9
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
	// overflowRetainCap bounds the overflow tier's retained backing
	// array: when a refill drains the tier completely, anything larger is
	// released to the GC. The steady-state closed loops never use the
	// tier, so a static-set burst (many far-future release times) no
	// longer pins its peak capacity for the life of the run.
	overflowRetainCap = 1024
)

// nilSlot terminates bucket lists and the freelist.
const nilSlot = int32(-1)

// eslot is one arena cell: an event plus its intrusive list link. All
// pending in-window events live in one shared arena, so buckets cost no
// storage of their own — pushing links a recycled cell into a per-tick
// list, and the arena grows (amortized, like the heap's backing array)
// only when the pending count reaches a new peak.
type eslot struct {
	ev   event
	next int32
}

// tickBucket is an intrusive singly-linked list of arena slots holding
// one tick's pending events, drained from head.
type tickBucket struct {
	head, tail int32
}

// ladderQueue is the default scheduler: a rotating ring of per-tick
// bucket lists over a shared event arena for events within the current
// ringSize-tick window, plus a min-heap overflow tier for events at or
// beyond the window's horizon.
//
// Invariants:
//   - every ring event's time lies in [base, horizon), every overflow
//     event's at or beyond horizon, and horizon - base <= ringSize, so
//     bucket slot at&ringMask is collision-free and the nearest occupied
//     slot (found via the occupancy bitmap) is always the earliest
//     pending tick;
//   - horizon only moves on refill, when the ring is empty, so ring
//     events never need to overtake overflow events;
//   - each bucket list is in (pri, seq) order by the time it drains:
//     FIFO maintains it by appending (pri equals seq, and refill pours
//     ascending before strictly-newer pushes append), LIFO by
//     prepending fresh pushes (newer means smaller pri), and random
//     arbitration by a one-time sort when the tick becomes current plus
//     ordered insertion for same-tick pushes during its drain.
//
// Push and pop are O(1) for in-window events — the regime of the
// synchronous model, where nearly all delays are small integers — and
// O(log overflow) for the rare far-future event. Arena cells recycle
// through a freelist, so the steady state allocates nothing.
type ladderQueue struct {
	arb     Arbitration
	base    Time // tick currently being drained; no pending event is earlier
	horizon Time // ring covers [base, horizon); later events go to overflow
	size    int  // total pending events (ring + overflow)
	ringCnt int  // occupied buckets
	// curPrepared marks the current bucket's list as sorted for random
	// arbitration (set when its drain starts, cleared when base moves).
	curPrepared bool

	arena    []eslot
	free     int32 // freelist head through eslot.next
	occupied [ringSize / 64]uint64
	ring     [ringSize]tickBucket
	overflow eventHeap
	scratch  []event // random-arbitration sort buffer, recycled
}

func (q *ladderQueue) init(arb Arbitration) {
	q.arb = arb
	q.horizon = ringSize
	q.free = nilSlot
	for i := range q.ring {
		q.ring[i] = tickBucket{head: nilSlot, tail: nilSlot}
	}
}

// alloc returns a free arena slot, growing the arena at a new pending
// peak.
//
//arrow:hotpath one slot per enqueue; the arena append grows only at a new pending peak
func (q *ladderQueue) alloc() int32 {
	if s := q.free; s != nilSlot {
		q.free = q.arena[s].next
		return s
	}
	q.arena = append(q.arena, eslot{})
	return int32(len(q.arena) - 1)
}

//arrow:hotpath O(1) enqueue: tick bucket or overflow heap
func (q *ladderQueue) push(e *event) {
	if e.at < q.base {
		panic("sim: scheduling into the past")
	}
	q.size++
	if e.at >= q.horizon {
		q.overflow.push(*e)
		return
	}
	q.bucketPush(e, true)
}

// bucketPush links e into its tick's list. direct distinguishes fresh
// pushes (which see arbitration-specific placement) from refill pours,
// which always append: the overflow heap emits each tick's events in
// ascending (pri, seq) order already.
//
//arrow:hotpath list-link into the tick bucket
func (q *ladderQueue) bucketPush(e *event, direct bool) {
	idx := int(e.at) & ringMask
	b := &q.ring[idx]
	s := q.alloc()
	q.arena[s].ev = *e
	if b.head == nilSlot {
		q.occupied[idx>>6] |= 1 << (idx & 63)
		q.ringCnt++
		q.arena[s].next = nilSlot
		b.head, b.tail = s, s
		return
	}
	if direct {
		switch q.arb {
		case ArbLIFO:
			// A fresh push has the largest seq, hence the smallest pri:
			// it pops before everything already listed.
			q.arena[s].next = b.head
			b.head = s
			return
		case ArbRandom:
			if q.curPrepared && e.at == q.base {
				q.insertSorted(b, s)
				return
			}
		case ArbFIFO:
			// Largest seq pops last: the tail append below is already
			// FIFO placement.
		}
	}
	q.arena[s].next = nilSlot
	q.arena[b.tail].next = s
	b.tail = s
}

// insertSorted places slot s into the sorted remainder of the current
// bucket. Only same-tick scheduling during the tick's own drain under
// random arbitration lands here, so the list walk is off the hot path.
func (q *ladderQueue) insertSorted(b *tickBucket, s int32) {
	e := &q.arena[s].ev
	if samePriBefore(e, &q.arena[b.head].ev) {
		q.arena[s].next = b.head
		b.head = s
		return
	}
	p := b.head
	for {
		n := q.arena[p].next
		if n == nilSlot || samePriBefore(e, &q.arena[n].ev) {
			break
		}
		p = n
	}
	q.arena[s].next = q.arena[p].next
	q.arena[p].next = s
	if q.arena[s].next == nilSlot {
		b.tail = s
	}
}

// prepareRandom sorts the current bucket's list contents by (pri, seq):
// random-arbitration priorities arrive in push order, not sorted order.
// The list structure is kept and only the stored events permuted, via a
// recycled scratch buffer and an allocation-free comparator.
func (q *ladderQueue) prepareRandom(b *tickBucket) {
	q.scratch = q.scratch[:0]
	for s := b.head; s != nilSlot; s = q.arena[s].next {
		q.scratch = append(q.scratch, q.arena[s].ev)
	}
	slices.SortFunc(q.scratch, cmpEvent)
	i := 0
	for s := b.head; s != nilSlot; s = q.arena[s].next {
		q.arena[s].ev = q.scratch[i]
		q.scratch[i] = event{} // release msg/fn references
		i++
	}
}

// pop writes the earliest pending event into out, avoiding intermediate
// copies of the (several-word) event struct on the hottest path.
//
//arrow:hotpath O(1) dequeue
func (q *ladderQueue) pop(out *event) bool {
	if q.size == 0 {
		return false
	}
	for {
		idx := int(q.base) & ringMask
		b := &q.ring[idx]
		if s := b.head; s != nilSlot {
			if q.arb == ArbRandom && !q.curPrepared {
				q.prepareRandom(b)
				q.curPrepared = true
			}
			c := &q.arena[s]
			*out = c.ev
			// Release only the reference fields; the scalar fields are
			// dead weight the GC does not scan.
			c.ev.msg = nil
			c.ev.fn = nil
			b.head = c.next
			if b.head == nilSlot {
				b.tail = nilSlot
				q.occupied[idx>>6] &^= 1 << (idx & 63)
				q.ringCnt--
				q.curPrepared = false
			}
			c.next = q.free
			q.free = s
			q.size--
			return true
		}
		q.curPrepared = false
		if q.ringCnt > 0 {
			q.base += Time(q.nextOccupiedDelta(idx))
			continue
		}
		q.refill()
	}
}

// peekTime returns the timestamp of the earliest pending event without
// popping it. It advances the ring window exactly as pop would (base
// moves, empty rings refill from overflow), so the pops that follow
// stay O(1); the pending set and its order are untouched. The parallel
// drain uses it to delimit one tick's batch.
func (q *ladderQueue) peekTime() (Time, bool) {
	if q.size == 0 {
		return 0, false
	}
	for {
		idx := int(q.base) & ringMask
		if q.ring[idx].head != nilSlot {
			return q.base, true
		}
		q.curPrepared = false
		if q.ringCnt > 0 {
			q.base += Time(q.nextOccupiedDelta(idx))
			continue
		}
		q.refill()
	}
}

// curBucketNonEmpty reports whether the tick at the window base still
// holds events. Valid right after peekTime returned that tick; unlike
// another peekTime call it never advances the window, which matters to
// the parallel drain — events the current tick's handlers schedule must
// still be allowed at base+1 and later.
func (q *ladderQueue) curBucketNonEmpty() bool {
	return q.size > 0 && q.ring[int(q.base)&ringMask].head != nilSlot
}

// nextTickWithin advances base to the next occupied tick if — and only
// if — that tick is strictly below limit, returning it. When the next
// pending tick is at or past limit (or nothing is pending) base stays
// where it is, so events the caller pushes afterwards at limit and
// later remain legal: this is how the parallel drain walks every
// bucket of a lookahead window [t, t+L) without ever moving the window
// past events the fused batch will commit at t+L. Valid only when the
// bucket at base has just been drained (pop leaves base on the emptied
// tick).
func (q *ladderQueue) nextTickWithin(limit Time) (Time, bool) {
	if q.size == 0 {
		return 0, false
	}
	if q.ringCnt > 0 {
		next := q.base + Time(q.nextOccupiedDelta(int(q.base)&ringMask))
		if next >= limit {
			return 0, false
		}
		q.curPrepared = false
		q.base = next
		return next, true
	}
	// Ring empty: the earliest pending event sits in overflow. Refill
	// only when it falls inside the window — a refill moves base there.
	if q.overflow[0].at >= limit {
		return 0, false
	}
	q.curPrepared = false
	q.refill()
	return q.base, true
}

// nextOccupiedDelta returns the circular distance from slot idx to the
// next occupied slot — equal to the tick gap, since all ring events lie
// within one window. Callers guarantee ringCnt > 0 and slot idx itself
// empty, so a set bit exists within distance ringSize-1 and the scan
// terminates before wrapping past its start.
func (q *ladderQueue) nextOccupiedDelta(idx int) int {
	for d := 1; ; d += 64 - ((idx + d) & 63) {
		i := (idx + d) & ringMask
		if w := q.occupied[i>>6] >> (i & 63); w != 0 {
			return d + bits.TrailingZeros64(w)
		}
	}
}

// refill advances the window to the earliest overflow event and pulls
// everything within the new window into the ring. Called only when the
// ring is empty and events remain, so overflow is non-empty. A
// completely drained overflow tier releases its oversized backing array
// — the one place transient bursts could otherwise pin peak memory for
// the rest of the run.
func (q *ladderQueue) refill() {
	q.base = q.overflow[0].at
	q.horizon = q.base + ringSize
	for len(q.overflow) > 0 && q.overflow[0].at < q.horizon {
		e := q.overflow.pop()
		q.bucketPush(&e, false)
	}
	if len(q.overflow) == 0 && cap(q.overflow) > overflowRetainCap {
		q.overflow = nil
	}
}
