package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
)

// traceEntry is one processed event, the unit of the cross-scheduler
// equivalence property: two schedulers are equivalent iff they produce
// identical traces.
type traceEntry struct {
	at       Time
	kind     evKind
	to, from graph.NodeID
}

// runTrace drives a randomized workload that exercises every scheduler
// code path — unit and multi-tick delays, node and closure timers,
// same-tick scheduling during the current tick's drain, and far-future
// delays that cross the ladder's ring horizon into the overflow tier
// (with multiple window refills) — and records the processed-event
// trace. All randomness flows through the simulator's own seeded
// streams, so for a fixed config the trace is a pure function of the
// event order the scheduler realizes.
func runTrace(t *testing.T, kind SchedulerKind, arb Arbitration, lat LatencyModel, seed int64) []traceEntry {
	t.Helper()
	tr := tree.PathTree(4)
	s := New(Config{
		Topology:    TreeTopology{T: tr},
		Latency:     lat,
		Arbitration: arb,
		Seed:        seed,
		Scheduler:   kind,
		MaxEvents:   200000,
	})
	var trace []traceEntry
	budget := 4000
	spawn := func(ctx *Context, at graph.NodeID) {
		if budget <= 0 {
			return
		}
		budget--
		r := ctx.Rand()
		switch r.Intn(5) {
		case 0:
			// Far-future node timer: usually beyond the ring horizon.
			ctx.AfterNode(Time(1+r.Intn(3*ringSize)), at)
		case 1:
			// Same-tick closure timer: inserts into the bucket being
			// drained right now.
			to := at
			ctx.After(0, func(ctx *Context) {
				trace = append(trace, traceEntry{ctx.Now(), evTimer, to, -1})
			})
		case 2:
			ctx.AfterNode(Time(1+r.Intn(7)), at)
		default:
			next := at - 1
			if at == 0 {
				next = 1
			}
			ctx.Send(at, next, nil)
		}
	}
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		trace = append(trace, traceEntry{ctx.Now(), evMessage, at, from})
		spawn(ctx, at)
		spawn(ctx, at)
	})
	s.SetTimerHandler(func(ctx *Context, v graph.NodeID) {
		trace = append(trace, traceEntry{ctx.Now(), evNodeTimer, v, -1})
		spawn(ctx, v)
	})
	for v := graph.NodeID(0); v < 4; v++ {
		s.ScheduleNodeAt(Time(v)*700, v) // staggered past the first horizon
	}
	s.Run()
	return trace
}

// TestSchedulerEquivalence pins the tentpole invariant: the ladder queue
// realizes the exact (at, pri, seq) total order of the binary heap —
// event for event — across arbitration modes, latency models and seeds.
func TestSchedulerEquivalence(t *testing.T) {
	models := []struct {
		name string
		m    LatencyModel
	}{
		{"sync", nil},
		{"async-uniform", AsyncUniform(4)},
		{"async-bimodal", AsyncBimodal(8, 0.25)},
	}
	for _, arb := range []Arbitration{ArbFIFO, ArbLIFO, ArbRandom} {
		for _, lm := range models {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%v/%s/seed=%d", arb, lm.name, seed)
				heap := runTrace(t, SchedHeap, arb, lm.m, seed)
				ladder := runTrace(t, SchedLadder, arb, lm.m, seed)
				if len(heap) != len(ladder) {
					t.Errorf("%s: trace lengths differ: heap %d, ladder %d", name, len(heap), len(ladder))
					continue
				}
				for i := range heap {
					if heap[i] != ladder[i] {
						t.Errorf("%s: traces diverge at event %d: heap %+v, ladder %+v",
							name, i, heap[i], ladder[i])
						break
					}
				}
			}
		}
	}
}

// TestLadderReleasesOverflowStorage is the scheduler-memory pin
// (alongside engine's 100k-request recorder-memory pin): a burst of
// far-future events grows the overflow tier once, and draining it
// releases the oversized backing array instead of pinning peak capacity
// for the life of the run — while the ring's arena stays proportional
// to the in-flight event count, not the total.
func TestLadderReleasesOverflowStorage(t *testing.T) {
	const far = 5000
	s := New(Config{Topology: TreeTopology{T: tree.PathTree(2)}})
	s.SetTimerHandler(func(ctx *Context, v graph.NodeID) {})
	for i := 1; i <= far; i++ {
		// 600-tick spacing: every event is beyond the previous window,
		// so the run performs ~5000 refills, draining overflow slowly.
		s.ScheduleNodeAt(Time(i)*600, 0)
	}
	if c := cap(s.lq.overflow); c < far-1 {
		t.Fatalf("test premise broken: overflow tier holds cap %d, want >= %d", c, far-1)
	}
	s.Run()
	if s.lq.overflow != nil {
		t.Errorf("drained overflow tier retains cap %d, want released (nil)", cap(s.lq.overflow))
	}
	if s.lq.size != 0 || s.lq.ringCnt != 0 {
		t.Errorf("queue not empty after run: size=%d ringCnt=%d", s.lq.size, s.lq.ringCnt)
	}
	if got := len(s.lq.arena); got > 64 {
		t.Errorf("arena grew to %d slots for a 1-in-flight workload; want peak-pending-sized", got)
	}
}

// TestLadderOverflowBelowRetainCapKept: small overflow arrays are reused,
// not churned.
func TestLadderOverflowBelowRetainCapKept(t *testing.T) {
	s := New(Config{Topology: TreeTopology{T: tree.PathTree(2)}})
	s.SetTimerHandler(func(ctx *Context, v graph.NodeID) {})
	for i := 1; i <= 16; i++ {
		s.ScheduleNodeAt(Time(i)*600, 0)
	}
	s.Run()
	if s.lq.overflow == nil || cap(s.lq.overflow) > overflowRetainCap {
		t.Errorf("small overflow array not retained: %v (cap %d)", s.lq.overflow == nil, cap(s.lq.overflow))
	}
}

func TestSatMulSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, math.MaxInt64, 0},
		{1, math.MaxInt64, math.MaxInt64},
		{3, 4, 12},
		{math.MaxInt64 / 2, 3, math.MaxInt64},
		{int64(1) << 40, int64(1) << 30, math.MaxInt64},
	}
	for _, c := range cases {
		if got := SatMul(c.a, c.b); got != c.want {
			t.Errorf("SatMul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := SatMul(c.b, c.a); got != c.want {
			t.Errorf("SatMul(%d, %d) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
	if got := SatAdd(math.MaxInt64-10, 11); got != math.MaxInt64 {
		t.Errorf("SatAdd near max = %d, want saturation", got)
	}
	if got := SatAdd(40, 2); got != 42 {
		t.Errorf("SatAdd(40, 2) = %d", got)
	}
}

// BenchmarkSchedulerPushPop measures raw steady-state scheduler
// throughput: a pending set of the given size with uniformly random
// delays, popping one event and pushing its replacement per iteration.
// delay16 stays within the ladder's ring (the synchronous regime);
// delay4096 crosses into the heap-backed overflow tier, the ladder's
// worst case. Run with -benchmem: the steady state of both schedulers
// is allocation-free.
func BenchmarkSchedulerPushPop(b *testing.B) {
	for _, kind := range []SchedulerKind{SchedLadder, SchedHeap} {
		for _, pending := range []int{64, 1024, 65536} {
			for _, maxDelay := range []int{16, 4096} {
				name := fmt.Sprintf("%v/pending=%d/delay=%d", kind, pending, maxDelay)
				b.Run(name, func(b *testing.B) {
					var lq ladderQueue
					lq.init(ArbFIFO)
					var h eventHeap
					var seq uint64
					now := Time(0)
					rng := rand.New(rand.NewSource(1))
					push := func(d Time) {
						seq++
						e := event{at: now + d, pri: int64(seq), seq: seq}
						if kind == SchedHeap {
							h.push(e)
						} else {
							lq.push(&e)
						}
					}
					for i := 0; i < pending; i++ {
						push(1 + Time(rng.Intn(maxDelay)))
					}
					b.ReportAllocs()
					b.ResetTimer()
					var e event
					for i := 0; i < b.N; i++ {
						if kind == SchedHeap {
							e = h.pop()
						} else {
							lq.pop(&e)
						}
						now = e.at
						push(1 + Time(rng.Intn(maxDelay)))
					}
				})
			}
		}
	}
}
