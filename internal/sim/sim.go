// Package sim is a deterministic discrete-event simulator for asynchronous
// message-passing networks with FIFO links — the communication model of
// the paper (Section 3.1). It supports:
//
//   - synchronous execution, where every message on an edge of weight w is
//     delivered exactly w time units after it is sent (the paper's unit
//     latency model when w = 1);
//   - asynchronous execution, where message delays are drawn per message
//     from a seeded RNG, normalized so the slowest message over an edge of
//     weight w takes w·scale units (Section 3.8's "slowest message is 1"
//     scaling), while link FIFO order is preserved;
//   - configurable arbitration of simultaneously arriving messages (FIFO /
//     LIFO / seeded random), matching the paper's claim that the analysis
//     holds for any local processing order.
//
// The simulator is single-threaded and fully deterministic for a fixed
// seed, which makes protocol costs exactly reproducible.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Time is a simulated timestamp. The synchronous model of the paper uses
// integral times; asynchronous runs use scaled integral times.
type Time = int64

// Message is an opaque protocol payload.
type Message any

// Handler processes a message arriving at node `at` from node `from` at
// the simulator's current time. Handlers run atomically (the simulator is
// single-threaded), matching the paper's atomic path-reversal step.
type Handler func(ctx *Context, at, from graph.NodeID, msg Message)

// TimerFunc is a scheduled local action at a node.
type TimerFunc func(ctx *Context)

// Arbitration selects the processing order of events that carry identical
// timestamps.
type Arbitration int

const (
	// ArbFIFO processes same-time events in the order they were scheduled.
	ArbFIFO Arbitration = iota
	// ArbLIFO processes same-time events in reverse scheduling order.
	ArbLIFO
	// ArbRandom processes same-time events in seeded random order.
	ArbRandom
)

func (a Arbitration) String() string {
	switch a {
	case ArbFIFO:
		return "fifo"
	case ArbLIFO:
		return "lifo"
	case ArbRandom:
		return "random"
	default:
		return fmt.Sprintf("arbitration(%d)", int(a))
	}
}

// Topology tells the simulator which point-to-point sends are legal and
// how expensive they are.
type Topology interface {
	// Latency returns the nominal latency of a message from u to v and
	// whether the pair may communicate directly.
	Latency(u, v graph.NodeID) (graph.Weight, bool)
	// Hops returns the number of physical link traversals a message from
	// u to v represents (1 for a direct link, path length for routed
	// metric topologies). Used for message-count accounting.
	Hops(u, v graph.NodeID) int
	// NumNodes returns the node count.
	NumNodes() int
}

// LinkIndexer is an optional Topology extension: a topology that can
// enumerate its directed links as a dense index range lets the simulator
// keep per-link FIFO state in a flat slice instead of a map — the hot
// path of every send.
type LinkIndexer interface {
	// NumLinks returns the number of directed-link slots; LinkIndex
	// results are in [0, NumLinks).
	NumLinks() int
	// LinkIndex returns the dense index of the directed link u -> v. It is
	// only called for pairs Latency reported as connected.
	LinkIndex(u, v graph.NodeID) int
}

// Config configures a Simulator.
type Config struct {
	Topology Topology
	// Latency is the delay model; defaults to Synchronous() when nil.
	Latency LatencyModel
	// Arbitration of simultaneous events; defaults to ArbFIFO.
	Arbitration Arbitration
	// Seed drives random arbitration and random latency; ignored otherwise.
	Seed int64
	// MaxEvents aborts the run (with a panic describing a likely protocol
	// bug) after this many events; 0 means no limit.
	MaxEvents int64
}

// Simulator is a deterministic discrete-event engine.
type Simulator struct {
	cfg      Config
	now      Time
	events   eventHeap
	seq      uint64
	handlers []Handler

	// Per-directed-link FIFO state: the dense slice is used when the
	// topology implements LinkIndexer, the map otherwise.
	linkIdx  LinkIndexer
	linkFIFO []Time
	lastArr  map[linkKey]Time

	// Independent seeded streams: rng is the protocol-visible stream
	// (Context.Rand), latRNG drives the latency model and arbRNG random
	// arbitration. Separate streams mean enabling random latency does not
	// perturb arbitration draws and vice versa.
	rng    *rand.Rand
	latRNG *rand.Rand
	arbRNG *rand.Rand

	processed int64 // number of events processed
	messages  int64
	hops      int64
}

type linkKey struct{ u, v graph.NodeID }

// DeriveSeed derives an independent stream seed from a base seed via a
// splitmix64 step, so streams are decorrelated even for adjacent base
// seeds or stream indices. The simulator uses it for its internal
// latency/arbitration streams; the engine layer reuses it for per-cell
// experiment seeds.
func DeriveSeed(seed int64, stream int) int64 {
	z := uint64(seed) + (uint64(stream)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// New creates a simulator from cfg. Node handlers default to a no-op and
// are installed with SetHandler / SetAllHandlers.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("sim: nil topology")
	}
	if cfg.Latency == nil {
		cfg.Latency = Synchronous()
	}
	s := &Simulator{
		cfg:      cfg,
		handlers: make([]Handler, cfg.Topology.NumNodes()),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		latRNG:   rand.New(rand.NewSource(DeriveSeed(cfg.Seed, 1))),
		arbRNG:   rand.New(rand.NewSource(DeriveSeed(cfg.Seed, 2))),
	}
	if li, ok := cfg.Topology.(LinkIndexer); ok {
		s.linkIdx = li
		s.linkFIFO = make([]Time, li.NumLinks())
	} else {
		s.lastArr = make(map[linkKey]Time)
	}
	return s
}

// SetHandler installs the message handler for one node.
func (s *Simulator) SetHandler(v graph.NodeID, h Handler) { s.handlers[v] = h }

// SetAllHandlers installs the same handler on every node; protocols that
// keep state in arrays indexed by node typically use this.
func (s *Simulator) SetAllHandlers(h Handler) {
	for i := range s.handlers {
		s.handlers[i] = h
	}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Messages returns the number of logical sends performed so far.
func (s *Simulator) Messages() int64 { return s.messages }

// Hops returns the number of physical link traversals so far (equals
// Messages on direct topologies).
func (s *Simulator) Hops() int64 { return s.hops }

// EventsProcessed returns the number of events the run has consumed.
func (s *Simulator) EventsProcessed() int64 { return s.processed }

// Context is handed to handlers and timers; it exposes the simulator
// operations that are legal during event processing.
type Context struct{ s *Simulator }

// Now returns the current simulated time.
func (c *Context) Now() Time { return c.s.now }

// Send transmits msg from u to v. The pair must be connected in the
// topology. Delivery preserves per-link FIFO order.
func (c *Context) Send(u, v graph.NodeID, msg Message) { c.s.send(u, v, msg) }

// After schedules fn to run at node-local time Now()+d.
func (c *Context) After(d Time, fn TimerFunc) { c.s.scheduleTimer(c.s.now+d, fn) }

// Rand returns the simulator's seeded RNG (deterministic per run).
func (c *Context) Rand() *rand.Rand { return c.s.rng }

func (s *Simulator) send(u, v graph.NodeID, msg Message) {
	w, ok := s.cfg.Topology.Latency(u, v)
	if !ok {
		panic(fmt.Sprintf("sim: illegal send %d -> %d (not connected in topology)", u, v))
	}
	delay := s.cfg.Latency.Delay(w, s.latRNG)
	if delay < 1 {
		delay = 1
	}
	arrive := s.now + delay
	// FIFO: never overtake an earlier message on this link. Arrivals are
	// always >= 1, so a zero slot means "no prior message".
	if s.linkFIFO != nil {
		idx := s.linkIdx.LinkIndex(u, v)
		if last := s.linkFIFO[idx]; arrive < last {
			arrive = last
		}
		s.linkFIFO[idx] = arrive
	} else {
		key := linkKey{u, v}
		if last, ok := s.lastArr[key]; ok && arrive < last {
			arrive = last
		}
		s.lastArr[key] = arrive
	}
	s.messages++
	s.hops += int64(s.cfg.Topology.Hops(u, v))
	s.push(event{at: arrive, kind: evMessage, to: v, from: u, msg: msg})
}

// ScheduleAt schedules fn at absolute time t (>= current time). It is the
// entry point for injecting external queuing requests before Run.
func (s *Simulator) ScheduleAt(t Time, fn TimerFunc) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule in the past (t=%d now=%d)", t, s.now))
	}
	s.scheduleTimer(t, fn)
}

func (s *Simulator) scheduleTimer(t Time, fn TimerFunc) {
	s.push(event{at: t, kind: evTimer, fn: fn})
}

func (s *Simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	switch s.cfg.Arbitration {
	case ArbFIFO:
		e.pri = int64(e.seq)
	case ArbLIFO:
		e.pri = -int64(e.seq)
	case ArbRandom:
		e.pri = s.arbRNG.Int63()
	}
	s.events.push(e)
}

// Run processes events until the queue is empty and returns the final
// simulated time (the makespan).
func (s *Simulator) Run() Time {
	ctx := &Context{s: s}
	for len(s.events) > 0 {
		e := s.events.pop()
		if e.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = e.at
		s.processed++
		if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
		}
		switch e.kind {
		case evTimer:
			e.fn(ctx)
		case evMessage:
			h := s.handlers[e.to]
			if h == nil {
				panic(fmt.Sprintf("sim: message for node %d with no handler", e.to))
			}
			h(ctx, e.to, e.from, e.msg)
		}
	}
	return s.now
}

type evKind uint8

const (
	evTimer evKind = iota
	evMessage
)

type event struct {
	at   Time
	pri  int64
	seq  uint64
	kind evKind
	to   graph.NodeID
	from graph.NodeID
	msg  Message
	fn   TimerFunc
}

// eventHeap is a hand-rolled min-heap of event values: events live inline
// in the backing array, so pushing a message costs zero heap allocations
// (container/heap would box every event through its any-typed interface).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	a := *h
	n := len(a) - 1
	top := a[0]
	a[0] = a[n]
	a[n] = event{} // release msg/fn references
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}
