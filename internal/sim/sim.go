// Package sim is a deterministic discrete-event simulator for asynchronous
// message-passing networks with FIFO links — the communication model of
// the paper (Section 3.1). It supports:
//
//   - synchronous execution, where every message on an edge of weight w is
//     delivered exactly w time units after it is sent (the paper's unit
//     latency model when w = 1);
//   - asynchronous execution, where message delays are drawn per message
//     from a seeded RNG, normalized so the slowest message over an edge of
//     weight w takes w·scale units (Section 3.8's "slowest message is 1"
//     scaling), while link FIFO order is preserved;
//   - configurable arbitration of simultaneously arriving messages (FIFO /
//     LIFO / seeded random), matching the paper's claim that the analysis
//     holds for any local processing order.
//
// The simulator is single-threaded and fully deterministic for a fixed
// seed, which makes protocol costs exactly reproducible.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Time is a simulated timestamp. The synchronous model of the paper uses
// integral times; asynchronous runs use scaled integral times.
type Time = int64

// Message is an opaque protocol payload.
type Message any

// Handler processes a message arriving at node `at` from node `from` at
// the simulator's current time. Handlers run atomically (the simulator is
// single-threaded), matching the paper's atomic path-reversal step.
type Handler func(ctx *Context, at, from graph.NodeID, msg Message)

// TimerFunc is a scheduled local action at a node.
type TimerFunc func(ctx *Context)

// TimerHandler processes per-node timers scheduled with Context.AfterNode
// or Simulator.ScheduleNodeAt. One handler serves the whole simulator
// (like SetAllHandlers for messages): protocols that key state by node —
// every closed-loop driver — dispatch on v instead of capturing it, so a
// timer costs zero allocations where a TimerFunc closure costs one.
type TimerHandler func(ctx *Context, v graph.NodeID)

// Arbitration selects the processing order of events that carry identical
// timestamps.
type Arbitration int

const (
	// ArbFIFO processes same-time events in the order they were scheduled.
	ArbFIFO Arbitration = iota
	// ArbLIFO processes same-time events in reverse scheduling order.
	ArbLIFO
	// ArbRandom processes same-time events in seeded random order.
	ArbRandom
)

func (a Arbitration) String() string {
	switch a {
	case ArbFIFO:
		return "fifo"
	case ArbLIFO:
		return "lifo"
	case ArbRandom:
		return "random"
	default:
		return fmt.Sprintf("arbitration(%d)", int(a))
	}
}

// Topology tells the simulator which point-to-point sends are legal and
// how expensive they are.
type Topology interface {
	// Latency returns the nominal latency of a message from u to v and
	// whether the pair may communicate directly.
	Latency(u, v graph.NodeID) (graph.Weight, bool)
	// Hops returns the number of physical link traversals a message from
	// u to v represents (1 for a direct link, path length for routed
	// metric topologies). Used for message-count accounting.
	Hops(u, v graph.NodeID) int
	// NumNodes returns the node count.
	NumNodes() int
}

// LinkIndexer is an optional Topology extension: a topology that can
// enumerate its directed links as a dense index range lets the simulator
// keep per-link FIFO state in a flat slice instead of a map — the hot
// path of every send.
type LinkIndexer interface {
	// NumLinks returns the number of directed-link slots; LinkIndex
	// results are in [0, NumLinks).
	NumLinks() int
	// LinkIndex returns the dense index of the directed link u -> v. It is
	// only called for pairs Latency reported as connected.
	LinkIndex(u, v graph.NodeID) int
}

// Config configures a Simulator.
type Config struct {
	Topology Topology
	// Latency is the delay model; defaults to Synchronous() when nil.
	Latency LatencyModel
	// Arbitration of simultaneous events; defaults to ArbFIFO.
	Arbitration Arbitration
	// Seed drives random arbitration and random latency; ignored otherwise.
	Seed int64
	// MaxEvents aborts the run (with a panic describing a likely protocol
	// bug) after this many events; 0 means no limit.
	MaxEvents int64
	// Scheduler selects the event-queue implementation; the zero value is
	// the ladder queue. Every scheduler realizes the identical event
	// order, so this is an equivalence-testing and benchmarking knob, not
	// a semantic one.
	Scheduler SchedulerKind
	// Faults is the deterministic liveness schedule; nil (or an empty
	// plan) leaves the run bit-identical to a fault-free simulator. The
	// plan is read-only and may be shared across simulators; it is
	// validated against the topology at New (panic on a malformed plan —
	// drivers that accept plans from callers run FaultPlan.Validate first
	// and return the error).
	Faults *FaultPlan
	// Workers > 1 enables the lookahead-windowed parallel drain: all
	// ladder buckets within one lookahead window [t, t+L) — where L is
	// the latency model's MinDelay(), the conservative Chandy–Misra–
	// Bryant bound below which no handler can affect another node — are
	// fused into one batch, processed by that many workers over disjoint
	// node shards, and the logged side effects are committed in the
	// serial event order, so results stay bit-identical to Workers <= 1
	// (the equivalence tests pin this, histograms included). When delays
	// are deterministic per message (synchronous or a CounterLatency
	// model) and per-link state is dense or absent, the commit itself is
	// sharded across the workers by destination link/node; otherwise the
	// coordinator replays the logs serially. Either way the realized
	// event sequence is identical. Requires FIFO arbitration, the ladder
	// scheduler, a fault-free plan, and a latency model that bounds its
	// minimum delay (MinDelay() >= 1) — Validate reports any conflict as
	// an error and New panics as a last resort; drivers normalize
	// incompatible configs to serial instead (except the MinDelay bound,
	// which Validate rejects outright rather than silently degrading).
	Workers int
	// LinkTxTime, when positive, gives every directed link a finite
	// serialization capacity: consecutive messages on one link depart at
	// least LinkTxTime apart, so a burst of b messages sent into a link at
	// the same instant arrives spread over b·LinkTxTime — cross-traffic
	// queues instead of superposing for free. The arrival of a message is
	// its departure instant plus the usual latency-model delay. Zero (the
	// default) models infinite capacity and is bit-identical to the
	// simulator before the knob existed. Compatible with the parallel
	// drain: departures are reserved during the serial replay of each
	// tick's side effects.
	LinkTxTime Time
}

// ConfigError reports a Config combination the simulator cannot run.
// Field names the offending knob; Reason explains the constraint.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return "sim: invalid config: " + e.Field + ": " + e.Reason
}

// Validate reports whether the configuration is runnable, returning a
// *ConfigError describing the first violated constraint. It is the
// typed front door for the checks New enforces: drivers and the engine
// run-spec layer call Validate and surface the error to their callers,
// leaving the panic in New as a last-resort guard against configs that
// bypassed validation.
func (c Config) Validate() error {
	if c.Topology == nil {
		return &ConfigError{Field: "Topology", Reason: "must be non-nil"}
	}
	if c.LinkTxTime < 0 {
		return &ConfigError{Field: "LinkTxTime", Reason: fmt.Sprintf("must be >= 0, got %d", c.LinkTxTime)}
	}
	if c.Workers > 1 {
		// The parallel drain commits a tick's side effects in (pri, seq)
		// = scheduling order, which is the realized order only under
		// FIFO arbitration; the batch boundary comes from the ladder's
		// tick buckets; and fault gating consults mutable shared state
		// mid-tick. Anything else must run serially.
		if c.Arbitration != ArbFIFO {
			return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("parallel drain requires FIFO arbitration, got %v", c.Arbitration)}
		}
		if c.Scheduler != SchedLadder {
			return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("parallel drain requires the ladder scheduler, got %v", c.Scheduler)}
		}
		if c.Faults != nil {
			return &ConfigError{Field: "Workers", Reason: "parallel drain is incompatible with a fault plan"}
		}
		if md := c.windowWidth(); md < 1 {
			lat := c.Latency
			if lat == nil {
				lat = Synchronous()
			}
			return &ConfigError{Field: "Workers", Reason: fmt.Sprintf(
				"latency model %q cannot bound its minimum delay (MinDelay() = %d < 1); the parallel drain's lookahead window needs a positive bound", lat.Name(), md)}
		}
	}
	return nil
}

// windowWidth derives the parallel drain's lookahead window L from the
// latency model: every cross-node send takes at least MinDelay() ticks,
// so all events in [t, t+L) are causally independent inputs and fuse
// into one barrier. A nil model is the synchronous default (L = 1).
// LinkTxTime needs no clamp here: capacity reservations only push
// departures later, so an arrival is always >= send tick + MinDelay()
// regardless of link contention.
func (c Config) windowWidth() Time {
	lat := c.Latency
	if lat == nil {
		lat = Synchronous()
	}
	return lat.MinDelay()
}

// Simulator is a deterministic discrete-event engine.
type Simulator struct {
	cfg      Config
	now      Time
	seq      uint64
	handlers []Handler
	allH     Handler // single handler for every node (SetAllHandlers)
	timerH   TimerHandler
	workers  int

	// f is the compiled fault state (nil without a plan — the hot paths
	// gate every fault check on that nil). ctx is the one Context handed
	// to every handler; faultH and blockedH are the observer hooks.
	f        *faultState
	ctx      *Context
	faultH   FaultObserver
	blockedH BlockedHandler

	// The pending-event scheduler: the ladder queue by default, the
	// binary heap when cfg.Scheduler is SchedHeap. A two-way branch on a
	// bool keeps the hot path devirtualized (an interface call per
	// push/pop costs more than the queue operation itself).
	useHeap bool
	heap    eventHeap
	lq      ladderQueue

	// Per-directed-link timestamp state, in tiers (see linkClock). fifo
	// holds each link's last arrival for the FIFO no-overtake clamp; it
	// is nil when fifoFree proves the clamp can never bind (synchronous
	// latency, no faults — per-link arrivals are then monotone by
	// construction). busy holds each link's earliest next departure under
	// the LinkTxTime capacity model; nil when capacity is infinite.
	linkIdx  LinkIndexer
	fifoFree bool
	txTime   Time
	fifo     *linkClock
	busy     *linkClock

	// Independent seeded streams: rng is the protocol-visible stream
	// (Context.Rand), latRNG drives the latency model and arbRNG random
	// arbitration. Separate streams mean enabling random latency does not
	// perturb arbitration draws and vice versa. Each stream is created on
	// first use: seeding one costs a 607-word lagged-Fibonacci warm-up,
	// a measurable fraction of a short run, and a synchronous FIFO run —
	// the common case — touches none of them.
	rng    *rand.Rand
	latRNG *rand.Rand
	arbRNG *rand.Rand

	// syncScale caches the synchronous latency model's scale, letting
	// send compute the (deterministic) delay without an interface call
	// or a latency RNG; 0 means the model is not synchronous. ctrLat is
	// non-nil when the latency model is seq-keyed (CounterLatency):
	// delays are then pure functions of the message's global sequence
	// number, usable from any commit worker without an RNG stream.
	syncScale int64
	ctrLat    CounterLatency

	// window is the parallel drain's lookahead width L (1 on serial
	// runs): all ladder ticks in [t, t+window) fuse into one barrier.
	// winEnd is non-zero only while the drain replays a fused window on
	// the serial-fallback path: push then diverts events landing inside
	// the window into winDyn (a (at, pri, seq) min-heap) instead of the
	// ladder, because the window's already-popped batch still holds
	// events at those ticks. replayGuard is non-zero only during the
	// serial log replay of a parallel window; send panics if an arrival
	// undercuts it, catching a latency model whose MinDelay() lied.
	window      Time
	winEnd      Time
	winDyn      eventHeap
	replayGuard Time

	// Drain telemetry: barriers (fused windows that took the parallel
	// path) and the events they carried. Serial runs and serial-fallback
	// windows leave both zero, so windows == barrier count.
	statWindows      int64
	statWindowEvents int64

	processed int64 // number of events processed
	messages  int64
	hops      int64
}

// DrainStats is the parallel drain's telemetry: the derived lookahead
// window width, how many fused windows actually fanned out to the
// worker pool (the barrier count), and how many events those windows
// carried. BatchEvents/Windows is the mean parallel batch size — the
// quantity the window fusion exists to raise. All zero except
// WindowWidth on serial runs.
type DrainStats struct {
	WindowWidth Time
	Windows     int64
	BatchEvents int64
}

// MeanBatch returns events per parallel barrier (0 when no window ever
// fanned out).
func (d DrainStats) MeanBatch() float64 {
	if d.Windows == 0 {
		return 0
	}
	return float64(d.BatchEvents) / float64(d.Windows)
}

// DrainStats returns the run's drain telemetry (see DrainStats).
func (s *Simulator) DrainStats() DrainStats {
	return DrainStats{WindowWidth: s.window, Windows: s.statWindows, BatchEvents: s.statWindowEvents}
}

type linkKey struct{ u, v graph.NodeID }

const (
	// fifoDenseMax caps the flat per-link FIFO slice: a LinkIndexer
	// reporting more slots (the implicit complete metric's n² explodes
	// past this around 2k nodes) switches to lazily allocated pages.
	fifoDenseMax = 1 << 22
	// fifoPageBits sizes one FIFO page (2^12 slots = 32 KB); pages are
	// keyed by linkIndex >> fifoPageBits and materialize on first touch.
	fifoPageBits = 12
	fifoPageMask = 1<<fifoPageBits - 1
)

// linkClock keeps one monotone Time per directed link, in storage tiers
// matched to the topology: a flat slice when a LinkIndexer reports a
// modest link count, lazily allocated pages when the index space is huge
// (the implicit complete metric at 10⁶ nodes indexes 10¹² links — only
// touched pages materialize), and a map keyed by endpoint pair otherwise.
// The simulator instantiates it twice: once for the FIFO no-overtake
// clamp (last arrival per link) and once for the LinkTxTime capacity
// model (earliest next departure per link). Zero slots mean "never
// touched"; both uses only ever store values >= 1.
type linkClock struct {
	idx   LinkIndexer
	dense []Time
	pages map[int64][]Time
	m     map[linkKey]Time
}

// newLinkClock picks the storage tier for the given indexer (nil selects
// the map tier).
func newLinkClock(li LinkIndexer) *linkClock {
	c := &linkClock{idx: li}
	if li == nil {
		c.m = make(map[linkKey]Time)
	} else if nl := li.NumLinks(); nl <= fifoDenseMax {
		c.dense = make([]Time, nl)
	} else {
		c.pages = make(map[int64][]Time)
	}
	return c
}

// slot returns the storage cell for link u -> v, materializing its page
// on the paged tier. The map tier is handled by the callers (a pointer
// into a Go map is illegal).
//
//arrow:hotpath both the FIFO clamp and the capacity reservation resolve their cell here
func (c *linkClock) slot(u, v graph.NodeID) *Time {
	if c.dense != nil {
		return &c.dense[c.idx.LinkIndex(u, v)]
	}
	idx := int64(c.idx.LinkIndex(u, v))
	page := c.pages[idx>>fifoPageBits]
	if page == nil {
		page = make([]Time, 1<<fifoPageBits)
		c.pages[idx>>fifoPageBits] = page
	}
	return &page[idx&fifoPageMask]
}

// clamp enforces per-link FIFO order: it returns t raised to the link's
// last recorded arrival and records the result as the new last arrival.
//
//arrow:hotpath one call per send on runs where the FIFO clamp can bind
func (c *linkClock) clamp(u, v graph.NodeID, t Time) Time {
	if c.m != nil {
		key := linkKey{u, v}
		if last, ok := c.m[key]; ok && t < last {
			t = last
		}
		c.m[key] = t
		return t
	}
	s := c.slot(u, v)
	if t < *s {
		t = *s
	}
	*s = t
	return t
}

// reserve claims the link u -> v for one transmission of duration tx not
// earlier than t: it returns the departure instant (t, or the link's
// pending busy-until time if later) and marks the link busy until
// departure+tx.
//
//arrow:hotpath one call per send on runs with finite link capacity
func (c *linkClock) reserve(u, v graph.NodeID, t, tx Time) Time {
	if c.m != nil {
		key := linkKey{u, v}
		if busy, ok := c.m[key]; ok && t < busy {
			t = busy
		}
		c.m[key] = t + tx
		return t
	}
	s := c.slot(u, v)
	if t < *s {
		t = *s
	}
	*s = t + tx
	return t
}

// DeriveSeed derives an independent stream seed from a base seed via a
// splitmix64 step, so streams are decorrelated even for adjacent base
// seeds or stream indices. The simulator uses it for its internal
// latency/arbitration streams; the engine layer reuses it for per-cell
// experiment seeds.
func DeriveSeed(seed int64, stream int) int64 {
	z := uint64(seed) + (uint64(stream)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// New creates a simulator from cfg. Node handlers default to a no-op and
// are installed with SetHandler / SetAllHandlers. Malformed configs
// panic with the Validate error — callers that want a recoverable
// failure run cfg.Validate() first (the drivers and the engine do).
func New(cfg Config) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.Latency == nil {
		cfg.Latency = Synchronous()
	}
	s := &Simulator{
		cfg:     cfg,
		useHeap: cfg.Scheduler == SchedHeap,
		workers: cfg.Workers,
	}
	s.window = 1
	if cfg.Workers > 1 {
		// Validate established windowWidth() >= 1.
		s.window = cfg.windowWidth()
	}
	s.txTime = cfg.LinkTxTime
	if m, ok := cfg.Latency.(syncModel); ok {
		s.syncScale = m.scale
	}
	if cl, ok := cfg.Latency.(CounterLatency); ok {
		s.ctrLat = cl
	}
	if cfg.Arbitration == ArbRandom {
		s.arbRNG = rand.New(rand.NewSource(DeriveSeed(cfg.Seed, 2)))
	}
	s.lq.init(cfg.Arbitration)
	if li, ok := cfg.Topology.(LinkIndexer); ok {
		s.linkIdx = li
	}
	// Synchronous latency without faults makes per-link arrivals monotone
	// by construction (send times never decrease and the per-link delay
	// is a constant; a capacity reservation only ever pushes departures
	// forward), so the FIFO clamp can never bind and no clamp state is
	// kept at all.
	s.fifoFree = s.syncScale != 0 && cfg.Faults == nil
	if !s.fifoFree {
		s.fifo = newLinkClock(s.linkIdx)
	}
	if s.txTime > 0 {
		s.busy = newLinkClock(s.linkIdx)
	}
	s.ctx = &Context{s: s}
	s.f = compileFaults(cfg.Faults, cfg.Topology, s.linkIdx)
	s.scheduleFaults()
	return s
}

// SetHandler installs the message handler for one node, materializing
// the per-node handler array on first use (a prior SetAllHandlers
// handler is spread over it, so mixing the two keeps working).
func (s *Simulator) SetHandler(v graph.NodeID, h Handler) {
	if s.handlers == nil {
		s.handlers = make([]Handler, s.cfg.Topology.NumNodes())
		if s.allH != nil {
			for i := range s.handlers {
				s.handlers[i] = s.allH
			}
			s.allH = nil
		}
	}
	s.handlers[v] = h
}

// SetAllHandlers installs the same handler on every node; protocols that
// keep state in arrays indexed by node typically use this. It stores
// one Handler rather than n copies — at a million nodes the per-node
// array alone would be 8 MB of identical words.
func (s *Simulator) SetAllHandlers(h Handler) {
	s.allH = h
	s.handlers = nil
}

// SetTimerHandler installs the handler for per-node timers (AfterNode /
// ScheduleNodeAt). Scheduling a node timer without a handler installed
// panics at dispatch.
func (s *Simulator) SetTimerHandler(h TimerHandler) { s.timerH = h }

// SetFaultObserver installs the hook told each fault transition as it
// applies (after the liveness state changed).
func (s *Simulator) SetFaultObserver(h FaultObserver) { s.faultH = h }

// SetBlockedHandler installs the hook told each message a fault dropped
// or stalled.
func (s *Simulator) SetBlockedHandler(h BlockedHandler) { s.blockedH = h }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Messages returns the number of logical sends performed so far.
func (s *Simulator) Messages() int64 { return s.messages }

// Hops returns the number of physical link traversals so far (equals
// Messages on direct topologies).
func (s *Simulator) Hops() int64 { return s.hops }

// EventsProcessed returns the number of events the run has consumed.
func (s *Simulator) EventsProcessed() int64 { return s.processed }

// Context is handed to handlers and timers; it exposes the simulator
// operations that are legal during event processing. Under the parallel
// drain each worker gets its own Context whose mutating operations
// buffer into an op log instead of touching the simulator; the
// coordinator replays the logs in serial event order.
type Context struct {
	s     *Simulator
	shard int
	buf   *opBuffer // nil on the serial context
	win   *winState // nil on the serial context; the worker's window state

	// Identity of the event currently being dispatched through this
	// context: destination node (0 for closure timers), global sequence
	// number, and tick. evTo/evSeq key the counter-based Draw/Uniform
	// RNG, so the same event draws the same values at any worker count
	// (evSeq is dynSeqUnknown for a node timer executed mid-window,
	// whose global seq is only reconstructed at commit — Draw panics
	// there). evAt is the event's own tick: inside a fused window
	// workers process events at different ticks concurrently, so the
	// shared s.now cannot serve as "now".
	evTo  graph.NodeID
	evSeq uint64
	evAt  Time

	// Per-worker shards of ShardableRecorders, created on first use
	// under the parallel drain and absorbed into their parents in fixed
	// worker order when the drain finishes. recM resolves a parent to
	// its shard in O(1) on the record path; recList preserves insertion
	// order for the deterministic absorb walk.
	recM    map[stats.Recorder]stats.Recorder
	recList []recShard
}

// Now returns the current simulated time: the tick of the event being
// handled. Under the parallel drain that is the event's own tick
// (workers run different ticks of one fused window concurrently); on
// the serial path it is the simulator clock.
func (c *Context) Now() Time {
	if c.buf != nil {
		return c.evAt
	}
	return c.s.now
}

// Shard identifies which worker shard this context serves: 0 on a
// serial run, the worker index under the parallel drain. Drivers use it
// to index per-shard accumulator slots so result counting stays
// race-free without locks.
func (c *Context) Shard() int { return c.shard }

// Send transmits msg from u to v. The pair must be connected in the
// topology. Delivery preserves per-link FIFO order.
//
//arrow:hotpath every protocol message crosses here (BenchmarkSimSendDispatch)
func (c *Context) Send(u, v graph.NodeID, msg Message) {
	if c.buf != nil {
		c.buf.add(emitOp{idx: c.buf.idx, kind: opSend, u: u, v: v, msg: msg})
		return
	}
	c.s.send(u, v, msg)
}

// After schedules fn to run at node-local time Now()+d. Under the
// parallel drain the fire time must land at or past the fused window's
// end: a closure timer is global (it belongs to no node shard), so one
// firing mid-window could not execute on any single worker without
// racing. No driver schedules same-window closure timers on a
// parallel-capable path; batches that already contain them take the
// serial-fallback route, where everything is legal.
func (c *Context) After(d Time, fn TimerFunc) {
	if c.buf != nil {
		fire := c.evAt + d
		if fire < c.win.end {
			panic(fmt.Sprintf("sim: Context.After(%d) inside a parallel window (fires at %d, window ends %d): closure timers cannot execute mid-window (use AfterNode, or run with Workers <= 1)", d, fire, c.win.end))
		}
		c.buf.add(emitOp{idx: c.buf.idx, kind: opTimer, t: fire, fn: fn})
		return
	}
	c.s.scheduleTimer(c.s.now+d, fn)
}

// AfterNode schedules a timer for node v at time Now()+d, dispatched to
// the simulator's registered TimerHandler. Unlike After it captures no
// closure: the hot-path timer of a closed-loop run costs zero
// allocations. Under the parallel drain a timer firing inside the
// current fused window stays in-shard: it is appended to the worker's
// ordered mid-window sub-queue and executes there, in exactly the
// (at, seq) slot the serial run would give it — legal only when v is
// the worker's own shard, which every parallel-capable driver
// satisfies by construction (node timers self-target). A cross-shard
// mid-window timer would race and panics instead.
//
//arrow:hotpath the closed loop's per-completion timer
func (c *Context) AfterNode(d Time, v graph.NodeID) {
	if c.buf != nil {
		fire := c.evAt + d
		c.buf.add(emitOp{idx: c.buf.idx, kind: opNodeTimer, t: fire, v: v})
		if fire < c.win.end {
			if fire < c.evAt {
				panic(fmt.Sprintf("sim: AfterNode(%d) schedules into the past", d))
			}
			if int(v)%c.s.workers != c.shard {
				panic(fmt.Sprintf("sim: AfterNode for node %d fires at %d inside the parallel window ending %d but belongs to another shard; cross-node work needs a delay >= the latency model's MinDelay()", v, fire, c.win.end))
			}
			c.win.dyn.push(dynEvent{at: fire, ord: c.win.ord, v: v})
			c.win.ord++
		}
		return
	}
	c.s.push(event{at: c.s.now + d, kind: evNodeTimer, to: v})
}

// RecordRequest forwards one completed request to rec (a no-op when rec
// is nil). Drivers must route recordings through the context rather
// than calling the recorder directly: under the parallel drain a
// ShardableRecorder is recorded into the worker's private shard (merged
// exactly after the drain — bit-identical because the shard state is
// exact), and any other recorder is deferred to the coordinator's
// serial replay in event order.
//
//arrow:hotpath runs once per completed request
func (c *Context) RecordRequest(rec stats.Recorder, latency int64, hops int) {
	if rec == nil {
		return
	}
	if c.buf != nil {
		if sr, ok := rec.(stats.ShardableRecorder); ok {
			c.shardFor(sr).RecordRequest(latency, hops)
			return
		}
		c.buf.add(emitOp{idx: c.buf.idx, kind: opRecord, rec: rec, t: latency, h: hops})
		c.buf.recs = true
		return
	}
	rec.RecordRequest(latency, hops)
}

// shardFor resolves (creating on first use) this worker's shard of the
// given parent recorder.
func (c *Context) shardFor(parent stats.ShardableRecorder) stats.Recorder {
	if sh, ok := c.recM[parent]; ok {
		return sh
	}
	if c.recM == nil {
		c.recM = make(map[stats.Recorder]stats.Recorder)
	}
	sh := parent.NewShard()
	c.recM[parent] = sh
	c.recList = append(c.recList, recShard{parent: parent, shard: sh})
	return sh
}

// Draw returns the i-th pseudo-random 64-bit value of the event
// currently being handled: a pure splitmix64 hash of (config seed,
// event destination node, event sequence number, i) — the same counter
// discipline as workload.Zipf — so a protocol drawing randomness
// through it stays bit-identical on the serial drain and on the
// parallel drain at any worker count. This is the parallel-safe
// replacement for Context.Rand.
func (c *Context) Draw(i int) uint64 {
	if c.evSeq == dynSeqUnknown {
		panic("sim: Context.Draw inside a mid-window node timer: its global sequence number is only reconstructed at commit (key randomness on per-node state, or run with Workers <= 1)")
	}
	h := DeriveSeed(c.s.cfg.Seed, int(c.evTo))
	h = DeriveSeed(h, int(c.evSeq))
	return uint64(DeriveSeed(h, i))
}

// Uniform returns the i-th uniform variate in [0, 1) of the current
// event, derived from Draw(i) by the same top-53-bit mapping as
// workload.Zipf.
func (c *Context) Uniform(i int) float64 {
	return float64(c.Draw(i)>>11) * (1.0 / (1 << 53))
}

// Rand returns the simulator's seeded RNG (deterministic per run). It is
// unavailable inside the parallel drain — a shared stream consumed from
// concurrent workers could not stay deterministic — so protocols that
// draw from it must run with Workers <= 1. Parallel-safe randomness is
// available through the counter-based Context.Draw / Context.Uniform.
func (c *Context) Rand() *rand.Rand {
	if c.buf != nil {
		panic("sim: Context.Rand is unavailable under the parallel drain (use Context.Draw, or run with Workers <= 1)")
	}
	if c.s.rng == nil {
		c.s.rng = rand.New(rand.NewSource(c.s.cfg.Seed))
	}
	return c.s.rng
}

// send is the serial-path delivery: fault gating, latency lookup, and
// the event push.
//
//arrow:hotpath one call per message on the serial drain
func (s *Simulator) send(u, v graph.NodeID, msg Message) {
	w, ok := s.cfg.Topology.Latency(u, v)
	if !ok {
		panic(fmt.Sprintf("sim: illegal send %d -> %d (not connected in topology)", u, v))
	}
	// Faults are enforced at send time: a down endpoint or link drops or
	// stalls the message per the plan's policy. healAt stays 0 on the
	// fault-free fast path (and whenever nothing blocks the send).
	var healAt Time
	if s.f != nil {
		if healAt = s.f.blockedUntil(s, u, v); healAt != 0 {
			if s.f.policy == FaultDrop || healAt == FaultNever {
				s.f.dropped++
				if s.blockedH != nil {
					s.blockedH(s.ctx, u, v, msg, healAt, true)
				}
				return
			}
			s.f.deferred++
			if s.blockedH != nil {
				s.blockedH(s.ctx, u, v, msg, healAt, false)
			}
		}
	}
	var delay Time
	if s.syncScale != 0 {
		delay = w * s.syncScale
	} else if s.ctrLat != nil {
		// Seq-keyed delay: the event pushed below will be stamped
		// s.seq+1, and the sharded parallel commit computes the same
		// delay from the same sequence number.
		delay = s.ctrLat.DelayFor(w, s.cfg.Seed, s.seq+1)
	} else {
		if s.latRNG == nil {
			s.latRNG = rand.New(rand.NewSource(DeriveSeed(s.cfg.Seed, 1)))
		}
		delay = s.cfg.Latency.Delay(w, s.latRNG)
	}
	if delay < 1 {
		delay = 1
	}
	// The earliest the message can enter the link: now, or — under
	// FaultQueue — the blocking entity's recovery instant, from which its
	// normal latency is charged.
	depart := s.now
	if healAt != 0 {
		depart = healAt
	}
	// Finite link capacity: the departure waits for the link's pending
	// transmissions and reserves LinkTxTime of the link for itself, so
	// same-instant senders into one link serialize.
	if s.busy != nil {
		depart = s.busy.reserve(u, v, depart, s.txTime)
	}
	arrive := depart + delay
	// FIFO: never overtake an earlier message on this link. Arrivals are
	// always >= 1, so a zero slot means "no prior message". fifoFree runs
	// (synchronous latency, no faults) skip the bookkeeping outright —
	// arrivals are monotone per link by construction, so the clamp is
	// provably a no-op there.
	if !s.fifoFree {
		arrive = s.fifo.clamp(u, v, arrive)
	}
	// Safety net for the windowed drain's serial log replay: an arrival
	// inside the fused window would mean the latency model's MinDelay()
	// promised more lookahead than its Delay() honors — the window has
	// already executed past that tick. Zero (always, outside a replay)
	// never trips.
	if arrive < s.replayGuard {
		panic(fmt.Sprintf("sim: message arrives at %d inside the parallel window ending %d — latency model %q violated its MinDelay() bound", arrive, s.replayGuard, s.cfg.Latency.Name()))
	}
	s.messages++
	s.hops += int64(s.cfg.Topology.Hops(u, v))
	s.push(event{at: arrive, kind: evMessage, to: v, from: u, msg: msg})
}

// ScheduleAt schedules fn at absolute time t (>= current time). It is the
// entry point for injecting external queuing requests before Run.
func (s *Simulator) ScheduleAt(t Time, fn TimerFunc) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule in the past (t=%d now=%d)", t, s.now))
	}
	s.scheduleTimer(t, fn)
}

// ScheduleNodeAt schedules a per-node timer at absolute time t (>=
// current time) for the registered TimerHandler — the closure-free
// counterpart of ScheduleAt, used to inject a closed loop's initial
// requests.
func (s *Simulator) ScheduleNodeAt(t Time, v graph.NodeID) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule in the past (t=%d now=%d)", t, s.now))
	}
	s.push(event{at: t, kind: evNodeTimer, to: v})
}

//arrow:hotpath timer scheduling rides the same event push as sends
func (s *Simulator) scheduleTimer(t Time, fn TimerFunc) {
	s.push(event{at: t, kind: evTimer, fn: fn})
}

// push stamps the event's (pri, seq) arbitration order and hands it to
// the active queue implementation.
//
//arrow:hotpath every event enqueue lands here
func (s *Simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	switch s.cfg.Arbitration {
	case ArbFIFO:
		e.pri = int64(e.seq)
	case ArbLIFO:
		e.pri = -int64(e.seq)
	case ArbRandom:
		e.pri = s.arbRNG.Int63()
	}
	// While the parallel drain replays a fused window serially, events
	// landing inside that window cannot enter the ladder (its buckets
	// for those ticks were already popped into the batch); they divert
	// to the window's own (at, pri, seq) heap, which the fallback loop
	// merges with the remaining batch — the exact serial interleaving.
	// winEnd is 0 everywhere else, so serial runs pay one predictable
	// compare.
	if s.winEnd != 0 && e.at < s.winEnd {
		s.winDyn.push(e)
		return
	}
	if s.useHeap {
		s.heap.push(e)
	} else {
		s.lq.push(&e)
	}
}

// Run processes events until the queue is empty and returns the final
// simulated time (the makespan).
func (s *Simulator) Run() Time {
	if s.workers > 1 {
		return s.runParallel()
	}
	ctx := s.ctx
	var e event
	for {
		if s.useHeap {
			if len(s.heap) == 0 {
				break
			}
			e = s.heap.pop()
		} else if !s.lq.pop(&e) {
			break
		}
		if e.at < s.now {
			panic("sim: time went backwards")
		}
		s.now = e.at
		s.processed++
		if s.cfg.MaxEvents > 0 && s.processed > s.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d — protocol likely diverged", s.cfg.MaxEvents))
		}
		s.dispatch(ctx, &e)
	}
	return s.now
}

// dispatch routes one already-clocked event to its handler. Shared by
// the serial loop and the parallel drain's serial-fallback path.
// dispatch routes one popped event to its handler.
//
//arrow:hotpath every event dequeue lands here
func (s *Simulator) dispatch(ctx *Context, e *event) {
	ctx.evTo, ctx.evSeq = e.to, e.seq
	switch e.kind {
	case evTimer:
		e.fn(ctx)
	case evNodeTimer:
		// Per-node liveness gating: a down node does not process
		// local timers; they are deferred to its recovery instant
		// (and lost with the node on a permanent failure).
		if s.f != nil {
			if upAt := s.f.nodeUpAt[e.to]; upAt != 0 {
				if upAt == FaultNever {
					s.f.timerDropped++
					return
				}
				s.f.timerDeferred++
				s.push(event{at: upAt, kind: evNodeTimer, to: e.to})
				return
			}
		}
		h := s.timerH
		if h == nil {
			panic(fmt.Sprintf("sim: node timer for node %d with no TimerHandler", e.to))
		}
		h(ctx, e.to)
	case evMessage:
		// A destination that died while the message was in flight
		// blocks delivery: dropped, or redelivered at recovery under
		// FaultQueue (send-time checks cover everything else).
		if s.f != nil {
			if upAt := s.f.nodeUpAt[e.to]; upAt != 0 {
				if s.f.policy == FaultDrop || upAt == FaultNever {
					s.f.dropped++
					if s.blockedH != nil {
						s.blockedH(ctx, e.from, e.to, e.msg, upAt, true)
					}
					return
				}
				s.f.deferred++
				if s.blockedH != nil {
					s.blockedH(ctx, e.from, e.to, e.msg, upAt, false)
				}
				s.push(event{at: upAt, kind: evMessage, to: e.to, from: e.from, msg: e.msg})
				return
			}
		}
		h := s.handler(e.to)
		if h == nil {
			panic(fmt.Sprintf("sim: message for node %d with no handler", e.to))
		}
		h(ctx, e.to, e.from, e.msg)
	case evFault:
		s.applyFault(ctx, e.msg.(*compiledFault))
	}
}

// handler resolves node v's message handler under either storage form.
func (s *Simulator) handler(v graph.NodeID) Handler {
	if s.allH != nil {
		return s.allH
	}
	if s.handlers != nil {
		return s.handlers[v]
	}
	return nil
}

// SatMul returns a*b for non-negative operands, saturating at
// math.MaxInt64 instead of wrapping. Divergence-guard event budgets are
// products of request counts and per-request bounds, which overflow
// int64 at large node × per-node scales; a saturated guard is simply "no
// effective limit", while a wrapped one either disables the guard
// (negative) or panics a healthy run (small positive).
func SatMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// SatAdd returns a+b for non-negative operands, saturating at
// math.MaxInt64.
func SatAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}
