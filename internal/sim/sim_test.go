package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

func lineTopology(n int) Topology {
	return TreeTopology{T: tree.PathTree(n)}
}

func TestSynchronousDeliveryTime(t *testing.T) {
	s := New(Config{Topology: lineTopology(3)})
	var arrived []Time
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		arrived = append(arrived, ctx.Now())
		if at == 1 {
			ctx.Send(1, 2, msg)
		}
	})
	s.ScheduleAt(5, func(ctx *Context) { ctx.Send(0, 1, "ping") })
	end := s.Run()
	if len(arrived) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(arrived))
	}
	if arrived[0] != 6 || arrived[1] != 7 {
		t.Errorf("arrival times %v, want [6 7]", arrived)
	}
	if end != 7 {
		t.Errorf("makespan %d, want 7", end)
	}
	if s.Messages() != 2 {
		t.Errorf("messages = %d, want 2", s.Messages())
	}
}

func TestIllegalSendPanics(t *testing.T) {
	s := New(Config{Topology: lineTopology(3)})
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {})
	s.ScheduleAt(0, func(ctx *Context) { ctx.Send(0, 2, "skip") }) // not neighbours
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-neighbour send")
		}
	}()
	s.Run()
}

func TestFIFOLinkOrderUnderRandomDelays(t *testing.T) {
	// Messages on the same link must be delivered in send order even when
	// the latency model draws wildly different delays.
	for seed := int64(0); seed < 20; seed++ {
		s := New(Config{
			Topology: lineTopology(2),
			Latency:  AsyncUniform(50),
			Seed:     seed,
		})
		var got []int
		s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
			got = append(got, msg.(int))
		})
		s.ScheduleAt(0, func(ctx *Context) {
			for i := 0; i < 20; i++ {
				ctx.Send(0, 1, i)
			}
		})
		s.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: FIFO violated: got %v", seed, got)
			}
		}
	}
}

func TestTimersFireInOrder(t *testing.T) {
	s := New(Config{Topology: lineTopology(2)})
	var seq []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		s.ScheduleAt(at, func(ctx *Context) { seq = append(seq, ctx.Now()) })
	}
	s.Run()
	if len(seq) != 3 || seq[0] != 10 || seq[1] != 20 || seq[2] != 30 {
		t.Errorf("timer order %v, want [10 20 30]", seq)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(Config{Topology: lineTopology(2)})
	s.ScheduleAt(5, func(ctx *Context) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		ctx.s.ScheduleAt(1, func(ctx *Context) {})
	})
	s.Run()
}

func TestAfterRelativeTimer(t *testing.T) {
	s := New(Config{Topology: lineTopology(2)})
	var fired Time
	s.ScheduleAt(10, func(ctx *Context) {
		ctx.After(7, func(ctx *Context) { fired = ctx.Now() })
	})
	s.Run()
	if fired != 17 {
		t.Errorf("After fired at %d, want 17", fired)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New(Config{Topology: lineTopology(2), MaxEvents: 10})
	s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
		ctx.Send(at, from, msg) // ping-pong forever
	})
	s.ScheduleAt(0, func(ctx *Context) { ctx.Send(0, 1, "x") })
	defer func() {
		if recover() == nil {
			t.Error("expected MaxEvents panic")
		}
	}()
	s.Run()
}

func TestArbitrationOrders(t *testing.T) {
	run := func(arb Arbitration, seed int64) []int {
		s := New(Config{Topology: lineTopology(2), Arbitration: arb, Seed: seed})
		var got []int
		s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
			got = append(got, msg.(int))
		})
		// Three messages all arriving at t=1 — but FIFO links force
		// same-link order, so use timers for pure arbitration testing.
		for i := 0; i < 5; i++ {
			i := i
			s.ScheduleAt(1, func(ctx *Context) { got = append(got, i) })
		}
		s.Run()
		return got
	}
	fifo := run(ArbFIFO, 1)
	lifo := run(ArbLIFO, 1)
	for i, v := range fifo {
		if v != i {
			t.Errorf("FIFO arbitration got %v", fifo)
			break
		}
	}
	for i, v := range lifo {
		if v != 4-i {
			t.Errorf("LIFO arbitration got %v", lifo)
			break
		}
	}
	r1 := run(ArbRandom, 7)
	r2 := run(ArbRandom, 7)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Error("random arbitration must be deterministic per seed")
			break
		}
	}
}

func TestLatencyModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if d := Synchronous().Delay(3, rng); d != 3 {
		t.Errorf("sync delay = %d, want 3", d)
	}
	if d := SynchronousScaled(10).Delay(3, rng); d != 30 {
		t.Errorf("scaled sync delay = %d, want 30", d)
	}
	for i := 0; i < 100; i++ {
		if d := AsyncUniform(5).Delay(2, rng); d < 1 || d > 10 {
			t.Fatalf("async uniform delay %d out of [1,10]", d)
		}
		d := AsyncBimodal(5, 0.5).Delay(2, rng)
		if d != 2 && d != 10 {
			t.Fatalf("bimodal delay %d, want 2 or 10", d)
		}
	}
}

func TestLatencyModelValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { SynchronousScaled(0) },
		func() { AsyncUniform(0) },
		func() { AsyncBimodal(0, 0.5) },
		func() { AsyncBimodal(2, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMetricTopologyDistancesAndHops(t *testing.T) {
	g := graph.Grid(3, 3)
	m := NewMetricTopology(g)
	if d, ok := m.Latency(0, 8); !ok || d != 4 {
		t.Errorf("metric latency(0,8) = %d,%v want 4,true", d, ok)
	}
	if h := m.Hops(0, 8); h != 4 {
		t.Errorf("metric hops(0,8) = %d, want 4", h)
	}
	if m.NumNodes() != 9 {
		t.Errorf("NumNodes = %d", m.NumNodes())
	}
}

func TestMetricTopologyWeighted(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 2, 20)
	m := NewMetricTopology(g)
	if d, _ := m.Latency(0, 2); d != 10 {
		t.Errorf("latency(0,2) = %d, want 10 (via middle)", d)
	}
	if h := m.Hops(0, 2); h != 2 {
		t.Errorf("hops(0,2) = %d, want 2", h)
	}
}

func TestTreeTopologyRestrictsToTreeEdges(t *testing.T) {
	tr := tree.BalancedBinary(7)
	topo := TreeTopology{T: tr}
	if _, ok := topo.Latency(3, 4); ok {
		t.Error("siblings are not tree-adjacent")
	}
	if w, ok := topo.Latency(1, 3); !ok || w != 1 {
		t.Errorf("parent-child latency = %d,%v", w, ok)
	}
}

func TestDirectTopology(t *testing.T) {
	g := graph.Cycle(5)
	topo := DirectTopology{G: g}
	if _, ok := topo.Latency(0, 2); ok {
		t.Error("non-adjacent nodes must not communicate directly")
	}
	if w, ok := topo.Latency(0, 4); !ok || w != 1 {
		t.Errorf("cycle edge latency = %d,%v", w, ok)
	}
	if topo.Hops(0, 4) != 1 || topo.NumNodes() != 5 {
		t.Error("direct topology accounting wrong")
	}
}

// Property: simulator makespan is deterministic for a fixed seed under
// random latency.
func TestDeterministicMakespan(t *testing.T) {
	prop := func(seed int64) bool {
		runOnce := func() Time {
			s := New(Config{
				Topology: lineTopology(8),
				Latency:  AsyncUniform(7),
				Seed:     seed,
			})
			s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
				hop := msg.(int)
				if hop > 0 && int(at)+1 < 8 {
					ctx.Send(at, at+1, hop-1)
				}
			})
			s.ScheduleAt(0, func(ctx *Context) { ctx.Send(0, 1, 6) })
			return s.Run()
		}
		return runOnce() == runOnce()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSplitRNGStreams: latency draws and arbitration draws come from
// independent streams, so enabling random arbitration must not perturb
// message delays. With strictly increasing send times there are no ties
// to arbitrate, so arrivals under ArbFIFO and ArbRandom must coincide.
func TestSplitRNGStreams(t *testing.T) {
	run := func(arb Arbitration) []Time {
		s := New(Config{
			Topology:    lineTopology(2),
			Latency:     AsyncUniform(40),
			Arbitration: arb,
			Seed:        3,
		})
		var arrivals []Time
		s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
			arrivals = append(arrivals, ctx.Now())
		})
		for i := 0; i < 30; i++ {
			// Distinct send times spaced beyond the max delay: no ties.
			at := Time(i * 100)
			s.ScheduleAt(at, func(ctx *Context) { ctx.Send(0, 1, struct{}{}) })
		}
		s.Run()
		return arrivals
	}
	fifo := run(ArbFIFO)
	random := run(ArbRandom)
	if len(fifo) != len(random) {
		t.Fatalf("delivery counts differ: %d vs %d", len(fifo), len(random))
	}
	for i := range fifo {
		if fifo[i] != random[i] {
			t.Fatalf("arrival %d differs: fifo=%d random=%d — arbitration leaked into latency stream",
				i, fifo[i], random[i])
		}
	}
}

// TestFIFOLinkOrderOnMetricTopology exercises the dense LinkIndexer path
// of MetricTopology: per-link FIFO order must survive random delays.
func TestFIFOLinkOrderOnMetricTopology(t *testing.T) {
	g := graph.Grid(3, 3)
	topo := NewMetricTopology(g)
	if _, ok := Topology(topo).(LinkIndexer); !ok {
		t.Fatal("MetricTopology must implement LinkIndexer")
	}
	for seed := int64(0); seed < 10; seed++ {
		s := New(Config{Topology: topo, Latency: AsyncUniform(30), Seed: seed})
		var got []int
		s.SetAllHandlers(func(ctx *Context, at, from graph.NodeID, msg Message) {
			got = append(got, msg.(int))
		})
		s.ScheduleAt(0, func(ctx *Context) {
			for i := 0; i < 15; i++ {
				ctx.Send(0, 8, i) // corner to corner, a multi-hop metric link
			}
		})
		s.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: metric-link FIFO violated: %v", seed, got)
			}
		}
	}
}

// TestTreeTopologyLinkIndexDense: link indices are unique per directed
// tree edge and within [0, NumLinks).
func TestTreeTopologyLinkIndexDense(t *testing.T) {
	tr := tree.BalancedBinary(15)
	topo := TreeTopology{T: tr}
	seen := map[int]bool{}
	for v := 0; v < tr.NumNodes(); v++ {
		for _, e := range tr.Neighbors(graph.NodeID(v)) {
			idx := topo.LinkIndex(graph.NodeID(v), e.To)
			if idx < 0 || idx >= topo.NumLinks() {
				t.Fatalf("link (%d,%d): index %d out of range", v, e.To, idx)
			}
			if seen[idx] {
				t.Fatalf("link (%d,%d): duplicate index %d", v, e.To, idx)
			}
			seen[idx] = true
		}
	}
	if want := 2 * (tr.NumNodes() - 1); len(seen) != want {
		t.Fatalf("indexed %d directed links, want %d", len(seen), want)
	}
}
