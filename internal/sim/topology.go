package sim

import (
	"repro/internal/graph"
	"repro/internal/tree"
)

// TreeTopology restricts communication to spanning-tree neighbours — the
// arrow protocol's constraint ("the pointers can point only to a neighbor
// in the spanning tree"). Any tree.Nav works: the explicit lifted
// *tree.Tree, or the implicit Walker/GridNav navigators the scale tier
// uses to avoid materializing LCA tables at millions of nodes.
type TreeTopology struct{ T tree.Nav }

// Latency implements Topology: only tree edges are legal. The check uses
// the parent relation — O(1) per send, exactly as LinkIndex does —
// instead of scanning the neighbor list, which is O(degree) and O(n) at
// the center of a star tree (this is the simulator's hot path: it runs
// on every message).
func (t TreeTopology) Latency(u, v graph.NodeID) (graph.Weight, bool) {
	if u == v {
		return 0, false
	}
	if t.T.Parent(u) == v {
		return t.T.ParentWeight(u), true
	}
	if t.T.Parent(v) == u {
		return t.T.ParentWeight(v), true
	}
	return 0, false
}

// Hops implements Topology: tree edges are single physical links.
func (t TreeTopology) Hops(u, v graph.NodeID) int { return 1 }

// NumNodes implements Topology.
func (t TreeTopology) NumNodes() int { return t.T.NumNodes() }

// NumLinks implements LinkIndexer: every node owns two slots, one per
// direction of its parent edge (the root's slots stay unused).
func (t TreeTopology) NumLinks() int { return 2 * t.T.NumNodes() }

// LinkIndex implements LinkIndexer. A legal tree link connects a child
// with its parent: the child->parent direction is slot 2*child, the
// parent->child direction slot 2*child+1.
func (t TreeTopology) LinkIndex(u, v graph.NodeID) int {
	if t.T.Parent(u) == v {
		return 2 * int(u)
	}
	return 2*int(v) + 1
}

// DirectTopology allows communication along graph edges only.
type DirectTopology struct{ G *graph.Graph }

// Latency implements Topology.
func (t DirectTopology) Latency(u, v graph.NodeID) (graph.Weight, bool) {
	return t.G.EdgeWeight(u, v)
}

// Hops implements Topology.
func (t DirectTopology) Hops(u, v graph.NodeID) int { return 1 }

// NumNodes implements Topology.
func (t DirectTopology) NumNodes() int { return t.G.NumNodes() }

// MetricTopology allows any pair of nodes to exchange messages with
// latency dG(u, v), modelling protocols that route over shortest paths
// (the centralized baseline, NTA, Ivy). Hop accounting charges the
// shortest path's edge count per logical message.
type MetricTopology struct {
	dist [][]graph.Weight
	hops [][]int32
}

// NewMetricTopology precomputes all-pairs distances and hop counts of g.
func NewMetricTopology(g *graph.Graph) *MetricTopology {
	n := g.NumNodes()
	m := &MetricTopology{
		dist: g.AllPairs(),
		hops: make([][]int32, n),
	}
	// Hop counts: shortest path edge count under the weighted metric. For
	// unit graphs hops == dist; otherwise recompute paths per source pair
	// lazily would be costly, so we count hops along one weighted shortest
	// path via repeated ShortestPath only for non-unit graphs.
	if g.Unit() {
		for i := 0; i < n; i++ {
			m.hops[i] = make([]int32, n)
			for j := 0; j < n; j++ {
				if m.dist[i][j] != graph.Infinity {
					m.hops[i][j] = int32(m.dist[i][j])
				}
			}
		}
		return m
	}
	for i := 0; i < n; i++ {
		m.hops[i] = make([]int32, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			path, _ := g.ShortestPath(graph.NodeID(i), graph.NodeID(j))
			if path != nil {
				m.hops[i][j] = int32(len(path) - 1)
			}
		}
	}
	return m
}

// Latency implements Topology.
func (m *MetricTopology) Latency(u, v graph.NodeID) (graph.Weight, bool) {
	d := m.dist[u][v]
	if d == graph.Infinity {
		return 0, false
	}
	return d, true
}

// Hops implements Topology.
func (m *MetricTopology) Hops(u, v graph.NodeID) int { return int(m.hops[u][v]) }

// NumNodes implements Topology.
func (m *MetricTopology) NumNodes() int { return len(m.dist) }

// NumLinks implements LinkIndexer: the metric allows any ordered pair, so
// links are indexed u*n + v. The O(n²) slot array matches the topology's
// own O(n²) distance matrix.
func (m *MetricTopology) NumLinks() int { return len(m.dist) * len(m.dist) }

// LinkIndex implements LinkIndexer.
func (m *MetricTopology) LinkIndex(u, v graph.NodeID) int {
	return int(u)*len(m.dist) + int(v)
}

// Dist exposes the precomputed distance matrix (shared with analysis
// code to avoid recomputing all-pairs shortest paths).
func (m *MetricTopology) Dist(u, v graph.NodeID) graph.Weight { return m.dist[u][v] }

// CompleteTopology is the implicit counterpart of
// NewMetricTopology(graph.Complete(n)): every ordered pair of distinct
// nodes is connected by a direct link of weight W, with no O(n²)
// distance matrix behind it. It is what lets the complete-graph
// protocols (centralized, NTA, Ivy) run at a million nodes — the dense
// metric tables alone would be terabytes. NumLinks is still nominally
// n², so the simulator stores the per-link FIFO state in lazily
// allocated pages rather than a flat slice at that scale.
type CompleteTopology struct {
	N int
	W graph.Weight
}

// NewCompleteTopology returns the implicit complete metric on n nodes
// with unit edge weights.
func NewCompleteTopology(n int) CompleteTopology { return CompleteTopology{N: n, W: 1} }

// Latency implements Topology. Like the materialized metric it reports
// u == v as connected at distance 0 (drivers guard self-sends
// themselves), so the two are interchangeable pair for pair.
func (c CompleteTopology) Latency(u, v graph.NodeID) (graph.Weight, bool) {
	if u == v {
		return 0, true
	}
	return c.W, true
}

// Hops implements Topology: every distinct pair is one physical link.
func (c CompleteTopology) Hops(u, v graph.NodeID) int {
	if u == v {
		return 0
	}
	return 1
}

// NumNodes implements Topology.
func (c CompleteTopology) NumNodes() int { return c.N }

// NumLinks implements LinkIndexer.
func (c CompleteTopology) NumLinks() int { return c.N * c.N }

// LinkIndex implements LinkIndexer.
func (c CompleteTopology) LinkIndex(u, v graph.NodeID) int { return int(u)*c.N + int(v) }

// Dist mirrors MetricTopology.Dist for analysis code.
func (c CompleteTopology) Dist(u, v graph.NodeID) graph.Weight {
	if u == v {
		return 0
	}
	return c.W
}
