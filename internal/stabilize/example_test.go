package stabilize_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/stabilize"
	"repro/internal/tree"
)

// ExampleRepair shows fault recovery: a corrupted pointer state (two
// sinks and one facing-arrow pair) is restored to a legal single-sink
// configuration by local checking and correction.
func ExampleRepair() {
	t := tree.PathTree(6) // 0-1-2-3-4-5
	// Corrupted state: facing arrows between 1 and 2, spurious sink at 4.
	links := []graph.NodeID{0, 2, 1, 2, 4, 4}
	fmt.Println("violations before:", len(stabilize.CheckLocal(t, links)))
	fmt.Println("sinks before:", len(stabilize.Sinks(links)))

	res, err := stabilize.Repair(t, links)
	if err != nil {
		panic(err)
	}
	_, legal := stabilize.IsLegal(t, links)
	fmt.Println("legal after repair:", legal)
	fmt.Println("unique sink:", res.Sink)
	// Output:
	// violations before: 1
	// sinks before: 2
	// legal after repair: true
	// unique sink: 0
}
