package stabilize_test

// External test package: it exercises the full self-stabilization story
// through the arrow protocol, which now embeds stabilize — so this test
// must live outside package stabilize to avoid an import cycle.

import (
	"math/rand"
	"testing"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/stabilize"
	"repro/internal/tree"
	"repro/internal/workload"
)

func canonicalLinks(tr *tree.Tree, root graph.NodeID) []graph.NodeID {
	links := make([]graph.NodeID, tr.NumNodes())
	for v := range links {
		node := graph.NodeID(v)
		if node == root {
			links[v] = node
		} else {
			links[v] = tr.NextHop(node, root)
		}
	}
	return links
}

// TestProtocolRunsCorrectlyAfterRepair: the protocol works correctly
// after fault injection + repair — the full self-stabilization story,
// for both the round-based oracle and the message-driven repair.
func TestProtocolRunsCorrectlyAfterRepair(t *testing.T) {
	for _, mode := range []string{"oracle", "sim"} {
		for seed := int64(0); seed < 15; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 8 + rng.Intn(24)
			tr := tree.BalancedBinary(n)
			// Corrupt a legal state.
			links := canonicalLinks(tr, 0)
			for k := 0; k < n/3; k++ {
				v := rng.Intn(n)
				links[v] = graph.NodeID(rng.Intn(n))
			}
			var sink graph.NodeID
			if mode == "oracle" {
				res, err := stabilize.Repair(tr, links)
				if err != nil {
					t.Fatal(err)
				}
				sink = res.Sink
			} else {
				res, err := stabilize.RunSim(tr, links, stabilize.SimOptions{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				sink = res.Sink
			}
			// Run the protocol from the repaired configuration: the
			// repaired sink acts as the root.
			set := workload.Poisson(n, 0.5, 40, seed)
			if len(set) == 0 {
				continue
			}
			out, err := arrow.Run(tr, set, arrow.Options{Root: sink})
			if err != nil {
				t.Fatalf("%s seed %d: protocol failed after repair: %v", mode, seed, err)
			}
			if !queuing.ValidOrder(out.Order, len(set)) {
				t.Fatalf("%s seed %d: invalid order after repair", mode, seed)
			}
		}
	}
}
