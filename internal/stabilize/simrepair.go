package stabilize

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// This file re-expresses Repair's synchronous-round algorithm as a
// message-passing protocol on the discrete-event simulator, so repair
// cost is measured in the same hops/latency currency as the queuing
// protocols. One episode exchanges real messages over the tree metric:
//
//  1. probe: every node tells each tree neighbour its link value. A node
//     that sees a facing arrow de-cycles (the higher ID becomes a sink);
//     receivers also learn which neighbours point at them (their wave
//     children).
//  2. wave: each sink floods its ID along reversed pointer chains; every
//     node that learns its region tells all neighbours, so boundary
//     nodes discover adjacent regions with smaller sink IDs.
//  3. merge: boundary candidates send claims along their pointer chain
//     to their sink, which elects the smallest-ID candidate and grants
//     it; the winner redirects across the boundary and launches a
//     path-reversal token toward its old sink — the arrow protocol's
//     queue-message mechanics — consuming exactly one sink per region.
//
// Episodes repeat until the configuration is legal. Phase transitions
// are driven by exact message counts (the "synchronous daemon" the
// round model abstracts), so the protocol is correct under any latency
// model; the pointer mutations themselves are all local to a message
// arrival. The round-based Repair remains the reference oracle:
// TestSimRepairMatchesOracle pins convergence, final sink, and a
// message-count bound against it.

// RepairEventKind discriminates observable repair-protocol steps.
type RepairEventKind uint8

const (
	// RepEpisode marks the start of a repair episode.
	RepEpisode RepairEventKind = iota
	// RepDecycle marks a facing-arrow correction (Node resets to self).
	RepDecycle
	// RepRegion marks a node adopting a region (Peer is the region sink).
	RepRegion
	// RepGrant marks a sink (Peer) granting the boundary merge to a
	// candidate (Node).
	RepGrant
	// RepToken marks one hop of a path-reversal merge token (Node -> Peer).
	RepToken
	// RepMerge marks a region merge completing (Node is the consumed sink).
	RepMerge
	// RepDone marks convergence (Node is the surviving sink).
	RepDone
)

func (k RepairEventKind) String() string {
	switch k {
	case RepEpisode:
		return "episode"
	case RepDecycle:
		return "decycle"
	case RepRegion:
		return "region"
	case RepGrant:
		return "grant"
	case RepToken:
		return "token"
	case RepMerge:
		return "merge"
	case RepDone:
		return "done"
	default:
		return fmt.Sprintf("repair(%d)", int(k))
	}
}

// RepairEvent is one observable repair-protocol step, for tracing.
type RepairEvent struct {
	At      sim.Time
	Kind    RepairEventKind
	Node    graph.NodeID
	Peer    graph.NodeID
	Episode int
}

// EngineConfig configures a message-driven repair engine.
type EngineConfig struct {
	// MaxEpisodes bounds repair episodes (0 = NumNodes + 8; each episode
	// strictly reduces the sink count, so the bound is generous).
	MaxEpisodes int
	// Observer, when non-nil, is told each observable protocol step.
	Observer func(RepairEvent)
	// OnDone, when non-nil, runs once when repair finishes (converged
	// reports whether the final state is legal; false only on an
	// episode-budget blowout).
	OnDone func(ctx *sim.Context, converged bool)
}

// Engine is the message-driven repair protocol, embeddable into a live
// simulation: the host installs it next to its own handlers, routes the
// messages Owns recognizes to Handle, and calls Begin when the network
// has healed and drained. Engine mutates the host's links slice in
// place — repair and the queuing protocol share the pointer state by
// design.
type Engine struct {
	t     *tree.Tree
	links []graph.NodeID
	cfg   EngineConfig
	n     int

	episode int
	running bool
	done    bool
	// runEpisodes counts episodes of the current run (a run is one
	// Begin..OnDone cycle; a long-lived host repairs repeatedly, each
	// run with a fresh episode budget).
	runEpisodes int

	totalDeg       int
	probesLeft     int
	regionMsgsLeft int
	children       [][]graph.NodeID
	region         []graph.NodeID
	minNbr         []graph.NodeID
	minNbrVia      []graph.NodeID
	pendingClaims  []int
	bestCand       []graph.NodeID
	bestPath       [][]graph.NodeID
	mergesLeft     int

	startAt   sim.Time
	started   bool
	messages  int64
	decycled  int
	merged    int
	converged bool
	doneAt    sim.Time
}

// Repair protocol messages. Every message carries its episode: an
// aborted episode's in-flight messages are recognized stale and dropped.
type (
	probeMsg struct {
		ep   int
		link graph.NodeID
	}
	waveMsg struct {
		ep   int
		sink graph.NodeID
	}
	regionMsg struct {
		ep   int
		sink graph.NodeID
	}
	claimMsg struct {
		ep        int
		candidate graph.NodeID
		path      []graph.NodeID
	}
	grantMsg struct {
		ep   int
		path []graph.NodeID
		idx  int
	}
	tokenMsg struct {
		ep int
	}
)

// repairMsg is the repair protocol's message family; the marker method
// lets arrowlint's msgswitch analyzer check switch exhaustiveness
// (Owns and Handle below must each list every member).
type repairMsg interface{ isRepairMsg() }

func (*probeMsg) isRepairMsg()  {}
func (*waveMsg) isRepairMsg()   {}
func (*regionMsg) isRepairMsg() {}
func (*claimMsg) isRepairMsg()  {}
func (*grantMsg) isRepairMsg()  {}
func (*tokenMsg) isRepairMsg()  {}

// NewEngine builds an engine repairing links (in place) over tree t.
func NewEngine(t *tree.Tree, links []graph.NodeID, cfg EngineConfig) *Engine {
	n := t.NumNodes()
	if len(links) != n {
		panic(fmt.Sprintf("stabilize: %d links for %d nodes", len(links), n))
	}
	if cfg.MaxEpisodes == 0 {
		cfg.MaxEpisodes = n + 8
	}
	e := &Engine{
		t:             t,
		links:         links,
		cfg:           cfg,
		n:             n,
		totalDeg:      2 * (n - 1),
		children:      make([][]graph.NodeID, n),
		region:        make([]graph.NodeID, n),
		minNbr:        make([]graph.NodeID, n),
		minNbrVia:     make([]graph.NodeID, n),
		pendingClaims: make([]int, n),
		bestCand:      make([]graph.NodeID, n),
		bestPath:      make([][]graph.NodeID, n),
	}
	return e
}

// Owns reports whether msg is a repair-protocol message.
func (e *Engine) Owns(msg sim.Message) bool {
	switch msg.(type) {
	case *probeMsg, *waveMsg, *regionMsg, *claimMsg, *grantMsg, *tokenMsg:
		return true
	}
	return false
}

// Running reports whether an episode is in flight.
func (e *Engine) Running() bool { return e.running }

// Done reports whether repair finished (see Converged for the verdict).
func (e *Engine) Done() bool { return e.done }

// Converged reports whether repair reached a legal configuration.
func (e *Engine) Converged() bool { return e.converged }

// Messages returns the cumulative repair messages sent. Every repair
// message crosses exactly one tree edge, so this is also the repair hop
// count.
func (e *Engine) Messages() int64 { return e.messages }

// Episodes returns the number of episodes begun.
func (e *Engine) Episodes() int { return e.episode }

// Decycled returns the cumulative facing-arrow corrections.
func (e *Engine) Decycled() int { return e.decycled }

// Merged returns the cumulative region merges granted.
func (e *Engine) Merged() int { return e.merged }

// Begin starts a repair run (or, after an Abort, restarts the current
// one). It is a no-op while an episode is running. A host that corrupts
// and heals repeatedly calls Begin once per outage: each completed run
// re-arms the engine with a fresh episode budget.
func (e *Engine) Begin(ctx *sim.Context) {
	if e.running {
		return
	}
	if e.done {
		// Previous run finished; start a new one.
		e.done = false
		e.converged = false
		e.runEpisodes = 0
	}
	if !e.started {
		e.started = true
		e.startAt = ctx.Now()
	}
	e.beginEpisode(ctx)
}

// Abort cancels the running episode: its in-flight messages become
// stale (their episode tag no longer matches) and a later Begin restarts
// from the current pointer state. The host calls it when a fault drops a
// repair message mid-episode.
func (e *Engine) Abort() { e.running = false }

// Handle processes one repair message. The host must only pass messages
// Owns recognizes.
func (e *Engine) Handle(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
	switch m := msg.(type) {
	case *probeMsg:
		if e.stale(m.ep) {
			return
		}
		e.onProbe(ctx, at, from, m)
	case *waveMsg:
		if e.stale(m.ep) {
			return
		}
		e.onWave(ctx, at, from, m)
	case *regionMsg:
		if e.stale(m.ep) {
			return
		}
		e.onRegion(ctx, at, from, m)
	case *claimMsg:
		if e.stale(m.ep) {
			return
		}
		e.onClaim(ctx, at, m)
	case *grantMsg:
		if e.stale(m.ep) {
			return
		}
		e.onGrant(ctx, at, m)
	case *tokenMsg:
		if e.stale(m.ep) {
			return
		}
		e.onToken(ctx, at, from)
	default:
		panic(fmt.Sprintf("stabilize: engine handed foreign message %T", msg))
	}
}

func (e *Engine) stale(ep int) bool { return !e.running || ep != e.episode }

func (e *Engine) send(ctx *sim.Context, u, v graph.NodeID, msg sim.Message) {
	e.messages++
	ctx.Send(u, v, msg)
}

func (e *Engine) emit(ctx *sim.Context, kind RepairEventKind, node, peer graph.NodeID) {
	if e.cfg.Observer != nil {
		e.cfg.Observer(RepairEvent{At: ctx.Now(), Kind: kind, Node: node, Peer: peer, Episode: e.episode})
	}
}

func (e *Engine) finish(ctx *sim.Context, converged bool) {
	e.running = false
	e.done = true
	e.converged = converged
	e.doneAt = ctx.Now()
	if converged {
		sink, _ := IsLegal(e.t, e.links)
		e.emit(ctx, RepDone, sink, sink)
	}
	if e.cfg.OnDone != nil {
		e.cfg.OnDone(ctx, converged)
	}
}

func (e *Engine) beginEpisode(ctx *sim.Context) {
	// Purely local correction: a pointer to a non-neighbour is
	// detectable garbage; the node resets itself to a sink. Legal states
	// have only tree pointers, so this never modifies one.
	for v := 0; v < e.n; v++ {
		node := graph.NodeID(v)
		if e.links[node] == node {
			continue
		}
		if !e.isNeighbor(node, e.links[node]) {
			e.links[node] = node
		}
	}
	if _, ok := IsLegal(e.t, e.links); ok {
		e.finish(ctx, true)
		return
	}
	if e.runEpisodes >= e.cfg.MaxEpisodes {
		e.finish(ctx, false)
		return
	}
	e.episode++
	e.runEpisodes++
	e.running = true
	e.emit(ctx, RepEpisode, -1, -1)
	for v := range e.children {
		e.children[v] = e.children[v][:0]
		e.region[v] = -1
		e.minNbr[v] = -1
		e.minNbrVia[v] = -1
		e.pendingClaims[v] = 0
		e.bestCand[v] = -1
		e.bestPath[v] = nil
	}
	e.probesLeft = e.totalDeg
	e.regionMsgsLeft = e.totalDeg
	e.mergesLeft = 0
	// Probe phase: every node tells each neighbour its link value — a
	// consistent snapshot, since all probes are sent before any arrives.
	for v := 0; v < e.n; v++ {
		node := graph.NodeID(v)
		for _, nb := range e.t.Neighbors(node) {
			e.send(ctx, node, nb.To, &probeMsg{ep: e.episode, link: e.links[node]})
		}
	}
}

func (e *Engine) isNeighbor(u, v graph.NodeID) bool {
	return e.t.Parent(u) == v || e.t.Parent(v) == u
}

func (e *Engine) onProbe(ctx *sim.Context, at, from graph.NodeID, m *probeMsg) {
	e.probesLeft--
	if m.link == at {
		e.children[at] = append(e.children[at], from)
		// Facing arrow: both endpoints detect it; the higher ID breaks
		// it by becoming a sink (the oracle's de-cycling rule).
		if e.links[at] == from && at > from {
			e.links[at] = at
			e.decycled++
			e.emit(ctx, RepDecycle, at, from)
		}
	}
	if e.probesLeft == 0 {
		e.startWave(ctx)
	}
}

func (e *Engine) startWave(ctx *sim.Context) {
	// After de-cycling no facing arrows remain and every pointer names a
	// neighbour or self, so every chain terminates at a sink: the wave
	// reaches all nodes.
	for v := 0; v < e.n; v++ {
		node := graph.NodeID(v)
		if e.links[node] == node {
			e.assignRegion(ctx, node, node)
		}
	}
}

// assignRegion records node's region sink, pushes the wave to the nodes
// pointing at it, and announces the region to every neighbour (boundary
// discovery).
func (e *Engine) assignRegion(ctx *sim.Context, node, sink graph.NodeID) {
	e.region[node] = sink
	e.emit(ctx, RepRegion, node, sink)
	for _, c := range e.children[node] {
		e.send(ctx, node, c, &waveMsg{ep: e.episode, sink: sink})
	}
	for _, nb := range e.t.Neighbors(node) {
		e.send(ctx, node, nb.To, &regionMsg{ep: e.episode, sink: sink})
	}
}

func (e *Engine) onWave(ctx *sim.Context, at, from graph.NodeID, m *waveMsg) {
	// A node adopts only its own link target's region; a wave from a
	// stale child record (the sender de-cycled after probing) is ignored
	// because the receiver is itself a sink with its region set.
	if e.region[at] != -1 || e.links[at] != from {
		return
	}
	e.assignRegion(ctx, at, m.sink)
}

func (e *Engine) onRegion(ctx *sim.Context, at, from graph.NodeID, m *regionMsg) {
	e.regionMsgsLeft--
	// Track the smallest neighbouring region (ties broken by neighbour
	// ID) — arrival-order independent, so the run is deterministic under
	// any latency model.
	if e.minNbr[at] == -1 || m.sink < e.minNbr[at] ||
		(m.sink == e.minNbr[at] && from < e.minNbrVia[at]) {
		e.minNbr[at] = m.sink
		e.minNbrVia[at] = from
	}
	if e.regionMsgsLeft == 0 {
		// All regions assigned (the last region message's sender was
		// assigned when it sent) and all boundaries discovered.
		e.startMerge(ctx)
	}
}

func (e *Engine) startMerge(ctx *sim.Context) {
	// Every node seeing a smaller neighbouring region claims the merge
	// for its region; claims convergecast along the pointer chain to the
	// sink, which elects the smallest-ID candidate (the oracle's
	// boundary-issuer election, distributed). mergesLeft is fixed up
	// front — every non-locally-minimal region merges this episode — so
	// a fast region's finished merge cannot end the episode while a slow
	// region's claims are still in flight.
	for v := 0; v < e.n; v++ {
		node := graph.NodeID(v)
		if e.minNbr[node] == -1 || e.minNbr[node] >= e.region[node] {
			continue
		}
		r := e.region[node]
		if e.pendingClaims[r] == 0 && e.bestCand[r] == -1 {
			e.mergesLeft++
		}
		if node == r {
			// The sink is its own boundary candidate: a local claim.
			e.noteClaim(r, node, nil)
			continue
		}
		e.pendingClaims[r]++
		e.send(ctx, node, e.links[node], &claimMsg{
			ep: e.episode, candidate: node, path: []graph.NodeID{node},
		})
	}
	if e.mergesLeft == 0 {
		// Impossible on a connected tree with >1 region (some boundary
		// always has a higher side), but never spin: end the episode and
		// let the episode budget decide.
		e.endEpisode(ctx)
		return
	}
	// Regions whose only candidate was the sink itself grant at once.
	for v := 0; v < e.n; v++ {
		r := graph.NodeID(v)
		if e.bestCand[r] != -1 && e.pendingClaims[r] == 0 {
			e.grant(ctx, r)
		}
	}
}

func (e *Engine) noteClaim(sink, candidate graph.NodeID, path []graph.NodeID) {
	if e.bestCand[sink] == -1 || candidate < e.bestCand[sink] {
		e.bestCand[sink] = candidate
		e.bestPath[sink] = path
	}
}

func (e *Engine) onClaim(ctx *sim.Context, at graph.NodeID, m *claimMsg) {
	if e.links[at] == at {
		// The region's sink: collect, and grant once every claim of this
		// region arrived.
		e.pendingClaims[at]--
		e.noteClaim(at, m.candidate, m.path)
		if e.pendingClaims[at] == 0 {
			e.grant(ctx, at)
		}
		return
	}
	m.path = append(m.path, at)
	e.send(ctx, at, e.links[at], m)
}

// grant elects sink r's best candidate. Pointers in r change only after
// this point, so every claim routed correctly.
func (e *Engine) grant(ctx *sim.Context, r graph.NodeID) {
	e.merged++
	c := e.bestCand[r]
	e.emit(ctx, RepGrant, c, r)
	if c == r {
		// The sink redirects itself across the boundary: the whole
		// region is already oriented toward it, so the merge completes
		// with no token.
		e.links[r] = e.minNbrVia[r]
		e.emit(ctx, RepMerge, r, e.minNbrVia[r])
		e.mergeDone(ctx)
		return
	}
	path := e.bestPath[r]
	e.send(ctx, r, path[len(path)-1], &grantMsg{ep: e.episode, path: path, idx: len(path) - 1})
}

func (e *Engine) onGrant(ctx *sim.Context, at graph.NodeID, m *grantMsg) {
	if m.idx > 0 {
		m.idx--
		e.send(ctx, at, m.path[m.idx], m)
		return
	}
	// The winning candidate: redirect across the boundary and launch the
	// path-reversal token toward the old sink.
	old := e.links[at]
	e.links[at] = e.minNbrVia[at]
	e.emit(ctx, RepToken, at, old)
	e.send(ctx, at, old, &tokenMsg{ep: e.episode})
}

func (e *Engine) onToken(ctx *sim.Context, at, from graph.NodeID) {
	old := e.links[at]
	e.links[at] = from
	if old == at {
		// Consumed the region's sink: the merge is complete.
		e.emit(ctx, RepMerge, at, from)
		e.mergeDone(ctx)
		return
	}
	e.emit(ctx, RepToken, at, old)
	e.send(ctx, at, old, &tokenMsg{ep: e.episode})
}

func (e *Engine) mergeDone(ctx *sim.Context) {
	e.mergesLeft--
	if e.mergesLeft == 0 {
		e.endEpisode(ctx)
	}
}

func (e *Engine) endEpisode(ctx *sim.Context) {
	e.running = false
	e.beginEpisode(ctx)
}

// SimOptions configures a standalone message-driven repair run.
type SimOptions struct {
	// Latency is the delay model (nil = synchronous unit latency).
	Latency sim.LatencyModel
	// Arbitration orders simultaneous messages.
	Arbitration sim.Arbitration
	// Seed drives random latency/arbitration.
	Seed int64
	// Scheduler selects the event-queue implementation.
	Scheduler sim.SchedulerKind
	// MaxEpisodes bounds repair episodes (0 = NumNodes + 8).
	MaxEpisodes int
	// Observer, when non-nil, is told each observable protocol step.
	Observer func(RepairEvent)
}

// SimResult reports what a message-driven repair run did, in the same
// cost currency as the queuing protocols.
type SimResult struct {
	// Sink is the unique sink of the repaired state.
	Sink graph.NodeID
	// Episodes is the number of repair episodes run.
	Episodes int
	// Messages counts repair messages; every one crosses one tree edge,
	// so it is also the hop count.
	Messages int64
	// ConvergenceTime is the simulated time from start to a legal state.
	ConvergenceTime sim.Time
	// DecycledEdges counts facing-arrow corrections, MergedRegions the
	// region merges granted (both comparable to the oracle's Result).
	DecycledEdges int
	MergedRegions int
}

// RunSim restores links (in place) to a legal configuration by running
// the message-driven repair protocol on its own simulator over the tree
// metric. Like Repair it never modifies an already-legal configuration —
// a legal state converges instantly with zero messages.
func RunSim(t *tree.Tree, links []graph.NodeID, opts SimOptions) (SimResult, error) {
	var res SimResult
	if len(links) != t.NumNodes() {
		return res, fmt.Errorf("stabilize: %d links for %d nodes", len(links), t.NumNodes())
	}
	eng := NewEngine(t, links, EngineConfig{
		MaxEpisodes: opts.MaxEpisodes,
		Observer:    opts.Observer,
	})
	s := sim.New(sim.Config{
		Topology:    sim.TreeTopology{T: t},
		Latency:     opts.Latency,
		Arbitration: opts.Arbitration,
		Seed:        opts.Seed,
		Scheduler:   opts.Scheduler,
		// Each episode is O(n) messages over O(diameter) time, and the
		// episode count is bounded by MaxEpisodes.
		MaxEvents: sim.SatAdd(sim.SatMul(int64(t.NumNodes()+8), int64(8*t.NumNodes()+64)), 4096),
	})
	s.SetAllHandlers(eng.Handle)
	s.ScheduleAt(0, eng.Begin)
	s.Run()
	if !eng.Done() || !eng.Converged() {
		return res, fmt.Errorf("stabilize: message-driven repair did not converge in %d episodes", eng.Episodes())
	}
	sink, ok := IsLegal(t, links)
	if !ok {
		return res, fmt.Errorf("stabilize: message-driven repair left an illegal state")
	}
	res = SimResult{
		Sink:            sink,
		Episodes:        eng.Episodes(),
		Messages:        eng.Messages(),
		ConvergenceTime: eng.doneAt - eng.startAt,
		DecycledEdges:   eng.Decycled(),
		MergedRegions:   eng.Merged(),
	}
	return res, nil
}
