package stabilize

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tree"
)

// corruptLinks builds a random corruption of tree tr (the same mix the
// oracle's property test uses: spurious sinks, arbitrary garbage, random
// neighbours).
func corruptLinks(tr *tree.Tree, rng *rand.Rand) []graph.NodeID {
	n := tr.NumNodes()
	links := make([]graph.NodeID, n)
	for v := range links {
		switch rng.Intn(3) {
		case 0:
			links[v] = graph.NodeID(v)
		case 1:
			links[v] = graph.NodeID(rng.Intn(n))
		default:
			nbrs := tr.Neighbors(graph.NodeID(v))
			links[v] = nbrs[rng.Intn(len(nbrs))].To
		}
	}
	return links
}

// TestSimRepairMatchesOracle is the tentpole's equivalence pin: on every
// randomized illegal configuration the message-driven repair converges
// to a legal state, agrees with the round-based oracle on the surviving
// sink, and stays within a constant factor of the oracle's
// rounds·region-size message bound.
func TestSimRepairMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		var tr *tree.Tree
		switch rng.Intn(3) {
		case 0:
			tr = tree.BalancedBinary(n)
		case 1:
			tr = tree.PathTree(n)
		default:
			g := graph.GNP(n, 0.3, seed)
			var err error
			tr, err = tree.BFS(g, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		links := corruptLinks(tr, rng)
		oracleLinks := append([]graph.NodeID(nil), links...)
		simLinks := append([]graph.NodeID(nil), links...)

		oracle, err := Repair(tr, oracleLinks)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		res, err := RunSim(tr, simLinks, SimOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d (n=%d): %v", seed, n, err)
		}
		if sink, ok := IsLegal(tr, simLinks); !ok || sink != res.Sink {
			t.Fatalf("seed %d: repaired state illegal or sink mismatch (%d vs %d)", seed, sink, res.Sink)
		}
		if res.Sink != oracle.Sink {
			t.Errorf("seed %d: sim sink %d, oracle sink %d", seed, res.Sink, oracle.Sink)
		}
		// Message bound: each oracle round touches at most every node
		// once per mechanism; the message protocol adds the probe and
		// region announcements (≤ 4(n-1) per episode) and the claim
		// convergecast. A constant factor over rounds·n covers all of it.
		bound := int64(8) * int64(oracle.Rounds+2) * int64(n)
		if res.Messages > bound {
			t.Errorf("seed %d (n=%d): %d repair messages exceed oracle bound %d (rounds=%d)",
				seed, n, res.Messages, bound, oracle.Rounds)
		}
		if res.Messages > 0 && res.ConvergenceTime <= 0 {
			t.Errorf("seed %d: non-positive convergence time %d", seed, res.ConvergenceTime)
		}
	}
}

// TestSimRepairNeverModifiesLegalStates mirrors the oracle's guarantee:
// a legal configuration converges instantly, with zero messages and no
// pointer changes.
func TestSimRepairNeverModifiesLegalStates(t *testing.T) {
	tr := tree.BalancedBinary(31)
	for _, root := range []graph.NodeID{0, 7, 30} {
		links := legalLinks(tr, root)
		before := append([]graph.NodeID(nil), links...)
		res, err := RunSim(tr, links, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(links, before) {
			t.Fatalf("root %d: repair modified a legal state", root)
		}
		if res.Messages != 0 || res.Sink != root || res.Episodes != 0 {
			t.Errorf("root %d: legal state cost %+v", root, res)
		}
	}
}

// TestSimRepairSingleNode: the degenerate tree repairs trivially.
func TestSimRepairSingleNode(t *testing.T) {
	tr := tree.PathTree(1)
	links := []graph.NodeID{0}
	res, err := RunSim(tr, links, SimOptions{})
	if err != nil || res.Sink != 0 {
		t.Fatalf("n=1: %v %+v", err, res)
	}
}

// TestSimRepairUnderAsyncModels: phase transitions are message-count
// driven, so convergence and the final sink survive random latency and
// every arbitration policy.
func TestSimRepairUnderAsyncModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := tree.BalancedBinary(31)
	links := corruptLinks(tr, rng)
	oracleLinks := append([]graph.NodeID(nil), links...)
	oracle, err := Repair(tr, oracleLinks)
	if err != nil {
		t.Fatal(err)
	}
	for _, arb := range []sim.Arbitration{sim.ArbFIFO, sim.ArbLIFO, sim.ArbRandom} {
		for _, m := range []sim.LatencyModel{nil, sim.AsyncUniform(5), sim.AsyncBimodal(7, 0.3)} {
			simLinks := append([]graph.NodeID(nil), links...)
			res, err := RunSim(tr, simLinks, SimOptions{Latency: m, Arbitration: arb, Seed: 5})
			if err != nil {
				t.Fatalf("arb=%v model=%v: %v", arb, m, err)
			}
			if res.Sink != oracle.Sink {
				t.Errorf("arb=%v model=%v: sink %d, oracle %d", arb, m, res.Sink, oracle.Sink)
			}
		}
	}
}

// TestSimRepairDeterministic: identical inputs produce identical results
// and identical event streams.
func TestSimRepairDeterministic(t *testing.T) {
	run := func() (SimResult, []RepairEvent) {
		rng := rand.New(rand.NewSource(3))
		tr := tree.BalancedBinary(24)
		links := corruptLinks(tr, rng)
		var evs []RepairEvent
		res, err := RunSim(tr, links, SimOptions{
			Seed:     9,
			Observer: func(ev RepairEvent) { evs = append(evs, ev) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, evs
	}
	r1, e1 := run()
	r2, e2 := run()
	if r1 != r2 {
		t.Fatalf("results diverged: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("event streams diverged")
	}
	if len(e1) == 0 {
		t.Fatal("no repair events observed")
	}
}

// TestSimRepairAbortRestart: aborting mid-episode leaves a state a later
// Begin still repairs, with stale messages ignored — the fault-overlap
// path the arrow loop exercises.
func TestSimRepairAbortRestart(t *testing.T) {
	tr := tree.PathTree(12)
	rng := rand.New(rand.NewSource(8))
	links := corruptLinks(tr, rng)
	eng := NewEngine(tr, links, EngineConfig{})
	s := sim.New(sim.Config{Topology: sim.TreeTopology{T: tr}})
	aborted := false
	s.SetAllHandlers(func(ctx *sim.Context, at, from graph.NodeID, msg sim.Message) {
		if !aborted && ctx.Now() >= 2 && eng.Running() {
			// Abort mid-flight once; the remaining messages of the old
			// episode must be ignored.
			aborted = true
			eng.Abort()
			ctx.After(5, eng.Begin)
		}
		eng.Handle(ctx, at, from, msg)
	})
	s.ScheduleAt(0, eng.Begin)
	s.Run()
	if !aborted {
		t.Fatal("abort never triggered")
	}
	if !eng.Done() || !eng.Converged() {
		t.Fatalf("engine did not converge after restart (episodes=%d)", eng.Episodes())
	}
	if _, ok := IsLegal(tr, links); !ok {
		t.Fatal("state illegal after abort/restart repair")
	}
}
