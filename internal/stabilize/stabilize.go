// Package stabilize adds fault tolerance to the arrow protocol in the
// spirit of Herlihy and Tirthapura's self-stabilizing distributed queuing
// [9] (cited in the paper's Section 1.1): transient faults may corrupt
// link pointers arbitrarily, and simple local checking and correction
// actions restore a legal configuration — one in which following link
// pointers from every node reaches a unique sink.
//
// The repair algorithm runs in synchronous daemon rounds and uses three
// local mechanisms:
//
//  1. De-cycling: the only cycles a pointer state on a tree can contain
//     are two facing arrows (link(u) = v and link(v) = u). Each such
//     edge is detected by its endpoints; the higher-ID endpoint resets
//     its pointer to itself, becoming a sink.
//  2. Region waves: every node learns the ID of the sink its pointer
//     chain leads to, by adopting the value of its link target (O(D)
//     rounds).
//  3. Region merging: where two regions meet, the boundary node on the
//     higher-sink-ID side redirects its pointer across the boundary and
//     launches a path-reversal token toward its old sink — exactly the
//     arrow protocol's queue-message mechanics — so its whole region
//     re-orients across the boundary. One token per region per round
//     guarantees tokens stay in disjoint regions and each consumes
//     exactly one sink.
//
// Legal configurations are never modified, and every corrupted state
// converges to a legal one; both properties are exercised by randomized
// tests.
package stabilize

import (
	"fmt"

	"repro/internal/det"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Violation describes one locally detectable illegal condition.
type Violation struct {
	// U, V are the endpoints of a facing-arrow edge (U < V).
	U, V graph.NodeID
}

// CheckLocal returns all facing-arrow violations: tree edges whose two
// endpoints point at each other. On a tree, a pointer state has a cycle
// iff it has a facing-arrow edge, so an empty result plus a single sink
// implies legality.
func CheckLocal(t *tree.Tree, links []graph.NodeID) []Violation {
	var out []Violation
	for v := 0; v < t.NumNodes(); v++ {
		node := graph.NodeID(v)
		target := links[node]
		if target > node && links[target] == node {
			out = append(out, Violation{U: node, V: target})
		}
	}
	return out
}

// Sinks returns all nodes whose link points at themselves.
func Sinks(links []graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for v, l := range links {
		if graph.NodeID(v) == l {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// IsLegal reports whether the pointer state is legal: no facing arrows,
// exactly one sink, and every chain reaches it. It also returns the sink
// when legal.
func IsLegal(t *tree.Tree, links []graph.NodeID) (graph.NodeID, bool) {
	if len(CheckLocal(t, links)) > 0 {
		return -1, false
	}
	sinks := Sinks(links)
	if len(sinks) != 1 {
		return -1, false
	}
	// With no 2-cycles on a tree, every chain terminates at some sink;
	// one sink means it is the right one. Validate pointers are tree
	// edges while we are at it.
	for v := 0; v < t.NumNodes(); v++ {
		node := graph.NodeID(v)
		if links[node] == node {
			continue
		}
		legal := false
		for _, e := range t.Neighbors(node) {
			if e.To == links[node] {
				legal = true
			}
		}
		if !legal {
			return -1, false
		}
	}
	return sinks[0], true
}

// Result reports what a Repair run did.
type Result struct {
	// Rounds is the number of synchronous rounds consumed.
	Rounds int
	// DecycledEdges counts facing-arrow corrections.
	DecycledEdges int
	// MergedRegions counts region-merge tokens launched.
	MergedRegions int
	// Sink is the unique sink of the repaired state.
	Sink graph.NodeID
}

// maxRepairRounds bounds the repair loop; legal states converge in
// O(n · regions) rounds, so this is generous.
func maxRepairRounds(n int) int { return 8*n + 64 }

// Repair restores links (in place) to a legal configuration. Pointers
// that do not name a tree neighbour (arbitrary corruption) are first
// reset to self, which is a purely local action. Repair never modifies
// an already-legal configuration.
func Repair(t *tree.Tree, links []graph.NodeID) (Result, error) {
	n := t.NumNodes()
	var res Result
	if len(links) != n {
		return res, fmt.Errorf("stabilize: %d links for %d nodes", len(links), n)
	}
	// Phase 0 (local): a pointer to a non-neighbour is locally
	// detectable garbage; the node resets itself to be a sink.
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		if links[node] == node {
			continue
		}
		ok := false
		for _, e := range t.Neighbors(node) {
			if e.To == links[node] {
				ok = true
			}
		}
		if !ok {
			links[node] = node
		}
	}
	for {
		if res.Rounds > maxRepairRounds(n) {
			return res, fmt.Errorf("stabilize: repair did not converge in %d rounds", res.Rounds)
		}
		// Phase 1 (local): break facing arrows.
		for _, viol := range CheckLocal(t, links) {
			links[viol.V] = viol.V // higher ID becomes a sink
			res.DecycledEdges++
		}
		res.Rounds++

		sinks := Sinks(links)
		if len(sinks) == 1 {
			res.Sink = sinks[0]
			return res, nil
		}
		if len(sinks) == 0 {
			// All 2-cycles were just broken; next iteration re-counts.
			continue
		}
		// Phase 2 (waves): compute each node's region sink.
		sinkOf, rounds := regionWave(t, links)
		res.Rounds += rounds
		// Phase 3: one merge token per non-minimal region.
		tokens, merges := electBoundaryIssuers(t, links, sinkOf)
		res.MergedRegions += merges
		rounds = runMergeTokens(t, links, tokens)
		res.Rounds += rounds
	}
}

// regionWave propagates sink IDs along reversed pointer chains: a sink
// knows its region; every other node adopts its link target's value once
// known. Returns the per-node region sink and the rounds used.
func regionWave(t *tree.Tree, links []graph.NodeID) ([]graph.NodeID, int) {
	n := t.NumNodes()
	sinkOf := make([]graph.NodeID, n)
	for v := range sinkOf {
		sinkOf[v] = -1
	}
	for v := 0; v < n; v++ {
		if links[v] == graph.NodeID(v) {
			sinkOf[v] = graph.NodeID(v)
		}
	}
	rounds := 0
	for {
		changed := false
		for v := 0; v < n; v++ {
			if sinkOf[v] == -1 && sinkOf[links[v]] != -1 {
				sinkOf[v] = sinkOf[links[v]]
				changed = true
			}
		}
		rounds++
		if !changed {
			return sinkOf, rounds
		}
	}
}

// mergeToken is a path-reversal token: it walks from a boundary node
// toward its region's old sink, flipping pointers back toward the
// boundary, exactly like an arrow queue message.
type mergeToken struct {
	at   graph.NodeID // token position (node about to process it)
	from graph.NodeID // sender (pointer flip target)
}

// electBoundaryIssuers picks, for every region whose sink ID is not a
// local minimum, the single boundary node (smallest node ID) adjacent to
// a smaller-sink-ID region, redirects it across the boundary, and returns
// the merge token it launches.
func electBoundaryIssuers(t *tree.Tree, links []graph.NodeID, sinkOf []graph.NodeID) ([]mergeToken, int) {
	n := t.NumNodes()
	type candidate struct {
		node   graph.NodeID
		across graph.NodeID
	}
	best := make(map[graph.NodeID]candidate) // region sink -> boundary issuer
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		for _, e := range t.Neighbors(node) {
			if sinkOf[e.To] < sinkOf[node] {
				cur, ok := best[sinkOf[node]]
				if !ok || node < cur.node {
					best[sinkOf[node]] = candidate{node: node, across: e.To}
				}
				break
			}
		}
	}
	// Deterministic issue order keeps runs reproducible: sorted keys,
	// never raw map order (TestMergeTokenOrderPinned pins this).
	regions := det.SortedKeys(best)
	var tokens []mergeToken
	for _, r := range regions {
		c := best[r]
		old := links[c.node]
		if old == c.node {
			// The boundary node is its region's sink: redirecting it
			// merges the region outright, no token needed.
			links[c.node] = c.across
			continue
		}
		links[c.node] = c.across
		tokens = append(tokens, mergeToken{at: old, from: c.node})
	}
	return tokens, len(regions)
}

// runMergeTokens advances all tokens one hop per round until each has
// terminated at a sink (consuming it). Tokens live in disjoint regions,
// so they cannot interfere.
func runMergeTokens(t *tree.Tree, links []graph.NodeID, tokens []mergeToken) int {
	rounds := 0
	active := tokens
	for len(active) > 0 {
		rounds++
		var next []mergeToken
		for _, tok := range active {
			target := links[tok.at]
			links[tok.at] = tok.from
			if target == tok.at {
				continue // consumed a sink: token terminates
			}
			next = append(next, mergeToken{at: target, from: tok.at})
		}
		active = next
		if rounds > 4*t.NumNodes() {
			panic("stabilize: merge token failed to terminate")
		}
	}
	return rounds
}
