package stabilize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tree"
)

// legalLinks builds the canonical legal state oriented toward root.
func legalLinks(t *tree.Tree, root graph.NodeID) []graph.NodeID {
	links := make([]graph.NodeID, t.NumNodes())
	for v := range links {
		node := graph.NodeID(v)
		if node == root {
			links[v] = node
		} else {
			links[v] = t.NextHop(node, root)
		}
	}
	return links
}

func TestIsLegalAcceptsCanonicalStates(t *testing.T) {
	tr := tree.BalancedBinary(15)
	for root := 0; root < 15; root++ {
		links := legalLinks(tr, graph.NodeID(root))
		sink, ok := IsLegal(tr, links)
		if !ok || sink != graph.NodeID(root) {
			t.Errorf("root %d: legality check failed (sink %d, ok %v)", root, sink, ok)
		}
	}
}

func TestIsLegalRejectsIllegalStates(t *testing.T) {
	tr := tree.BalancedBinary(7)
	facing := legalLinks(tr, 0)
	facing[0] = 1 // 0 -> 1 and 1 -> 0: facing arrows, no sink
	if _, ok := IsLegal(tr, facing); ok {
		t.Error("facing arrows accepted")
	}
	twoSinks := legalLinks(tr, 0)
	twoSinks[5] = 5
	if _, ok := IsLegal(tr, twoSinks); ok {
		t.Error("two sinks accepted")
	}
	nonTree := legalLinks(tr, 0)
	nonTree[3] = 4 // 3 and 4 are siblings, not tree-adjacent
	if _, ok := IsLegal(tr, nonTree); ok {
		t.Error("non-tree pointer accepted")
	}
}

func TestCheckLocalFindsFacingArrows(t *testing.T) {
	tr := tree.PathTree(5)
	links := []graph.NodeID{1, 0, 1, 2, 3} // facing pair (0,1)
	viols := CheckLocal(tr, links)
	if len(viols) != 1 || viols[0].U != 0 || viols[0].V != 1 {
		t.Errorf("violations = %v, want [(0,1)]", viols)
	}
}

func TestRepairPreservesLegalStates(t *testing.T) {
	tr := tree.BalancedBinary(31)
	for _, root := range []graph.NodeID{0, 7, 30} {
		links := legalLinks(tr, root)
		before := append([]graph.NodeID(nil), links...)
		res, err := Repair(tr, links)
		if err != nil {
			t.Fatal(err)
		}
		for v := range links {
			if links[v] != before[v] {
				t.Fatalf("root %d: repair modified a legal state at node %d", root, v)
			}
		}
		if res.Sink != root {
			t.Errorf("root %d: repair reports sink %d", root, res.Sink)
		}
		if res.DecycledEdges != 0 || res.MergedRegions != 0 {
			t.Errorf("root %d: repair took actions on a legal state: %+v", root, res)
		}
	}
}

func TestRepairFixesTwoSinks(t *testing.T) {
	tr := tree.PathTree(8)
	links := legalLinks(tr, 0)
	links[5] = 5
	links[6] = 5
	links[7] = 6
	res, err := Repair(tr, links)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := IsLegal(tr, links); !ok {
		t.Fatal("state still illegal after repair")
	}
	if res.MergedRegions < 1 {
		t.Errorf("expected at least one region merge, got %+v", res)
	}
}

func TestRepairFixesFacingArrows(t *testing.T) {
	tr := tree.PathTree(6)
	links := []graph.NodeID{1, 0, 1, 2, 3, 4} // facing (0,1): zero sinks
	_, err := Repair(tr, links)
	if err != nil {
		t.Fatal(err)
	}
	if sink, ok := IsLegal(tr, links); !ok {
		t.Error("still illegal")
	} else if sink != 1 {
		// De-cycling makes the higher endpoint (1) a sink; no merging
		// needed since the whole tree then points toward it.
		t.Errorf("sink = %d, want 1", sink)
	}
}

func TestRepairArbitraryGarbage(t *testing.T) {
	tr := tree.BalancedBinary(15)
	links := make([]graph.NodeID, 15)
	for v := range links {
		links[v] = graph.NodeID((v * 7) % 15) // mostly non-neighbour garbage
	}
	res, err := Repair(tr, links)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := IsLegal(tr, links); !ok {
		t.Error("garbage state not repaired")
	}
	if res.Rounds <= 0 {
		t.Error("no rounds recorded")
	}
}

// Property: repair converges from any random corruption and the result
// is legal.
func TestRepairAlwaysConverges(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		g := graph.GNP(n, 0.3, seed)
		tr, err := tree.BFS(g, 0)
		if err != nil {
			return false
		}
		links := make([]graph.NodeID, n)
		for v := range links {
			switch rng.Intn(3) {
			case 0:
				links[v] = graph.NodeID(v) // spurious sink
			case 1:
				links[v] = graph.NodeID(rng.Intn(n)) // arbitrary garbage
			default:
				nbrs := tr.Neighbors(graph.NodeID(v))
				links[v] = nbrs[rng.Intn(len(nbrs))].To // random neighbour
			}
		}
		if _, err := Repair(tr, links); err != nil {
			return false
		}
		_, ok := IsLegal(tr, links)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRepairRejectsSizeMismatch(t *testing.T) {
	tr := tree.PathTree(4)
	if _, err := Repair(tr, make([]graph.NodeID, 2)); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestSinks(t *testing.T) {
	links := []graph.NodeID{0, 0, 2, 2}
	s := Sinks(links)
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Errorf("sinks = %v, want [0 2]", s)
	}
}

// TestMergeTokenOrderPinned pins the merge-token issue order that
// electBoundaryIssuers promises: tokens come out in ascending region-sink
// order (det.SortedKeys over the candidate map), never in raw map order.
// Five three-node regions on a path give 4! = 24 possible raw orders, so a
// regression to map iteration fails this test almost immediately.
func TestMergeTokenOrderPinned(t *testing.T) {
	tr := tree.PathTree(15)
	// Five regions of three nodes each, sinks at 2, 5, 8, 11, 14.
	links := make([]graph.NodeID, 15)
	for v := range links {
		if v%3 == 2 {
			links[v] = graph.NodeID(v) // sink
		} else {
			links[v] = graph.NodeID(v + 1) // points up-path toward its sink
		}
	}
	sinkOf, _ := regionWave(tr, links)
	tokens, merges := electBoundaryIssuers(tr, links, sinkOf)
	if merges != 4 {
		t.Fatalf("merges = %d, want 4 (every region but the minimal one)", merges)
	}
	// Each non-minimal region's boundary issuer is its down-path node
	// 3k, redirected across to 3k-1; its token starts at the old link
	// target 3k+1 with the flip aimed back at 3k.
	want := []mergeToken{{at: 4, from: 3}, {at: 7, from: 6}, {at: 10, from: 9}, {at: 13, from: 12}}
	if len(tokens) != len(want) {
		t.Fatalf("tokens = %v, want %v", tokens, want)
	}
	for i := range want {
		if tokens[i] != want[i] {
			t.Fatalf("token[%d] = %+v, want %+v (issue order must be sorted by region sink)", i, tokens[i], want[i])
		}
	}
	for _, issuer := range []int{3, 6, 9, 12} {
		if links[issuer] != graph.NodeID(issuer-1) {
			t.Errorf("issuer %d redirected to %d, want %d (across the boundary)", issuer, links[issuer], issuer-1)
		}
	}
}
