package stats

import (
	"math"
	"math/big"
	"math/bits"
)

// Histogram is a fixed-memory streaming histogram of non-negative int64
// observations (latencies in simulated time units, hop counts), built for
// the closed-loop drivers' per-request observability: recording is O(1)
// and allocation-free at steady state, memory is a fixed ~15KB bucket
// array regardless of how many observations are recorded (the paper-scale
// runs record 100k requests per node), and quantile queries carry a
// bounded relative error.
//
// Buckets are HDR-style log-linear: values below 2^histSubBits are
// recorded exactly, and every octave above is split into 2^histSubBits
// linear sub-buckets, so a bucket's width is at most 2^-histSubBits of
// its lower edge and any quantile estimate q satisfies
//
//	x <= q <= x * (1 + 1/32)
//
// for the exact order statistic x at that rank.
//
// Moments are tracked as exact 128-bit integer accumulators (Σv and Σv²)
// rather than floating-point running statistics: integer addition is
// associative, so any partition of a stream of observations across
// histogram shards merges back to bit-identical Mean/Std regardless of
// the partition or the merge order. The parallel drain relies on this to
// keep per-worker recorder shards byte-identical to a serial run at any
// worker count. Mean and Std are derived from the accumulators only at
// query time (Std via an exact big-integer variance numerator, avoiding
// the catastrophic cancellation of the naive Σv²/n − mean² form).
//
// The zero value is ready to use; the bucket array is allocated on the
// first Record. Histogram is not safe for concurrent use — each sweep
// cell must own its recorder.
type Histogram struct {
	counts []int64
	count  int64
	min    int64
	max    int64
	// Exact moment accumulators. sum is the 128-bit Σv (cannot overflow:
	// count < 2^63 and v < 2^63 bound it below 2^126). sumsq is the
	// 128-bit Σv², saturating at 2^128−1; saturating addition of
	// non-negative terms is still associative and commutative, so even a
	// saturated Std stays identical across shard partitions.
	sumHi, sumLo     uint64
	sumSqHi, sumSqLo uint64
}

const (
	// histSubBits fixes the relative error: 2^histSubBits linear
	// sub-buckets per octave bound bucket width by 1/32 of the value.
	histSubBits = 5
	histSubCnt  = 1 << histSubBits
	// histBuckets covers all of int64: the top octave (k = 62 -
	// histSubBits) ends below (k+2)<<histSubBits.
	histBuckets = (64 - histSubBits) << histSubBits
)

// histIndex maps a value to its bucket. Values below histSubCnt map to
// themselves (exact); a larger v with most-significant bit m+k (m =
// histSubBits) keeps its top m+1 bits: index = k<<m + v>>k.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubCnt {
		return int(u)
	}
	k := bits.Len64(u) - histSubBits - 1
	return k<<histSubBits + int(u>>uint(k))
}

// histUpper returns the largest value mapping to bucket i — the
// conservative representative Quantile reports.
func histUpper(i int) int64 {
	if i < histSubCnt {
		return int64(i)
	}
	k := i>>histSubBits - 1
	lower := int64(i-k<<histSubBits) << uint(k)
	return lower + int64(1)<<uint(k) - 1
}

// addSq folds a 128-bit term into the saturating Σv² accumulator.
func (h *Histogram) addSq(hi, lo uint64) {
	l, carry := bits.Add64(h.sumSqLo, lo, 0)
	hh, overflow := bits.Add64(h.sumSqHi, hi, carry)
	if overflow != 0 {
		l, hh = math.MaxUint64, math.MaxUint64
	}
	h.sumSqLo, h.sumSqHi = l, hh
}

// Record adds one observation. Negative values are clamped to zero (the
// drivers only produce non-negative latencies and hop counts).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	h.counts[histIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	u := uint64(v)
	var carry uint64
	h.sumLo, carry = bits.Add64(h.sumLo, u, 0)
	h.sumHi += carry
	sqHi, sqLo := bits.Mul64(u, u)
	h.addSq(sqHi, sqLo)
}

// Merge folds o into h, as if every observation recorded into o had been
// recorded into h: bucket counts, min/max, and the integer moment
// accumulators all combine exactly, so merging is associative and
// commutative — any shard partition of a stream reproduces the serial
// histogram bit for bit. o is left unchanged.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	var carry uint64
	h.sumLo, carry = bits.Add64(h.sumLo, o.sumLo, 0)
	h.sumHi += o.sumHi + carry
	h.addSq(o.sumSqHi, o.sumSqLo)
	h.count += o.count
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// u128Float converts a 128-bit unsigned accumulator to float64.
func u128Float(hi, lo uint64) float64 {
	if hi == 0 {
		return float64(lo)
	}
	return float64(hi)*0x1p64 + float64(lo)
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty). The division is the only floating-point step, applied to the
// exact integer Σv, so the result is a deterministic function of the
// multiset of observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return u128Float(h.sumHi, h.sumLo) / float64(h.count)
}

// Std returns the population standard deviation (0 when empty). The
// variance numerator n·Σv² − (Σv)² is computed exactly in big-integer
// arithmetic before the final float conversion, so small variances of
// large values do not cancel catastrophically.
func (h *Histogram) Std() float64 {
	if h.count == 0 {
		return 0
	}
	num := new(big.Int).SetUint64(h.sumSqHi)
	num.Lsh(num, 64)
	num.Add(num, new(big.Int).SetUint64(h.sumSqLo))
	num.Mul(num, big.NewInt(h.count))
	sum := new(big.Int).SetUint64(h.sumHi)
	sum.Lsh(sum, 64)
	sum.Add(sum, new(big.Int).SetUint64(h.sumLo))
	sum.Mul(sum, sum)
	num.Sub(num, sum)
	if num.Sign() <= 0 {
		return 0
	}
	f, _ := new(big.Float).SetInt(num).Float64()
	n := float64(h.count)
	return math.Sqrt(f / (n * n))
}

// Buckets returns the number of allocated bucket slots — fixed at
// histBuckets after the first Record, independent of Count. Tests use it
// to pin the fixed-memory property.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an estimate of the p-th percentile (0..100): the
// upper edge of the bucket holding the rank-⌈p/100·Count⌉ observation,
// clamped to the exact observed [Min, Max]. The estimate q of an exact
// order statistic x satisfies x <= q <= x·(1+2^-histSubBits). p<=0
// returns Min, p>=100 returns Max, an empty histogram returns 0.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Dist is the fixed-size summary of a Histogram: the streaming moments
// plus the standard tail quantiles. The JSON tags are the wire shape of
// the machine-readable perf output (BENCH_perf.json), so renaming a
// field is a schema change.
type Dist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   int64   `json:"min"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram as a Dist.
func (h *Histogram) Snapshot() Dist {
	return Dist{
		Count: h.count,
		Mean:  h.Mean(),
		Std:   h.Std(),
		Min:   h.min,
		P50:   h.Quantile(50),
		P90:   h.Quantile(90),
		P99:   h.Quantile(99),
		P999:  h.Quantile(99.9),
		Max:   h.max,
	}
}

// Recorder receives one observation per completed request: its queuing
// latency (simulated time units) and its queue/find hop count.
// Implementations must be cheap and allocation-free — the closed-loop
// drivers invoke them on the completion hot path — and need not be
// concurrency-safe: every sweep cell owns its recorder.
type Recorder interface {
	RecordRequest(latency int64, hops int)
}

// ShardableRecorder is a Recorder whose observations may be partitioned
// across independent shards and folded back without changing the final
// state. The parallel drain uses it to record on worker goroutines
// without serializing: each worker records into its own shard and the
// coordinator absorbs the shards in a fixed order after the drain.
//
// Contract: for ANY partition of a stream of RecordRequest calls across
// shards, absorbing all shards (in any order) must leave the parent
// bit-identical to having recorded the whole stream serially. In
// practice that means the shard state must accumulate exactly —
// integer counters and exactly-merging histograms, not floating-point
// running statistics.
type ShardableRecorder interface {
	Recorder
	// NewShard returns a fresh, empty recorder of the same kind whose
	// observations can later be folded into the parent with Absorb.
	NewShard() Recorder
	// Absorb folds a shard previously returned by NewShard into the
	// parent. The shard must not be used afterwards.
	Absorb(shard Recorder)
}

// DistRecorder is the standard Recorder: one fixed-memory Histogram per
// observed dimension. The zero value is ready to use.
type DistRecorder struct {
	Latency Histogram
	Hops    Histogram
}

// NewDistRecorder returns an empty DistRecorder.
func NewDistRecorder() *DistRecorder { return &DistRecorder{} }

// RecordRequest implements Recorder.
func (r *DistRecorder) RecordRequest(latency int64, hops int) {
	r.Latency.Record(latency)
	r.Hops.Record(int64(hops))
}

// NewShard implements ShardableRecorder.
func (r *DistRecorder) NewShard() Recorder { return &DistRecorder{} }

// Absorb implements ShardableRecorder: Histogram.Merge is exact, so the
// partition of observations across shards is unobservable in the merged
// snapshot.
func (r *DistRecorder) Absorb(shard Recorder) {
	o := shard.(*DistRecorder)
	r.Latency.Merge(&o.Latency)
	r.Hops.Merge(&o.Hops)
}
