package stats

import (
	"math"
	"math/bits"
)

// Histogram is a fixed-memory streaming histogram of non-negative int64
// observations (latencies in simulated time units, hop counts), built for
// the closed-loop drivers' per-request observability: recording is O(1)
// and allocation-free at steady state, memory is a fixed ~15KB bucket
// array regardless of how many observations are recorded (the paper-scale
// runs record 100k requests per node), and quantile queries carry a
// bounded relative error.
//
// Buckets are HDR-style log-linear: values below 2^histSubBits are
// recorded exactly, and every octave above is split into 2^histSubBits
// linear sub-buckets, so a bucket's width is at most 2^-histSubBits of
// its lower edge and any quantile estimate q satisfies
//
//	x <= q <= x * (1 + 1/32)
//
// for the exact order statistic x at that rank. Mean and standard
// deviation are tracked exactly (up to float rounding) with Welford's
// algorithm, not from the buckets.
//
// The zero value is ready to use; the bucket array is allocated on the
// first Record. Histogram is not safe for concurrent use — each sweep
// cell must own its recorder.
type Histogram struct {
	counts []int64
	count  int64
	min    int64
	max    int64
	// Welford running moments: mean and sum of squared deviations.
	mean float64
	m2   float64
}

const (
	// histSubBits fixes the relative error: 2^histSubBits linear
	// sub-buckets per octave bound bucket width by 1/32 of the value.
	histSubBits = 5
	histSubCnt  = 1 << histSubBits
	// histBuckets covers all of int64: the top octave (k = 62 -
	// histSubBits) ends below (k+2)<<histSubBits.
	histBuckets = (64 - histSubBits) << histSubBits
)

// histIndex maps a value to its bucket. Values below histSubCnt map to
// themselves (exact); a larger v with most-significant bit m+k (m =
// histSubBits) keeps its top m+1 bits: index = k<<m + v>>k.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubCnt {
		return int(u)
	}
	k := bits.Len64(u) - histSubBits - 1
	return k<<histSubBits + int(u>>uint(k))
}

// histUpper returns the largest value mapping to bucket i — the
// conservative representative Quantile reports.
func histUpper(i int) int64 {
	if i < histSubCnt {
		return int64(i)
	}
	k := i>>histSubBits - 1
	lower := int64(i-k<<histSubBits) << uint(k)
	return lower + int64(1)<<uint(k) - 1
}

// Record adds one observation. Negative values are clamped to zero (the
// drivers only produce non-negative latencies and hop counts).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	h.counts[histIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	f := float64(v)
	delta := f - h.mean
	h.mean += delta / float64(h.count)
	h.m2 += delta * (f - h.mean)
}

// Merge folds o into h, as if every observation recorded into o had been
// recorded into h: bucket counts and min/max combine exactly, the
// Welford moments via the parallel (Chan et al.) combination. o is left
// unchanged.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	na, nb := float64(h.count), float64(o.count)
	delta := o.mean - h.mean
	h.mean += delta * nb / (na + nb)
	h.m2 += o.m2 + delta*delta*na*nb/(na+nb)
	h.count += o.count
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (h *Histogram) Mean() float64 { return h.mean }

// Std returns the population standard deviation (0 when empty).
func (h *Histogram) Std() float64 {
	if h.count == 0 || h.m2 <= 0 {
		return 0
	}
	return math.Sqrt(h.m2 / float64(h.count))
}

// Buckets returns the number of allocated bucket slots — fixed at
// histBuckets after the first Record, independent of Count. Tests use it
// to pin the fixed-memory property.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an estimate of the p-th percentile (0..100): the
// upper edge of the bucket holding the rank-⌈p/100·Count⌉ observation,
// clamped to the exact observed [Min, Max]. The estimate q of an exact
// order statistic x satisfies x <= q <= x·(1+2^-histSubBits). p<=0
// returns Min, p>=100 returns Max, an empty histogram returns 0.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Dist is the fixed-size summary of a Histogram: the streaming moments
// plus the standard tail quantiles. The JSON tags are the wire shape of
// the machine-readable perf output (BENCH_perf.json), so renaming a
// field is a schema change.
type Dist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   int64   `json:"min"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram as a Dist.
func (h *Histogram) Snapshot() Dist {
	return Dist{
		Count: h.count,
		Mean:  h.mean,
		Std:   h.Std(),
		Min:   h.min,
		P50:   h.Quantile(50),
		P90:   h.Quantile(90),
		P99:   h.Quantile(99),
		P999:  h.Quantile(99.9),
		Max:   h.max,
	}
}

// Recorder receives one observation per completed request: its queuing
// latency (simulated time units) and its queue/find hop count.
// Implementations must be cheap and allocation-free — the closed-loop
// drivers invoke them on the completion hot path — and need not be
// concurrency-safe: every sweep cell owns its recorder.
type Recorder interface {
	RecordRequest(latency int64, hops int)
}

// DistRecorder is the standard Recorder: one fixed-memory Histogram per
// observed dimension. The zero value is ready to use.
type DistRecorder struct {
	Latency Histogram
	Hops    Histogram
}

// NewDistRecorder returns an empty DistRecorder.
func NewDistRecorder() *DistRecorder { return &DistRecorder{} }

// RecordRequest implements Recorder.
func (r *DistRecorder) RecordRequest(latency int64, hops int) {
	r.Latency.Record(latency)
	r.Hops.Record(int64(hops))
}
