package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(50) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Std() != 0 {
		t.Errorf("empty histogram not zero: %+v", h.Snapshot())
	}
	var o Histogram
	h.Merge(&o)
	h.Merge(nil)
	if h.Count() != 0 {
		t.Errorf("merging empties changed count to %d", h.Count())
	}
}

// Values below the sub-bucket count are recorded exactly: quantiles on a
// small-value sample are exact order statistics, not approximations.
func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 31 || h.Count() != 32 {
		t.Fatalf("min/max/count = %d/%d/%d", h.Min(), h.Max(), h.Count())
	}
	if q := h.Quantile(50); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	if q := h.Quantile(100); q != 31 {
		t.Errorf("p100 = %d, want 31", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("p0 = %d, want 0", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative record: %+v", h.Snapshot())
	}
}

// The memory pin: bucket storage is a fixed-size array, independent of
// how many observations are recorded.
func TestHistogramFixedMemory(t *testing.T) {
	var small, large Histogram
	for i := 0; i < 1000; i++ {
		small.Record(int64(i))
	}
	for i := 0; i < 100000; i++ {
		large.Record(int64(i) * 37)
	}
	if small.Buckets() != large.Buckets() {
		t.Fatalf("bucket storage grew with sample size: %d vs %d", small.Buckets(), large.Buckets())
	}
	if small.Buckets() != histBuckets {
		t.Fatalf("bucket storage = %d slots, want the fixed %d", small.Buckets(), histBuckets)
	}
}

// Every representable value must map to a valid bucket whose upper edge
// is within the advertised relative error.
func TestHistogramIndexBounds(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 63, 64, 1000, 1 << 20, 1<<62 - 1, 1 << 62, math.MaxInt64}
	for _, v := range vals {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0,%d)", v, i, histBuckets)
		}
		up := histUpper(i)
		if up < v {
			t.Errorf("histUpper(%d) = %d < value %d", i, up, v)
		}
		if maxErr := v >> histSubBits; up-v > maxErr {
			t.Errorf("value %d: upper %d exceeds relative error bound (+%d)", v, up, maxErr)
		}
	}
}

// Property: for random samples, Quantile(p) brackets the exact
// percentile within the bucket relative-error bound. The histogram's
// rank convention (⌈p/100·n⌉) and stats.Percentile's interpolated rank
// (p/100·(n−1)) differ by at most one order statistic, so the estimate
// must land in [sorted[lo−1], sorted[hi+1]·(1+1/32)] around Percentile's
// interpolation window [lo, hi].
func TestHistogramQuantileMatchesExactPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3000)
		scale := []int64{30, 1000, 1 << 20, 1 << 40}[trial%4]
		xs := make([]int64, n)
		var h Histogram
		for i := range xs {
			xs[i] = rng.Int63n(scale)
			h.Record(xs[i])
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		sortedF := make([]float64, n)
		for i, v := range xs {
			sortedF[i] = float64(v)
		}
		for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 100} {
			got := h.Quantile(p)
			rank := p / 100 * float64(n-1)
			lo := int(math.Floor(rank)) - 1
			hi := int(math.Ceil(rank)) + 1
			if lo < 0 {
				lo = 0
			}
			if hi > n-1 {
				hi = n - 1
			}
			lower := xs[lo]
			upper := xs[hi] + xs[hi]>>histSubBits + 1
			if got < lower || got > upper {
				t.Fatalf("trial %d n=%d p=%v: quantile %d outside [%d, %d] (exact percentile %.1f)",
					trial, n, p, got, lower, upper, Percentile(sortedF, p))
			}
		}
	}
}

// Property: the tight per-rank guarantee — the estimate q for the exact
// order statistic x at the histogram's own rank satisfies
// x <= q <= x·(1+2^-histSubBits) (+1 for integer truncation).
func TestHistogramQuantileRankBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]int64, n)
		var h Histogram
		for i := range xs {
			xs[i] = rng.Int63n(1 << 30)
			h.Record(xs[i])
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, p := range []float64{25, 50, 75, 90, 99, 99.9} {
			rank := int(math.Ceil(p / 100 * float64(n)))
			if rank < 1 {
				rank = 1
			}
			x := xs[rank-1]
			got := h.Quantile(p)
			if got < x || got > x+x>>histSubBits+1 {
				t.Fatalf("trial %d n=%d p=%v: estimate %d for order statistic %d violates relative bound",
					trial, n, p, got, x)
			}
		}
	}
}

// Property: merging histograms is exactly equivalent to recording every
// observation into one histogram — identical buckets (hence quantiles),
// min/max, count, AND moments. Mean/Std are bit-identical because the
// moment accumulators are exact integers; the parallel drain's sharded
// recorders depend on this strict form.
func TestHistogramMergeEqualsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(1000)
		cut := rng.Intn(n)
		var a, b, all Histogram
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << 35)
			if i < cut {
				a.Record(v)
			} else {
				b.Record(v)
			}
			all.Record(v)
		}
		a.Merge(&b)
		sa, sall := a.Snapshot(), all.Snapshot()
		if sa.Count != sall.Count || sa.Min != sall.Min || sa.Max != sall.Max ||
			sa.P50 != sall.P50 || sa.P90 != sall.P90 || sa.P99 != sall.P99 ||
			sa.P999 != sall.P999 {
			t.Fatalf("trial %d: merged snapshot %+v != combined %+v", trial, sa, sall)
		}
		if sa.Mean != sall.Mean {
			t.Fatalf("trial %d: merged mean %v != combined %v (exact accumulators must be bit-identical)", trial, sa.Mean, sall.Mean)
		}
		if sa.Std != sall.Std {
			t.Fatalf("trial %d: merged std %v != combined %v (exact accumulators must be bit-identical)", trial, sa.Std, sall.Std)
		}
	}
	// Merging into an empty histogram copies, merging an empty one is a
	// no-op.
	var src, dst Histogram
	src.Record(100)
	src.Record(200)
	dst.Merge(&src)
	if dst.Count() != 2 || dst.Min() != 100 || dst.Max() != 200 {
		t.Errorf("merge into empty: %+v", dst.Snapshot())
	}
	before := dst.Snapshot()
	var empty Histogram
	dst.Merge(&empty)
	if dst.Snapshot() != before {
		t.Error("merging an empty histogram changed the target")
	}
}

// The integer-accumulator moments must match the exact batch computation.
func TestHistogramMomentsMatchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	var h Histogram
	for i := range xs {
		v := rng.Int63n(1 << 40)
		xs[i] = float64(v)
		h.Record(v)
	}
	s := Of(xs)
	if math.Abs(h.Mean()-s.Mean) > 1e-6*s.Mean {
		t.Errorf("mean %v, exact %v", h.Mean(), s.Mean)
	}
	if math.Abs(h.Std()-s.Std) > 1e-6*s.Std {
		t.Errorf("std %v, exact %v", h.Std(), s.Std)
	}
}

// Property: any partition of a stream across shards, absorbed in any
// order, reproduces the serial histogram bit for bit — the invariant
// the parallel drain's per-worker recorder shards rely on.
func TestHistogramShardPartitionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		w := 2 + rng.Intn(7)
		shards := make([]Histogram, w)
		var serial Histogram
		n := 500 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << 50)
			serial.Record(v)
			shards[rng.Intn(w)].Record(v)
		}
		var merged Histogram
		order := rng.Perm(w)
		for _, i := range order {
			merged.Merge(&shards[i])
		}
		if merged.Snapshot() != serial.Snapshot() {
			t.Fatalf("trial %d (w=%d, order %v): sharded snapshot %+v != serial %+v",
				trial, w, order, merged.Snapshot(), serial.Snapshot())
		}
	}
}

// DistRecorder implements ShardableRecorder with exact absorption.
func TestDistRecorderShards(t *testing.T) {
	var _ ShardableRecorder = (*DistRecorder)(nil)
	parent := NewDistRecorder()
	serial := NewDistRecorder()
	s1 := parent.NewShard()
	s2 := parent.NewShard()
	obs := [][2]int64{{10, 3}, {20, 0}, {7, 9}, {1 << 40, 2}, {13, 5}}
	for i, o := range obs {
		serial.RecordRequest(o[0], int(o[1]))
		if i%2 == 0 {
			s1.RecordRequest(o[0], int(o[1]))
		} else {
			s2.RecordRequest(o[0], int(o[1]))
		}
	}
	parent.Absorb(s2)
	parent.Absorb(s1)
	if parent.Latency.Snapshot() != serial.Latency.Snapshot() ||
		parent.Hops.Snapshot() != serial.Hops.Snapshot() {
		t.Fatalf("absorbed shards differ from serial recording:\n%+v\n%+v",
			parent.Latency.Snapshot(), serial.Latency.Snapshot())
	}
}

func TestDistRecorder(t *testing.T) {
	r := NewDistRecorder()
	r.RecordRequest(10, 3)
	r.RecordRequest(20, 0)
	if r.Latency.Count() != 2 || r.Hops.Count() != 2 {
		t.Fatalf("counts: latency %d hops %d", r.Latency.Count(), r.Hops.Count())
	}
	if r.Latency.Max() != 20 || r.Hops.Max() != 3 || r.Hops.Min() != 0 {
		t.Errorf("recorder state: %+v %+v", r.Latency.Snapshot(), r.Hops.Snapshot())
	}
}
