// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, standard deviation, min/max, and
// percentiles over int64 and float64 samples.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Of computes a Summary of xs. An empty sample yields the zero Summary.
func Of(xs []float64) Summary {
	var s Summary
	s.Count = len(xs)
	if s.Count == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	// Welford's algorithm: the textbook sumsq/n − mean² form cancels
	// catastrophically when the spread is small relative to the values
	// (e.g. latencies near 1e9 differing by units), reporting a wildly
	// wrong or zero Std.
	var mean, m2 float64
	for i, x := range sorted {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	s.Mean = mean
	if m2 > 0 {
		s.Std = math.Sqrt(m2 / float64(s.Count))
	}
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// OfInts computes a Summary of integer samples.
func OfInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Of(fs)
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation. Panics if the sample is unsorted in
// debug-style usage is avoided; callers must sort.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive samples (0 if any
// sample is non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
