package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryKnownSample(t *testing.T) {
	s := Of([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %f, want sqrt(2)", s.Std)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := Of(nil)
	if s.Count != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarySingleValue(t *testing.T) {
	s := Of([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P99 != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestOfIntsMatchesFloats(t *testing.T) {
	a := OfInts([]int64{3, 1, 4, 1, 5})
	b := Of([]float64{3, 1, 4, 1, 5})
	if a != b {
		t.Errorf("int summary %+v != float summary %+v", a, b)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := Percentile(sorted, 50); p != 5 {
		t.Errorf("p50 of {0,10} = %f, want 5", p)
	}
	if p := Percentile(sorted, 0); p != 0 {
		t.Errorf("p0 = %f", p)
	}
	if p := Percentile(sorted, 100); p != 10 {
		t.Errorf("p100 = %f", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %f", p)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Errorf("mean = %f", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean = %f", m)
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("geomean = %f, want 2", g)
	}
	if g := GeoMean([]float64{1, -1}); g != 0 {
		t.Errorf("geomean with negatives = %f, want 0", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("empty geomean = %f", g)
	}
}

// TestSummaryWelfordPrecision pins the Welford variance: the naive
// sumsq/n − mean² form cancels catastrophically on large samples with a
// small spread (latencies near 1e9 differing by units) and reports a
// wildly wrong Std; Welford stays exact.
func TestSummaryWelfordPrecision(t *testing.T) {
	s := Of([]float64{1e9, 1e9 + 1, 1e9 + 2})
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Std-want) > 1e-6 {
		t.Errorf("std = %v, want %v (catastrophic cancellation?)", s.Std, want)
	}
	if s.Mean != 1e9+1 {
		t.Errorf("mean = %v, want 1e9+1", s.Mean)
	}
}

// Property: min <= percentile(p) <= max for sorted samples and monotone
// percentiles.
func TestPercentileMonotone(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev || v < xs[0] || v > xs[len(xs)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBounded(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Of(xs)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
