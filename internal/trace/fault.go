package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stabilize"
)

// ChaosLog records a failure/recovery episode: fault transitions
// (link/node down and up marks) interleaved with the self-stabilizing
// repair protocol's steps (region waves, grants, path-reversal token
// arrows). Its methods match the observer hooks of arrow.LoopConfig
// (FaultObserver, RepairObserver), so wiring it into a faulty closed
// loop is two field assignments; the simulator is single-threaded, so
// callbacks arrive in chronological order.
type ChaosLog struct {
	lines []string
}

// NewChaosLog returns an empty log.
func NewChaosLog() *ChaosLog { return &ChaosLog{} }

// OnFault records one liveness transition (use as a FaultObserver).
func (l *ChaosLog) OnFault(ev sim.FaultEvent) {
	switch ev.Kind {
	case sim.LinkDown:
		l.add(ev.At, fmt.Sprintf("x link v%d--v%d DOWN", ev.U, ev.V))
	case sim.LinkUp:
		l.add(ev.At, fmt.Sprintf("o link v%d--v%d up", ev.U, ev.V))
	case sim.NodeDown:
		l.add(ev.At, fmt.Sprintf("x node v%d DOWN", ev.U))
	case sim.NodeUp:
		l.add(ev.At, fmt.Sprintf("o node v%d up", ev.U))
	}
}

// OnRepair records one repair-protocol step (use as a RepairObserver).
func (l *ChaosLog) OnRepair(ev stabilize.RepairEvent) {
	switch ev.Kind {
	case stabilize.RepEpisode:
		l.add(ev.At, fmt.Sprintf("repair episode %d begins", ev.Episode))
	case stabilize.RepDecycle:
		l.add(ev.At, fmt.Sprintf("repair: v%d breaks facing arrow with v%d (becomes sink)", ev.Node, ev.Peer))
	case stabilize.RepRegion:
		l.add(ev.At, fmt.Sprintf("repair: v%d joins region of sink v%d", ev.Node, ev.Peer))
	case stabilize.RepGrant:
		l.add(ev.At, fmt.Sprintf("repair: sink v%d grants merge to boundary v%d", ev.Peer, ev.Node))
	case stabilize.RepToken:
		l.add(ev.At, fmt.Sprintf("repair token v%d ~> v%d (path reversal)", ev.Node, ev.Peer))
	case stabilize.RepMerge:
		l.add(ev.At, fmt.Sprintf("repair: region merged, sink v%d consumed", ev.Node))
	case stabilize.RepDone:
		l.add(ev.At, fmt.Sprintf("repair converged: unique sink v%d", ev.Node))
	}
}

func (l *ChaosLog) add(at sim.Time, text string) {
	l.lines = append(l.lines, fmt.Sprintf("t=%-5d %s", at, text))
}

// Len returns the number of recorded lines.
func (l *ChaosLog) Len() int { return len(l.lines) }

// Render returns the chronological failure/recovery log, one event per
// line.
func (l *ChaosLog) Render() string {
	var b strings.Builder
	for _, line := range l.lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
