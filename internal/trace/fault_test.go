package trace_test

// External test package: the chaos log is exercised through a real
// faulty arrow closed loop, and arrow imports nothing from trace.

import (
	"testing"

	"repro/internal/arrow"
	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

// chaosEpisode runs the fixed failure/recovery scenario: a 6-node path,
// one link outage under load, repair at heal.
func chaosEpisode(t *testing.T) (*trace.ChaosLog, *arrow.LoopResult) {
	t.Helper()
	tr := tree.PathTree(6)
	plan := &sim.FaultPlan{Events: []sim.FaultEvent{
		{At: 4, Kind: sim.LinkDown, U: 2, V: 3},
		{At: 25, Kind: sim.LinkUp, U: 2, V: 3},
	}}
	log := trace.NewChaosLog()
	res, err := arrow.RunClosedLoop(tr, arrow.LoopConfig{Spec: loop.Spec{PerNode: 3, Faults: plan}, Root: 0, FaultObserver: log.OnFault, RepairObserver: log.OnRepair})
	if err != nil {
		t.Fatal(err)
	}
	return log, res
}

// TestChaosLogGolden pins the rendered failure/recovery episode byte
// for byte: the outage marks, the region wave, the granted merge, the
// path-reversal token, and convergence. The scenario is fully
// deterministic, so any diff here is a semantic change to the fault or
// repair layer.
func TestChaosLogGolden(t *testing.T) {
	const golden = `t=4     x link v2--v3 DOWN
t=25    o link v2--v3 up
t=25    repair episode 1 begins
t=26    repair: v1 joins region of sink v1
t=26    repair: v4 joins region of sink v4
t=27    repair: v0 joins region of sink v1
t=27    repair: v2 joins region of sink v1
t=27    repair: v3 joins region of sink v4
t=27    repair: v5 joins region of sink v4
t=29    repair: sink v4 grants merge to boundary v3
t=30    repair token v3 ~> v4 (path reversal)
t=31    repair: region merged, sink v4 consumed
t=31    repair converged: unique sink v1
`
	log, res := chaosEpisode(t)
	if got := log.Render(); got != golden {
		t.Errorf("chaos log diverged from golden output:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	if res.Dropped != 2 || res.Reissued != 1 || res.RepairEpisodes != 1 {
		t.Errorf("episode counters drifted: dropped=%d reissued=%d repairs=%d",
			res.Dropped, res.Reissued, res.RepairEpisodes)
	}
}

// TestChaosLogStable: rendering is deterministic across runs.
func TestChaosLogStable(t *testing.T) {
	a, _ := chaosEpisode(t)
	b, _ := chaosEpisode(t)
	if a.Render() != b.Render() {
		t.Fatal("chaos log not reproducible")
	}
	if a.Len() == 0 {
		t.Fatal("empty chaos log")
	}
}
