// Package trace records and renders arrow protocol executions, rebuilding
// the style of Figures 1–6 of the paper as ASCII: the pointer state of the
// spanning tree after each protocol step, plus a chronological event log.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
	"repro/internal/tree"
)

// EventKind discriminates recorded protocol steps.
type EventKind int

const (
	// EvInit is the initial configuration snapshot.
	EvInit EventKind = iota
	// EvRequest is a queuing request initiation.
	EvRequest
	// EvSend is a queue-message transmission.
	EvSend
	// EvFlip is a link-pointer reversal.
	EvFlip
	// EvComplete is a queuing completion (predecessor found).
	EvComplete
)

func (k EventKind) String() string {
	switch k {
	case EvInit:
		return "init"
	case EvRequest:
		return "request"
	case EvSend:
		return "send"
	case EvFlip:
		return "flip"
	case EvComplete:
		return "complete"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one recorded protocol step.
type Event struct {
	At    sim.Time
	Kind  EventKind
	Node  graph.NodeID // acting node (requester / sender / flipper / sink)
	Peer  graph.NodeID // message destination or old link target
	New   graph.NodeID // new link target (flip events)
	ReqID int
	Pred  int
}

// Recorder implements arrow.Tracer, recording events and pointer
// snapshots.
type Recorder struct {
	t      *tree.Tree
	root   graph.NodeID
	events []Event
	links  []graph.NodeID
	// Snapshots holds the link state after every flip, aligned with the
	// indices of flip events in Events.
	snapshots [][]graph.NodeID
}

// NewRecorder returns an empty Recorder; pass it as arrow.Options.Tracer.
func NewRecorder() *Recorder { return &Recorder{} }

// Events returns the recorded event log.
func (r *Recorder) Events() []Event { return r.events }

// OnInit implements arrow.Tracer.
func (r *Recorder) OnInit(t *tree.Tree, root graph.NodeID) {
	r.t = t
	r.root = root
	r.links = make([]graph.NodeID, t.NumNodes())
	for v := range r.links {
		node := graph.NodeID(v)
		if node == root {
			r.links[v] = node
		} else {
			r.links[v] = t.NextHop(node, root)
		}
	}
	r.events = append(r.events, Event{Kind: EvInit, Node: root})
	r.snapshot()
}

// OnRequest implements arrow.Tracer.
func (r *Recorder) OnRequest(at sim.Time, req queuing.Request) {
	r.events = append(r.events, Event{At: at, Kind: EvRequest, Node: req.Node, ReqID: req.ID})
}

// OnSend implements arrow.Tracer.
func (r *Recorder) OnSend(at sim.Time, from, to graph.NodeID, reqID int) {
	r.events = append(r.events, Event{At: at, Kind: EvSend, Node: from, Peer: to, ReqID: reqID})
}

// OnFlip implements arrow.Tracer.
func (r *Recorder) OnFlip(at sim.Time, node, oldLink, newLink graph.NodeID) {
	r.links[node] = newLink
	r.events = append(r.events, Event{At: at, Kind: EvFlip, Node: node, Peer: oldLink, New: newLink})
	r.snapshot()
}

// OnComplete implements arrow.Tracer.
func (r *Recorder) OnComplete(at sim.Time, reqID, predID int, sink graph.NodeID) {
	r.events = append(r.events, Event{At: at, Kind: EvComplete, Node: sink, ReqID: reqID, Pred: predID})
}

func (r *Recorder) snapshot() {
	r.snapshots = append(r.snapshots, append([]graph.NodeID(nil), r.links...))
}

// RenderLog formats the chronological event log, one step per line.
func (r *Recorder) RenderLog() string {
	var b strings.Builder
	for _, e := range r.events {
		switch e.Kind {
		case EvInit:
			fmt.Fprintf(&b, "t=%-4d init: all arrows point toward root v%d\n", 0, e.Node)
		case EvRequest:
			fmt.Fprintf(&b, "t=%-4d v%d issues request r%d\n", e.At, e.Node, e.ReqID)
		case EvSend:
			fmt.Fprintf(&b, "t=%-4d v%d --queue(r%d)--> v%d\n", e.At, e.Node, e.ReqID, e.Peer)
		case EvFlip:
			fmt.Fprintf(&b, "t=%-4d v%d flips arrow: v%d -> v%d\n", e.At, e.Node, e.Peer, e.New)
		case EvComplete:
			pred := "⊥ (virtual root)"
			if e.Pred >= 0 {
				pred = fmt.Sprintf("r%d", e.Pred)
			}
			fmt.Fprintf(&b, "t=%-4d r%d queued behind %s at v%d\n", e.At, e.ReqID, pred, e.Node)
		}
	}
	return b.String()
}

// RenderArrows draws the current pointer configuration: one line per
// node, "v3 -> v1" or "v3 = sink".
func RenderArrows(links []graph.NodeID) string {
	var b strings.Builder
	for v, l := range links {
		if graph.NodeID(v) == l {
			fmt.Fprintf(&b, "  v%-3d = sink\n", v)
		} else {
			fmt.Fprintf(&b, "  v%-3d -> v%d\n", v, l)
		}
	}
	return b.String()
}

// RenderSnapshots renders every intermediate pointer configuration,
// separated by step headers — the Figures 1–5 sequence.
func (r *Recorder) RenderSnapshots() string {
	var b strings.Builder
	for i, snap := range r.snapshots {
		fmt.Fprintf(&b, "step %d:\n%s", i, RenderArrows(snap))
	}
	return b.String()
}
