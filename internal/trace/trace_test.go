package trace

import (
	"strings"
	"testing"

	"repro/internal/arrow"
	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/tree"
)

func runTraced(t *testing.T) (*Recorder, *arrow.Result) {
	t.Helper()
	tr, err := tree.FromParents(0,
		[]graph.NodeID{0, 0, 0, 1, 1, 2},
		[]graph.Weight{0, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	set := queuing.NewSet([]queuing.Request{
		{Node: 3, Time: 0},
		{Node: 5, Time: 0},
	})
	res, err := arrow.Run(tr, set, arrow.Options{Root: 0, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderCapturesAllPhases(t *testing.T) {
	rec, res := runTraced(t)
	counts := map[EventKind]int{}
	for _, e := range rec.Events() {
		counts[e.Kind]++
	}
	if counts[EvInit] != 1 {
		t.Errorf("init events = %d, want 1", counts[EvInit])
	}
	if counts[EvRequest] != 2 {
		t.Errorf("request events = %d, want 2", counts[EvRequest])
	}
	if counts[EvComplete] != 2 {
		t.Errorf("complete events = %d, want 2", counts[EvComplete])
	}
	if int64(counts[EvSend]) != res.TotalHops {
		t.Errorf("send events = %d, want total hops %d", counts[EvSend], res.TotalHops)
	}
	// Every send is matched by a flip at its receiving node, plus flips
	// at the two initiators.
	if counts[EvFlip] != counts[EvSend]+2 {
		t.Errorf("flip events = %d, want sends+2 = %d", counts[EvFlip], counts[EvSend]+2)
	}
}

func TestRenderLogMentionsProtocolSteps(t *testing.T) {
	rec, _ := runTraced(t)
	log := rec.RenderLog()
	for _, want := range []string{
		"init: all arrows point toward root v0",
		"issues request",
		"--queue(",
		"flips arrow",
		"queued behind ⊥ (virtual root)",
		"queued behind r",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

func TestRenderArrowsMarksSink(t *testing.T) {
	out := RenderArrows([]graph.NodeID{0, 0, 1})
	if !strings.Contains(out, "v0   = sink") {
		t.Errorf("sink not marked:\n%s", out)
	}
	if !strings.Contains(out, "v2   -> v1") {
		t.Errorf("pointer not rendered:\n%s", out)
	}
}

func TestSnapshotsTrackPointerEvolution(t *testing.T) {
	rec, res := runTraced(t)
	snaps := rec.RenderSnapshots()
	if !strings.Contains(snaps, "step 0:") {
		t.Error("missing initial snapshot")
	}
	// The final snapshot must agree with the run's final links.
	events := rec.Events()
	flips := 0
	for _, e := range events {
		if e.Kind == EvFlip {
			flips++
		}
	}
	if !strings.Contains(snaps, "step "+itoa(flips)+":") {
		t.Errorf("missing final snapshot step %d", flips)
	}
	finalSink := res.FinalSink
	if !strings.Contains(snaps, "v"+itoa(int(finalSink))+"   = sink") {
		t.Errorf("final snapshot should show v%d as sink", finalSink)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestEventKindStrings(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EvInit: "init", EvRequest: "request", EvSend: "send",
		EvFlip: "flip", EvComplete: "complete",
	} {
		if kind.String() != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(kind), kind.String(), want)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}
