package tree

import (
	//arrow:allow schedorder Prim/Dijkstra priority queues order graph edges, not simulator events
	"container/heap"
	"sort"

	"repro/internal/graph"
)

// BFS returns the breadth-first spanning tree of g rooted at root. Edge
// weights are inherited from g. On unit-weight graphs the BFS tree is a
// shortest-path tree, which bounds its diameter by twice the graph's
// radius.
func BFS(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	n := g.NumNodes()
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	seen := make([]bool, n)
	parent[root] = root
	seen[root] = true
	queue := []graph.NodeID{root}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, e := range g.Neighbors(u) {
			if !seen[e.To] {
				seen[e.To] = true
				parent[e.To] = u
				pw[e.To] = e.W
				queue = append(queue, e.To)
			}
		}
	}
	return FromParents(root, parent, pw)
}

// ShortestPathTree returns the Dijkstra shortest-path spanning tree of g
// rooted at root: dT(root, v) == dG(root, v) for every v.
func ShortestPathTree(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	n := g.NumNodes()
	dist := make([]graph.Weight, n)
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	dist[root] = 0
	parent[root] = root
	q := &nodePQ{{node: root, key: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(nodeItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.Neighbors(u) {
			if nd := dist[u] + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = u
				pw[e.To] = e.W
				heap.Push(q, nodeItem{node: e.To, key: nd})
			}
		}
	}
	return FromParents(root, parent, pw)
}

// PrimMST returns a minimum spanning tree of g rooted at root, computed
// with Prim's algorithm and a binary heap.
func PrimMST(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	n := g.NumNodes()
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	best := make([]graph.Weight, n)
	inTree := make([]bool, n)
	for i := range best {
		best[i] = graph.Infinity
	}
	best[root] = 0
	parent[root] = root
	q := &nodePQ{{node: root, key: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(nodeItem)
		u := it.node
		if inTree[u] {
			continue
		}
		inTree[u] = true
		for _, e := range g.Neighbors(u) {
			if !inTree[e.To] && e.W < best[e.To] {
				best[e.To] = e.W
				parent[e.To] = u
				pw[e.To] = e.W
				heap.Push(q, nodeItem{node: e.To, key: e.W})
			}
		}
	}
	return FromParents(root, parent, pw)
}

// KruskalMST returns a minimum spanning tree of g computed with Kruskal's
// algorithm (sorted edges + union-find), rooted at root. Prim and Kruskal
// may differ on equal-weight ties; both are exact MSTs.
func KruskalMST(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	n := g.NumNodes()
	edges := g.EdgeList()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].W != edges[j].W {
			return edges[i].W < edges[j].W
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	uf := NewUnionFind(n)
	adj := make([][]graph.Edge, n)
	for _, e := range edges {
		if uf.Union(int(e.U), int(e.V)) {
			adj[e.U] = append(adj[e.U], graph.Edge{To: e.V, W: e.W})
			adj[e.V] = append(adj[e.V], graph.Edge{To: e.U, W: e.W})
		}
	}
	// Root the forest at root via DFS to obtain parents.
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	seen := make([]bool, n)
	parent[root] = root
	seen[root] = true
	stack := []graph.NodeID{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				parent[e.To] = u
				pw[e.To] = e.W
				stack = append(stack, e.To)
			}
		}
	}
	return FromParents(root, parent, pw)
}

// BalancedBinary returns the perfectly balanced binary tree on n nodes
// used in the paper's experiments (Section 5): node i's children are
// 2i+1 and 2i+2, all edges weight 1, root 0. On a complete graph this
// tree has depth floor(log2 n).
func BalancedBinary(n int) *Tree {
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	parent[0] = 0
	for v := 1; v < n; v++ {
		parent[v] = graph.NodeID((v - 1) / 2)
		pw[v] = 1
	}
	return MustFromParents(0, parent, pw)
}

// PathTree returns the path 0-1-...-n-1 as a tree rooted at 0 with unit
// weights. This is the spanning tree of the lower-bound constructions.
func PathTree(n int) *Tree {
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	parent[0] = 0
	for v := 1; v < n; v++ {
		parent[v] = graph.NodeID(v - 1)
		pw[v] = 1
	}
	return MustFromParents(0, parent, pw)
}

// StarTree returns the star with center 0 (unit weights): the tree
// behind a "home-based" topology, diameter 2.
func StarTree(n int) *Tree {
	parent := make([]graph.NodeID, n)
	pw := make([]graph.Weight, n)
	parent[0] = 0
	for v := 1; v < n; v++ {
		parent[v] = 0
		pw[v] = 1
	}
	return MustFromParents(0, parent, pw)
}

// UnionFind is a disjoint-set structure with union by rank and path
// compression, exposed for reuse by other packages.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != int32(x) {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = int(uf.parent[x])
	}
	return x
}

// Union merges the sets of x and y; it reports whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

type nodeItem struct {
	node graph.NodeID
	key  graph.Weight
}

type nodePQ []nodeItem

func (q nodePQ) Len() int           { return len(q) }
func (q nodePQ) Less(i, j int) bool { return q[i].key < q[j].key }
func (q nodePQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)        { *q = append(*q, x.(nodeItem)) }
func (q *nodePQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
